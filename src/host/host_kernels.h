/**
 * @file
 * Host-side kernels used by the PIM+Host benchmarks.
 *
 * Several PIMbench applications offload phases with random access or
 * inter-bank communication to the host CPU (paper Table I, "PIM +
 * Host"): radix sort's scatter, filter-by-key's gather, KNN's
 * sort/classify, VGG's softmax and patch extraction. These run as real
 * code and are timed with the high-resolution clock, exactly as the
 * paper measures its host portions.
 */

#ifndef PIMEVAL_HOST_HOST_KERNELS_H_
#define PIMEVAL_HOST_HOST_KERNELS_H_

#include <cstdint>
#include <utility>
#include <vector>

namespace pimeval {

/**
 * Stable counting-sort scatter for one radix digit.
 * @param keys        input keys.
 * @param counts      per-bucket counts (from the PIM counting phase).
 * @param shift,mask  digit extraction parameters.
 * @return keys reordered by the digit.
 */
std::vector<uint32_t> countingSortScatter(
    const std::vector<uint32_t> &keys, const std::vector<uint64_t> &counts,
    unsigned shift, uint32_t mask);

/**
 * Gather records whose bitmap flag is set (filter-by-key host phase).
 */
std::vector<uint32_t> gatherByBitmap(const std::vector<uint32_t> &values,
                                     const std::vector<uint8_t> &bitmap);

/**
 * Select the label by majority vote among the k nearest distances.
 * @return the winning label.
 */
int knnClassify(const std::vector<int> &distances,
                const std::vector<int> &labels, unsigned k);

/** Numerically stable softmax (float; PIM lacks FP support). */
std::vector<float> softmax(const std::vector<int64_t> &logits);

/**
 * Extract shifted/padded feature planes for a 3x3 convolution: for
 * each of the 9 kernel positions, the input plane translated by
 * (dy, dx) with zero padding (VGG host-side preprocessing).
 */
std::vector<std::vector<int>> extractConvShifts(
    const std::vector<int> &plane, uint32_t height, uint32_t width);

/** Exclusive prefix sum (host reference / radix-sort offsets). */
std::vector<uint64_t> exclusivePrefixSum(const std::vector<uint64_t> &v);

} // namespace pimeval

#endif // PIMEVAL_HOST_HOST_KERNELS_H_
