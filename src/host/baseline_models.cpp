/**
 * @file
 * Roofline baseline model implementations.
 */

#include "host/baseline_models.h"

#include <algorithm>

namespace pimeval {

CpuModel::CpuModel(const HostParams &params) : params_(params)
{
}

BaselineCost
CpuModel::cost(const WorkloadProfile &work) const
{
    const double bw =
        params_.cpu_mem_bw_gbps * 1e9 * params_.cpu_bw_efficiency;
    const double mem_sec = static_cast<double>(work.bytes) / bw;

    // Serial portions run on one scalar core; parallel portions use
    // the full SIMD throughput (derated to the achievable fraction).
    const double parallel_ops =
        static_cast<double>(work.ops) * (1.0 - work.serial_fraction);
    const double serial_ops =
        static_cast<double>(work.ops) * work.serial_fraction;
    const double compute_sec =
        parallel_ops / (params_.cpuPeakOpsPerSec() *
                        params_.cpu_compute_efficiency) +
        serial_ops / (params_.cpu_freq_ghz * 1e9);

    BaselineCost cost;
    cost.runtime_sec = std::max(mem_sec, compute_sec);
    cost.energy_j = cost.runtime_sec * params_.cpu_tdp_w;
    return cost;
}

GpuModel::GpuModel(const HostParams &params) : params_(params)
{
}

BaselineCost
GpuModel::cost(const WorkloadProfile &work) const
{
    const double bw =
        params_.gpu_mem_bw_gbps * 1e9 * params_.gpu_bw_efficiency;
    const double mem_sec = static_cast<double>(work.bytes) / bw;

    // Serial fractions hurt the GPU more: model them at a tenth of a
    // CPU core's scalar rate (divergent single-lane execution).
    const double parallel_ops =
        static_cast<double>(work.ops) * (1.0 - work.serial_fraction);
    const double serial_ops =
        static_cast<double>(work.ops) * work.serial_fraction;
    const double compute_sec =
        parallel_ops / (params_.gpuPeakOpsPerSec() *
                        params_.gpu_compute_efficiency) +
        serial_ops / (0.1 * params_.cpu_freq_ghz * 1e9);

    BaselineCost cost;
    cost.runtime_sec = std::max(mem_sec, compute_sec);
    cost.energy_j = cost.runtime_sec * params_.gpu_tdp_w;
    return cost;
}

} // namespace pimeval
