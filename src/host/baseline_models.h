/**
 * @file
 * Analytical CPU and GPU baseline models.
 *
 * The paper measures its baselines on an AMD EPYC 9124 and an NVIDIA
 * A100 (Table II). Neither is available here, so baselines are modeled
 * with a roofline: runtime = max(bytes / peak-BW, ops / peak-compute),
 * using the paper's peak numbers, and energy = runtime x TDP. The
 * PIMbench kernels are memory-bound on these machines, which is why
 * the roofline preserves the paper's win/loss shapes (see DESIGN.md,
 * substitutions table).
 */

#ifndef PIMEVAL_HOST_BASELINE_MODELS_H_
#define PIMEVAL_HOST_BASELINE_MODELS_H_

#include <cstdint>
#include <string>

#include "core/pim_params.h"

namespace pimeval {

/**
 * Work characterization of a benchmark for the roofline baselines.
 */
struct WorkloadProfile
{
    /** Total bytes moved between memory and the compute units. */
    uint64_t bytes = 0;
    /** Total scalar integer operations. */
    uint64_t ops = 0;
    /**
     * Serial fraction [0,1] that cannot use SIMD/parallel units
     * (e.g., gather phases); inflates the compute roof.
     */
    double serial_fraction = 0.0;

    WorkloadProfile &operator+=(const WorkloadProfile &o)
    {
        bytes += o.bytes;
        ops += o.ops;
        serial_fraction =
            (serial_fraction + o.serial_fraction) / 2.0;
        return *this;
    }
};

/**
 * Modeled baseline outcome.
 */
struct BaselineCost
{
    double runtime_sec = 0.0;
    double energy_j = 0.0;
};

/**
 * Roofline CPU model (AMD EPYC 9124 defaults).
 */
class CpuModel
{
  public:
    explicit CpuModel(const HostParams &params = HostParams{});

    BaselineCost cost(const WorkloadProfile &work) const;

    const HostParams &params() const { return params_; }

  private:
    HostParams params_;
};

/**
 * Roofline GPU model (NVIDIA A100 defaults).
 */
class GpuModel
{
  public:
    explicit GpuModel(const HostParams &params = HostParams{});

    BaselineCost cost(const WorkloadProfile &work) const;

  private:
    HostParams params_;
};

} // namespace pimeval

#endif // PIMEVAL_HOST_BASELINE_MODELS_H_
