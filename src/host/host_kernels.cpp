/**
 * @file
 * Host kernel implementations.
 */

#include "host/host_kernels.h"

#include <algorithm>
#include <cmath>
#include <map>
#include <numeric>

namespace pimeval {

std::vector<uint32_t>
countingSortScatter(const std::vector<uint32_t> &keys,
                    const std::vector<uint64_t> &counts, unsigned shift,
                    uint32_t mask)
{
    std::vector<uint64_t> offsets = exclusivePrefixSum(counts);
    std::vector<uint32_t> out(keys.size());
    for (uint32_t key : keys) {
        const uint32_t digit = (key >> shift) & mask;
        out[offsets[digit]++] = key;
    }
    return out;
}

std::vector<uint32_t>
gatherByBitmap(const std::vector<uint32_t> &values,
               const std::vector<uint8_t> &bitmap)
{
    std::vector<uint32_t> out;
    for (size_t i = 0; i < values.size(); ++i) {
        if (bitmap[i])
            out.push_back(values[i]);
    }
    return out;
}

int
knnClassify(const std::vector<int> &distances,
            const std::vector<int> &labels, unsigned k)
{
    std::vector<size_t> order(distances.size());
    std::iota(order.begin(), order.end(), 0);
    const size_t kk = std::min<size_t>(k, order.size());
    std::partial_sort(order.begin(), order.begin() + kk, order.end(),
                      [&](size_t a, size_t b) {
                          return distances[a] < distances[b];
                      });
    std::map<int, unsigned> votes;
    for (size_t i = 0; i < kk; ++i)
        ++votes[labels[order[i]]];
    int best_label = 0;
    unsigned best_votes = 0;
    for (const auto &[label, count] : votes) {
        if (count > best_votes) {
            best_votes = count;
            best_label = label;
        }
    }
    return best_label;
}

std::vector<float>
softmax(const std::vector<int64_t> &logits)
{
    if (logits.empty())
        return {};
    // Scale integer logits down before exponentiation.
    const int64_t max_logit =
        *std::max_element(logits.begin(), logits.end());
    std::vector<float> out(logits.size());
    float sum = 0.0f;
    for (size_t i = 0; i < logits.size(); ++i) {
        out[i] = std::exp(
            static_cast<float>(logits[i] - max_logit) / 256.0f);
        sum += out[i];
    }
    for (auto &v : out)
        v /= sum;
    return out;
}

std::vector<std::vector<int>>
extractConvShifts(const std::vector<int> &plane, uint32_t height,
                  uint32_t width)
{
    std::vector<std::vector<int>> shifts;
    shifts.reserve(9);
    for (int dy = -1; dy <= 1; ++dy) {
        for (int dx = -1; dx <= 1; ++dx) {
            std::vector<int> shifted(plane.size(), 0);
            for (uint32_t y = 0; y < height; ++y) {
                const int sy = static_cast<int>(y) + dy;
                if (sy < 0 || sy >= static_cast<int>(height))
                    continue;
                for (uint32_t x = 0; x < width; ++x) {
                    const int sx = static_cast<int>(x) + dx;
                    if (sx < 0 || sx >= static_cast<int>(width))
                        continue;
                    shifted[y * width + x] =
                        plane[static_cast<uint32_t>(sy) * width +
                              static_cast<uint32_t>(sx)];
                }
            }
            shifts.push_back(std::move(shifted));
        }
    }
    return shifts;
}

std::vector<uint64_t>
exclusivePrefixSum(const std::vector<uint64_t> &v)
{
    std::vector<uint64_t> out(v.size(), 0);
    uint64_t running = 0;
    for (size_t i = 0; i < v.size(); ++i) {
        out[i] = running;
        running += v[i];
    }
    return out;
}

} // namespace pimeval
