/**
 * @file
 * Functional model of the Fulcrum subarray-level bit-parallel PIM core
 * (paper Section IV, Fig. 4).
 *
 * A Fulcrum core couples two consecutive subarrays with an AddressLess
 * Processing Unit (ALPU): three row-wide "walker" latch rows, three
 * temporary registers, a small instruction buffer, and a scalar ALU
 * (32-bit at 167 MHz in the paper's configuration). Data is laid out
 * horizontally; the ALPU walks the row buffer one element at a time
 * using one-hot column selection.
 *
 * The same model, widened to 128 bits and placed behind the GDL,
 * serves as the bank-level processing element (see src/banklevel).
 */

#ifndef PIMEVAL_FULCRUM_FULCRUM_CORE_H_
#define PIMEVAL_FULCRUM_FULCRUM_CORE_H_

#include <cstdint>
#include <vector>

namespace pimeval {

/** Scalar operations supported by the ALPU. */
enum class AlpuOp {
    kAdd = 0,
    kSub,
    kMul,
    kDiv,
    kMin,
    kMax,
    kAnd,
    kOr,
    kXor,
    kXnor,
    kNot,
    kAbs,
    kGT,
    kLT,
    kEQ,
    kShiftL,
    kShiftR,
    kPopCount,
};

/** ALU cycles per element for an op (SWAR popcount costs 12). */
unsigned alpuCyclesForOp(AlpuOp op, bool has_native_popcount);

/**
 * Walker + ALPU functional core.
 *
 * Memory is a set of rows of packed bits; three walkers latch full
 * rows. processRows() streams elements through the ALPU, mirroring
 * Fulcrum's sequential one-hot column walk, and counts row reads/
 * writes and ALU cycles for the performance model validation tests.
 */
class FulcrumCore
{
  public:
    /**
     * @param num_rows  rows in the aggregated core (2 subarrays).
     * @param row_bits  bits per row (local row buffer width).
     * @param alu_bits  ALU width (32 for Fulcrum, 128 for bank PE).
     */
    FulcrumCore(uint32_t num_rows, uint32_t row_bits, unsigned alu_bits);

    uint32_t numRows() const { return num_rows_; }
    uint32_t rowBits() const { return row_bits_; }
    unsigned aluBits() const { return alu_bits_; }

    /** Load a memory row into a walker (counts one row read). */
    void loadWalker(unsigned walker, uint32_t row);

    /** Store a walker back to a memory row (counts one row write). */
    void storeWalker(unsigned walker, uint32_t row);

    /**
     * Stream @p num_elements elements of @p elem_bits each through the
     * ALPU: walker2[i] = op(walker0[i], walker1[i]).
     * For single-operand ops walker1 is ignored; for scalar ops the
     * scalar replaces walker1's element.
     */
    void processElements(AlpuOp op, unsigned elem_bits,
                         uint32_t num_elements, bool is_signed,
                         bool use_scalar = false, uint64_t scalar = 0);

    /**
     * Reduction: sum elements of walker0 into the accumulator
     * register; returns the running value.
     */
    int64_t reduceElements(unsigned elem_bits, uint32_t num_elements,
                           bool is_signed);

    /** Raw element access within a walker row (for tests). */
    uint64_t walkerElement(unsigned walker, unsigned elem_bits,
                           uint32_t index) const;
    void setWalkerElement(unsigned walker, unsigned elem_bits,
                          uint32_t index, uint64_t value);

    /** Raw element access within a memory row (for tests). */
    uint64_t memoryElement(uint32_t row, unsigned elem_bits,
                           uint32_t index) const;
    void setMemoryElement(uint32_t row, unsigned elem_bits,
                          uint32_t index, uint64_t value);

    // --- Counters for timing validation ---
    uint64_t rowReads() const { return row_reads_; }
    uint64_t rowWrites() const { return row_writes_; }
    uint64_t aluCycles() const { return alu_cycles_; }
    void resetCounters();

  private:
    using Row = std::vector<uint64_t>;

    static uint64_t getBits(const Row &row, uint64_t bit_off,
                            unsigned nbits);
    static void setBits(Row &row, uint64_t bit_off, unsigned nbits,
                        uint64_t value);

    uint32_t num_rows_;
    uint32_t row_bits_;
    unsigned alu_bits_;
    uint32_t words_per_row_;
    std::vector<Row> memory_;
    std::vector<Row> walkers_; ///< three row-wide latches
    int64_t accumulator_ = 0;

    uint64_t row_reads_ = 0;
    uint64_t row_writes_ = 0;
    uint64_t alu_cycles_ = 0;
};

/**
 * Scalar ALU reference semantics shared by the Fulcrum and bank-level
 * functional models and by the element-wise functional execution in
 * the core simulator. Operates on sign-/zero-extended 64-bit values,
 * truncating to @p elem_bits.
 */
uint64_t alpuCompute(AlpuOp op, uint64_t a, uint64_t b, unsigned elem_bits,
                     bool is_signed);

} // namespace pimeval

#endif // PIMEVAL_FULCRUM_FULCRUM_CORE_H_
