/**
 * @file
 * FulcrumCore implementation and shared ALU semantics.
 */

#include "fulcrum/fulcrum_core.h"

#include <bit>
#include <cassert>

namespace pimeval {

namespace {

/** Sign-extend the low @p nbits of @p v to 64 bits. */
int64_t
signExtend(uint64_t v, unsigned nbits)
{
    if (nbits >= 64)
        return static_cast<int64_t>(v);
    const uint64_t sign = 1ull << (nbits - 1);
    const uint64_t mask = (1ull << nbits) - 1;
    v &= mask;
    return static_cast<int64_t>((v ^ sign) - sign);
}

uint64_t
truncBits(uint64_t v, unsigned nbits)
{
    if (nbits >= 64)
        return v;
    return v & ((1ull << nbits) - 1);
}

} // namespace

unsigned
alpuCyclesForOp(AlpuOp op, bool has_native_popcount)
{
    switch (op) {
      case AlpuOp::kPopCount:
        // Fulcrum uses a 12-cycle SWAR sequence; the bank-level PE
        // (RISC-V Bitmanip-style cpop) does it in one cycle.
        return has_native_popcount ? 1 : 12;
      case AlpuOp::kDiv:
        // Iterative divider.
        return 16;
      default:
        return 1;
    }
}

uint64_t
alpuCompute(AlpuOp op, uint64_t a, uint64_t b, unsigned elem_bits,
            bool is_signed)
{
    const uint64_t ua = truncBits(a, elem_bits);
    const uint64_t ub = truncBits(b, elem_bits);
    const int64_t sa = signExtend(ua, elem_bits);
    const int64_t sb = signExtend(ub, elem_bits);

    uint64_t result = 0;
    switch (op) {
      case AlpuOp::kAdd:
        result = ua + ub;
        break;
      case AlpuOp::kSub:
        result = ua - ub;
        break;
      case AlpuOp::kMul:
        result = ua * ub;
        break;
      case AlpuOp::kDiv:
        if (is_signed) {
            result = (sb == 0)
                ? 0 : static_cast<uint64_t>(sa / sb);
        } else {
            result = (ub == 0) ? 0 : ua / ub;
        }
        break;
      case AlpuOp::kMin:
        if (is_signed)
            result = (sa < sb) ? ua : ub;
        else
            result = (ua < ub) ? ua : ub;
        break;
      case AlpuOp::kMax:
        if (is_signed)
            result = (sa > sb) ? ua : ub;
        else
            result = (ua > ub) ? ua : ub;
        break;
      case AlpuOp::kAnd:
        result = ua & ub;
        break;
      case AlpuOp::kOr:
        result = ua | ub;
        break;
      case AlpuOp::kXor:
        result = ua ^ ub;
        break;
      case AlpuOp::kXnor:
        result = ~(ua ^ ub);
        break;
      case AlpuOp::kNot:
        result = ~ua;
        break;
      case AlpuOp::kAbs:
        result = (is_signed && sa < 0)
            ? static_cast<uint64_t>(-sa) : ua;
        break;
      case AlpuOp::kGT:
        result = is_signed ? (sa > sb) : (ua > ub);
        break;
      case AlpuOp::kLT:
        result = is_signed ? (sa < sb) : (ua < ub);
        break;
      case AlpuOp::kEQ:
        result = (ua == ub);
        break;
      case AlpuOp::kShiftL:
        result = (ub >= elem_bits) ? 0 : (ua << ub);
        break;
      case AlpuOp::kShiftR:
        if (is_signed) {
            const unsigned sh =
                ub >= elem_bits ? elem_bits - 1
                                : static_cast<unsigned>(ub);
            result = static_cast<uint64_t>(sa >> sh);
        } else {
            result = (ub >= elem_bits) ? 0 : (ua >> ub);
        }
        break;
      case AlpuOp::kPopCount:
        result = static_cast<uint64_t>(std::popcount(ua));
        break;
    }
    return truncBits(result, elem_bits);
}

FulcrumCore::FulcrumCore(uint32_t num_rows, uint32_t row_bits,
                         unsigned alu_bits)
    : num_rows_(num_rows), row_bits_(row_bits), alu_bits_(alu_bits),
      words_per_row_((row_bits + 63) / 64),
      memory_(num_rows, Row(words_per_row_, 0)),
      walkers_(3, Row(words_per_row_, 0))
{
}

uint64_t
FulcrumCore::getBits(const Row &row, uint64_t bit_off, unsigned nbits)
{
    assert(nbits <= 64);
    const uint64_t word = bit_off / 64;
    const unsigned shift = bit_off % 64;
    uint64_t v = row[word] >> shift;
    if (shift + nbits > 64 && word + 1 < row.size())
        v |= row[word + 1] << (64 - shift);
    return truncBits(v, nbits);
}

void
FulcrumCore::setBits(Row &row, uint64_t bit_off, unsigned nbits,
                     uint64_t value)
{
    assert(nbits <= 64);
    value = truncBits(value, nbits);
    const uint64_t word = bit_off / 64;
    const unsigned shift = bit_off % 64;
    const uint64_t mask =
        (nbits >= 64) ? ~0ull : ((1ull << nbits) - 1);
    row[word] = (row[word] & ~(mask << shift)) | (value << shift);
    if (shift + nbits > 64 && word + 1 < row.size()) {
        const unsigned hi_bits = shift + nbits - 64;
        const uint64_t hi_mask = (1ull << hi_bits) - 1;
        row[word + 1] =
            (row[word + 1] & ~hi_mask) | (value >> (64 - shift));
    }
}

void
FulcrumCore::loadWalker(unsigned walker, uint32_t row)
{
    assert(walker < walkers_.size() && row < num_rows_);
    walkers_[walker] = memory_[row];
    ++row_reads_;
}

void
FulcrumCore::storeWalker(unsigned walker, uint32_t row)
{
    assert(walker < walkers_.size() && row < num_rows_);
    memory_[row] = walkers_[walker];
    ++row_writes_;
}

void
FulcrumCore::processElements(AlpuOp op, unsigned elem_bits,
                             uint32_t num_elements, bool is_signed,
                             bool use_scalar, uint64_t scalar)
{
    assert(elem_bits <= alu_bits_ && elem_bits <= 64);
    assert(static_cast<uint64_t>(num_elements) * elem_bits <= row_bits_);
    const unsigned cycles =
        alpuCyclesForOp(op, /*has_native_popcount=*/alu_bits_ >= 64);
    for (uint32_t i = 0; i < num_elements; ++i) {
        const uint64_t off = static_cast<uint64_t>(i) * elem_bits;
        const uint64_t a = getBits(walkers_[0], off, elem_bits);
        const uint64_t b =
            use_scalar ? scalar : getBits(walkers_[1], off, elem_bits);
        const uint64_t r = alpuCompute(op, a, b, elem_bits, is_signed);
        setBits(walkers_[2], off, elem_bits, r);
        alu_cycles_ += cycles;
    }
}

int64_t
FulcrumCore::reduceElements(unsigned elem_bits, uint32_t num_elements,
                            bool is_signed)
{
    assert(static_cast<uint64_t>(num_elements) * elem_bits <= row_bits_);
    for (uint32_t i = 0; i < num_elements; ++i) {
        const uint64_t off = static_cast<uint64_t>(i) * elem_bits;
        const uint64_t v = getBits(walkers_[0], off, elem_bits);
        accumulator_ +=
            is_signed ? signExtend(v, elem_bits)
                      : static_cast<int64_t>(v);
        ++alu_cycles_;
    }
    return accumulator_;
}

uint64_t
FulcrumCore::walkerElement(unsigned walker, unsigned elem_bits,
                           uint32_t index) const
{
    return getBits(walkers_[walker],
                   static_cast<uint64_t>(index) * elem_bits, elem_bits);
}

void
FulcrumCore::setWalkerElement(unsigned walker, unsigned elem_bits,
                              uint32_t index, uint64_t value)
{
    setBits(walkers_[walker],
            static_cast<uint64_t>(index) * elem_bits, elem_bits, value);
}

uint64_t
FulcrumCore::memoryElement(uint32_t row, unsigned elem_bits,
                           uint32_t index) const
{
    return getBits(memory_[row],
                   static_cast<uint64_t>(index) * elem_bits, elem_bits);
}

void
FulcrumCore::setMemoryElement(uint32_t row, unsigned elem_bits,
                              uint32_t index, uint64_t value)
{
    setBits(memory_[row],
            static_cast<uint64_t>(index) * elem_bits, elem_bits, value);
}

void
FulcrumCore::resetCounters()
{
    row_reads_ = 0;
    row_writes_ = 0;
    alu_cycles_ = 0;
}

} // namespace pimeval
