/**
 * @file
 * FulcrumCore implementation and shared ALU semantics.
 */

#include "fulcrum/fulcrum_core.h"

#include <cassert>

#include "core/pim_metrics.h"
#include "fulcrum/alpu_kernels.h"

namespace pimeval {

unsigned
alpuCyclesForOp(AlpuOp op, bool has_native_popcount)
{
    switch (op) {
      case AlpuOp::kPopCount:
        // Fulcrum uses a 12-cycle SWAR sequence; the bank-level PE
        // (RISC-V Bitmanip-style cpop) does it in one cycle.
        return has_native_popcount ? 1 : 12;
      case AlpuOp::kDiv:
        // Iterative divider.
        return 16;
      default:
        return 1;
    }
}

uint64_t
alpuCompute(AlpuOp op, uint64_t a, uint64_t b, unsigned elem_bits,
            bool is_signed)
{
    // Runtime dispatch over the compile-time-specialized semantics in
    // alpu_kernels.h, so this function and the chunked kernels in the
    // core simulator cannot drift apart.
    switch (op) {
      case AlpuOp::kAdd:
        return alpuComputeT<AlpuOp::kAdd>(a, b, elem_bits, is_signed);
      case AlpuOp::kSub:
        return alpuComputeT<AlpuOp::kSub>(a, b, elem_bits, is_signed);
      case AlpuOp::kMul:
        return alpuComputeT<AlpuOp::kMul>(a, b, elem_bits, is_signed);
      case AlpuOp::kDiv:
        return alpuComputeT<AlpuOp::kDiv>(a, b, elem_bits, is_signed);
      case AlpuOp::kMin:
        return alpuComputeT<AlpuOp::kMin>(a, b, elem_bits, is_signed);
      case AlpuOp::kMax:
        return alpuComputeT<AlpuOp::kMax>(a, b, elem_bits, is_signed);
      case AlpuOp::kAnd:
        return alpuComputeT<AlpuOp::kAnd>(a, b, elem_bits, is_signed);
      case AlpuOp::kOr:
        return alpuComputeT<AlpuOp::kOr>(a, b, elem_bits, is_signed);
      case AlpuOp::kXor:
        return alpuComputeT<AlpuOp::kXor>(a, b, elem_bits, is_signed);
      case AlpuOp::kXnor:
        return alpuComputeT<AlpuOp::kXnor>(a, b, elem_bits, is_signed);
      case AlpuOp::kNot:
        return alpuComputeT<AlpuOp::kNot>(a, b, elem_bits, is_signed);
      case AlpuOp::kAbs:
        return alpuComputeT<AlpuOp::kAbs>(a, b, elem_bits, is_signed);
      case AlpuOp::kGT:
        return alpuComputeT<AlpuOp::kGT>(a, b, elem_bits, is_signed);
      case AlpuOp::kLT:
        return alpuComputeT<AlpuOp::kLT>(a, b, elem_bits, is_signed);
      case AlpuOp::kEQ:
        return alpuComputeT<AlpuOp::kEQ>(a, b, elem_bits, is_signed);
      case AlpuOp::kShiftL:
        return alpuComputeT<AlpuOp::kShiftL>(a, b, elem_bits,
                                             is_signed);
      case AlpuOp::kShiftR:
        return alpuComputeT<AlpuOp::kShiftR>(a, b, elem_bits,
                                             is_signed);
      case AlpuOp::kPopCount:
        return alpuComputeT<AlpuOp::kPopCount>(a, b, elem_bits,
                                               is_signed);
    }
    return 0;
}

FulcrumCore::FulcrumCore(uint32_t num_rows, uint32_t row_bits,
                         unsigned alu_bits)
    : num_rows_(num_rows), row_bits_(row_bits), alu_bits_(alu_bits),
      words_per_row_((row_bits + 63) / 64),
      memory_(num_rows, Row(words_per_row_, 0)),
      walkers_(3, Row(words_per_row_, 0))
{
}

uint64_t
FulcrumCore::getBits(const Row &row, uint64_t bit_off, unsigned nbits)
{
    assert(nbits <= 64);
    const uint64_t word = bit_off / 64;
    const unsigned shift = bit_off % 64;
    uint64_t v = row[word] >> shift;
    if (shift + nbits > 64 && word + 1 < row.size())
        v |= row[word + 1] << (64 - shift);
    return alpuTruncBits(v, nbits);
}

void
FulcrumCore::setBits(Row &row, uint64_t bit_off, unsigned nbits,
                     uint64_t value)
{
    assert(nbits <= 64);
    value = alpuTruncBits(value, nbits);
    const uint64_t word = bit_off / 64;
    const unsigned shift = bit_off % 64;
    const uint64_t mask =
        (nbits >= 64) ? ~0ull : ((1ull << nbits) - 1);
    row[word] = (row[word] & ~(mask << shift)) | (value << shift);
    if (shift + nbits > 64 && word + 1 < row.size()) {
        const unsigned hi_bits = shift + nbits - 64;
        const uint64_t hi_mask = (1ull << hi_bits) - 1;
        row[word + 1] =
            (row[word + 1] & ~hi_mask) | (value >> (64 - shift));
    }
}

void
FulcrumCore::loadWalker(unsigned walker, uint32_t row)
{
    assert(walker < walkers_.size() && row < num_rows_);
    walkers_[walker] = memory_[row];
    ++row_reads_;
}

void
FulcrumCore::storeWalker(unsigned walker, uint32_t row)
{
    assert(walker < walkers_.size() && row < num_rows_);
    memory_[row] = walkers_[walker];
    ++row_writes_;
}

void
FulcrumCore::processElements(AlpuOp op, unsigned elem_bits,
                             uint32_t num_elements, bool is_signed,
                             bool use_scalar, uint64_t scalar)
{
    assert(elem_bits <= alu_bits_ && elem_bits <= 64);
    assert(static_cast<uint64_t>(num_elements) * elem_bits <= row_bits_);
    // Batched per row of elements, not per element.
    PIM_METRIC_COUNT("substrate.fulcrum.elements", num_elements);
    const unsigned cycles =
        alpuCyclesForOp(op, /*has_native_popcount=*/alu_bits_ >= 64);
    for (uint32_t i = 0; i < num_elements; ++i) {
        const uint64_t off = static_cast<uint64_t>(i) * elem_bits;
        const uint64_t a = getBits(walkers_[0], off, elem_bits);
        const uint64_t b =
            use_scalar ? scalar : getBits(walkers_[1], off, elem_bits);
        const uint64_t r = alpuCompute(op, a, b, elem_bits, is_signed);
        setBits(walkers_[2], off, elem_bits, r);
        alu_cycles_ += cycles;
    }
}

int64_t
FulcrumCore::reduceElements(unsigned elem_bits, uint32_t num_elements,
                            bool is_signed)
{
    assert(static_cast<uint64_t>(num_elements) * elem_bits <= row_bits_);
    for (uint32_t i = 0; i < num_elements; ++i) {
        const uint64_t off = static_cast<uint64_t>(i) * elem_bits;
        const uint64_t v = getBits(walkers_[0], off, elem_bits);
        accumulator_ +=
            is_signed ? alpuSignExtend(v, elem_bits)
                      : static_cast<int64_t>(v);
        ++alu_cycles_;
    }
    return accumulator_;
}

uint64_t
FulcrumCore::walkerElement(unsigned walker, unsigned elem_bits,
                           uint32_t index) const
{
    return getBits(walkers_[walker],
                   static_cast<uint64_t>(index) * elem_bits, elem_bits);
}

void
FulcrumCore::setWalkerElement(unsigned walker, unsigned elem_bits,
                              uint32_t index, uint64_t value)
{
    setBits(walkers_[walker],
            static_cast<uint64_t>(index) * elem_bits, elem_bits, value);
}

uint64_t
FulcrumCore::memoryElement(uint32_t row, unsigned elem_bits,
                           uint32_t index) const
{
    return getBits(memory_[row],
                   static_cast<uint64_t>(index) * elem_bits, elem_bits);
}

void
FulcrumCore::setMemoryElement(uint32_t row, unsigned elem_bits,
                              uint32_t index, uint64_t value)
{
    setBits(memory_[row],
            static_cast<uint64_t>(index) * elem_bits, elem_bits, value);
}

void
FulcrumCore::resetCounters()
{
    row_reads_ = 0;
    row_writes_ = 0;
    alu_cycles_ = 0;
}

} // namespace pimeval
