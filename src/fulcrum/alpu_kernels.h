/**
 * @file
 * Compile-time-specialized ALU semantics shared by the runtime
 * alpuCompute() dispatcher and the chunked kernel execution engine in
 * the core simulator (docs/PERFORMANCE.md).
 *
 * alpuComputeT<Op> is the single source of truth for per-element
 * semantics: alpuCompute() in fulcrum_core.cpp is a switch over these
 * instantiations, and the op-specialized element loops in
 * pim_device.cpp instantiate them directly so the op dispatch hoists
 * out of the loop and the masked uint64_t lane arithmetic can
 * autovectorize.
 */

#ifndef PIMEVAL_FULCRUM_ALPU_KERNELS_H_
#define PIMEVAL_FULCRUM_ALPU_KERNELS_H_

#include <bit>
#include <cstddef>
#include <cstdint>

#include "fulcrum/fulcrum_core.h"

namespace pimeval {

/**
 * Sign-extend the low @p nbits of @p v to 64 bits.
 * Branchless for 1 <= nbits <= 64 (C++20 guarantees arithmetic right
 * shift on signed types), so signed element kernels stay
 * vectorizable.
 */
inline int64_t
alpuSignExtend(uint64_t v, unsigned nbits)
{
    const unsigned sh = 64u - nbits;
    return static_cast<int64_t>(v << sh) >> sh;
}

/** Truncate @p v to its low @p nbits (branchless, 1 <= nbits <= 64). */
inline uint64_t
alpuTruncBits(uint64_t v, unsigned nbits)
{
    return v & (~0ull >> (64u - nbits));
}

/**
 * ALU reference semantics with the operation fixed at compile time.
 * Bit-identical to alpuCompute(Op, ...): operates on sign-/zero-
 * extended 64-bit values and truncates the result to @p elem_bits.
 */
template <AlpuOp Op>
inline uint64_t
alpuComputeT(uint64_t a, uint64_t b, unsigned elem_bits, bool is_signed)
{
    const uint64_t ua = alpuTruncBits(a, elem_bits);
    const uint64_t ub = alpuTruncBits(b, elem_bits);

    uint64_t result = 0;
    if constexpr (Op == AlpuOp::kAdd) {
        result = ua + ub;
    } else if constexpr (Op == AlpuOp::kSub) {
        result = ua - ub;
    } else if constexpr (Op == AlpuOp::kMul) {
        result = ua * ub;
    } else if constexpr (Op == AlpuOp::kDiv) {
        if (is_signed) {
            const int64_t sa = alpuSignExtend(ua, elem_bits);
            const int64_t sb = alpuSignExtend(ub, elem_bits);
            result = (sb == 0) ? 0 : static_cast<uint64_t>(sa / sb);
        } else {
            result = (ub == 0) ? 0 : ua / ub;
        }
    } else if constexpr (Op == AlpuOp::kMin) {
        if (is_signed) {
            result = (alpuSignExtend(ua, elem_bits) <
                      alpuSignExtend(ub, elem_bits))
                ? ua : ub;
        } else {
            result = (ua < ub) ? ua : ub;
        }
    } else if constexpr (Op == AlpuOp::kMax) {
        if (is_signed) {
            result = (alpuSignExtend(ua, elem_bits) >
                      alpuSignExtend(ub, elem_bits))
                ? ua : ub;
        } else {
            result = (ua > ub) ? ua : ub;
        }
    } else if constexpr (Op == AlpuOp::kAnd) {
        result = ua & ub;
    } else if constexpr (Op == AlpuOp::kOr) {
        result = ua | ub;
    } else if constexpr (Op == AlpuOp::kXor) {
        result = ua ^ ub;
    } else if constexpr (Op == AlpuOp::kXnor) {
        result = ~(ua ^ ub);
    } else if constexpr (Op == AlpuOp::kNot) {
        result = ~ua;
    } else if constexpr (Op == AlpuOp::kAbs) {
        if (is_signed) {
            const int64_t sa = alpuSignExtend(ua, elem_bits);
            result = (sa < 0) ? static_cast<uint64_t>(-sa) : ua;
        } else {
            result = ua;
        }
    } else if constexpr (Op == AlpuOp::kGT) {
        result = is_signed
            ? (alpuSignExtend(ua, elem_bits) >
               alpuSignExtend(ub, elem_bits))
            : (ua > ub);
    } else if constexpr (Op == AlpuOp::kLT) {
        result = is_signed
            ? (alpuSignExtend(ua, elem_bits) <
               alpuSignExtend(ub, elem_bits))
            : (ua < ub);
    } else if constexpr (Op == AlpuOp::kEQ) {
        result = (ua == ub);
    } else if constexpr (Op == AlpuOp::kShiftL) {
        result = (ub >= elem_bits) ? 0 : (ua << ub);
    } else if constexpr (Op == AlpuOp::kShiftR) {
        if (is_signed) {
            const unsigned sh = ub >= elem_bits
                ? elem_bits - 1
                : static_cast<unsigned>(ub);
            result = static_cast<uint64_t>(
                alpuSignExtend(ua, elem_bits) >> sh);
        } else {
            result = (ub >= elem_bits) ? 0 : (ua >> ub);
        }
    } else if constexpr (Op == AlpuOp::kPopCount) {
        result = static_cast<uint64_t>(std::popcount(ua));
    }
    return alpuTruncBits(result, elem_bits);
}

// ---------------------------------------------------------------------------
// Chunk kernels: the op dispatch happens once per command (selecting a
// function pointer through *ChunkFor), so each body is a tight masked
// uint64_t loop the compiler can unroll and autovectorize. Shared by
// the core simulator's execution engine and the fusion tape
// interpreter (core/pim_fusion.h).
// ---------------------------------------------------------------------------

/** dest[i] = op(a[i], b[i]) & mask, with NE realized as !EQ. */
template <AlpuOp Op, bool Negate, bool Signed>
inline void
binaryChunk(const uint64_t *a, const uint64_t *b, uint64_t *d,
            size_t lo, size_t hi, unsigned bits, uint64_t mask)
{
    for (size_t i = lo; i < hi; ++i) {
        uint64_t r = alpuComputeT<Op>(a[i], b[i], bits, Signed);
        if constexpr (Negate)
            r ^= 1ull;
        d[i] = r & mask;
    }
}

using BinaryChunkFn = void (*)(const uint64_t *, const uint64_t *,
                               uint64_t *, size_t, size_t, unsigned,
                               uint64_t);

// Signedness is a compile-time parameter of every kernel: the signed
// compare/extend paths otherwise carry a per-element branch that
// defeats autovectorization of min/max/abs/compare loops.
template <bool Negate>
inline BinaryChunkFn
binaryChunkFor(AlpuOp op, bool sgn)
{
    switch (op) {
      case AlpuOp::kAdd:
        return sgn ? &binaryChunk<AlpuOp::kAdd, Negate, true>
                   : &binaryChunk<AlpuOp::kAdd, Negate, false>;
      case AlpuOp::kSub:
        return sgn ? &binaryChunk<AlpuOp::kSub, Negate, true>
                   : &binaryChunk<AlpuOp::kSub, Negate, false>;
      case AlpuOp::kMul:
        return sgn ? &binaryChunk<AlpuOp::kMul, Negate, true>
                   : &binaryChunk<AlpuOp::kMul, Negate, false>;
      case AlpuOp::kDiv:
        return sgn ? &binaryChunk<AlpuOp::kDiv, Negate, true>
                   : &binaryChunk<AlpuOp::kDiv, Negate, false>;
      case AlpuOp::kMin:
        return sgn ? &binaryChunk<AlpuOp::kMin, Negate, true>
                   : &binaryChunk<AlpuOp::kMin, Negate, false>;
      case AlpuOp::kMax:
        return sgn ? &binaryChunk<AlpuOp::kMax, Negate, true>
                   : &binaryChunk<AlpuOp::kMax, Negate, false>;
      case AlpuOp::kAnd:
        return sgn ? &binaryChunk<AlpuOp::kAnd, Negate, true>
                   : &binaryChunk<AlpuOp::kAnd, Negate, false>;
      case AlpuOp::kOr:
        return sgn ? &binaryChunk<AlpuOp::kOr, Negate, true>
                   : &binaryChunk<AlpuOp::kOr, Negate, false>;
      case AlpuOp::kXor:
        return sgn ? &binaryChunk<AlpuOp::kXor, Negate, true>
                   : &binaryChunk<AlpuOp::kXor, Negate, false>;
      case AlpuOp::kXnor:
        return sgn ? &binaryChunk<AlpuOp::kXnor, Negate, true>
                   : &binaryChunk<AlpuOp::kXnor, Negate, false>;
      case AlpuOp::kNot:
        return sgn ? &binaryChunk<AlpuOp::kNot, Negate, true>
                   : &binaryChunk<AlpuOp::kNot, Negate, false>;
      case AlpuOp::kAbs:
        return sgn ? &binaryChunk<AlpuOp::kAbs, Negate, true>
                   : &binaryChunk<AlpuOp::kAbs, Negate, false>;
      case AlpuOp::kGT:
        return sgn ? &binaryChunk<AlpuOp::kGT, Negate, true>
                   : &binaryChunk<AlpuOp::kGT, Negate, false>;
      case AlpuOp::kLT:
        return sgn ? &binaryChunk<AlpuOp::kLT, Negate, true>
                   : &binaryChunk<AlpuOp::kLT, Negate, false>;
      case AlpuOp::kEQ:
        return sgn ? &binaryChunk<AlpuOp::kEQ, Negate, true>
                   : &binaryChunk<AlpuOp::kEQ, Negate, false>;
      case AlpuOp::kShiftL:
        return sgn ? &binaryChunk<AlpuOp::kShiftL, Negate, true>
                   : &binaryChunk<AlpuOp::kShiftL, Negate, false>;
      case AlpuOp::kShiftR:
        return sgn ? &binaryChunk<AlpuOp::kShiftR, Negate, true>
                   : &binaryChunk<AlpuOp::kShiftR, Negate, false>;
      case AlpuOp::kPopCount:
        return sgn ? &binaryChunk<AlpuOp::kPopCount, Negate, true>
                   : &binaryChunk<AlpuOp::kPopCount, Negate, false>;
    }
    return nullptr;
}

/** dest[i] = op(a[i], scalar) & mask; unary ops pass scalar = 0. */
template <AlpuOp Op, bool Signed>
inline void
scalarChunk(const uint64_t *a, uint64_t s, uint64_t *d, size_t lo,
            size_t hi, unsigned bits, uint64_t mask)
{
    for (size_t i = lo; i < hi; ++i)
        d[i] = alpuComputeT<Op>(a[i], s, bits, Signed) & mask;
}

using ScalarChunkFn = void (*)(const uint64_t *, uint64_t, uint64_t *,
                               size_t, size_t, unsigned, uint64_t);

inline ScalarChunkFn
scalarChunkFor(AlpuOp op, bool sgn)
{
    switch (op) {
      case AlpuOp::kAdd:
        return sgn ? &scalarChunk<AlpuOp::kAdd, true>
                   : &scalarChunk<AlpuOp::kAdd, false>;
      case AlpuOp::kSub:
        return sgn ? &scalarChunk<AlpuOp::kSub, true>
                   : &scalarChunk<AlpuOp::kSub, false>;
      case AlpuOp::kMul:
        return sgn ? &scalarChunk<AlpuOp::kMul, true>
                   : &scalarChunk<AlpuOp::kMul, false>;
      case AlpuOp::kDiv:
        return sgn ? &scalarChunk<AlpuOp::kDiv, true>
                   : &scalarChunk<AlpuOp::kDiv, false>;
      case AlpuOp::kMin:
        return sgn ? &scalarChunk<AlpuOp::kMin, true>
                   : &scalarChunk<AlpuOp::kMin, false>;
      case AlpuOp::kMax:
        return sgn ? &scalarChunk<AlpuOp::kMax, true>
                   : &scalarChunk<AlpuOp::kMax, false>;
      case AlpuOp::kAnd:
        return sgn ? &scalarChunk<AlpuOp::kAnd, true>
                   : &scalarChunk<AlpuOp::kAnd, false>;
      case AlpuOp::kOr:
        return sgn ? &scalarChunk<AlpuOp::kOr, true>
                   : &scalarChunk<AlpuOp::kOr, false>;
      case AlpuOp::kXor:
        return sgn ? &scalarChunk<AlpuOp::kXor, true>
                   : &scalarChunk<AlpuOp::kXor, false>;
      case AlpuOp::kXnor:
        return sgn ? &scalarChunk<AlpuOp::kXnor, true>
                   : &scalarChunk<AlpuOp::kXnor, false>;
      case AlpuOp::kNot:
        return sgn ? &scalarChunk<AlpuOp::kNot, true>
                   : &scalarChunk<AlpuOp::kNot, false>;
      case AlpuOp::kAbs:
        return sgn ? &scalarChunk<AlpuOp::kAbs, true>
                   : &scalarChunk<AlpuOp::kAbs, false>;
      case AlpuOp::kGT:
        return sgn ? &scalarChunk<AlpuOp::kGT, true>
                   : &scalarChunk<AlpuOp::kGT, false>;
      case AlpuOp::kLT:
        return sgn ? &scalarChunk<AlpuOp::kLT, true>
                   : &scalarChunk<AlpuOp::kLT, false>;
      case AlpuOp::kEQ:
        return sgn ? &scalarChunk<AlpuOp::kEQ, true>
                   : &scalarChunk<AlpuOp::kEQ, false>;
      case AlpuOp::kShiftL:
        return sgn ? &scalarChunk<AlpuOp::kShiftL, true>
                   : &scalarChunk<AlpuOp::kShiftL, false>;
      case AlpuOp::kShiftR:
        return sgn ? &scalarChunk<AlpuOp::kShiftR, true>
                   : &scalarChunk<AlpuOp::kShiftR, false>;
      case AlpuOp::kPopCount:
        return sgn ? &scalarChunk<AlpuOp::kPopCount, true>
                   : &scalarChunk<AlpuOp::kPopCount, false>;
    }
    return nullptr;
}

/** dest[i] = (a[i] * scalar + b[i]) & mask (the AXPY inner op). */
template <bool Signed>
inline void
scaledAddChunk(const uint64_t *a, const uint64_t *b, uint64_t s,
               uint64_t *d, size_t lo, size_t hi, unsigned bits,
               uint64_t mask)
{
    for (size_t i = lo; i < hi; ++i) {
        const uint64_t prod =
            alpuComputeT<AlpuOp::kMul>(a[i], s, bits, Signed);
        d[i] = alpuComputeT<AlpuOp::kAdd>(prod, b[i], bits, Signed) &
            mask;
    }
}

using ScaledAddChunkFn = void (*)(const uint64_t *, const uint64_t *,
                                  uint64_t, uint64_t *, size_t, size_t,
                                  unsigned, uint64_t);

// ---------------------------------------------------------------------------
// Fused register kernels: whole expression tapes of 2 or 3 elementwise
// steps evaluated per element in registers — inputs loaded once, one
// store at the end, no intermediate materialization. These are the
// fast paths of the fusion tape interpreter (core/pim_fusion.h) for
// the chain shapes that dominate PIMbench (AXPY mulScalar+add,
// LinReg/K-means sub+mul+add). Each step applies its own width and
// dest mask, so results are bit-identical to running the per-command
// chunk kernels with a materialized intermediate.
// ---------------------------------------------------------------------------

/**
 * Two-step tape: r = op1(a[i], x0); d[i] = op2(r, x1) (or op2(x1, r)
 * when PrevRhs). X-operand k is o_k[i] when Vk, else the scalar s_k.
 */
template <AlpuOp Op1, AlpuOp Op2, bool Signed, bool V0, bool V1,
          bool PrevRhs>
inline void
fusedChunk2(const uint64_t *a, const uint64_t *o0, uint64_t s0,
            const uint64_t *o1, uint64_t s1, uint64_t *d, size_t lo,
            size_t hi, unsigned bits0, uint64_t m0, unsigned bits1,
            uint64_t m1)
{
    for (size_t i = lo; i < hi; ++i) {
        const uint64_t x0 = V0 ? o0[i] : s0;
        const uint64_t r =
            alpuComputeT<Op1>(a[i], x0, bits0, Signed) & m0;
        const uint64_t x1 = V1 ? o1[i] : s1;
        d[i] = (PrevRhs
                    ? alpuComputeT<Op2>(x1, r, bits1, Signed)
                    : alpuComputeT<Op2>(r, x1, bits1, Signed)) &
            m1;
    }
}

using Fused2Fn = void (*)(const uint64_t *, const uint64_t *, uint64_t,
                          const uint64_t *, uint64_t, uint64_t *,
                          size_t, size_t, unsigned, uint64_t, unsigned,
                          uint64_t);

namespace detail {

template <AlpuOp Op1, AlpuOp Op2>
inline Fused2Fn
fused2Pick(bool sgn, bool v0, bool v1, bool prev_rhs)
{
    const unsigned idx = (sgn ? 8u : 0u) | (v0 ? 4u : 0u) |
        (v1 ? 2u : 0u) | (prev_rhs ? 1u : 0u);
    switch (idx) {
      case 0:  return &fusedChunk2<Op1, Op2, false, false, false, false>;
      case 1:  return &fusedChunk2<Op1, Op2, false, false, false, true>;
      case 2:  return &fusedChunk2<Op1, Op2, false, false, true, false>;
      case 3:  return &fusedChunk2<Op1, Op2, false, false, true, true>;
      case 4:  return &fusedChunk2<Op1, Op2, false, true, false, false>;
      case 5:  return &fusedChunk2<Op1, Op2, false, true, false, true>;
      case 6:  return &fusedChunk2<Op1, Op2, false, true, true, false>;
      case 7:  return &fusedChunk2<Op1, Op2, false, true, true, true>;
      case 8:  return &fusedChunk2<Op1, Op2, true, false, false, false>;
      case 9:  return &fusedChunk2<Op1, Op2, true, false, false, true>;
      case 10: return &fusedChunk2<Op1, Op2, true, false, true, false>;
      case 11: return &fusedChunk2<Op1, Op2, true, false, true, true>;
      case 12: return &fusedChunk2<Op1, Op2, true, true, false, false>;
      case 13: return &fusedChunk2<Op1, Op2, true, true, false, true>;
      case 14: return &fusedChunk2<Op1, Op2, true, true, true, false>;
      default: return &fusedChunk2<Op1, Op2, true, true, true, true>;
    }
}

template <AlpuOp Op1>
inline Fused2Fn
fused2PickOp2(AlpuOp op2, bool sgn, bool v0, bool v1, bool prev_rhs)
{
    switch (op2) {
      case AlpuOp::kAdd:
        return fused2Pick<Op1, AlpuOp::kAdd>(sgn, v0, v1, prev_rhs);
      case AlpuOp::kSub:
        return fused2Pick<Op1, AlpuOp::kSub>(sgn, v0, v1, prev_rhs);
      case AlpuOp::kMul:
        return fused2Pick<Op1, AlpuOp::kMul>(sgn, v0, v1, prev_rhs);
      default:
        return nullptr;
    }
}

} // namespace detail

/**
 * Register fast path for 2-op tapes over the add/sub/mul set (the
 * dominant fused shapes). Returns nullptr for unsupported ops — the
 * caller falls back to the tile interpreter.
 */
inline Fused2Fn
fusedChunk2For(AlpuOp op1, AlpuOp op2, bool sgn, bool v0, bool v1,
               bool prev_rhs)
{
    switch (op1) {
      case AlpuOp::kAdd:
        return detail::fused2PickOp2<AlpuOp::kAdd>(op2, sgn, v0, v1,
                                                   prev_rhs);
      case AlpuOp::kSub:
        return detail::fused2PickOp2<AlpuOp::kSub>(op2, sgn, v0, v1,
                                                   prev_rhs);
      case AlpuOp::kMul:
        return detail::fused2PickOp2<AlpuOp::kMul>(op2, sgn, v0, v1,
                                                   prev_rhs);
      default:
        return nullptr;
    }
}

/**
 * Operand pack for 3-op register tapes. Step k's second operand is
 * o[k][i] when o[k] is non-null, else the scalar s[k]; prev_rhs[k]
 * puts the flowing value on the right-hand side of step k (k >= 1).
 * All flags are loop-invariant, so the selects hoist out of the loop.
 */
struct Fused3Args
{
    const uint64_t *a = nullptr; ///< step 0 left operand (vector)
    const uint64_t *o[3] = {nullptr, nullptr, nullptr};
    uint64_t s[3] = {0, 0, 0};
    bool prev_rhs[3] = {false, false, false};
    uint64_t *d = nullptr;
    unsigned bits[3] = {0, 0, 0};
    uint64_t m[3] = {0, 0, 0};
};

template <AlpuOp Op1, AlpuOp Op2, AlpuOp Op3, bool Signed>
inline void
fusedChunk3(const Fused3Args &g, size_t lo, size_t hi)
{
    for (size_t i = lo; i < hi; ++i) {
        const uint64_t x0 = g.o[0] ? g.o[0][i] : g.s[0];
        uint64_t r =
            alpuComputeT<Op1>(g.a[i], x0, g.bits[0], Signed) & g.m[0];
        const uint64_t x1 = g.o[1] ? g.o[1][i] : g.s[1];
        r = (g.prev_rhs[1]
                 ? alpuComputeT<Op2>(x1, r, g.bits[1], Signed)
                 : alpuComputeT<Op2>(r, x1, g.bits[1], Signed)) &
            g.m[1];
        const uint64_t x2 = g.o[2] ? g.o[2][i] : g.s[2];
        r = (g.prev_rhs[2]
                 ? alpuComputeT<Op3>(x2, r, g.bits[2], Signed)
                 : alpuComputeT<Op3>(r, x2, g.bits[2], Signed)) &
            g.m[2];
        g.d[i] = r;
    }
}

using Fused3Fn = void (*)(const Fused3Args &, size_t, size_t);

namespace detail {

template <AlpuOp Op1, AlpuOp Op2>
inline Fused3Fn
fused3PickOp3(AlpuOp op3, bool sgn)
{
    switch (op3) {
      case AlpuOp::kAdd:
        return sgn ? &fusedChunk3<Op1, Op2, AlpuOp::kAdd, true>
                   : &fusedChunk3<Op1, Op2, AlpuOp::kAdd, false>;
      case AlpuOp::kSub:
        return sgn ? &fusedChunk3<Op1, Op2, AlpuOp::kSub, true>
                   : &fusedChunk3<Op1, Op2, AlpuOp::kSub, false>;
      case AlpuOp::kMul:
        return sgn ? &fusedChunk3<Op1, Op2, AlpuOp::kMul, true>
                   : &fusedChunk3<Op1, Op2, AlpuOp::kMul, false>;
      default:
        return nullptr;
    }
}

template <AlpuOp Op1>
inline Fused3Fn
fused3PickOp2(AlpuOp op2, AlpuOp op3, bool sgn)
{
    switch (op2) {
      case AlpuOp::kAdd:
        return fused3PickOp3<Op1, AlpuOp::kAdd>(op3, sgn);
      case AlpuOp::kSub:
        return fused3PickOp3<Op1, AlpuOp::kSub>(op3, sgn);
      case AlpuOp::kMul:
        return fused3PickOp3<Op1, AlpuOp::kMul>(op3, sgn);
      default:
        return nullptr;
    }
}

} // namespace detail

/** Register fast path for 3-op tapes over the add/sub/mul set. */
inline Fused3Fn
fusedChunk3For(AlpuOp op1, AlpuOp op2, AlpuOp op3, bool sgn)
{
    switch (op1) {
      case AlpuOp::kAdd:
        return detail::fused3PickOp2<AlpuOp::kAdd>(op2, op3, sgn);
      case AlpuOp::kSub:
        return detail::fused3PickOp2<AlpuOp::kSub>(op2, op3, sgn);
      case AlpuOp::kMul:
        return detail::fused3PickOp2<AlpuOp::kMul>(op2, op3, sgn);
      default:
        return nullptr;
    }
}

// ---------------------------------------------------------------------------
// Reduction-terminated register kernels: the elementwise result is
// accumulated into a 64-bit partial in the same loop instead of — or
// in addition to — being stored, so a mul+redSum dot product is one
// sweep with no materialized product vector. Accumulation uses
// wrapping uint64 arithmetic (associative), with each element
// sign-extended from its masked width exactly as executeRedSum does;
// the caller combines per-chunk partials by wrapping addition, so the
// total is bit-identical to reducing the materialized intermediate.
// ---------------------------------------------------------------------------

/**
 * One elementwise op + reduction: r = op(a[i], x0) & mask, optionally
 * stored to d (Store), accumulated into the returned partial. x0 is
 * o0[i] when V0, else the scalar s0.
 */
template <AlpuOp Op, bool Signed, bool V0, bool Store>
inline uint64_t
fusedRedChunk1(const uint64_t *a, const uint64_t *o0, uint64_t s0,
               uint64_t *d, size_t lo, size_t hi, unsigned bits,
               uint64_t mask)
{
    uint64_t part = 0;
    for (size_t i = lo; i < hi; ++i) {
        const uint64_t x0 = V0 ? o0[i] : s0;
        const uint64_t r =
            alpuComputeT<Op>(a[i], x0, bits, Signed) & mask;
        if constexpr (Store)
            d[i] = r;
        if constexpr (Signed)
            part += static_cast<uint64_t>(alpuSignExtend(r, bits));
        else
            part += r;
    }
    return part;
}

using FusedRed1Fn = uint64_t (*)(const uint64_t *, const uint64_t *,
                                 uint64_t, uint64_t *, size_t, size_t,
                                 unsigned, uint64_t);

/** Two elementwise ops + reduction over the Fused3Args operand pack
 *  (slots 0-1; d is the optional final store). */
template <AlpuOp Op1, AlpuOp Op2, bool Signed, bool Store>
inline uint64_t
fusedRedChunk2(const Fused3Args &g, size_t lo, size_t hi)
{
    uint64_t part = 0;
    for (size_t i = lo; i < hi; ++i) {
        const uint64_t x0 = g.o[0] ? g.o[0][i] : g.s[0];
        uint64_t r =
            alpuComputeT<Op1>(g.a[i], x0, g.bits[0], Signed) & g.m[0];
        const uint64_t x1 = g.o[1] ? g.o[1][i] : g.s[1];
        r = (g.prev_rhs[1]
                 ? alpuComputeT<Op2>(x1, r, g.bits[1], Signed)
                 : alpuComputeT<Op2>(r, x1, g.bits[1], Signed)) &
            g.m[1];
        if constexpr (Store)
            g.d[i] = r;
        if constexpr (Signed)
            part +=
                static_cast<uint64_t>(alpuSignExtend(r, g.bits[1]));
        else
            part += r;
    }
    return part;
}

using FusedRed2Fn = uint64_t (*)(const Fused3Args &, size_t, size_t);

namespace detail {

template <AlpuOp Op>
inline FusedRed1Fn
fusedRed1Pick(bool sgn, bool v0, bool store)
{
    const unsigned idx =
        (sgn ? 4u : 0u) | (v0 ? 2u : 0u) | (store ? 1u : 0u);
    switch (idx) {
      case 0:  return &fusedRedChunk1<Op, false, false, false>;
      case 1:  return &fusedRedChunk1<Op, false, false, true>;
      case 2:  return &fusedRedChunk1<Op, false, true, false>;
      case 3:  return &fusedRedChunk1<Op, false, true, true>;
      case 4:  return &fusedRedChunk1<Op, true, false, false>;
      case 5:  return &fusedRedChunk1<Op, true, false, true>;
      case 6:  return &fusedRedChunk1<Op, true, true, false>;
      default: return &fusedRedChunk1<Op, true, true, true>;
    }
}

template <AlpuOp Op1, AlpuOp Op2>
inline FusedRed2Fn
fusedRed2Pick(bool sgn, bool store)
{
    const unsigned idx = (sgn ? 2u : 0u) | (store ? 1u : 0u);
    switch (idx) {
      case 0:  return &fusedRedChunk2<Op1, Op2, false, false>;
      case 1:  return &fusedRedChunk2<Op1, Op2, false, true>;
      case 2:  return &fusedRedChunk2<Op1, Op2, true, false>;
      default: return &fusedRedChunk2<Op1, Op2, true, true>;
    }
}

template <AlpuOp Op1>
inline FusedRed2Fn
fusedRed2PickOp2(AlpuOp op2, bool sgn, bool store)
{
    switch (op2) {
      case AlpuOp::kAdd:
        return fusedRed2Pick<Op1, AlpuOp::kAdd>(sgn, store);
      case AlpuOp::kSub:
        return fusedRed2Pick<Op1, AlpuOp::kSub>(sgn, store);
      case AlpuOp::kMul:
        return fusedRed2Pick<Op1, AlpuOp::kMul>(sgn, store);
      default:
        return nullptr;
    }
}

} // namespace detail

/** Register fast path for 1-op + reduction tapes (dot product shape)
 *  over the add/sub/mul set; nullptr falls back to the tile path. */
inline FusedRed1Fn
fusedRedChunk1For(AlpuOp op, bool sgn, bool v0, bool store)
{
    switch (op) {
      case AlpuOp::kAdd:
        return detail::fusedRed1Pick<AlpuOp::kAdd>(sgn, v0, store);
      case AlpuOp::kSub:
        return detail::fusedRed1Pick<AlpuOp::kSub>(sgn, v0, store);
      case AlpuOp::kMul:
        return detail::fusedRed1Pick<AlpuOp::kMul>(sgn, v0, store);
      default:
        return nullptr;
    }
}

/** Register fast path for 2-op + reduction tapes over add/sub/mul. */
inline FusedRed2Fn
fusedRedChunk2For(AlpuOp op1, AlpuOp op2, bool sgn, bool store)
{
    switch (op1) {
      case AlpuOp::kAdd:
        return detail::fusedRed2PickOp2<AlpuOp::kAdd>(op2, sgn, store);
      case AlpuOp::kSub:
        return detail::fusedRed2PickOp2<AlpuOp::kSub>(op2, sgn, store);
      case AlpuOp::kMul:
        return detail::fusedRed2PickOp2<AlpuOp::kMul>(op2, sgn, store);
      default:
        return nullptr;
    }
}

} // namespace pimeval

#endif // PIMEVAL_FULCRUM_ALPU_KERNELS_H_
