/**
 * @file
 * Compile-time-specialized ALU semantics shared by the runtime
 * alpuCompute() dispatcher and the chunked kernel execution engine in
 * the core simulator (docs/PERFORMANCE.md).
 *
 * alpuComputeT<Op> is the single source of truth for per-element
 * semantics: alpuCompute() in fulcrum_core.cpp is a switch over these
 * instantiations, and the op-specialized element loops in
 * pim_device.cpp instantiate them directly so the op dispatch hoists
 * out of the loop and the masked uint64_t lane arithmetic can
 * autovectorize.
 */

#ifndef PIMEVAL_FULCRUM_ALPU_KERNELS_H_
#define PIMEVAL_FULCRUM_ALPU_KERNELS_H_

#include <bit>
#include <cstdint>

#include "fulcrum/fulcrum_core.h"

namespace pimeval {

/**
 * Sign-extend the low @p nbits of @p v to 64 bits.
 * Branchless for 1 <= nbits <= 64 (C++20 guarantees arithmetic right
 * shift on signed types), so signed element kernels stay
 * vectorizable.
 */
inline int64_t
alpuSignExtend(uint64_t v, unsigned nbits)
{
    const unsigned sh = 64u - nbits;
    return static_cast<int64_t>(v << sh) >> sh;
}

/** Truncate @p v to its low @p nbits (branchless, 1 <= nbits <= 64). */
inline uint64_t
alpuTruncBits(uint64_t v, unsigned nbits)
{
    return v & (~0ull >> (64u - nbits));
}

/**
 * ALU reference semantics with the operation fixed at compile time.
 * Bit-identical to alpuCompute(Op, ...): operates on sign-/zero-
 * extended 64-bit values and truncates the result to @p elem_bits.
 */
template <AlpuOp Op>
inline uint64_t
alpuComputeT(uint64_t a, uint64_t b, unsigned elem_bits, bool is_signed)
{
    const uint64_t ua = alpuTruncBits(a, elem_bits);
    const uint64_t ub = alpuTruncBits(b, elem_bits);

    uint64_t result = 0;
    if constexpr (Op == AlpuOp::kAdd) {
        result = ua + ub;
    } else if constexpr (Op == AlpuOp::kSub) {
        result = ua - ub;
    } else if constexpr (Op == AlpuOp::kMul) {
        result = ua * ub;
    } else if constexpr (Op == AlpuOp::kDiv) {
        if (is_signed) {
            const int64_t sa = alpuSignExtend(ua, elem_bits);
            const int64_t sb = alpuSignExtend(ub, elem_bits);
            result = (sb == 0) ? 0 : static_cast<uint64_t>(sa / sb);
        } else {
            result = (ub == 0) ? 0 : ua / ub;
        }
    } else if constexpr (Op == AlpuOp::kMin) {
        if (is_signed) {
            result = (alpuSignExtend(ua, elem_bits) <
                      alpuSignExtend(ub, elem_bits))
                ? ua : ub;
        } else {
            result = (ua < ub) ? ua : ub;
        }
    } else if constexpr (Op == AlpuOp::kMax) {
        if (is_signed) {
            result = (alpuSignExtend(ua, elem_bits) >
                      alpuSignExtend(ub, elem_bits))
                ? ua : ub;
        } else {
            result = (ua > ub) ? ua : ub;
        }
    } else if constexpr (Op == AlpuOp::kAnd) {
        result = ua & ub;
    } else if constexpr (Op == AlpuOp::kOr) {
        result = ua | ub;
    } else if constexpr (Op == AlpuOp::kXor) {
        result = ua ^ ub;
    } else if constexpr (Op == AlpuOp::kXnor) {
        result = ~(ua ^ ub);
    } else if constexpr (Op == AlpuOp::kNot) {
        result = ~ua;
    } else if constexpr (Op == AlpuOp::kAbs) {
        if (is_signed) {
            const int64_t sa = alpuSignExtend(ua, elem_bits);
            result = (sa < 0) ? static_cast<uint64_t>(-sa) : ua;
        } else {
            result = ua;
        }
    } else if constexpr (Op == AlpuOp::kGT) {
        result = is_signed
            ? (alpuSignExtend(ua, elem_bits) >
               alpuSignExtend(ub, elem_bits))
            : (ua > ub);
    } else if constexpr (Op == AlpuOp::kLT) {
        result = is_signed
            ? (alpuSignExtend(ua, elem_bits) <
               alpuSignExtend(ub, elem_bits))
            : (ua < ub);
    } else if constexpr (Op == AlpuOp::kEQ) {
        result = (ua == ub);
    } else if constexpr (Op == AlpuOp::kShiftL) {
        result = (ub >= elem_bits) ? 0 : (ua << ub);
    } else if constexpr (Op == AlpuOp::kShiftR) {
        if (is_signed) {
            const unsigned sh = ub >= elem_bits
                ? elem_bits - 1
                : static_cast<unsigned>(ub);
            result = static_cast<uint64_t>(
                alpuSignExtend(ua, elem_bits) >> sh);
        } else {
            result = (ub >= elem_bits) ? 0 : (ua >> ub);
        }
    } else if constexpr (Op == AlpuOp::kPopCount) {
        result = static_cast<uint64_t>(std::popcount(ua));
    }
    return alpuTruncBits(result, elem_bits);
}

} // namespace pimeval

#endif // PIMEVAL_FULCRUM_ALPU_KERNELS_H_
