/**
 * @file
 * Micron power model (TN-40-07) adapted for PIM energy accounting,
 * following paper Section V-D.
 *
 * Energy is modeled in three parts:
 *  i.  data-transfer energy — Eq. (1) read/write power times transfer
 *      time;
 *  ii. application execution energy — per-API-call aggregation of row
 *      ACT/PRE energy (Eq. 2), GDL transfer energy (scaled from
 *      LISA), and ALU/PE energy (RTL-derived constants);
 *  iii. background energy — active-vs-precharged standby delta scaled
 *      by the number of concurrently active subarrays, plus host idle
 *      power while waiting on PIM.
 */

#ifndef PIMEVAL_ENERGY_MICRON_POWER_MODEL_H_
#define PIMEVAL_ENERGY_MICRON_POWER_MODEL_H_

#include <cstdint>

#include "core/pim_params.h"

namespace pimeval {

/**
 * Stateless energy calculator bound to a device configuration.
 */
class MicronPowerModel
{
  public:
    explicit MicronPowerModel(const PimDeviceConfig &config);

    /** Chips participating in one rank (x8 parts: 8). */
    static constexpr unsigned kChipsPerRank = 8;

    /**
     * Energy for one subarray-local row activation + precharge within
     * a single chip (one subarray row of num_cols bits). Derived from
     * Eq. (2); a whole-bank activation spans 8 chips, so a one-chip
     * subarray activation is charged the per-chip AP energy.
     */
    double rowActPreEnergy() const;

    /**
     * Data transfer energy between host and device for @p bytes,
     * given the transfer occupies @p seconds: Eq. (1) power times
     * time, scaled to the chips of the ranks involved.
     */
    double dataTransferEnergy(uint64_t bytes, double seconds,
                              bool is_read) const;

    /** Energy of one row-wide bit-serial logic micro-op. */
    double bitSerialLogicEnergy() const;

    /** Energy of one Fulcrum ALU op / one bank-PE ALU cycle. */
    double fulcrumAluEnergy() const { return dram_.fulcrum_alu_op_j; }
    double bankAluEnergy() const { return dram_.bank_alu_op_j; }

    /** GDL energy for moving one full row across the GDL one way. */
    double gdlRowTransferEnergy() const;

    /**
     * Background energy while a kernel runs for @p seconds with
     * @p active_subarrays subarrays busy. Follows the paper: the
     * active-standby minus precharged-standby delta, apportioned per
     * subarray, times the active subarray count.
     */
    double backgroundEnergy(double seconds,
                            uint64_t active_subarrays) const;

    /** Host idle energy while waiting on PIM (paper: 10 W). */
    double hostIdleEnergy(double seconds, const HostParams &host) const;

  private:
    PimDeviceConfig config_;
    PimDramParams dram_;
};

} // namespace pimeval

#endif // PIMEVAL_ENERGY_MICRON_POWER_MODEL_H_
