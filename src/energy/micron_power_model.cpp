/**
 * @file
 * MicronPowerModel implementation.
 */

#include "energy/micron_power_model.h"

namespace pimeval {

MicronPowerModel::MicronPowerModel(const PimDeviceConfig &config)
    : config_(config), dram_(config.dram)
{
}

double
MicronPowerModel::rowActPreEnergy() const
{
    // Eq. (2) gives the ACT+PRE energy of one bank activation in one
    // chip. A subarray-level PIM activation is the same local
    // activation, so we charge the per-chip AP energy per subarray
    // row operation.
    return dram_.actPreEnergy();
}

double
MicronPowerModel::dataTransferEnergy(uint64_t bytes, double seconds,
                                     bool is_read) const
{
    (void)bytes;
    // Eq. (1) power (per chip) x chips per rank x ranks engaged,
    // multiplied by the time the burst occupies the interface. The
    // paper treats all ranks as concurrently streaming.
    const double power =
        (is_read ? dram_.readPower() : dram_.writePower()) *
        kChipsPerRank * static_cast<double>(config_.num_ranks);
    return power * seconds;
}

double
MicronPowerModel::bitSerialLogicEnergy() const
{
    return dram_.bitserial_logic_j_per_bit *
        static_cast<double>(config_.num_cols_per_row);
}

double
MicronPowerModel::gdlRowTransferEnergy() const
{
    return dram_.gdl_j_per_bit *
        static_cast<double>(config_.num_cols_per_row);
}

double
MicronPowerModel::backgroundEnergy(double seconds,
                                   uint64_t active_subarrays) const
{
    // Active-standby minus precharged-standby is a per-chip,
    // one-bank-active delta; apportion it to a single subarray by
    // dividing by subarrays-per-bank, then scale by every
    // concurrently active subarray (paper Section V-D iii).
    const double per_subarray =
        dram_.backgroundPowerDelta() /
        static_cast<double>(config_.num_subarrays_per_bank);
    return per_subarray * static_cast<double>(active_subarrays) * seconds;
}

double
MicronPowerModel::hostIdleEnergy(double seconds,
                                 const HostParams &host) const
{
    return host.cpu_idle_w * seconds;
}

} // namespace pimeval
