/**
 * @file
 * Linear regression: PIM reductions + closed-form host solve.
 */

#include "apps/linear_regression.h"

#include <cmath>

#include "util/prng.h"

namespace pimbench {

AppResult
runLinearRegression(const LinearRegressionParams &params)
{
    AppResult result;
    result.name = "Linear Regression";
    pimResetStats();

    const uint64_t n = params.num_points;
    pimeval::Prng rng(params.seed);
    // Points around a known line with noise, small enough that the
    // int32 product reductions cannot overflow int64.
    std::vector<int> xs(n), ys(n);
    for (uint64_t i = 0; i < n; ++i) {
        xs[i] = static_cast<int>(rng.nextInt(-1000, 1000));
        ys[i] = 3 * xs[i] + 17 +
            static_cast<int>(rng.nextInt(-50, 50));
    }

    const PimObjId obj_x =
        pimAlloc(PimAllocEnum::PIM_ALLOC_AUTO, n, 32,
                 PimDataType::PIM_INT32);
    const PimObjId obj_y =
        pimAllocAssociated(32, obj_x, PimDataType::PIM_INT32);
    if (obj_x < 0 || obj_y < 0)
        return result;

    pimCopyHostToDevice(xs.data(), obj_x);
    pimCopyHostToDevice(ys.data(), obj_y);

    // All four reductions in one fusion region: each product chain
    // (mul + redSum) fuses into a single dot-product sweep, and the
    // product temporaries are born and freed inside the window so
    // their stores elide entirely. Reduction results are deferred
    // until pimEndFusion flushes the region.
    int64_t sum_x = 0, sum_y = 0, sum_xy = 0, sum_xx = 0;
    pimBeginFusion();
    pimRedSum(obj_x, &sum_x);
    pimRedSum(obj_y, &sum_y);
    const PimObjId obj_t1 =
        pimAllocAssociated(32, obj_x, PimDataType::PIM_INT32);
    pimMul(obj_x, obj_y, obj_t1);
    pimRedSum(obj_t1, &sum_xy);
    pimFree(obj_t1);
    const PimObjId obj_t2 =
        pimAllocAssociated(32, obj_x, PimDataType::PIM_INT32);
    pimMul(obj_x, obj_x, obj_t2);
    pimRedSum(obj_t2, &sum_xx);
    pimFree(obj_t2);
    pimEndFusion();

    pimFree(obj_x);
    pimFree(obj_y);

    // Host epilogue: least-squares solve.
    const double dn = static_cast<double>(n);
    const double denom =
        dn * static_cast<double>(sum_xx) -
        static_cast<double>(sum_x) * static_cast<double>(sum_x);
    const double b1 =
        (dn * static_cast<double>(sum_xy) -
         static_cast<double>(sum_x) * static_cast<double>(sum_y)) /
        denom;
    const double b0 =
        (static_cast<double>(sum_y) - b1 * static_cast<double>(sum_x)) /
        dn;

    // Verify reductions exactly and the fit loosely.
    int64_t ref_x = 0, ref_y = 0, ref_xy = 0, ref_xx = 0;
    for (uint64_t i = 0; i < n; ++i) {
        ref_x += xs[i];
        ref_y += ys[i];
        ref_xy += static_cast<int64_t>(xs[i]) * ys[i];
        ref_xx += static_cast<int64_t>(xs[i]) * xs[i];
    }
    result.verified = (sum_x == ref_x) && (sum_y == ref_y) &&
        (sum_xy == ref_xy) && (sum_xx == ref_xx) &&
        std::fabs(b1 - 3.0) < 0.1 && std::fabs(b0 - 17.0) < 5.0;

    result.cpu_work.bytes = 2 * n * sizeof(int);
    result.cpu_work.ops = 6 * n;
    result.gpu_work = result.cpu_work;
    result.features.sequential_access = true;

    finalizeResult(result);
    return result;
}

} // namespace pimbench
