/**
 * @file
 * PIMbench: Image Downsampling (Table I, Image Processing).
 *
 * 2x box filter: each output pixel is the average of a 2x2 input
 * block, computed with additions and a bit shift — both optimal on
 * PIM, so all three variants beat CPU and GPU (paper Section VIII).
 */

#ifndef PIMEVAL_APPS_IMAGE_DOWNSAMPLE_H_
#define PIMEVAL_APPS_IMAGE_DOWNSAMPLE_H_

#include <cstdint>

#include "apps/app_common.h"

namespace pimbench {

struct ImageDownsampleParams
{
    uint32_t width = 512;  ///< must be even
    uint32_t height = 512; ///< must be even
    uint64_t seed = 11;
};

AppResult runImageDownsample(const ImageDownsampleParams &params);

} // namespace pimbench

#endif // PIMEVAL_APPS_IMAGE_DOWNSAMPLE_H_
