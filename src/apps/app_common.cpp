/**
 * @file
 * Common harness implementation.
 */

#include "apps/app_common.h"

namespace pimbench {

void
finalizeResult(AppResult &result)
{
    result.stats = pimGetStats();
    // Paper-size what-if: the CPU/GPU baselines see the same scaled
    // input the PIM cost model was charged for.
    const double scale = pimGetModelingScale();
    if (scale > 1.0) {
        auto scaleWork = [scale](WorkloadProfile &work) {
            work.bytes = static_cast<uint64_t>(
                static_cast<double>(work.bytes) * scale);
            work.ops = static_cast<uint64_t>(
                static_cast<double>(work.ops) * scale);
        };
        scaleWork(result.cpu_work);
        scaleWork(result.gpu_work);
    }
    result.features.name = result.name;
    result.features.op_mix = pimGetOpMix();
    const uint64_t moved = result.stats.bytes_h2d +
        result.stats.bytes_d2h + result.stats.bytes_d2d;
    result.features.arithmetic_intensity = moved
        ? static_cast<double>(result.cpu_work.ops) /
            static_cast<double>(moved)
        : 0.0;
    result.features.uses_host = result.stats.host_sec > 0.0;
}

const std::vector<std::string> &
pimbenchSuiteNames()
{
    static const std::vector<std::string> names = {
        "Vector Addition",
        "AXPY",
        "GEMV",
        "GEMM",
        "Radix Sort",
        "AES-Encryption",
        "AES-Decryption",
        "Triangle Count",
        "Filter-By-Key",
        "Histogram",
        "Brightness",
        "Image Downsampling",
        "KNN",
        "Linear Regression",
        "K-means",
        "VGG-13",
        "VGG-16",
        "VGG-19",
    };
    return names;
}

} // namespace pimbench
