/**
 * @file
 * PIMbench extension: Prefix Sum (paper Section II "we are continuing
 * to extend PIMbench with additional kernels, such as prefix sum").
 *
 * Inclusive scan via the Hillis-Steele doubling scheme: log2(n)
 * rounds of shifted-element addition. Element shifting is not a
 * native PIM op in these architectures, so each round stages the
 * shifted vector through the host (PIM + Host execution type), which
 * also demonstrates why scan is listed as future work.
 */

#ifndef PIMEVAL_APPS_PREFIX_SUM_H_
#define PIMEVAL_APPS_PREFIX_SUM_H_

#include <cstdint>

#include "apps/app_common.h"

namespace pimbench {

struct PrefixSumParams
{
    uint64_t vector_length = 1u << 16;
    uint64_t seed = 16;
};

AppResult runPrefixSum(const PrefixSumParams &params);

} // namespace pimbench

#endif // PIMEVAL_APPS_PREFIX_SUM_H_
