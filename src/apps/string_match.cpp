/**
 * @file
 * String match via shifted equality masks.
 */

#include "apps/string_match.h"

#include "util/prng.h"

namespace pimbench {

AppResult
runStringMatch(const StringMatchParams &params)
{
    AppResult result;
    result.name = "String Match";
    pimResetStats();

    const uint64_t n = params.text_length;
    const std::string &pat = params.pattern;
    const uint64_t plen = pat.size();
    if (plen == 0 || plen > n)
        return result;

    // Lowercase text with the pattern planted at deterministic spots.
    pimeval::Prng rng(params.seed);
    std::vector<uint8_t> text(n);
    for (auto &ch : text)
        ch = static_cast<uint8_t>('a' + rng.nextInt(0, 25));
    for (uint64_t pos = 64; pos + plen < n; pos += 4099) {
        for (uint64_t j = 0; j < plen; ++j)
            text[pos + j] = static_cast<uint8_t>(pat[j]);
    }

    const uint64_t positions = n - plen + 1;
    const PimObjId obj_text =
        pimAlloc(PimAllocEnum::PIM_ALLOC_AUTO, positions, 8,
                 PimDataType::PIM_UINT8);
    const PimObjId obj_eq =
        pimAllocAssociated(8, obj_text, PimDataType::PIM_UINT8);
    const PimObjId obj_acc =
        pimAllocAssociated(8, obj_text, PimDataType::PIM_UINT8);
    if (obj_text < 0 || obj_eq < 0 || obj_acc < 0)
        return result;

    pimBroadcastInt(obj_acc, 1);
    for (uint64_t j = 0; j < plen; ++j) {
        // Host: stage the text shifted by j (element movement),
        // costed on the host model.
        std::vector<uint8_t> shifted(positions);
        for (uint64_t i = 0; i < positions; ++i)
            shifted[i] = text[i + j];
        pimAddHostWork(2 * positions, positions);
        pimCopyHostToDevice(shifted.data(), obj_text);
        pimEQScalar(obj_text, obj_eq,
                    static_cast<uint8_t>(pat[j]));
        pimAnd(obj_acc, obj_eq, obj_acc);
    }
    int64_t matches = 0;
    pimRedSum(obj_acc, &matches);

    pimFree(obj_text);
    pimFree(obj_eq);
    pimFree(obj_acc);

    // Reference scan.
    int64_t expected = 0;
    for (uint64_t i = 0; i < positions; ++i) {
        bool hit = true;
        for (uint64_t j = 0; j < plen && hit; ++j)
            hit = (text[i + j] == static_cast<uint8_t>(pat[j]));
        expected += hit;
    }
    result.verified = (matches == expected) && expected > 0;

    result.cpu_work.bytes = n;
    result.cpu_work.ops = n * 2;
    result.gpu_work = result.cpu_work;
    result.features.sequential_access = true;

    finalizeResult(result);
    return result;
}

} // namespace pimbench
