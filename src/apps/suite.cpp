/**
 * @file
 * Suite runner implementation.
 */

#include "apps/suite.h"

#include "core/pim_profile.h"

#include "apps/aes_app.h"
#include "apps/apriori.h"
#include "apps/axpy.h"
#include "apps/brightness.h"
#include "apps/filter_by_key.h"
#include "apps/gemm.h"
#include "apps/gemv.h"
#include "apps/histogram.h"
#include "apps/image_downsample.h"
#include "apps/kmeans.h"
#include "apps/knn.h"
#include "apps/linear_regression.h"
#include "apps/pca_app.h"
#include "apps/prefix_sum.h"
#include "apps/radix_sort.h"
#include "apps/string_match.h"
#include "apps/triangle_count.h"
#include "apps/vec_add.h"
#include "apps/vgg.h"

namespace pimbench {

namespace {

bool
tiny(SuiteScale scale)
{
    return scale == SuiteScale::kTiny;
}

/** Dispatch to the per-app runner at kSmall/kTiny sizes. */
AppResult runAtFunctionalScale(const std::string &name, bool t);

} // namespace

PaperScale
paperScale(const std::string &name)
{
    // Decomposition of (paper Table I size) / (kSmall size) into a
    // per-call element ratio and a call-count ratio. Derivations in
    // EXPERIMENTS.md.
    PaperScale s;
    if (name == "Vector Addition") {
        s.elem_ratio = 2.035e9 / (1u << 20); // 2,035,544,320 int32
    } else if (name == "AXPY") {
        s.elem_ratio = 16.777e6 / (1u << 20); // 16,777,216 int32
    } else if (name == "GEMV") {
        // 2,352,160 x 8192 vs 2048 x 64: longer columns per call,
        // more column sweeps.
        s.elem_ratio = 2352160.0 / 2048.0;
        s.call_ratio = 8192.0 / 64.0;
    } else if (name == "GEMM") {
        // (23521x4096)*(4096x512) vs (512x64)*(64x16).
        s.elem_ratio = 23521.0 / 512.0;
        s.call_ratio = (4096.0 * 512.0) / (64.0 * 16.0);
    } else if (name == "Radix Sort") {
        s.elem_ratio = 67.1e6 / (1u << 16); // 67,108,864 keys
    } else if (name == "AES-Encryption" ||
               name == "AES-Decryption") {
        s.elem_ratio = 1.035e9 / (128.0 * 16.0); // bytes
    } else if (name == "Triangle Count") {
        // Bitmap width scales with nodes; edge sweep with edges.
        s.elem_ratio = 227320.0 / 512.0;
        s.call_ratio = 1628268.0 / 3000.0;
    } else if (name == "Filter-By-Key") {
        s.elem_ratio = 1.074e9 / (1u << 20); // 2^30 records
    } else if (name == "Histogram") {
        s.elem_ratio = 1.4e9 / (256.0 * 256.0);
    } else if (name == "Brightness" ||
               name == "Image Downsampling") {
        s.elem_ratio = 1.4e9 / (512.0 * 512.0);
    } else if (name == "KNN") {
        s.elem_ratio = 6.71e6 / (1u << 16); // 6,710,886 points
    } else if (name == "Linear Regression") {
        s.elem_ratio = 1.5e9 / (1u << 20);
    } else if (name == "K-means") {
        s.elem_ratio = 67.1e6 / (1u << 16);
        s.call_ratio = 20.0 / 8.0; // paper k=20 vs kSmall k=8
    } else if (name == "VGG-13" || name == "VGG-16" ||
               name == "VGG-19") {
        // 224x224, full channels, batch 64 vs 32x32 at 1/8 channels:
        // per-call vectors grow 49x spatial x 64 batch; channel-pair
        // count grows 64x.
        s.elem_ratio = 49.0 * 64.0;
        s.call_ratio = 64.0;
    } else if (name == "Prefix Sum" || name == "String Match" ||
               name == "PCA" || name == "Apriori") {
        s.elem_ratio = 1024.0;
    }
    return s;
}

AppResult
runBenchmarkByName(const std::string &name, SuiteScale scale)
{
    // Each suite app is one top-level profile phase; the per-app
    // setup/h2d/compute/d2h phases nest under it.
    PIM_PROFILE_SCOPE(name.c_str());
    if (scale == SuiteScale::kPaper) {
        const PaperScale ps = paperScale(name);
        pimSetModelingScale(ps.elem_ratio);
        AppResult result = runAtFunctionalScale(name, false);
        pimSetModelingScale(1.0);
        // The paper issues call_ratio-times more calls of the same
        // shape; every aggregate metric scales linearly with it.
        if (ps.call_ratio > 1.0) {
            auto scaleBy = [&](double &v) { v *= ps.call_ratio; };
            scaleBy(result.stats.kernel_sec);
            scaleBy(result.stats.kernel_j);
            scaleBy(result.stats.copy_sec);
            scaleBy(result.stats.copy_j);
            scaleBy(result.stats.host_sec);
            auto scaleBytes = [&](uint64_t &v) {
                v = static_cast<uint64_t>(static_cast<double>(v) *
                                          ps.call_ratio);
            };
            scaleBytes(result.stats.bytes_h2d);
            scaleBytes(result.stats.bytes_d2h);
            scaleBytes(result.stats.bytes_d2d);
            auto scaleWork = [&](WorkloadProfile &w) {
                w.bytes = static_cast<uint64_t>(
                    static_cast<double>(w.bytes) * ps.call_ratio);
                w.ops = static_cast<uint64_t>(
                    static_cast<double>(w.ops) * ps.call_ratio);
            };
            scaleWork(result.cpu_work);
            scaleWork(result.gpu_work);
        }
        return result;
    }
    return runAtFunctionalScale(name, tiny(scale));
}

namespace {

AppResult
runAtFunctionalScale(const std::string &name, bool t)
{
    if (name == "Vector Addition") {
        VecAddParams p;
        p.vector_length = t ? (1u << 12) : (1u << 20);
        return runVecAdd(p);
    }
    if (name == "AXPY") {
        AxpyParams p;
        p.vector_length = t ? (1u << 12) : (1u << 20);
        return runAxpy(p);
    }
    if (name == "GEMV") {
        GemvParams p;
        p.rows = t ? 256 : 2048;
        p.cols = t ? 16 : 64;
        return runGemv(p);
    }
    if (name == "GEMM") {
        GemmParams p;
        p.m = t ? 64 : 512;
        p.k = t ? 16 : 64;
        p.p = t ? 8 : 16;
        return runGemm(p);
    }
    if (name == "Radix Sort") {
        RadixSortParams p;
        p.num_keys = t ? (1u << 10) : (1u << 16);
        p.radix_bits = t ? 4 : 8;
        return runRadixSort(p);
    }
    if (name == "AES-Encryption") {
        AesParams p;
        p.num_blocks = t ? 16 : 128;
        return runAesEncrypt(p);
    }
    if (name == "AES-Decryption") {
        AesParams p;
        p.num_blocks = t ? 16 : 128;
        return runAesDecrypt(p);
    }
    if (name == "Triangle Count") {
        TriangleCountParams p;
        p.scale = t ? 7 : 9;
        return runTriangleCount(p);
    }
    if (name == "Filter-By-Key") {
        FilterByKeyParams p;
        p.num_records = t ? (1u << 12) : (1u << 20);
        return runFilterByKey(p);
    }
    if (name == "Histogram") {
        HistogramParams p;
        p.width = t ? 64 : 256;
        p.height = t ? 64 : 256;
        return runHistogram(p);
    }
    if (name == "Brightness") {
        BrightnessParams p;
        p.width = t ? 64 : 512;
        p.height = t ? 64 : 512;
        return runBrightness(p);
    }
    if (name == "Image Downsampling") {
        ImageDownsampleParams p;
        p.width = t ? 64 : 512;
        p.height = t ? 64 : 512;
        return runImageDownsample(p);
    }
    if (name == "KNN") {
        KnnParams p;
        p.num_points = t ? (1u << 10) : (1u << 16);
        p.num_queries = t ? 2 : 8;
        return runKnn(p);
    }
    if (name == "Linear Regression") {
        LinearRegressionParams p;
        p.num_points = t ? (1u << 12) : (1u << 20);
        return runLinearRegression(p);
    }
    if (name == "K-means") {
        KmeansParams p;
        p.num_points = t ? (1u << 10) : (1u << 16);
        p.k = t ? 4 : 8;
        p.iterations = t ? 2 : 4;
        return runKmeans(p);
    }
    if (name == "VGG-13" || name == "VGG-16" || name == "VGG-19") {
        VggParams p;
        p.variant = (name == "VGG-13") ? VggVariant::kVgg13
            : (name == "VGG-16") ? VggVariant::kVgg16
                                 : VggVariant::kVgg19;
        p.image_size = 32; // five pools require at least 32x32
        p.channel_scale = t ? 16 : 8;
        return runVgg(p);
    }
    if (name == "Prefix Sum") {
        PrefixSumParams p;
        p.vector_length = t ? (1u << 10) : (1u << 16);
        return runPrefixSum(p);
    }
    if (name == "String Match") {
        StringMatchParams p;
        p.text_length = t ? (1u << 12) : (1u << 18);
        return runStringMatch(p);
    }
    if (name == "PCA") {
        PcaParams p;
        p.num_samples = t ? (1u << 10) : (1u << 16);
        return runPca(p);
    }
    if (name == "Apriori") {
        AprioriParams p;
        p.num_transactions = t ? (1u << 10) : (1u << 14);
        p.max_itemset_size = t ? 2 : 3;
        return runApriori(p);
    }
    return {};
}

} // namespace

std::vector<AppResult>
runSuite(SuiteScale scale, bool include_extensions)
{
    std::vector<AppResult> results;
    for (const auto &name : pimbenchSuiteNames())
        results.push_back(runBenchmarkByName(name, scale));
    if (include_extensions) {
        results.push_back(runBenchmarkByName("Prefix Sum", scale));
        results.push_back(runBenchmarkByName("String Match", scale));
        results.push_back(runBenchmarkByName("PCA", scale));
        results.push_back(runBenchmarkByName("Apriori", scale));
    }
    return results;
}

} // namespace pimbench
