/**
 * @file
 * PIMbench: AES-256 encryption/decryption in ECB mode (Table I,
 * Cryptography).
 *
 * Blocks are processed in bitsliced-by-position fashion: the 16 state
 * byte positions become 16 PIM objects, each holding that position's
 * byte for every block. ShiftRows is then pure object renaming;
 * AddRoundKey is a scalar XOR; MixColumns composes xtime chains from
 * shift/compare/xor; and SubBytes — the "look-up table realized using
 * logic gates" of the paper — is an associative match-update sweep
 * (256 equality matches + selective accumulate), the DRAM-CAM style
 * operation DRAM-AP natively supports.
 */

#ifndef PIMEVAL_APPS_AES_APP_H_
#define PIMEVAL_APPS_AES_APP_H_

#include <cstdint>

#include "apps/app_common.h"

namespace pimbench {

struct AesParams
{
    /** Number of 16-byte blocks (bytes = 16 x blocks). */
    uint64_t num_blocks = 128;
    uint64_t seed = 6;
};

/** AES-256 ECB encryption on PIM, verified against the reference. */
AppResult runAesEncrypt(const AesParams &params);

/** AES-256 ECB decryption on PIM (decrypts the reference ciphertext). */
AppResult runAesDecrypt(const AesParams &params);

} // namespace pimbench

#endif // PIMEVAL_APPS_AES_APP_H_
