/**
 * @file
 * K-means with bitmask grouping on PIM.
 */

#include "apps/kmeans.h"

#include <cmath>

#include "core/pim_profile.h"
#include "util/prng.h"

namespace pimbench {

namespace {

struct Centroid
{
    int x;
    int y;

    bool operator==(const Centroid &o) const
    {
        return x == o.x && y == o.y;
    }
};

/** CPU reference: identical algorithm, scalar execution. */
std::vector<Centroid>
referenceKmeans(const std::vector<int> &xs, const std::vector<int> &ys,
                std::vector<Centroid> centroids, unsigned iterations)
{
    const uint64_t n = xs.size();
    const unsigned k = centroids.size();
    for (unsigned it = 0; it < iterations; ++it) {
        std::vector<int64_t> sum_x(k, 0), sum_y(k, 0), count(k, 0);
        for (uint64_t i = 0; i < n; ++i) {
            int best_dist = INT32_MAX;
            unsigned best_c = 0;
            for (unsigned c = 0; c < k; ++c) {
                const int dist = std::abs(xs[i] - centroids[c].x) +
                    std::abs(ys[i] - centroids[c].y);
                if (dist < best_dist) {
                    best_dist = dist;
                    best_c = c;
                }
            }
            sum_x[best_c] += xs[i];
            sum_y[best_c] += ys[i];
            ++count[best_c];
        }
        for (unsigned c = 0; c < k; ++c) {
            if (count[c] > 0) {
                centroids[c].x = static_cast<int>(sum_x[c] / count[c]);
                centroids[c].y = static_cast<int>(sum_y[c] / count[c]);
            }
        }
    }
    return centroids;
}

} // namespace

AppResult
runKmeans(const KmeansParams &params)
{
    AppResult result;
    result.name = "K-means";
    pimResetStats();

    const uint64_t n = params.num_points;
    const unsigned k = params.k;
    pimeval::Prng rng(params.seed);
    const std::vector<int> xs = rng.intVector(n, -10000, 10000);
    const std::vector<int> ys = rng.intVector(n, -10000, 10000);

    std::vector<Centroid> centroids(k);
    for (auto &c : centroids) {
        c.x = static_cast<int>(rng.nextInt(-10000, 10000));
        c.y = static_cast<int>(rng.nextInt(-10000, 10000));
    }
    const std::vector<Centroid> initial = centroids;

    pimProfileBegin("setup");
    const PimObjId obj_x =
        pimAlloc(PimAllocEnum::PIM_ALLOC_AUTO, n, 32,
                 PimDataType::PIM_INT32);
    auto assoc = [&]() {
        return pimAllocAssociated(32, obj_x, PimDataType::PIM_INT32);
    };
    const PimObjId obj_y = assoc();
    const PimObjId obj_tmp = assoc();
    const PimObjId obj_min = assoc();
    const PimObjId obj_mask = assoc();
    const PimObjId obj_assigned = assoc();
    // Per-centroid distance and y-delta temporaries: each centroid's
    // distance chain touches only its own objects, so the async
    // pipeline computes the k chains concurrently (a single shared dy
    // would serialize them through a WAW hazard).
    std::vector<PimObjId> obj_dist(k);
    std::vector<PimObjId> obj_dy(k);
    bool alloc_ok = obj_x >= 0 && obj_y >= 0 && obj_tmp >= 0 &&
        obj_min >= 0 && obj_mask >= 0 && obj_assigned >= 0;
    for (auto &d : obj_dist) {
        d = assoc();
        alloc_ok = alloc_ok && d >= 0;
    }
    for (auto &d : obj_dy) {
        d = assoc();
        alloc_ok = alloc_ok && d >= 0;
    }
    pimProfileEnd();
    if (!alloc_ok)
        return result;

    {
        PIM_PROFILE_SCOPE("h2d");
        pimCopyHostToDevice(xs.data(), obj_x);
        pimCopyHostToDevice(ys.data(), obj_y);
    }

    pimProfileBegin("compute");
    for (unsigned it = 0; it < params.iterations; ++it) {
        // Distances per centroid. With fusion enabled the block is a
        // capture region: [sub,abs] and [sub,abs,add] chains fuse per
        // centroid and the pre-abs intermediates' stores elide.
        const bool fused = pimGetFusionEnabled();
        if (fused)
            pimBeginFusion();
        for (unsigned c = 0; c < k; ++c) {
            pimSubScalar(obj_x, obj_dist[c],
                         static_cast<uint64_t>(
                             static_cast<int64_t>(centroids[c].x)));
            pimAbs(obj_dist[c], obj_dist[c]);
            pimSubScalar(obj_y, obj_dy[c],
                         static_cast<uint64_t>(
                             static_cast<int64_t>(centroids[c].y)));
            pimAbs(obj_dy[c], obj_dy[c]);
            pimAdd(obj_dist[c], obj_dy[c], obj_dist[c]);
        }
        if (fused)
            pimEndFusion();

        // Running minimum.
        pimCopyDeviceToDevice(obj_dist[0], obj_min);
        for (unsigned c = 1; c < k; ++c)
            pimMin(obj_min, obj_dist[c], obj_min);

        // Group with first-match tie-breaking, then masked sums.
        pimBroadcastInt(obj_assigned, 0);
        for (unsigned c = 0; c < k; ++c) {
            pimEQ(obj_dist[c], obj_min, obj_mask);
            // mask &= !assigned (0/1 invert via xor 1).
            pimXorScalar(obj_assigned, obj_tmp, 1);
            pimAnd(obj_mask, obj_tmp, obj_mask);
            pimOr(obj_assigned, obj_mask, obj_assigned);

            // The three reductions share one fusion region: each
            // mask product fuses with its reduction into a single
            // dot-product sweep, and the product temporaries are
            // born and freed inside the window so their stores
            // elide. Results are valid once pimEndFusion flushes.
            int64_t count = 0, sum_x = 0, sum_y = 0;
            pimBeginFusion();
            pimRedSum(obj_mask, &count);
            const PimObjId obj_px = assoc();
            pimMul(obj_x, obj_mask, obj_px);
            pimRedSum(obj_px, &sum_x);
            pimFree(obj_px);
            const PimObjId obj_py = assoc();
            pimMul(obj_y, obj_mask, obj_py);
            pimRedSum(obj_py, &sum_y);
            pimFree(obj_py);
            pimEndFusion();

            // Host: centroid update (constant work).
            pimAddHostWork(4 * sizeof(int64_t), 8);
            if (count > 0) {
                centroids[c].x = static_cast<int>(sum_x / count);
                centroids[c].y = static_cast<int>(sum_y / count);
            }
        }
    }
    pimProfileEnd();

    pimFree(obj_x);
    pimFree(obj_y);
    pimFree(obj_tmp);
    pimFree(obj_min);
    pimFree(obj_mask);
    pimFree(obj_assigned);
    for (PimObjId d : obj_dist)
        pimFree(d);
    for (PimObjId d : obj_dy)
        pimFree(d);

    // Verify with the PIM semantics: distances (and hence
    // assignments) are fixed at iteration start, updates applied per
    // centroid after its masked reduction. referenceKmeans() keeps
    // the canonical Lloyd form for the unit tests.
    (void)referenceKmeans;
    {
        std::vector<Centroid> expect = initial;
        for (unsigned it = 0; it < params.iterations; ++it) {
            std::vector<unsigned> assign(n);
            for (uint64_t i = 0; i < n; ++i) {
                int best = INT32_MAX;
                unsigned best_c = 0;
                for (unsigned c = 0; c < k; ++c) {
                    const int dist = std::abs(xs[i] - expect[c].x) +
                        std::abs(ys[i] - expect[c].y);
                    if (dist < best) {
                        best = dist;
                        best_c = c;
                    }
                }
                assign[i] = best_c;
            }
            for (unsigned c = 0; c < k; ++c) {
                int64_t sum_x = 0, sum_y = 0, count = 0;
                for (uint64_t i = 0; i < n; ++i) {
                    if (assign[i] == c) {
                        sum_x += xs[i];
                        sum_y += ys[i];
                        ++count;
                    }
                }
                if (count > 0) {
                    expect[c].x = static_cast<int>(sum_x / count);
                    expect[c].y = static_cast<int>(sum_y / count);
                }
            }
        }
        result.verified = true;
        for (unsigned c = 0; c < k; ++c) {
            if (!(centroids[c] == expect[c]))
                result.verified = false;
        }
    }

    result.cpu_work.bytes = static_cast<uint64_t>(params.iterations) *
        2 * n * sizeof(int);
    result.cpu_work.ops = static_cast<uint64_t>(params.iterations) *
        n * k * 5;
    result.gpu_work = result.cpu_work;
    result.features.sequential_access = true;
    result.features.random_access = true;

    finalizeResult(result);
    return result;
}

} // namespace pimbench
