/**
 * @file
 * PCA: PIM covariance accumulation + host eigendecomposition.
 */

#include "apps/pca_app.h"

#include <cmath>

#include "analysis/pca.h"
#include "util/prng.h"

namespace pimbench {

AppResult
runPca(const PcaParams &params)
{
    AppResult result;
    result.name = "PCA";
    pimResetStats();

    const uint64_t n = params.num_samples;
    const unsigned d = params.num_features;
    pimeval::Prng rng(params.seed);

    // Correlated integer features so PC1 is meaningful: feature j is
    // a noisy multiple of a shared latent variable.
    std::vector<std::vector<int>> features(d, std::vector<int>(n));
    for (uint64_t i = 0; i < n; ++i) {
        const int latent = static_cast<int>(rng.nextInt(-500, 500));
        for (unsigned j = 0; j < d; ++j) {
            features[j][i] = latent * static_cast<int>(j + 1) +
                static_cast<int>(rng.nextInt(-50, 50));
        }
    }

    // Resident feature vectors.
    std::vector<PimObjId> obj(d, -1);
    obj[0] = pimAlloc(PimAllocEnum::PIM_ALLOC_AUTO, n, 32,
                      PimDataType::PIM_INT32);
    if (obj[0] < 0)
        return result;
    for (unsigned j = 1; j < d; ++j) {
        obj[j] = pimAllocAssociated(32, obj[0], PimDataType::PIM_INT32);
        if (obj[j] < 0)
            return result;
    }
    const PimObjId obj_t =
        pimAllocAssociated(32, obj[0], PimDataType::PIM_INT32);
    if (obj_t < 0)
        return result;

    for (unsigned j = 0; j < d; ++j)
        pimCopyHostToDevice(features[j].data(), obj[j]);

    // PIM: sums and pairwise product sums.
    std::vector<int64_t> sums(d, 0);
    std::vector<std::vector<int64_t>> prod_sums(
        d, std::vector<int64_t>(d, 0));
    for (unsigned j = 0; j < d; ++j)
        pimRedSum(obj[j], &sums[j]);
    for (unsigned i = 0; i < d; ++i) {
        for (unsigned j = i; j < d; ++j) {
            pimMul(obj[i], obj[j], obj_t);
            pimRedSum(obj_t, &prod_sums[i][j]);
            prod_sums[j][i] = prod_sums[i][j];
        }
    }

    for (unsigned j = 0; j < d; ++j)
        pimFree(obj[j]);
    pimFree(obj_t);

    // Host: covariance assembly + Jacobi eigendecomposition (float).
    pimeval::Matrix cov(d, d);
    const double dn = static_cast<double>(n);
    for (unsigned i = 0; i < d; ++i) {
        for (unsigned j = 0; j < d; ++j) {
            const double mean_i = static_cast<double>(sums[i]) / dn;
            const double mean_j = static_cast<double>(sums[j]) / dn;
            cov.at(i, j) =
                static_cast<double>(prod_sums[i][j]) / dn -
                mean_i * mean_j;
        }
    }
    const pimeval::EigenResult eig = pimeval::jacobiEigen(cov);
    pimAddHostWork(d * d * sizeof(double), 200 * d * d * d);

    // Verify: the PIM reductions match a direct host accumulation,
    // and PC1 captures the dominant latent direction.
    bool sums_ok = true;
    for (unsigned i = 0; i < d && sums_ok; ++i) {
        int64_t ref = 0;
        for (uint64_t s = 0; s < n; ++s)
            ref += features[i][s];
        sums_ok = (ref == sums[i]);
        for (unsigned j = i; j < d && sums_ok; ++j) {
            int64_t refp = 0;
            for (uint64_t s = 0; s < n; ++s)
                refp += static_cast<int64_t>(features[i][s]) *
                    features[j][s];
            sums_ok = (refp == prod_sums[i][j]);
        }
    }
    double total_var = 0.0;
    for (double v : eig.values)
        total_var += std::max(0.0, v);
    const double explained =
        total_var > 0 ? eig.values[0] / total_var : 0.0;
    result.verified = sums_ok && explained > 0.9;

    result.cpu_work.bytes =
        static_cast<uint64_t>(d) * n * sizeof(int);
    result.cpu_work.ops =
        static_cast<uint64_t>(d) * (d + 1) / 2 * 2 * n;
    result.gpu_work = result.cpu_work;
    result.features.sequential_access = true;

    finalizeResult(result);
    return result;
}

} // namespace pimbench
