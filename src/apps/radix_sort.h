/**
 * @file
 * PIMbench: Radix Sort (Table I, Sort; PIM + Host).
 *
 * Digit-by-digit counting sort: the counting phase runs on PIM
 * (digit extraction via shift/mask, per-bucket equality match +
 * reduction), while the data-reshuffling scatter phase — unsupported
 * by these PIM architectures — runs on the host and dominates,
 * matching the paper's finding of only slight speedup over CPU.
 */

#ifndef PIMEVAL_APPS_RADIX_SORT_H_
#define PIMEVAL_APPS_RADIX_SORT_H_

#include <cstdint>

#include "apps/app_common.h"

namespace pimbench {

struct RadixSortParams
{
    uint64_t num_keys = 1u << 16;
    unsigned radix_bits = 8; ///< digit width (32 must divide cleanly)
    uint64_t seed = 5;
};

AppResult runRadixSort(const RadixSortParams &params);

} // namespace pimbench

#endif // PIMEVAL_APPS_RADIX_SORT_H_
