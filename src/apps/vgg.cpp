/**
 * @file
 * VGG inference decomposed into PIM kernels + host glue.
 */

#include "apps/vgg.h"

#include <algorithm>
#include <array>

#include "apps/gemv.h"
#include "host/host_kernels.h"
#include "util/bmp_image.h"
#include "util/prng.h"

namespace pimbench {

namespace {

/** Per-block convolution counts for the three variants. */
std::array<unsigned, 5>
convCounts(VggVariant variant)
{
    switch (variant) {
      case VggVariant::kVgg13:
        return {2, 2, 2, 2, 2};
      case VggVariant::kVgg16:
        return {2, 2, 3, 3, 3};
      case VggVariant::kVgg19:
        return {2, 2, 4, 4, 4};
    }
    return {2, 2, 2, 2, 2};
}

const char *
variantName(VggVariant variant)
{
    switch (variant) {
      case VggVariant::kVgg13:
        return "VGG-13";
      case VggVariant::kVgg16:
        return "VGG-16";
      case VggVariant::kVgg19:
        return "VGG-19";
    }
    return "VGG";
}

using Planes = std::vector<std::vector<int>>;

/** Fixed-point rescale shift applied after every conv accumulation. */
constexpr unsigned kRescaleShift = 4;

/**
 * One 3x3 same-padding conv + rescale + ReLU on PIM.
 * Weights indexed [o][i][p] with p in row-major 3x3 order.
 */
Planes
convLayerPim(const Planes &input, uint32_t h, uint32_t w,
             const std::vector<std::vector<std::vector<int>>> &weights,
             uint64_t &mac_count)
{
    const size_t cin = input.size();
    const size_t cout = weights.size();
    const uint64_t n = static_cast<uint64_t>(h) * w;

    // Shifted plane extraction: data re-layout for the H2D staging;
    // its cost is carried by the per-plane copies below (counted as
    // data movement, not host compute).
    std::vector<Planes> shifted(cin);
    for (size_t i = 0; i < cin; ++i)
        shifted[i] = pimeval::extractConvShifts(input[i], h, w);

    // Bounded residency: only the nine shift planes of the current
    // input channel stay on the device (plus the accumulator). Each
    // layer reloads planes per input channel — the PIM-host data
    // re-layout traffic between kernels the paper describes for VGG.
    const PimObjId ref =
        pimAlloc(PimAllocEnum::PIM_ALLOC_AUTO, n, 32,
                 PimDataType::PIM_INT32);
    std::vector<PimObjId> obj_shift(9, -1);
    for (int p = 0; p < 9; ++p)
        obj_shift[p] =
            pimAllocAssociated(32, ref, PimDataType::PIM_INT32);

    // Accumulate per input channel across all output channels so
    // each plane set is loaded once per output sweep.
    Planes output(cout);
    for (size_t o = 0; o < cout; ++o) {
        output[o].assign(n, 0);
    }
    std::vector<PimObjId> obj_out(cout, -1);
    // Output accumulators would exceed row capacity at deep layers,
    // so sweep outputs in bounded groups.
    const size_t group = 4;
    const bool fused = pimGetFusionEnabled();
    for (size_t o_begin = 0; o_begin < cout; o_begin += group) {
        const size_t o_end = std::min(cout, o_begin + group);
        // Capture region over the whole output-group accumulation:
        // the nine plane copies fuse into the window with their
        // scaled-add consumers (multi-consumer planes materialize
        // once instead of flushing the window nine times per input
        // channel) and the accumulator's intermediate stores are
        // WAW-elided.
        if (fused)
            pimBeginFusion();
        for (size_t o = o_begin; o < o_end; ++o) {
            obj_out[o] =
                pimAllocAssociated(32, ref, PimDataType::PIM_INT32);
            pimBroadcastInt(obj_out[o], 0);
        }
        for (size_t i = 0; i < cin; ++i) {
            for (int p = 0; p < 9; ++p)
                pimCopyHostToDevice(shifted[i][p].data(),
                                    obj_shift[p]);
            for (size_t o = o_begin; o < o_end; ++o) {
                for (int p = 0; p < 9; ++p) {
                    pimScaledAdd(
                        obj_shift[p], obj_out[o], obj_out[o],
                        static_cast<uint64_t>(static_cast<int64_t>(
                            weights[o][i][p])));
                    mac_count += n;
                }
            }
        }
        if (fused)
            pimEndFusion();
        for (size_t o = o_begin; o < o_end; ++o) {
            pimShiftBitsRight(obj_out[o], obj_out[o], kRescaleShift);
            pimMaxScalar(obj_out[o], obj_out[o], 0); // ReLU
            pimCopyDeviceToHost(obj_out[o], output[o].data());
            pimFree(obj_out[o]);
        }
    }

    for (PimObjId id : obj_shift)
        pimFree(id);
    pimFree(ref);
    return output;
}

/** CPU reference of the same conv (identical integer semantics). */
Planes
convLayerRef(const Planes &input, uint32_t h, uint32_t w,
             const std::vector<std::vector<std::vector<int>>> &weights)
{
    const size_t cin = input.size();
    const size_t cout = weights.size();
    std::vector<Planes> shifted(cin);
    for (size_t i = 0; i < cin; ++i)
        shifted[i] = pimeval::extractConvShifts(input[i], h, w);

    Planes output(cout);
    const uint64_t n = static_cast<uint64_t>(h) * w;
    for (size_t o = 0; o < cout; ++o) {
        // Accumulate in int64 (UB-free); the final 32-bit truncation
        // matches PIM's per-step mod-2^32 arithmetic because modular
        // addition composes.
        std::vector<int64_t> acc(n, 0);
        for (size_t i = 0; i < cin; ++i)
            for (int p = 0; p < 9; ++p)
                for (uint64_t px = 0; px < n; ++px)
                    acc[px] += static_cast<int64_t>(weights[o][i][p]) *
                        shifted[i][p][px];
        std::vector<int> out(n);
        for (uint64_t px = 0; px < n; ++px) {
            const auto truncated = static_cast<int32_t>(acc[px]);
            out[px] = std::max(truncated >> kRescaleShift, 0);
        }
        output[o] = std::move(out);
    }
    return output;
}

/** 2x2 max pool on PIM: host corner staging + pimMax tree. */
Planes
maxPoolPim(const Planes &input, uint32_t h, uint32_t w)
{
    const uint32_t oh = h / 2, ow = w / 2;
    const uint64_t out_n = static_cast<uint64_t>(oh) * ow;

    const PimObjId o0 = pimAlloc(PimAllocEnum::PIM_ALLOC_AUTO, out_n,
                                 32, PimDataType::PIM_INT32);
    const PimObjId o1 =
        pimAllocAssociated(32, o0, PimDataType::PIM_INT32);
    const PimObjId o2 =
        pimAllocAssociated(32, o0, PimDataType::PIM_INT32);
    const PimObjId o3 =
        pimAllocAssociated(32, o0, PimDataType::PIM_INT32);

    Planes output(input.size());
    std::array<std::vector<int>, 4> corners;
    for (auto &c : corners)
        c.resize(out_n);

    for (size_t ch = 0; ch < input.size(); ++ch) {
        // Strided corner extraction: re-layout carried by the four
        // H2D copies below.
        for (uint32_t y = 0; y < oh; ++y) {
            for (uint32_t x = 0; x < ow; ++x) {
                const uint64_t o = static_cast<uint64_t>(y) * ow + x;
                const uint64_t base =
                    static_cast<uint64_t>(2 * y) * w + 2 * x;
                corners[0][o] = input[ch][base];
                corners[1][o] = input[ch][base + 1];
                corners[2][o] = input[ch][base + w];
                corners[3][o] = input[ch][base + w + 1];
            }
        }
        // Fused, the four corner copies and the max tree run as one
        // captured chain: corners whose store is shadowed by the max
        // writes are elided, the rest fuse without window flushes.
        const bool fused = pimGetFusionEnabled();
        if (fused)
            pimBeginFusion();
        pimCopyHostToDevice(corners[0].data(), o0);
        pimCopyHostToDevice(corners[1].data(), o1);
        pimCopyHostToDevice(corners[2].data(), o2);
        pimCopyHostToDevice(corners[3].data(), o3);
        pimMax(o0, o1, o0);
        pimMax(o2, o3, o2);
        pimMax(o0, o2, o0);
        if (fused)
            pimEndFusion();
        output[ch].resize(out_n);
        pimCopyDeviceToHost(o0, output[ch].data());
    }
    pimFree(o0);
    pimFree(o1);
    pimFree(o2);
    pimFree(o3);
    return output;
}

/** CPU reference max pool. */
Planes
maxPoolRef(const Planes &input, uint32_t h, uint32_t w)
{
    const uint32_t oh = h / 2, ow = w / 2;
    Planes output(input.size());
    for (size_t ch = 0; ch < input.size(); ++ch) {
        output[ch].resize(static_cast<uint64_t>(oh) * ow);
        for (uint32_t y = 0; y < oh; ++y) {
            for (uint32_t x = 0; x < ow; ++x) {
                const uint64_t base =
                    static_cast<uint64_t>(2 * y) * w + 2 * x;
                output[ch][y * ow + x] = std::max(
                    std::max(input[ch][base], input[ch][base + 1]),
                    std::max(input[ch][base + w],
                             input[ch][base + w + 1]));
            }
        }
    }
    return output;
}

} // namespace

AppResult
runVgg(const VggParams &params)
{
    AppResult result;
    result.name = variantName(params.variant);
    pimResetStats();

    // Five 2x2 pools need at least a 32x32 input.
    if (params.image_size < 32 || (params.image_size & 31) != 0)
        return result;

    const uint32_t img_size = params.image_size;
    const auto counts = convCounts(params.variant);
    const std::array<unsigned, 5> full_channels = {64, 128, 256, 512,
                                                   512};

    pimeval::Prng rng(params.seed);
    const pimeval::BmpImage img =
        pimeval::BmpImage::synthetic(img_size, img_size, params.seed);

    // Input planes (int32 activations).
    Planes planes(3);
    for (int c = 0; c < 3; ++c) {
        planes[c].resize(img.numPixels());
        const auto &src = (c == 0) ? img.red()
            : (c == 1) ? img.green() : img.blue();
        for (uint64_t i = 0; i < img.numPixels(); ++i)
            planes[c][i] = src[i];
    }
    Planes ref_planes = planes;

    // Random weights per layer, shared by PIM and reference.
    uint64_t mac_count = 0;
    uint32_t h = img_size, w = img_size;
    for (int block = 0; block < 5; ++block) {
        const unsigned cout =
            std::max(1u, full_channels[block] / params.channel_scale);
        for (unsigned conv = 0; conv < counts[block]; ++conv) {
            const size_t cin = planes.size();
            std::vector<std::vector<std::vector<int>>> weights(
                cout, std::vector<std::vector<int>>(
                          cin, std::vector<int>(9)));
            for (auto &oc : weights)
                for (auto &ic : oc)
                    for (auto &v : ic)
                        v = static_cast<int>(rng.nextInt(-3, 3));

            planes = convLayerPim(planes, h, w, weights, mac_count);
            ref_planes = convLayerRef(ref_planes, h, w, weights);
        }
        planes = maxPoolPim(planes, h, w);
        ref_planes = maxPoolRef(ref_planes, h, w);
        h /= 2;
        w /= 2;
    }

    // Flatten (spatial h*w per channel).
    std::vector<int> features, ref_features;
    for (const auto &p : planes)
        features.insert(features.end(), p.begin(), p.end());
    for (const auto &p : ref_planes)
        ref_features.insert(ref_features.end(), p.begin(), p.end());

    // Dense layers: fdim -> hidden -> 10 via column-sweep GEMV.
    const uint64_t fdim = features.size();
    const uint64_t hidden = std::max<uint64_t>(8, fdim / 2);
    const unsigned num_classes = 10;

    std::vector<int> w1(hidden * fdim), w2(num_classes * hidden);
    for (auto &v : w1)
        v = static_cast<int>(rng.nextInt(-3, 3));
    for (auto &v : w2)
        v = static_cast<int>(rng.nextInt(-3, 3));

    auto denseRef = [](const std::vector<int> &mat,
                       const std::vector<int> &vec, uint64_t m,
                       uint64_t n) {
        std::vector<int64_t> acc(m, 0);
        for (uint64_t j = 0; j < n; ++j)
            for (uint64_t i = 0; i < m; ++i)
                acc[i] += static_cast<int64_t>(mat[j * m + i]) * vec[j];
        std::vector<int> out(m);
        for (uint64_t i = 0; i < m; ++i)
            out[i] = static_cast<int32_t>(acc[i]);
        return out;
    };
    auto reluShift = [](std::vector<int> &v) {
        for (auto &x : v)
            x = std::max(x >> kRescaleShift, 0);
    };

    std::vector<int> hidden_pim =
        pimGemvColumnSweep(w1, features, hidden, fdim);
    reluShift(hidden_pim);
    std::vector<int> logits_pim =
        pimGemvColumnSweep(w2, hidden_pim, num_classes, hidden);
    mac_count += hidden * fdim + num_classes * hidden;

    std::vector<int> hidden_ref =
        denseRef(w1, ref_features, hidden, fdim);
    reluShift(hidden_ref);
    std::vector<int> logits_ref =
        denseRef(w2, hidden_ref, num_classes, hidden);

    // Softmax on the host (float; PIM lacks FP), costed on the
    // host model (a handful of exponentials).
    std::vector<float> probs;
    {
        std::vector<int64_t> logits64(logits_pim.begin(),
                                      logits_pim.end());
        probs = pimeval::softmax(logits64);
        pimAddHostWork(num_classes * sizeof(float),
                       num_classes * 20);
    }

    result.verified = !features.empty() &&
        (planes.size() == ref_planes.size()) &&
        (features == ref_features) && (logits_pim == logits_ref) &&
        probs.size() == num_classes;

    // Baseline characterization: 2 ops per MAC; activations traffic
    // approximated as 4 bytes per MAC / 9 (weight reuse).
    result.cpu_work.ops = 2 * mac_count;
    result.cpu_work.bytes = mac_count / 2;
    result.gpu_work = result.cpu_work;
    result.features.sequential_access = true;

    finalizeResult(result);
    return result;
}

AppResult
runVgg13(uint64_t seed)
{
    VggParams p;
    p.variant = VggVariant::kVgg13;
    p.seed = seed;
    return runVgg(p);
}

AppResult
runVgg16(uint64_t seed)
{
    VggParams p;
    p.variant = VggVariant::kVgg16;
    p.seed = seed;
    return runVgg(p);
}

AppResult
runVgg19(uint64_t seed)
{
    VggParams p;
    p.variant = VggVariant::kVgg19;
    p.seed = seed;
    return runVgg(p);
}

} // namespace pimbench
