/**
 * @file
 * PIMbench: Histogram (Table I, Image Processing; from Phoenix).
 *
 * Computes the 256-bin distribution of each RGB channel of a 24-bit
 * bitmap. To avoid random access on PIM, channels are extracted into
 * planes and each bin is counted with an equality match + reduction
 * sweep over the key range — reduction is the limiting factor,
 * especially for bit-serial (paper Section VIII).
 */

#ifndef PIMEVAL_APPS_HISTOGRAM_H_
#define PIMEVAL_APPS_HISTOGRAM_H_

#include <cstdint>

#include "apps/app_common.h"

namespace pimbench {

struct HistogramParams
{
    uint32_t width = 256;
    uint32_t height = 256;
    uint64_t seed = 9;
};

AppResult runHistogram(const HistogramParams &params);

} // namespace pimbench

#endif // PIMEVAL_APPS_HISTOGRAM_H_
