/**
 * @file
 * Filter-by-key: PIM predicate scan + host gather.
 */

#include "apps/filter_by_key.h"

#include "host/host_kernels.h"
#include "util/prng.h"

namespace pimbench {

AppResult
runFilterByKey(const FilterByKeyParams &params)
{
    AppResult result;
    result.name = "Filter-By-Key";
    pimResetStats();

    const uint64_t n = params.num_records;
    pimeval::Prng rng(params.seed);
    std::vector<uint32_t> column(n);
    for (auto &v : column)
        v = static_cast<uint32_t>(rng.next() & 0x7fffffff);

    // Threshold for the requested selectivity over uniform values.
    const uint32_t key = static_cast<uint32_t>(
        params.selectivity * 0x7fffffff);

    const PimObjId obj_col =
        pimAlloc(PimAllocEnum::PIM_ALLOC_AUTO, n, 32,
                 PimDataType::PIM_UINT32);
    const PimObjId obj_mask =
        pimAllocAssociated(32, obj_col, PimDataType::PIM_UINT32);
    if (obj_col < 0 || obj_mask < 0)
        return result;

    pimCopyHostToDevice(column.data(), obj_col);
    pimLTScalar(obj_col, obj_mask, key);

    // Fetch the bitmap, then gather on the host (the bottleneck).
    std::vector<uint32_t> bitmap32(n);
    pimCopyDeviceToHost(obj_mask, bitmap32.data());

    std::vector<uint8_t> bitmap(n);
    for (uint64_t i = 0; i < n; ++i)
        bitmap[i] = static_cast<uint8_t>(bitmap32[i]);
    std::vector<uint32_t> selected =
        pimeval::gatherByBitmap(column, bitmap);
    // Host gather: scan the bitmap + column, write the matches
    // (costed on the CPU-baseline host model; the bottleneck phase).
    pimAddHostWork(n + n * sizeof(uint32_t) +
                       selected.size() * sizeof(uint32_t),
                   n);

    pimFree(obj_col);
    pimFree(obj_mask);

    // Verify against a direct scan.
    std::vector<uint32_t> expected;
    for (uint32_t v : column)
        if (v < key)
            expected.push_back(v);
    result.verified = (selected == expected);

    result.cpu_work.bytes = n * sizeof(uint32_t) +
        expected.size() * sizeof(uint32_t);
    result.cpu_work.ops = n;
    result.cpu_work.serial_fraction = 0.31; // paper: gather is 31%
    result.gpu_work = result.cpu_work;
    result.gpu_work.serial_fraction = 0.0;
    result.features.sequential_access = true;

    finalizeResult(result);
    return result;
}

} // namespace pimbench
