/**
 * @file
 * AXPY implementation (paper Listing 1).
 */

#include "apps/axpy.h"

#include "core/pim_profile.h"
#include "util/prng.h"

namespace pimbench {

AppResult
runAxpy(const AxpyParams &params)
{
    AppResult result;
    result.name = "AXPY";
    pimResetStats();

    const uint64_t n = params.vector_length;
    pimeval::Prng rng(params.seed);
    const std::vector<int> x = rng.intVector(n, -10000, 10000);
    std::vector<int> y = rng.intVector(n, -10000, 10000);
    const std::vector<int> y_in = y;

    pimProfileBegin("setup");
    const PimObjId obj_x =
        pimAlloc(PimAllocEnum::PIM_ALLOC_AUTO, n, 32,
                 PimDataType::PIM_INT32);
    const PimObjId obj_y =
        pimAllocAssociated(32, obj_x, PimDataType::PIM_INT32);
    pimProfileEnd();
    if (obj_x < 0 || obj_y < 0)
        return result;

    {
        PIM_PROFILE_SCOPE("h2d");
        pimCopyHostToDevice(x.data(), obj_x);
        pimCopyHostToDevice(y.data(), obj_y);
    }
    {
        PIM_PROFILE_SCOPE("compute");
        pimScaledAdd(
            obj_x, obj_y, obj_y,
            static_cast<uint64_t>(static_cast<int64_t>(params.scale)));
    }
    {
        PIM_PROFILE_SCOPE("d2h");
        pimCopyDeviceToHost(obj_y, y.data());
    }

    pimFree(obj_x);
    pimFree(obj_y);

    result.verified = true;
    for (uint64_t i = 0; i < n; ++i) {
        if (y[i] != params.scale * x[i] + y_in[i]) {
            result.verified = false;
            break;
        }
    }

    result.cpu_work.bytes = 3 * n * sizeof(int);
    result.cpu_work.ops = 2 * n; // mul + add per element
    result.gpu_work = result.cpu_work;
    result.features.sequential_access = true;

    finalizeResult(result);
    return result;
}

} // namespace pimbench
