/**
 * @file
 * PIMbench: K-Nearest Neighbors (Table I, Supervised Learning;
 * PIM + Host).
 *
 * Batched inference over 2-D points with Manhattan distance: distance
 * computation runs on PIM (subtract / abs / add per query), while the
 * k-selection sort and majority-vote classification — which need
 * shuffles PIM lacks — run on the host (paper Section VIII).
 */

#ifndef PIMEVAL_APPS_KNN_H_
#define PIMEVAL_APPS_KNN_H_

#include <cstdint>

#include "apps/app_common.h"

namespace pimbench {

struct KnnParams
{
    uint64_t num_points = 1u << 16;
    uint32_t num_queries = 8;
    unsigned k = 5;
    unsigned num_classes = 4;
    uint64_t seed = 12;
};

AppResult runKnn(const KnnParams &params);

} // namespace pimbench

#endif // PIMEVAL_APPS_KNN_H_
