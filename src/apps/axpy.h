/**
 * @file
 * PIMbench: AXPY (Table I, Linear Algebra; from InSituBench).
 *
 * y = A*x + y over 32-bit integers using the fused pimScaledAdd —
 * the paper's Listing 1 example. Multiplication-heavy relative to
 * vector addition, so Fulcrum leads here (paper Section VIII).
 */

#ifndef PIMEVAL_APPS_AXPY_H_
#define PIMEVAL_APPS_AXPY_H_

#include <cstdint>

#include "apps/app_common.h"

namespace pimbench {

struct AxpyParams
{
    uint64_t vector_length = 1u << 20;
    int scale = 7;
    uint64_t seed = 2;
};

AppResult runAxpy(const AxpyParams &params);

} // namespace pimbench

#endif // PIMEVAL_APPS_AXPY_H_
