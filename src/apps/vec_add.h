/**
 * @file
 * PIMbench: Vector Addition (Table I, Linear Algebra).
 *
 * Element-wise c = a + b over 32-bit integers; sequential access,
 * pure PIM execution. The ideal bit-serial candidate (paper
 * Section VIII) since addition is linear in bit width.
 */

#ifndef PIMEVAL_APPS_VEC_ADD_H_
#define PIMEVAL_APPS_VEC_ADD_H_

#include <cstdint>

#include "apps/app_common.h"

namespace pimbench {

struct VecAddParams
{
    uint64_t vector_length = 1u << 20;
    uint64_t seed = 1;
};

/** Run on the active device; verifies against the CPU reference. */
AppResult runVecAdd(const VecAddParams &params);

} // namespace pimbench

#endif // PIMEVAL_APPS_VEC_ADD_H_
