/**
 * @file
 * GEMM via batched GEMV.
 */

#include "apps/gemm.h"

#include "apps/gemv.h"
#include "util/prng.h"

namespace pimbench {

AppResult
runGemm(const GemmParams &params)
{
    AppResult result;
    result.name = "GEMM";
    pimResetStats();

    const uint64_t m = params.m, k = params.k, p = params.p;
    pimeval::Prng rng(params.seed);
    const std::vector<int> a = rng.intVector(m * k, -100, 100); // col-major
    const std::vector<int> b = rng.intVector(k * p, -100, 100); // col-major

    // Batched GEMV: one column of C per sweep, reusing one device
    // workspace across all sweeps so consecutive sweeps pipeline.
    std::vector<int> c(m * p, 0);
    GemvWorkspace ws(m);
    for (uint64_t j = 0; j < p; ++j) {
        const std::vector<int> bj(b.begin() + j * k,
                                  b.begin() + (j + 1) * k);
        const std::vector<int> cj = pimGemvColumnSweep(ws, a, bj, m, k);
        std::copy(cj.begin(), cj.end(), c.begin() + j * m);
    }

    // CPU reference (spot check a pseudo-random subset for large
    // sizes; exact check for the default).
    result.verified = true;
    for (uint64_t j = 0; j < p && result.verified; ++j) {
        for (uint64_t i = 0; i < m; ++i) {
            int64_t acc = 0;
            for (uint64_t l = 0; l < k; ++l) {
                acc += static_cast<int64_t>(a[l * m + i]) *
                    b[j * k + l];
            }
            if (c[j * m + i] != static_cast<int>(acc)) {
                result.verified = false;
                break;
            }
        }
    }

    result.cpu_work.bytes = (m * k + k * p + m * p) * sizeof(int);
    result.cpu_work.ops = 2 * m * k * p;
    // GEMM is compute-bound: on the GPU it runs from cache/registers,
    // so the roofline byte count stays the same but op count rules.
    result.gpu_work = result.cpu_work;
    result.features.sequential_access = true;

    finalizeResult(result);
    return result;
}

} // namespace pimbench
