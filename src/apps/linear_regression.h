/**
 * @file
 * PIMbench: Linear Regression (Table I, Supervised Learning; from
 * Phoenix).
 *
 * 2-D least squares y = b0 + b1*x: PIM computes the four reductions
 * (sum x, sum y, sum x*y, sum x^2); the closed-form slope/intercept
 * solve is a constant-time host epilogue. Reduction-heavy relative to
 * multiplication, so bit-serial and Fulcrum land close together
 * (paper Section VIII).
 */

#ifndef PIMEVAL_APPS_LINEAR_REGRESSION_H_
#define PIMEVAL_APPS_LINEAR_REGRESSION_H_

#include <cstdint>

#include "apps/app_common.h"

namespace pimbench {

struct LinearRegressionParams
{
    uint64_t num_points = 1u << 20;
    uint64_t seed = 13;
};

AppResult runLinearRegression(const LinearRegressionParams &params);

} // namespace pimbench

#endif // PIMEVAL_APPS_LINEAR_REGRESSION_H_
