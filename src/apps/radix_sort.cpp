/**
 * @file
 * Radix sort: PIM counting phase + host scatter phase.
 */

#include "apps/radix_sort.h"

#include <algorithm>

#include "host/host_kernels.h"
#include "util/prng.h"

namespace pimbench {

AppResult
runRadixSort(const RadixSortParams &params)
{
    AppResult result;
    result.name = "Radix Sort";
    pimResetStats();

    const uint64_t n = params.num_keys;
    const unsigned rb = params.radix_bits;
    const uint32_t num_buckets = 1u << rb;
    const uint32_t mask = num_buckets - 1;

    pimeval::Prng rng(params.seed);
    std::vector<uint32_t> keys(n);
    for (auto &k : keys)
        k = static_cast<uint32_t>(rng.next());
    const std::vector<uint32_t> original = keys;

    const PimObjId obj_keys =
        pimAlloc(PimAllocEnum::PIM_ALLOC_AUTO, n, 32,
                 PimDataType::PIM_UINT32);
    const PimObjId obj_digits =
        pimAllocAssociated(32, obj_keys, PimDataType::PIM_UINT32);
    const PimObjId obj_match =
        pimAllocAssociated(32, obj_keys, PimDataType::PIM_UINT32);
    if (obj_keys < 0 || obj_digits < 0 || obj_match < 0)
        return result;

    for (unsigned shift = 0; shift < 32; shift += rb) {
        // PIM counting phase: extract the digit, then count each
        // bucket with an equality match + reduction sum.
        pimCopyHostToDevice(keys.data(), obj_keys);
        pimShiftBitsRight(obj_keys, obj_digits, shift);
        pimAndScalar(obj_digits, obj_digits, mask);

        std::vector<uint64_t> counts(num_buckets, 0);
        for (uint32_t b = 0; b < num_buckets; ++b) {
            pimEQScalar(obj_digits, obj_match, b);
            int64_t count = 0;
            pimRedSum(obj_match, &count);
            counts[b] = static_cast<uint64_t>(count);
        }

        // Host scatter phase: costed on the CPU-baseline host model
        // (read + write every key, digit extraction per key).
        keys = pimeval::countingSortScatter(keys, counts, shift, mask);
        pimAddHostWork(2 * n * sizeof(uint32_t), 2 * n);
    }

    pimFree(obj_keys);
    pimFree(obj_digits);
    pimFree(obj_match);

    std::vector<uint32_t> reference = original;
    std::sort(reference.begin(), reference.end());
    result.verified = (keys == reference);

    // CPU baseline: 4-pass LSD radix sort touches keys ~3x per pass.
    const unsigned passes = 32 / rb;
    result.cpu_work.bytes =
        static_cast<uint64_t>(passes) * 3 * n * sizeof(uint32_t);
    result.cpu_work.ops = static_cast<uint64_t>(passes) * 4 * n;
    result.cpu_work.serial_fraction = 0.3; // scatter is serial-ish
    result.gpu_work = result.cpu_work;
    result.gpu_work.serial_fraction = 0.0; // CUB does this well
    result.features.sequential_access = true;
    result.features.random_access = true;

    finalizeResult(result);
    return result;
}

} // namespace pimbench
