/**
 * @file
 * Prefix sum (Hillis-Steele) with host-staged element shifts.
 */

#include "apps/prefix_sum.h"

#include "util/prng.h"

namespace pimbench {

AppResult
runPrefixSum(const PrefixSumParams &params)
{
    AppResult result;
    result.name = "Prefix Sum";
    pimResetStats();

    const uint64_t n = params.vector_length;
    pimeval::Prng rng(params.seed);
    const std::vector<int> input = rng.intVector(n, -1000, 1000);

    const PimObjId obj_a =
        pimAlloc(PimAllocEnum::PIM_ALLOC_AUTO, n, 32,
                 PimDataType::PIM_INT32);
    const PimObjId obj_b =
        pimAllocAssociated(32, obj_a, PimDataType::PIM_INT32);
    if (obj_a < 0 || obj_b < 0)
        return result;

    pimCopyHostToDevice(input.data(), obj_a);

    std::vector<int> current(n), shifted(n);
    for (uint64_t stride = 1; stride < n; stride <<= 1) {
        // Host: element shift (inter-element movement PIM lacks),
        // costed on the host model.
        pimCopyDeviceToHost(obj_a, current.data());
        for (uint64_t i = 0; i < n; ++i)
            shifted[i] = i >= stride ? current[i - stride] : 0;
        pimAddHostWork(2 * n * sizeof(int), n);
        pimCopyHostToDevice(shifted.data(), obj_b);
        pimAdd(obj_a, obj_b, obj_a);
    }

    std::vector<int> output(n);
    pimCopyDeviceToHost(obj_a, output.data());
    pimFree(obj_a);
    pimFree(obj_b);

    // Verify against a serial scan (int32 wraparound semantics).
    result.verified = true;
    int64_t running = 0;
    for (uint64_t i = 0; i < n; ++i) {
        running += input[i];
        if (output[i] != static_cast<int32_t>(running)) {
            result.verified = false;
            break;
        }
    }

    result.cpu_work.bytes = 2 * n * sizeof(int);
    result.cpu_work.ops = n;
    result.cpu_work.serial_fraction = 0.2;
    result.gpu_work = result.cpu_work;
    result.gpu_work.serial_fraction = 0.0;
    result.features.sequential_access = true;

    finalizeResult(result);
    return result;
}

} // namespace pimbench
