/**
 * @file
 * PIMbench: Matrix-Matrix Multiplication / GEMM (Table I).
 *
 * C = A * B implemented as batched GEMV over the columns of B
 * (paper Section VIII). Compute-intensive, so no PIM variant wins
 * outright — the expected shape is modest Fulcrum kernel-only
 * speedup and data movement dominating end-to-end.
 */

#ifndef PIMEVAL_APPS_GEMM_H_
#define PIMEVAL_APPS_GEMM_H_

#include <cstdint>

#include "apps/app_common.h"

namespace pimbench {

struct GemmParams
{
    uint64_t m = 512; ///< rows of A / C
    uint64_t k = 64;  ///< cols of A = rows of B
    uint64_t p = 16;  ///< cols of B / C
    uint64_t seed = 4;
};

AppResult runGemm(const GemmParams &params);

} // namespace pimbench

#endif // PIMEVAL_APPS_GEMM_H_
