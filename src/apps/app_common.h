/**
 * @file
 * Common harness types for the PIMbench applications.
 *
 * Every benchmark implements:
 *   - a PIM version written against the portable PIM API;
 *   - a CPU reference used for functional verification;
 *   - a workload characterization feeding the roofline CPU/GPU
 *     baselines and the Fig. 1 feature analysis.
 *
 * Apps run against the active device (created by the caller), so the
 * same implementation executes unmodified on all three PIM targets.
 */

#ifndef PIMEVAL_APPS_APP_COMMON_H_
#define PIMEVAL_APPS_APP_COMMON_H_

#include <chrono>
#include <functional>
#include <map>
#include <string>

#include "analysis/benchmark_features.h"
#include "core/pim_api.h"
#include "host/baseline_models.h"

namespace pimbench {

using pimeval::BenchmarkFeatures;
using pimeval::PimRunStats;
using pimeval::WorkloadProfile;

/**
 * Outcome of one benchmark run on one PIM target.
 */
struct AppResult
{
    std::string name;
    bool verified = false;       ///< PIM output matched CPU reference
    PimRunStats stats;           ///< modeled PIM + measured host stats
    WorkloadProfile cpu_work;    ///< characterization for baselines
    WorkloadProfile gpu_work;    ///< ditto (usually identical)
    BenchmarkFeatures features;  ///< Fig. 1 characterization

    /** Total PIM-side time, kernel + data movement + host. */
    double pimTotalSec() const { return stats.totalSec(); }
    /** Kernel + host (the paper's GPU-comparison time). */
    double pimKernelHostSec() const
    {
        return stats.kernel_sec + stats.host_sec;
    }
    /** PIM energy including transfers. */
    double pimTotalJoules() const { return stats.kernel_j + stats.copy_j; }
};

/**
 * RAII device session: creates the device on construction, resets
 * stats, and deletes the device on destruction.
 */
class DeviceSession
{
  public:
    explicit DeviceSession(PimDeviceEnum device, uint64_t num_ranks = 0)
    {
        ok_ = pimCreateDevice(device, num_ranks) == PimStatus::PIM_OK;
    }
    explicit DeviceSession(const pimeval::PimDeviceConfig &config)
    {
        ok_ = pimCreateDeviceFromConfig(config) == PimStatus::PIM_OK;
    }
    ~DeviceSession()
    {
        if (ok_)
            pimDeleteDevice();
    }
    DeviceSession(const DeviceSession &) = delete;
    DeviceSession &operator=(const DeviceSession &) = delete;

    bool ok() const { return ok_; }

  private:
    bool ok_ = false;
};

/**
 * Scoped host-phase timer feeding the active device's stats, used by
 * the PIM+Host benchmarks around their host-executed kernels.
 */
class HostPhaseTimer
{
  public:
    HostPhaseTimer() { pimStartHostTimer(); }
    ~HostPhaseTimer() { pimStopHostTimer(); }
    HostPhaseTimer(const HostPhaseTimer &) = delete;
    HostPhaseTimer &operator=(const HostPhaseTimer &) = delete;
};

/** Finalize an AppResult: snapshot stats and op mix into features. */
void finalizeResult(AppResult &result);

/** All PIMbench benchmark names in Table I order. */
const std::vector<std::string> &pimbenchSuiteNames();

} // namespace pimbench

#endif // PIMEVAL_APPS_APP_COMMON_H_
