/**
 * @file
 * Histogram: per-bin equality + reduction over channel planes.
 */

#include "apps/histogram.h"

#include <array>

#include "util/bmp_image.h"

namespace pimbench {

AppResult
runHistogram(const HistogramParams &params)
{
    AppResult result;
    result.name = "Histogram";
    pimResetStats();

    const pimeval::BmpImage img = pimeval::BmpImage::synthetic(
        params.width, params.height, params.seed);
    const uint64_t n = img.numPixels();

    const std::array<const std::vector<uint8_t> *, 3> planes = {
        &img.red(), &img.green(), &img.blue()};

    const PimObjId obj_chan =
        pimAlloc(PimAllocEnum::PIM_ALLOC_AUTO, n, 8,
                 PimDataType::PIM_UINT8);
    const PimObjId obj_mask =
        pimAllocAssociated(8, obj_chan, PimDataType::PIM_UINT8);
    if (obj_chan < 0 || obj_mask < 0)
        return result;

    std::array<std::array<uint64_t, 256>, 3> histogram{};
    for (int c = 0; c < 3; ++c) {
        pimCopyHostToDevice(planes[c]->data(), obj_chan);
        for (unsigned v = 0; v < 256; ++v) {
            pimEQScalar(obj_chan, obj_mask, v);
            int64_t count = 0;
            pimRedSum(obj_mask, &count);
            histogram[c][v] = static_cast<uint64_t>(count);
        }
    }

    pimFree(obj_chan);
    pimFree(obj_mask);

    // Verify against a direct scan.
    std::array<std::array<uint64_t, 256>, 3> expected{};
    for (int c = 0; c < 3; ++c)
        for (uint8_t v : *planes[c])
            ++expected[c][v];
    result.verified = (histogram == expected);

    result.cpu_work.bytes = 3 * n;
    result.cpu_work.ops = 3 * n * 2; // load + increment
    result.cpu_work.serial_fraction = 0.05;
    result.gpu_work = result.cpu_work;
    result.features.sequential_access = true;

    finalizeResult(result);
    return result;
}

} // namespace pimbench
