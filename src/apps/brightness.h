/**
 * @file
 * PIMbench: Brightness (Table I, Image Processing; from SIMDRAM).
 *
 * Adds a coefficient to every RGB value with saturation to [0, 255]
 * via min/max — all simple element-wise ops, so every PIM variant
 * beats both CPU and GPU (paper Section VIII).
 */

#ifndef PIMEVAL_APPS_BRIGHTNESS_H_
#define PIMEVAL_APPS_BRIGHTNESS_H_

#include <cstdint>

#include "apps/app_common.h"

namespace pimbench {

struct BrightnessParams
{
    uint32_t width = 512;
    uint32_t height = 512;
    int delta = 40; ///< brightness increment (may be negative)
    uint64_t seed = 10;
};

AppResult runBrightness(const BrightnessParams &params);

} // namespace pimbench

#endif // PIMEVAL_APPS_BRIGHTNESS_H_
