/**
 * @file
 * Brightness: saturating add over channel planes.
 */

#include "apps/brightness.h"

#include <algorithm>
#include <array>

#include "util/bmp_image.h"

namespace pimbench {

AppResult
runBrightness(const BrightnessParams &params)
{
    AppResult result;
    result.name = "Brightness";
    pimResetStats();

    const pimeval::BmpImage img = pimeval::BmpImage::synthetic(
        params.width, params.height, params.seed);
    const uint64_t n = img.numPixels();

    const std::array<const std::vector<uint8_t> *, 3> planes = {
        &img.red(), &img.green(), &img.blue()};

    // int16 working type so the saturation window is visible.
    const PimObjId obj_chan =
        pimAlloc(PimAllocEnum::PIM_ALLOC_AUTO, n, 16,
                 PimDataType::PIM_INT16);
    if (obj_chan < 0)
        return result;

    std::array<std::vector<int16_t>, 3> out_planes;
    std::vector<int16_t> staging(n);
    for (int c = 0; c < 3; ++c) {
        for (uint64_t i = 0; i < n; ++i)
            staging[i] = static_cast<int16_t>((*planes[c])[i]);
        pimCopyHostToDevice(staging.data(), obj_chan);
        pimAddScalar(obj_chan, obj_chan,
                     static_cast<uint64_t>(
                         static_cast<int64_t>(params.delta)));
        pimMinScalar(obj_chan, obj_chan, 255);
        pimMaxScalar(obj_chan, obj_chan, 0);
        out_planes[c].resize(n);
        pimCopyDeviceToHost(obj_chan, out_planes[c].data());
    }
    pimFree(obj_chan);

    // Verify.
    result.verified = true;
    for (int c = 0; c < 3 && result.verified; ++c) {
        for (uint64_t i = 0; i < n; ++i) {
            const int expected = std::clamp(
                static_cast<int>((*planes[c])[i]) + params.delta, 0,
                255);
            if (out_planes[c][i] != expected) {
                result.verified = false;
                break;
            }
        }
    }

    result.cpu_work.bytes = 2 * 3 * n;
    result.cpu_work.ops = 3 * n * 3; // add, min, max
    result.gpu_work = result.cpu_work;
    result.features.sequential_access = true;

    finalizeResult(result);
    return result;
}

} // namespace pimbench
