/**
 * @file
 * AES-256 ECB on PIM, fully bitsliced.
 *
 * The state is held as 16 x 8 one-bit planes (position x bit), so
 * every AES step maps to row-wide Boolean micro-operations — the
 * "look-up table realized using logic gates" formulation the paper
 * adopts from Hajihassani et al.:
 *  - AddRoundKey: conditional plane inversions (XNOR with constants);
 *  - ShiftRows: pure plane renaming at the controller;
 *  - MixColumns / InvMixColumns: xtime chains = plane renames + XORs;
 *  - SubBytes: a Shannon-factored two-level circuit over the 16 high-
 *    and 16 low-nibble minterms (AND/OR network), generated from the
 *    S-box truth table, so correctness is by construction.
 */

#include "apps/aes_app.h"

#include <array>

#include "util/aes_ref.h"
#include "util/prng.h"

namespace pimbench {

namespace {

using pimeval::Aes256;

/** FIPS-197 key expansion for AES-256 (Nk = 8, 15 round keys). */
std::vector<std::array<uint8_t, 16>>
expandKey(const std::array<uint8_t, 32> &key)
{
    std::vector<std::array<uint8_t, 16>> round_keys(15);
    uint8_t w[60][4];
    std::copy(key.begin(), key.end(), &w[0][0]);
    static const uint8_t rcon[8] = {0x01, 0x02, 0x04, 0x08,
                                    0x10, 0x20, 0x40, 0x80};
    for (int i = 8; i < 60; ++i) {
        uint8_t t[4];
        std::copy(w[i - 1], w[i - 1] + 4, t);
        if (i % 8 == 0) {
            const uint8_t t0 = t[0];
            t[0] = static_cast<uint8_t>(Aes256::sbox(t[1]) ^
                                        rcon[i / 8 - 1]);
            t[1] = Aes256::sbox(t[2]);
            t[2] = Aes256::sbox(t[3]);
            t[3] = Aes256::sbox(t0);
        } else if (i % 8 == 4) {
            for (auto &x : t)
                x = Aes256::sbox(x);
        }
        for (int b = 0; b < 4; ++b)
            w[i][b] = static_cast<uint8_t>(w[i - 8][b] ^ t[b]);
    }
    for (int r = 0; r < 15; ++r)
        std::copy(&w[4 * r][0], &w[4 * r][0] + 16,
                  round_keys[r].begin());
    return round_keys;
}

/** One byte position as eight one-bit planes. */
using BytePlanes = std::array<PimObjId, 8>;

/**
 * All PIM objects of the bitsliced AES state plus reusable scratch.
 * Everything is associated with one reference object so element-wise
 * ops pair up.
 */
struct AesPimState
{
    std::array<BytePlanes, 16> pos; ///< state planes [position][bit]
    std::array<PimObjId, 8> not_p;  ///< complemented input planes
    std::array<PimObjId, 16> lo_min; ///< low-nibble minterms
    std::array<PimObjId, 16> hi_min; ///< high-nibble minterms
    std::array<PimObjId, 8> sub_out; ///< SubBytes output planes
    std::array<PimObjId, 8> tall;    ///< MixColumns s0^s1^s2^s3
    std::array<PimObjId, 8> u;       ///< MixColumns pair XOR
    std::array<PimObjId, 8> xtu;     ///< xtime result
    std::array<std::array<PimObjId, 8>, 4> col_out; ///< column outputs
    std::array<PimObjId, 8> x2, x4, x8; ///< InvMixColumns powers
    PimObjId g = -1; ///< Shannon subtree accumulator
    PimObjId t = -1; ///< generic temporary
    std::vector<PimObjId> all;

    PimObjId
    assoc(PimObjId ref)
    {
        const PimObjId id =
            pimAllocAssociated(1, ref, PimDataType::PIM_BOOL);
        all.push_back(id);
        return id;
    }

    bool
    allocate(uint64_t num_blocks)
    {
        pos[0][0] = pimAlloc(PimAllocEnum::PIM_ALLOC_AUTO, num_blocks,
                             1, PimDataType::PIM_BOOL);
        all.push_back(pos[0][0]);
        if (pos[0][0] < 0)
            return false;
        const PimObjId ref = pos[0][0];
        for (int i = 0; i < 16; ++i)
            for (int k = 0; k < 8; ++k)
                if (i != 0 || k != 0)
                    pos[i][k] = assoc(ref);
        for (auto &id : not_p)
            id = assoc(ref);
        for (auto &id : lo_min)
            id = assoc(ref);
        for (auto &id : hi_min)
            id = assoc(ref);
        for (auto &id : sub_out)
            id = assoc(ref);
        for (auto &id : tall)
            id = assoc(ref);
        for (auto &id : u)
            id = assoc(ref);
        for (auto &id : xtu)
            id = assoc(ref);
        for (auto &col : col_out)
            for (auto &id : col)
                id = assoc(ref);
        for (auto &id : x2)
            id = assoc(ref);
        for (auto &id : x4)
            id = assoc(ref);
        for (auto &id : x8)
            id = assoc(ref);
        g = assoc(ref);
        t = assoc(ref);
        for (PimObjId id : all)
            if (id < 0)
                return false;
        return true;
    }

    void
    release()
    {
        for (PimObjId id : all)
            if (id >= 0)
                pimFree(id);
        all.clear();
    }
};

/** XOR a round-key byte into a position: invert planes of set bits. */
void
pimAddRoundKeyByte(BytePlanes &planes, uint8_t rk)
{
    for (int k = 0; k < 8; ++k) {
        if ((rk >> k) & 1)
            pimXorScalar(planes[k], planes[k], 1);
    }
}

/**
 * SubBytes on one position via the Shannon-factored circuit:
 *   out_k = OR_h [ hiMin_h AND (OR_{l in T(h,k)} loMin_l) ]
 * where T(h,k) = { l : bit k of table[16h + l] }.
 */
void
pimSubBytesPosition(AesPimState &st, BytePlanes &planes, bool inverse)
{
    // Complemented literals.
    for (int k = 0; k < 8; ++k)
        pimXorScalar(planes[k], st.not_p[k], 1);

    // Nibble minterms: AND of four literals each.
    for (int m = 0; m < 16; ++m) {
        auto lit = [&](int bit, bool lo) {
            const int k = lo ? bit : bit + 4;
            return ((m >> bit) & 1) ? planes[k] : st.not_p[k];
        };
        pimAnd(lit(0, true), lit(1, true), st.lo_min[m]);
        pimAnd(st.lo_min[m], lit(2, true), st.lo_min[m]);
        pimAnd(st.lo_min[m], lit(3, true), st.lo_min[m]);
        pimAnd(lit(0, false), lit(1, false), st.hi_min[m]);
        pimAnd(st.hi_min[m], lit(2, false), st.hi_min[m]);
        pimAnd(st.hi_min[m], lit(3, false), st.hi_min[m]);
    }

    // Two-level network per output bit.
    for (int k = 0; k < 8; ++k) {
        pimBroadcastInt(st.sub_out[k], 0);
        for (int h = 0; h < 16; ++h) {
            // Gather the low nibbles whose table entry has bit k.
            std::array<int, 16> set{};
            int count = 0;
            for (int l = 0; l < 16; ++l) {
                const auto v = static_cast<uint8_t>(16 * h + l);
                const uint8_t s = inverse ? Aes256::invSbox(v)
                                          : Aes256::sbox(v);
                if ((s >> k) & 1)
                    set[count++] = l;
            }
            if (count == 0)
                continue;
            if (count == 16) {
                // Subtree is constant 1: the minterm passes through.
                pimOr(st.sub_out[k], st.hi_min[h], st.sub_out[k]);
                continue;
            }
            pimCopyDeviceToDevice(st.lo_min[set[0]], st.g);
            for (int idx = 1; idx < count; ++idx)
                pimOr(st.g, st.lo_min[set[idx]], st.g);
            pimAnd(st.hi_min[h], st.g, st.t);
            pimOr(st.sub_out[k], st.t, st.sub_out[k]);
        }
    }
    for (int k = 0; k < 8; ++k)
        pimCopyDeviceToDevice(st.sub_out[k], planes[k]);
}

/** In-place ShiftRows: plane renaming at the controller. */
void
applyShiftRows(std::array<BytePlanes, 16> &pos, bool inverse)
{
    std::array<BytePlanes, 16> next;
    for (int c = 0; c < 4; ++c) {
        for (int r = 0; r < 4; ++r) {
            if (!inverse)
                next[4 * c + r] = pos[4 * ((c + r) % 4) + r];
            else
                next[4 * ((c + r) % 4) + r] = pos[4 * c + r];
        }
    }
    pos = next;
}

/**
 * dst = xtime(src) on planes: left rotate through the reduction
 * polynomial 0x1b — renames plus three XORs.
 */
void
pimXtimePlanes(const BytePlanes &src,
               const std::array<PimObjId, 8> &dst)
{
    // Bits without reduction: dst[k] = src[k-1] for k in {2,5,6,7}
    // and dst[0] = src[7]; bits 1, 3, 4 additionally XOR src[7].
    pimCopyDeviceToDevice(src[7], dst[0]);
    pimXor(src[0], src[7], dst[1]);
    pimCopyDeviceToDevice(src[1], dst[2]);
    pimXor(src[2], src[7], dst[3]);
    pimXor(src[3], src[7], dst[4]);
    pimCopyDeviceToDevice(src[4], dst[5]);
    pimCopyDeviceToDevice(src[5], dst[6]);
    pimCopyDeviceToDevice(src[6], dst[7]);
}

/** MixColumns over the four byte positions of each column. */
void
pimMixColumns(AesPimState &st)
{
    for (int c = 0; c < 4; ++c) {
        std::array<BytePlanes *, 4> s = {
            &st.pos[4 * c + 0], &st.pos[4 * c + 1],
            &st.pos[4 * c + 2], &st.pos[4 * c + 3]};

        for (int k = 0; k < 8; ++k) {
            pimXor((*s[0])[k], (*s[1])[k], st.tall[k]);
            pimXor(st.tall[k], (*s[2])[k], st.tall[k]);
            pimXor(st.tall[k], (*s[3])[k], st.tall[k]);
        }
        for (int i = 0; i < 4; ++i) {
            // u = s_i ^ s_{i+1}; out_i = s_i ^ tall ^ xtime(u).
            for (int k = 0; k < 8; ++k)
                pimXor((*s[i])[k], (*s[(i + 1) % 4])[k], st.u[k]);
            pimXtimePlanes({st.u[0], st.u[1], st.u[2], st.u[3],
                            st.u[4], st.u[5], st.u[6], st.u[7]},
                           st.xtu);
            for (int k = 0; k < 8; ++k) {
                pimXor((*s[i])[k], st.tall[k], st.col_out[i][k]);
                pimXor(st.col_out[i][k], st.xtu[k],
                       st.col_out[i][k]);
            }
        }
        for (int i = 0; i < 4; ++i)
            for (int k = 0; k < 8; ++k)
                pimCopyDeviceToDevice(st.col_out[i][k], (*s[i])[k]);
    }
}

/** Inverse MixColumns: multipliers 9, 11, 13, 14 via xtime chains. */
void
pimInvMixColumns(AesPimState &st)
{
    static const int kInvMatrix[4][4] = {{14, 11, 13, 9},
                                         {9, 14, 11, 13},
                                         {13, 9, 14, 11},
                                         {11, 13, 9, 14}};
    for (int c = 0; c < 4; ++c) {
        std::array<BytePlanes *, 4> s = {
            &st.pos[4 * c + 0], &st.pos[4 * c + 1],
            &st.pos[4 * c + 2], &st.pos[4 * c + 3]};

        for (int i = 0; i < 4; ++i)
            for (int k = 0; k < 8; ++k)
                pimBroadcastInt(st.col_out[i][k], 0);

        for (int i = 0; i < 4; ++i) {
            pimXtimePlanes(*s[i], st.x2);
            pimXtimePlanes({st.x2[0], st.x2[1], st.x2[2], st.x2[3],
                            st.x2[4], st.x2[5], st.x2[6], st.x2[7]},
                           st.x4);
            pimXtimePlanes({st.x4[0], st.x4[1], st.x4[2], st.x4[3],
                            st.x4[4], st.x4[5], st.x4[6], st.x4[7]},
                           st.x8);
            for (int r = 0; r < 4; ++r) {
                const int factor = kInvMatrix[r][i];
                for (int k = 0; k < 8; ++k) {
                    // Accumulate x8 (always) plus x4/x2/x1 by factor.
                    pimXor(st.col_out[r][k], st.x8[k],
                           st.col_out[r][k]);
                    if (factor == 13 || factor == 14)
                        pimXor(st.col_out[r][k], st.x4[k],
                               st.col_out[r][k]);
                    if (factor == 11 || factor == 14)
                        pimXor(st.col_out[r][k], st.x2[k],
                               st.col_out[r][k]);
                    if (factor == 9 || factor == 11 || factor == 13)
                        pimXor(st.col_out[r][k], (*s[i])[k],
                               st.col_out[r][k]);
                }
            }
        }
        for (int i = 0; i < 4; ++i)
            for (int k = 0; k < 8; ++k)
                pimCopyDeviceToDevice(st.col_out[i][k], (*s[i])[k]);
    }
}

AppResult
runAes(const AesParams &params, bool decrypt)
{
    AppResult result;
    result.name = decrypt ? "AES-Decryption" : "AES-Encryption";
    pimResetStats();

    const uint64_t num_blocks = params.num_blocks;
    const uint64_t num_bytes = num_blocks * 16;
    pimeval::Prng rng(params.seed);
    const std::vector<uint8_t> plaintext = rng.byteVector(num_bytes);

    std::array<uint8_t, 32> key;
    for (auto &k : key)
        k = static_cast<uint8_t>(rng.next());
    const Aes256 cipher(key);
    const std::vector<uint8_t> ciphertext = cipher.encryptEcb(plaintext);
    const auto round_keys = expandKey(key);

    const std::vector<uint8_t> &input =
        decrypt ? ciphertext : plaintext;
    AesPimState st;
    if (!st.allocate(num_blocks)) {
        st.release();
        return result;
    }

    // Load position-major bit planes.
    std::vector<uint8_t> plane(num_blocks);
    for (int i = 0; i < 16; ++i) {
        for (int k = 0; k < 8; ++k) {
            for (uint64_t b = 0; b < num_blocks; ++b)
                plane[b] = (input[b * 16 + i] >> k) & 1;
            pimCopyHostToDevice(plane.data(), st.pos[i][k]);
        }
    }

    constexpr int kRounds = Aes256::kNumRounds;
    auto addRoundKey = [&](int round) {
        for (int i = 0; i < 16; ++i)
            pimAddRoundKeyByte(st.pos[i], round_keys[round][i]);
    };
    auto subBytesAll = [&](bool inverse) {
        for (int i = 0; i < 16; ++i)
            pimSubBytesPosition(st, st.pos[i], inverse);
    };

    if (!decrypt) {
        addRoundKey(0);
        for (int round = 1; round < kRounds; ++round) {
            subBytesAll(false);
            applyShiftRows(st.pos, false);
            pimMixColumns(st);
            addRoundKey(round);
        }
        subBytesAll(false);
        applyShiftRows(st.pos, false);
        addRoundKey(kRounds);
    } else {
        addRoundKey(kRounds);
        for (int round = kRounds - 1; round >= 1; --round) {
            applyShiftRows(st.pos, true);
            subBytesAll(true);
            addRoundKey(round);
            pimInvMixColumns(st);
        }
        applyShiftRows(st.pos, true);
        subBytesAll(true);
        addRoundKey(0);
    }

    // Read back, recompose bytes, verify.
    std::vector<uint8_t> output(num_bytes, 0);
    for (int i = 0; i < 16; ++i) {
        for (int k = 0; k < 8; ++k) {
            pimCopyDeviceToHost(st.pos[i][k], plane.data());
            for (uint64_t b = 0; b < num_blocks; ++b)
                output[b * 16 + i] |=
                    static_cast<uint8_t>((plane[b] & 1) << k);
        }
    }
    st.release();

    const std::vector<uint8_t> &expected =
        decrypt ? plaintext : ciphertext;
    result.verified = (output == expected);

    // CPU baseline: AES-NI-class pipeline, ~20 ops/byte equivalent.
    result.cpu_work.bytes = 2 * num_bytes;
    result.cpu_work.ops = num_bytes * 20;
    result.gpu_work = result.cpu_work;
    result.features.sequential_access = true;
    result.features.random_access = true; // table lookups

    finalizeResult(result);
    return result;
}

} // namespace

AppResult
runAesEncrypt(const AesParams &params)
{
    return runAes(params, false);
}

AppResult
runAesDecrypt(const AesParams &params)
{
    return runAes(params, true);
}

} // namespace pimbench
