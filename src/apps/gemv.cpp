/**
 * @file
 * GEMV implementation.
 */

#include "apps/gemv.h"

#include "core/pim_profile.h"
#include "util/prng.h"

namespace pimbench {

GemvWorkspace::GemvWorkspace(uint64_t m)
{
    PIM_PROFILE_SCOPE("setup");
    // Captured copies make rotation pointless: the fused sweep elides
    // the staging stores outright, so one buffer maximizes WAW
    // elision while the unfused pipeline keeps its overlap rotation.
    num_cols_ = pimGetFusionEnabled() ? 1 : kColumnBuffers;
    cols_[0] = pimAlloc(PimAllocEnum::PIM_ALLOC_AUTO, m, 32,
                        PimDataType::PIM_INT32);
    ok_ = cols_[0] >= 0;
    for (uint64_t i = 1; i < num_cols_; ++i) {
        cols_[i] =
            pimAllocAssociated(32, cols_[0], PimDataType::PIM_INT32);
        ok_ = ok_ && cols_[i] >= 0;
    }
    for (uint64_t i = num_cols_; i < kColumnBuffers; ++i)
        cols_[i] = -1;
    acc_ = pimAllocAssociated(32, cols_[0], PimDataType::PIM_INT32);
    ok_ = ok_ && acc_ >= 0;
}

GemvWorkspace::~GemvWorkspace()
{
    for (const PimObjId col : cols_) {
        if (col >= 0)
            pimFree(col);
    }
    if (acc_ >= 0)
        pimFree(acc_);
}

std::vector<int>
pimGemvColumnSweep(GemvWorkspace &ws, const std::vector<int> &matrix,
                   const std::vector<int> &v, uint64_t m, uint64_t n)
{
    std::vector<int> y(m, 0);
    if (!ws.ok())
        return y;

    {
        // One phase for the whole sweep: the per-column H2D staging
        // is deliberately interleaved with the scaled-adds, and the
        // profiler's modeled split shows its transfer share anyway.
        PIM_PROFILE_SCOPE("compute");
        // With fusion on, the whole sweep runs as a capture region:
        // each copy becomes a fused load feeding its scaled-add, the
        // single staging buffer's stores are WAW-elided, and a window
        // of K columns executes as one fused sweep.
        const bool fused = pimGetFusionEnabled();
        if (fused)
            pimBeginFusion();
        pimBroadcastInt(ws.acc(), 0);
        for (uint64_t j = 0; j < n; ++j) {
            // Rotating staging buffers: the copy into column j
            // targets a different object than the scaled-add still
            // consuming column j-1, so the async pipeline overlaps
            // them. Fused sweeps stream through one buffer instead.
            const PimObjId col = fused ? ws.column(0) : ws.column(j);
            pimCopyHostToDevice(matrix.data() + j * m, col);
            pimScaledAdd(
                col, ws.acc(), ws.acc(),
                static_cast<uint64_t>(static_cast<int64_t>(v[j])));
        }
        if (fused)
            pimEndFusion();
    }
    {
        PIM_PROFILE_SCOPE("d2h");
        pimCopyDeviceToHost(ws.acc(), y.data());
    }
    return y;
}

std::vector<int>
pimGemvColumnSweep(const std::vector<int> &matrix,
                   const std::vector<int> &v, uint64_t m, uint64_t n)
{
    GemvWorkspace ws(m);
    return pimGemvColumnSweep(ws, matrix, v, m, n);
}

AppResult
runGemv(const GemvParams &params)
{
    AppResult result;
    result.name = "GEMV";
    pimResetStats();

    const uint64_t m = params.rows;
    const uint64_t n = params.cols;
    pimeval::Prng rng(params.seed);
    const std::vector<int> matrix =
        rng.intVector(m * n, -1000, 1000); // column-major
    const std::vector<int> v = rng.intVector(n, -1000, 1000);

    const std::vector<int> y = pimGemvColumnSweep(matrix, v, m, n);

    // CPU reference.
    result.verified = true;
    for (uint64_t i = 0; i < m && result.verified; ++i) {
        int64_t acc = 0;
        for (uint64_t j = 0; j < n; ++j)
            acc += static_cast<int64_t>(matrix[j * m + i]) * v[j];
        if (y[i] != static_cast<int>(acc))
            result.verified = false;
    }

    result.cpu_work.bytes = (m * n + n + m) * sizeof(int);
    result.cpu_work.ops = 2 * m * n;
    result.gpu_work = result.cpu_work;
    result.features.sequential_access = true;

    finalizeResult(result);
    return result;
}

} // namespace pimbench
