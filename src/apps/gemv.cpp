/**
 * @file
 * GEMV implementation.
 */

#include "apps/gemv.h"

#include "util/prng.h"

namespace pimbench {

std::vector<int>
pimGemvColumnSweep(const std::vector<int> &matrix,
                   const std::vector<int> &v, uint64_t m, uint64_t n)
{
    const PimObjId obj_col =
        pimAlloc(PimAllocEnum::PIM_ALLOC_AUTO, m, 32,
                 PimDataType::PIM_INT32);
    const PimObjId obj_acc =
        pimAllocAssociated(32, obj_col, PimDataType::PIM_INT32);
    std::vector<int> y(m, 0);
    if (obj_col < 0 || obj_acc < 0)
        return y;

    pimBroadcastInt(obj_acc, 0);
    for (uint64_t j = 0; j < n; ++j) {
        pimCopyHostToDevice(matrix.data() + j * m, obj_col);
        pimScaledAdd(obj_col, obj_acc, obj_acc,
                     static_cast<uint64_t>(static_cast<int64_t>(v[j])));
    }
    pimCopyDeviceToHost(obj_acc, y.data());

    pimFree(obj_col);
    pimFree(obj_acc);
    return y;
}

AppResult
runGemv(const GemvParams &params)
{
    AppResult result;
    result.name = "GEMV";
    pimResetStats();

    const uint64_t m = params.rows;
    const uint64_t n = params.cols;
    pimeval::Prng rng(params.seed);
    const std::vector<int> matrix =
        rng.intVector(m * n, -1000, 1000); // column-major
    const std::vector<int> v = rng.intVector(n, -1000, 1000);

    const std::vector<int> y = pimGemvColumnSweep(matrix, v, m, n);

    // CPU reference.
    result.verified = true;
    for (uint64_t i = 0; i < m && result.verified; ++i) {
        int64_t acc = 0;
        for (uint64_t j = 0; j < n; ++j)
            acc += static_cast<int64_t>(matrix[j * m + i]) * v[j];
        if (y[i] != static_cast<int>(acc))
            result.verified = false;
    }

    result.cpu_work.bytes = (m * n + n + m) * sizeof(int);
    result.cpu_work.ops = 2 * m * n;
    result.gpu_work = result.cpu_work;
    result.features.sequential_access = true;

    finalizeResult(result);
    return result;
}

} // namespace pimbench
