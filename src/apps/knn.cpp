/**
 * @file
 * KNN: PIM distance computation + host sort/classify.
 */

#include "apps/knn.h"

#include <cmath>

#include "host/host_kernels.h"
#include "util/prng.h"

namespace pimbench {

AppResult
runKnn(const KnnParams &params)
{
    AppResult result;
    result.name = "KNN";
    pimResetStats();

    const uint64_t n = params.num_points;
    pimeval::Prng rng(params.seed);
    const std::vector<int> xs = rng.intVector(n, -10000, 10000);
    const std::vector<int> ys = rng.intVector(n, -10000, 10000);
    std::vector<int> labels(n);
    for (auto &l : labels)
        l = static_cast<int>(rng.nextInt(0, params.num_classes - 1));

    const PimObjId obj_x =
        pimAlloc(PimAllocEnum::PIM_ALLOC_AUTO, n, 32,
                 PimDataType::PIM_INT32);
    const PimObjId obj_y =
        pimAllocAssociated(32, obj_x, PimDataType::PIM_INT32);
    const PimObjId obj_dx =
        pimAllocAssociated(32, obj_x, PimDataType::PIM_INT32);
    const PimObjId obj_dy =
        pimAllocAssociated(32, obj_x, PimDataType::PIM_INT32);
    if (obj_x < 0 || obj_y < 0 || obj_dx < 0 || obj_dy < 0)
        return result;

    pimCopyHostToDevice(xs.data(), obj_x);
    pimCopyHostToDevice(ys.data(), obj_y);

    std::vector<int> predictions;
    std::vector<int> expected;
    std::vector<int> dist(n);
    result.verified = true;

    for (uint32_t q = 0; q < params.num_queries; ++q) {
        const int qx = static_cast<int>(rng.nextInt(-10000, 10000));
        const int qy = static_cast<int>(rng.nextInt(-10000, 10000));

        // PIM: |x - qx| + |y - qy| per training point.
        pimSubScalar(obj_x, obj_dx,
                     static_cast<uint64_t>(static_cast<int64_t>(qx)));
        pimAbs(obj_dx, obj_dx);
        pimSubScalar(obj_y, obj_dy,
                     static_cast<uint64_t>(static_cast<int64_t>(qy)));
        pimAbs(obj_dy, obj_dy);
        pimAdd(obj_dx, obj_dy, obj_dx);
        pimCopyDeviceToHost(obj_dx, dist.data());

        // Host: k-selection + vote (costed on the host model).
        const int label = pimeval::knnClassify(dist, labels, params.k);
        pimAddHostWork(2 * n * sizeof(int), 2 * n);
        predictions.push_back(label);

        // Reference.
        std::vector<int> ref_dist(n);
        for (uint64_t i = 0; i < n; ++i)
            ref_dist[i] = std::abs(xs[i] - qx) + std::abs(ys[i] - qy);
        expected.push_back(
            pimeval::knnClassify(ref_dist, labels, params.k));
    }
    result.verified = (predictions == expected);

    pimFree(obj_x);
    pimFree(obj_y);
    pimFree(obj_dx);
    pimFree(obj_dy);

    result.cpu_work.bytes =
        params.num_queries * 2 * n * sizeof(int);
    result.cpu_work.ops = params.num_queries * n * 5;
    result.cpu_work.serial_fraction = 0.1; // partial sort
    result.gpu_work = result.cpu_work;
    result.gpu_work.serial_fraction = 0.0; // GPU top-k is parallel
    result.features.sequential_access = true;
    result.features.random_access = true;

    finalizeResult(result);
    return result;
}

} // namespace pimbench
