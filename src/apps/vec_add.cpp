/**
 * @file
 * Vector addition implementation.
 */

#include "apps/vec_add.h"

#include "core/pim_profile.h"
#include "util/prng.h"

namespace pimbench {

AppResult
runVecAdd(const VecAddParams &params)
{
    AppResult result;
    result.name = "Vector Addition";
    pimResetStats();

    const uint64_t n = params.vector_length;
    pimeval::Prng rng(params.seed);
    const std::vector<int> a = rng.intVector(n, -100000, 100000);
    const std::vector<int> b = rng.intVector(n, -100000, 100000);

    // PIM execution (paper Listing 1 structure).
    pimProfileBegin("setup");
    const PimObjId obj_a =
        pimAlloc(PimAllocEnum::PIM_ALLOC_AUTO, n, 32,
                 PimDataType::PIM_INT32);
    const PimObjId obj_b =
        pimAllocAssociated(32, obj_a, PimDataType::PIM_INT32);
    const PimObjId obj_c =
        pimAllocAssociated(32, obj_a, PimDataType::PIM_INT32);
    pimProfileEnd();
    if (obj_a < 0 || obj_b < 0 || obj_c < 0)
        return result;

    {
        PIM_PROFILE_SCOPE("h2d");
        pimCopyHostToDevice(a.data(), obj_a);
        pimCopyHostToDevice(b.data(), obj_b);
    }
    {
        PIM_PROFILE_SCOPE("compute");
        pimAdd(obj_a, obj_b, obj_c);
    }

    std::vector<int> c(n);
    {
        PIM_PROFILE_SCOPE("d2h");
        pimCopyDeviceToHost(obj_c, c.data());
    }

    pimFree(obj_a);
    pimFree(obj_b);
    pimFree(obj_c);

    // Functional verification against the CPU reference.
    result.verified = true;
    for (uint64_t i = 0; i < n; ++i) {
        if (c[i] != a[i] + b[i]) {
            result.verified = false;
            break;
        }
    }

    // Baseline characterization: read a, b; write c; one add each.
    result.cpu_work.bytes = 3 * n * sizeof(int);
    result.cpu_work.ops = n;
    result.gpu_work = result.cpu_work;
    result.features.sequential_access = true;

    finalizeResult(result);
    return result;
}

} // namespace pimbench
