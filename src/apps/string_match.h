/**
 * @file
 * PIMbench extension: String Match (from Phoenix; listed in the
 * paper's in-progress kernel additions).
 *
 * Counts occurrences of a fixed pattern in a byte string with the
 * associative-processing idiom: per pattern offset, an equality match
 * against the shifted text ANDed into a running match mask — the
 * DRAM-CAM exact-pattern-matching style DRAM-AP supports natively.
 */

#ifndef PIMEVAL_APPS_STRING_MATCH_H_
#define PIMEVAL_APPS_STRING_MATCH_H_

#include <cstdint>
#include <string>

#include "apps/app_common.h"

namespace pimbench {

struct StringMatchParams
{
    uint64_t text_length = 1u << 18;
    std::string pattern = "pimeval";
    uint64_t seed = 17;
};

AppResult runStringMatch(const StringMatchParams &params);

} // namespace pimbench

#endif // PIMEVAL_APPS_STRING_MATCH_H_
