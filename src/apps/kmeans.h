/**
 * @file
 * PIMbench: K-means (Table I, Unsupervised Learning; from Phoenix).
 *
 * Lloyd iterations over 2-D integer points. The random-access
 * assignment step is restructured for PIM with bitmasks: per-centroid
 * Manhattan distances, a running minimum, equality masks to group the
 * points of each centroid, and masked reductions for the new means
 * (division on the host). Simple subtract/add/eq ops, so all PIM
 * variants do well (paper Section VIII).
 */

#ifndef PIMEVAL_APPS_KMEANS_H_
#define PIMEVAL_APPS_KMEANS_H_

#include <cstdint>

#include "apps/app_common.h"

namespace pimbench {

struct KmeansParams
{
    uint64_t num_points = 1u << 16;
    unsigned k = 8;
    unsigned iterations = 4;
    uint64_t seed = 14;
};

AppResult runKmeans(const KmeansParams &params);

} // namespace pimbench

#endif // PIMEVAL_APPS_KMEANS_H_
