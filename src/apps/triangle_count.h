/**
 * @file
 * PIMbench: Triangle Count (Table I, Graph).
 *
 * Counts triangles with the in-memory mapping of Wang et al.: for
 * each edge (u, v), AND the packed adjacency bitmaps of u and v,
 * popcount the result, and reduce — each triangle is seen once per
 * edge, so the total divides by three. AND is native on bit-serial
 * PIM (best kernel latency), while popcount/reduction temper the net
 * gain (paper Section VIII).
 */

#ifndef PIMEVAL_APPS_TRIANGLE_COUNT_H_
#define PIMEVAL_APPS_TRIANGLE_COUNT_H_

#include <cstdint>

#include "apps/app_common.h"

namespace pimbench {

struct TriangleCountParams
{
    uint32_t scale = 9;       ///< 2^scale nodes (R-MAT)
    uint32_t avg_degree = 12; ///< average degree before dedup
    uint64_t seed = 7;
};

AppResult runTriangleCount(const TriangleCountParams &params);

} // namespace pimbench

#endif // PIMEVAL_APPS_TRIANGLE_COUNT_H_
