/**
 * @file
 * Apriori: associative support counting on PIM + host candidate
 * generation.
 */

#include "apps/apriori.h"

#include <algorithm>
#include <map>
#include <set>

#include "util/prng.h"

namespace pimbench {

namespace {

using Itemset = std::vector<unsigned>;

/** Host-side candidate generation: join frequent (k-1)-itemsets. */
std::vector<Itemset>
generateCandidates(const std::vector<Itemset> &frequent)
{
    std::vector<Itemset> candidates;
    const std::set<Itemset> frequent_set(frequent.begin(),
                                         frequent.end());
    for (size_t i = 0; i < frequent.size(); ++i) {
        for (size_t j = i + 1; j < frequent.size(); ++j) {
            const Itemset &a = frequent[i];
            const Itemset &b = frequent[j];
            // Joinable when all but the last element match.
            if (!std::equal(a.begin(), a.end() - 1, b.begin()))
                continue;
            Itemset joined = a;
            joined.push_back(b.back());
            // Prune: every (k-1)-subset must be frequent.
            bool ok = true;
            for (size_t drop = 0; drop + 1 < joined.size() && ok;
                 ++drop) {
                Itemset subset;
                for (size_t x = 0; x < joined.size(); ++x)
                    if (x != drop)
                        subset.push_back(joined[x]);
                ok = frequent_set.count(subset) > 0;
            }
            if (ok)
                candidates.push_back(std::move(joined));
        }
    }
    return candidates;
}

} // namespace

AppResult
runApriori(const AprioriParams &params)
{
    AppResult result;
    result.name = "Apriori";
    pimResetStats();

    const uint64_t n = params.num_transactions;
    const unsigned items = params.num_items;
    const auto threshold = static_cast<int64_t>(
        params.min_support * static_cast<double>(n));

    // Synthesize transactions with correlated item groups so that
    // multi-item frequent sets exist: items 3k, 3k+1, 3k+2 co-occur.
    pimeval::Prng rng(params.seed);
    std::vector<std::vector<uint8_t>> columns(
        items, std::vector<uint8_t>(n, 0));
    for (uint64_t t = 0; t < n; ++t) {
        for (unsigned g = 0; g * 3 < items; ++g) {
            const bool group_on = rng.nextDouble() < 0.35;
            for (unsigned k = 0; k < 3 && g * 3 + k < items; ++k) {
                const bool noise = rng.nextDouble() < 0.05;
                columns[g * 3 + k][t] =
                    static_cast<uint8_t>((group_on && !noise) ||
                                         (!group_on && noise));
            }
        }
    }

    // Resident item vectors (bool), all associated for AND.
    std::vector<PimObjId> obj(items, -1);
    obj[0] = pimAlloc(PimAllocEnum::PIM_ALLOC_AUTO, n, 1,
                      PimDataType::PIM_BOOL);
    if (obj[0] < 0)
        return result;
    for (unsigned i = 1; i < items; ++i) {
        obj[i] = pimAllocAssociated(1, obj[0], PimDataType::PIM_BOOL);
        if (obj[i] < 0)
            return result;
    }
    const PimObjId obj_and =
        pimAllocAssociated(1, obj[0], PimDataType::PIM_BOOL);
    if (obj_and < 0)
        return result;
    for (unsigned i = 0; i < items; ++i)
        pimCopyHostToDevice(columns[i].data(), obj[i]);

    // Support of an itemset via AND-chain + reduction.
    auto pimSupport = [&](const Itemset &set) {
        if (set.size() == 1) {
            int64_t count = 0;
            pimRedSum(obj[set[0]], &count);
            return count;
        }
        pimAnd(obj[set[0]], obj[set[1]], obj_and);
        for (size_t i = 2; i < set.size(); ++i)
            pimAnd(obj_and, obj[set[i]], obj_and);
        int64_t count = 0;
        pimRedSum(obj_and, &count);
        return count;
    };

    // Level-wise mining.
    std::map<Itemset, int64_t> mined;
    std::vector<Itemset> frequent;
    for (unsigned i = 0; i < items; ++i) {
        const Itemset single{i};
        const int64_t support = pimSupport(single);
        if (support >= threshold) {
            frequent.push_back(single);
            mined[single] = support;
        }
    }
    for (unsigned level = 2;
         level <= params.max_itemset_size && !frequent.empty();
         ++level) {
        const std::vector<Itemset> candidates =
            generateCandidates(frequent);
        pimAddHostWork(candidates.size() * level * sizeof(unsigned),
                       candidates.size() * level * 4);
        std::vector<Itemset> next;
        for (const auto &candidate : candidates) {
            const int64_t support = pimSupport(candidate);
            if (support >= threshold) {
                next.push_back(candidate);
                mined[candidate] = support;
            }
        }
        frequent = std::move(next);
    }

    for (unsigned i = 0; i < items; ++i)
        pimFree(obj[i]);
    pimFree(obj_and);

    // Reference: direct counting over the raw columns.
    auto refSupport = [&](const Itemset &set) {
        int64_t count = 0;
        for (uint64_t t = 0; t < n; ++t) {
            bool all = true;
            for (unsigned item : set)
                all = all && columns[item][t];
            count += all;
        }
        return count;
    };
    result.verified = !mined.empty();
    for (const auto &[set, support] : mined) {
        if (refSupport(set) != support) {
            result.verified = false;
            break;
        }
    }
    // The planted groups must surface at the deepest mined level.
    bool found_max_level = false;
    for (const auto &[set, support] : mined)
        found_max_level |= (set.size() == params.max_itemset_size);
    result.verified = result.verified && found_max_level;

    result.cpu_work.bytes =
        static_cast<uint64_t>(items) * n * 3; // level passes
    result.cpu_work.ops = static_cast<uint64_t>(items) * n * 3;
    result.gpu_work = result.cpu_work;
    result.features.sequential_access = true;

    finalizeResult(result);
    return result;
}

} // namespace pimbench
