/**
 * @file
 * PIMbench: VGG-13 / VGG-16 / VGG-19 (Table I, Neural Network;
 * PIM + Host).
 *
 * Fixed-point integer VGG inference decomposed into per-layer kernels
 * (paper Section VIII): convolutions run on PIM as scaled-add sweeps
 * over host-prepared shifted planes (padding / strided patch
 * extraction is host work), ReLU and max-pooling run on PIM, dense
 * layers are column-sweep GEMVs, and the float softmax runs on the
 * host (PIM has no FP support). The three variants differ only in
 * convolution depth, exactly as in the paper.
 *
 * Scaled-down substitution (DESIGN.md): 32x32 inputs and channel
 * counts divided by 8 keep the laptop-scale functional simulation
 * tractable while preserving the operation mix and the PIM<->host
 * decomposition.
 */

#ifndef PIMEVAL_APPS_VGG_H_
#define PIMEVAL_APPS_VGG_H_

#include <cstdint>

#include "apps/app_common.h"

namespace pimbench {

enum class VggVariant {
    kVgg13,
    kVgg16,
    kVgg19,
};

struct VggParams
{
    VggVariant variant = VggVariant::kVgg13;
    uint32_t image_size = 32; ///< square input, 3 channels
    /** Channel scale divisor vs. the full VGG configuration. */
    unsigned channel_scale = 8;
    uint64_t seed = 15;
};

AppResult runVgg(const VggParams &params);

/** Convenience wrappers matching the Table I names. */
AppResult runVgg13(uint64_t seed = 15);
AppResult runVgg16(uint64_t seed = 15);
AppResult runVgg19(uint64_t seed = 15);

} // namespace pimbench

#endif // PIMEVAL_APPS_VGG_H_
