/**
 * @file
 * PIMbench: Matrix-Vector Multiplication / GEMV (Table I).
 *
 * y = M * v for an m x n int32 matrix. The PIM mapping stores one
 * object per matrix column and accumulates y += col_j * v[j] with the
 * fused scaled-add, the standard column-sweep formulation used by
 * PIMbench. Multiplication dominates, so Fulcrum leads (Section VIII).
 */

#ifndef PIMEVAL_APPS_GEMV_H_
#define PIMEVAL_APPS_GEMV_H_

#include <cstdint>
#include <vector>

#include "apps/app_common.h"

namespace pimbench {

struct GemvParams
{
    uint64_t rows = 2048; ///< m (output length)
    uint64_t cols = 64;   ///< n (columns = PIM calls)
    uint64_t seed = 3;
};

AppResult runGemv(const GemvParams &params);

/**
 * Pre-allocated device objects for column sweeps: rotating column
 * staging buffers plus the accumulator. The rotation lets the async
 * command pipeline overlap the host-to-device copy of column j+1 with
 * the scaled-add consuming column j (same command stream as a single
 * buffer, so modeled stats are unchanged); reusing one workspace
 * across sweeps (GEMM, VGG dense layers) also avoids per-sweep
 * alloc/free churn.
 *
 * When fusion is enabled at construction the workspace drops to a
 * single staging buffer: captured copies stream host tiles through
 * the fused tape, so back-to-back writes to one buffer are
 * WAW-elided instead of pipelined and extra rotation buffers would
 * only reduce the elision rate.
 */
class GemvWorkspace
{
  public:
    static constexpr uint64_t kColumnBuffers = 4;

    /** Allocate buffers for m-element columns on the active device. */
    explicit GemvWorkspace(uint64_t m);
    ~GemvWorkspace();
    GemvWorkspace(const GemvWorkspace &) = delete;
    GemvWorkspace &operator=(const GemvWorkspace &) = delete;

    bool ok() const { return ok_; }
    PimObjId column(uint64_t j) const
    {
        return cols_[j % num_cols_];
    }
    PimObjId acc() const { return acc_; }

  private:
    PimObjId cols_[kColumnBuffers];
    uint64_t num_cols_ = kColumnBuffers;
    PimObjId acc_ = -1;
    bool ok_ = false;
};

/**
 * Reusable column-sweep GEMV on the active device; operates on
 * column-major matrix data and returns y. Exposed for GEMM and the
 * VGG dense layers.
 * @param matrix column-major m*n values.
 */
std::vector<int> pimGemvColumnSweep(const std::vector<int> &matrix,
                                    const std::vector<int> &v,
                                    uint64_t m, uint64_t n);

/** Column sweep into a caller-owned workspace (m must match). */
std::vector<int> pimGemvColumnSweep(GemvWorkspace &ws,
                                    const std::vector<int> &matrix,
                                    const std::vector<int> &v,
                                    uint64_t m, uint64_t n);

} // namespace pimbench

#endif // PIMEVAL_APPS_GEMV_H_
