/**
 * @file
 * PIMbench extension: Principal Component Analysis (from Phoenix;
 * listed among the paper's in-progress kernel additions).
 *
 * PIM computes the feature means and the covariance matrix — per
 * feature pair, one element-wise multiply plus a reduction sum — and
 * the tiny d x d eigendecomposition runs on the host (float Jacobi,
 * which PIM's integer ops cannot express). Reduction/mul heavy, like
 * linear regression but with a quadratic number of reductions.
 */

#ifndef PIMEVAL_APPS_PCA_APP_H_
#define PIMEVAL_APPS_PCA_APP_H_

#include <cstdint>

#include "apps/app_common.h"

namespace pimbench {

struct PcaParams
{
    uint64_t num_samples = 1u << 16;
    unsigned num_features = 4;
    uint64_t seed = 18;
};

AppResult runPca(const PcaParams &params);

} // namespace pimbench

#endif // PIMEVAL_APPS_PCA_APP_H_
