/**
 * @file
 * PIMbench: Filter-By-Key (Table I, Database; PIM + Host).
 *
 * Scans a column for records matching a predicate (value < key tuned
 * for ~1% selectivity). PIM produces the match bitmap at high speed;
 * the host must then fetch the bitmap and gather the selected
 * records — the gather is the bottleneck (99% of PIM-side runtime in
 * the paper).
 */

#ifndef PIMEVAL_APPS_FILTER_BY_KEY_H_
#define PIMEVAL_APPS_FILTER_BY_KEY_H_

#include <cstdint>

#include "apps/app_common.h"

namespace pimbench {

struct FilterByKeyParams
{
    uint64_t num_records = 1u << 20;
    /** Selectivity target (default 1%, as in the paper). */
    double selectivity = 0.01;
    uint64_t seed = 8;
};

AppResult runFilterByKey(const FilterByKeyParams &params);

} // namespace pimbench

#endif // PIMEVAL_APPS_FILTER_BY_KEY_H_
