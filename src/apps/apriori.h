/**
 * @file
 * PIMbench extension: Apriori frequent-itemset mining (from DRAM-CAM,
 * the associative-processing work DRAM-AP builds on; listed in the
 * paper's in-progress kernel additions).
 *
 * The transaction database is a Boolean matrix held as one bool
 * vector per item (bit t set when transaction t contains the item).
 * Support counting is pure associative processing: itemset support =
 * reduction sum of the AND of its item vectors. The host generates
 * candidate itemsets level by level (tiny combinatorial work).
 */

#ifndef PIMEVAL_APPS_APRIORI_H_
#define PIMEVAL_APPS_APRIORI_H_

#include <cstdint>

#include "apps/app_common.h"

namespace pimbench {

struct AprioriParams
{
    uint64_t num_transactions = 1u << 14;
    unsigned num_items = 24;
    /** Minimum support as a fraction of transactions. */
    double min_support = 0.2;
    /** Mine itemsets up to this size. */
    unsigned max_itemset_size = 3;
    uint64_t seed = 19;
};

AppResult runApriori(const AprioriParams &params);

} // namespace pimbench

#endif // PIMEVAL_APPS_APRIORI_H_
