/**
 * @file
 * Image downsampling: 2x2 box filter via adds + shift.
 */

#include "apps/image_downsample.h"

#include <array>

#include "util/bmp_image.h"

namespace pimbench {

AppResult
runImageDownsample(const ImageDownsampleParams &params)
{
    AppResult result;
    result.name = "Image Downsampling";
    pimResetStats();

    const pimeval::BmpImage img = pimeval::BmpImage::synthetic(
        params.width, params.height, params.seed);
    const uint32_t ow = params.width / 2;
    const uint32_t oh = params.height / 2;
    const uint64_t out_n = static_cast<uint64_t>(ow) * oh;

    const std::array<const std::vector<uint8_t> *, 3> planes = {
        &img.red(), &img.green(), &img.blue()};

    // Strided extraction of the four corners of each 2x2 block is
    // data staging done during the H2D copy (the layout step every
    // PIM architecture needs, Section III).
    const PimObjId obj_p00 =
        pimAlloc(PimAllocEnum::PIM_ALLOC_AUTO, out_n, 16,
                 PimDataType::PIM_INT16);
    const PimObjId obj_p01 =
        pimAllocAssociated(16, obj_p00, PimDataType::PIM_INT16);
    const PimObjId obj_p10 =
        pimAllocAssociated(16, obj_p00, PimDataType::PIM_INT16);
    const PimObjId obj_p11 =
        pimAllocAssociated(16, obj_p00, PimDataType::PIM_INT16);
    if (obj_p00 < 0 || obj_p01 < 0 || obj_p10 < 0 || obj_p11 < 0)
        return result;

    std::array<std::vector<int16_t>, 3> out_planes;
    std::array<std::vector<int16_t>, 4> corners;
    for (auto &c : corners)
        c.resize(out_n);

    for (int ch = 0; ch < 3; ++ch) {
        const auto &plane = *planes[ch];
        for (uint32_t y = 0; y < oh; ++y) {
            for (uint32_t x = 0; x < ow; ++x) {
                const uint64_t o = static_cast<uint64_t>(y) * ow + x;
                const uint64_t base =
                    static_cast<uint64_t>(2 * y) * params.width + 2 * x;
                corners[0][o] = plane[base];
                corners[1][o] = plane[base + 1];
                corners[2][o] = plane[base + params.width];
                corners[3][o] = plane[base + params.width + 1];
            }
        }
        pimCopyHostToDevice(corners[0].data(), obj_p00);
        pimCopyHostToDevice(corners[1].data(), obj_p01);
        pimCopyHostToDevice(corners[2].data(), obj_p10);
        pimCopyHostToDevice(corners[3].data(), obj_p11);

        pimAdd(obj_p00, obj_p01, obj_p00);
        pimAdd(obj_p10, obj_p11, obj_p10);
        pimAdd(obj_p00, obj_p10, obj_p00);
        pimShiftBitsRight(obj_p00, obj_p00, 2);

        out_planes[ch].resize(out_n);
        pimCopyDeviceToHost(obj_p00, out_planes[ch].data());
    }

    pimFree(obj_p00);
    pimFree(obj_p01);
    pimFree(obj_p10);
    pimFree(obj_p11);

    // Verify against the direct box filter.
    result.verified = true;
    for (int ch = 0; ch < 3 && result.verified; ++ch) {
        const auto &plane = *planes[ch];
        for (uint32_t y = 0; y < oh && result.verified; ++y) {
            for (uint32_t x = 0; x < ow; ++x) {
                const uint64_t base =
                    static_cast<uint64_t>(2 * y) * params.width + 2 * x;
                const int sum = plane[base] + plane[base + 1] +
                    plane[base + params.width] +
                    plane[base + params.width + 1];
                if (out_planes[ch][y * ow + x] != sum / 4) {
                    result.verified = false;
                    break;
                }
            }
        }
    }

    const uint64_t in_n =
        static_cast<uint64_t>(params.width) * params.height;
    result.cpu_work.bytes = 3 * (in_n + out_n);
    result.cpu_work.ops = 3 * out_n * 4;
    result.gpu_work = result.cpu_work;
    result.features.sequential_access = true;

    finalizeResult(result);
    return result;
}

} // namespace pimbench
