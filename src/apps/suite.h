/**
 * @file
 * Suite runner: executes all PIMbench applications (Table I) on one
 * PIM target and collects their results — the engine behind the
 * figure-regeneration benches.
 */

#ifndef PIMEVAL_APPS_SUITE_H_
#define PIMEVAL_APPS_SUITE_H_

#include <vector>

#include "apps/app_common.h"

namespace pimbench {

/**
 * Input-size preset. The paper's Table I sizes need a 256 GB server
 * and multi-day runs; these presets keep the same workloads at
 * laptop scale (the models are analytic in problem size).
 */
enum class SuiteScale {
    kTiny,  ///< seconds-scale smoke runs (tests)
    kSmall, ///< default bench scale
    /**
     * Paper-figure mode: runs the kSmall workloads functionally but
     * costs every command/transfer/host phase at the paper's Table I
     * input sizes via the modeling scale (pimSetModelingScale). This
     * is how the speedup/energy figures reproduce the paper's shapes
     * on a laptop; see DESIGN.md and EXPERIMENTS.md.
     */
    kPaper,
};

/**
 * How a benchmark's paper-scale input maps onto the kSmall run.
 *
 * The paper's inputs are larger along two independent axes:
 *  - elem_ratio: each PIM call touches proportionally more elements
 *    (applied as the device modeling scale, which re-costs every
 *    call/transfer/host phase);
 *  - call_ratio: the paper issues proportionally more calls of the
 *    same shape (e.g., more matrix columns, more graph edges), which
 *    multiplies the aggregate modeled statistics after the run.
 */
struct PaperScale
{
    double call_ratio = 1.0;
    double elem_ratio = 1.0;

    double total() const { return call_ratio * elem_ratio; }
};

/** Paper-to-kSmall scale decomposition for a Table I benchmark. */
PaperScale paperScale(const std::string &name);

/**
 * Run the full Table I suite on the active device.
 * @param scale input-size preset.
 * @param include_extensions also run prefix-sum / string-match.
 */
std::vector<AppResult> runSuite(SuiteScale scale,
                                bool include_extensions = false);

/**
 * Run one benchmark by Table I name on the active device; returns a
 * default-constructed result for unknown names.
 */
AppResult runBenchmarkByName(const std::string &name, SuiteScale scale);

} // namespace pimbench

#endif // PIMEVAL_APPS_SUITE_H_
