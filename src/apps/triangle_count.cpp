/**
 * @file
 * Triangle counting via adjacency-bitmap AND + popcount + reduction.
 */

#include "apps/triangle_count.h"

#include "util/graph.h"

namespace pimbench {

AppResult
runTriangleCount(const TriangleCountParams &params)
{
    AppResult result;
    result.name = "Triangle Count";
    pimResetStats();

    const pimeval::Graph graph =
        pimeval::Graph::rmat(params.scale, params.avg_degree,
                             params.seed);
    const uint32_t n = graph.numNodes();

    // Resident adjacency bitmaps as 1-bit elements, all associated so
    // every pair ANDs element-wise in place. One bool element per
    // possible neighbor keeps AND native and lets the reduction use
    // the row-wide popcount path (the DRAM-AP strength the paper's
    // mapping relies on).
    std::vector<PimObjId> adj(n, -1);
    adj[0] = pimAlloc(PimAllocEnum::PIM_ALLOC_AUTO, n, 1,
                      PimDataType::PIM_BOOL);
    if (adj[0] < 0)
        return result;
    for (uint32_t v = 1; v < n; ++v) {
        adj[v] = pimAllocAssociated(1, adj[0], PimDataType::PIM_BOOL);
        if (adj[v] < 0)
            return result;
    }
    const PimObjId obj_and =
        pimAllocAssociated(1, adj[0], PimDataType::PIM_BOOL);
    if (obj_and < 0)
        return result;

    std::vector<uint8_t> row_bits(n);
    for (uint32_t v = 0; v < n; ++v) {
        const std::vector<uint64_t> bitmap = graph.adjacencyBitmap(v);
        for (uint32_t u = 0; u < n; ++u)
            row_bits[u] = (bitmap[u / 64] >> (u % 64)) & 1;
        pimCopyHostToDevice(row_bits.data(), adj[v]);
    }

    // Edge sweep: AND + reduction per edge (u < v).
    int64_t triple_count = 0;
    const auto &row_ptr = graph.rowPtr();
    const auto &col_idx = graph.colIdx();
    for (uint32_t u = 0; u < n; ++u) {
        for (uint64_t e = row_ptr[u]; e < row_ptr[u + 1]; ++e) {
            const uint32_t v = col_idx[e];
            if (v <= u)
                continue;
            pimAnd(adj[u], adj[v], obj_and);
            int64_t common = 0;
            pimRedSum(obj_and, &common);
            triple_count += common;
        }
    }

    for (uint32_t v = 0; v < n; ++v)
        pimFree(adj[v]);
    pimFree(obj_and);

    const uint64_t pim_triangles =
        static_cast<uint64_t>(triple_count) / 3;
    result.verified =
        (pim_triangles == graph.countTrianglesReference());

    // CPU baseline (GAPBS-style merge intersections): roughly
    // sum-of-degrees work per edge; approximate bytes/ops from the
    // edge count and average degree.
    const uint64_t edges = graph.numEdges();
    const uint64_t avg_deg = edges * 2 / std::max<uint32_t>(1, n);
    result.cpu_work.bytes = edges * avg_deg * sizeof(uint32_t);
    result.cpu_work.ops = edges * avg_deg;
    result.cpu_work.serial_fraction = 0.1;
    result.gpu_work = result.cpu_work;
    result.gpu_work.serial_fraction = 0.0; // Gunrock parallelizes fully
    result.features.sequential_access = true;
    result.features.random_access = true;

    finalizeResult(result);
    return result;
}

} // namespace pimbench
