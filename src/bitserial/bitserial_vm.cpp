/**
 * @file
 * BitSerialVm implementation.
 */

#include "bitserial/bitserial_vm.h"

#include <cassert>
#include <cstring>

namespace pimeval {

BitSerialVm::BitSerialVm(uint32_t num_rows, uint32_t num_cols)
    : num_rows_(num_rows), num_cols_(num_cols),
      words_per_row_((num_cols + 63) / 64),
      memory_(num_rows, Row(words_per_row_, 0)),
      regs_(kNumBitRegs, Row(words_per_row_, 0))
{
}

void
BitSerialVm::execute(const MicroOp &op)
{
    ++ops_executed_;
    switch (op.kind) {
      case MicroOpKind::kReadRow:
        assert(op.row < num_rows_);
        regRow(BitReg::SA) = memory_[op.row];
        break;
      case MicroOpKind::kWriteRow:
        assert(op.row < num_rows_);
        memory_[op.row] = regRow(BitReg::SA);
        break;
      case MicroOpKind::kMov:
        regRow(op.dst) = regRow(op.src_a);
        break;
      case MicroOpKind::kSet: {
        const uint64_t fill = op.imm ? ~0ull : 0ull;
        std::fill(regRow(op.dst).begin(), regRow(op.dst).end(), fill);
        break;
      }
      case MicroOpKind::kAnd: {
        const Row &a = regRow(op.src_a);
        const Row &b = regRow(op.src_b);
        Row &d = regRow(op.dst);
        for (uint32_t w = 0; w < words_per_row_; ++w)
            d[w] = a[w] & b[w];
        break;
      }
      case MicroOpKind::kXnor: {
        const Row &a = regRow(op.src_a);
        const Row &b = regRow(op.src_b);
        Row &d = regRow(op.dst);
        for (uint32_t w = 0; w < words_per_row_; ++w)
            d[w] = ~(a[w] ^ b[w]);
        break;
      }
      case MicroOpKind::kSel: {
        const Row &c = regRow(op.cond);
        const Row &a = regRow(op.src_a);
        const Row &b = regRow(op.src_b);
        Row &d = regRow(op.dst);
        for (uint32_t w = 0; w < words_per_row_; ++w)
            d[w] = (c[w] & a[w]) | (~c[w] & b[w]);
        break;
      }
    }
}

void
BitSerialVm::run(const MicroProgram &program)
{
    for (const auto &op : program.ops)
        execute(op);
}

bool
BitSerialVm::getBit(uint32_t row, uint32_t col) const
{
    assert(row < num_rows_ && col < num_cols_);
    return (memory_[row][col / 64] >> (col % 64)) & 1;
}

void
BitSerialVm::setBit(uint32_t row, uint32_t col, bool value)
{
    assert(row < num_rows_ && col < num_cols_);
    const uint64_t mask = 1ull << (col % 64);
    if (value)
        memory_[row][col / 64] |= mask;
    else
        memory_[row][col / 64] &= ~mask;
}

void
BitSerialVm::writeVertical(uint32_t col, uint32_t base_row, unsigned n,
                           uint64_t value)
{
    for (unsigned i = 0; i < n; ++i)
        setBit(base_row + i, col, (value >> i) & 1);
}

uint64_t
BitSerialVm::readVertical(uint32_t col, uint32_t base_row, unsigned n) const
{
    uint64_t value = 0;
    for (unsigned i = 0; i < n; ++i) {
        if (getBit(base_row + i, col))
            value |= (1ull << i);
    }
    return value;
}

} // namespace pimeval
