/**
 * @file
 * BitSerialVm implementation.
 */

#include "bitserial/bitserial_vm.h"

#include <algorithm>
#include <cassert>
#include <cstring>

#include "core/pim_metrics.h"

namespace pimeval {

namespace {

/**
 * In-place 64x64 bit-matrix transpose (recursive block swap with
 * delta-swaps): after the call, bit c of m[r] equals bit r of the
 * original m[c]. This turns 64 vertically laid-out elements into 64
 * row-wide bit-planes (and back), the core of the bulk vertical I/O.
 */
void
transposeBitMatrix64(uint64_t m[64])
{
    // Delta-swap ladder with the shifts oriented for LSB-first bit
    // indexing (the textbook variant assumes MSB-first and would
    // transpose about the anti-diagonal instead).
    uint64_t mask = 0x00000000FFFFFFFFull;
    for (unsigned j = 32; j != 0; j >>= 1, mask ^= mask << j) {
        for (unsigned k = 0; k < 64; k = ((k | j) + 1) & ~j) {
            const uint64_t t = ((m[k] >> j) ^ m[k | j]) & mask;
            m[k] ^= t << j;
            m[k | j] ^= t;
        }
    }
}

/**
 * Insert the bits of @p lane selected by @p colmask into a packed row
 * at bit offset @p col (possibly spanning a word boundary).
 */
void
insertLane(std::vector<uint64_t> &row, uint32_t col, uint64_t lane,
           uint64_t colmask)
{
    const size_t w = col / 64;
    const unsigned off = col % 64;
    lane &= colmask;
    row[w] = (row[w] & ~(colmask << off)) | (lane << off);
    if (off != 0) {
        const uint64_t hi_mask = colmask >> (64 - off);
        if (hi_mask != 0)
            row[w + 1] =
                (row[w + 1] & ~hi_mask) | (lane >> (64 - off));
    }
}

/** Extract the @p colmask bits of a packed row at bit offset @p col. */
uint64_t
extractLane(const std::vector<uint64_t> &row, uint32_t col,
            uint64_t colmask)
{
    const size_t w = col / 64;
    const unsigned off = col % 64;
    uint64_t v = row[w] >> off;
    if (off != 0 && w + 1 < row.size())
        v |= row[w + 1] << (64 - off);
    return v & colmask;
}

} // namespace

BitSerialVm::BitSerialVm(uint32_t num_rows, uint32_t num_cols)
    : num_rows_(num_rows), num_cols_(num_cols),
      words_per_row_((num_cols + 63) / 64),
      memory_(num_rows, Row(words_per_row_, 0)),
      regs_(kNumBitRegs, Row(words_per_row_, 0))
{
}

void
BitSerialVm::execute(const MicroOp &op)
{
    ++ops_executed_;
    switch (op.kind) {
      case MicroOpKind::kReadRow:
        assert(op.row < num_rows_);
        regRow(BitReg::SA) = memory_[op.row];
        break;
      case MicroOpKind::kWriteRow:
        assert(op.row < num_rows_);
        memory_[op.row] = regRow(BitReg::SA);
        break;
      case MicroOpKind::kMov:
        regRow(op.dst) = regRow(op.src_a);
        break;
      case MicroOpKind::kSet: {
        const uint64_t fill = op.imm ? ~0ull : 0ull;
        std::fill(regRow(op.dst).begin(), regRow(op.dst).end(), fill);
        break;
      }
      case MicroOpKind::kAnd: {
        const Row &a = regRow(op.src_a);
        const Row &b = regRow(op.src_b);
        Row &d = regRow(op.dst);
        for (uint32_t w = 0; w < words_per_row_; ++w)
            d[w] = a[w] & b[w];
        break;
      }
      case MicroOpKind::kXnor: {
        const Row &a = regRow(op.src_a);
        const Row &b = regRow(op.src_b);
        Row &d = regRow(op.dst);
        for (uint32_t w = 0; w < words_per_row_; ++w)
            d[w] = ~(a[w] ^ b[w]);
        break;
      }
      case MicroOpKind::kSel: {
        const Row &c = regRow(op.cond);
        const Row &a = regRow(op.src_a);
        const Row &b = regRow(op.src_b);
        Row &d = regRow(op.dst);
        for (uint32_t w = 0; w < words_per_row_; ++w)
            d[w] = (c[w] & a[w]) | (~c[w] & b[w]);
        break;
      }
    }
}

void
BitSerialVm::run(const MicroProgram &program)
{
    // Batched per program, not per micro-op.
    PIM_METRIC_COUNT("substrate.bitserial.microops",
                     program.ops.size());
    for (const auto &op : program.ops)
        execute(op);
}

bool
BitSerialVm::getBit(uint32_t row, uint32_t col) const
{
    assert(row < num_rows_ && col < num_cols_);
    return (memory_[row][col / 64] >> (col % 64)) & 1;
}

void
BitSerialVm::setBit(uint32_t row, uint32_t col, bool value)
{
    assert(row < num_rows_ && col < num_cols_);
    const uint64_t mask = 1ull << (col % 64);
    if (value)
        memory_[row][col / 64] |= mask;
    else
        memory_[row][col / 64] &= ~mask;
}

void
BitSerialVm::writeVertical(uint32_t col, uint32_t base_row, unsigned n,
                           uint64_t value)
{
    for (unsigned i = 0; i < n; ++i)
        setBit(base_row + i, col, (value >> i) & 1);
}

uint64_t
BitSerialVm::readVertical(uint32_t col, uint32_t base_row, unsigned n) const
{
    uint64_t value = 0;
    for (unsigned i = 0; i < n; ++i) {
        if (getBit(base_row + i, col))
            value |= (1ull << i);
    }
    return value;
}

void
BitSerialVm::writeVerticalBulk(uint32_t col_begin, uint32_t base_row,
                               unsigned n, const uint64_t *values,
                               uint32_t count)
{
    assert(n >= 1 && n <= 64);
    assert(base_row + n <= num_rows_);
    assert(col_begin + count <= num_cols_);
    const uint64_t vmask = (n >= 64) ? ~0ull : ((1ull << n) - 1);
    uint64_t blk[64];
    for (uint32_t done = 0; done < count; done += 64) {
        const uint32_t lanes = std::min<uint32_t>(64, count - done);
        const uint64_t colmask =
            (lanes >= 64) ? ~0ull : ((1ull << lanes) - 1);
        for (uint32_t j = 0; j < lanes; ++j)
            blk[j] = values[done + j] & vmask;
        for (uint32_t j = lanes; j < 64; ++j)
            blk[j] = 0;
        transposeBitMatrix64(blk);
        // blk[i] now holds bit i of every element; scatter each bit-
        // plane into its memory row, leaving other columns untouched.
        for (unsigned i = 0; i < n; ++i)
            insertLane(memory_[base_row + i], col_begin + done,
                       blk[i], colmask);
    }
}

void
BitSerialVm::readVerticalBulk(uint32_t col_begin, uint32_t base_row,
                              unsigned n, uint64_t *values,
                              uint32_t count) const
{
    assert(n >= 1 && n <= 64);
    assert(base_row + n <= num_rows_);
    assert(col_begin + count <= num_cols_);
    uint64_t blk[64];
    for (uint32_t done = 0; done < count; done += 64) {
        const uint32_t lanes = std::min<uint32_t>(64, count - done);
        const uint64_t colmask =
            (lanes >= 64) ? ~0ull : ((1ull << lanes) - 1);
        for (unsigned i = 0; i < n; ++i)
            blk[i] = extractLane(memory_[base_row + i],
                                 col_begin + done, colmask);
        for (unsigned i = n; i < 64; ++i)
            blk[i] = 0;
        transposeBitMatrix64(blk);
        for (uint32_t j = 0; j < lanes; ++j)
            values[done + j] = blk[j];
    }
}

uint64_t
BitSerialVm::rowPopcount(uint32_t row, uint32_t count) const
{
    assert(row < num_rows_);
    assert(count <= num_cols_);
    const Row &bits = memory_[row];
    uint64_t total = 0;
    const uint32_t full = count / 64;
    for (uint32_t w = 0; w < full; ++w)
        total += static_cast<uint64_t>(__builtin_popcountll(bits[w]));
    const uint32_t rem = count % 64;
    if (rem)
        total += static_cast<uint64_t>(
            __builtin_popcountll(bits[full] & ((1ull << rem) - 1)));
    return total;
}

} // namespace pimeval
