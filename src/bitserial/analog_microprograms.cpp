/**
 * @file
 * Analog microprogram generator implementations.
 *
 * Scratch-row conventions (within AnalogRowGroup):
 *   S0 = kScratch + 0 : generic temporary
 *   S1 = kScratch + 1 : running carry / borrow / accumulator
 *   S2 = kScratch + 2 : saved carry-out
 *   S3 = kScratch + 3 : complement temporaries
 *   S4 = kScratch + 4 : second operand staging (sub / mul masking)
 *   S5 = kScratch + 5 : condition bits (mul multiplier bit)
 */

#include "bitserial/analog_microprograms.h"

#include <cassert>

namespace pimeval {

namespace {

using G = AnalogRowGroup;

constexpr uint32_t kS0 = G::kScratch + 0;
constexpr uint32_t kS1 = G::kScratch + 1;
constexpr uint32_t kS2 = G::kScratch + 2;
constexpr uint32_t kS3 = G::kScratch + 3;
constexpr uint32_t kS4 = G::kScratch + 4;
constexpr uint32_t kS5 = G::kScratch + 5;

/** dest = MAJ(x, y, const_row) with operands staged into T rows. */
void
emitMaj(AnalogProgram &p, uint32_t x, uint32_t y, uint32_t const_row,
        uint32_t dest)
{
    p.append(AnalogOp::aap(x, G::kT0));
    p.append(AnalogOp::aap(y, G::kT1));
    p.append(AnalogOp::aap(const_row, G::kT2));
    p.append(AnalogOp::tra(G::kT0, G::kT1, G::kT2));
    p.append(AnalogOp::aap(G::kT0, dest));
}

/** dest = x XOR y = AND(~AND(x,y), OR(x,y)). */
void
emitXor(AnalogProgram &p, uint32_t x, uint32_t y, uint32_t dest)
{
    // ~AND(x,y) -> S3.
    p.append(AnalogOp::aap(x, G::kT0));
    p.append(AnalogOp::aap(y, G::kT1));
    p.append(AnalogOp::aap(G::kC0, G::kT2));
    p.append(AnalogOp::tra(G::kT0, G::kT1, G::kT2));
    p.append(AnalogOp::aapNot(G::kT0, kS3));
    // OR(x,y) in T0.
    p.append(AnalogOp::aap(x, G::kT0));
    p.append(AnalogOp::aap(y, G::kT1));
    p.append(AnalogOp::aap(G::kC1, G::kT2));
    p.append(AnalogOp::tra(G::kT0, G::kT1, G::kT2));
    // AND(T0, S3) -> dest.
    p.append(AnalogOp::aap(kS3, G::kT1));
    p.append(AnalogOp::aap(G::kC0, G::kT2));
    p.append(AnalogOp::tra(G::kT0, G::kT1, G::kT2));
    p.append(AnalogOp::aap(G::kT0, dest));
}

} // namespace

void
AnalogMicroPrograms::emitFullAdder(AnalogProgram &p, uint32_t a_row,
                                   uint32_t b_row, uint32_t dest_row)
{
    // carry_out = MAJ(a, b, carry) with carry in S1.
    p.append(AnalogOp::aap(a_row, G::kT0));
    p.append(AnalogOp::aap(b_row, G::kT1));
    p.append(AnalogOp::aap(kS1, G::kT2));
    p.append(AnalogOp::tra(G::kT0, G::kT1, G::kT2));
    p.append(AnalogOp::aap(G::kT0, kS2)); // save carry_out

    // inner = MAJ(a, b, ~carry_in).
    p.append(AnalogOp::aapNot(kS1, kS3));
    p.append(AnalogOp::aap(a_row, G::kT0));
    p.append(AnalogOp::aap(b_row, G::kT1));
    p.append(AnalogOp::aap(kS3, G::kT2));
    p.append(AnalogOp::tra(G::kT0, G::kT1, G::kT2));

    // sum = MAJ(~carry_out, inner, carry_in).
    p.append(AnalogOp::aapNot(kS2, G::kT1));
    p.append(AnalogOp::aap(kS1, G::kT2));
    p.append(AnalogOp::tra(G::kT0, G::kT1, G::kT2));
    p.append(AnalogOp::aap(G::kT0, dest_row));

    // carry <- carry_out.
    p.append(AnalogOp::aap(kS2, kS1));
}

AnalogProgram
AnalogMicroPrograms::add(uint32_t a, uint32_t b, uint32_t dest,
                         unsigned n)
{
    assert(a >= G::kNumRows && b >= G::kNumRows && dest >= G::kNumRows);
    AnalogProgram p;
    p.append(AnalogOp::aap(G::kC0, kS1)); // carry = 0
    for (unsigned i = 0; i < n; ++i)
        emitFullAdder(p, a + i, b + i, dest + i);
    return p;
}

AnalogProgram
AnalogMicroPrograms::sub(uint32_t a, uint32_t b, uint32_t dest,
                         unsigned n)
{
    // a - b = a + ~b + 1.
    AnalogProgram p;
    p.append(AnalogOp::aap(G::kC1, kS1)); // carry = 1
    for (unsigned i = 0; i < n; ++i) {
        p.append(AnalogOp::aapNot(b + i, kS4));
        emitFullAdder(p, a + i, kS4, dest + i);
    }
    return p;
}

AnalogProgram
AnalogMicroPrograms::mul(uint32_t a, uint32_t b, uint32_t dest,
                         unsigned n)
{
    assert(dest + n <= a || a + n <= dest);
    assert(dest + n <= b || b + n <= dest);
    AnalogProgram p;
    // Clear accumulator.
    for (unsigned i = 0; i < n; ++i)
        p.append(AnalogOp::aap(G::kC0, dest + i));
    // Shift-add with the multiplier bit masking the addend:
    // addend_i = a_i AND b_j.
    for (unsigned j = 0; j < n; ++j) {
        p.append(AnalogOp::aap(b + j, kS5)); // condition row
        p.append(AnalogOp::aap(G::kC0, kS1)); // carry = 0
        for (unsigned i = 0; i + j < n; ++i) {
            // masked = a_i & cond -> S4.
            p.append(AnalogOp::aap(a + i, G::kT0));
            p.append(AnalogOp::aap(kS5, G::kT1));
            p.append(AnalogOp::aap(G::kC0, G::kT2));
            p.append(AnalogOp::tra(G::kT0, G::kT1, G::kT2));
            p.append(AnalogOp::aap(G::kT0, kS4));
            emitFullAdder(p, kS4, dest + i + j, dest + i + j);
        }
    }
    return p;
}

AnalogProgram
AnalogMicroPrograms::andOp(uint32_t a, uint32_t b, uint32_t dest,
                           unsigned n)
{
    AnalogProgram p;
    for (unsigned i = 0; i < n; ++i)
        emitMaj(p, a + i, b + i, G::kC0, dest + i);
    return p;
}

AnalogProgram
AnalogMicroPrograms::orOp(uint32_t a, uint32_t b, uint32_t dest,
                          unsigned n)
{
    AnalogProgram p;
    for (unsigned i = 0; i < n; ++i)
        emitMaj(p, a + i, b + i, G::kC1, dest + i);
    return p;
}

AnalogProgram
AnalogMicroPrograms::xorOp(uint32_t a, uint32_t b, uint32_t dest,
                           unsigned n)
{
    AnalogProgram p;
    for (unsigned i = 0; i < n; ++i)
        emitXor(p, a + i, b + i, dest + i);
    return p;
}

AnalogProgram
AnalogMicroPrograms::xnorOp(uint32_t a, uint32_t b, uint32_t dest,
                            unsigned n)
{
    AnalogProgram p;
    for (unsigned i = 0; i < n; ++i) {
        emitXor(p, a + i, b + i, kS0);
        p.append(AnalogOp::aapNot(kS0, dest + i));
    }
    return p;
}

AnalogProgram
AnalogMicroPrograms::notOp(uint32_t a, uint32_t dest, unsigned n)
{
    AnalogProgram p;
    for (unsigned i = 0; i < n; ++i)
        p.append(AnalogOp::aapNot(a + i, dest + i));
    return p;
}

AnalogProgram
AnalogMicroPrograms::lessThan(uint32_t a, uint32_t b, uint32_t dest,
                              unsigned n, bool is_signed)
{
    // borrow' = MAJ(~a, b, borrow); final borrow = (a < b). Signed
    // compare flips both MSB inputs (bias trick), i.e., uses
    // MAJ(a, ~b, borrow) for the last bit.
    AnalogProgram p;
    p.append(AnalogOp::aap(G::kC0, kS1)); // borrow = 0
    for (unsigned i = 0; i < n; ++i) {
        const bool flip = is_signed && i == n - 1;
        if (!flip) {
            p.append(AnalogOp::aapNot(a + i, G::kT0));
            p.append(AnalogOp::aap(b + i, G::kT1));
        } else {
            p.append(AnalogOp::aap(a + i, G::kT0));
            p.append(AnalogOp::aapNot(b + i, G::kT1));
        }
        p.append(AnalogOp::aap(kS1, G::kT2));
        p.append(AnalogOp::tra(G::kT0, G::kT1, G::kT2));
        p.append(AnalogOp::aap(G::kT0, kS1));
    }
    p.append(AnalogOp::aap(kS1, dest));
    return p;
}

AnalogProgram
AnalogMicroPrograms::equal(uint32_t a, uint32_t b, uint32_t dest,
                           unsigned n)
{
    // diff = OR over XOR bits; dest = ~diff.
    AnalogProgram p;
    p.append(AnalogOp::aap(G::kC0, kS1)); // diff accumulator
    for (unsigned i = 0; i < n; ++i) {
        emitXor(p, a + i, b + i, kS0);
        emitMaj(p, kS0, kS1, G::kC1, kS1); // diff |= xor
    }
    p.append(AnalogOp::aapNot(kS1, dest));
    return p;
}

AnalogProgram
AnalogMicroPrograms::copy(uint32_t a, uint32_t dest, unsigned n)
{
    AnalogProgram p;
    for (unsigned i = 0; i < n; ++i)
        p.append(AnalogOp::aap(a + i, dest + i));
    return p;
}

AnalogProgram
AnalogMicroPrograms::broadcast(uint32_t dest, unsigned n,
                               uint64_t value)
{
    AnalogProgram p;
    for (unsigned i = 0; i < n; ++i) {
        const uint32_t const_row =
            ((value >> i) & 1) ? G::kC1 : G::kC0;
        p.append(AnalogOp::aap(const_row, dest + i));
    }
    return p;
}

AnalogProgram
AnalogMicroPrograms::shiftLeft(uint32_t a, uint32_t dest, unsigned n,
                               unsigned amount)
{
    AnalogProgram p;
    if (amount >= n) {
        for (unsigned i = 0; i < n; ++i)
            p.append(AnalogOp::aap(G::kC0, dest + i));
        return p;
    }
    for (unsigned i = n; i-- > amount;)
        p.append(AnalogOp::aap(a + i - amount, dest + i));
    for (unsigned i = 0; i < amount; ++i)
        p.append(AnalogOp::aap(G::kC0, dest + i));
    return p;
}

AnalogProgram
AnalogMicroPrograms::shiftRight(uint32_t a, uint32_t dest, unsigned n,
                                unsigned amount, bool arithmetic)
{
    AnalogProgram p;
    if (amount >= n)
        amount = arithmetic ? n - 1 : n;
    // Save the sign first so dest may alias a.
    if (arithmetic)
        p.append(AnalogOp::aap(a + n - 1, kS0));
    for (unsigned i = 0; i + amount < n; ++i)
        p.append(AnalogOp::aap(a + i + amount, dest + i));
    for (unsigned i = n - amount; i < n; ++i) {
        if (arithmetic)
            p.append(AnalogOp::aap(kS0, dest + i));
        else
            p.append(AnalogOp::aap(G::kC0, dest + i));
    }
    return p;
}

} // namespace pimeval
