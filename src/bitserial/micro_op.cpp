/**
 * @file
 * Micro-op constructors, profiling, and disassembly.
 */

#include "bitserial/micro_op.h"

#include <sstream>

namespace pimeval {

namespace {

const char *
regName(BitReg r)
{
    switch (r) {
      case BitReg::SA:
        return "SA";
      case BitReg::R1:
        return "R1";
      case BitReg::R2:
        return "R2";
      case BitReg::R3:
        return "R3";
      case BitReg::R4:
        return "R4";
    }
    return "??";
}

} // namespace

MicroOp
MicroOp::readRow(uint32_t row)
{
    MicroOp op;
    op.kind = MicroOpKind::kReadRow;
    op.row = row;
    return op;
}

MicroOp
MicroOp::writeRow(uint32_t row)
{
    MicroOp op;
    op.kind = MicroOpKind::kWriteRow;
    op.row = row;
    return op;
}

MicroOp
MicroOp::mov(BitReg dst, BitReg src)
{
    MicroOp op;
    op.kind = MicroOpKind::kMov;
    op.dst = dst;
    op.src_a = src;
    return op;
}

MicroOp
MicroOp::set(BitReg dst, uint8_t value)
{
    MicroOp op;
    op.kind = MicroOpKind::kSet;
    op.dst = dst;
    op.imm = value;
    return op;
}

MicroOp
MicroOp::andOp(BitReg dst, BitReg a, BitReg b)
{
    MicroOp op;
    op.kind = MicroOpKind::kAnd;
    op.dst = dst;
    op.src_a = a;
    op.src_b = b;
    return op;
}

MicroOp
MicroOp::xnorOp(BitReg dst, BitReg a, BitReg b)
{
    MicroOp op;
    op.kind = MicroOpKind::kXnor;
    op.dst = dst;
    op.src_a = a;
    op.src_b = b;
    return op;
}

MicroOp
MicroOp::sel(BitReg dst, BitReg cond, BitReg a, BitReg b)
{
    MicroOp op;
    op.kind = MicroOpKind::kSel;
    op.dst = dst;
    op.cond = cond;
    op.src_a = a;
    op.src_b = b;
    return op;
}

std::string
MicroOp::toString() const
{
    std::ostringstream oss;
    switch (kind) {
      case MicroOpKind::kReadRow:
        oss << "read   SA <- row[" << row << "]";
        break;
      case MicroOpKind::kWriteRow:
        oss << "write  row[" << row << "] <- SA";
        break;
      case MicroOpKind::kMov:
        oss << "mov    " << regName(dst) << " <- " << regName(src_a);
        break;
      case MicroOpKind::kSet:
        oss << "set    " << regName(dst) << " <- " << int(imm);
        break;
      case MicroOpKind::kAnd:
        oss << "and    " << regName(dst) << " <- " << regName(src_a)
            << " & " << regName(src_b);
        break;
      case MicroOpKind::kXnor:
        oss << "xnor   " << regName(dst) << " <- ~(" << regName(src_a)
            << " ^ " << regName(src_b) << ")";
        break;
      case MicroOpKind::kSel:
        oss << "sel    " << regName(dst) << " <- " << regName(cond)
            << " ? " << regName(src_a) << " : " << regName(src_b);
        break;
    }
    return oss.str();
}

uint64_t
MicroProgram::numReads() const
{
    uint64_t n = 0;
    for (const auto &op : ops)
        n += (op.kind == MicroOpKind::kReadRow);
    return n;
}

uint64_t
MicroProgram::numWrites() const
{
    uint64_t n = 0;
    for (const auto &op : ops)
        n += (op.kind == MicroOpKind::kWriteRow);
    return n;
}

uint64_t
MicroProgram::numLogicOps() const
{
    uint64_t n = 0;
    for (const auto &op : ops) {
        n += (op.kind != MicroOpKind::kReadRow &&
              op.kind != MicroOpKind::kWriteRow);
    }
    return n;
}

void
MicroProgram::append(const MicroProgram &other)
{
    ops.insert(ops.end(), other.ops.begin(), other.ops.end());
}

std::string
MicroProgram::disassemble() const
{
    std::ostringstream oss;
    for (const auto &op : ops)
        oss << op.toString() << "\n";
    return oss.str();
}

} // namespace pimeval
