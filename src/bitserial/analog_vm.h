/**
 * @file
 * Functional VM for analog bit-serial PIM (Ambit/SIMDRAM semantics).
 *
 * Models a subarray as a bit matrix whose first AnalogRowGroup rows
 * are the designated compute group (TRA rows, DCC rows, constant
 * rows, scratch). Executes AnalogPrograms: AAP row copies, AAP-NOT
 * complementing copies, and triple-row activations computing the
 * bitwise majority in place.
 */

#ifndef PIMEVAL_BITSERIAL_ANALOG_VM_H_
#define PIMEVAL_BITSERIAL_ANALOG_VM_H_

#include <cstdint>
#include <vector>

#include "bitserial/analog_ops.h"

namespace pimeval {

class AnalogVm
{
  public:
    /**
     * Create a subarray; rows [0, AnalogRowGroup::kNumRows) are the
     * compute group, with the constant rows preset.
     */
    AnalogVm(uint32_t num_rows, uint32_t num_cols);

    uint32_t numRows() const { return num_rows_; }
    uint32_t numCols() const { return num_cols_; }

    void execute(const AnalogOp &op);
    void run(const AnalogProgram &program);

    bool getBit(uint32_t row, uint32_t col) const;
    void setBit(uint32_t row, uint32_t col, bool value);

    /** Vertical element helpers (LSB first), as in BitSerialVm. */
    void writeVertical(uint32_t col, uint32_t base_row, unsigned n,
                       uint64_t value);
    uint64_t readVertical(uint32_t col, uint32_t base_row,
                          unsigned n) const;

    uint64_t opsExecuted() const { return ops_executed_; }

  private:
    using Row = std::vector<uint64_t>;

    uint32_t num_rows_;
    uint32_t num_cols_;
    uint32_t words_per_row_;
    std::vector<Row> memory_;
    uint64_t ops_executed_ = 0;
};

} // namespace pimeval

#endif // PIMEVAL_BITSERIAL_ANALOG_VM_H_
