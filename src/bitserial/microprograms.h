/**
 * @file
 * Microprogram generators for the DRAM-AP bit-serial architecture.
 *
 * Each generator emits the exact row-wide micro-op sequence a memory
 * controller would broadcast to execute one high-level PIM operation
 * on vertically laid-out operands. Operands occupy @c n consecutive
 * rows starting at a base row, least-significant bit first.
 *
 * These programs serve two purposes:
 *  1. Functional ground truth — the BitSerialVm executes them and the
 *     test suite checks them against scalar integer semantics.
 *  2. Performance costing — the bit-serial performance model derives
 *     row-read/row-write/logic-op counts directly from the generated
 *     programs, so modeled latency always matches the microcode.
 */

#ifndef PIMEVAL_BITSERIAL_MICROPROGRAMS_H_
#define PIMEVAL_BITSERIAL_MICROPROGRAMS_H_

#include <cstdint>

#include "bitserial/micro_op.h"

namespace pimeval {

/**
 * Static generators for all supported bit-serial operations.
 *
 * Row-index parameters are base rows (bit i of an operand lives at
 * base + i). @p n is the operand bit width.
 */
class MicroPrograms
{
  public:
    // --- Arithmetic, two vector operands ---
    /** dest = a + b (mod 2^n). Linear: 2 reads, 1 write, 5 logic/bit. */
    static MicroProgram add(uint32_t a, uint32_t b, uint32_t dest,
                            unsigned n);
    /** dest = a - b (mod 2^n). */
    static MicroProgram sub(uint32_t a, uint32_t b, uint32_t dest,
                            unsigned n);
    /** dest = a * b (mod 2^n), shift-add; quadratic in n.
     *  dest rows must not alias a or b. */
    static MicroProgram mul(uint32_t a, uint32_t b, uint32_t dest,
                            unsigned n);
    /**
     * dest = a / b, restoring division; quadratic in n. Needs
     * 3n + 2 scratch rows at @p scratch. Unsigned division when
     * @p is_signed is false; two's-complement truncating division
     * otherwise. Division by zero yields all-ones (unsigned
     * semantics of the restoring loop). No row ranges may overlap.
     */
    static MicroProgram divide(uint32_t a, uint32_t b, uint32_t dest,
                               uint32_t scratch, unsigned n,
                               bool is_signed);

    // --- Logical, two vector operands ---
    static MicroProgram andOp(uint32_t a, uint32_t b, uint32_t dest,
                              unsigned n);
    static MicroProgram orOp(uint32_t a, uint32_t b, uint32_t dest,
                             unsigned n);
    static MicroProgram xorOp(uint32_t a, uint32_t b, uint32_t dest,
                              unsigned n);
    static MicroProgram xnorOp(uint32_t a, uint32_t b, uint32_t dest,
                               unsigned n);
    static MicroProgram notOp(uint32_t a, uint32_t dest, unsigned n);

    // --- Comparisons: one result bit written to dest row ---
    /** dest[0] = (a < b), signed or unsigned. */
    static MicroProgram lessThan(uint32_t a, uint32_t b, uint32_t dest,
                                 unsigned n, bool is_signed);
    /** dest[0] = (a == b). Associative-processing style XNOR+AND. */
    static MicroProgram equal(uint32_t a, uint32_t b, uint32_t dest,
                              unsigned n);

    // --- Min / Max (comparison followed by selective copy) ---
    static MicroProgram minOp(uint32_t a, uint32_t b, uint32_t dest,
                              unsigned n, bool is_signed);
    static MicroProgram maxOp(uint32_t a, uint32_t b, uint32_t dest,
                              unsigned n, bool is_signed);

    // --- One-operand arithmetic ---
    /** dest = |a| for signed two's-complement a. */
    static MicroProgram absOp(uint32_t a, uint32_t dest, unsigned n);

    // --- Scalar-operand variants (scalar known at the controller) ---
    /** dest = a + scalar. Scalar bits specialize the microcode. */
    static MicroProgram addScalar(uint32_t a, uint32_t dest, unsigned n,
                                  uint64_t scalar);
    /** dest = a - scalar (implemented as addScalar of -scalar). */
    static MicroProgram subScalar(uint32_t a, uint32_t dest, unsigned n,
                                  uint64_t scalar);
    /** dest = a * scalar; cost scales with popcount(scalar).
     *  dest rows must not alias a. */
    static MicroProgram mulScalar(uint32_t a, uint32_t dest, unsigned n,
                                  uint64_t scalar);
    /** dest[0] = (a == scalar). */
    static MicroProgram equalScalar(uint32_t a, uint32_t dest, unsigned n,
                                    uint64_t scalar);
    /** dest[0] = (a < scalar). */
    static MicroProgram lessThanScalar(uint32_t a, uint32_t dest,
                                       unsigned n, uint64_t scalar,
                                       bool is_signed);

    // --- Shifts by a constant (row renaming + fill) ---
    static MicroProgram shiftLeft(uint32_t a, uint32_t dest, unsigned n,
                                  unsigned amount);
    static MicroProgram shiftRight(uint32_t a, uint32_t dest, unsigned n,
                                   unsigned amount, bool arithmetic);

    // --- Population count ---
    /**
     * dest = popcount(a): log-linear ripple accumulation into
     * ceil(log2(n+1)) result rows; remaining dest rows zeroed up to
     * @p dest_bits.
     */
    static MicroProgram popCount(uint32_t a, uint32_t dest, unsigned n,
                                 unsigned dest_bits);

    // --- Broadcast a constant to every element ---
    static MicroProgram broadcast(uint32_t dest, unsigned n,
                                  uint64_t value);

    // --- Row-to-row copy (dest = a) ---
    static MicroProgram copy(uint32_t a, uint32_t dest, unsigned n);

  private:
    /** Emit a full-adder step adding (masked) a-bit into dest-bit. */
    static void emitAddInto(MicroProgram &prog, uint32_t a_row,
                            uint32_t dest_row, bool mask_with_r4);
};

} // namespace pimeval

#endif // PIMEVAL_BITSERIAL_MICROPROGRAMS_H_
