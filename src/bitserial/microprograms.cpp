/**
 * @file
 * Microprogram generator implementations.
 *
 * Register conventions (per column):
 *   SA — sense-amp latch; source/sink of row reads/writes.
 *   R1 — operand A bit.
 *   R2 — carry / borrow / comparison accumulator.
 *   R3 — temporary (xnor results, constants).
 *   R4 — condition bits, sums, or second temporary.
 *
 * Useful identities with the XNOR/AND/SEL gate set:
 *   xnor(x, y)        = ~(x ^ y) = x ^ y ^ 1
 *   xnor(xnor(a,b),c) = a ^ b ^ c            (full-adder sum)
 *   sel(xnor(a,b), a, c) = majority(a, b, c) (full-adder carry)
 *   xnor(x, 0)        = ~x                   (NOT via a Set-0 register)
 */

#include "bitserial/microprograms.h"

#include <bit>
#include <cassert>

namespace pimeval {

using K = MicroOpKind;
using R = BitReg;

MicroProgram
MicroPrograms::add(uint32_t a, uint32_t b, uint32_t dest, unsigned n)
{
    MicroProgram p;
    p.append(MicroOp::set(R::R2, 0)); // carry = 0
    for (unsigned i = 0; i < n; ++i) {
        p.append(MicroOp::readRow(a + i));
        p.append(MicroOp::mov(R::R1, R::SA));
        p.append(MicroOp::readRow(b + i));
        // t = xnor(a, b); sum = xnor(t, c); carry' = t ? a : c.
        p.append(MicroOp::xnorOp(R::R3, R::R1, R::SA));
        p.append(MicroOp::xnorOp(R::R4, R::R3, R::R2));
        p.append(MicroOp::sel(R::R2, R::R3, R::R1, R::R2));
        p.append(MicroOp::mov(R::SA, R::R4));
        p.append(MicroOp::writeRow(dest + i));
    }
    return p;
}

MicroProgram
MicroPrograms::sub(uint32_t a, uint32_t b, uint32_t dest, unsigned n)
{
    // diff = a ^ b ^ borrow; borrow' = t ? borrow : ~a, t = xnor(a,b).
    MicroProgram p;
    p.append(MicroOp::set(R::R2, 0)); // borrow = 0
    for (unsigned i = 0; i < n; ++i) {
        p.append(MicroOp::readRow(a + i));
        p.append(MicroOp::mov(R::R1, R::SA));
        p.append(MicroOp::readRow(b + i));
        p.append(MicroOp::xnorOp(R::R3, R::R1, R::SA)); // t
        p.append(MicroOp::xnorOp(R::SA, R::R3, R::R2)); // diff
        p.append(MicroOp::writeRow(dest + i));
        p.append(MicroOp::set(R::R4, 0));
        p.append(MicroOp::xnorOp(R::R4, R::R1, R::R4)); // ~a
        p.append(MicroOp::sel(R::R2, R::R3, R::R2, R::R4));
    }
    return p;
}

void
MicroPrograms::emitAddInto(MicroProgram &p, uint32_t a_row,
                           uint32_t dest_row, bool mask_with_r4)
{
    // dest += a (+ running carry in R2); optionally a &= R4 (cond).
    p.append(MicroOp::readRow(a_row));
    p.append(MicroOp::mov(R::R1, R::SA));
    if (mask_with_r4)
        p.append(MicroOp::andOp(R::R1, R::R1, R::R4));
    p.append(MicroOp::readRow(dest_row));
    p.append(MicroOp::xnorOp(R::R3, R::R1, R::SA)); // t
    p.append(MicroOp::xnorOp(R::SA, R::R3, R::R2)); // sum
    p.append(MicroOp::sel(R::R2, R::R3, R::R1, R::R2)); // carry'
    p.append(MicroOp::writeRow(dest_row));
}

MicroProgram
MicroPrograms::mul(uint32_t a, uint32_t b, uint32_t dest, unsigned n)
{
    assert(dest + n <= a || a + n <= dest);
    assert(dest + n <= b || b + n <= dest);
    MicroProgram p;
    // Clear the accumulator.
    p.append(MicroOp::set(R::SA, 0));
    for (unsigned i = 0; i < n; ++i)
        p.append(MicroOp::writeRow(dest + i));
    // Shift-add: for each multiplier bit j, conditionally add a<<j.
    for (unsigned j = 0; j < n; ++j) {
        p.append(MicroOp::readRow(b + j));
        p.append(MicroOp::mov(R::R4, R::SA)); // condition bits
        p.append(MicroOp::set(R::R2, 0));     // carry = 0
        for (unsigned i = 0; i + j < n; ++i)
            emitAddInto(p, a + i, dest + i + j, /*mask_with_r4=*/true);
    }
    return p;
}

MicroProgram
MicroPrograms::divide(uint32_t a, uint32_t b, uint32_t dest,
                      uint32_t scratch, unsigned n, bool is_signed)
{
    // Scratch layout: |a| at s_abs_a (n rows), |b| at s_abs_b (n),
    // remainder R at s_rem (n+1 rows), quotient sign at s_sign (1).
    const uint32_t s_abs_a = scratch;
    const uint32_t s_abs_b = scratch + n;
    const uint32_t s_rem = scratch + 2 * n;
    const uint32_t s_sign = scratch + 3 * n + 1;

    MicroProgram p;

    uint32_t num = a;
    uint32_t den = b;
    if (is_signed) {
        // sign_q = a_msb ^ b_msb, parked in a scratch row.
        p.append(MicroOp::readRow(a + n - 1));
        p.append(MicroOp::mov(R::R1, R::SA));
        p.append(MicroOp::readRow(b + n - 1));
        p.append(MicroOp::xnorOp(R::R4, R::R1, R::SA));
        p.append(MicroOp::set(R::R3, 0));
        p.append(MicroOp::xnorOp(R::SA, R::R4, R::R3));
        p.append(MicroOp::writeRow(s_sign));
        // Magnitudes.
        p.append(absOp(a, s_abs_a, n));
        p.append(absOp(b, s_abs_b, n));
        num = s_abs_a;
        den = s_abs_b;
    }

    // Clear remainder and quotient.
    p.append(MicroOp::set(R::SA, 0));
    for (unsigned j = 0; j <= n; ++j)
        p.append(MicroOp::writeRow(s_rem + j));
    for (unsigned i = 0; i < n; ++i)
        p.append(MicroOp::writeRow(dest + i));

    // Restoring loop, MSB first: R = (R << 1) | num_i; if R >= den
    // then { R -= den; Q_i = 1 }.
    for (unsigned i = n; i-- > 0;) {
        // Shift the remainder up one row and bring in num_i.
        for (unsigned j = n; j >= 1; --j) {
            p.append(MicroOp::readRow(s_rem + j - 1));
            p.append(MicroOp::writeRow(s_rem + j));
        }
        p.append(MicroOp::readRow(num + i));
        p.append(MicroOp::writeRow(s_rem));

        // Compare R (n+1 bits) with den (zero-extended): final
        // borrow of R - den means R < den.
        p.append(MicroOp::set(R::R2, 0));
        for (unsigned j = 0; j <= n; ++j) {
            p.append(MicroOp::readRow(s_rem + j));
            p.append(MicroOp::mov(R::R1, R::SA));
            if (j < n) {
                p.append(MicroOp::readRow(den + j));
            } else {
                p.append(MicroOp::set(R::SA, 0));
            }
            p.append(MicroOp::xnorOp(R::R3, R::R1, R::SA)); // t
            p.append(MicroOp::set(R::R4, 0));
            p.append(MicroOp::xnorOp(R::R4, R::R1, R::R4)); // ~r
            p.append(MicroOp::sel(R::R2, R::R3, R::R2, R::R4));
        }
        // cond = (R >= den) = NOT borrow -> quotient bit + keep in R4.
        p.append(MicroOp::set(R::R4, 0));
        p.append(MicroOp::xnorOp(R::R4, R::R2, R::R4));
        p.append(MicroOp::mov(R::SA, R::R4));
        p.append(MicroOp::writeRow(dest + i));

        // Conditional subtract: R = cond ? R - den : R.
        p.append(MicroOp::set(R::R2, 0)); // borrow
        for (unsigned j = 0; j <= n; ++j) {
            p.append(MicroOp::readRow(s_rem + j));
            p.append(MicroOp::mov(R::R1, R::SA));
            if (j < n) {
                p.append(MicroOp::readRow(den + j));
            } else {
                p.append(MicroOp::set(R::SA, 0));
            }
            p.append(MicroOp::xnorOp(R::R3, R::R1, R::SA)); // t
            p.append(MicroOp::xnorOp(R::SA, R::R3, R::R2)); // diff
            p.append(MicroOp::sel(R::SA, R::R4, R::SA, R::R1));
            p.append(MicroOp::writeRow(s_rem + j));
            // borrow' = t ? borrow : ~r (runs unconditionally; the
            // select above already discarded the diff when !cond).
            p.append(MicroOp::set(R::SA, 0));
            p.append(MicroOp::xnorOp(R::SA, R::R1, R::SA)); // ~r
            p.append(MicroOp::sel(R::R2, R::R3, R::R2, R::SA));
        }
    }

    if (is_signed) {
        // Conditionally negate the quotient when signs differ.
        p.append(MicroOp::readRow(s_sign));
        p.append(MicroOp::mov(R::R4, R::SA)); // cond
        p.append(MicroOp::mov(R::R2, R::R4)); // carry-in = cond
        for (unsigned i = 0; i < n; ++i) {
            p.append(MicroOp::readRow(dest + i));
            p.append(MicroOp::xnorOp(R::R3, R::SA, R::R2)); // neg bit
            p.append(MicroOp::set(R::R1, 0));
            p.append(MicroOp::xnorOp(R::R1, R::SA, R::R1)); // ~q
            p.append(MicroOp::sel(R::SA, R::R4, R::R3, R::SA));
            p.append(MicroOp::writeRow(dest + i));
            p.append(MicroOp::andOp(R::R2, R::R1, R::R2)); // carry'
        }
    }
    return p;
}

MicroProgram
MicroPrograms::andOp(uint32_t a, uint32_t b, uint32_t dest, unsigned n)
{
    MicroProgram p;
    for (unsigned i = 0; i < n; ++i) {
        p.append(MicroOp::readRow(a + i));
        p.append(MicroOp::mov(R::R1, R::SA));
        p.append(MicroOp::readRow(b + i));
        p.append(MicroOp::andOp(R::SA, R::R1, R::SA));
        p.append(MicroOp::writeRow(dest + i));
    }
    return p;
}

MicroProgram
MicroPrograms::orOp(uint32_t a, uint32_t b, uint32_t dest, unsigned n)
{
    // or(a, b) = a ? 1 : b.
    MicroProgram p;
    p.append(MicroOp::set(R::R3, 1));
    for (unsigned i = 0; i < n; ++i) {
        p.append(MicroOp::readRow(a + i));
        p.append(MicroOp::mov(R::R1, R::SA));
        p.append(MicroOp::readRow(b + i));
        p.append(MicroOp::sel(R::SA, R::R1, R::R3, R::SA));
        p.append(MicroOp::writeRow(dest + i));
    }
    return p;
}

MicroProgram
MicroPrograms::xorOp(uint32_t a, uint32_t b, uint32_t dest, unsigned n)
{
    // xor = not(xnor).
    MicroProgram p;
    p.append(MicroOp::set(R::R3, 0));
    for (unsigned i = 0; i < n; ++i) {
        p.append(MicroOp::readRow(a + i));
        p.append(MicroOp::mov(R::R1, R::SA));
        p.append(MicroOp::readRow(b + i));
        p.append(MicroOp::xnorOp(R::SA, R::R1, R::SA));
        p.append(MicroOp::xnorOp(R::SA, R::SA, R::R3));
        p.append(MicroOp::writeRow(dest + i));
    }
    return p;
}

MicroProgram
MicroPrograms::xnorOp(uint32_t a, uint32_t b, uint32_t dest, unsigned n)
{
    MicroProgram p;
    for (unsigned i = 0; i < n; ++i) {
        p.append(MicroOp::readRow(a + i));
        p.append(MicroOp::mov(R::R1, R::SA));
        p.append(MicroOp::readRow(b + i));
        p.append(MicroOp::xnorOp(R::SA, R::R1, R::SA));
        p.append(MicroOp::writeRow(dest + i));
    }
    return p;
}

MicroProgram
MicroPrograms::notOp(uint32_t a, uint32_t dest, unsigned n)
{
    MicroProgram p;
    p.append(MicroOp::set(R::R3, 0));
    for (unsigned i = 0; i < n; ++i) {
        p.append(MicroOp::readRow(a + i));
        p.append(MicroOp::xnorOp(R::SA, R::SA, R::R3));
        p.append(MicroOp::writeRow(dest + i));
    }
    return p;
}

MicroProgram
MicroPrograms::lessThan(uint32_t a, uint32_t b, uint32_t dest, unsigned n,
                        bool is_signed)
{
    // Run borrow propagation of a - b; the final borrow is (a < b)
    // unsigned. For signed, flip the MSB inputs (bias trick).
    MicroProgram p;
    p.append(MicroOp::set(R::R2, 0)); // borrow
    for (unsigned i = 0; i < n; ++i) {
        const bool flip = is_signed && i == n - 1;
        p.append(MicroOp::readRow(a + i));
        p.append(MicroOp::mov(R::R1, R::SA));
        p.append(MicroOp::readRow(b + i));
        if (flip) {
            // Invert both MSB inputs: xnor with 0.
            p.append(MicroOp::set(R::R4, 0));
            p.append(MicroOp::xnorOp(R::R1, R::R1, R::R4));
            p.append(MicroOp::xnorOp(R::SA, R::SA, R::R4));
        }
        p.append(MicroOp::xnorOp(R::R3, R::R1, R::SA)); // t
        p.append(MicroOp::set(R::R4, 0));
        p.append(MicroOp::xnorOp(R::R4, R::R1, R::R4)); // ~a
        p.append(MicroOp::sel(R::R2, R::R3, R::R2, R::R4));
    }
    p.append(MicroOp::mov(R::SA, R::R2));
    p.append(MicroOp::writeRow(dest));
    return p;
}

MicroProgram
MicroPrograms::equal(uint32_t a, uint32_t b, uint32_t dest, unsigned n)
{
    MicroProgram p;
    p.append(MicroOp::set(R::R2, 1));
    for (unsigned i = 0; i < n; ++i) {
        p.append(MicroOp::readRow(a + i));
        p.append(MicroOp::mov(R::R1, R::SA));
        p.append(MicroOp::readRow(b + i));
        p.append(MicroOp::xnorOp(R::R3, R::R1, R::SA));
        p.append(MicroOp::andOp(R::R2, R::R2, R::R3));
    }
    p.append(MicroOp::mov(R::SA, R::R2));
    p.append(MicroOp::writeRow(dest));
    return p;
}

MicroProgram
MicroPrograms::minOp(uint32_t a, uint32_t b, uint32_t dest, unsigned n,
                     bool is_signed)
{
    // Pass 1: R2 = (a < b). Pass 2: dest = R2 ? a : b.
    // The comparison pass writes its bit to dest row 0 as scratch, but
    // we rebuild it here without the final write to keep R2 live.
    MicroProgram p;
    p.append(MicroOp::set(R::R2, 0));
    for (unsigned i = 0; i < n; ++i) {
        const bool flip = is_signed && i == n - 1;
        p.append(MicroOp::readRow(a + i));
        p.append(MicroOp::mov(R::R1, R::SA));
        p.append(MicroOp::readRow(b + i));
        if (flip) {
            p.append(MicroOp::set(R::R4, 0));
            p.append(MicroOp::xnorOp(R::R1, R::R1, R::R4));
            p.append(MicroOp::xnorOp(R::SA, R::SA, R::R4));
        }
        p.append(MicroOp::xnorOp(R::R3, R::R1, R::SA));
        p.append(MicroOp::set(R::R4, 0));
        p.append(MicroOp::xnorOp(R::R4, R::R1, R::R4));
        p.append(MicroOp::sel(R::R2, R::R3, R::R2, R::R4));
    }
    for (unsigned i = 0; i < n; ++i) {
        p.append(MicroOp::readRow(a + i));
        p.append(MicroOp::mov(R::R1, R::SA));
        p.append(MicroOp::readRow(b + i));
        p.append(MicroOp::sel(R::SA, R::R2, R::R1, R::SA));
        p.append(MicroOp::writeRow(dest + i));
    }
    return p;
}

MicroProgram
MicroPrograms::maxOp(uint32_t a, uint32_t b, uint32_t dest, unsigned n,
                     bool is_signed)
{
    // max(a, b) = (a < b) ? b : a — same as min with selector swapped.
    MicroProgram p = minOp(a, b, dest, n, is_signed);
    // Patch the selection pass: swap the sel operands. The selection
    // pass is the last 5*n ops; each sel is at position 3 within each
    // 5-op group.
    const size_t sel_pass_begin = p.ops.size() - 5 * n;
    for (unsigned i = 0; i < n; ++i) {
        MicroOp &op = p.ops[sel_pass_begin + 5 * i + 3];
        assert(op.kind == K::kSel);
        std::swap(op.src_a, op.src_b);
    }
    return p;
}

MicroProgram
MicroPrograms::absOp(uint32_t a, uint32_t dest, unsigned n)
{
    // abs(a) = sign ? (~a + 1) : a, computed as a single ripple pass
    // with x = sel(sign, ~a, a) and carry seeded with the sign bit.
    MicroProgram p;
    p.append(MicroOp::readRow(a + n - 1));
    p.append(MicroOp::mov(R::R4, R::SA)); // sign
    p.append(MicroOp::mov(R::R2, R::SA)); // carry = sign
    for (unsigned i = 0; i < n; ++i) {
        p.append(MicroOp::readRow(a + i));
        p.append(MicroOp::set(R::R3, 0));
        p.append(MicroOp::xnorOp(R::R3, R::SA, R::R3)); // ~a
        p.append(MicroOp::sel(R::R1, R::R4, R::R3, R::SA)); // x
        p.append(MicroOp::xnorOp(R::SA, R::R1, R::R2));
        p.append(MicroOp::set(R::R3, 0));
        p.append(MicroOp::xnorOp(R::SA, R::SA, R::R3)); // sum = x ^ c
        p.append(MicroOp::andOp(R::R2, R::R1, R::R2));  // carry out
        p.append(MicroOp::writeRow(dest + i));
    }
    return p;
}

MicroProgram
MicroPrograms::addScalar(uint32_t a, uint32_t dest, unsigned n,
                         uint64_t scalar)
{
    MicroProgram p;
    p.append(MicroOp::set(R::R2, 0)); // carry
    for (unsigned i = 0; i < n; ++i) {
        const bool bit = (scalar >> i) & 1;
        p.append(MicroOp::readRow(a + i));
        if (bit) {
            // sum = xnor(a, c); carry' = a | c = a ? 1 : c.
            p.append(MicroOp::xnorOp(R::R4, R::SA, R::R2));
            p.append(MicroOp::set(R::R3, 1));
            p.append(MicroOp::sel(R::R2, R::SA, R::R3, R::R2));
        } else {
            // sum = a ^ c; carry' = a & c.
            p.append(MicroOp::xnorOp(R::R4, R::SA, R::R2));
            p.append(MicroOp::andOp(R::R2, R::SA, R::R2));
            p.append(MicroOp::set(R::R3, 0));
            p.append(MicroOp::xnorOp(R::R4, R::R4, R::R3));
        }
        p.append(MicroOp::mov(R::SA, R::R4));
        p.append(MicroOp::writeRow(dest + i));
    }
    return p;
}

MicroProgram
MicroPrograms::subScalar(uint32_t a, uint32_t dest, unsigned n,
                         uint64_t scalar)
{
    const uint64_t mask = (n >= 64) ? ~0ull : ((1ull << n) - 1);
    return addScalar(a, dest, n, (~scalar + 1) & mask);
}

MicroProgram
MicroPrograms::mulScalar(uint32_t a, uint32_t dest, unsigned n,
                         uint64_t scalar)
{
    assert(dest + n <= a || a + n <= dest);
    const uint64_t mask = (n >= 64) ? ~0ull : ((1ull << n) - 1);
    scalar &= mask;

    // Dense multipliers (e.g., small negative constants) are cheaper
    // through the two's complement: a*s = -(a * (2^n - s)) mod 2^n,
    // trading partial products for one linear negation pass.
    const bool complemented =
        static_cast<unsigned>(std::popcount(scalar)) > n / 2;
    const uint64_t eff_scalar =
        complemented ? ((~scalar + 1) & mask) : scalar;

    MicroProgram p;
    p.append(MicroOp::set(R::SA, 0));
    for (unsigned i = 0; i < n; ++i)
        p.append(MicroOp::writeRow(dest + i));
    for (unsigned j = 0; j < n; ++j) {
        if (!((eff_scalar >> j) & 1))
            continue;
        p.append(MicroOp::set(R::R2, 0));
        for (unsigned i = 0; i + j < n; ++i)
            emitAddInto(p, a + i, dest + i + j, /*mask_with_r4=*/false);
    }
    if (complemented) {
        // dest = ~dest + 1 via a half-adder ripple with carry-in 1.
        p.append(MicroOp::set(R::R2, 1));
        for (unsigned i = 0; i < n; ++i) {
            p.append(MicroOp::readRow(dest + i));
            p.append(MicroOp::set(R::R3, 0));
            p.append(MicroOp::xnorOp(R::R1, R::SA, R::R3)); // ~d
            p.append(MicroOp::xnorOp(R::R4, R::R1, R::R2));
            p.append(MicroOp::xnorOp(R::R4, R::R4, R::R3)); // sum
            p.append(MicroOp::andOp(R::R2, R::R1, R::R2));  // carry
            p.append(MicroOp::mov(R::SA, R::R4));
            p.append(MicroOp::writeRow(dest + i));
        }
    }
    return p;
}

MicroProgram
MicroPrograms::equalScalar(uint32_t a, uint32_t dest, unsigned n,
                           uint64_t scalar)
{
    MicroProgram p;
    p.append(MicroOp::set(R::R2, 1));
    for (unsigned i = 0; i < n; ++i) {
        const bool bit = (scalar >> i) & 1;
        p.append(MicroOp::readRow(a + i));
        // match = bit ? a : ~a = xnor(a, bit).
        p.append(MicroOp::set(R::R3, bit ? 1 : 0));
        p.append(MicroOp::xnorOp(R::R3, R::SA, R::R3));
        p.append(MicroOp::andOp(R::R2, R::R2, R::R3));
    }
    p.append(MicroOp::mov(R::SA, R::R2));
    p.append(MicroOp::writeRow(dest));
    return p;
}

MicroProgram
MicroPrograms::lessThanScalar(uint32_t a, uint32_t dest, unsigned n,
                              uint64_t scalar, bool is_signed)
{
    // borrow' = t ? borrow : ~a with t = xnor(a, s_i); MSB flipped for
    // signed compare.
    MicroProgram p;
    p.append(MicroOp::set(R::R2, 0));
    for (unsigned i = 0; i < n; ++i) {
        bool bit = (scalar >> i) & 1;
        const bool flip = is_signed && i == n - 1;
        p.append(MicroOp::readRow(a + i));
        if (flip) {
            p.append(MicroOp::set(R::R4, 0));
            p.append(MicroOp::xnorOp(R::SA, R::SA, R::R4));
            bit = !bit;
        }
        p.append(MicroOp::set(R::R3, bit ? 1 : 0));
        p.append(MicroOp::xnorOp(R::R3, R::SA, R::R3)); // t
        p.append(MicroOp::set(R::R4, 0));
        p.append(MicroOp::xnorOp(R::R4, R::SA, R::R4)); // ~a
        p.append(MicroOp::sel(R::R2, R::R3, R::R2, R::R4));
    }
    p.append(MicroOp::mov(R::SA, R::R2));
    p.append(MicroOp::writeRow(dest));
    return p;
}

MicroProgram
MicroPrograms::shiftLeft(uint32_t a, uint32_t dest, unsigned n,
                         unsigned amount)
{
    MicroProgram p;
    if (amount >= n) {
        p.append(MicroOp::set(R::SA, 0));
        for (unsigned i = 0; i < n; ++i)
            p.append(MicroOp::writeRow(dest + i));
        return p;
    }
    // High to low so dest may alias a.
    for (unsigned i = n; i-- > amount;) {
        p.append(MicroOp::readRow(a + i - amount));
        p.append(MicroOp::writeRow(dest + i));
    }
    p.append(MicroOp::set(R::SA, 0));
    for (unsigned i = 0; i < amount; ++i)
        p.append(MicroOp::writeRow(dest + i));
    return p;
}

MicroProgram
MicroPrograms::shiftRight(uint32_t a, uint32_t dest, unsigned n,
                          unsigned amount, bool arithmetic)
{
    MicroProgram p;
    if (amount >= n)
        amount = arithmetic ? n - 1 : n;
    if (arithmetic) {
        p.append(MicroOp::readRow(a + n - 1));
        p.append(MicroOp::mov(R::R1, R::SA)); // sign fill
    }
    for (unsigned i = 0; i + amount < n; ++i) {
        p.append(MicroOp::readRow(a + i + amount));
        p.append(MicroOp::writeRow(dest + i));
    }
    if (arithmetic)
        p.append(MicroOp::mov(R::SA, R::R1));
    else
        p.append(MicroOp::set(R::SA, 0));
    for (unsigned i = n - amount; i < n; ++i)
        p.append(MicroOp::writeRow(dest + i));
    return p;
}

MicroProgram
MicroPrograms::popCount(uint32_t a, uint32_t dest, unsigned n,
                        unsigned dest_bits)
{
    // Accumulator width: enough bits to hold n.
    unsigned w = 1;
    while ((1u << w) <= n)
        ++w;
    if (w > dest_bits)
        w = dest_bits;
    assert(dest + dest_bits <= a || a + n <= dest);

    MicroProgram p;
    p.append(MicroOp::set(R::SA, 0));
    for (unsigned j = 0; j < dest_bits; ++j)
        p.append(MicroOp::writeRow(dest + j));
    for (unsigned i = 0; i < n; ++i) {
        p.append(MicroOp::readRow(a + i));
        p.append(MicroOp::mov(R::R2, R::SA)); // carry = input bit
        for (unsigned j = 0; j < w; ++j) {
            // Half-add carry into accumulator bit j.
            p.append(MicroOp::readRow(dest + j));
            p.append(MicroOp::xnorOp(R::R3, R::SA, R::R2));
            p.append(MicroOp::set(R::R4, 0));
            p.append(MicroOp::xnorOp(R::R3, R::R3, R::R4)); // sum
            p.append(MicroOp::andOp(R::R2, R::SA, R::R2));  // carry
            p.append(MicroOp::mov(R::SA, R::R3));
            p.append(MicroOp::writeRow(dest + j));
        }
    }
    return p;
}

MicroProgram
MicroPrograms::broadcast(uint32_t dest, unsigned n, uint64_t value)
{
    MicroProgram p;
    for (unsigned i = 0; i < n; ++i) {
        p.append(MicroOp::set(R::SA, (value >> i) & 1));
        p.append(MicroOp::writeRow(dest + i));
    }
    return p;
}

MicroProgram
MicroPrograms::copy(uint32_t a, uint32_t dest, unsigned n)
{
    MicroProgram p;
    for (unsigned i = 0; i < n; ++i) {
        p.append(MicroOp::readRow(a + i));
        p.append(MicroOp::writeRow(dest + i));
    }
    return p;
}

} // namespace pimeval
