/**
 * @file
 * AnalogVm implementation.
 */

#include "bitserial/analog_vm.h"

#include <cassert>

namespace pimeval {

AnalogVm::AnalogVm(uint32_t num_rows, uint32_t num_cols)
    : num_rows_(num_rows), num_cols_(num_cols),
      words_per_row_((num_cols + 63) / 64),
      memory_(num_rows, Row(words_per_row_, 0))
{
    assert(num_rows_ > AnalogRowGroup::kNumRows);
    // Constant rows: C0 all zeros (default), C1 all ones.
    for (auto &word : memory_[AnalogRowGroup::kC1])
        word = ~0ull;
}

void
AnalogVm::execute(const AnalogOp &op)
{
    ++ops_executed_;
    switch (op.kind) {
      case AnalogOpKind::kAap: {
        assert(op.src < num_rows_ && op.dst < num_rows_);
        memory_[op.dst] = memory_[op.src];
        break;
      }
      case AnalogOpKind::kAapNot: {
        assert(op.src < num_rows_ && op.dst < num_rows_);
        for (uint32_t w = 0; w < words_per_row_; ++w)
            memory_[op.dst][w] = ~memory_[op.src][w];
        break;
      }
      case AnalogOpKind::kTra: {
        assert(op.r0 < num_rows_ && op.r1 < num_rows_ &&
               op.r2 < num_rows_);
        Row &a = memory_[op.r0];
        Row &b = memory_[op.r1];
        Row &c = memory_[op.r2];
        for (uint32_t w = 0; w < words_per_row_; ++w) {
            const uint64_t maj =
                (a[w] & b[w]) | (a[w] & c[w]) | (b[w] & c[w]);
            a[w] = maj;
            b[w] = maj;
            c[w] = maj;
        }
        break;
      }
    }
}

void
AnalogVm::run(const AnalogProgram &program)
{
    for (const auto &op : program.ops)
        execute(op);
}

bool
AnalogVm::getBit(uint32_t row, uint32_t col) const
{
    assert(row < num_rows_ && col < num_cols_);
    return (memory_[row][col / 64] >> (col % 64)) & 1;
}

void
AnalogVm::setBit(uint32_t row, uint32_t col, bool value)
{
    assert(row < num_rows_ && col < num_cols_);
    const uint64_t mask = 1ull << (col % 64);
    if (value)
        memory_[row][col / 64] |= mask;
    else
        memory_[row][col / 64] &= ~mask;
}

void
AnalogVm::writeVertical(uint32_t col, uint32_t base_row, unsigned n,
                        uint64_t value)
{
    for (unsigned i = 0; i < n; ++i)
        setBit(base_row + i, col, (value >> i) & 1);
}

uint64_t
AnalogVm::readVertical(uint32_t col, uint32_t base_row,
                       unsigned n) const
{
    uint64_t value = 0;
    for (unsigned i = 0; i < n; ++i) {
        if (getBit(base_row + i, col))
            value |= (1ull << i);
    }
    return value;
}

} // namespace pimeval
