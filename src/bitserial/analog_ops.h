/**
 * @file
 * Row-operation ISA of analog bit-serial PIM (Ambit / SIMDRAM style).
 *
 * The paper lists analog bit-serial support as an in-progress PIMeval
 * extension (Sections II, V-A, IX); this module provides it. Analog
 * in-DRAM computation offers only three primitives, all at row
 * granularity:
 *
 *  - AAP  (Activate-Activate-Precharge): copy one row into another
 *    through the sense amplifiers (RowClone FPM).
 *  - AAP-NOT: copy through a dual-contact cell (DCC) row, yielding
 *    the bitwise complement — the only way to invert, and the reason
 *    DCC rows are costly (paper Section IV).
 *  - TRA  (Triple-Row Activation): simultaneously activate three
 *    designated compute rows; charge sharing leaves the bitwise
 *    MAJority of the three values in all three rows.
 *
 * Operands must first be copied into the small group of TRA-capable
 * compute rows — the copy overhead the paper cites as a drawback of
 * the analog approach versus digital bit-serial PIM.
 */

#ifndef PIMEVAL_BITSERIAL_ANALOG_OPS_H_
#define PIMEVAL_BITSERIAL_ANALOG_OPS_H_

#include <cstdint>
#include <string>
#include <vector>

namespace pimeval {

/** Compute-row group layout (indices into the reserved rows). */
struct AnalogRowGroup
{
    /** TRA-capable rows (operands of every majority). */
    static constexpr uint32_t kT0 = 0;
    static constexpr uint32_t kT1 = 1;
    static constexpr uint32_t kT2 = 2;
    /** Dual-contact rows: writing via AAP-NOT lands the complement. */
    static constexpr uint32_t kDcc0 = 3;
    static constexpr uint32_t kDcc1 = 4;
    /** Constant rows preset to all-0 / all-1. */
    static constexpr uint32_t kC0 = 5;
    static constexpr uint32_t kC1 = 6;
    /** Scratch data rows usable as temporaries (six of them). */
    static constexpr uint32_t kScratch = 7;
    /** Total reserved compute rows (incl. 6 scratch). */
    static constexpr uint32_t kNumRows = 13;
};

/** Analog row-operation kinds. */
enum class AnalogOpKind : uint8_t {
    kAap = 0, ///< dst row <- src row
    kAapNot,  ///< dst row <- NOT src row (through a DCC)
    kTra,     ///< rows r0,r1,r2 <- MAJ(r0, r1, r2)
};

/** One analog row operation. */
struct AnalogOp
{
    AnalogOpKind kind;
    uint32_t src = 0;
    uint32_t dst = 0;
    uint32_t r0 = 0, r1 = 0, r2 = 0; ///< for kTra

    static AnalogOp aap(uint32_t src, uint32_t dst);
    static AnalogOp aapNot(uint32_t src, uint32_t dst);
    static AnalogOp tra(uint32_t r0, uint32_t r1, uint32_t r2);

    std::string toString() const;
};

/**
 * A sequence of analog row operations plus its op-count profile —
 * the costing basis of the analog performance model.
 */
struct AnalogProgram
{
    std::vector<AnalogOp> ops;

    uint64_t numAaps() const;
    uint64_t numTras() const;

    void append(AnalogOp op) { ops.push_back(op); }
    void append(const AnalogProgram &other);

    std::string disassemble() const;
};

} // namespace pimeval

#endif // PIMEVAL_BITSERIAL_ANALOG_OPS_H_
