/**
 * @file
 * Vertical-I/O fusion for the bit-serial target.
 *
 * Unfused bit-serial execution pays a transpose at every command
 * boundary: operands are written vertically (host elements scattered
 * into bit-plane rows), the microprogram runs, and the result is read
 * back out — so a chain of k commands transposes its data in and out
 * k times. This runner executes a whole producer->consumer chain
 * chunk-by-chunk on one subarray-sized tile kept hot: each input is
 * transposed in once per tile, every microprogram of the chain runs on
 * the resident bit-planes (intermediates never leave the subarray),
 * and only the final result is transposed out.
 *
 * The microprograms themselves are the unmodified MicroPrograms
 * generators, so fused results are bit-identical to per-command
 * execution; only the vertical I/O count changes. The runner reports
 * micro-op and transpose-element counts so tests and benches can
 * verify both the identity and the saved I/O.
 */

#ifndef PIMEVAL_BITSERIAL_BITSERIAL_FUSED_H_
#define PIMEVAL_BITSERIAL_BITSERIAL_FUSED_H_

#include <cstddef>
#include <cstdint>
#include <vector>

#include "bitserial/bitserial_vm.h"
#include "bitserial/micro_op.h"
#include "core/pim_host_io.h"

namespace pimeval {

/** Chain step operations (the fusable elementwise subset that has
 *  two-operand or scalar bit-serial microprograms). */
enum class BitSerialFusedOpKind : uint8_t {
    kAdd,
    kSub,
    kMul,
    kAnd,
    kOr,
    kXor,
    kAddScalar,
    kSubScalar,
    kMulScalar,
};

/** I/O and micro-op accounting of one chain execution. */
struct BitSerialFusedStats
{
    uint64_t micro_ops = 0;      ///< row-wide micro-ops executed
    uint64_t elems_in = 0;       ///< elements transposed into the VM
    uint64_t elems_out = 0;      ///< elements transposed out
    uint64_t tiles = 0;          ///< column tiles processed
    uint64_t host_elems_in = 0;  ///< host elements converted in-tile
    uint64_t staged_elems = 0;   ///< host elements horizontally staged
                                 ///< (unfused baseline only)
};

/**
 * One linear fusion chain over vertically laid-out data.
 *
 * value = input0; then for each step: value = value OP rhs, where rhs
 * is another registered input (binary steps) or a scalar baked into
 * the microcode (scalar steps). run() fuses at the vertical-I/O
 * level; runUnfused() executes the same programs with per-command
 * transposes, as the baseline for tests and benches.
 */
class BitSerialFusedChain
{
  public:
    /**
     * @param bits element width of every operand.
     * @param tile_cols columns per tile (one subarray row-slice worth
     *        of elements processed per transpose).
     */
    explicit BitSerialFusedChain(unsigned bits,
                                 uint32_t tile_cols = 512);

    /** Register an input vector (canonical one-word-per-element
     *  storage). All inputs must be the same length. @return input
     *  index for addStep. Input 0 seeds the chain. */
    int addInput(const uint64_t *data, size_t n);

    /**
     * Register a host-source input: packed host bytes at the chain's
     * element width ((bits+7)/8 bytes per element, the
     * pimCopyHostToDevice layout). run()/runRedSum() convert each
     * tile slice straight into vertical bit-planes through a
     * tile-sized scratch — the horizontal staging object an unfused
     * copy would materialize is skipped entirely. runUnfused() stages
     * the whole input horizontally first, mirroring the real unfused
     * copy->compute flow. Requires a packed host layout
     * (bits in {1,8,16,32,64}).
     */
    int addHostInput(const void *data, size_t n);

    /** Append a binary step: value = value OP input[rhs_input]. */
    void addStep(BitSerialFusedOpKind kind, int rhs_input);

    /** Append a scalar step: value = value OP scalar. */
    void addScalarStep(BitSerialFusedOpKind kind, uint64_t scalar);

    /** Execute the chain fused (inputs transposed once per tile,
     *  intermediates stay vertical). Writes n elements to @p dest. */
    BitSerialFusedStats run(uint64_t *dest);

    /** Execute the chain with per-command vertical I/O (the unfused
     *  baseline): every step transposes its operands in and its
     *  result out. Same results as run(), more I/O. */
    BitSerialFusedStats runUnfused(uint64_t *dest);

    /**
     * Execute the chain fused and terminate it with a sum reduction
     * performed in place: each tile's result bit-planes are
     * popcounted row-wise (weight 2^b per plane, the top plane
     * weighted -2^(bits-1) when @p is_signed), so the chain value is
     * never transposed back out — stats.elems_out stays 0. The
     * accumulation is wrapping 64-bit arithmetic, bit-identical to
     * summing run()'s output elements (sign-extended when signed) on
     * the host.
     */
    BitSerialFusedStats runRedSum(bool is_signed, int64_t *sum);

  private:
    struct Step
    {
        BitSerialFusedOpKind kind;
        int rhs = -1;
        uint64_t scalar = 0;
    };

    /** One registered input: canonical words, or packed host bytes
     *  converted per tile (host != nullptr). */
    struct Input
    {
        const uint64_t *words = nullptr;
        const uint8_t *host = nullptr;
    };

    /** Tile slice of input @p in starting at @p base: canonical words
     *  directly, or the host slice converted into @p scratch. */
    const uint64_t *tileWords(const Input &in, size_t base,
                              uint32_t cnt, uint64_t *scratch,
                              BitSerialFusedStats &stats) const;

    /** Row base of input @p idx (inputs stack bottom-up). */
    uint32_t inputRow(size_t idx) const
    {
        return static_cast<uint32_t>(idx) * bits_;
    }
    /** Ping/pong result row bases above the inputs (mul/mulScalar
     *  microprograms forbid dest aliasing their operands). */
    uint32_t resultRow(unsigned pp) const
    {
        return static_cast<uint32_t>(inputs_.size() + pp) * bits_;
    }

    /** Build the chain's microprograms against fixed row bases:
     *  step k reads @p lhs_rows[k] and writes @p dest_rows[k]. */
    std::vector<MicroProgram>
    buildPrograms(const std::vector<uint32_t> &lhs_rows,
                  const std::vector<uint32_t> &dest_rows) const;

    unsigned bits_;
    uint32_t tile_cols_;
    std::vector<Input> inputs_;
    size_t n_ = 0;
    std::vector<Step> steps_;
};

} // namespace pimeval

#endif // PIMEVAL_BITSERIAL_BITSERIAL_FUSED_H_
