/**
 * @file
 * Analog row-op constructors and profiling.
 */

#include "bitserial/analog_ops.h"

#include <sstream>

namespace pimeval {

AnalogOp
AnalogOp::aap(uint32_t src, uint32_t dst)
{
    AnalogOp op;
    op.kind = AnalogOpKind::kAap;
    op.src = src;
    op.dst = dst;
    return op;
}

AnalogOp
AnalogOp::aapNot(uint32_t src, uint32_t dst)
{
    AnalogOp op;
    op.kind = AnalogOpKind::kAapNot;
    op.src = src;
    op.dst = dst;
    return op;
}

AnalogOp
AnalogOp::tra(uint32_t r0, uint32_t r1, uint32_t r2)
{
    AnalogOp op;
    op.kind = AnalogOpKind::kTra;
    op.r0 = r0;
    op.r1 = r1;
    op.r2 = r2;
    return op;
}

std::string
AnalogOp::toString() const
{
    std::ostringstream oss;
    switch (kind) {
      case AnalogOpKind::kAap:
        oss << "aap    row[" << dst << "] <- row[" << src << "]";
        break;
      case AnalogOpKind::kAapNot:
        oss << "aap~   row[" << dst << "] <- ~row[" << src << "]";
        break;
      case AnalogOpKind::kTra:
        oss << "tra    MAJ(row[" << r0 << "], row[" << r1 << "], row["
            << r2 << "])";
        break;
    }
    return oss.str();
}

uint64_t
AnalogProgram::numAaps() const
{
    uint64_t n = 0;
    for (const auto &op : ops)
        n += (op.kind != AnalogOpKind::kTra);
    return n;
}

uint64_t
AnalogProgram::numTras() const
{
    uint64_t n = 0;
    for (const auto &op : ops)
        n += (op.kind == AnalogOpKind::kTra);
    return n;
}

void
AnalogProgram::append(const AnalogProgram &other)
{
    ops.insert(ops.end(), other.ops.begin(), other.ops.end());
}

std::string
AnalogProgram::disassemble() const
{
    std::ostringstream oss;
    for (const auto &op : ops)
        oss << op.toString() << "\n";
    return oss.str();
}

} // namespace pimeval
