/**
 * @file
 * Micro-op ISA of the digital bit-serial PIM architecture ("DRAM-AP").
 *
 * The modeled architecture (paper Section IV, Fig. 3) attaches to every
 * sense amplifier a tiny digital PE with four one-bit registers and the
 * operations XNOR, AND, SEL (2:1 mux), plus register move and set.
 * High-level operations are microprograms: sequences of these row-wide
 * micro-ops broadcast by the memory controller to all subarrays.
 *
 * A micro-op operates simultaneously on every column of the subarray
 * (a full bit-slice). Row reads latch a memory row into the sense-amp
 * register; row writes drive the sense-amp register back into a row.
 */

#ifndef PIMEVAL_BITSERIAL_MICRO_OP_H_
#define PIMEVAL_BITSERIAL_MICRO_OP_H_

#include <cstdint>
#include <string>
#include <vector>

namespace pimeval {

/** Per-column one-bit registers of the DRAM-AP processing element. */
enum class BitReg : uint8_t {
    SA = 0, ///< sense-amplifier latch
    R1,     ///< general purpose (typically operand A)
    R2,     ///< general purpose (typically carry/borrow/condition)
    R3,     ///< general purpose (typically temporaries)
    R4,     ///< general purpose (typically sum/condition bits)
};

/** Number of registers including the sense-amp latch. */
constexpr unsigned kNumBitRegs = 5;

/** Micro-op kinds supported by the DRAM-AP PE. */
enum class MicroOpKind : uint8_t {
    kReadRow = 0, ///< SA <- memory[row]
    kWriteRow,    ///< memory[row] <- SA
    kMov,         ///< dst <- src
    kSet,         ///< dst <- 0/1 (row-wide broadcast)
    kAnd,         ///< dst <- srcA & srcB
    kXnor,        ///< dst <- ~(srcA ^ srcB)
    kSel,         ///< dst <- cond ? srcA : srcB
};

/** One row-wide micro-op. */
struct MicroOp
{
    MicroOpKind kind;
    BitReg dst = BitReg::SA;
    BitReg src_a = BitReg::SA;
    BitReg src_b = BitReg::SA;
    BitReg cond = BitReg::SA; ///< for kSel
    uint32_t row = 0;         ///< for kReadRow / kWriteRow
    uint8_t imm = 0;          ///< for kSet (0 or 1)

    static MicroOp readRow(uint32_t row);
    static MicroOp writeRow(uint32_t row);
    static MicroOp mov(BitReg dst, BitReg src);
    static MicroOp set(BitReg dst, uint8_t value);
    static MicroOp andOp(BitReg dst, BitReg a, BitReg b);
    static MicroOp xnorOp(BitReg dst, BitReg a, BitReg b);
    static MicroOp sel(BitReg dst, BitReg cond, BitReg a, BitReg b);

    /** Disassembly for debugging / dumps. */
    std::string toString() const;
};

/**
 * A microprogram plus its op-count profile.
 *
 * The profile is the single source of truth for bit-serial performance
 * costing: runtime = reads*tR + writes*tW + logic*tL per chunk.
 */
struct MicroProgram
{
    std::vector<MicroOp> ops;

    uint64_t numReads() const;
    uint64_t numWrites() const;
    uint64_t numLogicOps() const;

    void append(MicroOp op) { ops.push_back(op); }
    void append(const MicroProgram &other);

    std::string disassemble() const;
};

} // namespace pimeval

#endif // PIMEVAL_BITSERIAL_MICRO_OP_H_
