/**
 * @file
 * Vertical-I/O fused chain execution for the bit-serial target.
 */

#include "bitserial/bitserial_fused.h"

#include <algorithm>
#include <cassert>

#include "bitserial/microprograms.h"

namespace pimeval {

BitSerialFusedChain::BitSerialFusedChain(unsigned bits,
                                         uint32_t tile_cols)
    : bits_(bits), tile_cols_(tile_cols)
{
    assert(bits_ >= 1 && bits_ <= 64);
    assert(tile_cols_ > 0);
}

int
BitSerialFusedChain::addInput(const uint64_t *data, size_t n)
{
    assert(inputs_.empty() || n == n_);
    n_ = n;
    inputs_.push_back({data, nullptr});
    return static_cast<int>(inputs_.size()) - 1;
}

int
BitSerialFusedChain::addHostInput(const void *data, size_t n)
{
    assert(inputs_.empty() || n == n_);
    assert(pimHostToDeviceChunkForBits(bits_) != nullptr &&
           "host inputs need a packed host layout");
    n_ = n;
    inputs_.push_back({nullptr, static_cast<const uint8_t *>(data)});
    return static_cast<int>(inputs_.size()) - 1;
}

const uint64_t *
BitSerialFusedChain::tileWords(const Input &in, size_t base,
                               uint32_t cnt, uint64_t *scratch,
                               BitSerialFusedStats &stats) const
{
    if (in.host == nullptr)
        return in.words + base;
    const uint64_t mask =
        bits_ >= 64 ? ~0ULL : ((1ULL << bits_) - 1);
    const unsigned stride = pimHostStrideForBits(bits_);
    pimHostToDeviceChunkForBits(bits_)(in.host + base * stride,
                                       scratch, 0, cnt, mask);
    stats.host_elems_in += cnt;
    return scratch;
}

void
BitSerialFusedChain::addStep(BitSerialFusedOpKind kind, int rhs_input)
{
    assert(rhs_input >= 0 &&
           rhs_input < static_cast<int>(inputs_.size()));
    steps_.push_back({kind, rhs_input, 0});
}

void
BitSerialFusedChain::addScalarStep(BitSerialFusedOpKind kind,
                                   uint64_t scalar)
{
    const uint64_t mask =
        bits_ >= 64 ? ~0ULL : ((1ULL << bits_) - 1);
    steps_.push_back({kind, -1, scalar & mask});
}

std::vector<MicroProgram>
BitSerialFusedChain::buildPrograms(
    const std::vector<uint32_t> &lhs_rows,
    const std::vector<uint32_t> &dest_rows) const
{
    std::vector<MicroProgram> programs;
    programs.reserve(steps_.size());
    for (size_t k = 0; k < steps_.size(); ++k) {
        const Step &st = steps_[k];
        const uint32_t lhs = lhs_rows[k];
        const uint32_t dst = dest_rows[k];
        const uint32_t rhs =
            st.rhs >= 0 ? inputRow(static_cast<size_t>(st.rhs)) : 0;
        switch (st.kind) {
          case BitSerialFusedOpKind::kAdd:
            programs.push_back(MicroPrograms::add(lhs, rhs, dst, bits_));
            break;
          case BitSerialFusedOpKind::kSub:
            programs.push_back(MicroPrograms::sub(lhs, rhs, dst, bits_));
            break;
          case BitSerialFusedOpKind::kMul:
            programs.push_back(MicroPrograms::mul(lhs, rhs, dst, bits_));
            break;
          case BitSerialFusedOpKind::kAnd:
            programs.push_back(
                MicroPrograms::andOp(lhs, rhs, dst, bits_));
            break;
          case BitSerialFusedOpKind::kOr:
            programs.push_back(
                MicroPrograms::orOp(lhs, rhs, dst, bits_));
            break;
          case BitSerialFusedOpKind::kXor:
            programs.push_back(
                MicroPrograms::xorOp(lhs, rhs, dst, bits_));
            break;
          case BitSerialFusedOpKind::kAddScalar:
            programs.push_back(
                MicroPrograms::addScalar(lhs, dst, bits_, st.scalar));
            break;
          case BitSerialFusedOpKind::kSubScalar:
            programs.push_back(
                MicroPrograms::subScalar(lhs, dst, bits_, st.scalar));
            break;
          case BitSerialFusedOpKind::kMulScalar:
            programs.push_back(
                MicroPrograms::mulScalar(lhs, dst, bits_, st.scalar));
            break;
        }
    }
    return programs;
}

BitSerialFusedStats
BitSerialFusedChain::run(uint64_t *dest)
{
    BitSerialFusedStats stats;
    assert(!inputs_.empty());

    // Per-step row bases: the chain value starts at input 0 and
    // ping-pongs between the two result regions (the mul programs
    // forbid dest aliasing an operand).
    std::vector<uint32_t> lhs_rows(steps_.size());
    std::vector<uint32_t> dest_rows(steps_.size());
    uint32_t value_row = inputRow(0);
    for (size_t k = 0; k < steps_.size(); ++k) {
        lhs_rows[k] = value_row;
        dest_rows[k] = resultRow(k % 2 == 0 ? 0 : 1);
        value_row = dest_rows[k];
    }
    const std::vector<MicroProgram> programs =
        buildPrograms(lhs_rows, dest_rows);

    const uint32_t num_rows =
        static_cast<uint32_t>(inputs_.size() + 2) * bits_;
    BitSerialVm vm(num_rows, tile_cols_);

    std::vector<uint64_t> scratch(tile_cols_);
    for (size_t base = 0; base < n_; base += tile_cols_) {
        const uint32_t cnt = static_cast<uint32_t>(
            std::min<size_t>(tile_cols_, n_ - base));
        // One transpose-in per input per tile; the chain runs on the
        // resident bit-planes, so intermediates never leave the VM.
        // Host inputs convert through the tile scratch — no
        // horizontal staging object is ever materialized.
        for (size_t i = 0; i < inputs_.size(); ++i) {
            vm.writeVerticalBulk(
                0, inputRow(i), bits_,
                tileWords(inputs_[i], base, cnt, scratch.data(), stats),
                cnt);
            stats.elems_in += cnt;
        }
        for (const MicroProgram &program : programs)
            vm.run(program);
        vm.readVerticalBulk(0, value_row, bits_, dest + base, cnt);
        stats.elems_out += cnt;
        ++stats.tiles;
    }
    stats.micro_ops = vm.opsExecuted();
    return stats;
}

BitSerialFusedStats
BitSerialFusedChain::runRedSum(bool is_signed, int64_t *sum)
{
    BitSerialFusedStats stats;
    assert(!inputs_.empty());

    // Identical staging to run(): the chain value ping-pongs between
    // the result regions (or sits at input 0 for a bare reduction).
    std::vector<uint32_t> lhs_rows(steps_.size());
    std::vector<uint32_t> dest_rows(steps_.size());
    uint32_t value_row = inputRow(0);
    for (size_t k = 0; k < steps_.size(); ++k) {
        lhs_rows[k] = value_row;
        dest_rows[k] = resultRow(k % 2 == 0 ? 0 : 1);
        value_row = dest_rows[k];
    }
    const std::vector<MicroProgram> programs =
        buildPrograms(lhs_rows, dest_rows);

    const uint32_t num_rows =
        static_cast<uint32_t>(inputs_.size() + 2) * bits_;
    BitSerialVm vm(num_rows, tile_cols_);

    uint64_t acc = 0;
    std::vector<uint64_t> scratch(tile_cols_);
    for (size_t base = 0; base < n_; base += tile_cols_) {
        const uint32_t cnt = static_cast<uint32_t>(
            std::min<size_t>(tile_cols_, n_ - base));
        for (size_t i = 0; i < inputs_.size(); ++i) {
            vm.writeVerticalBulk(
                0, inputRow(i), bits_,
                tileWords(inputs_[i], base, cnt, scratch.data(), stats),
                cnt);
            stats.elems_in += cnt;
        }
        for (const MicroProgram &program : programs)
            vm.run(program);
        // Reduce in place: popcount only the first cnt columns of
        // each result bit-plane (a short final tile leaves stale
        // columns from the previous tile above cnt). The top plane
        // carries -2^(bits-1) when signed because sign extension of
        // v is v - 2^bits for negative v:
        //   sum = sum_b pop(plane_b)*2^b - pop(plane_top)*2^bits
        //       = sum_{b<top} pop(plane_b)*2^b - pop(plane_top)*2^top
        // (mod 2^64, which also makes bits == 64 fall out naturally).
        for (unsigned b = 0; b < bits_; ++b) {
            uint64_t weight = 1ull << b;
            if (is_signed && b == bits_ - 1)
                weight = ~weight + 1;
            acc += vm.rowPopcount(value_row + b, cnt) * weight;
        }
        ++stats.tiles;
    }
    *sum = static_cast<int64_t>(acc);
    stats.micro_ops = vm.opsExecuted();
    return stats;
}

BitSerialFusedStats
BitSerialFusedChain::runUnfused(uint64_t *dest)
{
    BitSerialFusedStats stats;
    assert(!inputs_.empty());

    // Per-command execution: every step writes its operands into the
    // subarray, runs, and reads the result back out — the transpose
    // tax fusion removes. Fixed rows: lhs at 0, rhs above it, dest
    // above both (never aliasing).
    const uint32_t lhs_row = 0;
    const uint32_t dst_row = 2 * bits_;
    BitSerialVm vm(3 * bits_, tile_cols_);

    // The unfused flow materializes every host input into a
    // horizontal staging object before any command touches it —
    // exactly the copy the fused path elides.
    std::vector<std::vector<uint64_t>> staging;
    std::vector<const uint64_t *> words(inputs_.size());
    for (size_t i = 0; i < inputs_.size(); ++i) {
        const Input &in = inputs_[i];
        if (in.host == nullptr) {
            words[i] = in.words;
            continue;
        }
        const uint64_t mask =
            bits_ >= 64 ? ~0ULL : ((1ULL << bits_) - 1);
        staging.emplace_back(n_);
        pimHostToDeviceChunkForBits(bits_)(
            in.host, staging.back().data(), 0, n_, mask);
        stats.staged_elems += n_;
        words[i] = staging.back().data();
    }

    std::vector<uint64_t> value(words[0], words[0] + n_);
    std::vector<uint64_t> result(n_);
    for (const Step &st : steps_) {
        // Build this command's program with lhs at the conventional
        // base (operand row bases are per-command in unfused mode).
        BitSerialFusedChain one(bits_, tile_cols_);
        one.addInput(value.data(), n_);
        const uint64_t *rhs_data =
            st.rhs >= 0 ? words[static_cast<size_t>(st.rhs)]
                        : nullptr;
        if (rhs_data != nullptr)
            one.inputs_.push_back({rhs_data, nullptr});
        Step local = st;
        if (local.rhs >= 0)
            local.rhs = 1; // rhs is input 1 of this command's layout
        one.steps_.push_back(local);
        const std::vector<MicroProgram> programs = one.buildPrograms(
            {lhs_row}, {dst_row});

        for (size_t base = 0; base < n_; base += tile_cols_) {
            const uint32_t cnt = static_cast<uint32_t>(
                std::min<size_t>(tile_cols_, n_ - base));
            vm.writeVerticalBulk(0, lhs_row, bits_,
                                 value.data() + base, cnt);
            stats.elems_in += cnt;
            if (rhs_data != nullptr) {
                vm.writeVerticalBulk(0, one.inputRow(1), bits_,
                                     rhs_data + base, cnt);
                stats.elems_in += cnt;
            }
            vm.run(programs.front());
            vm.readVerticalBulk(0, dst_row, bits_,
                                result.data() + base, cnt);
            stats.elems_out += cnt;
            ++stats.tiles;
        }
        value.swap(result);
    }
    std::copy(value.begin(), value.end(), dest);
    stats.micro_ops = vm.opsExecuted();
    return stats;
}

} // namespace pimeval
