/**
 * @file
 * Functional virtual machine for the DRAM-AP bit-serial architecture.
 *
 * Models a single subarray as a bit matrix (rows x cols) with the
 * per-column PE registers, and executes microprograms exactly as the
 * memory controller would broadcast them. All columns advance in
 * lockstep — one micro-op touches the full row-wide bit-slice.
 *
 * The VM is the ground truth for the bit-serial performance model:
 * the test suite executes every microprogram here against random
 * vertically laid-out data and checks scalar integer semantics.
 */

#ifndef PIMEVAL_BITSERIAL_BITSERIAL_VM_H_
#define PIMEVAL_BITSERIAL_BITSERIAL_VM_H_

#include <cstdint>
#include <vector>

#include "bitserial/micro_op.h"

namespace pimeval {

/**
 * A simulated subarray with per-column bit-serial PEs.
 *
 * Rows are packed into 64-bit words. Executing a micro-op applies it
 * to every column simultaneously via word-wide bit operations.
 */
class BitSerialVm
{
  public:
    /** Create a subarray of the given geometry (all bits zero). */
    BitSerialVm(uint32_t num_rows, uint32_t num_cols);

    uint32_t numRows() const { return num_rows_; }
    uint32_t numCols() const { return num_cols_; }

    /** Execute a single micro-op. */
    void execute(const MicroOp &op);

    /** Execute a whole microprogram. */
    void run(const MicroProgram &program);

    /** Raw bit access (for tests and data loading). */
    bool getBit(uint32_t row, uint32_t col) const;
    void setBit(uint32_t row, uint32_t col, bool value);

    /**
     * Write an n-bit element vertically: bit i of @p value goes to
     * row base_row + i of column @p col (LSB first).
     */
    void writeVertical(uint32_t col, uint32_t base_row, unsigned n,
                       uint64_t value);

    /** Read an n-bit vertically laid-out element (zero extended). */
    uint64_t readVertical(uint32_t col, uint32_t base_row,
                          unsigned n) const;

    /**
     * Write @p count n-bit elements vertically into consecutive
     * columns starting at @p col_begin: values[j] lands in column
     * col_begin + j exactly as writeVertical would place it (LSB at
     * base_row). Internally transposes 64-element blocks as 64x64 bit
     * matrices so each element bit-plane is written with word-wide
     * stores instead of count*n single-bit pokes. Columns need not be
     * 64-aligned.
     */
    void writeVerticalBulk(uint32_t col_begin, uint32_t base_row,
                           unsigned n, const uint64_t *values,
                           uint32_t count);

    /** Bulk counterpart of readVertical over consecutive columns. */
    void readVerticalBulk(uint32_t col_begin, uint32_t base_row,
                          unsigned n, uint64_t *values,
                          uint32_t count) const;

    /**
     * Population count of the first @p count column bits of @p row.
     * This is the subarray-local reduction primitive: summing a
     * vertically laid-out vector is a weighted sum of its bit-plane
     * popcounts, so a reduction can finish in place without ever
     * transposing elements back out.
     */
    uint64_t rowPopcount(uint32_t row, uint32_t count) const;

    /** Total micro-ops executed (sanity/statistics). */
    uint64_t opsExecuted() const { return ops_executed_; }

  private:
    using Row = std::vector<uint64_t>;

    Row &regRow(BitReg reg) { return regs_[static_cast<size_t>(reg)]; }
    const Row &regRow(BitReg reg) const
    {
        return regs_[static_cast<size_t>(reg)];
    }

    uint32_t num_rows_;
    uint32_t num_cols_;
    uint32_t words_per_row_;
    std::vector<Row> memory_; ///< memory_[row] = packed bits
    std::vector<Row> regs_;   ///< kNumBitRegs packed register rows
    uint64_t ops_executed_ = 0;
};

} // namespace pimeval

#endif // PIMEVAL_BITSERIAL_BITSERIAL_VM_H_
