/**
 * @file
 * Microprogram generators for analog bit-serial PIM.
 *
 * Every high-level operation is synthesized from the AAP / AAP-NOT /
 * TRA primitives, with majority logic doing the computation:
 *   AND(a,b) = MAJ(a,b,0)      OR(a,b)  = MAJ(a,b,1)
 *   carry    = MAJ(a,b,c)      sum      = MAJ(~carry, MAJ(a,b,~c), c)
 *   XOR(a,b) = AND(~AND(a,b), OR(a,b))
 *
 * Operands are vertically laid-out values occupying @c n data rows
 * (base + i holds bit i) and must live at or above
 * AnalogRowGroup::kNumRows; the generators route everything through
 * the designated compute-row group, exposing the copy overhead that
 * makes analog bit-serial costlier per micro-op than the digital
 * DRAM-AP design (paper Section IV).
 */

#ifndef PIMEVAL_BITSERIAL_ANALOG_MICROPROGRAMS_H_
#define PIMEVAL_BITSERIAL_ANALOG_MICROPROGRAMS_H_

#include "bitserial/analog_ops.h"

namespace pimeval {

class AnalogMicroPrograms
{
  public:
    // --- Arithmetic ---
    /** dest = a + b (mod 2^n). */
    static AnalogProgram add(uint32_t a, uint32_t b, uint32_t dest,
                             unsigned n);
    /** dest = a - b (mod 2^n). */
    static AnalogProgram sub(uint32_t a, uint32_t b, uint32_t dest,
                             unsigned n);
    /** dest = a * b (mod 2^n); dest must not alias a or b. */
    static AnalogProgram mul(uint32_t a, uint32_t b, uint32_t dest,
                             unsigned n);

    // --- Logic ---
    static AnalogProgram andOp(uint32_t a, uint32_t b, uint32_t dest,
                               unsigned n);
    static AnalogProgram orOp(uint32_t a, uint32_t b, uint32_t dest,
                              unsigned n);
    static AnalogProgram xorOp(uint32_t a, uint32_t b, uint32_t dest,
                               unsigned n);
    static AnalogProgram xnorOp(uint32_t a, uint32_t b, uint32_t dest,
                                unsigned n);
    static AnalogProgram notOp(uint32_t a, uint32_t dest, unsigned n);

    // --- Comparisons (one result bit at dest) ---
    static AnalogProgram lessThan(uint32_t a, uint32_t b,
                                  uint32_t dest, unsigned n,
                                  bool is_signed);
    static AnalogProgram equal(uint32_t a, uint32_t b, uint32_t dest,
                               unsigned n);

    // --- Data movement / constants ---
    static AnalogProgram copy(uint32_t a, uint32_t dest, unsigned n);
    static AnalogProgram broadcast(uint32_t dest, unsigned n,
                                   uint64_t value);
    static AnalogProgram shiftLeft(uint32_t a, uint32_t dest,
                                   unsigned n, unsigned amount);
    static AnalogProgram shiftRight(uint32_t a, uint32_t dest,
                                    unsigned n, unsigned amount,
                                    bool arithmetic);

  private:
    /** Emit carry = MAJ into S1, sum into dest_row (FA step). */
    static void emitFullAdder(AnalogProgram &p, uint32_t a_row,
                              uint32_t b_row, uint32_t dest_row);
};

} // namespace pimeval

#endif // PIMEVAL_BITSERIAL_ANALOG_MICROPROGRAMS_H_
