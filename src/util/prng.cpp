/**
 * @file
 * xoshiro256** implementation.
 */

#include "util/prng.h"

namespace pimeval {

namespace {

uint64_t
splitMix64(uint64_t &x)
{
    x += 0x9e3779b97f4a7c15ull;
    uint64_t z = x;
    z = (z ^ (z >> 30)) * 0xbf58476d1ce4e5b9ull;
    z = (z ^ (z >> 27)) * 0x94d049bb133111ebull;
    return z ^ (z >> 31);
}

uint64_t
rotl(uint64_t x, int k)
{
    return (x << k) | (x >> (64 - k));
}

} // namespace

Prng::Prng(uint64_t seed)
{
    uint64_t sm = seed;
    for (auto &s : state_)
        s = splitMix64(sm);
}

uint64_t
Prng::next()
{
    const uint64_t result = rotl(state_[1] * 5, 7) * 9;
    const uint64_t t = state_[1] << 17;

    state_[2] ^= state_[0];
    state_[3] ^= state_[1];
    state_[1] ^= state_[2];
    state_[0] ^= state_[3];
    state_[2] ^= t;
    state_[3] = rotl(state_[3], 45);

    return result;
}

int64_t
Prng::nextInt(int64_t lo, int64_t hi)
{
    const uint64_t span = static_cast<uint64_t>(hi - lo) + 1;
    if (span == 0)
        return static_cast<int64_t>(next());
    return lo + static_cast<int64_t>(next() % span);
}

double
Prng::nextDouble()
{
    // 53 high-quality bits into the mantissa.
    return static_cast<double>(next() >> 11) * 0x1.0p-53;
}

std::vector<int>
Prng::intVector(size_t n, int lo, int hi)
{
    std::vector<int> v(n);
    for (auto &x : v)
        x = static_cast<int>(nextInt(lo, hi));
    return v;
}

std::vector<uint8_t>
Prng::byteVector(size_t n)
{
    std::vector<uint8_t> v(n);
    for (auto &x : v)
        x = static_cast<uint8_t>(next() & 0xff);
    return v;
}

} // namespace pimeval
