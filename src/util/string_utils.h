/**
 * @file
 * Small string formatting helpers shared by stats printing and the
 * benchmark table writers.
 */

#ifndef PIMEVAL_UTIL_STRING_UTILS_H_
#define PIMEVAL_UTIL_STRING_UTILS_H_

#include <cstdint>
#include <string>
#include <vector>

namespace pimeval {

/** Format a double with fixed precision. */
std::string formatFixed(double value, int precision);

/** Format a double in engineering style, e.g., "1.23e+04". */
std::string formatSci(double value, int precision);

/** Format bytes as a human-readable quantity ("16.0 MB"). */
std::string formatBytes(uint64_t bytes);

/** Format seconds with an auto-selected unit (ns/us/ms/s). */
std::string formatTime(double seconds);

/** Format joules with an auto-selected unit (pJ/nJ/uJ/mJ/J). */
std::string formatEnergy(double joules);

/** Left-pad / right-pad a string to a width. */
std::string padLeft(const std::string &s, size_t width);
std::string padRight(const std::string &s, size_t width);

/** Split on a delimiter, dropping empty fields. */
std::vector<std::string> splitString(const std::string &s, char delim);

/** Case-insensitive equality. */
bool iequals(const std::string &a, const std::string &b);

} // namespace pimeval

#endif // PIMEVAL_UTIL_STRING_UTILS_H_
