/**
 * @file
 * Minimal 24-bit BMP image container with file I/O and synthetic image
 * generation.
 *
 * The PIMbench image-processing benchmarks (histogram, brightness,
 * image downsampling) operate on uncompressed 24-bit .bmp data. The
 * paper uses a fixed input image; since we have no image assets, we
 * synthesize deterministic images with mixed gradient + noise content
 * (documented substitution, see DESIGN.md).
 */

#ifndef PIMEVAL_UTIL_BMP_IMAGE_H_
#define PIMEVAL_UTIL_BMP_IMAGE_H_

#include <cstdint>
#include <string>
#include <vector>

namespace pimeval {

/**
 * A 24-bit RGB image stored as separate channel planes.
 *
 * Planar storage matches how the PIM benchmarks lay out channels
 * (one PIM object per channel).
 */
class BmpImage
{
  public:
    BmpImage() = default;

    /** Create a black image of the given size. */
    BmpImage(uint32_t width, uint32_t height);

    uint32_t width() const { return width_; }
    uint32_t height() const { return height_; }
    uint64_t numPixels() const
    {
        return static_cast<uint64_t>(width_) * height_;
    }

    /** Channel planes, row-major, one byte per pixel. */
    std::vector<uint8_t> &red() { return red_; }
    std::vector<uint8_t> &green() { return green_; }
    std::vector<uint8_t> &blue() { return blue_; }
    const std::vector<uint8_t> &red() const { return red_; }
    const std::vector<uint8_t> &green() const { return green_; }
    const std::vector<uint8_t> &blue() const { return blue_; }

    uint8_t pixel(uint32_t x, uint32_t y, int channel) const;
    void setPixel(uint32_t x, uint32_t y, uint8_t r, uint8_t g, uint8_t b);

    /**
     * Generate a deterministic synthetic image: smooth gradients plus
     * hash noise, so histograms are non-trivial and downsampling is
     * meaningful.
     */
    static BmpImage synthetic(uint32_t width, uint32_t height,
                              uint64_t seed = 7);

    /** Write an uncompressed 24-bit BMP file. @return false on I/O error. */
    bool save(const std::string &path) const;

    /** Load an uncompressed 24-bit BMP file. @return false on error. */
    bool load(const std::string &path);

    bool operator==(const BmpImage &other) const;

  private:
    uint32_t width_ = 0;
    uint32_t height_ = 0;
    std::vector<uint8_t> red_;
    std::vector<uint8_t> green_;
    std::vector<uint8_t> blue_;
};

} // namespace pimeval

#endif // PIMEVAL_UTIL_BMP_IMAGE_H_
