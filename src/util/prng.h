/**
 * @file
 * Deterministic pseudo-random number generation for workload synthesis.
 *
 * All PIMbench workload generators draw from this PRNG so that every
 * benchmark and test is reproducible run-to-run. The engine is a
 * SplitMix64-seeded xoshiro256** — small, fast, and good enough for
 * workload data (not cryptography).
 */

#ifndef PIMEVAL_UTIL_PRNG_H_
#define PIMEVAL_UTIL_PRNG_H_

#include <cstddef>
#include <cstdint>
#include <vector>

namespace pimeval {

/**
 * xoshiro256** pseudo-random generator with SplitMix64 seeding.
 *
 * Satisfies UniformRandomBitGenerator so it can be used with the
 * standard <random> distributions as well.
 */
class Prng
{
  public:
    using result_type = uint64_t;

    /** Construct with a seed; identical seeds yield identical streams. */
    explicit Prng(uint64_t seed = 0x9e3779b97f4a7c15ull);

    /** Next raw 64-bit value. */
    uint64_t next();

    /** UniformRandomBitGenerator interface. */
    uint64_t operator()() { return next(); }
    static constexpr uint64_t min() { return 0; }
    static constexpr uint64_t max() { return ~0ull; }

    /** Uniform integer in [lo, hi] inclusive. */
    int64_t nextInt(int64_t lo, int64_t hi);

    /** Uniform double in [0, 1). */
    double nextDouble();

    /** Fill a vector with uniform values in [lo, hi]. */
    std::vector<int> intVector(size_t n, int lo, int hi);

    /** Fill a vector of raw bytes. */
    std::vector<uint8_t> byteVector(size_t n);

  private:
    uint64_t state_[4];
};

} // namespace pimeval

#endif // PIMEVAL_UTIL_PRNG_H_
