/**
 * @file
 * BMP image implementation (BITMAPINFOHEADER, 24 bpp, bottom-up).
 */

#include "util/bmp_image.h"

#include <cstring>
#include <fstream>

namespace pimeval {

namespace {

/** Write a little-endian value into a byte buffer. */
void
putLe(std::vector<uint8_t> &buf, size_t offset, uint32_t value, int bytes)
{
    for (int i = 0; i < bytes; ++i)
        buf[offset + i] = static_cast<uint8_t>((value >> (8 * i)) & 0xff);
}

uint32_t
getLe(const std::vector<uint8_t> &buf, size_t offset, int bytes)
{
    uint32_t v = 0;
    for (int i = 0; i < bytes; ++i)
        v |= static_cast<uint32_t>(buf[offset + i]) << (8 * i);
    return v;
}

/** Small integer hash for synthetic noise. */
uint32_t
hash32(uint32_t x)
{
    x ^= x >> 16;
    x *= 0x7feb352du;
    x ^= x >> 15;
    x *= 0x846ca68bu;
    x ^= x >> 16;
    return x;
}

constexpr size_t kFileHeaderSize = 14;
constexpr size_t kInfoHeaderSize = 40;

} // namespace

BmpImage::BmpImage(uint32_t width, uint32_t height)
    : width_(width), height_(height),
      red_(numPixels(), 0), green_(numPixels(), 0), blue_(numPixels(), 0)
{
}

uint8_t
BmpImage::pixel(uint32_t x, uint32_t y, int channel) const
{
    const size_t idx = static_cast<size_t>(y) * width_ + x;
    switch (channel) {
      case 0:
        return red_[idx];
      case 1:
        return green_[idx];
      default:
        return blue_[idx];
    }
}

void
BmpImage::setPixel(uint32_t x, uint32_t y, uint8_t r, uint8_t g, uint8_t b)
{
    const size_t idx = static_cast<size_t>(y) * width_ + x;
    red_[idx] = r;
    green_[idx] = g;
    blue_[idx] = b;
}

BmpImage
BmpImage::synthetic(uint32_t width, uint32_t height, uint64_t seed)
{
    BmpImage img(width, height);
    for (uint32_t y = 0; y < height; ++y) {
        for (uint32_t x = 0; x < width; ++x) {
            const uint32_t noise =
                hash32(static_cast<uint32_t>(seed) ^ (y * 73856093u) ^
                       (x * 19349663u));
            const uint8_t r = static_cast<uint8_t>(
                (x * 255u / (width ? width : 1) + (noise & 0x1f)) & 0xff);
            const uint8_t g = static_cast<uint8_t>(
                (y * 255u / (height ? height : 1) + ((noise >> 8) & 0x1f)) &
                0xff);
            const uint8_t b =
                static_cast<uint8_t>(((x + y) + ((noise >> 16) & 0x3f)) &
                                     0xff);
            img.setPixel(x, y, r, g, b);
        }
    }
    return img;
}

bool
BmpImage::save(const std::string &path) const
{
    const uint32_t row_stride = ((width_ * 3 + 3) / 4) * 4;
    const uint32_t data_size = row_stride * height_;
    const uint32_t file_size =
        static_cast<uint32_t>(kFileHeaderSize + kInfoHeaderSize + data_size);

    std::vector<uint8_t> buf(file_size, 0);
    buf[0] = 'B';
    buf[1] = 'M';
    putLe(buf, 2, file_size, 4);
    putLe(buf, 10, kFileHeaderSize + kInfoHeaderSize, 4);
    putLe(buf, 14, kInfoHeaderSize, 4);
    putLe(buf, 18, width_, 4);
    putLe(buf, 22, height_, 4);
    putLe(buf, 26, 1, 2);   // planes
    putLe(buf, 28, 24, 2);  // bpp
    putLe(buf, 34, data_size, 4);

    size_t off = kFileHeaderSize + kInfoHeaderSize;
    for (uint32_t row = 0; row < height_; ++row) {
        // BMP stores rows bottom-up.
        const uint32_t y = height_ - 1 - row;
        size_t p = off + static_cast<size_t>(row) * row_stride;
        for (uint32_t x = 0; x < width_; ++x) {
            const size_t idx = static_cast<size_t>(y) * width_ + x;
            buf[p++] = blue_[idx];
            buf[p++] = green_[idx];
            buf[p++] = red_[idx];
        }
    }

    std::ofstream out(path, std::ios::binary);
    if (!out)
        return false;
    out.write(reinterpret_cast<const char *>(buf.data()),
              static_cast<std::streamsize>(buf.size()));
    return static_cast<bool>(out);
}

bool
BmpImage::load(const std::string &path)
{
    std::ifstream in(path, std::ios::binary);
    if (!in)
        return false;
    std::vector<uint8_t> buf((std::istreambuf_iterator<char>(in)),
                             std::istreambuf_iterator<char>());
    if (buf.size() < kFileHeaderSize + kInfoHeaderSize)
        return false;
    if (buf[0] != 'B' || buf[1] != 'M')
        return false;
    const uint32_t data_offset = getLe(buf, 10, 4);
    const uint32_t w = getLe(buf, 18, 4);
    const uint32_t h = getLe(buf, 22, 4);
    const uint32_t bpp = getLe(buf, 28, 2);
    if (bpp != 24)
        return false;

    const uint32_t row_stride = ((w * 3 + 3) / 4) * 4;
    if (buf.size() < data_offset + static_cast<size_t>(row_stride) * h)
        return false;

    *this = BmpImage(w, h);
    for (uint32_t row = 0; row < h; ++row) {
        const uint32_t y = h - 1 - row;
        size_t p = data_offset + static_cast<size_t>(row) * row_stride;
        for (uint32_t x = 0; x < w; ++x) {
            const uint8_t b = buf[p++];
            const uint8_t g = buf[p++];
            const uint8_t r = buf[p++];
            setPixel(x, y, r, g, b);
        }
    }
    return true;
}

bool
BmpImage::operator==(const BmpImage &other) const
{
    return width_ == other.width_ && height_ == other.height_ &&
        red_ == other.red_ && green_ == other.green_ &&
        blue_ == other.blue_;
}

} // namespace pimeval
