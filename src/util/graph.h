/**
 * @file
 * Undirected graph container (CSR + adjacency bitmaps) with synthetic
 * generators and a reference triangle counter.
 *
 * The paper's triangle-count benchmark uses a road-network-like input
 * (227,320 nodes / 1,628,268 edges). We synthesize graphs with similar
 * sparsity via an R-MAT-style generator (documented substitution).
 * The PIM mapping follows Wang et al. (AND + popcount + reduction on
 * adjacency row bitmaps), so the container also exposes packed
 * adjacency bitmap rows.
 */

#ifndef PIMEVAL_UTIL_GRAPH_H_
#define PIMEVAL_UTIL_GRAPH_H_

#include <cstdint>
#include <vector>

namespace pimeval {

/**
 * Undirected simple graph in CSR form.
 *
 * Vertices are 0..numNodes-1. Neighbor lists are sorted and
 * deduplicated; self loops are removed.
 */
class Graph
{
  public:
    Graph() = default;

    /** Build from an edge list (u,v pairs); symmetrizes and dedups. */
    static Graph fromEdges(uint32_t num_nodes,
                           const std::vector<std::pair<uint32_t,
                                                       uint32_t>> &edges);

    /**
     * R-MAT style random graph with skewed degree distribution.
     * @param scale      log2 of node count.
     * @param avg_degree average edges per node before dedup.
     */
    static Graph rmat(uint32_t scale, uint32_t avg_degree, uint64_t seed);

    /** Uniform random (Erdos-Renyi style) graph. */
    static Graph uniformRandom(uint32_t num_nodes, uint64_t num_edges,
                               uint64_t seed);

    uint32_t numNodes() const { return num_nodes_; }
    uint64_t numEdges() const { return row_ptr_.empty() ?
        0 : row_ptr_.back() / 2; }

    /** CSR accessors. */
    const std::vector<uint64_t> &rowPtr() const { return row_ptr_; }
    const std::vector<uint32_t> &colIdx() const { return col_idx_; }

    uint64_t degree(uint32_t v) const
    {
        return row_ptr_[v + 1] - row_ptr_[v];
    }

    /**
     * Packed adjacency bitmap for one vertex: numNodes bits in 64-bit
     * words. Used by the PIM triangle-count mapping.
     */
    std::vector<uint64_t> adjacencyBitmap(uint32_t v) const;

    /** Number of 64-bit words per adjacency bitmap row. */
    uint32_t bitmapWords() const { return (num_nodes_ + 63) / 64; }

    /** Reference triangle count (merge-based, exact). */
    uint64_t countTrianglesReference() const;

  private:
    uint32_t num_nodes_ = 0;
    std::vector<uint64_t> row_ptr_;
    std::vector<uint32_t> col_idx_;
};

} // namespace pimeval

#endif // PIMEVAL_UTIL_GRAPH_H_
