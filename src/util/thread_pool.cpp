/**
 * @file
 * Thread pool implementation.
 */

#include "util/thread_pool.h"

#include <algorithm>
#include <atomic>

namespace pimeval {

ThreadPool::ThreadPool(size_t num_threads)
{
    size_t n = num_threads;
    if (n == 0) {
        const unsigned hw = std::thread::hardware_concurrency();
        n = hw > 1 ? hw - 1 : 1;
    }
    workers_.reserve(n);
    for (size_t i = 0; i < n; ++i)
        workers_.emplace_back([this] { workerLoop(); });
}

ThreadPool::~ThreadPool()
{
    {
        std::lock_guard<std::mutex> lock(mutex_);
        stopping_ = true;
    }
    cv_.notify_all();
    for (auto &w : workers_)
        w.join();
}

void
ThreadPool::enqueue(std::function<void()> task)
{
    {
        std::lock_guard<std::mutex> lock(mutex_);
        tasks_.push(std::move(task));
    }
    cv_.notify_one();
}

void
ThreadPool::workerLoop()
{
    for (;;) {
        std::function<void()> task;
        {
            std::unique_lock<std::mutex> lock(mutex_);
            cv_.wait(lock, [this] { return stopping_ || !tasks_.empty(); });
            if (stopping_ && tasks_.empty())
                return;
            task = std::move(tasks_.front());
            tasks_.pop();
        }
        task();
    }
}

void
ThreadPool::parallelFor(size_t begin, size_t end,
                        const std::function<void(size_t)> &body)
{
    if (begin >= end)
        return;

    const size_t total = end - begin;
    const size_t num_workers = workers_.size();
    // Not worth dispatching tiny ranges.
    if (num_workers <= 1 || total < 2 * num_workers) {
        for (size_t i = begin; i < end; ++i)
            body(i);
        return;
    }

    const size_t num_chunks = std::min(num_workers * 4, total);
    const size_t chunk = (total + num_chunks - 1) / num_chunks;

    std::atomic<size_t> remaining{0};
    std::mutex done_mutex;
    std::condition_variable done_cv;

    size_t launched = 0;
    for (size_t c = 0; c < num_chunks; ++c) {
        const size_t lo = begin + c * chunk;
        if (lo >= end)
            break;
        const size_t hi = std::min(end, lo + chunk);
        ++launched;
        remaining.fetch_add(1, std::memory_order_relaxed);
        enqueue([&, lo, hi] {
            for (size_t i = lo; i < hi; ++i)
                body(i);
            if (remaining.fetch_sub(1, std::memory_order_acq_rel) == 1) {
                std::lock_guard<std::mutex> lock(done_mutex);
                done_cv.notify_one();
            }
        });
    }

    if (launched > 0) {
        std::unique_lock<std::mutex> lock(done_mutex);
        done_cv.wait(lock, [&] {
            return remaining.load(std::memory_order_acquire) == 0;
        });
    }
}

} // namespace pimeval
