/**
 * @file
 * Thread pool implementation.
 */

#include "util/thread_pool.h"

namespace pimeval {

namespace {

/**
 * Pool whose workerLoop owns the current thread, if any. Used to run
 * nested parallel-for invocations inline: a worker that blocks waiting
 * for its own pool would deadlock once all workers do it.
 */
thread_local const ThreadPool *tls_worker_pool = nullptr;

} // namespace

ThreadPool::ThreadPool(size_t num_threads,
                       std::function<void()> thread_init)
    : thread_init_(std::move(thread_init))
{
    size_t n = num_threads;
    if (n == 0) {
        const unsigned hw = std::thread::hardware_concurrency();
        n = hw > 1 ? hw - 1 : 1;
    }
    workers_.reserve(n);
    for (size_t i = 0; i < n; ++i)
        workers_.emplace_back([this] { workerLoop(); });
    max_chunks_ = (workers_.size() + 1) * 4;
}

ThreadPool::~ThreadPool()
{
    {
        std::lock_guard<std::mutex> lock(mutex_);
        stopping_ = true;
    }
    cv_.notify_all();
    for (auto &w : workers_)
        w.join();
}

bool
ThreadPool::inWorkerThread() const
{
    return tls_worker_pool == this;
}

void
ThreadPool::enqueue(std::function<void()> task)
{
    {
        std::lock_guard<std::mutex> lock(mutex_);
        tasks_.push(std::move(task));
    }
    cv_.notify_one();
}

void
ThreadPool::workerLoop()
{
    tls_worker_pool = this;
    if (thread_init_)
        thread_init_();
    for (;;) {
        std::function<void()> task;
        {
            std::unique_lock<std::mutex> lock(mutex_);
            cv_.wait(lock, [this] { return stopping_ || !tasks_.empty(); });
            if (stopping_ && tasks_.empty())
                return;
            task = std::move(tasks_.front());
            tasks_.pop();
        }
        task();
    }
}

void
ThreadPool::parallelFor(size_t begin, size_t end,
                        const std::function<void(size_t)> &body)
{
    parallelForChunks(begin, end, [&body](size_t lo, size_t hi) {
        for (size_t i = lo; i < hi; ++i)
            body(i);
    });
}

} // namespace pimeval
