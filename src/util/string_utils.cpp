/**
 * @file
 * String helper implementations.
 */

#include "util/string_utils.h"

#include <algorithm>
#include <cctype>
#include <cmath>
#include <sstream>

namespace pimeval {

std::string
formatFixed(double value, int precision)
{
    std::ostringstream oss;
    oss.setf(std::ios::fixed);
    oss.precision(precision);
    oss << value;
    return oss.str();
}

std::string
formatSci(double value, int precision)
{
    std::ostringstream oss;
    oss.setf(std::ios::scientific);
    oss.precision(precision);
    oss << value;
    return oss.str();
}

std::string
formatBytes(uint64_t bytes)
{
    static const char *units[] = {"B", "KB", "MB", "GB", "TB"};
    double v = static_cast<double>(bytes);
    int u = 0;
    while (v >= 1024.0 && u < 4) {
        v /= 1024.0;
        ++u;
    }
    return formatFixed(v, u == 0 ? 0 : 1) + " " + units[u];
}

std::string
formatTime(double seconds)
{
    const double s = std::fabs(seconds);
    if (s < 1e-6)
        return formatFixed(seconds * 1e9, 3) + " ns";
    if (s < 1e-3)
        return formatFixed(seconds * 1e6, 3) + " us";
    if (s < 1.0)
        return formatFixed(seconds * 1e3, 3) + " ms";
    return formatFixed(seconds, 3) + " s";
}

std::string
formatEnergy(double joules)
{
    const double j = std::fabs(joules);
    if (j < 1e-9)
        return formatFixed(joules * 1e12, 3) + " pJ";
    if (j < 1e-6)
        return formatFixed(joules * 1e9, 3) + " nJ";
    if (j < 1e-3)
        return formatFixed(joules * 1e6, 3) + " uJ";
    if (j < 1.0)
        return formatFixed(joules * 1e3, 3) + " mJ";
    return formatFixed(joules, 3) + " J";
}

std::string
padLeft(const std::string &s, size_t width)
{
    if (s.size() >= width)
        return s;
    return std::string(width - s.size(), ' ') + s;
}

std::string
padRight(const std::string &s, size_t width)
{
    if (s.size() >= width)
        return s;
    return s + std::string(width - s.size(), ' ');
}

std::vector<std::string>
splitString(const std::string &s, char delim)
{
    std::vector<std::string> out;
    std::string field;
    std::istringstream iss(s);
    while (std::getline(iss, field, delim)) {
        if (!field.empty())
            out.push_back(field);
    }
    return out;
}

bool
iequals(const std::string &a, const std::string &b)
{
    return a.size() == b.size() &&
        std::equal(a.begin(), a.end(), b.begin(), [](char x, char y) {
            return std::tolower(static_cast<unsigned char>(x)) ==
                std::tolower(static_cast<unsigned char>(y));
        });
}

} // namespace pimeval
