/**
 * @file
 * A small fixed-size thread pool with chunked parallel-for helpers.
 *
 * PIMeval creates a host thread pool to parallelize functional
 * simulation across PIM cores (paper Listing 3: "Created thread pool
 * with 11 threads"). This reproduction provides the same facility; on
 * small machines it degrades gracefully to sequential execution.
 *
 * The hot path of the simulator uses parallelForChunks: each
 * participating thread (the caller plus every worker) repeatedly
 * claims a contiguous [lo, hi) chunk through a single atomic index —
 * work stealing without per-chunk task allocation — and runs the body
 * directly on the range, so op-specialized kernels keep a tight,
 * vectorizable inner loop (see docs/PERFORMANCE.md).
 */

#ifndef PIMEVAL_UTIL_THREAD_POOL_H_
#define PIMEVAL_UTIL_THREAD_POOL_H_

#include <algorithm>
#include <atomic>
#include <condition_variable>
#include <cstddef>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

#include "core/pim_metrics.h"

namespace pimeval {

/**
 * Fixed-size worker pool with parallel-for helpers.
 *
 * Tasks are void() callables. The pool joins all workers on
 * destruction. Both parallel-for variants block until every chunk
 * completes, and both are safe to call from inside a worker thread of
 * this pool: nested invocations run the whole range inline instead of
 * enqueueing (which would deadlock a fully busy pool).
 */
class ThreadPool
{
  public:
    /**
     * Create a pool.
     * @param num_threads Worker count; 0 means hardware_concurrency - 1
     *                    (minimum 1).
     * @param thread_init Optional hook each worker runs once at
     *                    startup, before taking tasks — used to bind
     *                    thread-local state such as the per-context
     *                    metric domain.
     */
    explicit ThreadPool(size_t num_threads = 0,
                        std::function<void()> thread_init = nullptr);
    ~ThreadPool();

    ThreadPool(const ThreadPool &) = delete;
    ThreadPool &operator=(const ThreadPool &) = delete;

    /** Number of worker threads. */
    size_t size() const { return workers_.size(); }

    /** True when called from one of this pool's worker threads. */
    bool inWorkerThread() const;

    /**
     * Run body(lo, hi) over contiguous chunks covering [begin, end);
     * blocks until done. The caller participates: it claims chunks
     * alongside the workers through a shared atomic index, so an idle
     * pool never stalls the caller and a busy pool still makes
     * progress. Falls back to one inline body(begin, end) call when
     * the range is small, the pool has a single worker, or the caller
     * is itself a worker of this pool (nested use).
     */
    template <typename Body>
    void
    parallelForChunks(size_t begin, size_t end, Body &&body)
    {
        if (begin >= end)
            return;

        const size_t total = end - begin;
        const size_t num_workers = workers_.size();
        if (num_workers <= 1 || total < kMinParallelTotal ||
            inWorkerThread()) {
            PIM_METRIC_COUNT("threadpool.inline_runs", 1);
            body(begin, end);
            return;
        }
        PIM_METRIC_COUNT("threadpool.parallel_for", 1);

        // Enough chunks for balance, but never smaller than the grain
        // (tiny chunks defeat vectorized kernels and thrash the index).
        // The participant-based ceiling depends only on the pool size,
        // so it is computed once at construction (max_chunks_), not
        // per call — fused tapes call in here per chain.
        const size_t num_chunks =
            std::min(max_chunks_,
                     std::max<size_t>(1, total / kMinGrain));
        const size_t chunk = (total + num_chunks - 1) / num_chunks;

        std::atomic<size_t> next{0};
        auto steal = [&]() {
            size_t claimed = 0;
            for (;;) {
                const size_t c =
                    next.fetch_add(1, std::memory_order_relaxed);
                const size_t lo = begin + c * chunk;
                if (lo >= end)
                    return claimed;
                body(lo, std::min(end, lo + chunk));
                ++claimed;
            }
        };

        // One helper task per worker (not per chunk); each drains the
        // shared index until the range is exhausted.
        const size_t helpers = std::min(num_workers, num_chunks);
        std::atomic<size_t> live{helpers};
        std::atomic<size_t> stolen{0};
        std::mutex done_mutex;
        std::condition_variable done_cv;
        for (size_t w = 0; w < helpers; ++w) {
            enqueue([&] {
                stolen.fetch_add(steal(),
                                 std::memory_order_relaxed);
                if (live.fetch_sub(1, std::memory_order_acq_rel) ==
                    1) {
                    std::lock_guard<std::mutex> lock(done_mutex);
                    done_cv.notify_one();
                }
            });
        }

        const size_t caller_chunks = steal();

        // Helpers reference this stack frame; wait for all of them.
        std::unique_lock<std::mutex> lock(done_mutex);
        done_cv.wait(lock, [&] {
            return live.load(std::memory_order_acquire) == 0;
        });
        // Batched per invocation, not per chunk: the claims
        // themselves stay a single relaxed fetch_add.
        if (caller_chunks)
            PIM_METRIC_COUNT("threadpool.chunks_caller",
                             caller_chunks);
        const size_t helper_chunks =
            stolen.load(std::memory_order_relaxed);
        if (helper_chunks)
            PIM_METRIC_COUNT("threadpool.chunks_stolen",
                             helper_chunks);
        PIM_METRIC_COUNT("threadpool.chunks",
                         caller_chunks + helper_chunks);
    }

    /**
     * Run body(i) for each i in [begin, end), distributing contiguous
     * chunks across workers; blocks until done. Prefer
     * parallelForChunks for hot loops: this adapter pays one indirect
     * call per element.
     */
    void parallelFor(size_t begin, size_t end,
                     const std::function<void(size_t)> &body);

  private:
    /** Below this range size dispatch costs more than it saves. */
    static constexpr size_t kMinParallelTotal = 2048;
    /** Minimum elements per claimed chunk. */
    static constexpr size_t kMinGrain = 1024;

    void workerLoop();
    void enqueue(std::function<void()> task);

    /** Chunk-count ceiling, 4x the participants (workers + caller);
     *  cached at construction — the pool size never changes. */
    size_t max_chunks_ = 4;

    std::vector<std::thread> workers_;
    std::function<void()> thread_init_;
    std::queue<std::function<void()>> tasks_;
    std::mutex mutex_;
    std::condition_variable cv_;
    bool stopping_ = false;
};

} // namespace pimeval

#endif // PIMEVAL_UTIL_THREAD_POOL_H_
