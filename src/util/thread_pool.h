/**
 * @file
 * A small fixed-size thread pool.
 *
 * PIMeval creates a host thread pool to parallelize functional
 * simulation across PIM cores (paper Listing 3: "Created thread pool
 * with 11 threads"). This reproduction provides the same facility; on
 * small machines it degrades gracefully to sequential execution.
 */

#ifndef PIMEVAL_UTIL_THREAD_POOL_H_
#define PIMEVAL_UTIL_THREAD_POOL_H_

#include <condition_variable>
#include <cstddef>
#include <functional>
#include <mutex>
#include <queue>
#include <thread>
#include <vector>

namespace pimeval {

/**
 * Fixed-size worker pool with a parallel-for helper.
 *
 * Tasks are void() callables. The pool joins all workers on
 * destruction. parallelFor blocks until every chunk completes.
 */
class ThreadPool
{
  public:
    /**
     * Create a pool.
     * @param num_threads Worker count; 0 means hardware_concurrency - 1
     *                    (minimum 1).
     */
    explicit ThreadPool(size_t num_threads = 0);
    ~ThreadPool();

    ThreadPool(const ThreadPool &) = delete;
    ThreadPool &operator=(const ThreadPool &) = delete;

    /** Number of worker threads. */
    size_t size() const { return workers_.size(); }

    /**
     * Run body(i) for each i in [begin, end), distributing contiguous
     * chunks across workers; blocks until done. Falls back to inline
     * execution when the range is small or the pool has one worker.
     */
    void parallelFor(size_t begin, size_t end,
                     const std::function<void(size_t)> &body);

  private:
    void workerLoop();
    void enqueue(std::function<void()> task);

    std::vector<std::thread> workers_;
    std::queue<std::function<void()>> tasks_;
    std::mutex mutex_;
    std::condition_variable cv_;
    bool stopping_ = false;
};

} // namespace pimeval

#endif // PIMEVAL_UTIL_THREAD_POOL_H_
