/**
 * @file
 * Implementation of logging helpers.
 */

#include "util/logging.h"

#include <cstdio>
#include <iostream>

namespace pimeval {

LogLevel &
LogConfig::thresholdRef()
{
    static LogLevel level = LogLevel::Info;
    return level;
}

LogLevel
LogConfig::threshold()
{
    return thresholdRef();
}

void
LogConfig::setThreshold(LogLevel level)
{
    thresholdRef() = level;
}

void
logMessage(LogLevel level, const std::string &msg)
{
    if (static_cast<int>(level) < static_cast<int>(LogConfig::threshold()))
        return;

    const char *prefix = "";
    switch (level) {
      case LogLevel::Debug:
        prefix = "PIM-Debug: ";
        break;
      case LogLevel::Info:
        prefix = "PIM-Info: ";
        break;
      case LogLevel::Warning:
        prefix = "PIM-Warning: ";
        break;
      case LogLevel::Error:
        prefix = "PIM-Error: ";
        break;
    }
    std::ostream &os =
        (level == LogLevel::Error) ? std::cerr : std::cout;
    os << prefix << msg << "\n";
}

void
logDebug(const std::string &msg)
{
    logMessage(LogLevel::Debug, msg);
}

void
logInfo(const std::string &msg)
{
    logMessage(LogLevel::Info, msg);
}

void
logWarn(const std::string &msg)
{
    logMessage(LogLevel::Warning, msg);
}

namespace {

/** Thread-local last "PIM-Error" message (core/pim_error.h). */
struct LastError
{
    std::string message;
    bool set = false;
};

LastError &
lastError()
{
    thread_local LastError e;
    return e;
}

} // namespace

void
logError(const std::string &msg)
{
    // Recorded before the threshold filter: the last-error state must
    // reflect failures even when error logging is silenced.
    LastError &e = lastError();
    e.message = msg;
    e.set = true;
    logMessage(LogLevel::Error, msg);
}

const char *
lastErrorMessage()
{
    return lastError().message.c_str();
}

bool
hasLastError()
{
    return lastError().set;
}

void
clearLastError()
{
    LastError &e = lastError();
    e.message.clear();
    e.set = false;
}

} // namespace pimeval
