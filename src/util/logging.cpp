/**
 * @file
 * Implementation of logging helpers.
 */

#include "util/logging.h"

#include <cstdio>
#include <iostream>

namespace pimeval {

LogLevel &
LogConfig::thresholdRef()
{
    static LogLevel level = LogLevel::Info;
    return level;
}

LogLevel
LogConfig::threshold()
{
    return thresholdRef();
}

void
LogConfig::setThreshold(LogLevel level)
{
    thresholdRef() = level;
}

void
logMessage(LogLevel level, const std::string &msg)
{
    if (static_cast<int>(level) < static_cast<int>(LogConfig::threshold()))
        return;

    const char *prefix = "";
    switch (level) {
      case LogLevel::Debug:
        prefix = "PIM-Debug: ";
        break;
      case LogLevel::Info:
        prefix = "PIM-Info: ";
        break;
      case LogLevel::Warning:
        prefix = "PIM-Warning: ";
        break;
      case LogLevel::Error:
        prefix = "PIM-Error: ";
        break;
    }
    std::ostream &os =
        (level == LogLevel::Error) ? std::cerr : std::cout;
    os << prefix << msg << "\n";
}

void
logDebug(const std::string &msg)
{
    logMessage(LogLevel::Debug, msg);
}

void
logInfo(const std::string &msg)
{
    logMessage(LogLevel::Info, msg);
}

void
logWarn(const std::string &msg)
{
    logMessage(LogLevel::Warning, msg);
}

void
logError(const std::string &msg)
{
    logMessage(LogLevel::Error, msg);
}

} // namespace pimeval
