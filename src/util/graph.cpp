/**
 * @file
 * Graph implementation: builders, bitmaps, and a reference triangle
 * counter.
 */

#include "util/graph.h"

#include <algorithm>
#include <cassert>

#include "util/prng.h"

namespace pimeval {

Graph
Graph::fromEdges(uint32_t num_nodes,
                 const std::vector<std::pair<uint32_t, uint32_t>> &edges)
{
    // Symmetrize, drop self loops.
    std::vector<std::pair<uint32_t, uint32_t>> sym;
    sym.reserve(edges.size() * 2);
    for (auto [u, v] : edges) {
        assert(u < num_nodes && v < num_nodes);
        if (u == v)
            continue;
        sym.emplace_back(u, v);
        sym.emplace_back(v, u);
    }
    std::sort(sym.begin(), sym.end());
    sym.erase(std::unique(sym.begin(), sym.end()), sym.end());

    Graph g;
    g.num_nodes_ = num_nodes;
    g.row_ptr_.assign(num_nodes + 1, 0);
    for (auto [u, v] : sym) {
        (void)v;
        ++g.row_ptr_[u + 1];
    }
    for (uint32_t v = 0; v < num_nodes; ++v)
        g.row_ptr_[v + 1] += g.row_ptr_[v];
    g.col_idx_.resize(sym.size());
    std::vector<uint64_t> cursor(g.row_ptr_.begin(), g.row_ptr_.end() - 1);
    for (auto [u, v] : sym)
        g.col_idx_[cursor[u]++] = v;
    return g;
}

Graph
Graph::rmat(uint32_t scale, uint32_t avg_degree, uint64_t seed)
{
    const uint32_t n = 1u << scale;
    const uint64_t m = static_cast<uint64_t>(n) * avg_degree / 2;
    Prng rng(seed);

    // Classic R-MAT probabilities (a, b, c, d).
    const double a = 0.57, b = 0.19, c = 0.19;
    std::vector<std::pair<uint32_t, uint32_t>> edges;
    edges.reserve(m);
    for (uint64_t e = 0; e < m; ++e) {
        uint32_t u = 0, v = 0;
        for (uint32_t bit = 0; bit < scale; ++bit) {
            const double p = rng.nextDouble();
            uint32_t ub = 0, vb = 0;
            if (p < a) {
                // quadrant (0,0)
            } else if (p < a + b) {
                vb = 1;
            } else if (p < a + b + c) {
                ub = 1;
            } else {
                ub = 1;
                vb = 1;
            }
            u = (u << 1) | ub;
            v = (v << 1) | vb;
        }
        edges.emplace_back(u, v);
    }
    return fromEdges(n, edges);
}

Graph
Graph::uniformRandom(uint32_t num_nodes, uint64_t num_edges, uint64_t seed)
{
    Prng rng(seed);
    std::vector<std::pair<uint32_t, uint32_t>> edges;
    edges.reserve(num_edges);
    for (uint64_t e = 0; e < num_edges; ++e) {
        const auto u =
            static_cast<uint32_t>(rng.nextInt(0, num_nodes - 1));
        const auto v =
            static_cast<uint32_t>(rng.nextInt(0, num_nodes - 1));
        edges.emplace_back(u, v);
    }
    return fromEdges(num_nodes, edges);
}

std::vector<uint64_t>
Graph::adjacencyBitmap(uint32_t v) const
{
    std::vector<uint64_t> bitmap(bitmapWords(), 0);
    for (uint64_t i = row_ptr_[v]; i < row_ptr_[v + 1]; ++i) {
        const uint32_t u = col_idx_[i];
        bitmap[u / 64] |= (1ull << (u % 64));
    }
    return bitmap;
}

uint64_t
Graph::countTrianglesReference() const
{
    // For each edge (u, v) with u < v, count common neighbors w > v,
    // i.e., ordered triangle enumeration — each triangle counted once.
    uint64_t count = 0;
    for (uint32_t u = 0; u < num_nodes_; ++u) {
        for (uint64_t i = row_ptr_[u]; i < row_ptr_[u + 1]; ++i) {
            const uint32_t v = col_idx_[i];
            if (v <= u)
                continue;
            // Merge-intersect neighbor lists of u and v, counting
            // common neighbors w greater than v.
            uint64_t pu = row_ptr_[u], pv = row_ptr_[v];
            const uint64_t eu = row_ptr_[u + 1], ev = row_ptr_[v + 1];
            while (pu < eu && pv < ev) {
                const uint32_t a = col_idx_[pu], b = col_idx_[pv];
                if (a < b) {
                    ++pu;
                } else if (b < a) {
                    ++pv;
                } else {
                    if (a > v)
                        ++count;
                    ++pu;
                    ++pv;
                }
            }
        }
    }
    return count;
}

} // namespace pimeval
