/**
 * @file
 * ASCII table and CSV emitters used by the benchmark harnesses to print
 * the rows/series corresponding to each paper table and figure.
 */

#ifndef PIMEVAL_UTIL_TABLE_WRITER_H_
#define PIMEVAL_UTIL_TABLE_WRITER_H_

#include <ostream>
#include <string>
#include <vector>

namespace pimeval {

/**
 * Accumulates rows of string cells and prints an aligned ASCII table.
 *
 * Used by every bench/ binary so figure data is readable directly from
 * stdout and machine-readable via writeCsv.
 */
class TableWriter
{
  public:
    /** Create a table with a title and column headers. */
    TableWriter(std::string title, std::vector<std::string> headers);

    /** Append a row; cell count must match the header count. */
    void addRow(std::vector<std::string> cells);

    /** Convenience: format a numeric row (first cell is a label). */
    void addNumericRow(const std::string &label,
                       const std::vector<double> &values, int precision);

    /** Print as an aligned ASCII table. */
    void print(std::ostream &os) const;

    /** Print as CSV (headers first). */
    void writeCsv(std::ostream &os) const;

    /** Number of data rows so far. */
    size_t numRows() const { return rows_.size(); }

    const std::string &title() const { return title_; }

  private:
    std::string title_;
    std::vector<std::string> headers_;
    std::vector<std::vector<std::string>> rows_;
};

} // namespace pimeval

#endif // PIMEVAL_UTIL_TABLE_WRITER_H_
