/**
 * @file
 * Lightweight logging helpers for the PIMeval reproduction.
 *
 * Mirrors the "PIM-Info:" / "PIM-Warning:" / "PIM-Error:" message style
 * used by the original PIMeval output (paper Listing 3).
 */

#ifndef PIMEVAL_UTIL_LOGGING_H_
#define PIMEVAL_UTIL_LOGGING_H_

#include <sstream>
#include <string>

namespace pimeval {

/** Severity levels for simulator log messages. */
enum class LogLevel {
    Debug,
    Info,
    Warning,
    Error,
};

/**
 * Global verbosity control.
 *
 * Messages below the threshold are suppressed. Default is Info so that
 * benchmark output matches the paper's sample listings; tests lower the
 * threshold to Error to keep output clean.
 */
class LogConfig
{
  public:
    static LogLevel threshold();
    static void setThreshold(LogLevel level);

  private:
    static LogLevel &thresholdRef();
};

/** Emit a log message at the given level (newline appended). */
void logMessage(LogLevel level, const std::string &msg);

/** Convenience wrappers matching PIMeval's output prefixes. */
void logDebug(const std::string &msg);
void logInfo(const std::string &msg);
void logWarn(const std::string &msg);

/**
 * Emit a "PIM-Error" message and record it as the calling thread's
 * last error (read back through pimGetLastError/pimGetLastErrorMessage
 * in core/pim_error.h). Recording happens even when the message is
 * suppressed by the verbosity threshold.
 */
void logError(const std::string &msg);

/** Thread-local last-error accessors backing core/pim_error.h. */
const char *lastErrorMessage();
bool hasLastError();
void clearLastError();

/** Format helper: join stream-style arguments into a std::string. */
template <typename... Args>
std::string
strCat(Args &&...args)
{
    std::ostringstream oss;
    (oss << ... << std::forward<Args>(args));
    return oss.str();
}

} // namespace pimeval

#endif // PIMEVAL_UTIL_LOGGING_H_
