/**
 * @file
 * Reference AES-256 ECB implementation.
 *
 * PIMbench includes AES-256 encryption/decryption benchmarks. This
 * reference implementation provides (i) functional verification for
 * the PIM bitsliced mapping and (ii) operation counts for the CPU
 * baseline cost model. It replaces the paper's OpenSSL/AES-NI CPU
 * baseline (documented substitution in DESIGN.md).
 *
 * This code is for simulation/verification only — it is a plain
 * table-based implementation with no side-channel hardening and must
 * not be used to protect real data.
 */

#ifndef PIMEVAL_UTIL_AES_REF_H_
#define PIMEVAL_UTIL_AES_REF_H_

#include <array>
#include <cstddef>
#include <cstdint>
#include <vector>

namespace pimeval {

/**
 * AES-256 in ECB mode (matching the paper's configuration: 16-byte
 * state, 14 rounds).
 */
class Aes256
{
  public:
    static constexpr size_t kKeyBytes = 32;
    static constexpr size_t kBlockBytes = 16;
    static constexpr int kNumRounds = 14;

    /** Expand the 256-bit key into the round-key schedule. */
    explicit Aes256(const std::array<uint8_t, kKeyBytes> &key);

    /** Encrypt a single 16-byte block in place. */
    void encryptBlock(uint8_t block[kBlockBytes]) const;

    /** Decrypt a single 16-byte block in place. */
    void decryptBlock(uint8_t block[kBlockBytes]) const;

    /**
     * ECB encrypt/decrypt of a whole buffer; size must be a multiple
     * of 16 bytes.
     */
    std::vector<uint8_t> encryptEcb(const std::vector<uint8_t> &data) const;
    std::vector<uint8_t> decryptEcb(const std::vector<uint8_t> &data) const;

    /** Forward/inverse S-box access (used by the PIM mapping). */
    static uint8_t sbox(uint8_t x);
    static uint8_t invSbox(uint8_t x);

    /** GF(2^8) multiply — exposed for the PIM MixColumns mapping. */
    static uint8_t gfMul(uint8_t a, uint8_t b);

  private:
    // Round keys: (kNumRounds + 1) * 16 bytes.
    std::array<uint8_t, (kNumRounds + 1) * kBlockBytes> round_keys_;
};

} // namespace pimeval

#endif // PIMEVAL_UTIL_AES_REF_H_
