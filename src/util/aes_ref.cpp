/**
 * @file
 * AES-256 ECB reference implementation (FIPS-197).
 *
 * The S-box is computed at startup from the GF(2^8) inverse plus the
 * affine transform rather than hardcoded, which doubles as a check of
 * the field arithmetic reused by the PIM MixColumns mapping.
 */

#include "util/aes_ref.h"

#include <cassert>
#include <cstring>
#include <stdexcept>

namespace pimeval {

namespace {

/** GF(2^8) multiply with the AES polynomial x^8+x^4+x^3+x+1. */
uint8_t
gmul(uint8_t a, uint8_t b)
{
    uint8_t p = 0;
    for (int i = 0; i < 8; ++i) {
        if (b & 1)
            p ^= a;
        const bool hi = a & 0x80;
        a = static_cast<uint8_t>(a << 1);
        if (hi)
            a ^= 0x1b;
        b >>= 1;
    }
    return p;
}

struct SboxTables
{
    uint8_t fwd[256];
    uint8_t inv[256];

    SboxTables()
    {
        // Multiplicative inverses via brute force (fine at init time).
        uint8_t inverse[256] = {0};
        for (int a = 1; a < 256; ++a) {
            for (int b = 1; b < 256; ++b) {
                if (gmul(static_cast<uint8_t>(a),
                         static_cast<uint8_t>(b)) == 1) {
                    inverse[a] = static_cast<uint8_t>(b);
                    break;
                }
            }
        }
        for (int x = 0; x < 256; ++x) {
            const uint8_t i = inverse[x];
            uint8_t s = 0;
            // Affine transform: s = i ^ rot(i,1..4) ^ 0x63.
            for (int bit = 0; bit < 8; ++bit) {
                const int v = ((i >> bit) & 1) ^
                    ((i >> ((bit + 4) & 7)) & 1) ^
                    ((i >> ((bit + 5) & 7)) & 1) ^
                    ((i >> ((bit + 6) & 7)) & 1) ^
                    ((i >> ((bit + 7) & 7)) & 1) ^
                    ((0x63 >> bit) & 1);
                s |= static_cast<uint8_t>(v << bit);
            }
            fwd[x] = s;
        }
        for (int x = 0; x < 256; ++x)
            inv[fwd[x]] = static_cast<uint8_t>(x);
    }
};

const SboxTables &
tables()
{
    static const SboxTables t;
    return t;
}

const uint8_t kRcon[15] = {0x00, 0x01, 0x02, 0x04, 0x08, 0x10, 0x20, 0x40,
                           0x80, 0x1b, 0x36, 0x6c, 0xd8, 0xab, 0x4d};

} // namespace

uint8_t
Aes256::sbox(uint8_t x)
{
    return tables().fwd[x];
}

uint8_t
Aes256::invSbox(uint8_t x)
{
    return tables().inv[x];
}

uint8_t
Aes256::gfMul(uint8_t a, uint8_t b)
{
    return gmul(a, b);
}

Aes256::Aes256(const std::array<uint8_t, kKeyBytes> &key)
{
    // Key expansion for Nk = 8, Nr = 14 (FIPS-197 section 5.2).
    constexpr int nk = 8;
    constexpr int nb = 4;
    constexpr int nw = nb * (kNumRounds + 1);

    uint8_t w[nw][4];
    std::memcpy(w, key.data(), kKeyBytes);
    for (int i = nk; i < nw; ++i) {
        uint8_t temp[4];
        std::memcpy(temp, w[i - 1], 4);
        if (i % nk == 0) {
            // RotWord + SubWord + Rcon.
            const uint8_t t0 = temp[0];
            temp[0] = static_cast<uint8_t>(sbox(temp[1]) ^ kRcon[i / nk]);
            temp[1] = sbox(temp[2]);
            temp[2] = sbox(temp[3]);
            temp[3] = sbox(t0);
        } else if (i % nk == 4) {
            for (auto &t : temp)
                t = sbox(t);
        }
        for (int b = 0; b < 4; ++b)
            w[i][b] = static_cast<uint8_t>(w[i - nk][b] ^ temp[b]);
    }
    std::memcpy(round_keys_.data(), w, round_keys_.size());
}

namespace {

void
addRoundKey(uint8_t state[16], const uint8_t *rk)
{
    for (int i = 0; i < 16; ++i)
        state[i] ^= rk[i];
}

void
subBytes(uint8_t state[16])
{
    for (int i = 0; i < 16; ++i)
        state[i] = Aes256::sbox(state[i]);
}

void
invSubBytes(uint8_t state[16])
{
    for (int i = 0; i < 16; ++i)
        state[i] = Aes256::invSbox(state[i]);
}

// State is column-major: state[4*c + r] is row r, column c.
void
shiftRows(uint8_t state[16])
{
    uint8_t t[16];
    for (int c = 0; c < 4; ++c)
        for (int r = 0; r < 4; ++r)
            t[4 * c + r] = state[4 * ((c + r) % 4) + r];
    std::memcpy(state, t, 16);
}

void
invShiftRows(uint8_t state[16])
{
    uint8_t t[16];
    for (int c = 0; c < 4; ++c)
        for (int r = 0; r < 4; ++r)
            t[4 * ((c + r) % 4) + r] = state[4 * c + r];
    std::memcpy(state, t, 16);
}

void
mixColumns(uint8_t state[16])
{
    for (int c = 0; c < 4; ++c) {
        uint8_t *col = state + 4 * c;
        const uint8_t a0 = col[0], a1 = col[1], a2 = col[2], a3 = col[3];
        col[0] = static_cast<uint8_t>(gmul(a0, 2) ^ gmul(a1, 3) ^ a2 ^ a3);
        col[1] = static_cast<uint8_t>(a0 ^ gmul(a1, 2) ^ gmul(a2, 3) ^ a3);
        col[2] = static_cast<uint8_t>(a0 ^ a1 ^ gmul(a2, 2) ^ gmul(a3, 3));
        col[3] = static_cast<uint8_t>(gmul(a0, 3) ^ a1 ^ a2 ^ gmul(a3, 2));
    }
}

void
invMixColumns(uint8_t state[16])
{
    for (int c = 0; c < 4; ++c) {
        uint8_t *col = state + 4 * c;
        const uint8_t a0 = col[0], a1 = col[1], a2 = col[2], a3 = col[3];
        col[0] = static_cast<uint8_t>(gmul(a0, 14) ^ gmul(a1, 11) ^
                                      gmul(a2, 13) ^ gmul(a3, 9));
        col[1] = static_cast<uint8_t>(gmul(a0, 9) ^ gmul(a1, 14) ^
                                      gmul(a2, 11) ^ gmul(a3, 13));
        col[2] = static_cast<uint8_t>(gmul(a0, 13) ^ gmul(a1, 9) ^
                                      gmul(a2, 14) ^ gmul(a3, 11));
        col[3] = static_cast<uint8_t>(gmul(a0, 11) ^ gmul(a1, 13) ^
                                      gmul(a2, 9) ^ gmul(a3, 14));
    }
}

} // namespace

void
Aes256::encryptBlock(uint8_t block[kBlockBytes]) const
{
    addRoundKey(block, round_keys_.data());
    for (int round = 1; round < kNumRounds; ++round) {
        subBytes(block);
        shiftRows(block);
        mixColumns(block);
        addRoundKey(block, round_keys_.data() + 16 * round);
    }
    subBytes(block);
    shiftRows(block);
    addRoundKey(block, round_keys_.data() + 16 * kNumRounds);
}

void
Aes256::decryptBlock(uint8_t block[kBlockBytes]) const
{
    addRoundKey(block, round_keys_.data() + 16 * kNumRounds);
    for (int round = kNumRounds - 1; round >= 1; --round) {
        invShiftRows(block);
        invSubBytes(block);
        addRoundKey(block, round_keys_.data() + 16 * round);
        invMixColumns(block);
    }
    invShiftRows(block);
    invSubBytes(block);
    addRoundKey(block, round_keys_.data());
}

std::vector<uint8_t>
Aes256::encryptEcb(const std::vector<uint8_t> &data) const
{
    if (data.size() % kBlockBytes != 0)
        throw std::invalid_argument("AES ECB input not block aligned");
    std::vector<uint8_t> out = data;
    for (size_t off = 0; off < out.size(); off += kBlockBytes)
        encryptBlock(out.data() + off);
    return out;
}

std::vector<uint8_t>
Aes256::decryptEcb(const std::vector<uint8_t> &data) const
{
    if (data.size() % kBlockBytes != 0)
        throw std::invalid_argument("AES ECB input not block aligned");
    std::vector<uint8_t> out = data;
    for (size_t off = 0; off < out.size(); off += kBlockBytes)
        decryptBlock(out.data() + off);
    return out;
}

} // namespace pimeval
