/**
 * @file
 * TableWriter implementation.
 */

#include "util/table_writer.h"

#include <algorithm>
#include <cassert>
#include <sstream>

#include "util/string_utils.h"

namespace pimeval {

TableWriter::TableWriter(std::string title, std::vector<std::string> headers)
    : title_(std::move(title)), headers_(std::move(headers))
{
}

void
TableWriter::addRow(std::vector<std::string> cells)
{
    assert(cells.size() == headers_.size());
    rows_.push_back(std::move(cells));
}

void
TableWriter::addNumericRow(const std::string &label,
                           const std::vector<double> &values, int precision)
{
    std::vector<std::string> cells;
    cells.reserve(values.size() + 1);
    cells.push_back(label);
    for (double v : values)
        cells.push_back(formatFixed(v, precision));
    addRow(std::move(cells));
}

void
TableWriter::print(std::ostream &os) const
{
    std::vector<size_t> widths(headers_.size());
    for (size_t c = 0; c < headers_.size(); ++c)
        widths[c] = headers_[c].size();
    for (const auto &row : rows_)
        for (size_t c = 0; c < row.size(); ++c)
            widths[c] = std::max(widths[c], row[c].size());

    size_t total = 0;
    for (size_t w : widths)
        total += w + 3;

    os << "\n== " << title_ << " ==\n";
    os << std::string(total, '-') << "\n";
    for (size_t c = 0; c < headers_.size(); ++c)
        os << padRight(headers_[c], widths[c]) << " | ";
    os << "\n" << std::string(total, '-') << "\n";
    for (const auto &row : rows_) {
        for (size_t c = 0; c < row.size(); ++c)
            os << padRight(row[c], widths[c]) << " | ";
        os << "\n";
    }
    os << std::string(total, '-') << "\n";
}

void
TableWriter::writeCsv(std::ostream &os) const
{
    auto emit = [&os](const std::vector<std::string> &cells) {
        for (size_t c = 0; c < cells.size(); ++c) {
            if (c)
                os << ",";
            // Quote cells containing commas.
            if (cells[c].find(',') != std::string::npos)
                os << '"' << cells[c] << '"';
            else
                os << cells[c];
        }
        os << "\n";
    };
    emit(headers_);
    for (const auto &row : rows_)
        emit(row);
}

} // namespace pimeval
