/**
 * @file
 * PIM-as-a-service: a multi-tenant batching scheduler fronting a pool
 * of device contexts (API v3; docs/API.md "Serving API").
 *
 * A PimServer owns N worker threads, each pinned to its own
 * PimContext (or a PimShardGroup when shards_per_worker > 1), and a
 * per-tenant job queue per worker. Tenants are assigned to workers
 * round-robin at first submission, so with tenants <= workers every
 * tenant gets a private context — private statistics, trace track,
 * and metric domain (pimContextMetrics on tenantContext()).
 *
 * Scheduling, per worker:
 *  - Admission control: each tenant's queue is bounded
 *    (tenant_queue_cap). A submit past the bound is rejected
 *    immediately — the handle resolves to kRejected, the thread-local
 *    last error is set — and never blocks the submitter.
 *  - Weighted fair queuing: each tenant carries a virtual time that
 *    advances by cost/weight on dispatch; the worker always serves
 *    the backlogged tenant with the smallest virtual time, so over
 *    any backlogged interval tenants share the context in proportion
 *    to their weights. An idle tenant's virtual time is clamped
 *    forward on reactivation — idling banks no credit.
 *  - Coalescing: consecutive-in-queue compatible jobs of one tenant
 *    (same kind/shape/dtype, deadline kBatchable) dispatch as one
 *    batched execution of up to max_batch jobs, amortizing
 *    per-command simulation overhead. Results are bit-identical to
 *    running every job alone (see pim_job.h). kInteractive jobs are
 *    never held for batching.
 *
 * Everything observable lands in serve.* metrics (recorded in the
 * owning tenant's context domain): counters submitted / admitted /
 * rejected / completed / failed / cancelled / batches / batched_jobs,
 * histograms queue_ns / exec_ns / batch_size, and the
 * serve.p99_queue_ns gauge.
 */

#ifndef PIMEVAL_SERVE_PIM_SERVE_H_
#define PIMEVAL_SERVE_PIM_SERVE_H_

#include <cstdint>
#include <map>
#include <memory>
#include <string>

#include "core/pim_context.h"
#include "core/pim_params.h"
#include "serve/pim_job.h"

namespace pimeval {

/** Server construction parameters. */
struct PimServeConfig
{
    /** Device every pool context simulates. */
    PimDeviceConfig device;
    /** Worker threads == contexts (or shard groups). */
    size_t num_workers = 2;
    /** 1 = plain context per worker; >1 = PimShardGroup of this many
     *  shards per worker (oversized tenants). */
    size_t shards_per_worker = 1;
    /** Per-tenant admission bound (queued jobs, per worker). */
    size_t tenant_queue_cap = 256;
    /** Batch-coalescing cap; 1 disables coalescing. */
    size_t max_batch = 16;
    /** Master switch for same-shape coalescing. */
    bool batching = true;
    /** -1 = inherit PIMEVAL_FUSION / runtime config; 0/1 force the
     *  pool contexts' fusion toggle. */
    int fusion = -1;
    /** Workers start blocked until resume() — deterministic tests. */
    bool start_paused = false;
    /** Context labels: "<label_prefix>.w<worker>". */
    std::string label_prefix = "serve";
};

/** Per-tenant serving statistics (also in serve.* metric domains). */
struct PimServeTenantStats
{
    uint64_t submitted = 0;
    uint64_t admitted = 0;
    uint64_t rejected = 0;
    uint64_t completed = 0;
    uint64_t failed = 0;
    uint64_t cancelled = 0;
    uint64_t batched_jobs = 0; ///< completed in a batch of size > 1
    uint64_t queued = 0;       ///< currently waiting
    double weight = 1.0;
    size_t worker = 0; ///< pool worker (= context) serving it
};

/** Whole-server statistics snapshot. */
struct PimServeStats
{
    uint64_t submitted = 0;
    uint64_t admitted = 0;
    uint64_t rejected = 0;
    uint64_t completed = 0;
    uint64_t failed = 0;
    uint64_t cancelled = 0;
    uint64_t batches = 0;      ///< dispatches with > 1 job
    uint64_t batched_jobs = 0; ///< jobs inside those dispatches
    double p50_queue_ns = 0.0;
    double p99_queue_ns = 0.0;
    std::map<std::string, PimServeTenantStats> tenants;
};

/**
 * The job-serving scheduler. Create one with create(); submit() from
 * any number of threads; destruction drains in-flight jobs, stops the
 * workers, and destroys the pool contexts.
 */
class PimServer
{
  public:
    /** Build the pool and start the workers. @return nullptr on
     *  failure (pimGetLastError has the detail). */
    static std::unique_ptr<PimServer>
    create(const PimServeConfig &config);

    ~PimServer();

    PimServer(const PimServer &) = delete;
    PimServer &operator=(const PimServer &) = delete;

    /**
     * Submit a job. Never blocks: the result is either an admitted
     * handle (kQueued and onward) or a handle already resolved to
     * kRejected with error() describing why (invalid spec, or the
     * tenant's queue at its admission bound).
     */
    PimJobHandle submit(const PimJobSpec &spec);

    /** Set a tenant's fair-queuing weight (> 0; default 1.0). Creates
     *  the tenant record if it never submitted. */
    PimStatus setTenantWeight(const std::string &tenant, double weight);

    /** Stop dispatching (queued jobs stay queued; running jobs
     *  finish). Submission stays open. */
    void pause();

    /** Resume dispatching. */
    void resume();

    /** Block until every admitted job has reached a final state. */
    void drain();

    /** Aggregate + per-tenant counters and queue-delay percentiles. */
    PimServeStats stats() const;

    /**
     * The pool context serving @p tenant (nullptr for unknown tenants
     * or sharded pools). Feed it to pimContextMetrics /
     * pimContextLabel for the tenant's isolated view.
     */
    PimContext tenantContext(const std::string &tenant) const;

    size_t numWorkers() const;

  private:
    PimServer();
    struct Impl;
    std::unique_ptr<Impl> impl_;
};

// ---------------------------------------------------------------------------
// Process-wide convenience instance (the pimServe* C-style surface).
// ---------------------------------------------------------------------------

/** Start the process-wide server (fails if one is running). */
PimStatus pimServeStart(const PimServeConfig &config);

/** Whether the process-wide server is running. */
bool pimServeActive();

/**
 * Submit to the process-wide server — the single entry point of the
 * v3 API. Invalid handle (valid() == false) with the thread-local
 * last error set when no server is running.
 */
PimJobHandle pimServeSubmit(const PimJobSpec &spec);

/** Drain and stop the process-wide server. */
PimStatus pimServeStop();

/** The process-wide server (nullptr when not running). */
PimServer *pimServeInstance();

} // namespace pimeval

#endif // PIMEVAL_SERVE_PIM_SERVE_H_
