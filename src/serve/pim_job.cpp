/**
 * @file
 * Job validation, costing, and the direct (unserved) execution path.
 *
 * pimJobRunDirect is the reference semantics of every job kind: the
 * server's unbatched dispatch calls exactly this function, and the
 * batched paths are tested bit-identical against it.
 */

#include "serve/pim_job.h"

#include "core/pim_api.h"
#include "core/pim_error.h"
#include "util/logging.h"

namespace pimeval {

uint64_t
pimJobCostElems(const PimJobSpec &spec)
{
    if (spec.kind == PimJobKind::kGemv)
        return spec.n * spec.cols;
    return spec.n;
}

bool
pimJobValidate(const PimJobSpec &spec, std::string *why)
{
    const auto reject = [why](const char *reason) {
        if (why)
            *why = reason;
        return false;
    };
    if (spec.dtype != PimDataType::PIM_INT32)
        return reject("only PIM_INT32 jobs are servable");
    if (spec.n == 0)
        return reject("zero-element job");
    if (!spec.a || !spec.b)
        return reject("null operand pointer");
    if (spec.kind == PimJobKind::kGemv && spec.cols == 0)
        return reject("kGemv requires cols > 0");
    if (spec.tenant.empty())
        return reject("empty tenant id");
    return true;
}

namespace {

/** Signed scalar bit-cast for the pimOpScalar/pimScaledAdd ABI. */
uint64_t
sext(int32_t v)
{
    return static_cast<uint64_t>(static_cast<int64_t>(v));
}

/** Frees every valid id (error-path unwinding and the happy path). */
struct ObjGuard
{
    PimObjId ids[3] = {-1, -1, -1};
    ~ObjGuard()
    {
        for (const PimObjId id : ids)
            if (id >= 0)
                pimFree(id);
    }
};

/** a-vector, b-vector, dest triple (dest associated with a). */
bool
allocTriple(uint64_t n, ObjGuard &g)
{
    g.ids[0] = pimAlloc(PimAllocEnum::PIM_ALLOC_AUTO, n, 32,
                        PimDataType::PIM_INT32);
    if (g.ids[0] < 0)
        return false;
    g.ids[1] =
        pimAllocAssociated(32, g.ids[0], PimDataType::PIM_INT32);
    g.ids[2] =
        pimAllocAssociated(32, g.ids[0], PimDataType::PIM_INT32);
    return g.ids[1] >= 0 && g.ids[2] >= 0;
}

PimStatus
runElementwise(const PimJobSpec &spec, PimJobOutput *out)
{
    ObjGuard g;
    if (!allocTriple(spec.n, g))
        return PimStatus::PIM_ERROR;
    const bool fused = pimGetFusionEnabled();
    if (fused)
        pimBeginFusion();
    PimStatus status = pimCopyHostToDevice(spec.a, g.ids[0]);
    if (status == PimStatus::PIM_OK)
        status = pimCopyHostToDevice(spec.b, g.ids[1]);
    if (status == PimStatus::PIM_OK) {
        switch (spec.kind) {
          case PimJobKind::kVecAdd:
            status = pimAdd(g.ids[0], g.ids[1], g.ids[2]);
            break;
          case PimJobKind::kVecMul:
            status = pimMul(g.ids[0], g.ids[1], g.ids[2]);
            break;
          default: // kVecScaledAdd
            status = pimScaledAdd(g.ids[0], g.ids[1], g.ids[2],
                                  spec.scalar);
            break;
        }
    }
    if (fused)
        pimEndFusion();
    if (status != PimStatus::PIM_OK)
        return status;
    out->values.assign(spec.n, 0);
    return pimCopyDeviceToHost(g.ids[2], out->values.data());
}

PimStatus
runDot(const PimJobSpec &spec, PimJobOutput *out)
{
    ObjGuard g;
    if (!allocTriple(spec.n, g))
        return PimStatus::PIM_ERROR;
    const bool fused = pimGetFusionEnabled();
    if (fused)
        pimBeginFusion();
    PimStatus status = pimCopyHostToDevice(spec.a, g.ids[0]);
    if (status == PimStatus::PIM_OK)
        status = pimCopyHostToDevice(spec.b, g.ids[1]);
    if (status == PimStatus::PIM_OK)
        status = pimMul(g.ids[0], g.ids[1], g.ids[2]);
    int64_t result = 0;
    if (status == PimStatus::PIM_OK)
        status = pimRedSum(g.ids[2], &result);
    if (fused)
        pimEndFusion(); // deferred reduce results land here
    if (status == PimStatus::PIM_OK)
        out->scalar = result;
    return status;
}

PimStatus
runGemv(const PimJobSpec &spec, PimJobOutput *out)
{
    ObjGuard g;
    g.ids[0] = pimAlloc(PimAllocEnum::PIM_ALLOC_AUTO, spec.n, 32,
                        PimDataType::PIM_INT32); // accumulator
    if (g.ids[0] < 0)
        return PimStatus::PIM_ERROR;
    g.ids[1] =
        pimAllocAssociated(32, g.ids[0], PimDataType::PIM_INT32);
    if (g.ids[1] < 0)
        return PimStatus::PIM_ERROR;
    const bool fused = pimGetFusionEnabled();
    if (fused)
        pimBeginFusion();
    PimStatus status = pimBroadcastInt(g.ids[0], 0);
    for (uint64_t j = 0; status == PimStatus::PIM_OK && j < spec.cols;
         ++j) {
        status = pimCopyHostToDevice(spec.a + j * spec.n, g.ids[1]);
        if (status == PimStatus::PIM_OK)
            status = pimScaledAdd(g.ids[1], g.ids[0], g.ids[0],
                                  sext(spec.b[j]));
    }
    if (fused)
        pimEndFusion();
    if (status != PimStatus::PIM_OK)
        return status;
    out->values.assign(spec.n, 0);
    return pimCopyDeviceToHost(g.ids[0], out->values.data());
}

} // namespace

PimStatus
pimJobRunDirect(const PimJobSpec &spec, PimJobOutput *out)
{
    if (!out)
        return fail("pimJobRunDirect: null output");
    std::string why;
    if (!pimJobValidate(spec, &why))
        return fail("pimJobRunDirect: " + why);
    switch (spec.kind) {
      case PimJobKind::kVecAdd:
      case PimJobKind::kVecMul:
      case PimJobKind::kVecScaledAdd:
        return runElementwise(spec, out);
      case PimJobKind::kDot:
        return runDot(spec, out);
      case PimJobKind::kGemv:
        return runGemv(spec, out);
    }
    return fail("pimJobRunDirect: unknown job kind");
}

} // namespace pimeval
