/**
 * @file
 * The PIM-as-a-service scheduler: context pool, admission control,
 * weighted fair queuing, and same-shape batch coalescing.
 *
 * Locking, least to most local:
 *  - Impl::tenants_mutex guards the tenant registry (name -> record,
 *    worker assignment). Taken before any worker mutex, never after.
 *  - Worker::mutex guards that worker's tenant queues, WFQ virtual
 *    times, and weights. Held only for queue surgery — execution runs
 *    unlocked.
 *  - PimJob::mutex + the atomic state guard one job's result (see
 *    serve_internal.h).
 *
 * A queued job is claimed (or cancelled) by a compare-exchange on its
 * state, so the dispatching worker and a cancelling handle can never
 * both win. Cancelled jobs stay in the deque until the worker reaps
 * them — admission slots free at reap time.
 */

#include "serve/pim_serve.h"

#include <algorithm>
#include <condition_variable>
#include <cstring>
#include <deque>
#include <thread>
#include <vector>

#include "core/pim_api.h"
#include "core/pim_error.h"
#include "core/pim_metrics.h"
#include "core/pim_shard.h"
#include "serve/serve_internal.h"

namespace pimeval {

using serve_detail::PimJob;
using serve_detail::isFinal;
using serve_detail::nowNs;

// ---------------------------------------------------------------------------
// PimJobHandle
// ---------------------------------------------------------------------------

PimJobState
PimJobHandle::poll() const
{
    return job_ ? job_->state.load(std::memory_order_acquire)
                : PimJobState::kInvalid;
}

PimJobState
PimJobHandle::wait() const
{
    if (!job_)
        return PimJobState::kInvalid;
    std::unique_lock<std::mutex> lock(job_->mutex);
    job_->cv.wait(lock, [this] {
        return isFinal(job_->state.load(std::memory_order_acquire));
    });
    return job_->state.load(std::memory_order_relaxed);
}

bool
PimJobHandle::cancel() const
{
    if (!job_)
        return false;
    PimJobState expected = PimJobState::kQueued;
    if (!job_->state.compare_exchange_strong(
            expected, PimJobState::kCancelled,
            std::memory_order_acq_rel))
        return false; // already dispatched, finished, or rejected
    {
        std::lock_guard<std::mutex> lock(job_->mutex);
        job_->error = "serve: job cancelled";
        job_->complete_ns.store(nowNs(), std::memory_order_relaxed);
        job_->cv.notify_all();
    }
    return true;
}

const PimJobOutput &
PimJobHandle::output() const
{
    static const PimJobOutput kEmpty;
    if (!job_)
        return kEmpty;
    wait();
    return job_->out;
}

const char *
PimJobHandle::error() const
{
    if (!job_)
        return "";
    std::lock_guard<std::mutex> lock(job_->mutex);
    return job_->error.c_str();
}

uint64_t
PimJobHandle::queueNs() const
{
    if (!job_)
        return 0;
    const uint64_t d =
        job_->dispatch_ns.load(std::memory_order_relaxed);
    return d ? d - job_->submit_ns : 0;
}

uint64_t
PimJobHandle::latencyNs() const
{
    if (!job_)
        return 0;
    const uint64_t c =
        job_->complete_ns.load(std::memory_order_relaxed);
    return c ? c - job_->submit_ns : 0;
}

uint64_t
PimJobHandle::batchSize() const
{
    return job_ ? job_->batch_size.load(std::memory_order_relaxed)
                : 0;
}

uint64_t
PimJobHandle::completionSeq() const
{
    return job_ ? job_->completion_seq.load(std::memory_order_relaxed)
                : 0;
}

// ---------------------------------------------------------------------------
// Helpers
// ---------------------------------------------------------------------------

namespace {

/** Pin serve.* metric updates to a context's domain for one scope. */
class MetricDomainScope
{
  public:
    explicit MetricDomainScope(int slot)
        : prev_(PimMetrics::threadDomain())
    {
        PimMetrics::setThreadDomain(slot);
    }
    ~MetricDomainScope() { PimMetrics::setThreadDomain(prev_); }

    MetricDomainScope(const MetricDomainScope &) = delete;
    MetricDomainScope &operator=(const MetricDomainScope &) = delete;

  private:
    int prev_;
};

/** Two jobs coalesce iff the device-side command stream they need is
 *  shape-identical (per-job scalars are handled by the coefficient
 *  decomposition, so the scalar is *not* part of the key). */
bool
sameBatchShape(const PimJobSpec &a, const PimJobSpec &b)
{
    return a.kind == b.kind && a.dtype == b.dtype && a.n == b.n &&
           a.cols == b.cols;
}

bool
isElementwise(PimJobKind kind)
{
    return kind == PimJobKind::kVecAdd ||
           kind == PimJobKind::kVecMul ||
           kind == PimJobKind::kVecScaledAdd;
}

uint64_t
sext(int32_t v)
{
    return static_cast<uint64_t>(static_cast<int64_t>(v));
}

/** Frees tracked objects of the pinned context in reverse order. */
struct CtxObjGuard
{
    std::vector<PimObjId> ids;
    PimObjId
    track(PimObjId id)
    {
        if (id >= 0)
            ids.push_back(id);
        return id;
    }
    ~CtxObjGuard()
    {
        for (auto it = ids.rbegin(); it != ids.rend(); ++it)
            pimFree(*it);
    }
};

/** Same, for sharded allocations of one group. */
struct GroupObjGuard
{
    PimShardGroup *group;
    std::vector<PimObjId> ids;
    explicit GroupObjGuard(PimShardGroup *g) : group(g) {}
    PimObjId
    track(PimObjId id)
    {
        if (id >= 0)
            ids.push_back(id);
        return id;
    }
    ~GroupObjGuard()
    {
        for (auto it = ids.rbegin(); it != ids.rend(); ++it)
            group->free(*it);
    }
};

/** The per-job int32 multiplier of the coefficient decomposition
 *  (the device masks the scalar to the element width the same way). */
int32_t
coeffOf(const PimJobSpec &spec)
{
    return static_cast<int32_t>(
        static_cast<uint32_t>(spec.scalar & 0xffffffffull));
}

// ---------------------------------------------------------------------------
// Batched executors, single-context pool (ranged copies concatenate
// the B same-shape jobs into one object; one command covers all B).
// Bit-identity with the direct path is argued per kind in pim_job.h.
// ---------------------------------------------------------------------------

PimStatus
runBatchElementwiseCtx(const std::vector<std::shared_ptr<PimJob>> &batch)
{
    const PimJobSpec &head = batch[0]->spec;
    const uint64_t n = head.n;
    const uint64_t total = n * batch.size();
    CtxObjGuard g;
    const PimObjId oa = g.track(
        pimAlloc(PimAllocEnum::PIM_ALLOC_AUTO, total, 32,
                 PimDataType::PIM_INT32));
    if (oa < 0)
        return PimStatus::PIM_ERROR;
    const PimObjId ob = g.track(
        pimAllocAssociated(32, oa, PimDataType::PIM_INT32));
    const PimObjId od = g.track(
        pimAllocAssociated(32, oa, PimDataType::PIM_INT32));
    if (ob < 0 || od < 0)
        return PimStatus::PIM_ERROR;

    bool same_scalar = true;
    for (const auto &j : batch)
        same_scalar &= j->spec.scalar == head.scalar;

    const bool fused = pimGetFusionEnabled();
    if (fused)
        pimBeginFusion();
    PimStatus status = PimStatus::PIM_OK;
    for (size_t i = 0; status == PimStatus::PIM_OK && i < batch.size();
         ++i)
        status = pimCopyHostToDevice(batch[i]->spec.a, oa, i * n,
                                     (i + 1) * n);
    for (size_t i = 0; status == PimStatus::PIM_OK && i < batch.size();
         ++i)
        status = pimCopyHostToDevice(batch[i]->spec.b, ob, i * n,
                                     (i + 1) * n);
    if (status == PimStatus::PIM_OK) {
        switch (head.kind) {
          case PimJobKind::kVecAdd:
            status = pimAdd(oa, ob, od);
            break;
          case PimJobKind::kVecMul:
            status = pimMul(oa, ob, od);
            break;
          default: // kVecScaledAdd
            if (same_scalar) {
                status = pimScaledAdd(oa, ob, od, head.scalar);
            } else {
                // a*s + b == (a .* coeff) + b in wraparound int32, so
                // per-job scalars become one coefficient vector.
                std::vector<int32_t> coeff(total);
                for (size_t i = 0; i < batch.size(); ++i)
                    std::fill(coeff.begin() + i * n,
                              coeff.begin() + (i + 1) * n,
                              coeffOf(batch[i]->spec));
                const PimObjId oc = g.track(pimAllocAssociated(
                    32, oa, PimDataType::PIM_INT32));
                const PimObjId ot = g.track(pimAllocAssociated(
                    32, oa, PimDataType::PIM_INT32));
                if (oc < 0 || ot < 0)
                    status = PimStatus::PIM_ERROR;
                if (status == PimStatus::PIM_OK)
                    status = pimCopyHostToDevice(coeff.data(), oc);
                if (status == PimStatus::PIM_OK)
                    status = pimMul(oa, oc, ot);
                if (status == PimStatus::PIM_OK)
                    status = pimAdd(ot, ob, od);
            }
            break;
        }
    }
    if (fused)
        pimEndFusion();
    for (size_t i = 0; status == PimStatus::PIM_OK && i < batch.size();
         ++i) {
        batch[i]->out.values.assign(n, 0);
        status = pimCopyDeviceToHost(od, batch[i]->out.values.data(),
                                     i * n, (i + 1) * n);
    }
    return status;
}

PimStatus
runBatchDotCtx(const std::vector<std::shared_ptr<PimJob>> &batch)
{
    const uint64_t n = batch[0]->spec.n;
    const uint64_t total = n * batch.size();
    CtxObjGuard g;
    const PimObjId oa = g.track(
        pimAlloc(PimAllocEnum::PIM_ALLOC_AUTO, total, 32,
                 PimDataType::PIM_INT32));
    if (oa < 0)
        return PimStatus::PIM_ERROR;
    const PimObjId ob = g.track(
        pimAllocAssociated(32, oa, PimDataType::PIM_INT32));
    const PimObjId op = g.track(
        pimAllocAssociated(32, oa, PimDataType::PIM_INT32));
    if (ob < 0 || op < 0)
        return PimStatus::PIM_ERROR;

    const bool fused = pimGetFusionEnabled();
    if (fused)
        pimBeginFusion();
    PimStatus status = PimStatus::PIM_OK;
    for (size_t i = 0; status == PimStatus::PIM_OK && i < batch.size();
         ++i)
        status = pimCopyHostToDevice(batch[i]->spec.a, oa, i * n,
                                     (i + 1) * n);
    for (size_t i = 0; status == PimStatus::PIM_OK && i < batch.size();
         ++i)
        status = pimCopyHostToDevice(batch[i]->spec.b, ob, i * n,
                                     (i + 1) * n);
    if (status == PimStatus::PIM_OK)
        status = pimMul(oa, ob, op);
    if (fused)
        pimEndFusion();
    // Each job's products occupy its slice; the ranged reduction sums
    // exactly the n products the direct path's full pimRedSum sums.
    for (size_t i = 0; status == PimStatus::PIM_OK && i < batch.size();
         ++i)
        status = pimRedSumRanged(op, i * n, (i + 1) * n,
                                 &batch[i]->out.scalar);
    return status;
}

PimStatus
runBatchGemvCtx(const std::vector<std::shared_ptr<PimJob>> &batch)
{
    const PimJobSpec &head = batch[0]->spec;
    const uint64_t n = head.n;
    const uint64_t total = n * batch.size();
    CtxObjGuard g;
    const PimObjId acc = g.track(
        pimAlloc(PimAllocEnum::PIM_ALLOC_AUTO, total, 32,
                 PimDataType::PIM_INT32));
    if (acc < 0)
        return PimStatus::PIM_ERROR;
    const PimObjId col = g.track(
        pimAllocAssociated(32, acc, PimDataType::PIM_INT32));
    const PimObjId oc = g.track(
        pimAllocAssociated(32, acc, PimDataType::PIM_INT32));
    const PimObjId ot = g.track(
        pimAllocAssociated(32, acc, PimDataType::PIM_INT32));
    if (col < 0 || oc < 0 || ot < 0)
        return PimStatus::PIM_ERROR;

    std::vector<int32_t> coeff(total);
    const bool fused = pimGetFusionEnabled();
    if (fused)
        pimBeginFusion();
    PimStatus status = pimBroadcastInt(acc, 0);
    for (uint64_t j = 0; status == PimStatus::PIM_OK && j < head.cols;
         ++j) {
        for (size_t i = 0;
             status == PimStatus::PIM_OK && i < batch.size(); ++i) {
            status = pimCopyHostToDevice(batch[i]->spec.a + j * n,
                                         col, i * n, (i + 1) * n);
            std::fill(coeff.begin() + i * n,
                      coeff.begin() + (i + 1) * n,
                      batch[i]->spec.b[j]);
        }
        // acc += col * b[j], with the per-job scalar as a vector (the
        // same wraparound mul+add the direct scaledAdd performs).
        if (status == PimStatus::PIM_OK)
            status = pimCopyHostToDevice(coeff.data(), oc);
        if (status == PimStatus::PIM_OK)
            status = pimMul(col, oc, ot);
        if (status == PimStatus::PIM_OK)
            status = pimAdd(ot, acc, acc);
    }
    if (fused)
        pimEndFusion();
    for (size_t i = 0; status == PimStatus::PIM_OK && i < batch.size();
         ++i) {
        batch[i]->out.values.assign(n, 0);
        status = pimCopyDeviceToHost(acc, batch[i]->out.values.data(),
                                     i * n, (i + 1) * n);
    }
    return status;
}

// ---------------------------------------------------------------------------
// Sharded-pool executors. PimShardGroup copies are whole-object, so
// batches concatenate through host staging buffers instead of ranged
// copies; per-job ranged reductions are unavailable, hence kDot is
// never coalesced on sharded pools (see kindBatchable).
// ---------------------------------------------------------------------------

PimStatus
runDirectSharded(PimShardGroup &group, const PimJobSpec &spec,
                 PimJobOutput *out)
{
    GroupObjGuard g(&group);
    switch (spec.kind) {
      case PimJobKind::kVecAdd:
      case PimJobKind::kVecMul:
      case PimJobKind::kVecScaledAdd: {
        const PimObjId oa = g.track(
            group.alloc(PimAllocEnum::PIM_ALLOC_AUTO, spec.n,
                        PimDataType::PIM_INT32));
        if (oa < 0)
            return PimStatus::PIM_ERROR;
        const PimObjId ob =
            g.track(group.allocAssociated(oa, PimDataType::PIM_INT32));
        const PimObjId od =
            g.track(group.allocAssociated(oa, PimDataType::PIM_INT32));
        if (ob < 0 || od < 0)
            return PimStatus::PIM_ERROR;
        PimStatus status = group.copyHostToDevice(spec.a, oa);
        if (status == PimStatus::PIM_OK)
            status = group.copyHostToDevice(spec.b, ob);
        if (status == PimStatus::PIM_OK) {
            if (spec.kind == PimJobKind::kVecScaledAdd)
                status = group.executeScaledAdd(oa, ob, od,
                                                spec.scalar);
            else
                status = group.executeBinary(
                    spec.kind == PimJobKind::kVecAdd
                        ? PimCmdEnum::kAdd
                        : PimCmdEnum::kMul,
                    oa, ob, od);
        }
        if (status != PimStatus::PIM_OK)
            return status;
        out->values.assign(spec.n, 0);
        return group.copyDeviceToHost(od, out->values.data());
      }
      case PimJobKind::kDot: {
        const PimObjId oa = g.track(
            group.alloc(PimAllocEnum::PIM_ALLOC_AUTO, spec.n,
                        PimDataType::PIM_INT32));
        if (oa < 0)
            return PimStatus::PIM_ERROR;
        const PimObjId ob =
            g.track(group.allocAssociated(oa, PimDataType::PIM_INT32));
        const PimObjId op =
            g.track(group.allocAssociated(oa, PimDataType::PIM_INT32));
        if (ob < 0 || op < 0)
            return PimStatus::PIM_ERROR;
        PimStatus status = group.copyHostToDevice(spec.a, oa);
        if (status == PimStatus::PIM_OK)
            status = group.copyHostToDevice(spec.b, ob);
        if (status == PimStatus::PIM_OK)
            status = group.executeBinary(PimCmdEnum::kMul, oa, ob, op);
        if (status == PimStatus::PIM_OK)
            status = group.executeRedSum(op, &out->scalar);
        return status;
      }
      case PimJobKind::kGemv: {
        const PimObjId acc = g.track(
            group.alloc(PimAllocEnum::PIM_ALLOC_AUTO, spec.n,
                        PimDataType::PIM_INT32));
        if (acc < 0)
            return PimStatus::PIM_ERROR;
        const PimObjId col = g.track(
            group.allocAssociated(acc, PimDataType::PIM_INT32));
        if (col < 0)
            return PimStatus::PIM_ERROR;
        PimStatus status = group.executeBroadcast(acc, 0);
        for (uint64_t j = 0;
             status == PimStatus::PIM_OK && j < spec.cols; ++j) {
            status = group.copyHostToDevice(spec.a + j * spec.n, col);
            if (status == PimStatus::PIM_OK)
                status = group.executeScaledAdd(col, acc, acc,
                                                sext(spec.b[j]));
        }
        if (status != PimStatus::PIM_OK)
            return status;
        out->values.assign(spec.n, 0);
        return group.copyDeviceToHost(acc, out->values.data());
      }
    }
    return fail("serve: unknown job kind");
}

PimStatus
runBatchSharded(PimShardGroup &group,
                const std::vector<std::shared_ptr<PimJob>> &batch)
{
    const PimJobSpec &head = batch[0]->spec;
    const uint64_t n = head.n;
    const uint64_t total = n * batch.size();
    GroupObjGuard g(&group);

    if (isElementwise(head.kind)) {
        std::vector<int32_t> a_cat(total), b_cat(total),
            out_cat(total);
        for (size_t i = 0; i < batch.size(); ++i) {
            std::memcpy(a_cat.data() + i * n, batch[i]->spec.a,
                        n * sizeof(int32_t));
            std::memcpy(b_cat.data() + i * n, batch[i]->spec.b,
                        n * sizeof(int32_t));
        }
        const PimObjId oa = g.track(
            group.alloc(PimAllocEnum::PIM_ALLOC_AUTO, total,
                        PimDataType::PIM_INT32));
        if (oa < 0)
            return PimStatus::PIM_ERROR;
        const PimObjId ob =
            g.track(group.allocAssociated(oa, PimDataType::PIM_INT32));
        const PimObjId od =
            g.track(group.allocAssociated(oa, PimDataType::PIM_INT32));
        if (ob < 0 || od < 0)
            return PimStatus::PIM_ERROR;
        PimStatus status = group.copyHostToDevice(a_cat.data(), oa);
        if (status == PimStatus::PIM_OK)
            status = group.copyHostToDevice(b_cat.data(), ob);
        bool same_scalar = true;
        for (const auto &j : batch)
            same_scalar &= j->spec.scalar == head.scalar;
        if (status == PimStatus::PIM_OK) {
            if (head.kind == PimJobKind::kVecScaledAdd &&
                !same_scalar) {
                std::vector<int32_t> coeff(total);
                for (size_t i = 0; i < batch.size(); ++i)
                    std::fill(coeff.begin() + i * n,
                              coeff.begin() + (i + 1) * n,
                              coeffOf(batch[i]->spec));
                const PimObjId oc = g.track(group.allocAssociated(
                    oa, PimDataType::PIM_INT32));
                const PimObjId ot = g.track(group.allocAssociated(
                    oa, PimDataType::PIM_INT32));
                if (oc < 0 || ot < 0)
                    status = PimStatus::PIM_ERROR;
                if (status == PimStatus::PIM_OK)
                    status =
                        group.copyHostToDevice(coeff.data(), oc);
                if (status == PimStatus::PIM_OK)
                    status = group.executeBinary(PimCmdEnum::kMul,
                                                 oa, oc, ot);
                if (status == PimStatus::PIM_OK)
                    status = group.executeBinary(PimCmdEnum::kAdd,
                                                 ot, ob, od);
            } else if (head.kind == PimJobKind::kVecScaledAdd) {
                status = group.executeScaledAdd(oa, ob, od,
                                                head.scalar);
            } else {
                status = group.executeBinary(
                    head.kind == PimJobKind::kVecAdd
                        ? PimCmdEnum::kAdd
                        : PimCmdEnum::kMul,
                    oa, ob, od);
            }
        }
        if (status == PimStatus::PIM_OK)
            status = group.copyDeviceToHost(od, out_cat.data());
        if (status != PimStatus::PIM_OK)
            return status;
        for (size_t i = 0; i < batch.size(); ++i) {
            batch[i]->out.values.assign(
                out_cat.begin() + i * n,
                out_cat.begin() + (i + 1) * n);
        }
        return PimStatus::PIM_OK;
    }

    if (head.kind == PimJobKind::kGemv) {
        const PimObjId acc = g.track(
            group.alloc(PimAllocEnum::PIM_ALLOC_AUTO, total,
                        PimDataType::PIM_INT32));
        if (acc < 0)
            return PimStatus::PIM_ERROR;
        const PimObjId col = g.track(
            group.allocAssociated(acc, PimDataType::PIM_INT32));
        const PimObjId oc = g.track(
            group.allocAssociated(acc, PimDataType::PIM_INT32));
        const PimObjId ot = g.track(
            group.allocAssociated(acc, PimDataType::PIM_INT32));
        if (col < 0 || oc < 0 || ot < 0)
            return PimStatus::PIM_ERROR;
        std::vector<int32_t> col_cat(total), coeff(total),
            out_cat(total);
        PimStatus status = group.executeBroadcast(acc, 0);
        for (uint64_t j = 0;
             status == PimStatus::PIM_OK && j < head.cols; ++j) {
            for (size_t i = 0; i < batch.size(); ++i) {
                std::memcpy(col_cat.data() + i * n,
                            batch[i]->spec.a + j * n,
                            n * sizeof(int32_t));
                std::fill(coeff.begin() + i * n,
                          coeff.begin() + (i + 1) * n,
                          batch[i]->spec.b[j]);
            }
            status = group.copyHostToDevice(col_cat.data(), col);
            if (status == PimStatus::PIM_OK)
                status = group.copyHostToDevice(coeff.data(), oc);
            if (status == PimStatus::PIM_OK)
                status = group.executeBinary(PimCmdEnum::kMul, col,
                                             oc, ot);
            if (status == PimStatus::PIM_OK)
                status = group.executeBinary(PimCmdEnum::kAdd, ot,
                                             acc, acc);
        }
        if (status == PimStatus::PIM_OK)
            status = group.copyDeviceToHost(acc, out_cat.data());
        if (status != PimStatus::PIM_OK)
            return status;
        for (size_t i = 0; i < batch.size(); ++i)
            batch[i]->out.values.assign(
                out_cat.begin() + i * n,
                out_cat.begin() + (i + 1) * n);
        return PimStatus::PIM_OK;
    }

    return fail("serve: kDot batches unsupported on sharded pools");
}

} // namespace

// ---------------------------------------------------------------------------
// PimServer
// ---------------------------------------------------------------------------

struct PimServer::Impl
{
    /** One tenant's record. Queue / vtime / weight are guarded by the
     *  owning worker's mutex; counters are atomics. */
    struct TenantRec
    {
        std::string name;
        size_t worker = 0;
        double weight = 1.0;
        double vtime = 0.0;
        std::deque<std::shared_ptr<PimJob>> queue;
        std::atomic<uint64_t> submitted{0};
        std::atomic<uint64_t> admitted{0};
        std::atomic<uint64_t> rejected{0};
        std::atomic<uint64_t> completed{0};
        std::atomic<uint64_t> failed{0};
        std::atomic<uint64_t> cancelled{0};
        std::atomic<uint64_t> batched_jobs{0};
        std::atomic<uint64_t> queued{0};
    };

    struct Worker
    {
        size_t index = 0;
        std::mutex mutex;
        std::condition_variable cv;
        std::vector<TenantRec *> tenants; ///< assigned here
        double vclock = 0.0; ///< vtime of the last dispatched tenant
        PimContext ctx = nullptr;
        std::unique_ptr<PimShardGroup> group;
        int metric_slot = -1;
        std::thread thread;
    };

    PimServeConfig cfg;
    std::atomic<bool> stop{false};
    std::atomic<bool> paused{false};
    std::atomic<bool> accepting{true};
    std::atomic<uint64_t> in_flight{0};
    std::atomic<uint64_t> next_seq{1};
    std::mutex drain_mutex;
    std::condition_variable drain_cv;
    mutable std::mutex tenants_mutex;
    std::map<std::string, std::unique_ptr<TenantRec>> tenants;
    size_t next_worker = 0;
    std::vector<std::unique_ptr<Worker>> workers;

    TenantRec *
    tenantFor(const std::string &name)
    {
        std::lock_guard<std::mutex> lock(tenants_mutex);
        auto it = tenants.find(name);
        if (it != tenants.end())
            return it->second.get();
        auto rec = std::make_unique<TenantRec>();
        rec->name = name;
        rec->worker = next_worker++ % workers.size();
        TenantRec *raw = rec.get();
        tenants.emplace(name, std::move(rec));
        Worker &w = *workers[raw->worker];
        std::lock_guard<std::mutex> wlock(w.mutex);
        w.tenants.push_back(raw);
        return raw;
    }

    /** Backlogged tenant with the smallest virtual time (name as the
     *  deterministic tie-break). Caller holds w.mutex. */
    TenantRec *
    pickTenant(Worker &w) const
    {
        TenantRec *best = nullptr;
        for (TenantRec *t : w.tenants) {
            if (t->queue.empty())
                continue;
            if (!best || t->vtime < best->vtime ||
                (t->vtime == best->vtime && t->name < best->name))
                best = t;
        }
        return best;
    }

    /** Coalescing eligibility of a kind on this worker's surface. */
    bool
    kindBatchable(const Worker &w, PimJobKind kind) const
    {
        // Sharded pools have no ranged reduction for per-job dots.
        return !(w.group && kind == PimJobKind::kDot);
    }

    void
    jobDone()
    {
        if (in_flight.fetch_sub(1, std::memory_order_acq_rel) == 1) {
            std::lock_guard<std::mutex> lock(drain_mutex);
            drain_cv.notify_all();
        }
    }

    /** Account a job whose cancel won before dispatch. Caller holds
     *  w.mutex; the handle already resolved the job's state. */
    void
    reapCancelled(Worker &w, TenantRec &t,
                  const std::shared_ptr<PimJob> &job)
    {
        (void)job;
        t.queued.fetch_sub(1, std::memory_order_relaxed);
        t.cancelled.fetch_add(1, std::memory_order_relaxed);
        MetricDomainScope domain(w.metric_slot);
        PIM_METRIC_COUNT("serve.cancelled", 1);
        jobDone();
    }

    /**
     * Pop the next dispatch from @p t: the head job plus, when
     * coalescing applies, every queued compatible job up to
     * max_batch. Claims each job by CAS (losing claims are reaped as
     * cancelled) and advances the WFQ clocks. Caller holds w.mutex.
     */
    std::vector<std::shared_ptr<PimJob>>
    claimBatch(Worker &w, TenantRec &t)
    {
        std::vector<std::shared_ptr<PimJob>> batch;
        while (!t.queue.empty() && batch.empty()) {
            std::shared_ptr<PimJob> job = std::move(t.queue.front());
            t.queue.pop_front();
            PimJobState expected = PimJobState::kQueued;
            if (job->state.compare_exchange_strong(
                    expected, PimJobState::kRunning,
                    std::memory_order_acq_rel))
                batch.push_back(std::move(job));
            else
                reapCancelled(w, t, job);
        }
        if (batch.empty())
            return batch;
        const PimJobSpec &head = batch.front()->spec;
        const bool coalesce = cfg.batching && cfg.max_batch > 1 &&
            head.deadline == PimJobDeadline::kBatchable &&
            kindBatchable(w, head.kind);
        if (coalesce) {
            for (auto it = t.queue.begin();
                 it != t.queue.end() && batch.size() < cfg.max_batch;) {
                std::shared_ptr<PimJob> &cand = *it;
                const PimJobState s =
                    cand->state.load(std::memory_order_acquire);
                if (s != PimJobState::kQueued) {
                    std::shared_ptr<PimJob> dead = std::move(cand);
                    it = t.queue.erase(it);
                    reapCancelled(w, t, dead);
                    continue;
                }
                if (cand->spec.deadline !=
                        PimJobDeadline::kBatchable ||
                    !sameBatchShape(cand->spec, head)) {
                    ++it;
                    continue;
                }
                PimJobState expected = PimJobState::kQueued;
                if (cand->state.compare_exchange_strong(
                        expected, PimJobState::kRunning,
                        std::memory_order_acq_rel)) {
                    batch.push_back(std::move(cand));
                    it = t.queue.erase(it);
                } else {
                    std::shared_ptr<PimJob> dead = std::move(cand);
                    it = t.queue.erase(it);
                    reapCancelled(w, t, dead);
                }
            }
        }
        uint64_t cost = 0;
        for (const auto &j : batch)
            cost += j->cost;
        w.vclock = t.vtime;
        t.vtime +=
            static_cast<double>(cost) / std::max(t.weight, 1e-9);
        t.queued.fetch_sub(batch.size(), std::memory_order_relaxed);
        return batch;
    }

    PimStatus
    runOne(Worker &w, PimJob &job)
    {
        if (w.group)
            return runDirectSharded(*w.group, job.spec, &job.out);
        return pimJobRunDirect(job.spec, &job.out);
    }

    PimStatus
    runBatch(Worker &w,
             const std::vector<std::shared_ptr<PimJob>> &batch)
    {
        if (w.group)
            return runBatchSharded(*w.group, batch);
        switch (batch[0]->spec.kind) {
          case PimJobKind::kDot:
            return runBatchDotCtx(batch);
          case PimJobKind::kGemv:
            return runBatchGemvCtx(batch);
          default:
            return runBatchElementwiseCtx(batch);
        }
    }

    /** Execute one claimed dispatch. Runs without w.mutex. */
    void
    executeBatch(Worker &w, TenantRec &t,
                 const std::vector<std::shared_ptr<PimJob>> &batch)
    {
        const uint64_t start = nowNs();
        const uint64_t bsz = batch.size();
        MetricDomainScope domain(w.metric_slot);
        for (const auto &j : batch) {
            j->dispatch_ns.store(start, std::memory_order_relaxed);
            j->batch_size.store(bsz, std::memory_order_relaxed);
            PIM_METRIC_RECORD("serve.queue_ns",
                              start - j->submit_ns);
        }
        PIM_METRIC_RECORD("serve.batch_size", bsz);
        if (bsz > 1) {
            PIM_METRIC_COUNT("serve.batches", 1);
            PIM_METRIC_COUNT("serve.batched_jobs", bsz);
            t.batched_jobs.fetch_add(bsz, std::memory_order_relaxed);
        }

        const PimStatus status = bsz == 1
            ? runOne(w, *batch.front())
            : runBatch(w, batch);

        PIM_METRIC_RECORD("serve.exec_ns", nowNs() - start);
        MetricHistogram &qh =
            PimMetrics::instance().histogram("serve.queue_ns");
        PIM_METRIC_GAUGE("serve.p99_queue_ns",
                         w.metric_slot >= 0
                             ? qh.percentileInDomain(w.metric_slot,
                                                     0.99)
                             : qh.percentile(0.99));

        std::string why;
        if (status != PimStatus::PIM_OK) {
            why = pimGetLastErrorMessage();
            if (why.empty())
                why = "serve: execution failed";
        }
        for (const auto &j : batch) {
            j->completion_seq.store(
                next_seq.fetch_add(1, std::memory_order_relaxed),
                std::memory_order_relaxed);
            if (status == PimStatus::PIM_OK) {
                j->finish(PimJobState::kDone);
                t.completed.fetch_add(1, std::memory_order_relaxed);
                PIM_METRIC_COUNT("serve.completed", 1);
            } else {
                j->finish(PimJobState::kFailed, why);
                t.failed.fetch_add(1, std::memory_order_relaxed);
                PIM_METRIC_COUNT("serve.failed", 1);
            }
            jobDone();
        }
    }

    void
    workerMain(Worker &w)
    {
        if (w.ctx)
            pimSetCurrentContext(w.ctx);
        PimMetrics::setThreadDomain(w.metric_slot);
        std::unique_lock<std::mutex> lock(w.mutex);
        for (;;) {
            w.cv.wait(lock, [&] {
                return stop.load(std::memory_order_acquire) ||
                       (!paused.load(std::memory_order_acquire) &&
                        pickTenant(w) != nullptr);
            });
            if (stop.load(std::memory_order_acquire))
                break;
            TenantRec *t = pickTenant(w);
            if (!t)
                continue;
            auto batch = claimBatch(w, *t);
            if (batch.empty())
                continue;
            lock.unlock();
            executeBatch(w, *t, batch);
            lock.lock();
        }
        if (w.ctx)
            pimSetCurrentContext(nullptr);
    }
};

PimServer::PimServer() : impl_(new Impl) {}

std::unique_ptr<PimServer>
PimServer::create(const PimServeConfig &config)
{
    std::unique_ptr<PimServer> server(new PimServer);
    Impl &impl = *server->impl_;
    impl.cfg = config;
    impl.cfg.num_workers = std::max<size_t>(1, config.num_workers);
    impl.cfg.shards_per_worker =
        std::max<size_t>(1, config.shards_per_worker);
    impl.cfg.tenant_queue_cap =
        std::max<size_t>(1, config.tenant_queue_cap);
    impl.cfg.max_batch = std::max<size_t>(1, config.max_batch);
    impl.paused.store(config.start_paused);

    for (size_t i = 0; i < impl.cfg.num_workers; ++i) {
        auto w = std::make_unique<Impl::Worker>();
        w->index = i;
        const std::string label =
            impl.cfg.label_prefix + ".w" + std::to_string(i);
        if (impl.cfg.shards_per_worker == 1) {
            w->ctx = pimCreateContextFromConfig(impl.cfg.device,
                                                label.c_str());
            if (!w->ctx)
                return nullptr; // last error already set
            w->metric_slot = PimMetrics::instance().domainSlot(
                pimContextId(w->ctx));
            if (impl.cfg.fusion >= 0) {
                PimContextScope scope(w->ctx);
                pimSetFusionEnabled(impl.cfg.fusion != 0);
            }
        } else {
            w->group = PimShardGroup::create(
                impl.cfg.device, impl.cfg.shards_per_worker,
                PimShardPartition::kBlock, label);
            if (!w->group)
                return nullptr;
            w->metric_slot = PimMetrics::instance().domainSlot(
                pimContextId(w->group->shard(0)));
            if (impl.cfg.fusion >= 0) {
                for (size_t s = 0; s < w->group->numShards(); ++s) {
                    PimContextScope scope(w->group->shard(s));
                    pimSetFusionEnabled(impl.cfg.fusion != 0);
                }
            }
        }
        impl.workers.push_back(std::move(w));
    }
    for (auto &w : impl.workers) {
        Impl::Worker *raw = w.get();
        raw->thread =
            std::thread([&impl, raw] { impl.workerMain(*raw); });
    }
    return server;
}

PimServer::~PimServer()
{
    Impl &impl = *impl_;
    impl.accepting.store(false, std::memory_order_release);
    resume(); // a paused server must still drain
    drain();
    impl.stop.store(true, std::memory_order_release);
    for (auto &w : impl.workers) {
        {
            std::lock_guard<std::mutex> lock(w->mutex);
        }
        w->cv.notify_all();
    }
    for (auto &w : impl.workers)
        if (w->thread.joinable())
            w->thread.join();
    for (auto &w : impl.workers) {
        w->group.reset(); // destroys shard contexts
        if (w->ctx)
            pimDestroyContext(w->ctx);
    }
}

PimJobHandle
PimServer::submit(const PimJobSpec &spec)
{
    Impl &impl = *impl_;
    auto job = std::make_shared<PimJob>();
    job->spec = spec;
    job->cost = pimJobCostElems(spec);
    job->submit_ns = nowNs();

    Impl::TenantRec *t = impl.tenantFor(spec.tenant.empty()
                                            ? std::string("default")
                                            : spec.tenant);
    Impl::Worker &w = *impl.workers[t->worker];
    MetricDomainScope domain(w.metric_slot);
    PIM_METRIC_COUNT("serve.submitted", 1);
    t->submitted.fetch_add(1, std::memory_order_relaxed);

    std::string why;
    if (!impl.accepting.load(std::memory_order_acquire))
        why = "serve: server is shutting down";
    else if (!pimJobValidate(spec, &why))
        why = "serve: invalid job: " + why;

    if (why.empty()) {
        std::lock_guard<std::mutex> lock(w.mutex);
        if (t->queued.load(std::memory_order_relaxed) >=
            impl.cfg.tenant_queue_cap) {
            why = "serve: tenant '" + t->name +
                  "' at admission bound (" +
                  std::to_string(impl.cfg.tenant_queue_cap) +
                  " queued)";
        } else {
            job->state.store(PimJobState::kQueued,
                             std::memory_order_release);
            // Reactivating an idle tenant clamps its virtual time to
            // the worker clock: idling banks no scheduling credit.
            if (t->queue.empty())
                t->vtime = std::max(t->vtime, w.vclock);
            auto pos = t->queue.end();
            while (pos != t->queue.begin() &&
                   (*(pos - 1))->spec.priority < spec.priority)
                --pos;
            t->queue.insert(pos, job);
            t->queued.fetch_add(1, std::memory_order_relaxed);
            t->admitted.fetch_add(1, std::memory_order_relaxed);
            PIM_METRIC_COUNT("serve.admitted", 1);
            impl.in_flight.fetch_add(1, std::memory_order_acq_rel);
            w.cv.notify_one();
            return PimJobHandle(std::move(job));
        }
    }

    t->rejected.fetch_add(1, std::memory_order_relaxed);
    PIM_METRIC_COUNT("serve.rejected", 1);
    fail(why);
    job->finish(PimJobState::kRejected, why);
    return PimJobHandle(std::move(job));
}

PimStatus
PimServer::setTenantWeight(const std::string &tenant, double weight)
{
    if (!(weight > 0.0))
        return fail("serve: tenant weight must be > 0");
    Impl::TenantRec *t = impl_->tenantFor(tenant);
    Impl::Worker &w = *impl_->workers[t->worker];
    std::lock_guard<std::mutex> lock(w.mutex);
    t->weight = weight;
    return PimStatus::PIM_OK;
}

void
PimServer::pause()
{
    impl_->paused.store(true, std::memory_order_release);
}

void
PimServer::resume()
{
    impl_->paused.store(false, std::memory_order_release);
    for (auto &w : impl_->workers) {
        {
            std::lock_guard<std::mutex> lock(w->mutex);
        }
        w->cv.notify_all();
    }
}

void
PimServer::drain()
{
    Impl &impl = *impl_;
    std::unique_lock<std::mutex> lock(impl.drain_mutex);
    impl.drain_cv.wait(lock, [&impl] {
        return impl.in_flight.load(std::memory_order_acquire) == 0;
    });
}

PimServeStats
PimServer::stats() const
{
    Impl &impl = *impl_;
    PimServeStats s;
    std::lock_guard<std::mutex> lock(impl.tenants_mutex);
    for (const auto &entry : impl.tenants) {
        const Impl::TenantRec &t = *entry.second;
        PimServeTenantStats ts;
        ts.submitted = t.submitted.load(std::memory_order_relaxed);
        ts.admitted = t.admitted.load(std::memory_order_relaxed);
        ts.rejected = t.rejected.load(std::memory_order_relaxed);
        ts.completed = t.completed.load(std::memory_order_relaxed);
        ts.failed = t.failed.load(std::memory_order_relaxed);
        ts.cancelled = t.cancelled.load(std::memory_order_relaxed);
        ts.batched_jobs =
            t.batched_jobs.load(std::memory_order_relaxed);
        ts.queued = t.queued.load(std::memory_order_relaxed);
        ts.worker = t.worker;
        {
            Impl::Worker &w = *impl.workers[t.worker];
            std::lock_guard<std::mutex> wlock(w.mutex);
            ts.weight = t.weight;
        }
        s.submitted += ts.submitted;
        s.admitted += ts.admitted;
        s.rejected += ts.rejected;
        s.completed += ts.completed;
        s.failed += ts.failed;
        s.cancelled += ts.cancelled;
        s.batched_jobs += ts.batched_jobs;
        s.tenants.emplace(entry.first, ts);
    }
    MetricHistogram &qh =
        PimMetrics::instance().histogram("serve.queue_ns");
    s.p50_queue_ns = qh.percentile(0.50);
    s.p99_queue_ns = qh.percentile(0.99);
    s.batches = PimMetrics::instance()
                    .counter("serve.batches")
                    .value();
    return s;
}

PimContext
PimServer::tenantContext(const std::string &tenant) const
{
    Impl &impl = *impl_;
    std::lock_guard<std::mutex> lock(impl.tenants_mutex);
    auto it = impl.tenants.find(tenant);
    if (it == impl.tenants.end())
        return nullptr;
    Impl::Worker &w = *impl.workers[it->second->worker];
    return w.group ? nullptr : w.ctx;
}

size_t
PimServer::numWorkers() const
{
    return impl_->workers.size();
}

// ---------------------------------------------------------------------------
// Process-wide instance
// ---------------------------------------------------------------------------

namespace {
std::mutex g_serve_mutex;
std::unique_ptr<PimServer> g_serve_instance;
} // namespace

PimStatus
pimServeStart(const PimServeConfig &config)
{
    std::lock_guard<std::mutex> lock(g_serve_mutex);
    if (g_serve_instance)
        return fail("pimServeStart: a server is already running");
    auto server = PimServer::create(config);
    if (!server)
        return PimStatus::PIM_ERROR; // last error already set
    g_serve_instance = std::move(server);
    return PimStatus::PIM_OK;
}

bool
pimServeActive()
{
    std::lock_guard<std::mutex> lock(g_serve_mutex);
    return g_serve_instance != nullptr;
}

PimJobHandle
pimServeSubmit(const PimJobSpec &spec)
{
    std::lock_guard<std::mutex> lock(g_serve_mutex);
    if (!g_serve_instance) {
        fail("pimServeSubmit: no server running "
             "(call pimServeStart first)");
        return PimJobHandle();
    }
    return g_serve_instance->submit(spec);
}

PimStatus
pimServeStop()
{
    std::unique_ptr<PimServer> doomed;
    {
        std::lock_guard<std::mutex> lock(g_serve_mutex);
        if (!g_serve_instance)
            return fail("pimServeStop: no server running");
        doomed = std::move(g_serve_instance);
    }
    doomed.reset(); // drains and joins outside the lock
    return PimStatus::PIM_OK;
}

PimServer *
pimServeInstance()
{
    std::lock_guard<std::mutex> lock(g_serve_mutex);
    return g_serve_instance.get();
}

} // namespace pimeval
