/**
 * @file
 * Shared state behind a PimJobHandle. Internal to the serve layer:
 * pim_serve.cpp mutates it, the handle methods read it.
 */

#ifndef PIMEVAL_SERVE_SERVE_INTERNAL_H_
#define PIMEVAL_SERVE_SERVE_INTERNAL_H_

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <mutex>
#include <string>

#include "serve/pim_job.h"

namespace pimeval {
namespace serve_detail {

/** Monotonic nanoseconds for queueing/latency accounting. */
inline uint64_t
nowNs()
{
    return static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now().time_since_epoch())
            .count());
}

inline bool
isFinal(PimJobState s)
{
    return s == PimJobState::kDone || s == PimJobState::kFailed ||
           s == PimJobState::kRejected ||
           s == PimJobState::kCancelled ||
           s == PimJobState::kInvalid;
}

/**
 * One submitted job. Lifecycle: kQueued -> kRunning -> kDone/kFailed,
 * or kQueued -> kCancelled (handle-initiated, resolved by CAS against
 * the dispatching worker), or kRejected straight from submit.
 *
 * `state` is atomic so poll() never takes the mutex; every transition
 * to a final state also happens under `mutex` and signals `cv` so
 * wait() is race-free.
 */
struct PimJob
{
    PimJobSpec spec;
    uint64_t cost = 0; ///< pimJobCostElems(spec), cached at submit

    std::atomic<PimJobState> state{PimJobState::kInvalid};

    mutable std::mutex mutex;
    mutable std::condition_variable cv;
    PimJobOutput out;
    std::string error;

    // Atomics: handles read these concurrently with the worker.
    uint64_t submit_ns = 0; ///< written before the handle exists
    std::atomic<uint64_t> dispatch_ns{0}; ///< 0 until dispatched
    std::atomic<uint64_t> complete_ns{0}; ///< 0 until final
    std::atomic<uint64_t> batch_size{0};  ///< jobs in its dispatch
    std::atomic<uint64_t> completion_seq{0}; ///< finish order, 1-based

    /** Move to a final state and wake waiters. @p why lands in
     *  `error` (under the lock) when non-empty. */
    void
    finish(PimJobState final_state, const std::string &why = "")
    {
        std::lock_guard<std::mutex> lock(mutex);
        if (!why.empty())
            error = why;
        complete_ns.store(nowNs(), std::memory_order_relaxed);
        state.store(final_state, std::memory_order_release);
        cv.notify_all();
    }
};

} // namespace serve_detail
} // namespace pimeval

#endif // PIMEVAL_SERVE_SERVE_INTERNAL_H_
