/**
 * @file
 * Typed job-submission API (API v3): describe *what* to run instead
 * of issuing raw PIM commands.
 *
 * A PimJobSpec names an application kind (vector add/mul, scaled-add,
 * dot product, GEMV), its shape, its data type, and its serving
 * attributes (tenant, priority, deadline class). Submitting a spec to
 * a PimServer (core of pim_serve.h) yields a PimJobHandle — a future
 * with wait()/poll()/cancel() — while the scheduler decides which
 * context executes it and whether it coalesces with other same-shape
 * jobs into one batched execution.
 *
 * The contract that makes batching safe: a job's functional result is
 * bit-identical to direct (unserved) execution of the same spec,
 * regardless of how the scheduler batches or shards it. All exposed
 * kinds are wraparound int32 element arithmetic (plus int64 reduction
 * for kDot), for which concatenation, mul+add decomposition of
 * scaled-add, and sharded tree reductions are all exact.
 *
 * Input pointers in the spec must stay valid until the job reaches a
 * final state (the server does not snapshot inputs at submission —
 * the same lifetime contract as the async pipeline's D2H operands).
 */

#ifndef PIMEVAL_SERVE_PIM_JOB_H_
#define PIMEVAL_SERVE_PIM_JOB_H_

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "core/pim_types.h"

namespace pimeval {

/** Application kinds servable through the job API. */
enum class PimJobKind {
    kVecAdd = 0,   ///< out[i] = a[i] + b[i]
    kVecMul,       ///< out[i] = a[i] * b[i]
    kVecScaledAdd, ///< out[i] = a[i] * scalar + b[i] (AXPY)
    kDot,          ///< scalar = sum_i a[i] * b[i]
    kGemv,         ///< out = A * b for an n x cols column-major A
};

/** Latency class of a job. */
enum class PimJobDeadline {
    kBatchable = 0, ///< may be coalesced with same-shape jobs
    kInteractive,   ///< dispatched alone, never held for batching
};

/** Lifecycle of a submitted job. */
enum class PimJobState {
    kInvalid = 0, ///< default-constructed / submission failed hard
    kQueued,      ///< admitted, waiting for dispatch
    kRunning,     ///< executing on a context
    kDone,        ///< completed, output available
    kFailed,      ///< execution failed (error() has the detail)
    kRejected,    ///< admission control refused it (queue bound)
    kCancelled,   ///< cancelled before dispatch
};

/**
 * One job: the complete description of a unit of work.
 *
 * Shapes per kind (int32 elements throughout):
 *  - kVecAdd/kVecMul/kVecScaledAdd: a[n], b[n] -> out[n]
 *  - kDot:  a[n], b[n] -> int64 scalar
 *  - kGemv: a = column-major n x cols matrix, b[cols] -> out[n]
 */
struct PimJobSpec
{
    PimJobKind kind = PimJobKind::kVecAdd;
    PimDataType dtype = PimDataType::PIM_INT32;
    /** Vector length; for kGemv the output length (matrix rows). */
    uint64_t n = 0;
    /** kGemv only: matrix columns (= length of b). */
    uint64_t cols = 0;
    /** First operand: vector, or the kGemv column-major matrix. */
    const int32_t *a = nullptr;
    /** Second operand: vector, or the kGemv input vector. */
    const int32_t *b = nullptr;
    /** kVecScaledAdd multiplier (sign-extended per the data type). */
    uint64_t scalar = 0;

    // --- Serving attributes ---
    /** Tenant this job bills to; tenants get isolated queues,
     *  contexts, and metric domains. */
    std::string tenant = "default";
    /** Higher dispatches first within the tenant's queue. */
    int priority = 0;
    PimJobDeadline deadline = PimJobDeadline::kBatchable;
};

/** A completed job's output. */
struct PimJobOutput
{
    /** Element results (kVecAdd/kVecMul/kVecScaledAdd/kGemv). */
    std::vector<int32_t> values;
    /** Reduction result (kDot). */
    int64_t scalar = 0;
};

namespace serve_detail {
struct PimJob;
} // namespace serve_detail

/**
 * Future for one submitted job. Cheap to copy (shared state); the
 * last copy going away does not cancel the job.
 */
class PimJobHandle
{
  public:
    PimJobHandle() = default;

    /** False for default-constructed handles (submission that failed
     *  before a job could even be recorded). */
    bool valid() const { return job_ != nullptr; }

    /** Current state, without blocking. */
    PimJobState poll() const;

    /** Block until the job reaches a final state; returns it. */
    PimJobState wait() const;

    /**
     * Cancel a queued job: it will never execute and wait() returns
     * kCancelled. @return true when the cancel won the race (false if
     * the job was already dispatched, finished, or rejected).
     */
    bool cancel() const;

    /** The output; blocks via wait(). Empty unless state is kDone. */
    const PimJobOutput &output() const;

    /** Failure / rejection detail ("" when none). */
    const char *error() const;

    /** Admission-to-dispatch queueing delay (0 until dispatched). */
    uint64_t queueNs() const;

    /** Submission-to-completion latency (0 until final). */
    uint64_t latencyNs() const;

    /** Number of jobs in the batch this job executed in (1 when it
     *  ran alone; 0 until dispatched). */
    uint64_t batchSize() const;

    /** Server-wide completion order (1-based; 0 until final).
     *  Scheduling diagnostics: smaller finished earlier. */
    uint64_t completionSeq() const;

  private:
    friend class PimServer;
    explicit PimJobHandle(std::shared_ptr<serve_detail::PimJob> job)
        : job_(std::move(job))
    {
    }

    std::shared_ptr<serve_detail::PimJob> job_;
};

/** Cost proxy of a job for fair queuing: total elements touched. */
uint64_t pimJobCostElems(const PimJobSpec &spec);

/**
 * Validate a spec. @return false with @p why filled (when non-null)
 * for unsupported dtype, zero/missing shape, or null operands.
 */
bool pimJobValidate(const PimJobSpec &spec, std::string *why);

/**
 * Execute one job directly on the calling thread's current context
 * (the "unserved" reference path — exactly what a served job of
 * batch size 1 runs). Requires an active device/context.
 */
PimStatus pimJobRunDirect(const PimJobSpec &spec, PimJobOutput *out);

} // namespace pimeval

#endif // PIMEVAL_SERVE_PIM_JOB_H_
