/**
 * @file
 * Agglomerative hierarchical clustering with average linkage (UPGMA),
 * used to build the paper's Fig. 1 benchmark-similarity dendrogram.
 */

#ifndef PIMEVAL_ANALYSIS_HCLUST_H_
#define PIMEVAL_ANALYSIS_HCLUST_H_

#include <cstddef>
#include <string>
#include <vector>

#include "analysis/pca.h"

namespace pimeval {

/**
 * One merge step of the dendrogram. Cluster ids: 0..n-1 are leaves;
 * n+k is the cluster created by merge k.
 */
struct DendrogramMerge
{
    size_t left;
    size_t right;
    double distance; ///< linkage distance at the merge
    size_t size;     ///< leaves under the merged cluster
};

/**
 * Average-linkage agglomerative clustering on row vectors.
 */
class HierarchicalClustering
{
  public:
    /** Cluster the rows of @p points (Euclidean metric). */
    explicit HierarchicalClustering(const Matrix &points);

    /** Merge list in order of increasing linkage distance. */
    const std::vector<DendrogramMerge> &merges() const
    {
        return merges_;
    }

    /**
     * ASCII dendrogram with leaf labels, ordered like the merge tree;
     * linkage distances printed per merge (log-scale axis is left to
     * the reader, matching the figure).
     */
    std::string render(const std::vector<std::string> &labels) const;

    /** Leaf order obtained by an in-order walk of the merge tree. */
    std::vector<size_t> leafOrder() const;

  private:
    size_t num_leaves_;
    std::vector<DendrogramMerge> merges_;
};

} // namespace pimeval

#endif // PIMEVAL_ANALYSIS_HCLUST_H_
