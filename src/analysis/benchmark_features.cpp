/**
 * @file
 * Feature-matrix construction.
 */

#include "analysis/benchmark_features.h"

#include <cmath>
#include <set>

namespace pimeval {

Matrix
buildFeatureMatrix(const std::vector<BenchmarkFeatures> &features,
                   std::vector<std::string> &out_names)
{
    // Union of mnemonics across all benchmarks, in sorted order.
    std::set<std::string> mnemonics;
    for (const auto &f : features)
        for (const auto &[op, count] : f.op_mix)
            mnemonics.insert(op);

    const size_t num_ops = mnemonics.size();
    const size_t dims = num_ops + 4;
    Matrix m(features.size(), dims);
    out_names.clear();

    for (size_t r = 0; r < features.size(); ++r) {
        const auto &f = features[r];
        out_names.push_back(f.name);

        uint64_t total = 0;
        for (const auto &[op, count] : f.op_mix)
            total += count;

        size_t c = 0;
        for (const auto &op : mnemonics) {
            const auto it = f.op_mix.find(op);
            const double frac =
                (it == f.op_mix.end() || total == 0)
                    ? 0.0
                    : static_cast<double>(it->second) /
                        static_cast<double>(total);
            m.at(r, c++) = frac;
        }
        m.at(r, c++) = f.sequential_access ? 1.0 : 0.0;
        m.at(r, c++) = f.random_access ? 1.0 : 0.0;
        m.at(r, c++) = f.uses_host ? 1.0 : 0.0;
        m.at(r, c++) =
            std::log10(1.0 + std::max(0.0, f.arithmetic_intensity));
    }
    return m;
}

} // namespace pimeval
