/**
 * @file
 * Benchmark feature extraction for the Fig. 1 similarity analysis.
 *
 * Features per benchmark (paper Section VIII): the PIM operation mix
 * (fraction of each operation class), memory access pattern
 * (sequential / random flags), execution type (PIM vs PIM+Host), and
 * arithmetic intensity (ops per byte moved).
 */

#ifndef PIMEVAL_ANALYSIS_BENCHMARK_FEATURES_H_
#define PIMEVAL_ANALYSIS_BENCHMARK_FEATURES_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

#include "analysis/pca.h"

namespace pimeval {

/**
 * Raw characterization of one benchmark run.
 */
struct BenchmarkFeatures
{
    std::string name;
    /** PIM command mix: mnemonic -> invocation count. */
    std::map<std::string, uint64_t> op_mix;
    bool sequential_access = true;
    bool random_access = false;
    bool uses_host = false;
    /** Arithmetic intensity: modeled ops per transferred byte. */
    double arithmetic_intensity = 0.0;
};

/**
 * Build the feature matrix from benchmark characterizations:
 * normalized op-mix fractions over the union of mnemonics, the three
 * access/exec flags, and log-scaled arithmetic intensity.
 *
 * @param features  per-benchmark characterizations.
 * @param out_names filled with the benchmark names (row order).
 */
Matrix buildFeatureMatrix(const std::vector<BenchmarkFeatures> &features,
                          std::vector<std::string> &out_names);

} // namespace pimeval

#endif // PIMEVAL_ANALYSIS_BENCHMARK_FEATURES_H_
