/**
 * @file
 * PCA and Jacobi eigensolver implementation.
 */

#include "analysis/pca.h"

#include <algorithm>
#include <cmath>
#include <numeric>

namespace pimeval {

Matrix::Matrix(size_t rows, size_t cols, double fill)
    : rows_(rows), cols_(cols), data_(rows * cols, fill)
{
}

Matrix
Matrix::covariance(const Matrix &centered)
{
    const size_t n = centered.rows();
    const size_t d = centered.cols();
    Matrix cov(d, d);
    const double scale = n > 1 ? 1.0 / static_cast<double>(n - 1) : 1.0;
    for (size_t i = 0; i < d; ++i) {
        for (size_t j = i; j < d; ++j) {
            double acc = 0.0;
            for (size_t r = 0; r < n; ++r)
                acc += centered.at(r, i) * centered.at(r, j);
            cov.at(i, j) = acc * scale;
            cov.at(j, i) = cov.at(i, j);
        }
    }
    return cov;
}

EigenResult
jacobiEigen(const Matrix &input, unsigned max_sweeps)
{
    const size_t n = input.rows();
    Matrix a = input;
    Matrix v(n, n);
    for (size_t i = 0; i < n; ++i)
        v.at(i, i) = 1.0;

    for (unsigned sweep = 0; sweep < max_sweeps; ++sweep) {
        double off = 0.0;
        for (size_t p = 0; p < n; ++p)
            for (size_t q = p + 1; q < n; ++q)
                off += a.at(p, q) * a.at(p, q);
        if (off < 1e-20)
            break;

        for (size_t p = 0; p < n; ++p) {
            for (size_t q = p + 1; q < n; ++q) {
                const double apq = a.at(p, q);
                if (std::fabs(apq) < 1e-15)
                    continue;
                const double app = a.at(p, p);
                const double aqq = a.at(q, q);
                const double theta = (aqq - app) / (2.0 * apq);
                const double t = (theta >= 0 ? 1.0 : -1.0) /
                    (std::fabs(theta) +
                     std::sqrt(theta * theta + 1.0));
                const double c = 1.0 / std::sqrt(t * t + 1.0);
                const double s = t * c;

                for (size_t k = 0; k < n; ++k) {
                    const double akp = a.at(k, p);
                    const double akq = a.at(k, q);
                    a.at(k, p) = c * akp - s * akq;
                    a.at(k, q) = s * akp + c * akq;
                }
                for (size_t k = 0; k < n; ++k) {
                    const double apk = a.at(p, k);
                    const double aqk = a.at(q, k);
                    a.at(p, k) = c * apk - s * aqk;
                    a.at(q, k) = s * apk + c * aqk;
                }
                for (size_t k = 0; k < n; ++k) {
                    const double vkp = v.at(k, p);
                    const double vkq = v.at(k, q);
                    v.at(k, p) = c * vkp - s * vkq;
                    v.at(k, q) = s * vkp + c * vkq;
                }
            }
        }
    }

    EigenResult result;
    result.values.resize(n);
    for (size_t i = 0; i < n; ++i)
        result.values[i] = a.at(i, i);

    // Sort eigenpairs by descending eigenvalue.
    std::vector<size_t> order(n);
    std::iota(order.begin(), order.end(), 0);
    std::sort(order.begin(), order.end(), [&](size_t x, size_t y) {
        return result.values[x] > result.values[y];
    });

    EigenResult sorted;
    sorted.values.resize(n);
    sorted.vectors = Matrix(n, n);
    for (size_t c = 0; c < n; ++c) {
        sorted.values[c] = result.values[order[c]];
        for (size_t r = 0; r < n; ++r)
            sorted.vectors.at(r, c) = v.at(r, order[c]);
    }
    return sorted;
}

Pca::Pca(const Matrix &samples, size_t num_components)
{
    const size_t n = samples.rows();
    const size_t d = samples.cols();
    num_components = std::min(num_components, d);

    // Standardize columns.
    Matrix centered(n, d);
    for (size_t c = 0; c < d; ++c) {
        double mean = 0.0;
        for (size_t r = 0; r < n; ++r)
            mean += samples.at(r, c);
        mean /= static_cast<double>(n);
        double var = 0.0;
        for (size_t r = 0; r < n; ++r) {
            const double delta = samples.at(r, c) - mean;
            var += delta * delta;
        }
        const double stddev =
            std::sqrt(var / std::max<size_t>(1, n - 1));
        const double inv = stddev > 1e-12 ? 1.0 / stddev : 0.0;
        for (size_t r = 0; r < n; ++r)
            centered.at(r, c) = (samples.at(r, c) - mean) * inv;
    }

    const Matrix cov = Matrix::covariance(centered);
    const EigenResult eig = jacobiEigen(cov);

    double total_var = 0.0;
    for (double ev : eig.values)
        total_var += std::max(0.0, ev);

    projected_ = Matrix(n, num_components);
    explained_.resize(num_components);
    for (size_t c = 0; c < num_components; ++c) {
        explained_[c] = total_var > 0
            ? std::max(0.0, eig.values[c]) / total_var : 0.0;
        for (size_t r = 0; r < n; ++r) {
            double acc = 0.0;
            for (size_t k = 0; k < d; ++k)
                acc += centered.at(r, k) * eig.vectors.at(k, c);
            projected_.at(r, c) = acc;
        }
    }
}

} // namespace pimeval
