/**
 * @file
 * Principal Component Analysis for benchmark characterization.
 *
 * The paper's Fig. 1 dendrogram is built by refining per-benchmark
 * feature vectors (instruction mix, memory access pattern, execution
 * type, arithmetic intensity) with PCA followed by hierarchical
 * clustering. This module provides the PCA step: standardization,
 * covariance, a cyclic Jacobi symmetric eigensolver, and projection.
 */

#ifndef PIMEVAL_ANALYSIS_PCA_H_
#define PIMEVAL_ANALYSIS_PCA_H_

#include <cstddef>
#include <vector>

namespace pimeval {

/** Row-major dense matrix, minimal interface for the analysis. */
class Matrix
{
  public:
    Matrix() = default;
    Matrix(size_t rows, size_t cols, double fill = 0.0);

    size_t rows() const { return rows_; }
    size_t cols() const { return cols_; }

    double &at(size_t r, size_t c) { return data_[r * cols_ + c]; }
    double at(size_t r, size_t c) const { return data_[r * cols_ + c]; }

    /** C = A^T * A scaled by 1/(rows-1): sample covariance of
     *  centered data. */
    static Matrix covariance(const Matrix &centered);

  private:
    size_t rows_ = 0;
    size_t cols_ = 0;
    std::vector<double> data_;
};

/**
 * Result of an eigendecomposition of a symmetric matrix.
 * Eigenpairs are sorted by descending eigenvalue.
 */
struct EigenResult
{
    std::vector<double> values;
    Matrix vectors; ///< column c = eigenvector for values[c]
};

/**
 * Cyclic Jacobi eigensolver for symmetric matrices.
 * @param a         symmetric input.
 * @param max_sweeps iteration bound (convergence is quadratic).
 */
EigenResult jacobiEigen(const Matrix &a, unsigned max_sweeps = 64);

/**
 * PCA: standardize columns (z-score), compute covariance, decompose,
 * and project onto the top @p num_components components.
 */
class Pca
{
  public:
    /** Fit on samples (rows = observations, cols = features). */
    Pca(const Matrix &samples, size_t num_components);

    /** Projected samples (rows x num_components). */
    const Matrix &projected() const { return projected_; }

    /** Fraction of variance captured by each kept component. */
    const std::vector<double> &explainedVariance() const
    {
        return explained_;
    }

  private:
    Matrix projected_;
    std::vector<double> explained_;
};

} // namespace pimeval

#endif // PIMEVAL_ANALYSIS_PCA_H_
