/**
 * @file
 * UPGMA implementation (O(n^3), fine for benchmark-suite sizes).
 */

#include "analysis/hclust.h"

#include <cmath>
#include <limits>
#include <sstream>

#include "util/string_utils.h"

namespace pimeval {

HierarchicalClustering::HierarchicalClustering(const Matrix &points)
    : num_leaves_(points.rows())
{
    const size_t n = num_leaves_;
    if (n == 0)
        return;

    // Active clusters: id, size, and pairwise average-linkage
    // distances maintained with the Lance-Williams update.
    struct Cluster
    {
        size_t id;
        size_t size;
        bool active = true;
    };
    std::vector<Cluster> clusters;
    clusters.reserve(2 * n);
    for (size_t i = 0; i < n; ++i)
        clusters.push_back({i, 1, true});

    // Distance matrix over cluster slots (grows as merges add slots).
    std::vector<std::vector<double>> dist(
        2 * n, std::vector<double>(2 * n, 0.0));
    for (size_t i = 0; i < n; ++i) {
        for (size_t j = i + 1; j < n; ++j) {
            double acc = 0.0;
            for (size_t c = 0; c < points.cols(); ++c) {
                const double delta = points.at(i, c) - points.at(j, c);
                acc += delta * delta;
            }
            dist[i][j] = dist[j][i] = std::sqrt(acc);
        }
    }

    size_t next_id = n;
    for (size_t step = 0; step + 1 < n; ++step) {
        // Find the closest active pair.
        double best = std::numeric_limits<double>::infinity();
        size_t bi = 0, bj = 0;
        for (size_t i = 0; i < clusters.size(); ++i) {
            if (!clusters[i].active)
                continue;
            for (size_t j = i + 1; j < clusters.size(); ++j) {
                if (!clusters[j].active)
                    continue;
                if (dist[i][j] < best) {
                    best = dist[i][j];
                    bi = i;
                    bj = j;
                }
            }
        }

        const size_t merged_size =
            clusters[bi].size + clusters[bj].size;
        merges_.push_back({clusters[bi].id, clusters[bj].id, best,
                           merged_size});

        // New cluster slot with UPGMA distances.
        const size_t slot = clusters.size();
        clusters.push_back({next_id++, merged_size, true});
        for (size_t k = 0; k < slot; ++k) {
            if (!clusters[k].active || k == bi || k == bj)
                continue;
            const double wi = static_cast<double>(clusters[bi].size);
            const double wj = static_cast<double>(clusters[bj].size);
            dist[slot][k] = dist[k][slot] =
                (wi * dist[bi][k] + wj * dist[bj][k]) / (wi + wj);
        }
        clusters[bi].active = false;
        clusters[bj].active = false;
    }
}

std::vector<size_t>
HierarchicalClustering::leafOrder() const
{
    std::vector<size_t> order;
    if (merges_.empty()) {
        for (size_t i = 0; i < num_leaves_; ++i)
            order.push_back(i);
        return order;
    }
    // In-order walk from the final merge.
    const size_t root = num_leaves_ + merges_.size() - 1;
    std::vector<size_t> stack{root};
    while (!stack.empty()) {
        const size_t node = stack.back();
        stack.pop_back();
        if (node < num_leaves_) {
            order.push_back(node);
        } else {
            const auto &m = merges_[node - num_leaves_];
            stack.push_back(m.right);
            stack.push_back(m.left);
        }
    }
    return order;
}

std::string
HierarchicalClustering::render(
    const std::vector<std::string> &labels) const
{
    std::ostringstream oss;
    oss << "Dendrogram (average linkage; merges by increasing "
           "distance):\n";
    auto name = [&](size_t id) -> std::string {
        if (id < num_leaves_)
            return id < labels.size() ? labels[id]
                                      : ("leaf" + std::to_string(id));
        return "cluster#" + std::to_string(id - num_leaves_);
    };
    for (size_t k = 0; k < merges_.size(); ++k) {
        const auto &m = merges_[k];
        oss << "  merge " << padLeft(std::to_string(k), 3) << ": "
            << padRight(name(m.left), 28) << " + "
            << padRight(name(m.right), 28)
            << "  dist=" << formatSci(m.distance, 3)
            << "  size=" << m.size << "\n";
    }
    return oss.str();
}

} // namespace pimeval
