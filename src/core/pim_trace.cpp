/**
 * @file
 * Tracer implementation: per-thread ring buffers, Chrome trace-event
 * JSON / CSV exporters, and a minimal JSON reader used to validate
 * exported traces (tests and the trace_smoke ctest).
 */

#include "core/pim_trace.h"

#include "core/pim_json.h"
#include "core/pim_runtime_config.h"

#include <algorithm>
#include <cctype>
#include <cstdio>
#include <cstdlib>
#include <fstream>
#include <sstream>

namespace pimeval {

namespace {

/** pim_observe sits below pim_util, so log in the PIM-Error style
 *  directly instead of pulling in util/logging. */
void
traceError(const std::string &msg)
{
    std::fprintf(stderr, "PIM-Error: %s\n", msg.c_str());
}

} // namespace

std::atomic<bool> PimTracer::enabled_flag_{false};

PimTracer &
PimTracer::instance()
{
    // Leaked singleton: threads may record during static destruction.
    static PimTracer *tracer = new PimTracer();
    return *tracer;
}

PimTracer::ThreadBuffer &
PimTracer::localBuffer()
{
    thread_local ThreadBuffer *buffer = nullptr;
    if (!buffer) {
        auto owned = std::make_shared<ThreadBuffer>();
        std::lock_guard<std::mutex> lock(registry_mutex_);
        owned->tid = static_cast<uint32_t>(buffers_.size());
        owned->ring.resize(capacity_);
        buffers_.push_back(owned);
        buffer = owned.get();
    }
    return *buffer;
}

void
PimTracer::record(const TraceEvent &event)
{
    // Shared gate: concurrent with other writers, excluded against
    // begin/end/export. Re-check under the gate so control operations
    // observe a quiesced state.
    std::shared_lock<std::shared_mutex> lock(gate_);
    if (!enabled())
        return;
    ThreadBuffer &buf = localBuffer();
    if (buf.ring.empty())
        return;
    const uint64_t n = buf.count.load(std::memory_order_relaxed);
    buf.ring[n % buf.ring.size()] = event;
    buf.count.store(n + 1, std::memory_order_release);
}

void
PimTracer::begin(const std::string &path)
{
    std::unique_lock<std::shared_mutex> lock(gate_);
    {
        std::lock_guard<std::mutex> reg(registry_mutex_);
        capacity_ = static_cast<size_t>(
            pimResolveRuntimeConfig().trace_capacity.value);
        for (auto &buf : buffers_) {
            buf->ring.assign(capacity_, TraceEvent{});
            buf->count.store(0, std::memory_order_relaxed);
        }
    }
    path_ = path;
    epoch_ = std::chrono::steady_clock::now();
    enabled_flag_.store(true, std::memory_order_release);
}

bool
PimTracer::end(const std::string &path)
{
    enabled_flag_.store(false, std::memory_order_release);
    // Unique acquisition waits out writers that passed the flag check.
    std::unique_lock<std::shared_mutex> lock(gate_);
    const std::string &target = path.empty() ? path_ : path;
    if (target.empty())
        return true;
    if (target.size() > 4 &&
        target.compare(target.size() - 4, 4, ".csv") == 0)
        return exportCsv(target);
    return exportJson(target);
}

bool
PimTracer::dump(const std::string &path) const
{
    std::unique_lock<std::shared_mutex> lock(gate_);
    if (path.size() > 4 &&
        path.compare(path.size() - 4, 4, ".csv") == 0)
        return exportCsv(path);
    return exportJson(path);
}

void
PimTracer::recordSpan(const char *name, const char *category,
                      uint64_t start_ns, uint64_t end_ns, uint64_t arg)
{
    TraceEvent e;
    e.type = TraceEventType::kSpan;
    e.name = name;
    e.category = category;
    e.ts_ns = start_ns;
    e.dur_ns = end_ns > start_ns ? end_ns - start_ns : 0;
    e.arg = arg;
    record(e);
}

void
PimTracer::recordInstant(const char *name, const char *category,
                         uint64_t arg)
{
    TraceEvent e;
    e.type = TraceEventType::kInstant;
    e.name = name;
    e.category = category;
    e.ts_ns = nowNs();
    e.arg = arg;
    record(e);
}

void
PimTracer::recordCounter(const char *name, double value)
{
    TraceEvent e;
    e.type = TraceEventType::kCounter;
    e.name = name;
    e.category = "counter";
    e.ts_ns = nowNs();
    e.modeled_dur_sec = value;
    record(e);
}

void
PimTracer::recordModeledSpan(const char *name,
                             double modeled_start_sec,
                             double modeled_dur_sec, uint64_t arg,
                             uint32_t ctx)
{
    TraceEvent e;
    e.type = TraceEventType::kModeledSpan;
    e.name = name;
    e.category = "modeled";
    e.ts_ns = nowNs();
    e.modeled_sec = modeled_start_sec;
    e.modeled_dur_sec = modeled_dur_sec;
    e.arg = arg;
    e.ctx = ctx == 0 ? 1 : ctx;
    record(e);
}

void
PimTracer::registerContext(uint32_t id, const std::string &label)
{
    if (id == 0)
        return;
    std::lock_guard<std::mutex> lock(registry_mutex_);
    for (auto &[cid, clabel] : contexts_) {
        if (cid == id) {
            clabel = label;
            return;
        }
    }
    contexts_.emplace_back(id, label);
}

void
PimTracer::setThreadName(const std::string &name)
{
    ThreadBuffer &buf = localBuffer();
    std::lock_guard<std::mutex> lock(registry_mutex_);
    buf.name = name;
}

const char *
PimTracer::intern(const std::string &s)
{
    std::lock_guard<std::mutex> lock(intern_mutex_);
    return interned_.insert(s).first->c_str();
}

std::vector<TraceEvent>
PimTracer::snapshotEvents() const
{
    std::unique_lock<std::shared_mutex> lock(gate_);
    std::vector<TraceEvent> events;
    std::lock_guard<std::mutex> reg(registry_mutex_);
    for (const auto &buf : buffers_) {
        const uint64_t n = buf->count.load(std::memory_order_acquire);
        const uint64_t size = buf->ring.size();
        if (size == 0 || n == 0)
            continue;
        const uint64_t kept = n < size ? n : size;
        for (uint64_t i = n - kept; i < n; ++i)
            events.push_back(buf->ring[i % size]);
    }
    return events;
}

uint64_t
PimTracer::droppedEvents() const
{
    std::unique_lock<std::shared_mutex> lock(gate_);
    std::lock_guard<std::mutex> reg(registry_mutex_);
    uint64_t dropped = 0;
    for (const auto &buf : buffers_) {
        const uint64_t n = buf->count.load(std::memory_order_acquire);
        if (n > buf->ring.size())
            dropped += n - buf->ring.size();
    }
    return dropped;
}

namespace {

/** Escape a string for embedding in a JSON string literal. */
std::string
jsonEscape(const char *s)
{
    std::string out;
    for (; s && *s; ++s) {
        const char c = *s;
        switch (c) {
          case '"': out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\n': out += "\\n"; break;
          case '\t': out += "\\t"; break;
          case '\r': out += "\\r"; break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char hex[8];
                std::snprintf(hex, sizeof(hex), "\\u%04x", c);
                out += hex;
            } else {
                out += c;
            }
        }
    }
    return out;
}

/** Microseconds with sub-µs fraction, the Chrome "ts" unit. */
std::string
formatUs(double us)
{
    char tmp[40];
    std::snprintf(tmp, sizeof(tmp), "%.3f", us);
    return tmp;
}

constexpr int kHostPid = 1; ///< host-thread tracks
/** Modeled-PIM-time tracks: one process per context, pid = 1 + ctx.
 *  The default context (ctx 1) keeps the legacy pid 2. */
constexpr int
modeledPid(uint32_t ctx)
{
    return 1 + static_cast<int>(ctx == 0 ? 1 : ctx);
}

} // namespace

bool
PimTracer::exportJson(const std::string &path) const
{
    std::ofstream os(path);
    if (!os) {
        traceError("trace: cannot open '" + path + "' for writing");
        return false;
    }
    os << "{\"displayTimeUnit\":\"ns\",\"traceEvents\":[\n";
    bool first = true;
    auto emit = [&](const std::string &line) {
        if (!first)
            os << ",\n";
        first = false;
        os << line;
    };
    emit("{\"ph\":\"M\",\"pid\":" + std::to_string(kHostPid) +
         ",\"tid\":0,\"name\":\"process_name\",\"args\":{\"name\":"
         "\"pimeval host\"}}");

    std::lock_guard<std::mutex> reg(registry_mutex_);
    // One modeled-time process per context. The default context keeps
    // the legacy "modeled PIM device" name (and pid 2); additional
    // contexts appear as their own processes, named by their labels.
    {
        std::vector<std::pair<uint32_t, std::string>> ctxs = contexts_;
        const bool has_default =
            std::any_of(ctxs.begin(), ctxs.end(),
                        [](const auto &c) { return c.first == 1; });
        if (!has_default)
            ctxs.emplace_back(1, std::string());
        std::sort(ctxs.begin(), ctxs.end());
        for (const auto &[id, label] : ctxs) {
            std::string pname = "modeled PIM device";
            if (!label.empty())
                pname += ": " + label;
            else if (id != 1)
                pname += " (ctx " + std::to_string(id) + ")";
            emit("{\"ph\":\"M\",\"pid\":" +
                 std::to_string(modeledPid(id)) +
                 ",\"tid\":0,\"name\":\"process_name\",\"args\":{"
                 "\"name\":\"" + jsonEscape(pname.c_str()) + "\"}}");
            emit("{\"ph\":\"M\",\"pid\":" +
                 std::to_string(modeledPid(id)) +
                 ",\"tid\":1,\"name\":\"thread_name\",\"args\":{"
                 "\"name\":\"modeled time (committed order)\"}}");
        }
    }
    for (const auto &buf : buffers_) {
        const std::string name =
            buf->name.empty() ? "thread-" + std::to_string(buf->tid)
                              : buf->name;
        emit("{\"ph\":\"M\",\"pid\":" + std::to_string(kHostPid) +
             ",\"tid\":" + std::to_string(buf->tid) +
             ",\"name\":\"thread_name\",\"args\":{\"name\":\"" +
             jsonEscape(name.c_str()) + "\"}}");
    }
    for (const auto &buf : buffers_) {
        const uint64_t n = buf->count.load(std::memory_order_acquire);
        const uint64_t size = buf->ring.size();
        if (size == 0 || n == 0)
            continue;
        const uint64_t kept = n < size ? n : size;
        const std::string tid = std::to_string(buf->tid);
        for (uint64_t i = n - kept; i < n; ++i) {
            const TraceEvent &e = buf->ring[i % size];
            const std::string name = jsonEscape(e.name);
            const std::string cat =
                jsonEscape(e.category ? e.category : "pim");
            const std::string ts = formatUs(e.ts_ns / 1e3);
            std::string line;
            switch (e.type) {
              case TraceEventType::kSpan:
                line = "{\"ph\":\"X\",\"pid\":1,\"tid\":" + tid +
                       ",\"name\":\"" + name + "\",\"cat\":\"" + cat +
                       "\",\"ts\":" + ts +
                       ",\"dur\":" + formatUs(e.dur_ns / 1e3) +
                       ",\"args\":{\"arg\":" + std::to_string(e.arg) +
                       "}}";
                break;
              case TraceEventType::kInstant:
                line = "{\"ph\":\"i\",\"pid\":1,\"tid\":" + tid +
                       ",\"name\":\"" + name + "\",\"cat\":\"" + cat +
                       "\",\"ts\":" + ts + ",\"s\":\"t\"" +
                       ",\"args\":{\"arg\":" + std::to_string(e.arg) +
                       "}}";
                break;
              case TraceEventType::kCounter:
                line = "{\"ph\":\"C\",\"pid\":1,\"tid\":" + tid +
                       ",\"name\":\"" + name + "\",\"ts\":" + ts +
                       ",\"args\":{\"value\":" +
                       formatUs(e.modeled_dur_sec) + "}}";
                break;
              case TraceEventType::kModeledSpan:
                // Modeled PIM clock: ts is the modeled start (µs of
                // modeled time), host_ts_us ties it back to the host
                // timeline (the dual-clock correspondence).
                line = "{\"ph\":\"X\",\"pid\":" +
                       std::to_string(modeledPid(e.ctx)) +
                       ",\"tid\":1" +
                       std::string(",\"name\":\"") + name +
                       "\",\"cat\":\"" + cat +
                       "\",\"ts\":" + formatUs(e.modeled_sec * 1e6) +
                       ",\"dur\":" +
                       formatUs(e.modeled_dur_sec * 1e6) +
                       ",\"args\":{\"host_ts_us\":" +
                       formatUs(e.ts_ns / 1e3) +
                       ",\"cores\":" + std::to_string(e.arg) + "}}";
                break;
            }
            emit(line);
        }
    }
    os << "\n]}\n";
    return static_cast<bool>(os);
}

bool
PimTracer::exportCsv(const std::string &path) const
{
    std::ofstream os(path);
    if (!os) {
        traceError("trace: cannot open '" + path + "' for writing");
        return false;
    }
    os << "type,tid,name,category,ts_ns,dur_ns,modeled_sec,"
          "modeled_dur_sec,arg\n";
    static const char *kTypeNames[] = {"span", "instant", "counter",
                                       "modeled_span"};
    std::lock_guard<std::mutex> reg(registry_mutex_);
    for (const auto &buf : buffers_) {
        const uint64_t n = buf->count.load(std::memory_order_acquire);
        const uint64_t size = buf->ring.size();
        if (size == 0 || n == 0)
            continue;
        const uint64_t kept = n < size ? n : size;
        for (uint64_t i = n - kept; i < n; ++i) {
            const TraceEvent &e = buf->ring[i % size];
            os << kTypeNames[static_cast<int>(e.type)] << ','
               << buf->tid << ',' << (e.name ? e.name : "") << ','
               << (e.category ? e.category : "") << ',' << e.ts_ns
               << ',' << e.dur_ns << ',' << e.modeled_sec << ','
               << e.modeled_dur_sec << ',' << e.arg << '\n';
        }
    }
    return static_cast<bool>(os);
}

// ---------------------------------------------------------------------------
// Trace validation: parse back what exportJson writes (shared reader
// in core/pim_json.h) and check the Chrome trace-event schema.
// ---------------------------------------------------------------------------

bool
pimValidateChromeTraceFile(const std::string &path, size_t *num_events,
                           std::string *error)
{
    if (num_events)
        *num_events = 0;
    if (error)
        error->clear();
    std::ifstream is(path);
    if (!is) {
        if (error)
            *error = "cannot open '" + path + "'";
        return false;
    }
    std::stringstream ss;
    ss << is.rdbuf();
    const std::string text = ss.str();

    JsonValue root;
    std::string parse_error;
    JsonParser parser(text, &parse_error);
    if (!parser.parse(&root)) {
        if (error)
            *error = "JSON parse error: " + parse_error;
        return false;
    }
    if (root.kind != JsonValue::Kind::kObject) {
        if (error)
            *error = "top level is not an object";
        return false;
    }
    const JsonValue *events = root.find("traceEvents");
    if (!events || events->kind != JsonValue::Kind::kArray) {
        if (error)
            *error = "missing traceEvents array";
        return false;
    }
    for (size_t i = 0; i < events->array.size(); ++i) {
        const JsonValue &e = events->array[i];
        const std::string where =
            "traceEvents[" + std::to_string(i) + "]";
        if (e.kind != JsonValue::Kind::kObject) {
            if (error)
                *error = where + " is not an object";
            return false;
        }
        const JsonValue *ph = e.find("ph");
        const JsonValue *name = e.find("name");
        const JsonValue *pid = e.find("pid");
        const JsonValue *tid = e.find("tid");
        if (!ph || ph->kind != JsonValue::Kind::kString ||
            ph->str.empty() || !name ||
            name->kind != JsonValue::Kind::kString || !pid ||
            pid->kind != JsonValue::Kind::kNumber || !tid ||
            tid->kind != JsonValue::Kind::kNumber) {
            if (error)
                *error = where + " lacks ph/name/pid/tid";
            return false;
        }
        if (ph->str != "M") {
            const JsonValue *ts = e.find("ts");
            if (!ts || ts->kind != JsonValue::Kind::kNumber ||
                ts->number < 0) {
                if (error)
                    *error = where + " lacks a valid ts";
                return false;
            }
            if (ph->str == "X") {
                const JsonValue *dur = e.find("dur");
                if (!dur ||
                    dur->kind != JsonValue::Kind::kNumber ||
                    dur->number < 0) {
                    if (error)
                        *error = where + " (X) lacks a valid dur";
                    return false;
                }
            }
        }
    }
    if (num_events)
        *num_events = events->array.size();
    return true;
}

} // namespace pimeval
