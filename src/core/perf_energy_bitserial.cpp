/**
 * @file
 * Bit-serial performance/energy model implementation.
 */

#include "core/perf_energy_bitserial.h"

#include <algorithm>
#include <mutex>
#include <shared_mutex>

#include "bitserial/microprograms.h"
#include "core/pim_metrics.h"

namespace pimeval {

PerfEnergyBitSerial::PerfEnergyBitSerial(const PimDeviceConfig &config)
    : PerfEnergyModel(config)
{
}

MicroOpCounts
PerfEnergyBitSerial::countsForCmd(PimCmdEnum cmd, unsigned bits,
                                  uint64_t scalar, unsigned aux) const
{
    // Scalar values only matter for scalar-specialized commands; fold
    // the key so non-scalar commands share one cache entry.
    const uint64_t key_scalar = pimCmdHasScalar(cmd) ? scalar : 0;
    const CountsKey key{cmd, bits, key_scalar, aux};
    {
        std::shared_lock<std::shared_mutex> lock(cache_mutex_);
        auto it = counts_cache_.find(key);
        if (it != counts_cache_.end()) {
            PIM_METRIC_COUNT("cache.bitserial_counts.hit", 1);
            return it->second;
        }
    }
    PIM_METRIC_COUNT("cache.bitserial_counts.miss", 1);
    const MicroOpCounts counts = generateCounts(cmd, bits, scalar, aux);
    std::unique_lock<std::shared_mutex> lock(cache_mutex_);
    counts_cache_.emplace(key, counts);
    return counts;
}

MicroOpCounts
PerfEnergyBitSerial::generateCounts(PimCmdEnum cmd, unsigned bits,
                                    uint64_t scalar, unsigned aux) const
{
    // Generate the microprogram with canonical row bases; only the op
    // counts matter for costing. Rows: a at 0, b at bits, dest at
    // 2*bits (3n rows opened per two-input op, as in the paper).
    const uint32_t a = 0;
    const uint32_t b = bits;
    const uint32_t d = 2 * bits;
    const bool sgn = true; // signed/unsigned compare cost is identical

    MicroProgram prog;
    switch (cmd) {
      case PimCmdEnum::kAdd:
        prog = MicroPrograms::add(a, b, d, bits);
        break;
      case PimCmdEnum::kSub:
        prog = MicroPrograms::sub(a, b, d, bits);
        break;
      case PimCmdEnum::kMul:
        prog = MicroPrograms::mul(a, b, d, bits);
        break;
      case PimCmdEnum::kDiv:
        // Restoring division microprogram (signed variant costs the
        // additional magnitude/negate passes).
        prog = MicroPrograms::divide(a, b, d, /*scratch=*/3 * bits,
                                     bits, /*is_signed=*/true);
        break;
      case PimCmdEnum::kMin:
        prog = MicroPrograms::minOp(a, b, d, bits, sgn);
        break;
      case PimCmdEnum::kMax:
        prog = MicroPrograms::maxOp(a, b, d, bits, sgn);
        break;
      case PimCmdEnum::kAbs:
        prog = MicroPrograms::absOp(a, d, bits);
        break;
      case PimCmdEnum::kAnd:
        prog = MicroPrograms::andOp(a, b, d, bits);
        break;
      case PimCmdEnum::kOr:
        prog = MicroPrograms::orOp(a, b, d, bits);
        break;
      case PimCmdEnum::kXor:
        prog = MicroPrograms::xorOp(a, b, d, bits);
        break;
      case PimCmdEnum::kXnor:
        prog = MicroPrograms::xnorOp(a, b, d, bits);
        break;
      case PimCmdEnum::kNot:
        prog = MicroPrograms::notOp(a, d, bits);
        break;
      case PimCmdEnum::kGT:
        // a > b == b < a: identical cost to lessThan.
      case PimCmdEnum::kLT:
        prog = MicroPrograms::lessThan(a, b, d, bits, sgn);
        break;
      case PimCmdEnum::kEQ:
      case PimCmdEnum::kNE:
        prog = MicroPrograms::equal(a, b, d, bits);
        break;
      case PimCmdEnum::kAddScalar:
        prog = MicroPrograms::addScalar(a, d, bits, scalar);
        break;
      case PimCmdEnum::kSubScalar:
        prog = MicroPrograms::subScalar(a, d, bits, scalar);
        break;
      case PimCmdEnum::kMulScalar:
        prog = MicroPrograms::mulScalar(a, d, bits, scalar);
        break;
      case PimCmdEnum::kDivScalar:
        return countsForCmd(PimCmdEnum::kDiv, bits, 0, 0);
      case PimCmdEnum::kMinScalar:
      case PimCmdEnum::kMaxScalar:
        // Scalar compare + selective overwrite.
        prog = MicroPrograms::lessThanScalar(a, d, bits, scalar, sgn);
        prog.append(MicroPrograms::copy(a, d, bits));
        break;
      case PimCmdEnum::kAndScalar:
      case PimCmdEnum::kOrScalar:
      case PimCmdEnum::kXorScalar:
        // One read, one or two logic ops, one write per bit.
        prog = MicroPrograms::notOp(a, d, bits);
        break;
      case PimCmdEnum::kGTScalar:
      case PimCmdEnum::kLTScalar:
        prog = MicroPrograms::lessThanScalar(a, d, bits, scalar, sgn);
        break;
      case PimCmdEnum::kEQScalar:
        prog = MicroPrograms::equalScalar(a, d, bits, scalar);
        break;
      case PimCmdEnum::kScaledAdd:
        // dest = a*scalar + b.
        prog = MicroPrograms::mulScalar(a, d, bits, scalar);
        prog.append(MicroPrograms::add(d, b, d, bits));
        break;
      case PimCmdEnum::kShiftBitsLeft:
        prog = MicroPrograms::shiftLeft(a, d, bits, aux);
        break;
      case PimCmdEnum::kShiftBitsRight:
        prog = MicroPrograms::shiftRight(a, d, bits, aux, true);
        break;
      case PimCmdEnum::kPopCount:
        prog = MicroPrograms::popCount(a, d, bits, bits);
        break;
      case PimCmdEnum::kBroadcast:
        prog = MicroPrograms::broadcast(d, bits, scalar);
        break;
      case PimCmdEnum::kCopyD2D:
        prog = MicroPrograms::copy(a, d, bits);
        break;
      case PimCmdEnum::kRedSum: {
        // Row-wide popcount hardware: read each bit-slice row once,
        // plus the reduction-tree latency modeled as logic ops.
        MicroOpCounts c;
        c.reads = bits;
        c.logic = bits * 13; // log2(8192) levels of the popcount tree
        return c;
      }
      default:
        break;
    }

    MicroOpCounts counts;
    counts.reads = prog.numReads();
    counts.writes = prog.numWrites();
    counts.logic = prog.numLogicOps();
    return counts;
}

double
PerfEnergyBitSerial::chunkLatency(const MicroOpCounts &counts) const
{
    const auto &dram = config_.dram;
    return (static_cast<double>(counts.reads) * dram.row_read_ns +
            static_cast<double>(counts.writes) * dram.row_write_ns +
            static_cast<double>(counts.logic) * dram.logic_op_ns) * 1e-9;
}

double
PerfEnergyBitSerial::chunkEnergy(const MicroOpCounts &counts) const
{
    const double row_energy = power_.rowActPreEnergy();
    const double logic_energy = power_.bitSerialLogicEnergy();
    return static_cast<double>(counts.reads + counts.writes) * row_energy +
        static_cast<double>(counts.logic) * logic_energy;
}

double
PerfEnergyBitSerial::popcountTreeLatency() const
{
    return 13.0 * config_.dram.logic_op_ns * 1e-9;
}

PimOpCost
PerfEnergyBitSerial::costOp(const PimOpProfile &profile) const
{
    const MicroOpCounts counts =
        countsForCmd(profile.cmd, profile.bits, profile.scalar,
                     profile.aux);

    // Chunks on the busiest core (a chunk = one row-buffer's worth of
    // vertically laid-out elements).
    const uint64_t cols = config_.colsPerCore();
    const uint64_t chunks =
        (profile.max_elems_per_core + cols - 1) / cols;

    PimOpCost cost;
    cost.runtime_sec = chunkLatency(counts) * static_cast<double>(chunks);

    // Energy across all active cores: total chunk instances.
    const uint64_t total_chunks =
        std::max<uint64_t>(1, (profile.num_elements + cols - 1) / cols);
    cost.energy_j = chunkEnergy(counts) *
        static_cast<double>(total_chunks);
    cost.energy_j += background(cost.runtime_sec, profile.cores_used);
    return cost;
}

} // namespace pimeval
