/**
 * @file
 * Context-handle API (API v2): multiple independent simulated PIM
 * devices in one process.
 *
 * A PimContext owns a full device instance — resource manager,
 * command pipeline, fusion window, statistics, and trace track — with
 * zero mutable state shared between contexts, so N contexts execute
 * concurrently from N host threads. Two ways to use a context:
 *
 *   1. Pin it: pimSetCurrentContext(ctx) makes every subsequent
 *      global API call (pimAlloc, pimAdd, ...) on the *calling
 *      thread* target ctx. Existing code runs against any context
 *      unmodified. Threads that never pin fall back to the
 *      process-default context created by pimCreateDevice.
 *   2. Scope it: PimContextScope pins for one C++ scope and restores
 *      the previous pin on exit (exception-safe).
 *
 * The legacy pimCreateDevice/pimDeleteDevice pair is now a shim that
 * manages the process-default context; mixing it with explicit
 * contexts is fully supported. In the Chrome trace every context
 * exports its own modeled-time track (pid 1 + context id) named after
 * its label.
 */

#ifndef PIMEVAL_CORE_PIM_CONTEXT_H_
#define PIMEVAL_CORE_PIM_CONTEXT_H_

#include <cstdint>
#include <map>
#include <string>

#include "core/pim_metrics.h"
#include "core/pim_params.h"
#include "core/pim_types.h"

namespace pimeval {
struct PimContextRec;
}

/** Opaque handle to one simulated device context. */
typedef pimeval::PimContextRec *PimContext;

/**
 * Create an independent device context for @p device with default
 * parameters (same defaults as pimCreateDevice). @p label names the
 * context in traces, logs, and reports; may be empty.
 * @return the handle, or nullptr on failure (pimGetLastError has the
 *         detail). Does not change any thread's current context.
 */
PimContext pimCreateContext(PimDeviceEnum device,
                            const char *label = "");

/** As pimCreateContext, from a full device configuration. */
PimContext
pimCreateContextFromConfig(const pimeval::PimDeviceConfig &config,
                           const char *label = "");

/**
 * Destroy a context: drains its pipeline, flushes fusion, frees its
 * objects. The handle is dead afterwards. The caller must ensure no
 * other thread is executing against the context. If the calling
 * thread had the context pinned, the pin is cleared.
 */
PimStatus pimDestroyContext(PimContext ctx);

/**
 * Pin @p ctx as the calling thread's current context: all global API
 * calls from this thread target it until changed. nullptr unpins
 * (restores process-default resolution). Fails on dead handles.
 */
PimStatus pimSetCurrentContext(PimContext ctx);

/** The calling thread's pinned context (nullptr when unpinned). */
PimContext pimGetCurrentContext();

/** Stable nonzero id of a context (0 for nullptr). The context's
 *  modeled trace track is pid 1 + id. */
uint32_t pimContextId(PimContext ctx);

/** The label given at creation ("" for nullptr / unlabeled). */
const char *pimContextLabel(PimContext ctx);

/** Device type a context simulates (PIM_DEVICE_NONE for nullptr). */
PimDeviceEnum pimContextDeviceType(PimContext ctx);

/** Resolved memory-timing backend costing this context's H2D/D2H
 *  transfers (never PIM_MEM_BACKEND_DEFAULT for a live context;
 *  DEFAULT for nullptr / dead handles). */
PimMemBackend pimContextMemBackend(PimContext ctx);

/**
 * Snapshot of @p ctx's metric domain: the registry values recorded by
 * threads executing in this context (the process-wide aggregate is
 * pimGetAllMetrics). Empty for nullptr / dead handles, and for
 * contexts beyond the domain-slot capacity (kPimMetricMaxDomains).
 */
std::map<std::string, pimeval::PimMetricValue>
pimContextMetrics(PimContext ctx);

namespace pimeval {

/**
 * RAII pin: targets @p ctx for the lifetime of the scope, restoring
 * the previous pin (or unpinned state) on destruction.
 */
class PimContextScope
{
  public:
    explicit PimContextScope(PimContext ctx)
        : prev_(pimGetCurrentContext())
    {
        pimSetCurrentContext(ctx);
    }
    ~PimContextScope() { pimSetCurrentContext(prev_); }

    PimContextScope(const PimContextScope &) = delete;
    PimContextScope &operator=(const PimContextScope &) = delete;

  private:
    PimContext prev_;
};

} // namespace pimeval

#endif // PIMEVAL_CORE_PIM_CONTEXT_H_
