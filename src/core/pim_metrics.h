/**
 * @file
 * Process-wide metrics registry: named counters, gauges, and
 * histograms describing the simulator's own behavior (pipeline queue
 * depth, hazard stalls by kind, free-list and cost-model cache hit
 * rates, threadpool work distribution, bytes copied).
 *
 * Metrics are always-on but near-free: a counter increment is one
 * relaxed atomic add, and hot loops batch locally and add once per
 * chunk. Handles resolved by name are stable for the process lifetime,
 * so instrumentation sites look them up once through a magic static:
 *
 *     static MetricCounter &hits =
 *         PimMetrics::instance().counter("freelist.hit");
 *     hits.add(1);
 *
 * Snapshot/reset/dump are thread-safe. Values reset to zero via
 * pimResetMetrics / PimMetrics::reset without invalidating handles.
 * The -DPIMEVAL_TRACING=OFF build keeps metrics available (they are
 * cheap and tests rely on them); only the event-tracing hooks compile
 * away.
 */

#ifndef PIMEVAL_CORE_PIM_METRICS_H_
#define PIMEVAL_CORE_PIM_METRICS_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <ostream>
#include <string>
#include <vector>

namespace pimeval {

/** Monotonic (between resets) event count. */
class MetricCounter
{
  public:
    explicit MetricCounter(std::string name) : name_(std::move(name)) {}

    void add(uint64_t n = 1)
    {
        value_.fetch_add(n, std::memory_order_relaxed);
    }

    uint64_t value() const
    {
        return value_.load(std::memory_order_relaxed);
    }

    void reset() { value_.store(0, std::memory_order_relaxed); }

    const std::string &name() const { return name_; }

  private:
    const std::string name_;
    std::atomic<uint64_t> value_{0};
};

/** Last-written instantaneous value (e.g. current queue depth). */
class MetricGauge
{
  public:
    explicit MetricGauge(std::string name) : name_(std::move(name)) {}

    void set(double v) { bits_.store(pack(v), std::memory_order_relaxed); }

    double value() const
    {
        return unpack(bits_.load(std::memory_order_relaxed));
    }

    void reset() { set(0.0); }

    const std::string &name() const { return name_; }

  private:
    static uint64_t pack(double v)
    {
        uint64_t b;
        static_assert(sizeof(b) == sizeof(v));
        __builtin_memcpy(&b, &v, sizeof(b));
        return b;
    }
    static double unpack(uint64_t b)
    {
        double v;
        __builtin_memcpy(&v, &b, sizeof(v));
        return v;
    }

    const std::string name_;
    std::atomic<uint64_t> bits_{0};
};

/**
 * Streaming distribution summary: count / sum / min / max, enough for
 * mean queue depth and stall sizing without bucket bookkeeping on the
 * hot path. record() is lock-free (CAS loops only for min/max).
 */
class MetricHistogram
{
  public:
    explicit MetricHistogram(std::string name) : name_(std::move(name))
    {
    }

    void record(double v);

    uint64_t count() const
    {
        return count_.load(std::memory_order_relaxed);
    }
    double sum() const;
    double min() const; ///< 0 when no samples
    double max() const; ///< 0 when no samples
    double mean() const
    {
        const uint64_t n = count();
        return n ? sum() / static_cast<double>(n) : 0.0;
    }

    void reset();

    const std::string &name() const { return name_; }

  private:
    /** Bit patterns of +inf / -inf: the unset sentinels for min/max,
     *  so concurrent first samples need no special case. */
    static constexpr uint64_t kPosInfBits = 0x7FF0000000000000ull;
    static constexpr uint64_t kNegInfBits = 0xFFF0000000000000ull;

    const std::string name_;
    std::atomic<uint64_t> count_{0};
    std::atomic<uint64_t> sum_bits_{0}; ///< double, CAS-accumulated
    std::atomic<uint64_t> min_bits_{kPosInfBits};
    std::atomic<uint64_t> max_bits_{kNegInfBits};
};

/** One metric's exported state (see PimMetrics::snapshotAll). */
struct PimMetricValue
{
    enum class Kind { kCounter, kGauge, kHistogram };
    Kind kind = Kind::kCounter;
    double value = 0.0;   ///< counter/gauge value; histogram mean
    uint64_t count = 0;   ///< histogram sample count (counters: value)
    double sum = 0.0;     ///< histogram only
    double min = 0.0;     ///< histogram only
    double max = 0.0;     ///< histogram only
};

/**
 * The registry. Naming convention: dotted lowercase paths grouped by
 * subsystem — "pipeline.hazard.raw", "freelist.hit",
 * "threadpool.chunks_stolen", "cache.bitserial_counts.miss",
 * "copy.bytes_h2d". See docs/OBSERVABILITY.md for the full glossary.
 */
class PimMetrics
{
  public:
    static PimMetrics &instance();

    /** Find-or-create; the returned reference never moves. */
    MetricCounter &counter(const std::string &name);
    MetricGauge &gauge(const std::string &name);
    MetricHistogram &histogram(const std::string &name);

    /**
     * Current value of a metric by name: counters yield their count,
     * gauges their value, histograms their mean. @return false when no
     * such metric exists.
     */
    bool get(const std::string &name, double *value) const;

    /** Full snapshot of every registered metric, sorted by name. */
    std::map<std::string, PimMetricValue> snapshotAll() const;

    /** Zero all values (handles stay valid). */
    void reset();

    /** Human-readable table of all non-zero metrics. */
    void printReport(std::ostream &os) const;

    /** JSON object {"name": value-or-histogram-object, ...}. */
    void dumpJson(std::ostream &os) const;

  private:
    PimMetrics() = default;

    mutable std::mutex mutex_;
    std::map<std::string, std::unique_ptr<MetricCounter>> counters_;
    std::map<std::string, std::unique_ptr<MetricGauge>> gauges_;
    std::map<std::string, std::unique_ptr<MetricHistogram>> histograms_;
};

} // namespace pimeval

/**
 * Convenience hooks mirroring the PIM_TRACE_* style: resolve the
 * handle once per site via a magic static, then relaxed-atomic update.
 */
#define PIM_METRIC_COUNT(metric_name, n)                               \
    do {                                                               \
        static ::pimeval::MetricCounter &pim_metric_site_ =            \
            ::pimeval::PimMetrics::instance().counter(metric_name);    \
        pim_metric_site_.add(static_cast<uint64_t>(n));                \
    } while (0)

#define PIM_METRIC_GAUGE(metric_name, v)                               \
    do {                                                               \
        static ::pimeval::MetricGauge &pim_metric_site_ =              \
            ::pimeval::PimMetrics::instance().gauge(metric_name);      \
        pim_metric_site_.set(static_cast<double>(v));                  \
    } while (0)

#define PIM_METRIC_RECORD(metric_name, v)                              \
    do {                                                               \
        static ::pimeval::MetricHistogram &pim_metric_site_ =          \
            ::pimeval::PimMetrics::instance().histogram(metric_name);  \
        pim_metric_site_.record(static_cast<double>(v));               \
    } while (0)

#endif // PIMEVAL_CORE_PIM_METRICS_H_
