/**
 * @file
 * Process-wide metrics registry: named counters, gauges, and
 * histograms describing the simulator's own behavior (pipeline queue
 * depth, hazard stalls by kind, free-list and cost-model cache hit
 * rates, threadpool work distribution, bytes copied).
 *
 * Metrics are always-on but near-free: a counter increment is one
 * relaxed atomic add, and hot loops batch locally and add once per
 * chunk. Handles resolved by name are stable for the process lifetime,
 * so instrumentation sites look them up once through a magic static:
 *
 *     static MetricCounter &hits =
 *         PimMetrics::instance().counter("freelist.hit");
 *     hits.add(1);
 *
 * Histograms are log-bucketed (HdrHistogram style): linear sub-buckets
 * inside power-of-two octaves, so record() stays lock-free and
 * percentile queries (p50/p90/p99/p99.9) answer within one bucket's
 * relative error (<= 1/kSubBuckets per octave, ~6%).
 *
 * Per-context metric domains: every metric additionally accumulates
 * into the calling thread's *current domain* — a slot assigned to a
 * live PimContext — so multi-tenant runs get isolated per-context
 * views while the aggregate view is preserved. The domain of a thread
 * is set by the dispatch layer (PimSim::device()) and by each
 * device's worker threads at startup; threads with no domain update
 * only the aggregate.
 *
 * Snapshot/reset/dump are thread-safe, and reset is atomic with
 * respect to a concurrent snapshotAll (both serialize on the registry
 * mutex), so a background sampler never observes a half-reset
 * registry. Values reset to zero via pimResetMetrics /
 * PimMetrics::reset without invalidating handles. The
 * -DPIMEVAL_TRACING=OFF build keeps metrics available (they are cheap
 * and tests rely on them); only the event-tracing hooks compile away.
 */

#ifndef PIMEVAL_CORE_PIM_METRICS_H_
#define PIMEVAL_CORE_PIM_METRICS_H_

#include <atomic>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <ostream>
#include <string>
#include <vector>

namespace pimeval {

/** Maximum simultaneously-live metric domains (contexts). Contexts
 *  beyond this accumulate into the aggregate only. */
inline constexpr int kPimMetricMaxDomains = 64;

namespace detail {
/** The calling thread's metric-domain slot (-1 = aggregate only). */
extern thread_local int tls_metric_domain;
} // namespace detail

/** Monotonic (between resets) event count. */
class MetricCounter
{
  public:
    explicit MetricCounter(std::string name) : name_(std::move(name)) {}

    void add(uint64_t n = 1)
    {
        value_.fetch_add(n, std::memory_order_relaxed);
        const int d = detail::tls_metric_domain;
        if (d >= 0)
            domains_[d].fetch_add(n, std::memory_order_relaxed);
    }

    uint64_t value() const
    {
        return value_.load(std::memory_order_relaxed);
    }

    uint64_t valueInDomain(int slot) const
    {
        if (slot < 0 || slot >= kPimMetricMaxDomains)
            return 0;
        return domains_[slot].load(std::memory_order_relaxed);
    }

    void reset()
    {
        value_.store(0, std::memory_order_relaxed);
        for (auto &d : domains_)
            d.store(0, std::memory_order_relaxed);
    }

    void resetDomain(int slot)
    {
        if (slot >= 0 && slot < kPimMetricMaxDomains)
            domains_[slot].store(0, std::memory_order_relaxed);
    }

    const std::string &name() const { return name_; }

  private:
    const std::string name_;
    std::atomic<uint64_t> value_{0};
    std::atomic<uint64_t> domains_[kPimMetricMaxDomains]{};
};

/** Last-written instantaneous value (e.g. current queue depth). */
class MetricGauge
{
  public:
    explicit MetricGauge(std::string name) : name_(std::move(name)) {}

    void set(double v)
    {
        bits_.store(pack(v), std::memory_order_relaxed);
        const int d = detail::tls_metric_domain;
        if (d >= 0)
            domains_[d].store(pack(v), std::memory_order_relaxed);
    }

    double value() const
    {
        return unpack(bits_.load(std::memory_order_relaxed));
    }

    double valueInDomain(int slot) const
    {
        if (slot < 0 || slot >= kPimMetricMaxDomains)
            return 0.0;
        return unpack(domains_[slot].load(std::memory_order_relaxed));
    }

    void reset()
    {
        bits_.store(0, std::memory_order_relaxed);
        for (auto &d : domains_)
            d.store(0, std::memory_order_relaxed);
    }

    void resetDomain(int slot)
    {
        if (slot >= 0 && slot < kPimMetricMaxDomains)
            domains_[slot].store(0, std::memory_order_relaxed);
    }

    const std::string &name() const { return name_; }

  private:
    static uint64_t pack(double v)
    {
        uint64_t b;
        static_assert(sizeof(b) == sizeof(v));
        __builtin_memcpy(&b, &v, sizeof(b));
        return b;
    }
    static double unpack(uint64_t b)
    {
        double v;
        __builtin_memcpy(&v, &b, sizeof(v));
        return v;
    }

    const std::string name_;
    std::atomic<uint64_t> bits_{0};
    std::atomic<uint64_t> domains_[kPimMetricMaxDomains]{};
};

/**
 * Lock-free log-bucketed distribution: count / sum / min / max plus
 * kSubBuckets linear bins per power-of-two octave over
 * [2^kMinExp, 2^kMaxExp). record() is wait-free except for the
 * CAS loops on sum/min/max; percentile() walks the bins and returns
 * the hit bucket's midpoint, clamped to the observed min/max, so the
 * relative error is bounded by half a bucket width
 * (1 / (2 * kSubBuckets) ~= 3%). Values <= 0 (and sub-2^kMinExp
 * dust) land in a dedicated underflow bin counted as 0.0; values
 * >= 2^kMaxExp land in the overflow bin counted as the observed max.
 *
 * Per-domain bins are allocated lazily the first time a thread with
 * that domain records, so histograms untouched by a context cost it
 * nothing.
 */
class MetricHistogram
{
  public:
    static constexpr int kSubBuckets = 16; ///< linear bins per octave
    static constexpr int kMinExp = -32;    ///< 2^-32 ~ 2.3e-10
    static constexpr int kMaxExp = 64;     ///< 2^64  ~ 1.8e19
    static constexpr int kNumOctaves = kMaxExp - kMinExp;
    /** underflow + body + overflow */
    static constexpr int kNumBuckets = 2 + kNumOctaves * kSubBuckets;

    explicit MetricHistogram(std::string name) : name_(std::move(name))
    {
    }
    ~MetricHistogram();

    void record(double v);

    uint64_t count() const
    {
        return agg_.count.load(std::memory_order_relaxed);
    }
    double sum() const;
    double min() const; ///< 0 when no samples
    double max() const; ///< 0 when no samples
    double mean() const
    {
        const uint64_t n = count();
        return n ? sum() / static_cast<double>(n) : 0.0;
    }

    /**
     * Quantile estimate for @p q in [0, 1] (0.5 = median). Derived
     * entirely from the bucket bins, so a concurrent reset yields a
     * self-consistent (possibly partial) answer, never garbage.
     * Returns 0 when the histogram is empty.
     */
    double percentile(double q) const;

    /** Per-domain views (0/empty when the domain never recorded). */
    uint64_t countInDomain(int slot) const;
    double sumInDomain(int slot) const;
    double minInDomain(int slot) const;
    double maxInDomain(int slot) const;
    double meanInDomain(int slot) const;
    double percentileInDomain(int slot, double q) const;

    void reset();
    void resetDomain(int slot);

    const std::string &name() const { return name_; }

    /** Bucket index a value lands in (exposed for tests). */
    static int bucketIndex(double v);
    /** Midpoint value the bucket reports (exposed for tests). */
    static double bucketMid(int idx);

  private:
    /** Bit patterns of +inf / -inf: the unset sentinels for min/max,
     *  so concurrent first samples need no special case. */
    static constexpr uint64_t kPosInfBits = 0x7FF0000000000000ull;
    static constexpr uint64_t kNegInfBits = 0xFFF0000000000000ull;

    /** One complete set of accumulators (aggregate or one domain). */
    struct Bins
    {
        std::atomic<uint64_t> count{0};
        std::atomic<uint64_t> sum_bits{0}; ///< double, CAS-accumulated
        std::atomic<uint64_t> min_bits{kPosInfBits};
        std::atomic<uint64_t> max_bits{kNegInfBits};
        std::atomic<uint64_t> buckets[kNumBuckets]{};

        void record(double v);
        void reset();
        double percentile(double q) const;
    };

    /** Lazily create (or fetch) one domain's bins. */
    Bins *domainBins(int slot);
    const Bins *domainBinsIfAny(int slot) const;

    const std::string name_;
    Bins agg_;
    std::atomic<Bins *> domains_[kPimMetricMaxDomains]{};
};

/** One metric's exported state (see PimMetrics::snapshotAll). */
struct PimMetricValue
{
    enum class Kind { kCounter, kGauge, kHistogram };
    Kind kind = Kind::kCounter;
    double value = 0.0;   ///< counter/gauge value; histogram mean
    uint64_t count = 0;   ///< histogram sample count (counters: value)
    double sum = 0.0;     ///< histogram only
    double min = 0.0;     ///< histogram only
    double max = 0.0;     ///< histogram only
    double p50 = 0.0;     ///< histogram only (log-bucket estimate)
    double p90 = 0.0;     ///< histogram only
    double p99 = 0.0;     ///< histogram only
    double p999 = 0.0;    ///< histogram only
};

/**
 * The registry. Naming convention: dotted lowercase paths grouped by
 * subsystem — "pipeline.hazard.raw", "freelist.hit",
 * "threadpool.chunks_stolen", "cache.bitserial_counts.miss",
 * "copy.bytes_h2d". See docs/OBSERVABILITY.md for the full glossary.
 */
class PimMetrics
{
  public:
    static PimMetrics &instance();

    /** Find-or-create; the returned reference never moves. */
    MetricCounter &counter(const std::string &name);
    MetricGauge &gauge(const std::string &name);
    MetricHistogram &histogram(const std::string &name);

    /**
     * Current value of a metric by name: counters yield their count,
     * gauges their value, histograms their mean. @return false when no
     * such metric exists.
     */
    bool get(const std::string &name, double *value) const;

    /** Full snapshot of every registered metric, sorted by name. */
    std::map<std::string, PimMetricValue> snapshotAll() const;

    /** Zero all values, aggregate and every domain (handles stay
     *  valid). Serializes with snapshotAll on the registry mutex, so
     *  concurrent samplers see either the before or the after state,
     *  never a mix of metrics from both. */
    void reset();

    /** Human-readable table of all non-zero metrics. */
    void printReport(std::ostream &os) const;

    /** JSON object {"name": value-or-histogram-object, ...}. */
    void dumpJson(std::ostream &os) const;

    // --- Per-context metric domains ---

    /**
     * Assign a domain slot to context @p ctx_id (called at context
     * creation). Returns the slot, or -1 when all
     * kPimMetricMaxDomains slots are taken (the context then updates
     * the aggregate only).
     */
    int acquireDomain(uint64_t ctx_id);

    /**
     * Release the context's slot (called at context destruction):
     * zeroes the slot across every registered metric so a future
     * context reusing it starts clean.
     */
    void releaseDomain(uint64_t ctx_id);

    /** Slot of a live context (-1 when none). */
    int domainSlot(uint64_t ctx_id) const;

    /** Snapshot of every metric restricted to @p ctx_id's domain
     *  (empty map when the context has no slot). */
    std::map<std::string, PimMetricValue>
    snapshotDomain(uint64_t ctx_id) const;

    /** Set / read the calling thread's current domain slot. */
    static void setThreadDomain(int slot)
    {
        detail::tls_metric_domain =
            (slot >= 0 && slot < kPimMetricMaxDomains) ? slot : -1;
    }
    static int threadDomain() { return detail::tls_metric_domain; }

  private:
    PimMetrics() = default;

    /** reset() body for callers already holding the mutex. */
    void resetLocked();

    mutable std::mutex mutex_;
    std::map<std::string, std::unique_ptr<MetricCounter>> counters_;
    std::map<std::string, std::unique_ptr<MetricGauge>> gauges_;
    std::map<std::string, std::unique_ptr<MetricHistogram>> histograms_;

    /** Live domain assignments: context id -> slot. */
    std::map<uint64_t, int> domain_of_ctx_;
    uint64_t domain_slots_used_ = 0; ///< bitmask over 64 slots
};

} // namespace pimeval

/**
 * Convenience hooks mirroring the PIM_TRACE_* style: resolve the
 * handle once per site via a magic static, then relaxed-atomic update.
 */
#define PIM_METRIC_COUNT(metric_name, n)                               \
    do {                                                               \
        static ::pimeval::MetricCounter &pim_metric_site_ =            \
            ::pimeval::PimMetrics::instance().counter(metric_name);    \
        pim_metric_site_.add(static_cast<uint64_t>(n));                \
    } while (0)

#define PIM_METRIC_GAUGE(metric_name, v)                               \
    do {                                                               \
        static ::pimeval::MetricGauge &pim_metric_site_ =              \
            ::pimeval::PimMetrics::instance().gauge(metric_name);      \
        pim_metric_site_.set(static_cast<double>(v));                  \
    } while (0)

#define PIM_METRIC_RECORD(metric_name, v)                              \
    do {                                                               \
        static ::pimeval::MetricHistogram &pim_metric_site_ =          \
            ::pimeval::PimMetrics::instance().histogram(metric_name);  \
        pim_metric_site_.record(static_cast<double>(v));               \
    } while (0)

#endif // PIMEVAL_CORE_PIM_METRICS_H_
