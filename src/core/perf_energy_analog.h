/**
 * @file
 * Performance/energy model of analog bit-serial PIM (SIMDRAM-style),
 * the analog-technique extension the paper lists as in-progress work.
 *
 * Costing derives from generated AnalogPrograms:
 *   runtime = chunks x (AAPs * tAAP + TRAs * tTRA)
 * with an AAP-NOT charged as two AAPs (copy into the dual-contact
 * row, copy the complement out). Reduction sums have no in-subarray
 * popcount hardware in the analog design, so they are costed as a
 * device-to-host drain plus a host-side accumulation — one of the
 * qualitative contrasts with the digital DRAM-AP target.
 */

#ifndef PIMEVAL_CORE_PERF_ENERGY_ANALOG_H_
#define PIMEVAL_CORE_PERF_ENERGY_ANALOG_H_

#include <shared_mutex>
#include <tuple>
#include <unordered_map>

#include "core/perf_energy_model.h"

namespace pimeval {

/** Row-op counts of one analog microprogram execution. */
struct AnalogOpCounts
{
    uint64_t aaps = 0; ///< AAP-equivalents (AAP-NOT counts double)
    uint64_t tras = 0;
};

class PerfEnergyAnalog : public PerfEnergyModel
{
  public:
    explicit PerfEnergyAnalog(const PimDeviceConfig &config);

    PimOpCost costOp(const PimOpProfile &profile) const override;

    /** Analog row-op counts per chunk for one command (cached). */
    AnalogOpCounts countsForCmd(PimCmdEnum cmd, unsigned bits,
                                uint64_t scalar, unsigned aux) const;

    /** AAP latency (two back-to-back row cycles), seconds. */
    double aapTime() const;
    /** TRA latency (one extended row cycle), seconds. */
    double traTime() const;

  private:
    AnalogOpCounts generateCounts(PimCmdEnum cmd, unsigned bits,
                                  uint64_t scalar, unsigned aux) const;

    using CountsKey =
        std::tuple<PimCmdEnum, unsigned, uint64_t, unsigned>;
    struct CountsKeyHash
    {
        size_t operator()(const CountsKey &k) const
        {
            uint64_t h = static_cast<uint64_t>(std::get<0>(k));
            h = h * 0x9e3779b97f4a7c15ull + std::get<1>(k);
            h = h * 0x9e3779b97f4a7c15ull + std::get<2>(k);
            h = h * 0x9e3779b97f4a7c15ull + std::get<3>(k);
            return static_cast<size_t>(h ^ (h >> 32));
        }
    };
    /** Reader/writer lock: costOp runs concurrently on the pipeline's
     *  workers and the cache is hit on virtually every call. */
    mutable std::shared_mutex cache_mutex_;
    mutable std::unordered_map<CountsKey, AnalogOpCounts,
                               CountsKeyHash>
        counts_cache_;
};

} // namespace pimeval

#endif // PIMEVAL_CORE_PERF_ENERGY_ANALOG_H_
