/**
 * @file
 * Performance/energy model of analog bit-serial PIM (SIMDRAM-style),
 * the analog-technique extension the paper lists as in-progress work.
 *
 * Costing derives from generated AnalogPrograms:
 *   runtime = chunks x (AAPs * tAAP + TRAs * tTRA)
 * with an AAP-NOT charged as two AAPs (copy into the dual-contact
 * row, copy the complement out). Reduction sums have no in-subarray
 * popcount hardware in the analog design, so they are costed as a
 * device-to-host drain plus a host-side accumulation — one of the
 * qualitative contrasts with the digital DRAM-AP target.
 */

#ifndef PIMEVAL_CORE_PERF_ENERGY_ANALOG_H_
#define PIMEVAL_CORE_PERF_ENERGY_ANALOG_H_

#include <map>
#include <mutex>
#include <tuple>

#include "core/perf_energy_model.h"

namespace pimeval {

/** Row-op counts of one analog microprogram execution. */
struct AnalogOpCounts
{
    uint64_t aaps = 0; ///< AAP-equivalents (AAP-NOT counts double)
    uint64_t tras = 0;
};

class PerfEnergyAnalog : public PerfEnergyModel
{
  public:
    explicit PerfEnergyAnalog(const PimDeviceConfig &config);

    PimOpCost costOp(const PimOpProfile &profile) const override;

    /** Analog row-op counts per chunk for one command (cached). */
    AnalogOpCounts countsForCmd(PimCmdEnum cmd, unsigned bits,
                                uint64_t scalar, unsigned aux) const;

    /** AAP latency (two back-to-back row cycles), seconds. */
    double aapTime() const;
    /** TRA latency (one extended row cycle), seconds. */
    double traTime() const;

  private:
    AnalogOpCounts generateCounts(PimCmdEnum cmd, unsigned bits,
                                  uint64_t scalar, unsigned aux) const;

    using CountsKey =
        std::tuple<PimCmdEnum, unsigned, uint64_t, unsigned>;
    mutable std::mutex cache_mutex_;
    mutable std::map<CountsKey, AnalogOpCounts> counts_cache_;
};

} // namespace pimeval

#endif // PIMEVAL_CORE_PERF_ENERGY_ANALOG_H_
