/**
 * @file
 * Area model for the simulated PIM architectures — the "flexible area
 * modeling approach that supports diverse PIM architectures" the
 * paper lists as future work (Section IX).
 *
 * Rather than absolute square millimeters (which need a process
 * node), area is expressed in the currency DRAM designers use when
 * arguing about in-array logic: **equivalent DRAM row heights** per
 * subarray. A processing element that costs k row-equivalents on a
 * 1024-row subarray is a k/1024 array-area overhead. The per-
 * architecture row-equivalent constants are documented estimates
 * anchored to the structures each design adds:
 *
 *  - digital bit-serial (DRAM-AP): per-column PE = 4 one-bit
 *    registers + 3 gates next to each sense amp, about the height of
 *    a few cell rows, plus the micro-op decode strip;
 *  - Fulcrum: three row-wide walker latch rows plus a 32-bit ALPU +
 *    instruction buffer shared per two subarrays;
 *  - bank-level: one 128-bit ALPU + walkers per bank (amortized over
 *    all the bank's subarrays) — the paper's "cheap but slow" point;
 *  - analog (SIMDRAM): reserved compute rows, dual-contact rows at
 *    twice the cell pitch, and a widened row decoder for TRA.
 */

#ifndef PIMEVAL_CORE_AREA_MODEL_H_
#define PIMEVAL_CORE_AREA_MODEL_H_

#include <string>

#include "core/pim_params.h"

namespace pimeval {

/** Documented row-equivalent cost constants. */
struct AreaParams
{
    /** Digital bit-serial: PE strip next to the sense amps. */
    double bitserial_pe_rows = 24.0;
    /** Micro-op decode/control strip per subarray. */
    double bitserial_ctrl_rows = 4.0;

    /** One walker latch row is denser than a cell row. */
    double walker_row_equiv = 2.0;
    /** Fulcrum 32-bit ALPU + instruction buffer (per 2 subarrays). */
    double fulcrum_alpu_rows = 40.0;

    /** Bank-level 128-bit ALPU + walkers (per bank). */
    double bank_alpu_rows = 120.0;

    /** Analog: each dual-contact row costs two row pitches. */
    double dcc_row_equiv = 2.0;
    /** TRA-capable row decoder widening, per subarray. */
    double analog_decoder_rows = 6.0;
};

/**
 * Per-architecture area accounting.
 */
class AreaModel
{
  public:
    explicit AreaModel(const PimDeviceConfig &config,
                       const AreaParams &params = AreaParams{});

    /** Row-equivalents of PE logic per subarray. */
    double peRowEquivalentsPerSubarray() const;

    /**
     * Array-area overhead of the PIM logic: PE row-equivalents over
     * the subarray's cell rows.
     */
    double overheadFraction() const;

    /** Overhead as a percentage. */
    double overheadPercent() const { return overheadFraction() * 100; }

    /** One-line summary for reports. */
    std::string summary() const;

  private:
    PimDeviceConfig config_;
    AreaParams params_;
};

} // namespace pimeval

#endif // PIMEVAL_CORE_AREA_MODEL_H_
