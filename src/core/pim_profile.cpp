/**
 * @file
 * Profiler implementation: per-thread phase stacks folding into a
 * global aggregated phase tree, a background registry sampler, and
 * the PROFILE.json / HTML exporters with bottleneck attribution.
 *
 * This file is only built when PIMEVAL_TRACING is ON (see
 * core/CMakeLists.txt); the OFF configuration uses the inline stubs
 * in pim_profile.h and contains no profile symbols.
 */

#include "core/pim_profile.h"

#include <algorithm>
#include <cmath>
#include <cstdlib>
#include <fstream>
#include <iomanip>
#include <sstream>

#include "core/pim_device.h"
#include "core/pim_json.h"
#include "core/pim_metrics.h"
#include "core/pim_runtime_config.h"
#include "core/pim_sim.h"
#include "core/pim_stats.h"
#include "util/logging.h"

namespace pimeval {

std::atomic<bool> PimProfiler::enabled_flag_{false};

// ---------------------------------------------------------------------------
// Internal state
// ---------------------------------------------------------------------------

/** One aggregated node of the global phase tree. Guarded by the
 *  profiler mutex except for the histogram, which is internally
 *  lock-free (it is still only recorded under the mutex). */
struct PimProfiler::Node
{
    explicit Node(std::string n) : name(std::move(n)) {}

    std::string name;
    int parent = -1;
    int depth = 0;
    uint32_t ctx = 0;
    uint64_t count = 0;
    uint64_t host_ns_total = 0;
    MetricHistogram host_ns{"phase.host_ns"};
    double kernel_sec = 0.0;
    double copy_sec = 0.0;
    double host_sec = 0.0;
    uint64_t bytes_h2d = 0;
    uint64_t bytes_d2h = 0;
    uint64_t bytes_d2d = 0;
    std::map<std::string, double> metric_deltas;
};

namespace {

/** One phase a thread has begun but not yet ended. */
struct OpenPhaseRec
{
    int node = -1;
    uint64_t gen = 0;      ///< profiler generation at begin
    uint64_t start_ns = 0; ///< taken last in beginPhase
    uint32_t ctx = 0;
    bool has_stats = false;
    PimRunStats stats0;
    std::map<std::string, double> counters0;
};

thread_local std::vector<OpenPhaseRec> tls_phase_stack;

/** Generation counter: stale open phases from before a
 *  start()/reset() are dropped at end instead of folding into the
 *  fresh tree. */
std::atomic<uint64_t> g_profile_gen{0};

std::map<std::string, double>
collectCounters()
{
    std::map<std::string, double> out;
    for (const auto &[name, v] : PimMetrics::instance().snapshotAll())
        if (v.kind == PimMetricValue::Kind::kCounter)
            out.emplace(name, static_cast<double>(v.count));
    return out;
}

std::string
jsonEscape(const std::string &s)
{
    std::string out;
    out.reserve(s.size());
    for (const char c : s) {
        switch (c) {
          case '"': out += "\\\""; break;
          case '\\': out += "\\\\"; break;
          case '\n': out += "\\n"; break;
          case '\t': out += "\\t"; break;
          case '\r': out += "\\r"; break;
          default:
            if (static_cast<unsigned char>(c) < 0x20) {
                char buf[8];
                std::snprintf(buf, sizeof(buf), "\\u%04x", c);
                out += buf;
            } else {
                out += c;
            }
        }
    }
    return out;
}

/** Finite-safe double for JSON (NaN/inf are not valid JSON). */
double
finite(double v)
{
    return std::isfinite(v) ? v : 0.0;
}

void
writeMetricValueJson(std::ostream &os, const PimMetricValue &v)
{
    switch (v.kind) {
      case PimMetricValue::Kind::kCounter:
        os << v.count;
        break;
      case PimMetricValue::Kind::kGauge:
        os << finite(v.value);
        break;
      case PimMetricValue::Kind::kHistogram:
        os << "{\"count\": " << v.count << ", \"sum\": "
           << finite(v.sum) << ", \"mean\": " << finite(v.value)
           << ", \"min\": " << finite(v.min) << ", \"max\": "
           << finite(v.max) << ", \"p50\": " << finite(v.p50)
           << ", \"p90\": " << finite(v.p90) << ", \"p99\": "
           << finite(v.p99) << ", \"p999\": " << finite(v.p999)
           << "}";
        break;
    }
}

void
writeMetricMapJson(std::ostream &os,
                   const std::map<std::string, PimMetricValue> &all,
                   const char *indent)
{
    os << "{";
    bool first = true;
    for (const auto &[name, v] : all) {
        // Keep per-context blocks small: skip never-touched entries.
        if (v.kind == PimMetricValue::Kind::kCounter && v.count == 0)
            continue;
        if (v.kind == PimMetricValue::Kind::kGauge && v.value == 0.0)
            continue;
        if (v.kind == PimMetricValue::Kind::kHistogram && v.count == 0)
            continue;
        os << (first ? "" : ",") << "\n" << indent << "  \""
           << jsonEscape(name) << "\": ";
        first = false;
        writeMetricValueJson(os, v);
    }
    os << (first ? "}" : std::string("\n") + indent + "}");
}

void
writePhaseJson(std::ostream &os, const PimProfilePhase &p)
{
    const double total = p.modeledSec();
    const double fc = total > 0.0 ? p.kernel_sec / total : 0.0;
    const double fd = total > 0.0 ? p.copy_sec / total : 0.0;
    const double fh = total > 0.0 ? p.host_sec / total : 0.0;
    const double mean =
        p.count ? static_cast<double>(p.host_ns_total) /
                static_cast<double>(p.count)
                : 0.0;
    os << "{\"name\": \"" << jsonEscape(p.name)
       << "\", \"parent\": " << p.parent << ", \"depth\": " << p.depth
       << ", \"ctx\": " << p.ctx << ", \"count\": " << p.count
       << ",\n     \"host_ns\": {\"total\": " << p.host_ns_total
       << ", \"mean\": " << finite(mean) << ", \"min\": "
       << finite(p.host_ns_min) << ", \"max\": "
       << finite(p.host_ns_max) << ", \"p50\": "
       << finite(p.host_ns_p50) << ", \"p90\": "
       << finite(p.host_ns_p90) << ", \"p99\": "
       << finite(p.host_ns_p99) << ", \"p999\": "
       << finite(p.host_ns_p999) << "},\n     \"modeled_sec\": "
       << "{\"compute\": " << finite(p.kernel_sec)
       << ", \"dram_transfer\": " << finite(p.copy_sec)
       << ", \"host\": " << finite(p.host_sec) << ", \"total\": "
       << finite(total) << "},\n     \"attribution\": {\"compute\": "
       << finite(fc) << ", \"dram_transfer\": " << finite(fd)
       << ", \"host\": " << finite(fh) << "},\n     \"bytes\": "
       << "{\"h2d\": " << p.bytes_h2d << ", \"d2h\": " << p.bytes_d2h
       << ", \"d2d\": " << p.bytes_d2d << "},\n     "
       << "\"metric_deltas\": {";
    bool first = true;
    for (const auto &[name, d] : p.metric_deltas) {
        os << (first ? "" : ", ") << "\"" << jsonEscape(name)
           << "\": " << finite(d);
        first = false;
    }
    os << "}}";
}

std::string
htmlPathFor(const std::string &json_path)
{
    const std::string suffix = ".json";
    if (json_path.size() > suffix.size() &&
        json_path.compare(json_path.size() - suffix.size(),
                          suffix.size(), suffix) == 0)
        return json_path.substr(0, json_path.size() - suffix.size()) +
            ".html";
    return json_path + ".html";
}

} // namespace

// ---------------------------------------------------------------------------
// PimProfiler
// ---------------------------------------------------------------------------

PimProfiler &
PimProfiler::instance()
{
    // Leaked singleton: phase scopes may close during static
    // destruction.
    static PimProfiler *profiler = new PimProfiler();
    return *profiler;
}

PimProfiler::~PimProfiler() = default;

uint64_t
PimProfiler::nowNs() const
{
    return static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now() - epoch_)
            .count());
}

int
PimProfiler::nodeIndex(int parent, const char *name)
{
    const auto key = std::make_pair(parent, std::string(name));
    const auto it = index_.find(key);
    if (it != index_.end())
        return it->second;
    auto node = std::make_unique<Node>(key.second);
    node->parent = parent;
    node->depth = parent < 0 ? 0 : nodes_[parent]->depth + 1;
    const int idx = static_cast<int>(nodes_.size());
    nodes_.push_back(std::move(node));
    index_.emplace(key, idx);
    return idx;
}

void
PimProfiler::beginPhase(const char *name)
{
    if (!enabled() || !name || !*name)
        return;
    OpenPhaseRec op;
    op.gen = g_profile_gen.load(std::memory_order_acquire);
    // Snapshot the modeled-stats and counter baselines outside the
    // profiler mutex (both take their own locks).
    if (PimDevice *dev = PimSim::instance().device()) {
        op.ctx = dev->contextId();
        op.stats0 = dev->stats().snapshot();
        op.has_stats = true;
    }
    op.counters0 = collectCounters();
    {
        std::lock_guard<std::mutex> lock(mutex_);
        const int parent =
            tls_phase_stack.empty() ? -1 : tls_phase_stack.back().node;
        op.node = nodeIndex(parent, name);
        Node *n = nodes_[op.node].get();
        if (n->ctx == 0)
            n->ctx = op.ctx;
    }
    // Taken last so the phase measures user code, not the snapshots.
    op.start_ns = nowNs();
    tls_phase_stack.push_back(std::move(op));
}

void
PimProfiler::endPhase()
{
    if (tls_phase_stack.empty())
        return;
    const uint64_t end_ns = nowNs();
    OpenPhaseRec op = std::move(tls_phase_stack.back());
    tls_phase_stack.pop_back();
    if (!enabled() ||
        op.gen != g_profile_gen.load(std::memory_order_acquire))
        return; // stopped or restarted mid-phase: drop
    const uint64_t host_ns =
        end_ns > op.start_ns ? end_ns - op.start_ns : 0;

    // Deltas, computed outside the profiler mutex. Negative deltas
    // (a stats/metrics reset inside the phase) clamp to zero.
    PimRunStats d{};
    if (op.has_stats) {
        if (PimDevice *dev = PimSim::instance().device();
            dev && dev->contextId() == op.ctx) {
            const PimRunStats now = dev->stats().snapshot();
            d.kernel_sec =
                std::max(0.0, now.kernel_sec - op.stats0.kernel_sec);
            d.copy_sec =
                std::max(0.0, now.copy_sec - op.stats0.copy_sec);
            d.host_sec =
                std::max(0.0, now.host_sec - op.stats0.host_sec);
            d.bytes_h2d = now.bytes_h2d >= op.stats0.bytes_h2d
                ? now.bytes_h2d - op.stats0.bytes_h2d
                : 0;
            d.bytes_d2h = now.bytes_d2h >= op.stats0.bytes_d2h
                ? now.bytes_d2h - op.stats0.bytes_d2h
                : 0;
            d.bytes_d2d = now.bytes_d2d >= op.stats0.bytes_d2d
                ? now.bytes_d2d - op.stats0.bytes_d2d
                : 0;
        }
    }
    const auto counters_now = collectCounters();

    std::lock_guard<std::mutex> lock(mutex_);
    if (op.node < 0 || op.node >= static_cast<int>(nodes_.size()))
        return;
    Node *n = nodes_[op.node].get();
    n->count += 1;
    n->host_ns_total += host_ns;
    // The node histogram is profiler-internal: record it outside any
    // metric domain so per-context bins are not allocated for it.
    const int saved_domain = PimMetrics::threadDomain();
    PimMetrics::setThreadDomain(-1);
    n->host_ns.record(static_cast<double>(host_ns));
    PimMetrics::setThreadDomain(saved_domain);
    n->kernel_sec += d.kernel_sec;
    n->copy_sec += d.copy_sec;
    n->host_sec += d.host_sec;
    n->bytes_h2d += d.bytes_h2d;
    n->bytes_d2h += d.bytes_d2h;
    n->bytes_d2d += d.bytes_d2d;
    for (const auto &[name, now_v] : counters_now) {
        const auto it = op.counters0.find(name);
        const double before = it == op.counters0.end() ? 0.0 : it->second;
        const double delta = now_v - before;
        if (delta > 0.0)
            n->metric_deltas[name] += delta;
    }
}

int
PimProfiler::openDepth() const
{
    return static_cast<int>(tls_phase_stack.size());
}

PimProfileSnapshot
PimProfiler::snapshot() const
{
    PimProfileSnapshot out;
    out.active = enabled();
    out.elapsed_ns = nowNs();
    out.sample_period_ms = sample_period_ms_;
    std::lock_guard<std::mutex> lock(mutex_);
    out.phases.reserve(nodes_.size());
    for (const auto &node : nodes_) {
        PimProfilePhase p;
        p.name = node->name;
        p.parent = node->parent;
        p.depth = node->depth;
        p.ctx = node->ctx;
        p.count = node->count;
        p.host_ns_total = node->host_ns_total;
        p.host_ns_min = node->host_ns.min();
        p.host_ns_max = node->host_ns.max();
        p.host_ns_p50 = node->host_ns.percentile(0.50);
        p.host_ns_p90 = node->host_ns.percentile(0.90);
        p.host_ns_p99 = node->host_ns.percentile(0.99);
        p.host_ns_p999 = node->host_ns.percentile(0.999);
        p.kernel_sec = node->kernel_sec;
        p.copy_sec = node->copy_sec;
        p.host_sec = node->host_sec;
        p.bytes_h2d = node->bytes_h2d;
        p.bytes_d2h = node->bytes_d2h;
        p.bytes_d2d = node->bytes_d2d;
        p.metric_deltas = node->metric_deltas;
        out.phases.push_back(std::move(p));
    }
    out.samples = samples_;
    return out;
}

void
PimProfiler::reset()
{
    g_profile_gen.fetch_add(1, std::memory_order_acq_rel);
    std::lock_guard<std::mutex> lock(mutex_);
    nodes_.clear();
    index_.clear();
    samples_.clear();
    sample_stride_ns_ = 0;
}

void
PimProfiler::start(const std::string &path)
{
    stopSampler();
    g_profile_gen.fetch_add(1, std::memory_order_acq_rel);
    {
        std::lock_guard<std::mutex> lock(mutex_);
        nodes_.clear();
        index_.clear();
        samples_.clear();
        sample_stride_ns_ = 0;
        if (!path.empty())
            path_ = path;
        epoch_ = std::chrono::steady_clock::now();
    }
    sample_period_ms_ =
        pimResolveRuntimeConfig().profile_sample_ms.value;
    enabled_flag_.store(true, std::memory_order_release);
    if (sample_period_ms_ > 0.0)
        startSampler();
}

bool
PimProfiler::stop(const std::string &path)
{
    enabled_flag_.store(false, std::memory_order_release);
    stopSampler();
    const std::string target = path.empty() ? path_ : path;
    if (target.empty())
        return false;
    return dump(target);
}

void
PimProfiler::startSampler()
{
    {
        std::lock_guard<std::mutex> lock(sampler_mutex_);
        sampler_stop_ = false;
    }
    sampler_ = std::thread([this] { samplerLoop(); });
}

void
PimProfiler::stopSampler()
{
    {
        std::lock_guard<std::mutex> lock(sampler_mutex_);
        sampler_stop_ = true;
    }
    sampler_cv_.notify_all();
    if (sampler_.joinable())
        sampler_.join();
}

void
PimProfiler::samplerLoop()
{
    PimTracer::instance().setThreadName("profile-sampler");
    const auto period = std::chrono::duration<double, std::milli>(
        sample_period_ms_ > 0.0 ? sample_period_ms_ : 25.0);
    std::unique_lock<std::mutex> lk(sampler_mutex_);
    while (!sampler_stop_) {
        if (sampler_cv_.wait_for(lk, period,
                                 [this] { return sampler_stop_; }))
            break;
        lk.unlock();
        // snapshotAll serializes with pimResetMetrics on the registry
        // mutex: the sampler sees before-or-after, never a mix.
        PimProfileSample s;
        s.t_ns = nowNs();
        for (const auto &[name, v] :
             PimMetrics::instance().snapshotAll())
            s.values[name] =
                v.kind == PimMetricValue::Kind::kCounter
                ? static_cast<double>(v.count)
                : v.value;
        {
            std::lock_guard<std::mutex> lock(mutex_);
            const bool skip = sample_stride_ns_ != 0 &&
                !samples_.empty() &&
                s.t_ns - samples_.back().t_ns < sample_stride_ns_;
            if (!skip) {
                samples_.push_back(std::move(s));
                if (samples_.size() >= kMaxSamples) {
                    // Decimate: keep every other sample, double the
                    // effective stride — bounded memory, full span.
                    std::vector<PimProfileSample> kept;
                    kept.reserve(samples_.size() / 2 + 1);
                    for (size_t i = 0; i < samples_.size(); i += 2)
                        kept.push_back(std::move(samples_[i]));
                    samples_.swap(kept);
                    const uint64_t period_ns = static_cast<uint64_t>(
                        sample_period_ms_ * 1e6);
                    sample_stride_ns_ = sample_stride_ns_
                        ? sample_stride_ns_ * 2
                        : period_ns * 2;
                }
            }
        }
        lk.lock();
    }
}

// ---------------------------------------------------------------------------
// Export
// ---------------------------------------------------------------------------

namespace {

/** Minimal inline report: phase table with attribution bars,
 *  histogram percentiles, and a time-series chart, all rendered
 *  client-side from the embedded JSON. No external dependencies. */
const char *kHtmlPrefix = R"HTML(<!DOCTYPE html>
<html><head><meta charset="utf-8"><title>PIMeval profile</title>
<style>
body{font-family:system-ui,sans-serif;margin:24px;color:#222}
h1{font-size:20px} h2{font-size:16px;margin-top:28px}
table{border-collapse:collapse;font-size:13px}
th,td{padding:4px 10px;border-bottom:1px solid #ddd;text-align:right}
th{background:#f5f5f5} td.name{text-align:left;font-family:monospace}
.bar{display:inline-block;height:10px;vertical-align:middle}
.c0{background:#4e79a7}.c1{background:#f28e2b}.c2{background:#59a14f}
.legend span{margin-right:14px;font-size:12px}
.muted{color:#888}
svg{border:1px solid #eee;background:#fcfcfc}
select{margin:8px 0}
</style></head><body>
<h1>PIMeval profile report</h1>
<div class="legend"><span><span class="bar c0" style="width:12px"></span>
compute</span><span><span class="bar c1" style="width:12px"></span>
DRAM transfer</span><span><span class="bar c2" style="width:12px"></span>
host overhead</span></div>
<div id="app"></div>
<script id="profile-data" type="application/json">
)HTML";

const char *kHtmlSuffix = R"HTML(
</script>
<script>
const data = JSON.parse(
    document.getElementById('profile-data').textContent);
const app = document.getElementById('app');
const fmt = (v, d = 3) => Number(v).toLocaleString(
    'en-US', {maximumFractionDigits: d});
const ms = ns => fmt(ns / 1e6) + ' ms';
const us = ns => fmt(ns / 1e3, 1);

// --- Phase tree with bottleneck attribution ---
let html = '<h2>Phases (bottleneck attribution)</h2>';
if (!data.phases.length) {
  html += '<p class="muted">No phases recorded.</p>';
} else {
  html += '<table><tr><th>phase</th><th>count</th><th>host total' +
      '</th><th>host p50 µs</th><th>host p99 µs</th>' +
      '<th>modeled total s</th><th>split</th><th>H2D B</th>' +
      '<th>D2H B</th></tr>';
  for (const p of data.phases) {
    const a = p.attribution;
    const w = f => Math.round(f * 120);
    html += '<tr><td class="name">' +
        '&nbsp;'.repeat(p.depth * 3) + p.name + '</td><td>' +
        p.count + '</td><td>' + ms(p.host_ns.total) + '</td><td>' +
        us(p.host_ns.p50) + '</td><td>' + us(p.host_ns.p99) +
        '</td><td>' + fmt(p.modeled_sec.total, 6) + '</td><td>' +
        '<span class="bar c0" style="width:' + w(a.compute) +
        'px"></span><span class="bar c1" style="width:' +
        w(a.dram_transfer) + 'px"></span>' +
        '<span class="bar c2" style="width:' + w(a.host) +
        'px"></span></td><td>' + fmt(p.bytes.h2d, 0) + '</td><td>' +
        fmt(p.bytes.d2h, 0) + '</td></tr>';
  }
  html += '</table>';
}

// --- Latency histograms ---
const hists = Object.entries(data.metrics).filter(
    ([, v]) => v && typeof v === 'object' && v.count > 0);
if (hists.length) {
  html += '<h2>Histograms (log-bucket percentiles)</h2>' +
      '<table><tr><th>metric</th><th>count</th><th>mean</th>' +
      '<th>p50</th><th>p90</th><th>p99</th><th>p99.9</th>' +
      '<th>max</th></tr>';
  for (const [name, v] of hists) {
    html += '<tr><td class="name">' + name + '</td><td>' + v.count +
        '</td><td>' + fmt(v.mean) + '</td><td>' + fmt(v.p50) +
        '</td><td>' + fmt(v.p90) + '</td><td>' + fmt(v.p99) +
        '</td><td>' + fmt(v.p999) + '</td><td>' + fmt(v.max) +
        '</td></tr>';
  }
  html += '</table>';
}

// --- Per-context domains ---
if (data.contexts && data.contexts.length) {
  html += '<h2>Per-context metric domains</h2>';
  for (const c of data.contexts) {
    const entries = Object.entries(c.metrics);
    html += '<h3 style="font-size:14px">context ' + c.id +
        (c.label ? ' — ' + c.label : '') + '</h3>';
    if (!entries.length) {
      html += '<p class="muted">no activity</p>';
      continue;
    }
    html += '<table><tr><th>metric</th><th>value</th></tr>';
    for (const [name, v] of entries) {
      const text = (v && typeof v === 'object')
          ? 'n ' + v.count + ' mean ' + fmt(v.mean) + ' p99 ' +
              fmt(v.p99)
          : fmt(v);
      html += '<tr><td class="name">' + name + '</td><td>' + text +
          '</td></tr>';
    }
    html += '</table>';
  }
}

// --- Time series ---
if (data.timeseries && data.timeseries.length > 1) {
  const names = Object.keys(data.timeseries[0].values);
  html += '<h2>Registry time series</h2><select id="ts-metric">' +
      names.map(n => '<option' +
          (n === 'pipeline.issued' ? ' selected' : '') + '>' + n +
          '</option>').join('') +
      '</select><br><svg id="ts" width="720" height="200"></svg>';
  app.innerHTML = html;
  const draw = name => {
    const pts = data.timeseries.map(s => [s.t_ns, s.values[name] || 0]);
    const xs = pts.map(p => p[0]), ys = pts.map(p => p[1]);
    const x0 = Math.min(...xs), x1 = Math.max(...xs);
    const y1 = Math.max(...ys, 1e-12);
    const X = t => 10 + 700 * (t - x0) / Math.max(1, x1 - x0);
    const Y = v => 190 - 180 * (v / y1);
    document.getElementById('ts').innerHTML =
        '<polyline fill="none" stroke="#4e79a7" stroke-width="1.5" ' +
        'points="' + pts.map(p => X(p[0]) + ',' + Y(p[1])).join(' ') +
        '"/><text x="14" y="16" font-size="11" fill="#888">max ' +
        fmt(y1) + '</text>';
  };
  const sel = document.getElementById('ts-metric');
  sel.onchange = () => draw(sel.value);
  draw(sel.value);
} else {
  app.innerHTML = html;
}
</script></body></html>
)HTML";

} // namespace

bool
PimProfiler::dump(const std::string &path) const
{
    if (path.empty())
        return false;
    const PimProfileSnapshot snap = snapshot();

    std::ostringstream json;
    json << std::setprecision(17);
    json << "{\n  \"pimeval_profile_version\": 1,\n";
    json << "  \"active\": " << (snap.active ? "true" : "false")
         << ",\n";
    json << "  \"elapsed_ns\": " << snap.elapsed_ns << ",\n";
    json << "  \"sample_period_ms\": " << finite(snap.sample_period_ms)
         << ",\n";

    json << "  \"phases\": [";
    for (size_t i = 0; i < snap.phases.size(); ++i) {
        json << (i ? ",\n    " : "\n    ");
        writePhaseJson(json, snap.phases[i]);
    }
    json << (snap.phases.empty() ? "]" : "\n  ]") << ",\n";

    json << "  \"metrics\": ";
    writeMetricMapJson(json, PimMetrics::instance().snapshotAll(),
                       "  ");
    json << ",\n";

    json << "  \"contexts\": [";
    const auto contexts = PimSim::instance().listContexts();
    for (size_t i = 0; i < contexts.size(); ++i) {
        json << (i ? ",\n    " : "\n    ");
        json << "{\"id\": " << contexts[i].first << ", \"label\": \""
             << jsonEscape(contexts[i].second) << "\", \"metrics\": ";
        writeMetricMapJson(
            json,
            PimMetrics::instance().snapshotDomain(contexts[i].first),
            "    ");
        json << "}";
    }
    json << (contexts.empty() ? "]" : "\n  ]") << ",\n";

    json << "  \"timeseries\": [";
    for (size_t i = 0; i < snap.samples.size(); ++i) {
        const auto &s = snap.samples[i];
        json << (i ? ",\n    " : "\n    ");
        json << "{\"t_ns\": " << s.t_ns << ", \"values\": {";
        bool first = true;
        for (const auto &[name, v] : s.values) {
            if (v == 0.0)
                continue;
            json << (first ? "" : ", ") << "\"" << jsonEscape(name)
                 << "\": " << finite(v);
            first = false;
        }
        json << "}}";
    }
    json << (snap.samples.empty() ? "]" : "\n  ]") << "\n}\n";

    const std::string text = json.str();
    {
        std::ofstream os(path);
        if (!os) {
            logError("profile: cannot open '" + path +
                     "' for writing");
            return false;
        }
        os << text;
        if (!os)
            return false;
    }
    // Self-contained HTML sibling: the same JSON embedded in a
    // <script> island ("</" escaped so it cannot close the tag).
    std::string embedded;
    embedded.reserve(text.size());
    for (size_t i = 0; i < text.size(); ++i) {
        if (text[i] == '<' && i + 1 < text.size() &&
            text[i + 1] == '/') {
            embedded += "<\\/";
            ++i;
        } else {
            embedded += text[i];
        }
    }
    std::ofstream html(htmlPathFor(path));
    if (!html) {
        logError("profile: cannot open '" + htmlPathFor(path) +
                 "' for writing");
        return false;
    }
    html << kHtmlPrefix << embedded << kHtmlSuffix;
    return static_cast<bool>(html);
}

} // namespace pimeval

// ---------------------------------------------------------------------------
// Public API (global namespace, like the rest of the pim* C API)
// ---------------------------------------------------------------------------

using pimeval::JsonParser;
using pimeval::JsonValue;
using pimeval::logError;
using pimeval::PimDevice;
using pimeval::PimProfiler;
using pimeval::PimSim;

PimStatus
pimProfileStart(const char *path)
{
    if (!path || !*path) {
        logError("pimProfileStart: empty path");
        return PimStatus::PIM_ERROR;
    }
    // Quiesce the device so the profile starts at a command boundary.
    if (PimDevice *dev = PimSim::instance().device())
        dev->sync();
    PimProfiler::instance().start(path);
    return PimStatus::PIM_OK;
}

PimStatus
pimProfileStop(const char *path)
{
    if (PimDevice *dev = PimSim::instance().device())
        dev->sync(); // in-flight modeled time lands in the profile
    if (!PimProfiler::instance().stop(path ? std::string(path) : ""))
        return PimStatus::PIM_ERROR;
    return PimStatus::PIM_OK;
}

bool
pimProfileActive()
{
    return PimProfiler::enabled();
}

PimStatus
pimProfileBegin(const char *name)
{
    if (!name || !*name) {
        logError("pimProfileBegin: empty phase name");
        return PimStatus::PIM_ERROR;
    }
    PimProfiler::instance().beginPhase(name);
    return PimStatus::PIM_OK;
}

PimStatus
pimProfileEnd()
{
    PimProfiler::instance().endPhase();
    return PimStatus::PIM_OK;
}

PimStatus
pimDumpProfile(const char *path)
{
    if (!path || !*path) {
        logError("pimDumpProfile: empty path");
        return PimStatus::PIM_ERROR;
    }
    if (PimDevice *dev = PimSim::instance().device())
        dev->sync();
    if (!PimProfiler::instance().dump(path))
        return PimStatus::PIM_ERROR;
    return PimStatus::PIM_OK;
}

pimeval::PimProfileSnapshot
pimProfileSnapshot()
{
    return PimProfiler::instance().snapshot();
}

PimStatus
pimResetProfile()
{
    PimProfiler::instance().reset();
    return PimStatus::PIM_OK;
}

// ---------------------------------------------------------------------------
// Validation
// ---------------------------------------------------------------------------

namespace {

bool
validateFail(std::string *error, const std::string &msg)
{
    if (error && error->empty())
        *error = msg;
    return false;
}

bool
hasNumber(const JsonValue &obj, const char *key)
{
    const JsonValue *v = obj.find(key);
    return v && v->kind == JsonValue::Kind::kNumber;
}

} // namespace

bool
pimValidateProfileFile(const std::string &path, std::string *error)
{
    if (error)
        error->clear();
    std::ifstream is(path);
    if (!is)
        return validateFail(error, "cannot open '" + path + "'");
    std::stringstream ss;
    ss << is.rdbuf();
    const std::string text = ss.str();

    JsonValue root;
    std::string parse_error;
    JsonParser parser(text, &parse_error);
    if (!parser.parse(&root))
        return validateFail(error,
                            "JSON parse error: " + parse_error);
    if (root.kind != JsonValue::Kind::kObject)
        return validateFail(error, "top level is not an object");
    const JsonValue *version = root.find("pimeval_profile_version");
    if (!version || version->kind != JsonValue::Kind::kNumber ||
        version->number < 1)
        return validateFail(error,
                            "missing pimeval_profile_version");
    const JsonValue *phases = root.find("phases");
    if (!phases || phases->kind != JsonValue::Kind::kArray)
        return validateFail(error, "missing phases array");
    for (size_t i = 0; i < phases->array.size(); ++i) {
        const JsonValue &p = phases->array[i];
        const std::string where = "phases[" + std::to_string(i) + "]";
        if (p.kind != JsonValue::Kind::kObject)
            return validateFail(error, where + " is not an object");
        const JsonValue *name = p.find("name");
        if (!name || name->kind != JsonValue::Kind::kString ||
            name->str.empty())
            return validateFail(error, where + " lacks a name");
        if (!hasNumber(p, "count") || !hasNumber(p, "parent") ||
            !hasNumber(p, "depth"))
            return validateFail(error,
                                where + " lacks count/parent/depth");
        const JsonValue *host = p.find("host_ns");
        if (!host || host->kind != JsonValue::Kind::kObject ||
            !hasNumber(*host, "total") || !hasNumber(*host, "p50") ||
            !hasNumber(*host, "p90") || !hasNumber(*host, "p99") ||
            !hasNumber(*host, "p999"))
            return validateFail(
                error, where + " lacks host_ns percentiles");
        const JsonValue *modeled = p.find("modeled_sec");
        if (!modeled || modeled->kind != JsonValue::Kind::kObject ||
            !hasNumber(*modeled, "compute") ||
            !hasNumber(*modeled, "dram_transfer") ||
            !hasNumber(*modeled, "host") ||
            !hasNumber(*modeled, "total"))
            return validateFail(error,
                                where + " lacks the modeled split");
        const JsonValue *attr = p.find("attribution");
        if (!attr || attr->kind != JsonValue::Kind::kObject ||
            !hasNumber(*attr, "compute") ||
            !hasNumber(*attr, "dram_transfer") ||
            !hasNumber(*attr, "host"))
            return validateFail(error,
                                where + " lacks attribution");
        for (const char *key :
             {"compute", "dram_transfer", "host"}) {
            const double f = attr->find(key)->number;
            if (f < 0.0 || f > 1.0 + 1e-9)
                return validateFail(
                    error, where + " attribution out of [0,1]");
        }
    }
    const JsonValue *metrics = root.find("metrics");
    if (!metrics || metrics->kind != JsonValue::Kind::kObject)
        return validateFail(error, "missing metrics object");
    const JsonValue *ts = root.find("timeseries");
    if (!ts || ts->kind != JsonValue::Kind::kArray)
        return validateFail(error, "missing timeseries array");
    for (size_t i = 0; i < ts->array.size(); ++i) {
        const JsonValue &s = ts->array[i];
        if (s.kind != JsonValue::Kind::kObject ||
            !hasNumber(s, "t_ns") || !s.find("values"))
            return validateFail(
                error, "timeseries[" + std::to_string(i) +
                    "] lacks t_ns/values");
    }
    return true;
}
