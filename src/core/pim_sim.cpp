/**
 * @file
 * PimSim implementation.
 */

#include "core/pim_sim.h"

#include <cstdlib>

#include "core/pim_trace.h"
#include "util/logging.h"

namespace pimeval {

PimSim &
PimSim::instance()
{
    static PimSim sim;
    return sim;
}

PimStatus
PimSim::createDevice(const PimDeviceConfig &config)
{
    if (device_) {
        logError("pimCreateDevice: a device is already active");
        return PimStatus::PIM_ERROR;
    }
    if (config.device == PimDeviceEnum::PIM_DEVICE_NONE) {
        logError("pimCreateDevice: no device type selected");
        return PimStatus::PIM_ERROR;
    }
    device_ = std::make_unique<PimDevice>(config);
#if PIMEVAL_TRACING_ENABLED
    // PIMEVAL_TRACE=<path> arms tracing for the device's lifetime;
    // the trace exports to <path> when the device is deleted.
    if (const char *path = std::getenv("PIMEVAL_TRACE");
        path && *path && !PimTracer::enabled()) {
        env_trace_path_ = path;
        PimTracer::instance().begin(env_trace_path_);
        logInfo("tracing to " + env_trace_path_ +
                " (PIMEVAL_TRACE)");
    }
#endif
    return PimStatus::PIM_OK;
}

PimStatus
PimSim::deleteDevice()
{
    if (!device_) {
        logError("pimDeleteDevice: no active device");
        return PimStatus::PIM_ERROR;
    }
    device_.reset();
#if PIMEVAL_TRACING_ENABLED
    if (!env_trace_path_.empty()) {
        PimTracer::instance().end(env_trace_path_);
        env_trace_path_.clear();
    }
#endif
    return PimStatus::PIM_OK;
}

} // namespace pimeval
