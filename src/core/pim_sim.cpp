/**
 * @file
 * Context registry implementation.
 *
 * Locking: the registry mutex guards the context list and the
 * default-context slot during create/destroy; the hot path (device())
 * is a thread-local read plus one relaxed atomic load and takes no
 * lock. Destroying a context other threads are still using is a
 * caller error, as with any handle API; setCurrentContext validates
 * its handle against the live set before pinning.
 */

#include "core/pim_sim.h"

#include <algorithm>

#include "core/pim_error.h"
#include "core/pim_metrics.h"
#include "core/pim_profile.h"
#include "core/pim_runtime_config.h"
#include "core/pim_trace.h"
#include "util/logging.h"

namespace pimeval {

namespace {

/**
 * The calling thread's pinned context. Destroying a context while
 * another thread still has it pinned is a caller error (the same
 * use-after-destroy contract as every handle API); destroyContext
 * does clear the destroying thread's own pin.
 */
thread_local PimContextRec *tls_current = nullptr;

} // namespace

PimSim &
PimSim::instance()
{
    static PimSim sim;
    return sim;
}

PimContextRec *
PimSim::registerContext(const PimDeviceConfig &config,
                        const std::string &label, bool is_default)
{
    if (config.device == PimDeviceEnum::PIM_DEVICE_NONE)
        return nullptr;
    std::lock_guard<std::mutex> lock(mutex_);
    const uint32_t id = next_ctx_id_++;
    auto rec = std::make_unique<PimContextRec>();
    rec->id = id;
    rec->label = label;
    rec->is_default = is_default;
    rec->device = std::make_unique<PimDevice>(config, id, label);
    PimContextRec *raw = rec.get();
    contexts_.push_back(std::move(rec));
    if (is_default)
        default_ctx_.store(raw, std::memory_order_release);
    PIM_METRIC_COUNT("context.created", 1);
    PIM_METRIC_RECORD("context.live", contexts_.size());
    return raw;
}

PimStatus
PimSim::createDevice(const PimDeviceConfig &config)
{
    if (defaultContext())
        return fail("pimCreateDevice: a device is already active");
    if (config.device == PimDeviceEnum::PIM_DEVICE_NONE)
        return fail("pimCreateDevice: no device type selected");
    PimContextRec *rec =
        registerContext(config, std::string(), /*is_default=*/true);
    if (!rec)
        return fail("pimCreateDevice: device creation failed");
#if PIMEVAL_TRACING_ENABLED
    // A trace/profile path (PIMEVAL_TRACE / PIMEVAL_PROFILE, or the
    // runtime-config overrides) arms tracing/profiling for the
    // device's lifetime; the export happens at device deletion.
    const PimResolvedRuntimeConfig rt = pimResolveRuntimeConfig();
    if (!rt.trace_path.value.empty() && !PimTracer::enabled()) {
        env_trace_path_ = rt.trace_path.value;
        PimTracer::instance().begin(env_trace_path_);
        logInfo("tracing to " + env_trace_path_ + " (PIMEVAL_TRACE)");
    }
    if (!rt.profile_path.value.empty() && !PimProfiler::enabled()) {
        env_profile_path_ = rt.profile_path.value;
        PimProfiler::instance().start(env_profile_path_);
        logInfo("profiling to " + env_profile_path_ +
                " (PIMEVAL_PROFILE)");
    }
#endif
    return PimStatus::PIM_OK;
}

PimStatus
PimSim::deleteDevice()
{
    PimContextRec *rec = defaultContext();
    if (!rec)
        return fail("pimDeleteDevice: no active device");
    const PimStatus status = destroyContext(rec);
#if PIMEVAL_TRACING_ENABLED
    if (status == PimStatus::PIM_OK && !env_trace_path_.empty()) {
        PimTracer::instance().end(env_trace_path_);
        env_trace_path_.clear();
    }
    if (status == PimStatus::PIM_OK && !env_profile_path_.empty()) {
        PimProfiler::instance().stop(env_profile_path_);
        env_profile_path_.clear();
    }
#endif
    return status;
}

PimContextRec *
PimSim::createContext(const PimDeviceConfig &config,
                      const std::string &label)
{
    PimContextRec *rec =
        registerContext(config, label, /*is_default=*/false);
    if (!rec)
        fail("pimCreateContext: no device type selected");
    return rec;
}

PimStatus
PimSim::destroyContext(PimContextRec *ctx)
{
    std::unique_ptr<PimContextRec> dying;
    {
        std::lock_guard<std::mutex> lock(mutex_);
        const auto it = std::find_if(
            contexts_.begin(), contexts_.end(),
            [ctx](const std::unique_ptr<PimContextRec> &rec) {
                return rec.get() == ctx;
            });
        if (it == contexts_.end())
            return fail("pimDestroyContext: unknown or already "
                        "destroyed context");
        if (ctx == default_ctx_.load(std::memory_order_acquire))
            default_ctx_.store(nullptr, std::memory_order_release);
        dying = std::move(*it);
        contexts_.erase(it);
        if (tls_current == ctx)
            tls_current = nullptr;
        PIM_METRIC_COUNT("context.destroyed", 1);
        PIM_METRIC_RECORD("context.live", contexts_.size());
    }
    // Device teardown (pipeline drain, fusion flush) happens outside
    // the registry lock so other contexts keep creating/destroying.
    dying.reset();
    return PimStatus::PIM_OK;
}

bool
PimSim::validContext(const PimContextRec *ctx)
{
    if (!ctx)
        return false;
    std::lock_guard<std::mutex> lock(mutex_);
    return std::any_of(
        contexts_.begin(), contexts_.end(),
        [ctx](const std::unique_ptr<PimContextRec> &rec) {
            return rec.get() == ctx;
        });
}

PimStatus
PimSim::setCurrentContext(PimContextRec *ctx)
{
    if (ctx && !validContext(ctx))
        return fail("pimSetCurrentContext: unknown or destroyed "
                    "context");
    tls_current = ctx;
    return PimStatus::PIM_OK;
}

PimContextRec *
PimSim::currentContext()
{
    return tls_current;
}

PimDevice *
PimSim::device()
{
    // Hot path of every global API call: thread-local first, process
    // default second. A pinned context destroyed by another thread is
    // the caller's race to avoid (documented in pimDestroyContext);
    // destroyContext clears the destroying thread's own pin.
    PimDevice *dev;
    if (tls_current) {
        dev = tls_current->device.get();
    } else {
        PimContextRec *def =
            default_ctx_.load(std::memory_order_acquire);
        dev = def ? def->device.get() : nullptr;
    }
    // Bind the calling thread to the resolved context's metric
    // domain, re-binding only when the context changes (context ids
    // are never reused, so equal pointer + equal id ⇒ same device).
    static thread_local PimDevice *bound_dev = nullptr;
    static thread_local uint32_t bound_ctx = 0;
    const uint32_t ctx = dev ? dev->contextId() : 0;
    if (dev != bound_dev || ctx != bound_ctx) {
        PimMetrics::setThreadDomain(dev ? dev->metricDomain() : -1);
        bound_dev = dev;
        bound_ctx = ctx;
    }
    return dev;
}

size_t
PimSim::numContexts()
{
    std::lock_guard<std::mutex> lock(mutex_);
    return contexts_.size();
}

std::vector<std::pair<uint32_t, std::string>>
PimSim::listContexts()
{
    std::lock_guard<std::mutex> lock(mutex_);
    std::vector<std::pair<uint32_t, std::string>> out;
    out.reserve(contexts_.size());
    for (const auto &rec : contexts_)
        out.emplace_back(rec->id, rec->label);
    return out;
}

} // namespace pimeval
