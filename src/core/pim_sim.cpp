/**
 * @file
 * PimSim implementation.
 */

#include "core/pim_sim.h"

#include "util/logging.h"

namespace pimeval {

PimSim &
PimSim::instance()
{
    static PimSim sim;
    return sim;
}

PimStatus
PimSim::createDevice(const PimDeviceConfig &config)
{
    if (device_) {
        logError("pimCreateDevice: a device is already active");
        return PimStatus::PIM_ERROR;
    }
    if (config.device == PimDeviceEnum::PIM_DEVICE_NONE) {
        logError("pimCreateDevice: no device type selected");
        return PimStatus::PIM_ERROR;
    }
    device_ = std::make_unique<PimDevice>(config);
    return PimStatus::PIM_OK;
}

PimStatus
PimSim::deleteDevice()
{
    if (!device_) {
        logError("pimDeleteDevice: no active device");
        return PimStatus::PIM_ERROR;
    }
    device_.reset();
    return PimStatus::PIM_OK;
}

} // namespace pimeval
