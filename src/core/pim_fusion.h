/**
 * @file
 * Elementwise command fusion: expression-tape lowering for chained PIM
 * ops with dead-temporary elision (docs/PERFORMANCE.md).
 *
 * PIMbench workloads issue long chains of elementwise API calls
 * (pimMulScalar -> pimAdd -> pimSub ...) where every intermediate is
 * fully materialized, so simulator throughput is bounded by memory
 * traffic over temporaries. When fusion is active (PIMEVAL_FUSION /
 * pimSetFusionEnabled / a pimBeginFusion region), the device buffers
 * fusable elementwise commands in a small issue window instead of
 * executing them immediately. At a flush boundary the PimFusionWindow
 * plans the window:
 *
 *  - pimPlanFusionChains greedily extracts linear producer->consumer
 *    chains of adjacent commands (command j+1 reads command j's dest);
 *    adjacency keeps per-command statistics commits in issue order,
 *    which is what makes fused stats bit-identical to unfused runs.
 *    Full-object pimCopyHostToDevice calls capture as is_load members
 *    (host buffer snapshotted at issue), so copy->consumer chains —
 *    the GEMV/GEMM column-sweep pattern — fuse end-to-end; a staging
 *    column whose only readers are in-chain is elided and never
 *    materialized, its consumers reading tile slices straight from
 *    the snapshot.
 *  - Each chain lowers to an expression tape (post-order op list +
 *    operand slots). The tape interpreter evaluates the whole chain
 *    over one L1-resident tile at a time with the same chunk kernels
 *    as unfused execution — each step applies its own element width
 *    and dest mask, so stored values are bit-identical by
 *    construction. 2- and 3-op tapes over add/sub/mul take the
 *    register fast paths in fulcrum/alpu_kernels.h (inputs loaded
 *    once, one store per element).
 *  - An intermediate born in the window, written once, freed inside
 *    the window, and read only by its chain successor is *elided*: its
 *    store is skipped, it never enters the pipeline's hazard sets, and
 *    its storage returns to the allocator free-list still in the
 *    pristine all-zero state (PimResourceMgr::freeElided), so the next
 *    same-shape allocation skips the recycle zero-fill.
 *
 * Fusion is a functional-simulation optimization only: the modeled
 * cost of every original command is still computed from its
 * issue-time profile and committed per command in issue order.
 */

#ifndef PIMEVAL_CORE_PIM_FUSION_H_
#define PIMEVAL_CORE_PIM_FUSION_H_

#include <cstddef>
#include <cstdint>
#include <memory>
#include <mutex>
#include <unordered_set>
#include <vector>

#include "core/perf_energy_model.h"
#include "core/pim_host_io.h"
#include "core/pim_stats.h"
#include "core/pim_types.h"
#include "fulcrum/alpu_kernels.h"

namespace pimeval {

/** Window and chain bounds (small by design: the window only needs to
 *  span one app-loop body between natural flush points). The chain cap
 *  counts compute members only — host loads (captured H2D copies) ride
 *  along uncapped, so a GEMV window of interleaved copy+scaledAdd
 *  pairs still lowers to a single sweep. */
constexpr size_t kMaxFusionWindowOps = 32;
constexpr size_t kMaxFusionChainLen = 16;

/**
 * Recycling allocator for capture-time host snapshots.
 *
 * A captured H2D copy snapshots the caller's buffer at issue; a GEMV
 * sweep captures one multi-megabyte snapshot per column. Fresh heap
 * blocks of that size come straight from mmap, and the first-touch
 * page faults (plus the unmap when the chain releases the buffer)
 * cost several times the snapshot memcpy itself. The pool retains
 * released blocks and hands them back warm, so steady-state sweeps
 * reuse the same few buffers with no page-fault traffic.
 *
 * Thread-safe: async-pipeline workers release buffers while the
 * issuing thread acquires. The device holds the pool via shared_ptr
 * and every buffer's deleter keeps a reference, so in-flight
 * snapshots stay valid through device teardown ordering.
 */
class PimSnapshotPool
    : public std::enable_shared_from_this<PimSnapshotPool>
{
  public:
    /** Get a buffer of at least @p bytes (contents undefined); the
     *  deleter returns it to the pool. Best-fit over retained blocks,
     *  falling back to a fresh allocation. */
    std::shared_ptr<uint8_t[]> acquire(size_t bytes);

  private:
    void release(uint8_t *p, size_t cap);

    struct Block
    {
        size_t cap;
        std::unique_ptr<uint8_t[]> mem;
    };

    /** Retention cap: bounds idle memory at a window's worth of
     *  snapshots (32 ops) without recycling pressure in steady state. */
    static constexpr size_t kMaxRetained = kMaxFusionWindowOps;

    std::mutex mu_;
    std::vector<Block> free_;
};

/**
 * The operand view of one window command, as the chain planner sees
 * it: object ids only. b is -1 for scalar/unary commands. Kept
 * separate from PimFusedOp so chain extraction is unit-testable on
 * synthetic hazard graphs.
 */
struct PimFusionOpView
{
    PimObjId a = -1;
    PimObjId b = -1;
    PimObjId dest = -1;
    /** Reduction terminator (pimRedSum): reads a, writes no object.
     *  May only end a chain — nothing can consume its dest. */
    bool is_reduce = false;
    /** Broadcast fill (pimBroadcast*): writes dest, reads nothing.
     *  May only start a chain. */
    bool is_fill = false;
    /** Captured H2D copy (pimCopyHostToDevice): writes dest from a
     *  host snapshot, reads no object. Loads are absorbed into the
     *  open chain unconditionally; a later compute may link by reading
     *  any absorbed load's dest (copy->consumer RAW chain). */
    bool is_load = false;
};

/** One tape step of a planned chain: window op index + whether its
 *  dest store is elided (dead temporary). */
struct PimFusionStep
{
    size_t op = 0;
    bool elide_store = false;
};

using PimFusionChain = std::vector<PimFusionStep>;

/**
 * Greedy linear chain extraction over a command window.
 *
 * Walks the window in issue order; command j+1 joins the open chain
 * when it reads the chain's flow value (the last compute/fill
 * member's dest) or the dest of a load already absorbed by the chain
 * (copy->consumer RAW link). Only adjacent commands link — fusing
 * across unrelated commands would reorder per-command stats commits.
 * Loads (is_load) are absorbed unconditionally: the tape executes
 * them in window position, so a run of interleaved copy+compute pairs
 * stays one chain. A reduction (is_reduce) joins only by reading the
 * flow, terminates its chain, and never extends further; a fill
 * (is_fill) reads nothing, so it can only open a chain.
 *
 * Store elision is order-aware. For a member writing d at window
 * index w, let p be the next window command writing d (if any) and R
 * the set of commands reading d in (w, p] — p included because a
 * command reads its operands before storing. The store is elided when
 * the value is dead past the window (p exists, or d was born AND
 * freed in the window: @p born / @p freed) and every reader in R can
 * resolve d inside the chain:
 *  - compute/fill: R must be exactly the chain's next compute member
 *    (or empty), which consumes the value as the flowing tile; the
 *    final compute store of a chain always materializes.
 *  - load: every reader in R must be a later member of the same chain
 *    (each consumer converts its tile slice straight from the host
 *    snapshot, so multiple in-chain readers are fine).
 * This covers both dead temporaries (born+freed) and WAW-dead
 * rewrites of long-lived objects (a GEMV accumulator only stores its
 * final value per window).
 *
 * Every window op appears in exactly one chain; unfusable neighbors
 * produce singleton chains (executed exactly like unfused commands).
 */
std::vector<PimFusionChain>
pimPlanFusionChains(const std::vector<PimFusionOpView> &ops,
                    const std::unordered_set<PimObjId> &born,
                    const std::unordered_set<PimObjId> &freed);

/**
 * One buffered elementwise command with everything captured at issue
 * time, exactly as the unfused execute* paths capture it: raw
 * pointers, the op-specialized kernel, the cost profile, and the
 * interned stats key.
 */
struct PimFusedOp
{
    PimCmdEnum cmd = PimCmdEnum::kAdd;
    AlpuOp op = AlpuOp::kAdd;
    PimObjId a = -1;
    PimObjId b = -1; ///< -1 for scalar/unary/shift commands
    PimObjId dest = -1;
    const uint64_t *pa = nullptr;
    const uint64_t *pb = nullptr;
    uint64_t *pd = nullptr;
    BinaryChunkFn kern2 = nullptr;      ///< vector-vector commands
    ScalarChunkFn kern1 = nullptr;      ///< scalar/unary/shift commands
    ScaledAddChunkFn kern_sa = nullptr; ///< dest = a*s + b
    /** False when the captured kernel computes something other than
     *  what @p op alone implies (kNE captures op=kEQ plus a negating
     *  kernel). Such steps must never take an op-keyed register fast
     *  path; only the captured kernel has the right semantics. */
    bool op_exact = true;
    bool sgn = false;
    uint64_t scalar = 0;
    unsigned bits = 0;
    uint64_t dmask = 0;
    size_t n = 0; ///< raw words (one per element)
    /** Reduction terminator (kRedSum over the full object): reads a,
     *  writes *red_result instead of an object. */
    bool is_reduce = false;
    int64_t *red_result = nullptr;
    /** Broadcast fill: writes @p scalar (pre-masked) to every element
     *  of dest; reads nothing. */
    bool is_fill = false;
    /** Captured H2D copy: the host buffer is snapshotted at issue
     *  (same semantics as the async pipeline's H2D snapshot — the
     *  caller's pointer need not outlive the call), and the chain
     *  execution keeps the snapshot alive until it runs. */
    bool is_load = false;
    std::shared_ptr<const uint8_t[]> host;
    PimHostToDeviceChunkFn load_kern = nullptr;
    unsigned host_stride = 0;   ///< host bytes per element
    uint64_t copy_payload = 0;  ///< modeled bytes for the stats commit
    PimOpProfile profile;
    PimStatsMgr::CmdKeyId key_id = 0;
    const char *trace_name = nullptr;
};

/**
 * One step of a lowered expression tape. A null @p store means the
 * step's result only flows to the next step (elided dead temporary or
 * the synthetic first half of a scaledAdd).
 */
struct PimFusedTapeStep
{
    BinaryChunkFn kern2 = nullptr;
    ScalarChunkFn kern1 = nullptr;
    ScaledAddChunkFn kern_sa = nullptr;
    const uint64_t *a = nullptr;
    const uint64_t *b = nullptr;
    bool a_is_prev = false;
    bool b_is_prev = false;
    uint64_t scalar = 0;
    unsigned bits = 0;
    uint64_t mask = 0;
    uint64_t *store = nullptr;
    /** Fill step (all kernels null): write @p scalar to every element
     *  of the output; the value then flows like any step result. */
    bool is_fill = false;
    /** Standalone materialized load: convert the host tile slice and
     *  store it (host_a + load_a + mask describe the conversion); does
     *  not touch the flowing value. An *elided* load never becomes a
     *  step — its consumers carry host-source operands instead. */
    bool is_load = false;
    /** Host-source operands: the operand's producer is an elided
     *  in-window copy, so the step converts its tile slice straight
     *  from the snapshot (load_* kernel, stride in host bytes, the
     *  copy dest's element mask) into a scratch tile. */
    const uint8_t *host_a = nullptr;
    const uint8_t *host_b = nullptr;
    PimHostToDeviceChunkFn load_a = nullptr;
    PimHostToDeviceChunkFn load_b = nullptr;
    unsigned host_stride_a = 0;
    unsigned host_stride_b = 0;
    uint64_t load_mask_a = 0;
    uint64_t load_mask_b = 0;
    /** Inline host-source scaledAdd: set when this step is a
     *  scaledAdd whose A operand is a host snapshot. The kernel
     *  converts each lane and computes in one pass — no scratch-tile
     *  round trip — and is bit-identical to load_a followed by
     *  kern_sa (the lane applies load_mask_a exactly like the
     *  conversion kernel). Signature: (host_slice, b, scalar, out,
     *  cnt, bits, mask, load_mask). */
    void (*kern_hsa)(const uint8_t *, const uint64_t *, uint64_t,
                     uint64_t *, size_t, unsigned, uint64_t,
                     uint64_t) = nullptr;
    /** Op metadata mirrored from the source PimFusedOp so fast-path
     *  qualification can run on the lowered (post-folding) steps. */
    AlpuOp op = AlpuOp::kAdd;
    bool op_exact = true;
    bool sgn = false;
};

/**
 * A lowered chain, executable over any [lo, hi) element range (the
 * body handed to ThreadPool::parallelForChunks). Uses the register
 * fast path when the shape allows, else interprets the tape over
 * L1-resident tiles.
 */
struct PimFusedTape
{
    std::vector<PimFusedTapeStep> steps;
    size_t n = 0;

    /** Reduction terminator: after the elementwise steps, the flowing
     *  value is accumulated (wrapping int64, sign-extended to
     *  red_bits when red_sgn) instead of — or in addition to — being
     *  stored. run() returns the partial for its range; partials
     *  combine across chunks by wrapping addition, which is
     *  associative, so the total is bit-identical to a sequential
     *  executeRedSum over the materialized intermediate. */
    bool has_reduce = false;
    bool red_sgn = false;
    unsigned red_bits = 0;

    /** Broadcast fills folded into their consumer as scalar
     *  immediates during lowering (fusion.scalar_folds). */
    unsigned folded_fills = 0;

    /** Register fast paths (exclusive; tile path when all null). */
    Fused2Fn fast2 = nullptr;
    Fused3Fn fast3 = nullptr;
    FusedRed1Fn fast_r1 = nullptr; ///< 1 elementwise op + reduce
    FusedRed2Fn fast_r2 = nullptr; ///< 2 elementwise ops + reduce
    Fused3Args fast_args; ///< operand pack (2-op forms use slots 0-1)
    uint64_t *fast_dest = nullptr;

    /** Evaluate [lo, hi); returns the reduction partial (wrapping
     *  uint64 lane arithmetic; 0 when the tape has no reduction). */
    uint64_t run(size_t lo, size_t hi) const;
};

/**
 * Lower one planned chain over the window ops to an executable tape.
 * scaledAdd commands stay one step (the scaledAddChunk kernel), so the
 * chain value can flow into either of their operands.
 */
PimFusedTape pimBuildFusedTape(const std::vector<PimFusedOp> &ops,
                               const PimFusionChain &chain);

/**
 * The device's fusion issue window: buffered commands plus the
 * birth/free bookkeeping the elision analysis needs. Single-threaded
 * (issuing thread only); execution of the planned chains stays with
 * PimDevice, which owns the thread pool and pipeline.
 */
class PimFusionWindow
{
  public:
    bool empty() const
    {
        return ops_.empty() && deferred_frees_.empty();
    }
    size_t size() const { return ops_.size(); }
    bool full() const { return ops_.size() >= kMaxFusionWindowOps; }

    void record(const PimFusedOp &op) { ops_.push_back(op); }

    /** An object allocated while fusion captures (cleared at flush):
     *  only window-born temporaries are elision candidates. */
    void noteAlloc(PimObjId id) { born_.insert(id); }

    /**
     * pimFree while the window holds a writer of @p id: the free is
     * deferred to the flush (true). Returns false when the id is not a
     * pending dest (or was already deferred) — the caller frees
     * normally, flushing first if the window still reads the id.
     */
    bool noteFree(PimObjId id);

    /** Whether any pending command reads or writes @p id. */
    bool touches(PimObjId id) const;

    const std::vector<PimFusedOp> &ops() const { return ops_; }
    const std::vector<PimObjId> &deferredFrees() const
    {
        return deferred_frees_;
    }

    /** Plan the pending window (chain extraction + elision). */
    std::vector<PimFusionChain> plan() const;

    /** Reset after a flush: pending ops, deferred frees, and the
     *  born-in-window set. */
    void clear();

  private:
    std::vector<PimFusedOp> ops_;
    std::unordered_set<PimObjId> born_;
    std::unordered_set<PimObjId> freed_;
    std::vector<PimObjId> deferred_frees_;
};

} // namespace pimeval

#endif // PIMEVAL_CORE_PIM_FUSION_H_
