/**
 * @file
 * Fulcrum and bank-level performance/energy model implementations.
 */

#include "core/perf_energy_fulcrum.h"

#include <algorithm>

#include "fulcrum/fulcrum_core.h"

namespace pimeval {

namespace {

/** Map a PIM command to the shape of its per-row processing. */
BitParallelOpShape
shapeFor(PimCmdEnum cmd, bool native_popcount)
{
    BitParallelOpShape s;
    switch (cmd) {
      case PimCmdEnum::kAdd:
      case PimCmdEnum::kSub:
      case PimCmdEnum::kMin:
      case PimCmdEnum::kMax:
      case PimCmdEnum::kAnd:
      case PimCmdEnum::kOr:
      case PimCmdEnum::kXor:
      case PimCmdEnum::kXnor:
      case PimCmdEnum::kGT:
      case PimCmdEnum::kLT:
      case PimCmdEnum::kEQ:
      case PimCmdEnum::kNE:
        s.input_rows = 2;
        s.cycles_per_elem = 1;
        break;
      case PimCmdEnum::kMul:
        s.input_rows = 2;
        s.cycles_per_elem =
            alpuCyclesForOp(AlpuOp::kMul, native_popcount);
        break;
      case PimCmdEnum::kDiv:
        s.input_rows = 2;
        s.cycles_per_elem =
            alpuCyclesForOp(AlpuOp::kDiv, native_popcount);
        break;
      case PimCmdEnum::kScaledAdd:
        // mul by scalar then add second operand: two ALU ops fused.
        s.input_rows = 2;
        s.cycles_per_elem = 2;
        break;
      case PimCmdEnum::kAbs:
      case PimCmdEnum::kNot:
      case PimCmdEnum::kShiftBitsLeft:
      case PimCmdEnum::kShiftBitsRight:
        s.input_rows = 1;
        s.cycles_per_elem = 1;
        break;
      case PimCmdEnum::kAddScalar:
      case PimCmdEnum::kSubScalar:
      case PimCmdEnum::kMinScalar:
      case PimCmdEnum::kMaxScalar:
      case PimCmdEnum::kAndScalar:
      case PimCmdEnum::kOrScalar:
      case PimCmdEnum::kXorScalar:
      case PimCmdEnum::kGTScalar:
      case PimCmdEnum::kLTScalar:
      case PimCmdEnum::kEQScalar:
        s.input_rows = 1;
        s.cycles_per_elem = 1;
        break;
      case PimCmdEnum::kMulScalar:
        s.input_rows = 1;
        s.cycles_per_elem =
            alpuCyclesForOp(AlpuOp::kMul, native_popcount);
        break;
      case PimCmdEnum::kDivScalar:
        s.input_rows = 1;
        s.cycles_per_elem =
            alpuCyclesForOp(AlpuOp::kDiv, native_popcount);
        break;
      case PimCmdEnum::kPopCount:
        s.input_rows = 1;
        s.cycles_per_elem =
            alpuCyclesForOp(AlpuOp::kPopCount, native_popcount);
        break;
      case PimCmdEnum::kRedSum:
        s.input_rows = 1;
        s.output_rows = 0;
        s.cycles_per_elem = 1;
        s.reduction = true;
        break;
      case PimCmdEnum::kBroadcast:
        s.input_rows = 0;
        s.cycles_per_elem = 1;
        break;
      case PimCmdEnum::kCopyD2D:
        s.input_rows = 1;
        s.cycles_per_elem = 0;
        break;
      default:
        break;
    }
    return s;
}

} // namespace

PerfEnergyFulcrum::PerfEnergyFulcrum(const PimDeviceConfig &config)
    : PerfEnergyModel(config)
{
}

BitParallelOpShape
PerfEnergyFulcrum::shapeForCmd(PimCmdEnum cmd, bool native_popcount) const
{
    return shapeFor(cmd, native_popcount);
}

PimOpCost
PerfEnergyFulcrum::costOp(const PimOpProfile &profile) const
{
    const BitParallelOpShape s =
        shapeFor(profile.cmd, /*native_popcount=*/false);
    const auto &dram = config_.dram;

    const uint64_t elems_per_row =
        std::max<uint64_t>(1, config_.colsPerCore() / profile.bits);
    const uint64_t rows_per_core =
        (profile.max_elems_per_core + elems_per_row - 1) / elems_per_row;

    // Per-core latency: walker fills/drains plus sequential ALU
    // element streaming (additive; paper Section V-C ii). Datatypes
    // narrower than the ALU run SIMD-fashion within the 32-bit word
    // ("able to perform SIMD operations if needed", Section IV).
    const uint64_t lanes =
        std::max<uint64_t>(1, config_.fulcrum_alu_bits / profile.bits);
    const double row_io_ns =
        static_cast<double>(rows_per_core) *
        (s.input_rows * dram.row_read_ns +
         s.output_rows * dram.row_write_ns);
    const uint64_t core_cycles =
        (profile.max_elems_per_core + lanes - 1) / lanes *
        s.cycles_per_elem;
    const double alu_sec =
        static_cast<double>(core_cycles) * config_.aluPeriodSec();

    PimOpCost cost;
    cost.runtime_sec = row_io_ns * 1e-9 + alu_sec;

    // Energy: every active core contributes its own row ops + ALU ops.
    const uint64_t total_rows =
        (profile.num_elements + elems_per_row - 1) / elems_per_row;
    const double row_energy =
        static_cast<double>(total_rows) *
        (s.input_rows + s.output_rows) * power_.rowActPreEnergy();
    const uint64_t total_cycles =
        (profile.num_elements + lanes - 1) / lanes * s.cycles_per_elem;
    const double alu_energy =
        static_cast<double>(total_cycles) *
        power_.fulcrumAluEnergy();
    cost.energy_j = row_energy + alu_energy;
    // Each Fulcrum core spans two subarrays.
    cost.energy_j += background(cost.runtime_sec, profile.cores_used * 2);
    return cost;
}

PerfEnergyBankLevel::PerfEnergyBankLevel(const PimDeviceConfig &config)
    : PerfEnergyModel(config)
{
}

double
PerfEnergyBankLevel::gdlRowTime() const
{
    const uint64_t beats =
        (config_.colsPerCore() + config_.gdl_bits - 1) / config_.gdl_bits;
    return static_cast<double>(beats) * config_.dram.tccd_ns * 1e-9;
}

PimOpCost
PerfEnergyBankLevel::costOp(const PimOpProfile &profile) const
{
    const BitParallelOpShape s =
        shapeFor(profile.cmd, /*native_popcount=*/true);
    const auto &dram = config_.dram;

    const uint64_t elems_per_row =
        std::max<uint64_t>(1, config_.colsPerCore() / profile.bits);
    const uint64_t rows_per_core =
        (profile.max_elems_per_core + elems_per_row - 1) / elems_per_row;

    // Every row in or out crosses the GDL.
    const double gdl_sec = gdlRowTime();
    const double row_io_sec =
        static_cast<double>(rows_per_core) *
        (s.input_rows * (dram.row_read_ns * 1e-9 + gdl_sec) +
         s.output_rows * (dram.row_write_ns * 1e-9 + gdl_sec));

    // SIMD lanes in the wide ALPU.
    const uint64_t lanes =
        std::max<uint64_t>(1, config_.bank_alu_bits / profile.bits);
    const uint64_t elem_cycles =
        (profile.max_elems_per_core + lanes - 1) / lanes *
        s.cycles_per_elem;
    const double alu_sec =
        static_cast<double>(elem_cycles) * config_.aluPeriodSec();

    PimOpCost cost;
    cost.runtime_sec = row_io_sec + alu_sec;

    const uint64_t total_rows =
        (profile.num_elements + elems_per_row - 1) / elems_per_row;
    const double row_energy =
        static_cast<double>(total_rows) * (s.input_rows + s.output_rows) *
        (power_.rowActPreEnergy() + power_.gdlRowTransferEnergy());
    const uint64_t total_cycles =
        (profile.num_elements + lanes - 1) / lanes * s.cycles_per_elem;
    const double alu_energy =
        static_cast<double>(total_cycles) * power_.bankAluEnergy();
    cost.energy_j = row_energy + alu_energy;
    // A bank PE keeps one subarray of its bank streaming at a time.
    cost.energy_j += background(cost.runtime_sec, profile.cores_used);
    return cost;
}

} // namespace pimeval
