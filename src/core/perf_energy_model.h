/**
 * @file
 * Performance and energy model interface (paper Sections V-C, V-D).
 *
 * Each PIM architecture provides a model that converts an operation
 * profile (command, data type, element distribution) into estimated
 * runtime and energy. Data movement is costed separately from kernel
 * execution, mirroring the paper's breakdown (Fig. 7).
 */

#ifndef PIMEVAL_CORE_PERF_ENERGY_MODEL_H_
#define PIMEVAL_CORE_PERF_ENERGY_MODEL_H_

#include <memory>

#include "core/pim_params.h"
#include "core/pim_types.h"
#include "dram/mem_timing_backend.h"
#include "energy/micron_power_model.h"

namespace pimeval {

/**
 * Everything a model needs to cost one PIM command.
 */
struct PimOpProfile
{
    PimCmdEnum cmd = PimCmdEnum::kNone;
    PimDataType data_type = PimDataType::PIM_INT32;
    unsigned bits = 32;
    uint64_t num_elements = 0;
    /** Largest per-core element count — sets the critical path. */
    uint64_t max_elems_per_core = 0;
    /** Cores participating — sets total energy. */
    uint64_t cores_used = 0;
    /** Scalar operand when applicable (specializes bit-serial code). */
    uint64_t scalar = 0;
    /** Shift amount / broadcast payload reuse. */
    unsigned aux = 0;
};

/**
 * Estimated cost of one command or transfer.
 */
struct PimOpCost
{
    double runtime_sec = 0.0;
    double energy_j = 0.0;

    PimOpCost &operator+=(const PimOpCost &other)
    {
        runtime_sec += other.runtime_sec;
        energy_j += other.energy_j;
        return *this;
    }
};

/**
 * Abstract performance/energy model.
 */
class PerfEnergyModel
{
  public:
    explicit PerfEnergyModel(const PimDeviceConfig &config);
    virtual ~PerfEnergyModel() = default;

    /** Cost one PIM command (kernel execution). */
    virtual PimOpCost costOp(const PimOpProfile &profile) const = 0;

    /**
     * Cost a host<->device or device<->device transfer of @p bytes.
     * H2D/D2H use the aggregate rank bandwidth (ranks modeled as
     * independent channels, per the paper); D2D moves through row
     * copies inside the cores.
     */
    virtual PimOpCost costCopy(PimCopyEnum direction,
                               uint64_t bytes) const;

    const PimDeviceConfig &config() const { return config_; }
    const MicronPowerModel &power() const { return power_; }

    /** The memory-timing backend costing H2D/D2H transfers. */
    const MemTimingBackend &memBackend() const { return *mem_backend_; }
    /** Resolved backend kind (never DEFAULT). */
    PimMemBackend memBackendKind() const { return mem_backend_->kind(); }

    /** Factory for the selected device type. */
    static std::unique_ptr<PerfEnergyModel>
    create(const PimDeviceConfig &config);

  protected:
    /** Background energy for a kernel span. */
    double background(double seconds, uint64_t active_subarrays) const
    {
        return power_.backgroundEnergy(seconds, active_subarrays);
    }

    PimDeviceConfig config_;
    MicronPowerModel power_;
    /** Always-constructed memory-timing backend (resolved from
     *  config/env; LUT by default). */
    std::unique_ptr<MemTimingBackend> mem_backend_;
};

} // namespace pimeval

#endif // PIMEVAL_CORE_PERF_ENERGY_MODEL_H_
