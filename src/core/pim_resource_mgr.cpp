/**
 * @file
 * Resource manager implementation.
 */

#include "core/pim_resource_mgr.h"

#include <algorithm>
#include <cassert>

#include "core/pim_metrics.h"
#include "util/logging.h"

namespace pimeval {

RowAllocator::RowAllocator(uint64_t num_rows) : num_rows_(num_rows)
{
    if (num_rows_ > 0)
        free_[0] = num_rows_;
}

uint64_t
RowAllocator::allocate(uint64_t count)
{
    if (count == 0)
        return UINT64_MAX;
    for (auto it = free_.begin(); it != free_.end(); ++it) {
        if (it->second >= count) {
            const uint64_t offset = it->first;
            const uint64_t remaining = it->second - count;
            free_.erase(it);
            if (remaining > 0)
                free_[offset + count] = remaining;
            return offset;
        }
    }
    return UINT64_MAX;
}

void
RowAllocator::release(uint64_t offset, uint64_t count)
{
    if (count == 0)
        return;
    assert(offset + count <= num_rows_);
    auto [it, inserted] = free_.emplace(offset, count);
    assert(inserted);
    // Merge with successor.
    auto next = std::next(it);
    if (next != free_.end() && it->first + it->second == next->first) {
        it->second += next->second;
        free_.erase(next);
    }
    // Merge with predecessor.
    if (it != free_.begin()) {
        auto prev = std::prev(it);
        if (prev->first + prev->second == it->first) {
            prev->second += it->second;
            free_.erase(it);
        }
    }
}

uint64_t
RowAllocator::freeRows() const
{
    uint64_t total = 0;
    for (const auto &[offset, len] : free_)
        total += len;
    return total;
}

uint64_t
RowAllocator::largestFreeExtent() const
{
    uint64_t largest = 0;
    for (const auto &[offset, len] : free_)
        largest = std::max(largest, len);
    return largest;
}

PimResourceMgr::PimResourceMgr(const PimDeviceConfig &config)
    : config_(config)
{
    const uint64_t num_cores = config_.numCores();
    row_allocators_.reserve(num_cores);
    for (uint64_t c = 0; c < num_cores; ++c)
        row_allocators_.emplace_back(config_.rowsPerCore());
}

uint64_t
PimResourceMgr::rowsForRegion(uint64_t elems, unsigned bits,
                              bool v_layout) const
{
    if (elems == 0)
        return 0;
    if (v_layout) {
        // Groups of `cols` elements stacked in `bits`-row chunks.
        const uint64_t cols = config_.colsPerCore();
        const uint64_t chunks = (elems + cols - 1) / cols;
        return chunks * bits;
    }
    // Horizontal: whole rows of elems_per_row elements. The row is
    // charged fully even when partially used (paper Section V-E).
    const uint64_t elems_per_row =
        std::max<uint64_t>(1, config_.colsPerCore() / bits);
    return (elems + elems_per_row - 1) / elems_per_row;
}

std::vector<uint64_t>
PimResourceMgr::balancedSplit(uint64_t num_elements) const
{
    const uint64_t num_cores = config_.numCores();
    std::vector<uint64_t> counts(num_cores, 0);
    const uint64_t base = num_elements / num_cores;
    const uint64_t rem = num_elements % num_cores;
    for (uint64_t c = 0; c < num_cores; ++c)
        counts[c] = base + (c < rem ? 1 : 0);
    return counts;
}

bool
PimResourceMgr::placeRegions(
    PimDataObject &obj,
    const std::vector<std::pair<uint64_t, uint64_t>> &core_elem_counts)
{
    const unsigned bits = obj.bitsPerElement();
    uint64_t elem_offset = 0;
    std::vector<PimRegion> placed;
    placed.reserve(core_elem_counts.size());

    for (const auto &[core_id, elems] : core_elem_counts) {
        const uint64_t rows = rowsForRegion(elems, bits, obj.isVLayout());
        const uint64_t offset = row_allocators_[core_id].allocate(rows);
        if (offset == UINT64_MAX) {
            // Roll back everything placed so far.
            for (const auto &region : placed) {
                row_allocators_[region.core_id].release(region.row_offset,
                                                        region.num_rows);
            }
            return false;
        }
        PimRegion region;
        region.core_id = core_id;
        region.row_offset = offset;
        region.num_rows = rows;
        region.elem_offset = elem_offset;
        region.num_elements = elems;
        placed.push_back(region);
        elem_offset += elems;
    }
    obj.regions() = std::move(placed);
    return true;
}

PimDataObject *
PimResourceMgr::takeFromFreeList(uint64_t num_elements, unsigned bits,
                                 bool v_layout, PimDataType data_type,
                                 const PimDataObject *ref)
{
    const auto bucket =
        free_list_.find(FreeKey{num_elements, bits, v_layout});
    if (bucket == free_list_.end()) {
        PIM_METRIC_COUNT("freelist.miss", 1);
        return nullptr;
    }
    auto &cached = bucket->second;
    size_t pick = cached.size();
    if (ref == nullptr) {
        pick = cached.size() - 1;
    } else {
        // Association requires the reference's element distribution:
        // the same per-region core and element count sequence (row
        // offsets within a core are irrelevant to pairing).
        for (size_t i = cached.size(); i-- > 0;) {
            const auto &regions = cached[i]->regions();
            const auto &want = ref->regions();
            if (regions.size() != want.size())
                continue;
            bool match = true;
            for (size_t r = 0; r < regions.size(); ++r) {
                if (regions[r].core_id != want[r].core_id ||
                    regions[r].num_elements != want[r].num_elements) {
                    match = false;
                    break;
                }
            }
            if (match) {
                pick = i;
                break;
            }
        }
        if (pick == cached.size()) {
            PIM_METRIC_COUNT("freelist.miss", 1);
            return nullptr;
        }
    }
    PIM_METRIC_COUNT("freelist.hit", 1);

    std::unique_ptr<PimDataObject> obj = std::move(cached[pick]);
    cached.erase(cached.begin() + pick);
    if (cached.empty())
        free_list_.erase(bucket);
    --free_list_count_;

    obj->recycle(next_id_, data_type);
    PimDataObject *raw = obj.get();
    objects_[next_id_] = std::move(obj);
    ++next_id_;
    return raw;
}

PimDataObject *
PimResourceMgr::alloc(uint64_t num_elements, PimDataType data_type,
                      bool v_layout, bool quiet_exhaustion)
{
    if (num_elements == 0) {
        logError("pimAlloc: zero-element allocation rejected");
        return nullptr;
    }
    const unsigned bits = pimBitsOfDataType(data_type);
    if (PimDataObject *hit = takeFromFreeList(num_elements, bits,
                                              v_layout, data_type,
                                              nullptr))
        return hit;

    auto obj = std::make_unique<PimDataObject>(next_id_, num_elements,
                                               data_type, v_layout);
    // Rotate the starting core per allocation so that many small
    // objects spread across the device instead of piling onto the
    // first cores.
    const auto counts = balancedSplit(num_elements);
    const uint64_t num_cores = counts.size();
    std::vector<std::pair<uint64_t, uint64_t>> nonzero;
    uint64_t used = 0;
    for (uint64_t c = 0; c < num_cores; ++c) {
        if (counts[c] > 0) {
            nonzero.emplace_back((next_core_ + c) % num_cores,
                                 counts[c]);
            ++used;
        }
    }
    next_core_ = (next_core_ + used) % num_cores;
    if (!placeRegions(*obj, nonzero)) {
        // The cache may be parked on the rows placement needs.
        const bool flushed = free_list_count_ > 0;
        if (flushed)
            flushFreeList();
        if (!flushed || !placeRegions(*obj, nonzero)) {
            if (!quiet_exhaustion)
                logError("pimAlloc: device capacity exhausted");
            return nullptr;
        }
    }
    PimDataObject *raw = obj.get();
    objects_[next_id_] = std::move(obj);
    ++next_id_;
    return raw;
}

PimDataObject *
PimResourceMgr::allocAssociated(const PimDataObject &ref,
                                PimDataType data_type,
                                bool quiet_exhaustion)
{
    const unsigned bits = pimBitsOfDataType(data_type);
    if (PimDataObject *hit = takeFromFreeList(ref.numElements(), bits,
                                              ref.isVLayout(),
                                              data_type, &ref))
        return hit;

    auto obj = std::make_unique<PimDataObject>(
        next_id_, ref.numElements(), data_type, ref.isVLayout());
    std::vector<std::pair<uint64_t, uint64_t>> counts;
    counts.reserve(ref.regions().size());
    for (const auto &region : ref.regions())
        counts.emplace_back(region.core_id, region.num_elements);
    if (!placeRegions(*obj, counts)) {
        const bool flushed = free_list_count_ > 0;
        if (flushed)
            flushFreeList();
        if (!flushed || !placeRegions(*obj, counts)) {
            if (!quiet_exhaustion)
                logError("pimAllocAssociated: device capacity "
                         "exhausted");
            return nullptr;
        }
    }
    PimDataObject *raw = obj.get();
    objects_[next_id_] = std::move(obj);
    ++next_id_;
    return raw;
}

bool
PimResourceMgr::free(PimObjId id)
{
    auto it = objects_.find(id);
    if (it == objects_.end())
        return false;
    if (free_list_count_ < kMaxFreeListObjects) {
        // Park the whole object — storage and row placement — for
        // same-shape reallocation instead of tearing it down.
        std::unique_ptr<PimDataObject> obj = std::move(it->second);
        objects_.erase(it);
        free_list_[freeKeyFor(*obj)].push_back(std::move(obj));
        ++free_list_count_;
        return true;
    }
    releaseRows(*it->second);
    objects_.erase(it);
    return true;
}

bool
PimResourceMgr::freeElided(PimObjId id)
{
    auto it = objects_.find(id);
    if (it == objects_.end())
        return false;
    it->second->markPristine();
    PIM_METRIC_COUNT("freelist.pristine", 1);
    return free(id);
}

void
PimResourceMgr::releaseRows(const PimDataObject &obj)
{
    for (const auto &region : obj.regions()) {
        row_allocators_[region.core_id].release(region.row_offset,
                                                region.num_rows);
    }
}

void
PimResourceMgr::flushFreeList()
{
    if (free_list_count_ > 0)
        PIM_METRIC_COUNT("freelist.flush", 1);
    for (const auto &[key, bucket] : free_list_) {
        for (const auto &obj : bucket)
            releaseRows(*obj);
    }
    free_list_.clear();
    free_list_count_ = 0;
}

PimDataObject *
PimResourceMgr::get(PimObjId id)
{
    auto it = objects_.find(id);
    return it == objects_.end() ? nullptr : it->second.get();
}

const PimDataObject *
PimResourceMgr::get(PimObjId id) const
{
    auto it = objects_.find(id);
    return it == objects_.end() ? nullptr : it->second.get();
}

double
PimResourceMgr::utilization() const
{
    const uint64_t rows_per_core = config_.rowsPerCore();
    uint64_t total = 0, used = 0;
    for (const auto &alloc : row_allocators_) {
        total += rows_per_core;
        used += rows_per_core - alloc.freeRows();
    }
    // Rows parked in the free-list are available capacity, not live
    // allocations (the cache is flushed whenever placement needs it).
    for (const auto &[key, bucket] : free_list_) {
        for (const auto &obj : bucket) {
            for (const auto &region : obj->regions())
                used -= region.num_rows;
        }
    }
    return total == 0 ? 0.0
                      : static_cast<double>(used) /
                          static_cast<double>(total);
}

} // namespace pimeval
