/**
 * @file
 * Runtime-configuration resolver implementation: the process's single
 * getenv point for PIMEVAL_* knobs.
 */

#include "core/pim_runtime_config.h"

#include <cstdlib>
#include <cstring>
#include <mutex>

#include "core/pim_trace.h"

namespace pimeval {

namespace {

std::mutex g_config_mutex;
PimRuntimeConfig g_config;

/** Non-empty environment value, or nullptr. */
const char *
envValue(const char *name)
{
    const char *v = std::getenv(name);
    return (v && *v) ? v : nullptr;
}

/** "0" is false, any other non-empty value is true (the historical
 *  PIMEVAL_FUSION / PIMEVAL_PIPELINE_INLINE convention). */
bool
envBool(const char *v)
{
    return *v != '0';
}

const char *
sourceName(PimKnobSource source)
{
    switch (source) {
      case PimKnobSource::kConfig:
        return "config";
      case PimKnobSource::kEnv:
        return "env";
      case PimKnobSource::kDefault:
        break;
    }
    return "default";
}

/**
 * Parse "cycle" / "analytical" / "lut". Kept local (rather than
 * calling MemTimingBackend::parseKind) so this resolver stays in the
 * bottom-most library with no dependency on the DRAM layer, which
 * itself resolves through here.
 */
bool
parseBackend(const char *name, PimMemBackend *out)
{
    if (std::strcmp(name, "cycle") == 0) {
        *out = PimMemBackend::PIM_MEM_BACKEND_CYCLE;
        return true;
    }
    if (std::strcmp(name, "analytical") == 0) {
        *out = PimMemBackend::PIM_MEM_BACKEND_ANALYTICAL;
        return true;
    }
    if (std::strcmp(name, "lut") == 0) {
        *out = PimMemBackend::PIM_MEM_BACKEND_LUT;
        return true;
    }
    return false;
}

const char *
backendName(PimMemBackend kind)
{
    switch (kind) {
      case PimMemBackend::PIM_MEM_BACKEND_CYCLE:
        return "cycle";
      case PimMemBackend::PIM_MEM_BACKEND_ANALYTICAL:
        return "analytical";
      case PimMemBackend::PIM_MEM_BACKEND_LUT:
        return "lut";
      case PimMemBackend::PIM_MEM_BACKEND_DEFAULT:
        break;
    }
    return "default";
}

/** Minimal JSON string escaping (paths can carry backslashes). */
std::string
jsonEscape(const std::string &s)
{
    std::string out;
    out.reserve(s.size());
    for (const char c : s) {
        if (c == '"' || c == '\\')
            out.push_back('\\');
        out.push_back(c);
    }
    return out;
}

} // namespace

PimResolvedRuntimeConfig
pimResolveRuntimeConfig()
{
    PimRuntimeConfig cfg;
    {
        std::lock_guard<std::mutex> lock(g_config_mutex);
        cfg = g_config;
    }
    PimResolvedRuntimeConfig r;

    if (cfg.trace_path) {
        r.trace_path = {*cfg.trace_path, PimKnobSource::kConfig};
    } else if (const char *v = envValue("PIMEVAL_TRACE")) {
        r.trace_path = {v, PimKnobSource::kEnv};
    }

    r.trace_capacity = {PimTracer::kDefaultCapacity,
                        PimKnobSource::kDefault};
    if (cfg.trace_capacity) {
        if (*cfg.trace_capacity > 0)
            r.trace_capacity = {*cfg.trace_capacity,
                                PimKnobSource::kConfig};
    } else if (const char *v = envValue("PIMEVAL_TRACE_CAPACITY")) {
        const long long parsed = std::atoll(v);
        if (parsed > 0)
            r.trace_capacity = {static_cast<uint64_t>(parsed),
                                PimKnobSource::kEnv};
    }

    if (cfg.profile_path) {
        r.profile_path = {*cfg.profile_path, PimKnobSource::kConfig};
    } else if (const char *v = envValue("PIMEVAL_PROFILE")) {
        r.profile_path = {v, PimKnobSource::kEnv};
    }

    r.profile_sample_ms = {25.0, PimKnobSource::kDefault};
    if (cfg.profile_sample_ms) {
        r.profile_sample_ms = {
            *cfg.profile_sample_ms > 0.0 ? *cfg.profile_sample_ms : 0.0,
            PimKnobSource::kConfig};
    } else if (const char *v = envValue("PIMEVAL_PROFILE_SAMPLE_MS")) {
        const double parsed = std::atof(v);
        r.profile_sample_ms = {parsed > 0.0 ? parsed : 0.0,
                               PimKnobSource::kEnv};
    }

    r.fusion = {false, PimKnobSource::kDefault};
    if (cfg.fusion) {
        r.fusion = {*cfg.fusion, PimKnobSource::kConfig};
    } else if (const char *v = envValue("PIMEVAL_FUSION")) {
        r.fusion = {envBool(v), PimKnobSource::kEnv};
    }

    r.mem_backend = {PimMemBackend::PIM_MEM_BACKEND_DEFAULT,
                     PimKnobSource::kDefault};
    if (cfg.mem_backend &&
        *cfg.mem_backend != PimMemBackend::PIM_MEM_BACKEND_DEFAULT) {
        r.mem_backend = {*cfg.mem_backend, PimKnobSource::kConfig};
    } else if (const char *v = envValue("PIMEVAL_MEM_BACKEND")) {
        PimMemBackend parsed;
        if (parseBackend(v, &parsed))
            r.mem_backend = {parsed, PimKnobSource::kEnv};
    }

    r.pipeline_inline = {-1, PimKnobSource::kDefault};
    if (cfg.pipeline_inline) {
        r.pipeline_inline = {*cfg.pipeline_inline ? 1 : 0,
                             PimKnobSource::kConfig};
    } else if (const char *v = envValue("PIMEVAL_PIPELINE_INLINE")) {
        r.pipeline_inline = {envBool(v) ? 1 : 0, PimKnobSource::kEnv};
    }

    return r;
}

} // namespace pimeval

PimStatus
pimSetRuntimeConfig(const pimeval::PimRuntimeConfig &config)
{
    std::lock_guard<std::mutex> lock(pimeval::g_config_mutex);
    pimeval::g_config = config;
    return PimStatus::PIM_OK;
}

pimeval::PimRuntimeConfig
pimGetRuntimeConfig()
{
    std::lock_guard<std::mutex> lock(pimeval::g_config_mutex);
    return pimeval::g_config;
}

PimStatus
pimDumpRuntimeConfig(std::ostream &os)
{
    using pimeval::jsonEscape;
    using pimeval::sourceName;
    const pimeval::PimResolvedRuntimeConfig r =
        pimeval::pimResolveRuntimeConfig();
    os << "{\n";
    const auto knob = [&os](const char *name, const char *env,
                            const std::string &value,
                            pimeval::PimKnobSource source, bool quote,
                            bool last = false) {
        os << "  \"" << name << "\": {\"value\": ";
        if (quote)
            os << '"' << jsonEscape(value) << '"';
        else
            os << value;
        os << ", \"source\": \"" << sourceName(source)
           << "\", \"env\": \"" << env << "\"}" << (last ? "\n" : ",\n");
    };
    knob("trace_path", "PIMEVAL_TRACE", r.trace_path.value,
         r.trace_path.source, true);
    knob("trace_capacity", "PIMEVAL_TRACE_CAPACITY",
         std::to_string(r.trace_capacity.value),
         r.trace_capacity.source, false);
    knob("profile_path", "PIMEVAL_PROFILE", r.profile_path.value,
         r.profile_path.source, true);
    knob("profile_sample_ms", "PIMEVAL_PROFILE_SAMPLE_MS",
         std::to_string(r.profile_sample_ms.value),
         r.profile_sample_ms.source, false);
    knob("fusion", "PIMEVAL_FUSION", r.fusion.value ? "true" : "false",
         r.fusion.source, false);
    knob("mem_backend", "PIMEVAL_MEM_BACKEND",
         pimeval::backendName(r.mem_backend.value), r.mem_backend.source,
         true);
    knob("pipeline_inline", "PIMEVAL_PIPELINE_INLINE",
         std::to_string(r.pipeline_inline.value),
         r.pipeline_inline.source, false, /*last=*/true);
    os << "}\n";
    return PimStatus::PIM_OK;
}
