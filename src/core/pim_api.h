/**
 * @file
 * The public PIM API (paper Section V-B).
 *
 * High-level, architecture-portable C-style calls. A benchmark written
 * against these functions runs unmodified on every simulated PIM
 * target (bit-serial DRAM-AP, Fulcrum, bank-level); see paper
 * Listing 1 for the canonical AXPY example.
 *
 * All calls return PimStatus (or an object id where noted) and operate
 * on the process-wide active device created by pimCreateDevice().
 */

#ifndef PIMEVAL_CORE_PIM_API_H_
#define PIMEVAL_CORE_PIM_API_H_

#include <cstdint>
#include <ostream>

#include "core/pim_metrics.h"
#include "core/pim_params.h"
#include "core/pim_stats.h"
#include "core/pim_types.h"

// ---------------------------------------------------------------------------
// Device management
// ---------------------------------------------------------------------------

/**
 * Create the active PIM device.
 * @param device   simulation target.
 * @param num_ranks / banks / subarrays / rows / cols  DRAM geometry;
 *        pass 0 to keep the Table II default for that field.
 */
PimStatus pimCreateDevice(PimDeviceEnum device, uint64_t num_ranks = 0,
                          uint64_t num_banks_per_rank = 0,
                          uint64_t num_subarrays_per_bank = 0,
                          uint64_t num_rows_per_subarray = 0,
                          uint64_t num_cols_per_row = 0);

/** Create a device from a full configuration struct. */
PimStatus pimCreateDeviceFromConfig(const pimeval::PimDeviceConfig &config);

/** Destroy the active device and all its objects. */
PimStatus pimDeleteDevice();

/** Whether a device is active. */
bool pimIsDeviceActive();

/** Configuration of the active device (must be active). */
const pimeval::PimDeviceConfig &pimGetDeviceConfig();

/**
 * Resolved memory-timing backend of the active device (docs/
 * PERFORMANCE.md): the implementation costing H2D/D2H transfers.
 * Selection: PimDeviceConfig::mem_backend, else PIMEVAL_MEM_BACKEND
 * (cycle|analytical|lut), else use_dram_timing implies CYCLE, else
 * LUT. Returns PIM_MEM_BACKEND_DEFAULT when no device is active.
 */
PimMemBackend pimGetMemBackend();

/**
 * Select the execution mode of the active device. PIM_EXEC_SYNC (the
 * default) runs every call to completion before returning. In
 * PIM_EXEC_ASYNC, non-blocking calls enqueue into the device command
 * pipeline and independent dependency chains execute concurrently;
 * calls that hand data back to the host (pimCopyDeviceToHost,
 * pimRedSum*) drain only their dependency cone, and statistics are
 * committed in issue order so final stats match sync mode
 * bit-for-bit. Switching modes drains the pipeline.
 */
PimStatus pimSetExecMode(PimExecEnum mode);

/** Execution mode of the active device (sync if none). */
PimExecEnum pimGetExecMode();

/**
 * Drain the command pipeline of the active device: every enqueued
 * command has executed and committed its statistics when this
 * returns. No-op in sync mode.
 */
PimStatus pimSync();

// ---------------------------------------------------------------------------
// Elementwise command fusion (docs/PERFORMANCE.md). Fusion is a
// functional-simulation optimization: chained elementwise commands
// execute as one pass over memory with dead temporaries elided, while
// perf/energy statistics stay bit-identical to unfused execution.
// PIMEVAL_FUSION=1 enables it device-wide at creation.
// ---------------------------------------------------------------------------

/**
 * Enable or disable elementwise command fusion on the active device.
 * Disabling flushes any pending fusion window first. Independent of
 * explicit pimBeginFusion/pimEndFusion regions, which capture even
 * while the global toggle is off.
 */
PimStatus pimSetFusionEnabled(bool enabled);

/** Whether device-wide fusion is enabled (false if no device). */
bool pimGetFusionEnabled();

/**
 * Open an explicit fusion region: elementwise commands buffer for
 * fusion until the matching pimEndFusion, regardless of the global
 * toggle. Regions nest; only the outermost pimEndFusion flushes.
 * Full-object pimRedSum captures as a chain terminator and
 * pimBroadcastInt as a chain head, so compute+reduce sequences fuse;
 * a reduction result captured inside a region is deferred and must
 * only be read after the outermost pimEndFusion (or an intervening
 * flush such as pimSync). Other non-fusable calls (copies, ranged
 * reductions, stats queries) inside a region flush the pending
 * window and execute in order, so a region never changes final
 * observable semantics.
 */
PimStatus pimBeginFusion();

/** Close the innermost fusion region, flushing pending commands. */
PimStatus pimEndFusion();

// ---------------------------------------------------------------------------
// Resource management
// ---------------------------------------------------------------------------

/**
 * Allocate a PIM data object.
 * @param alloc_type layout strategy (AUTO picks the device native).
 * @param num_elements element count.
 * @param bits_per_element must match the data type width.
 * @param data_type element type.
 * @return object id, or -1 on failure.
 */
PimObjId pimAlloc(PimAllocEnum alloc_type, uint64_t num_elements,
                  unsigned bits_per_element, PimDataType data_type);

/**
 * Allocate an object with the same element distribution as @p ref so
 * element-wise commands pair corresponding elements within each core.
 */
PimObjId pimAllocAssociated(unsigned bits_per_element, PimObjId ref,
                            PimDataType data_type);

/** Free an object. */
PimStatus pimFree(PimObjId obj);

// ---------------------------------------------------------------------------
// Data movement
// ---------------------------------------------------------------------------

/** Copy host memory into an object (full object, or [begin,end)). */
PimStatus pimCopyHostToDevice(const void *src, PimObjId dest,
                              uint64_t idx_begin = 0, uint64_t idx_end = 0);

/** Copy an object back to host memory. */
PimStatus pimCopyDeviceToHost(PimObjId src, void *dest,
                              uint64_t idx_begin = 0, uint64_t idx_end = 0);

/** Device-to-device copy between same-shape objects. */
PimStatus pimCopyDeviceToDevice(PimObjId src, PimObjId dest);

// ---------------------------------------------------------------------------
// Element-wise computation (two vector operands)
// ---------------------------------------------------------------------------

PimStatus pimAdd(PimObjId a, PimObjId b, PimObjId dest);
PimStatus pimSub(PimObjId a, PimObjId b, PimObjId dest);
PimStatus pimMul(PimObjId a, PimObjId b, PimObjId dest);
PimStatus pimDiv(PimObjId a, PimObjId b, PimObjId dest);
PimStatus pimMin(PimObjId a, PimObjId b, PimObjId dest);
PimStatus pimMax(PimObjId a, PimObjId b, PimObjId dest);
PimStatus pimAnd(PimObjId a, PimObjId b, PimObjId dest);
PimStatus pimOr(PimObjId a, PimObjId b, PimObjId dest);
PimStatus pimXor(PimObjId a, PimObjId b, PimObjId dest);
PimStatus pimXnor(PimObjId a, PimObjId b, PimObjId dest);

/** Comparisons write 0/1 per element into dest. */
PimStatus pimGT(PimObjId a, PimObjId b, PimObjId dest);
PimStatus pimLT(PimObjId a, PimObjId b, PimObjId dest);
PimStatus pimEQ(PimObjId a, PimObjId b, PimObjId dest);
PimStatus pimNE(PimObjId a, PimObjId b, PimObjId dest);

// ---------------------------------------------------------------------------
// Element-wise computation (one vector operand)
// ---------------------------------------------------------------------------

PimStatus pimAbs(PimObjId a, PimObjId dest);
PimStatus pimNot(PimObjId a, PimObjId dest);
PimStatus pimPopCount(PimObjId a, PimObjId dest);

// ---------------------------------------------------------------------------
// Scalar-operand computation
// ---------------------------------------------------------------------------

/**
 * Single entry point for every vector-op-scalar command: dest[i] =
 * a[i] <op> scalar. @p op must be one of the *Scalar members of
 * PimCmdEnum (kAddScalar ... kEQScalar); anything else fails. The
 * scalar is interpreted in the object's data type: pass negative
 * values for signed types bit-cast to uint64_t (e.g. via
 * static_cast<uint64_t>(int64_t{-5})); the device masks and
 * sign-extends to the element width.
 *
 * The pim<Op>Scalar names below are source-compatible wrappers.
 */
PimStatus pimOpScalar(PimCmdEnum op, PimObjId a, PimObjId dest,
                      uint64_t scalar);

// clang-format off
inline PimStatus pimAddScalar(PimObjId a, PimObjId dest, uint64_t scalar) { return pimOpScalar(PimCmdEnum::kAddScalar, a, dest, scalar); }
inline PimStatus pimSubScalar(PimObjId a, PimObjId dest, uint64_t scalar) { return pimOpScalar(PimCmdEnum::kSubScalar, a, dest, scalar); }
inline PimStatus pimMulScalar(PimObjId a, PimObjId dest, uint64_t scalar) { return pimOpScalar(PimCmdEnum::kMulScalar, a, dest, scalar); }
inline PimStatus pimDivScalar(PimObjId a, PimObjId dest, uint64_t scalar) { return pimOpScalar(PimCmdEnum::kDivScalar, a, dest, scalar); }
inline PimStatus pimMinScalar(PimObjId a, PimObjId dest, uint64_t scalar) { return pimOpScalar(PimCmdEnum::kMinScalar, a, dest, scalar); }
inline PimStatus pimMaxScalar(PimObjId a, PimObjId dest, uint64_t scalar) { return pimOpScalar(PimCmdEnum::kMaxScalar, a, dest, scalar); }
inline PimStatus pimAndScalar(PimObjId a, PimObjId dest, uint64_t scalar) { return pimOpScalar(PimCmdEnum::kAndScalar, a, dest, scalar); }
inline PimStatus pimOrScalar(PimObjId a, PimObjId dest, uint64_t scalar) { return pimOpScalar(PimCmdEnum::kOrScalar, a, dest, scalar); }
inline PimStatus pimXorScalar(PimObjId a, PimObjId dest, uint64_t scalar) { return pimOpScalar(PimCmdEnum::kXorScalar, a, dest, scalar); }
inline PimStatus pimGTScalar(PimObjId a, PimObjId dest, uint64_t scalar) { return pimOpScalar(PimCmdEnum::kGTScalar, a, dest, scalar); }
inline PimStatus pimLTScalar(PimObjId a, PimObjId dest, uint64_t scalar) { return pimOpScalar(PimCmdEnum::kLTScalar, a, dest, scalar); }
inline PimStatus pimEQScalar(PimObjId a, PimObjId dest, uint64_t scalar) { return pimOpScalar(PimCmdEnum::kEQScalar, a, dest, scalar); }
// clang-format on

/** dest = a * scalar + b (the AXPY inner operation). */
PimStatus pimScaledAdd(PimObjId a, PimObjId b, PimObjId dest,
                       uint64_t scalar);

/** Bit shifts by a constant amount (arithmetic right for signed). */
PimStatus pimShiftBitsLeft(PimObjId a, PimObjId dest, unsigned amount);
PimStatus pimShiftBitsRight(PimObjId a, PimObjId dest, unsigned amount);

/**
 * Shift every element one position toward lower/higher indices
 * (vacated slot filled with zero), or rotate the whole vector by one.
 * Inter-element movement crosses region boundaries, so the model
 * charges a full object rewrite plus a host-assisted boundary fix —
 * why kernels needing data reshuffling gravitate to the host (paper
 * Section VIII, radix sort / KNN discussion).
 */
PimStatus pimShiftElementsLeft(PimObjId obj);
PimStatus pimShiftElementsRight(PimObjId obj);
PimStatus pimRotateElementsLeft(PimObjId obj);
PimStatus pimRotateElementsRight(PimObjId obj);

// ---------------------------------------------------------------------------
// Reductions and broadcast
// ---------------------------------------------------------------------------

/** Sum all elements into @p result (sign-aware). */
PimStatus pimRedSum(PimObjId a, int64_t *result);

/** Sum elements in [idx_begin, idx_end). */
PimStatus pimRedSumRanged(PimObjId a, uint64_t idx_begin, uint64_t idx_end,
                          int64_t *result);

/** Broadcast a scalar to every element of dest. */
PimStatus pimBroadcastInt(PimObjId dest, uint64_t value);

// ---------------------------------------------------------------------------
// Statistics and host timing
// ---------------------------------------------------------------------------

/** Print the Listing-3 style report to the stream. */
PimStatus pimShowStats(std::ostream &os);

/**
 * Export the statistics of the active device as structured JSON:
 * aggregate totals, data-copy byte counts, and the full per-command
 * modeled runtime/energy table (what pimShowStats pretty-prints).
 * Drains the pipeline first so the export observes everything issued.
 */
PimStatus pimDumpStats(const char *path);

/** Reset all statistics of the active device. */
PimStatus pimResetStats();

/** Snapshot of the aggregate statistics. */
pimeval::PimRunStats pimGetStats();

/** Operation-mix counters (Fig. 8). */
std::map<std::string, uint64_t> pimGetOpMix();

/** Host-phase timing helpers for PIM+Host benchmarks. */
PimStatus pimStartHostTimer();
PimStatus pimStopHostTimer();
PimStatus pimAddHostTime(double seconds);

/**
 * Account a host-executed phase by its work characterization instead
 * of wall-clock time: the phase is costed on the same host parameters
 * as the CPU baseline (single-core: max(bytes / per-core bandwidth,
 * ops / clock)), so PIM-side host phases and the CPU baseline stay
 * mutually consistent regardless of the machine running the
 * simulation. Honors the modeling scale.
 */
PimStatus pimAddHostWork(uint64_t bytes, uint64_t ops);

/**
 * Paper-size what-if modeling: cost every subsequent command,
 * transfer, and host phase as if inputs were @p scale times larger
 * (functional execution stays at the allocated sizes). Used by the
 * figure-regeneration benches; see DESIGN.md. Pass 1.0 to disable.
 */
PimStatus pimSetModelingScale(double scale);

/** Current modeling scale of the active device (1.0 if none). */
double pimGetModelingScale();

// ---------------------------------------------------------------------------
// Observability: event tracing and simulator metrics
// (docs/OBSERVABILITY.md). The tracer and metrics registry are
// process-wide; tracing calls work with or without an active device.
// Setting the environment variable PIMEVAL_TRACE=<path> starts a trace
// at device creation and exports it at device deletion — existing
// benchmarks need no code changes.
// ---------------------------------------------------------------------------

/**
 * Start (or restart) event tracing; the trace is exported to @p path
 * by pimTraceEnd (".csv" selects CSV, anything else Chrome trace-event
 * JSON for Perfetto / chrome://tracing). Drains the pipeline of the
 * active device, if any, so the trace starts from a quiesced state.
 */
PimStatus pimTraceBegin(const char *path);

/**
 * Stop tracing and export. @p path overrides the pimTraceBegin path
 * when non-null. Drains the pipeline first so in-flight spans land in
 * the trace.
 */
PimStatus pimTraceEnd(const char *path = nullptr);

/** Export a snapshot of the active trace to @p path without stopping
 *  it. */
PimStatus pimTraceDump(const char *path);

/** Whether event tracing is currently recording. */
bool pimTraceActive();

/**
 * Read one simulator metric by name (e.g. "pipeline.hazard.raw",
 * "freelist.hit"; see docs/OBSERVABILITY.md for the glossary).
 * Counters yield their count, gauges their value, histograms their
 * mean. @return false when no such metric has been registered.
 */
bool pimGetMetric(const char *name, double *value);

/** Snapshot of every registered simulator metric, keyed by name. */
std::map<std::string, pimeval::PimMetricValue> pimGetAllMetrics();

/** Write all metrics as a JSON object to the stream. */
PimStatus pimDumpMetrics(std::ostream &os);

/** Zero all simulator metrics (e.g. between benchmark phases). */
PimStatus pimResetMetrics();

#endif // PIMEVAL_CORE_PIM_API_H_
