/**
 * @file
 * The simulated PIM device: functional execution of PIM commands plus
 * performance/energy costing and statistics (paper Fig. 5).
 *
 * Functional results are exact (element-wise semantics shared with the
 * ALPU reference), so benchmarks verify against CPU references, while
 * runtime and energy are modeled per command by the architecture's
 * PerfEnergyModel.
 */

#ifndef PIMEVAL_CORE_PIM_DEVICE_H_
#define PIMEVAL_CORE_PIM_DEVICE_H_

#include <chrono>
#include <memory>
#include <utility>
#include <vector>

#include "core/perf_energy_model.h"
#include "core/pim_data_object.h"
#include "core/pim_fusion.h"
#include "core/pim_metrics.h"
#include "core/pim_params.h"
#include "core/pim_pipeline.h"
#include "core/pim_resource_mgr.h"
#include "core/pim_stats.h"
#include "util/thread_pool.h"

namespace pimeval {

class PimDevice
{
  public:
    /**
     * @param ctx_id owning context id (1 = the process-default
     *        context); stamps this device's modeled trace spans so
     *        each context exports its own modeled-time track.
     * @param label  human-readable context label for trace track and
     *        log naming (empty for the default context).
     */
    explicit PimDevice(const PimDeviceConfig &config,
                       uint32_t ctx_id = 1,
                       const std::string &label = std::string());

    /** Flushes any pending fusion window before members tear down. */
    ~PimDevice();

    const PimDeviceConfig &config() const { return config_; }

    /** The architecture's performance/energy model. */
    const PerfEnergyModel *model() const { return model_.get(); }

    /** Owning context id (1 = process default). */
    uint32_t contextId() const { return ctx_id_; }

    /** Context label ("" for the default context). */
    const std::string &label() const { return label_; }

    /** This context's metric-domain slot (-1 when the registry ran
     *  out of slots); threads bound to it record per-context metrics
     *  alongside the aggregate. */
    int metricDomain() const { return metric_domain_.slot; }

    /**
     * Modeling scale factor (paper-size what-if): functional
     * execution stays at the allocated sizes while every command,
     * transfer, and host phase is costed as if objects held
     * scale-times more elements, analytically redistributed across
     * all cores. Enables regenerating the paper's figures, whose
     * input sizes exceed laptop memory (see DESIGN.md).
     */
    void setModelingScale(double scale);
    double modelingScale() const { return modeling_scale_; }

    PimStatsMgr &stats() { return stats_; }
    const PimStatsMgr &stats() const { return stats_; }
    PimResourceMgr &resources() { return resources_; }

    /**
     * Reset statistics atomically with the pipeline drained: the
     * clear runs under the pipeline mutex, so commands issued
     * concurrently can neither commit into the cleared state nor
     * lose their stats (pimResetStats semantics).
     */
    void resetStats();

    /**
     * Execution mode (paper-API extension). Switching to sync drains
     * the pipeline first, so the switch itself is a sync point.
     */
    void setExecMode(PimExecEnum mode);
    PimExecEnum execMode() const { return exec_mode_; }

    /** Drain the command pipeline: all commands executed and all
     *  statistics committed. No-op in sync mode. */
    void sync();

    // --- Elementwise command fusion (core/pim_fusion.h) ---

    /**
     * Fusion toggle (PIMEVAL_FUSION env, pimSetFusionEnabled). While
     * enabled, every fusable elementwise command is buffered in the
     * fusion window; disabling flushes pending commands first.
     */
    void setFusionEnabled(bool on);
    bool fusionEnabled() const { return fusion_on_; }

    /**
     * Explicit fusion region (pimBeginFusion/pimEndFusion): captures
     * commands regardless of the global toggle until the matching
     * endFusion, which flushes. Regions nest; only the outermost
     * endFusion flushes. endFusion returns false when there is no
     * matching beginFusion.
     */
    void beginFusion();
    bool endFusion();

    // --- Resource management ---
    PimObjId alloc(PimAllocEnum alloc_type, uint64_t num_elements,
                   PimDataType data_type);
    PimObjId allocAssociated(PimObjId ref, PimDataType data_type);
    bool free(PimObjId id);
    PimDataObject *object(PimObjId id) { return resources_.get(id); }

    // --- Data movement ---
    PimStatus copyHostToDevice(const void *src, PimObjId dest,
                               uint64_t idx_begin, uint64_t idx_end);
    PimStatus copyDeviceToHost(PimObjId src, void *dest,
                               uint64_t idx_begin, uint64_t idx_end);
    PimStatus copyDeviceToDevice(PimObjId src, PimObjId dest);

    // --- Computation ---
    PimStatus executeBinary(PimCmdEnum cmd, PimObjId a, PimObjId b,
                            PimObjId dest);
    PimStatus executeUnary(PimCmdEnum cmd, PimObjId a, PimObjId dest);
    PimStatus executeScalar(PimCmdEnum cmd, PimObjId a, PimObjId dest,
                            uint64_t scalar);
    PimStatus executeScaledAdd(PimObjId a, PimObjId b, PimObjId dest,
                               uint64_t scalar);
    PimStatus executeShift(PimCmdEnum cmd, PimObjId a, PimObjId dest,
                           unsigned amount);
    PimStatus executeRedSum(PimObjId a, uint64_t idx_begin,
                            uint64_t idx_end, int64_t *result);
    PimStatus executeBroadcast(PimObjId dest, uint64_t value);
    PimStatus executeElementShift(PimCmdEnum cmd, PimObjId obj);

    /** Model a host phase on the CPU-baseline host parameters. */
    void addHostWork(uint64_t bytes, uint64_t ops);

    /**
     * Host-phase timing. Measurement happens on the issuing thread;
     * in async mode the measured seconds are committed through the
     * pipeline so host time lands in issue order like everything
     * else.
     */
    void startHostTimer();
    void stopHostTimer();
    void addHostTime(double seconds);

  private:
    /** True when commands must go through the pipeline. */
    bool pipelineActive() const
    {
        return exec_mode_ == PimExecEnum::PIM_EXEC_ASYNC &&
            pipeline_ != nullptr;
    }

    /**
     * Run @p body now (sync mode, with a null delta meaning "record
     * directly into stats_") or enqueue it with the given hazard
     * sets. Body signature: void(PimStatsDelta *). A @p blocking
     * issue drains the command's dependency cone before returning
     * (D2H copies and reductions hand results to the host).
     */
    template <typename Body>
    PimStatus
    issue(const std::vector<PimObjId> &reads,
          const std::vector<PimObjId> &writes, Body &&body,
          bool blocking = false)
    {
        if (!pipelineActive()) {
            body(static_cast<PimStatsDelta *>(nullptr));
            return PimStatus::PIM_OK;
        }
        // Single-core bypass: an idle inline-when-idle pipeline runs
        // the body right here in sync style (direct stats recording
        // — same commit order, nothing is in flight), skipping the
        // per-command closure/hazard/delta machinery.
        if (pipeline_->beginInline()) {
            body(static_cast<PimStatsDelta *>(nullptr));
            pipeline_->endInline();
            return PimStatus::PIM_OK;
        }
        const uint64_t seq = pipeline_->enqueue(
            reads, writes,
            [b = std::forward<Body>(body)](PimStatsDelta &delta) mutable {
                b(&delta);
            });
        if (blocking)
            pipeline_->waitSeq(seq);
        return PimStatus::PIM_OK;
    }

    /** Record one command cost into the delta (async) or directly
     *  into the stats manager (sync). */
    void
    commitCmd(PimStatsDelta *delta, PimStatsMgr::CmdKeyId id,
              const PimOpCost &cost)
    {
        if (delta)
            delta->cmds.push_back({id, cost});
        else
            stats_.recordCmd(id, cost);
    }

    /** Ditto for data transfers. */
    void
    commitCopy(PimStatsDelta *delta, PimCopyEnum direction,
               uint64_t bytes, const PimOpCost &cost)
    {
        if (delta)
            delta->copies.push_back({direction, bytes, cost});
        else
            stats_.recordCopy(direction, bytes, cost);
    }
    /** Native layout of this device type. */
    bool deviceUsesVLayout() const
    {
        return config_.device ==
            PimDeviceEnum::PIM_DEVICE_BITSIMD_V_AP ||
            config_.device == PimDeviceEnum::PIM_DEVICE_SIMDRAM;
    }

    /** Build a cost profile for an op on @p shape_obj. */
    PimOpProfile makeProfile(PimCmdEnum cmd, const PimDataObject &obj,
                             uint64_t scalar, unsigned aux) const;

    /** Transfer size under the modeling scale. */
    uint64_t modeledBytes(uint64_t bytes) const;

    /** Interned stats key id plus the tracer-stable name for the same
     *  "cmd.dtype.layout" string (execution-span labels). */
    struct CmdKeyInfo
    {
        PimStatsMgr::CmdKeyId id;
        const char *trace_name;
    };

    /** Interned stats key for the op (issuing thread only: interning
     *  happens at enqueue so key ids follow issue order). */
    CmdKeyInfo keyFor(PimCmdEnum cmd, const PimDataObject &obj);

    /** Validate operand compatibility; logs on failure. */
    bool checkCompatible(const PimDataObject *a, const PimDataObject *b,
                         const PimDataObject *dest,
                         const char *what) const;

    /** True while fusable elementwise commands should be buffered in
     *  the fusion window instead of issued. */
    bool fusionCapturing() const
    {
        return fusion_on_ || fusion_region_depth_ > 0;
    }

    /** Buffer one captured command (flushing first if the window is
     *  full). */
    void recordFusion(const PimFusedOp &op);

    /**
     * Plan and execute the pending fusion window: singleton chains run
     * exactly like unfused commands, multi-op chains lower to
     * expression tapes, and deferred frees resolve (elided temporaries
     * return pristine to the allocator). No-op when empty.
     */
    void flushFusion();

    /** Execute one window command through the normal issue path (a
     *  singleton chain — identical to the unfused command, including
     *  singleton reductions and broadcast fills). */
    void runFusedOp(const PimFusedOp &op);

    /** Execute one multi-op chain as a single pipeline command that
     *  commits every member's stats in issue order; blocks when the
     *  chain ends in a reduction (the scalar result goes back to the
     *  host). Returns the number of broadcast fills folded into
     *  their consumers as scalar immediates. */
    size_t executeFusedChain(const std::vector<PimFusedOp> &ops,
                             const PimFusionChain &chain);

    /**
     * RAII per-context metric-domain slot. Declared right after
     * ctx_id_/label_ and before every thread-owning member, so the
     * slot is acquired before any worker can record into it and
     * released only after pool_ and pipeline_ have joined their
     * threads (destruction is reverse declaration order).
     */
    struct MetricDomainLease
    {
        explicit MetricDomainLease(uint32_t ctx)
            : ctx_id(ctx),
              slot(PimMetrics::instance().acquireDomain(ctx))
        {
        }
        ~MetricDomainLease()
        {
            if (slot >= 0)
                PimMetrics::instance().releaseDomain(ctx_id);
        }
        MetricDomainLease(const MetricDomainLease &) = delete;
        MetricDomainLease &operator=(const MetricDomainLease &) =
            delete;
        uint32_t ctx_id;
        int slot;
    };

    PimDeviceConfig config_;
    uint32_t ctx_id_ = 1;
    std::string label_;
    MetricDomainLease metric_domain_;
    PimResourceMgr resources_;
    std::unique_ptr<PerfEnergyModel> model_;
    PimStatsMgr stats_;
    ThreadPool pool_;
    double modeling_scale_ = 1.0;
    PimExecEnum exec_mode_ = PimExecEnum::PIM_EXEC_SYNC;

    /** Fusion issue window (issuing thread only). */
    PimFusionWindow fusion_window_;
    /** Recycles captured-copy snapshot buffers; shared so in-flight
     *  snapshot deleters outlive the device member. */
    std::shared_ptr<PimSnapshotPool> snapshot_pool_ =
        std::make_shared<PimSnapshotPool>();
    bool fusion_on_ = false;
    int fusion_region_depth_ = 0;

    /** Host-phase wall-clock timer (issuing thread only). */
    std::chrono::high_resolution_clock::time_point host_timer_start_;
    bool host_timing_ = false;

    /** One (cmd, dtype, layout) cache slot; id -1 = unseen. */
    struct KeyCacheEntry
    {
        int32_t id = -1;
        const char *name = nullptr;
    };

    /** (cmd, dtype, layout) -> interned stats key + trace name. */
    static constexpr size_t kNumCmds =
        static_cast<size_t>(PimCmdEnum::kCopyD2D) + 1;
    static constexpr size_t kNumDataTypes =
        static_cast<size_t>(PimDataType::PIM_UINT64) + 1;
    KeyCacheEntry stats_key_cache_[kNumCmds][kNumDataTypes][2];

    /** Declared last: destroyed first, draining in-flight commands
     *  while stats_, pool_, and resources_ are still alive. */
    std::unique_ptr<PimPipeline> pipeline_;
};

} // namespace pimeval

#endif // PIMEVAL_CORE_PIM_DEVICE_H_
