/**
 * @file
 * The simulated PIM device: functional execution of PIM commands plus
 * performance/energy costing and statistics (paper Fig. 5).
 *
 * Functional results are exact (element-wise semantics shared with the
 * ALPU reference), so benchmarks verify against CPU references, while
 * runtime and energy are modeled per command by the architecture's
 * PerfEnergyModel.
 */

#ifndef PIMEVAL_CORE_PIM_DEVICE_H_
#define PIMEVAL_CORE_PIM_DEVICE_H_

#include <memory>

#include "core/perf_energy_model.h"
#include "core/pim_data_object.h"
#include "core/pim_params.h"
#include "core/pim_resource_mgr.h"
#include "core/pim_stats.h"
#include "util/thread_pool.h"

namespace pimeval {

class PimDevice
{
  public:
    explicit PimDevice(const PimDeviceConfig &config);

    const PimDeviceConfig &config() const { return config_; }

    /**
     * Modeling scale factor (paper-size what-if): functional
     * execution stays at the allocated sizes while every command,
     * transfer, and host phase is costed as if objects held
     * scale-times more elements, analytically redistributed across
     * all cores. Enables regenerating the paper's figures, whose
     * input sizes exceed laptop memory (see DESIGN.md).
     */
    void setModelingScale(double scale);
    double modelingScale() const { return modeling_scale_; }

    PimStatsMgr &stats() { return stats_; }
    const PimStatsMgr &stats() const { return stats_; }
    PimResourceMgr &resources() { return resources_; }

    // --- Resource management ---
    PimObjId alloc(PimAllocEnum alloc_type, uint64_t num_elements,
                   PimDataType data_type);
    PimObjId allocAssociated(PimObjId ref, PimDataType data_type);
    bool free(PimObjId id);
    PimDataObject *object(PimObjId id) { return resources_.get(id); }

    // --- Data movement ---
    PimStatus copyHostToDevice(const void *src, PimObjId dest,
                               uint64_t idx_begin, uint64_t idx_end);
    PimStatus copyDeviceToHost(PimObjId src, void *dest,
                               uint64_t idx_begin, uint64_t idx_end);
    PimStatus copyDeviceToDevice(PimObjId src, PimObjId dest);

    // --- Computation ---
    PimStatus executeBinary(PimCmdEnum cmd, PimObjId a, PimObjId b,
                            PimObjId dest);
    PimStatus executeUnary(PimCmdEnum cmd, PimObjId a, PimObjId dest);
    PimStatus executeScalar(PimCmdEnum cmd, PimObjId a, PimObjId dest,
                            uint64_t scalar);
    PimStatus executeScaledAdd(PimObjId a, PimObjId b, PimObjId dest,
                               uint64_t scalar);
    PimStatus executeShift(PimCmdEnum cmd, PimObjId a, PimObjId dest,
                           unsigned amount);
    PimStatus executeRedSum(PimObjId a, uint64_t idx_begin,
                            uint64_t idx_end, int64_t *result);
    PimStatus executeBroadcast(PimObjId dest, uint64_t value);
    PimStatus executeElementShift(PimCmdEnum cmd, PimObjId obj);

    /** Model a host phase on the CPU-baseline host parameters. */
    void addHostWork(uint64_t bytes, uint64_t ops);

  private:
    /** Native layout of this device type. */
    bool deviceUsesVLayout() const
    {
        return config_.device ==
            PimDeviceEnum::PIM_DEVICE_BITSIMD_V_AP ||
            config_.device == PimDeviceEnum::PIM_DEVICE_SIMDRAM;
    }

    /** Build a cost profile for an op on @p shape_obj. */
    PimOpProfile makeProfile(PimCmdEnum cmd, const PimDataObject &obj,
                             uint64_t scalar, unsigned aux) const;

    /** Transfer size under the modeling scale. */
    uint64_t modeledBytes(uint64_t bytes) const;

    /** Record the op in stats with the canonical key. */
    void record(PimCmdEnum cmd, const PimDataObject &obj,
                const PimOpCost &cost);

    /** Validate operand compatibility; logs on failure. */
    bool checkCompatible(const PimDataObject *a, const PimDataObject *b,
                         const PimDataObject *dest,
                         const char *what) const;

    PimDeviceConfig config_;
    PimResourceMgr resources_;
    std::unique_ptr<PerfEnergyModel> model_;
    PimStatsMgr stats_;
    ThreadPool pool_;
    double modeling_scale_ = 1.0;

    /** (cmd, dtype, layout) -> interned stats key id; -1 = unseen. */
    static constexpr size_t kNumCmds =
        static_cast<size_t>(PimCmdEnum::kCopyD2D) + 1;
    static constexpr size_t kNumDataTypes =
        static_cast<size_t>(PimDataType::PIM_UINT64) + 1;
    int32_t stats_key_cache_[kNumCmds][kNumDataTypes][2];
};

} // namespace pimeval

#endif // PIMEVAL_CORE_PIM_DEVICE_H_
