/**
 * @file
 * PimDevice implementation: functional semantics plus costing.
 */

#include "core/pim_device.h"

#include <algorithm>
#include <bit>
#include <cassert>
#include <cstring>

#include "fulcrum/fulcrum_core.h"
#include "util/logging.h"

namespace pimeval {

namespace {

/** Map a two/one-operand PIM command to the shared ALU semantics. */
bool
cmdToAlpuOp(PimCmdEnum cmd, AlpuOp &op)
{
    switch (cmd) {
      case PimCmdEnum::kAdd:
      case PimCmdEnum::kAddScalar:
        op = AlpuOp::kAdd;
        return true;
      case PimCmdEnum::kSub:
      case PimCmdEnum::kSubScalar:
        op = AlpuOp::kSub;
        return true;
      case PimCmdEnum::kMul:
      case PimCmdEnum::kMulScalar:
        op = AlpuOp::kMul;
        return true;
      case PimCmdEnum::kDiv:
      case PimCmdEnum::kDivScalar:
        op = AlpuOp::kDiv;
        return true;
      case PimCmdEnum::kMin:
      case PimCmdEnum::kMinScalar:
        op = AlpuOp::kMin;
        return true;
      case PimCmdEnum::kMax:
      case PimCmdEnum::kMaxScalar:
        op = AlpuOp::kMax;
        return true;
      case PimCmdEnum::kAnd:
      case PimCmdEnum::kAndScalar:
        op = AlpuOp::kAnd;
        return true;
      case PimCmdEnum::kOr:
      case PimCmdEnum::kOrScalar:
        op = AlpuOp::kOr;
        return true;
      case PimCmdEnum::kXor:
      case PimCmdEnum::kXorScalar:
        op = AlpuOp::kXor;
        return true;
      case PimCmdEnum::kXnor:
        op = AlpuOp::kXnor;
        return true;
      case PimCmdEnum::kNot:
        op = AlpuOp::kNot;
        return true;
      case PimCmdEnum::kAbs:
        op = AlpuOp::kAbs;
        return true;
      case PimCmdEnum::kGT:
      case PimCmdEnum::kGTScalar:
        op = AlpuOp::kGT;
        return true;
      case PimCmdEnum::kLT:
      case PimCmdEnum::kLTScalar:
        op = AlpuOp::kLT;
        return true;
      case PimCmdEnum::kEQ:
      case PimCmdEnum::kEQScalar:
        op = AlpuOp::kEQ;
        return true;
      case PimCmdEnum::kShiftBitsLeft:
        op = AlpuOp::kShiftL;
        return true;
      case PimCmdEnum::kShiftBitsRight:
        op = AlpuOp::kShiftR;
        return true;
      case PimCmdEnum::kPopCount:
        op = AlpuOp::kPopCount;
        return true;
      default:
        return false;
    }
}

} // namespace

PimDevice::PimDevice(const PimDeviceConfig &config)
    : config_(config), resources_(config),
      model_(PerfEnergyModel::create(config)),
      pool_(0)
{
    logInfo(strCat("Current Device = PIM_FUNCTIONAL, Simulation Target = ",
                   pimDeviceName(config_.device)));
    logInfo(config_.summary());
    if (config_.device == PimDeviceEnum::PIM_DEVICE_FULCRUM)
        logInfo("Aggregate every two subarrays as a single core");
    logInfo(strCat("Created PIM device with ", config_.numCores(),
                   " cores of ", config_.rowsPerCore(), " rows and ",
                   config_.colsPerCore(), " columns."));
    logInfo(strCat("Created thread pool with ", pool_.size(),
                   " threads."));
}

PimObjId
PimDevice::alloc(PimAllocEnum alloc_type, uint64_t num_elements,
                 PimDataType data_type)
{
    bool v_layout = deviceUsesVLayout();
    if (alloc_type == PimAllocEnum::PIM_ALLOC_V)
        v_layout = true;
    else if (alloc_type == PimAllocEnum::PIM_ALLOC_H)
        v_layout = false;
    PimDataObject *obj =
        resources_.alloc(num_elements, data_type, v_layout);
    return obj ? obj->id() : -1;
}

PimObjId
PimDevice::allocAssociated(PimObjId ref, PimDataType data_type)
{
    const PimDataObject *ref_obj = resources_.get(ref);
    if (!ref_obj) {
        logError("pimAllocAssociated: unknown reference object");
        return -1;
    }
    PimDataObject *obj = resources_.allocAssociated(*ref_obj, data_type);
    return obj ? obj->id() : -1;
}

bool
PimDevice::free(PimObjId id)
{
    return resources_.free(id);
}

PimStatus
PimDevice::copyHostToDevice(const void *src, PimObjId dest,
                            uint64_t idx_begin, uint64_t idx_end)
{
    PimDataObject *obj = resources_.get(dest);
    if (!obj || !src) {
        logError("pimCopyHostToDevice: bad arguments");
        return PimStatus::PIM_ERROR;
    }
    if (idx_end == 0)
        idx_end = obj->numElements();
    if (idx_begin >= idx_end || idx_end > obj->numElements()) {
        logError("pimCopyHostToDevice: bad range");
        return PimStatus::PIM_ERROR;
    }

    const unsigned bits = obj->bitsPerElement();
    const uint64_t count = idx_end - idx_begin;
    const auto *bytes = static_cast<const uint8_t *>(src);
    auto &raw = obj->raw();
    const uint64_t mask = obj->elementMask();

    auto convert = [&](size_t i) {
        uint64_t v = 0;
        switch (bits) {
          case 1:
          case 8:
            v = bytes[i];
            break;
          case 16:
            std::memcpy(&v, bytes + i * 2, 2);
            break;
          case 32:
            std::memcpy(&v, bytes + i * 4, 4);
            break;
          case 64:
            std::memcpy(&v, bytes + i * 8, 8);
            break;
          default:
            break;
        }
        raw[idx_begin + i] = v & mask;
    };
    pool_.parallelFor(0, count, convert);

    const uint64_t payload = modeledBytes(count * ((bits + 7) / 8));
    const PimOpCost cost =
        model_->costCopy(PimCopyEnum::PIM_COPY_H2D, payload);
    stats_.recordCopy(PimCopyEnum::PIM_COPY_H2D, payload, cost);
    return PimStatus::PIM_OK;
}

PimStatus
PimDevice::copyDeviceToHost(PimObjId src, void *dest, uint64_t idx_begin,
                            uint64_t idx_end)
{
    PimDataObject *obj = resources_.get(src);
    if (!obj || !dest) {
        logError("pimCopyDeviceToHost: bad arguments");
        return PimStatus::PIM_ERROR;
    }
    if (idx_end == 0)
        idx_end = obj->numElements();
    if (idx_begin >= idx_end || idx_end > obj->numElements()) {
        logError("pimCopyDeviceToHost: bad range");
        return PimStatus::PIM_ERROR;
    }

    const unsigned bits = obj->bitsPerElement();
    const uint64_t count = idx_end - idx_begin;
    auto *bytes = static_cast<uint8_t *>(dest);
    const auto &raw = obj->raw();

    auto convert = [&](size_t i) {
        const uint64_t v = raw[idx_begin + i];
        switch (bits) {
          case 1:
          case 8:
            bytes[i] = static_cast<uint8_t>(v);
            break;
          case 16:
            std::memcpy(bytes + i * 2, &v, 2);
            break;
          case 32:
            std::memcpy(bytes + i * 4, &v, 4);
            break;
          case 64:
            std::memcpy(bytes + i * 8, &v, 8);
            break;
          default:
            break;
        }
    };
    pool_.parallelFor(0, count, convert);

    const uint64_t payload = modeledBytes(count * ((bits + 7) / 8));
    const PimOpCost cost =
        model_->costCopy(PimCopyEnum::PIM_COPY_D2H, payload);
    stats_.recordCopy(PimCopyEnum::PIM_COPY_D2H, payload, cost);
    return PimStatus::PIM_OK;
}

PimStatus
PimDevice::copyDeviceToDevice(PimObjId src, PimObjId dest)
{
    PimDataObject *s = resources_.get(src);
    PimDataObject *d = resources_.get(dest);
    if (!checkCompatible(s, nullptr, d, "pimCopyDeviceToDevice"))
        return PimStatus::PIM_ERROR;
    d->raw() = s->raw();

    const uint64_t payload = modeledBytes(s->payloadBytes());
    const PimOpCost cost =
        model_->costCopy(PimCopyEnum::PIM_COPY_D2D, payload);
    stats_.recordCopy(PimCopyEnum::PIM_COPY_D2D, payload, cost);
    return PimStatus::PIM_OK;
}

PimStatus
PimDevice::executeElementShift(PimCmdEnum cmd, PimObjId obj_id)
{
    PimDataObject *obj = resources_.get(obj_id);
    if (!obj) {
        logError("pimShift/RotateElements: unknown object id");
        return PimStatus::PIM_ERROR;
    }
    auto &raw = obj->raw();
    const size_t n = raw.size();
    if (n == 0)
        return PimStatus::PIM_OK;

    switch (cmd) {
      case PimCmdEnum::kShiftElementsRight: {
        for (size_t i = n; i-- > 1;)
            raw[i] = raw[i - 1];
        raw[0] = 0;
        break;
      }
      case PimCmdEnum::kShiftElementsLeft: {
        for (size_t i = 0; i + 1 < n; ++i)
            raw[i] = raw[i + 1];
        raw[n - 1] = 0;
        break;
      }
      case PimCmdEnum::kRotateElementsRight: {
        const uint64_t last = raw[n - 1];
        for (size_t i = n; i-- > 1;)
            raw[i] = raw[i - 1];
        raw[0] = last;
        break;
      }
      case PimCmdEnum::kRotateElementsLeft: {
        const uint64_t first = raw[0];
        for (size_t i = 0; i + 1 < n; ++i)
            raw[i] = raw[i + 1];
        raw[n - 1] = first;
        break;
      }
      default:
        return PimStatus::PIM_ERROR;
    }

    // Cost: inter-element movement rewrites the whole object once in
    // place (read + write of every row) and fixes one boundary
    // element per region through the host interface.
    const uint64_t payload = modeledBytes(obj->payloadBytes());
    PimOpCost cost =
        model_->costCopy(PimCopyEnum::PIM_COPY_D2D, payload);
    const uint64_t boundary_bytes =
        obj->numCoresUsed() * ((obj->bitsPerElement() + 7) / 8);
    cost += model_->costCopy(PimCopyEnum::PIM_COPY_D2H,
                             boundary_bytes);
    cost += model_->costCopy(PimCopyEnum::PIM_COPY_H2D,
                             boundary_bytes);
    record(cmd, *obj, cost);
    return PimStatus::PIM_OK;
}

void
PimDevice::addHostWork(uint64_t bytes, uint64_t ops)
{
    // Single-core host phase on the Table II CPU: the greater of the
    // streaming time at the per-core share of peak bandwidth and the
    // scalar op time at the core clock.
    const HostParams host;
    const double b =
        static_cast<double>(bytes) * modeling_scale_;
    const double o = static_cast<double>(ops) * modeling_scale_;
    const double per_core_bw =
        host.cpu_mem_bw_gbps * 1e9 / host.cpu_cores;
    const double seconds = std::max(
        b / per_core_bw, o / (host.cpu_freq_ghz * 1e9));
    stats_.addHostTimeRaw(seconds);
}

uint64_t
PimDevice::modeledBytes(uint64_t bytes) const
{
    if (modeling_scale_ <= 1.0)
        return bytes;
    return static_cast<uint64_t>(static_cast<double>(bytes) *
                                 modeling_scale_);
}

void
PimDevice::setModelingScale(double scale)
{
    modeling_scale_ = scale >= 1.0 ? scale : 1.0;
    stats_.setHostScale(modeling_scale_);
}

PimOpProfile
PimDevice::makeProfile(PimCmdEnum cmd, const PimDataObject &obj,
                       uint64_t scalar, unsigned aux) const
{
    PimOpProfile profile;
    profile.cmd = cmd;
    profile.data_type = obj.dataType();
    profile.bits = obj.bitsPerElement();
    profile.num_elements = obj.numElements();
    profile.max_elems_per_core = obj.maxElementsPerRegion();
    profile.cores_used = obj.numCoresUsed();
    profile.scalar = scalar;
    profile.aux = aux;
    if (modeling_scale_ > 1.0) {
        // Paper-size what-if: cost the op as if the object held
        // scale-times more elements, balanced across all cores.
        const auto scaled = static_cast<uint64_t>(
            static_cast<double>(obj.numElements()) * modeling_scale_);
        const uint64_t cores = config_.numCores();
        profile.num_elements = scaled;
        profile.max_elems_per_core = (scaled + cores - 1) / cores;
        profile.cores_used = std::min<uint64_t>(cores, scaled);
    }
    return profile;
}

void
PimDevice::record(PimCmdEnum cmd, const PimDataObject &obj,
                  const PimOpCost &cost)
{
    const std::string key = pimCmdName(cmd) + "." +
        pimDataTypeName(obj.dataType()) +
        (obj.isVLayout() ? ".v" : ".h");
    stats_.recordCmd(key, cmd, cost);
}

bool
PimDevice::checkCompatible(const PimDataObject *a, const PimDataObject *b,
                           const PimDataObject *dest,
                           const char *what) const
{
    if (!a || !dest) {
        logError(strCat(what, ": unknown object id"));
        return false;
    }
    if (b && b->numElements() != a->numElements()) {
        logError(strCat(what, ": operand size mismatch"));
        return false;
    }
    if (dest->numElements() != a->numElements()) {
        logError(strCat(what, ": destination size mismatch"));
        return false;
    }
    return true;
}

PimStatus
PimDevice::executeBinary(PimCmdEnum cmd, PimObjId a, PimObjId b,
                         PimObjId dest)
{
    PimDataObject *oa = resources_.get(a);
    PimDataObject *ob = resources_.get(b);
    PimDataObject *od = resources_.get(dest);
    if (!ob) {
        logError("executeBinary: unknown object id");
        return PimStatus::PIM_ERROR;
    }
    if (!checkCompatible(oa, ob, od, "executeBinary"))
        return PimStatus::PIM_ERROR;

    AlpuOp op;
    const bool is_ne = (cmd == PimCmdEnum::kNE);
    if (is_ne) {
        op = AlpuOp::kEQ;
    } else if (!cmdToAlpuOp(cmd, op)) {
        logError("executeBinary: unsupported command");
        return PimStatus::PIM_ERROR;
    }

    const unsigned bits = oa->bitsPerElement();
    const bool sgn = oa->isSigned();
    const auto &ra = oa->raw();
    const auto &rb = ob->raw();
    auto &rd = od->raw();
    const uint64_t dmask = od->elementMask();

    pool_.parallelFor(0, ra.size(), [&](size_t i) {
        uint64_t r = alpuCompute(op, ra[i], rb[i], bits, sgn);
        if (is_ne)
            r ^= 1ull;
        rd[i] = r & dmask;
    });

    const PimOpCost cost = model_->costOp(makeProfile(cmd, *oa, 0, 0));
    record(cmd, *oa, cost);
    return PimStatus::PIM_OK;
}

PimStatus
PimDevice::executeUnary(PimCmdEnum cmd, PimObjId a, PimObjId dest)
{
    PimDataObject *oa = resources_.get(a);
    PimDataObject *od = resources_.get(dest);
    if (!checkCompatible(oa, nullptr, od, "executeUnary"))
        return PimStatus::PIM_ERROR;

    AlpuOp op;
    if (!cmdToAlpuOp(cmd, op)) {
        logError("executeUnary: unsupported command");
        return PimStatus::PIM_ERROR;
    }

    const unsigned bits = oa->bitsPerElement();
    const bool sgn = oa->isSigned();
    const auto &ra = oa->raw();
    auto &rd = od->raw();
    const uint64_t dmask = od->elementMask();

    pool_.parallelFor(0, ra.size(), [&](size_t i) {
        rd[i] = alpuCompute(op, ra[i], 0, bits, sgn) & dmask;
    });

    const PimOpCost cost = model_->costOp(makeProfile(cmd, *oa, 0, 0));
    record(cmd, *oa, cost);
    return PimStatus::PIM_OK;
}

PimStatus
PimDevice::executeScalar(PimCmdEnum cmd, PimObjId a, PimObjId dest,
                         uint64_t scalar)
{
    PimDataObject *oa = resources_.get(a);
    PimDataObject *od = resources_.get(dest);
    if (!checkCompatible(oa, nullptr, od, "executeScalar"))
        return PimStatus::PIM_ERROR;

    AlpuOp op;
    if (!cmdToAlpuOp(cmd, op)) {
        logError("executeScalar: unsupported command");
        return PimStatus::PIM_ERROR;
    }

    const unsigned bits = oa->bitsPerElement();
    const bool sgn = oa->isSigned();
    const uint64_t s = scalar & oa->elementMask();
    const auto &ra = oa->raw();
    auto &rd = od->raw();
    const uint64_t dmask = od->elementMask();

    pool_.parallelFor(0, ra.size(), [&](size_t i) {
        rd[i] = alpuCompute(op, ra[i], s, bits, sgn) & dmask;
    });

    const PimOpCost cost =
        model_->costOp(makeProfile(cmd, *oa, s, 0));
    record(cmd, *oa, cost);
    return PimStatus::PIM_OK;
}

PimStatus
PimDevice::executeScaledAdd(PimObjId a, PimObjId b, PimObjId dest,
                            uint64_t scalar)
{
    PimDataObject *oa = resources_.get(a);
    PimDataObject *ob = resources_.get(b);
    PimDataObject *od = resources_.get(dest);
    if (!ob) {
        logError("pimScaledAdd: unknown object id");
        return PimStatus::PIM_ERROR;
    }
    if (!checkCompatible(oa, ob, od, "pimScaledAdd"))
        return PimStatus::PIM_ERROR;

    const unsigned bits = oa->bitsPerElement();
    const bool sgn = oa->isSigned();
    const uint64_t s = scalar & oa->elementMask();
    const auto &ra = oa->raw();
    const auto &rb = ob->raw();
    auto &rd = od->raw();
    const uint64_t dmask = od->elementMask();

    pool_.parallelFor(0, ra.size(), [&](size_t i) {
        const uint64_t prod =
            alpuCompute(AlpuOp::kMul, ra[i], s, bits, sgn);
        rd[i] = alpuCompute(AlpuOp::kAdd, prod, rb[i], bits, sgn) & dmask;
    });

    const PimOpCost cost =
        model_->costOp(makeProfile(PimCmdEnum::kScaledAdd, *oa, s, 0));
    record(PimCmdEnum::kScaledAdd, *oa, cost);
    return PimStatus::PIM_OK;
}

PimStatus
PimDevice::executeShift(PimCmdEnum cmd, PimObjId a, PimObjId dest,
                        unsigned amount)
{
    PimDataObject *oa = resources_.get(a);
    PimDataObject *od = resources_.get(dest);
    if (!checkCompatible(oa, nullptr, od, "executeShift"))
        return PimStatus::PIM_ERROR;

    const AlpuOp op = (cmd == PimCmdEnum::kShiftBitsLeft)
        ? AlpuOp::kShiftL : AlpuOp::kShiftR;
    const unsigned bits = oa->bitsPerElement();
    const bool sgn = oa->isSigned();
    const auto &ra = oa->raw();
    auto &rd = od->raw();
    const uint64_t dmask = od->elementMask();

    pool_.parallelFor(0, ra.size(), [&](size_t i) {
        rd[i] = alpuCompute(op, ra[i], amount, bits, sgn) & dmask;
    });

    const PimOpCost cost =
        model_->costOp(makeProfile(cmd, *oa, 0, amount));
    record(cmd, *oa, cost);
    return PimStatus::PIM_OK;
}

PimStatus
PimDevice::executeRedSum(PimObjId a, uint64_t idx_begin, uint64_t idx_end,
                         int64_t *result)
{
    PimDataObject *oa = resources_.get(a);
    if (!oa || !result) {
        logError("pimRedSum: bad arguments");
        return PimStatus::PIM_ERROR;
    }
    if (idx_end == 0)
        idx_end = oa->numElements();
    if (idx_begin >= idx_end || idx_end > oa->numElements()) {
        logError("pimRedSum: bad range");
        return PimStatus::PIM_ERROR;
    }

    int64_t sum = 0;
    for (uint64_t i = idx_begin; i < idx_end; ++i)
        sum += oa->getSigned(i);
    *result = sum;

    // Cost the full-object reduction (a ranged sum still touches all
    // rows that hold the range; approximate with the range fraction).
    PimOpProfile profile = makeProfile(PimCmdEnum::kRedSum, *oa, 0, 0);
    const double fraction =
        static_cast<double>(idx_end - idx_begin) /
        static_cast<double>(oa->numElements());
    PimOpCost cost = model_->costOp(profile);
    cost.runtime_sec *= fraction;
    cost.energy_j *= fraction;
    record(PimCmdEnum::kRedSum, *oa, cost);
    return PimStatus::PIM_OK;
}

PimStatus
PimDevice::executeBroadcast(PimObjId dest, uint64_t value)
{
    PimDataObject *od = resources_.get(dest);
    if (!od) {
        logError("pimBroadcast: unknown object id");
        return PimStatus::PIM_ERROR;
    }
    const uint64_t v = value & od->elementMask();
    auto &rd = od->raw();
    pool_.parallelFor(0, rd.size(), [&](size_t i) { rd[i] = v; });

    const PimOpCost cost =
        model_->costOp(makeProfile(PimCmdEnum::kBroadcast, *od, v, 0));
    record(PimCmdEnum::kBroadcast, *od, cost);
    return PimStatus::PIM_OK;
}

} // namespace pimeval
