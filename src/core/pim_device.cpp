/**
 * @file
 * PimDevice implementation: functional semantics plus costing.
 */

#include "core/pim_device.h"

#include <algorithm>
#include <atomic>
#include <bit>
#include <cassert>
#include <cstdlib>
#include <cstring>
#include <unordered_set>

#include "core/pim_host_io.h"
#include "core/pim_metrics.h"
#include "core/pim_runtime_config.h"
#include "core/pim_trace.h"
#include "fulcrum/alpu_kernels.h"
#include "fulcrum/fulcrum_core.h"
#include "util/logging.h"

namespace pimeval {

namespace {

/** Map a two/one-operand PIM command to the shared ALU semantics. */
bool
cmdToAlpuOp(PimCmdEnum cmd, AlpuOp &op)
{
    switch (cmd) {
      case PimCmdEnum::kAdd:
      case PimCmdEnum::kAddScalar:
        op = AlpuOp::kAdd;
        return true;
      case PimCmdEnum::kSub:
      case PimCmdEnum::kSubScalar:
        op = AlpuOp::kSub;
        return true;
      case PimCmdEnum::kMul:
      case PimCmdEnum::kMulScalar:
        op = AlpuOp::kMul;
        return true;
      case PimCmdEnum::kDiv:
      case PimCmdEnum::kDivScalar:
        op = AlpuOp::kDiv;
        return true;
      case PimCmdEnum::kMin:
      case PimCmdEnum::kMinScalar:
        op = AlpuOp::kMin;
        return true;
      case PimCmdEnum::kMax:
      case PimCmdEnum::kMaxScalar:
        op = AlpuOp::kMax;
        return true;
      case PimCmdEnum::kAnd:
      case PimCmdEnum::kAndScalar:
        op = AlpuOp::kAnd;
        return true;
      case PimCmdEnum::kOr:
      case PimCmdEnum::kOrScalar:
        op = AlpuOp::kOr;
        return true;
      case PimCmdEnum::kXor:
      case PimCmdEnum::kXorScalar:
        op = AlpuOp::kXor;
        return true;
      case PimCmdEnum::kXnor:
        op = AlpuOp::kXnor;
        return true;
      case PimCmdEnum::kNot:
        op = AlpuOp::kNot;
        return true;
      case PimCmdEnum::kAbs:
        op = AlpuOp::kAbs;
        return true;
      case PimCmdEnum::kGT:
      case PimCmdEnum::kGTScalar:
        op = AlpuOp::kGT;
        return true;
      case PimCmdEnum::kLT:
      case PimCmdEnum::kLTScalar:
        op = AlpuOp::kLT;
        return true;
      case PimCmdEnum::kEQ:
      case PimCmdEnum::kEQScalar:
        op = AlpuOp::kEQ;
        return true;
      case PimCmdEnum::kShiftBitsLeft:
        op = AlpuOp::kShiftL;
        return true;
      case PimCmdEnum::kShiftBitsRight:
        op = AlpuOp::kShiftR;
        return true;
      case PimCmdEnum::kPopCount:
        op = AlpuOp::kPopCount;
        return true;
      default:
        return false;
    }
}

// ---------------------------------------------------------------------------
// Chunked kernel execution engine.
//
// Functional simulation of element-wise commands runs through
// op-specialized chunk kernels (fulcrum/alpu_kernels.h): the AlpuOp
// dispatch happens once per command (selecting a function pointer),
// not once per element, so the inner loops are tight ALU/logic loops
// over the masked uint64_t lanes that the compiler can unroll and
// autovectorize. Chunks are handed to ThreadPool::parallelForChunks,
// which distributes contiguous [lo, hi) ranges across workers through
// an atomic work-stealing index. When command fusion is active,
// chains of these commands lower to expression tapes instead
// (core/pim_fusion.h). See docs/PERFORMANCE.md.
// ---------------------------------------------------------------------------

// Host<->device element conversion kernels live in
// core/pim_host_io.h, shared with the fusion tape's host-source
// operands and the bit-serial fused chain's host inputs.

} // namespace

PimDevice::PimDevice(const PimDeviceConfig &config, uint32_t ctx_id,
                     const std::string &label)
    : config_(config), ctx_id_(ctx_id ? ctx_id : 1), label_(label),
      metric_domain_(ctx_id_), resources_(config),
      model_(PerfEnergyModel::create(config)),
      pool_(0, [slot = metric_domain_.slot] {
          PimMetrics::setThreadDomain(slot);
      })
{
    // The thread constructing the device is the issuing thread of the
    // pipeline threading model; label its trace track accordingly.
    // Concurrent contexts each name their own issuing thread.
    PimTracer::instance().setThreadName(
        label_.empty() ? "issue-thread" : label_ + ".issue");
    PimMetrics::setThreadDomain(metric_domain_.slot);
    stats_.setTraceContext(ctx_id_);
    PimTracer::instance().registerContext(ctx_id_, label_);
    logInfo(strCat("Current Device = PIM_FUNCTIONAL, Simulation Target = ",
                   pimDeviceName(config_.device)));
    logInfo(config_.summary());
    if (config_.device == PimDeviceEnum::PIM_DEVICE_FULCRUM)
        logInfo("Aggregate every two subarrays as a single core");
    logInfo(strCat("Created PIM device with ", config_.numCores(),
                   " cores of ", config_.rowsPerCore(), " rows and ",
                   config_.colsPerCore(), " columns."));
    logInfo(strCat("Created thread pool with ", pool_.size(),
                   " threads."));
    // Fusion defaults off; the runtime config (pimSetRuntimeConfig >
    // PIMEVAL_FUSION) can turn it on device-wide, mirroring
    // pimSetFusionEnabled.
    fusion_on_ = pimResolveRuntimeConfig().fusion.value;
}

PimDevice::~PimDevice()
{
    flushFusion();
}

void
PimDevice::setFusionEnabled(bool on)
{
    if (!on)
        flushFusion();
    fusion_on_ = on;
}

void
PimDevice::beginFusion()
{
    ++fusion_region_depth_;
}

bool
PimDevice::endFusion()
{
    if (fusion_region_depth_ == 0) {
        logError("pimEndFusion: no matching pimBeginFusion");
        return false;
    }
    if (--fusion_region_depth_ == 0 && !fusion_on_)
        flushFusion();
    return true;
}

PimObjId
PimDevice::alloc(PimAllocEnum alloc_type, uint64_t num_elements,
                 PimDataType data_type)
{
    bool v_layout = deviceUsesVLayout();
    if (alloc_type == PimAllocEnum::PIM_ALLOC_V)
        v_layout = true;
    else if (alloc_type == PimAllocEnum::PIM_ALLOC_H)
        v_layout = false;
    // Allocations do not flush the fusion window; objects born while
    // it captures are the dead-temporary elision candidates. But when
    // capacity is exhausted, the rows we need may be held by frees the
    // window has deferred — flush and retry before giving up.
    const bool can_retry = !fusion_window_.empty();
    PimDataObject *obj = resources_.alloc(num_elements, data_type,
                                          v_layout, can_retry);
    if (!obj && can_retry) {
        flushFusion();
        obj = resources_.alloc(num_elements, data_type, v_layout);
    }
    if (obj && fusionCapturing())
        fusion_window_.noteAlloc(obj->id());
    return obj ? obj->id() : -1;
}

PimObjId
PimDevice::allocAssociated(PimObjId ref, PimDataType data_type)
{
    const PimDataObject *ref_obj = resources_.get(ref);
    if (!ref_obj) {
        logError("pimAllocAssociated: unknown reference object");
        return -1;
    }
    // Capacity may be parked in the window's deferred frees: try
    // quietly, then flush the window and retry.
    const bool can_retry = !fusion_window_.empty();
    PimDataObject *obj =
        resources_.allocAssociated(*ref_obj, data_type, can_retry);
    if (!obj && can_retry) {
        flushFusion();
        // The flush ran deferred frees: re-fetch the reference.
        ref_obj = resources_.get(ref);
        if (!ref_obj) {
            logError("pimAllocAssociated: reference object freed");
            return -1;
        }
        obj = resources_.allocAssociated(*ref_obj, data_type);
    }
    if (obj && fusionCapturing())
        fusion_window_.noteAlloc(obj->id());
    return obj ? obj->id() : -1;
}

bool
PimDevice::free(PimObjId id)
{
    if (!fusion_window_.empty()) {
        // A free of a pending dest is deferred to the flush — exactly
        // the alloc -> written -> freed-unread pattern elision needs.
        // This covers pending *copies* too (captured H2D loads carry
        // their dest like any compute): freeing a staging column whose
        // copy is still buffered must not release the storage early.
        // A free of an object the window only reads flushes first.
        if (fusion_window_.noteFree(id))
            return true; // a pending command writes it: defer to flush
        if (fusion_window_.touches(id))
            flushFusion();
    }
    // Drain the object's dependency cone: every in-flight command
    // reading or writing it must execute before the storage goes away
    // (it may be recycled by the allocator's free-list immediately).
    if (pipelineActive())
        pipeline_->waitObject(id);
    return resources_.free(id);
}

void
PimDevice::setExecMode(PimExecEnum mode)
{
    if (mode == exec_mode_)
        return;
    flushFusion();
    if (pipeline_)
        pipeline_->sync();
    exec_mode_ = mode;
    if (mode == PimExecEnum::PIM_EXEC_ASYNC && !pipeline_)
        pipeline_ = std::make_unique<PimPipeline>(
            stats_, 0,
            label_.empty() ? std::string()
                           : label_ + ".pipeline-worker-",
            metric_domain_.slot);
}

void
PimDevice::sync()
{
    flushFusion();
    if (pipeline_)
        pipeline_->sync();
}

void
PimDevice::resetStats()
{
    // Buffered commands were issued before the reset: their stats must
    // commit first so the reset drops them like any other drained work.
    flushFusion();
    if (pipeline_)
        pipeline_->drainAndRun([this] { stats_.reset(); });
    else
        stats_.reset();
}

PimStatus
PimDevice::copyHostToDevice(const void *src, PimObjId dest,
                            uint64_t idx_begin, uint64_t idx_end)
{
    PimDataObject *obj = resources_.get(dest);
    if (!obj || !src) {
        logError("pimCopyHostToDevice: bad arguments");
        return PimStatus::PIM_ERROR;
    }
    if (idx_end == 0)
        idx_end = obj->numElements();
    if (idx_begin >= idx_end || idx_end > obj->numElements()) {
        logError("pimCopyHostToDevice: bad range");
        return PimStatus::PIM_ERROR;
    }

    const unsigned bits = obj->bitsPerElement();
    const uint64_t count = idx_end - idx_begin;
    uint64_t *dst = obj->raw().data() + idx_begin;
    const uint64_t mask = obj->elementMask();
    const PimHostToDeviceChunkFn kernel =
        pimHostToDeviceChunkForBits(bits);
    const uint64_t host_bytes = count * pimHostStrideForBits(bits);
    const uint64_t payload = modeledBytes(host_bytes);
    const auto *first = static_cast<const uint8_t *>(src);

    // A full-object copy with a packed host layout captures as an
    // is_load window member instead of flushing: the host buffer is
    // snapshotted here at issue (the caller's pointer need not stay
    // valid — the same contract as the async pipeline's H2D
    // snapshot), the planner links copy->consumer RAW chains, and a
    // staging dest consumed only in-window is elided entirely. The
    // copy's modeled cost still commits per command in issue order at
    // the flush, so stats stay bit-identical in sync and async modes.
    if (fusionCapturing() && kernel && idx_begin == 0 &&
        idx_end == obj->numElements()) {
        PimFusedOp fop;
        fop.cmd = PimCmdEnum::kCopyH2D;
        fop.dest = dest;
        fop.pd = dst;
        fop.is_load = true;
        // The snapshot buffer is deliberately uninitialized (plain
        // new[]) and filled by a pool-parallel memcpy: a serial
        // vector copy would pay first-touch page faults and the full
        // copy bandwidth on the issuing thread, dominating the fused
        // sweep it is meant to accelerate.
        // The snapshot buffer comes from the recycling pool (fresh
        // multi-megabyte blocks pay mmap page faults dwarfing the
        // memcpy) and is filled by a pool-parallel copy: on one core
        // it degrades to a plain memcpy, on many it spreads the
        // bandwidth the same way the fused sweep itself does.
        std::shared_ptr<uint8_t[]> snap =
            snapshot_pool_->acquire(host_bytes);
        uint8_t *snap_raw = snap.get();
        pool_.parallelForChunks(
            0, host_bytes, [snap_raw, first](size_t lo, size_t hi) {
                std::memcpy(snap_raw + lo, first + lo, hi - lo);
            });
        fop.host = std::move(snap);
        fop.load_kern = kernel;
        fop.host_stride = pimHostStrideForBits(bits);
        fop.copy_payload = payload;
        fop.bits = bits;
        fop.dmask = mask;
        fop.n = count;
        recordFusion(fop);
        return PimStatus::PIM_OK;
    }
    // Ranged and odd-width copies keep the flush barrier.
    flushFusion();

    const auto run = [this, kernel, dst, count, mask,
                      payload](const uint8_t *bytes,
                               PimStatsDelta *delta) {
        PIM_TRACE_SCOPE_ARG("copyH2D", "exec", payload);
        PIM_METRIC_COUNT("copy.bytes_h2d", payload);
        if (kernel) {
            pool_.parallelForChunks(
                0, count, [=](size_t lo, size_t hi) {
                    kernel(bytes, dst, lo, hi, mask);
                });
        } else {
            std::fill(dst, dst + count, 0);
        }
        commitCopy(delta, PimCopyEnum::PIM_COPY_H2D, payload,
                   model_->costCopy(PimCopyEnum::PIM_COPY_H2D,
                                    payload));
    };

    if (!pipelineActive()) {
        run(static_cast<const uint8_t *>(src), nullptr);
        return PimStatus::PIM_OK;
    }

    // Snapshot the host buffer at issue: the caller's pointer need not
    // stay valid once the call returns (apps rebuild staging buffers
    // every iteration), and snapshotting removes all host-memory
    // hazards from H2D commands. The single-core bypass runs the
    // body before this call returns, so the snapshot is pure
    // overhead there — read the caller's buffer directly instead.
    if (pipeline_->beginInline()) {
        run(first, nullptr);
        pipeline_->endInline();
        return PimStatus::PIM_OK;
    }
    std::vector<uint8_t> snapshot(first, first + host_bytes);
    pipeline_->enqueue(
        {}, {dest},
        [run, snapshot = std::move(snapshot)](PimStatsDelta &delta) {
            run(snapshot.data(), &delta);
        });
    return PimStatus::PIM_OK;
}

PimStatus
PimDevice::copyDeviceToHost(PimObjId src, void *dest, uint64_t idx_begin,
                            uint64_t idx_end)
{
    flushFusion();
    PimDataObject *obj = resources_.get(src);
    if (!obj || !dest) {
        logError("pimCopyDeviceToHost: bad arguments");
        return PimStatus::PIM_ERROR;
    }
    if (idx_end == 0)
        idx_end = obj->numElements();
    if (idx_begin >= idx_end || idx_end > obj->numElements()) {
        logError("pimCopyDeviceToHost: bad range");
        return PimStatus::PIM_ERROR;
    }

    const unsigned bits = obj->bitsPerElement();
    const uint64_t count = idx_end - idx_begin;
    auto *bytes = static_cast<uint8_t *>(dest);
    const uint64_t *src_raw = obj->raw().data() + idx_begin;
    const PimDeviceToHostChunkFn kernel =
        pimDeviceToHostChunkForBits(bits);
    const uint64_t payload = modeledBytes(count * ((bits + 7) / 8));

    // Blocking issue: the host buffer must hold the data when the call
    // returns, so the copy drains its dependency cone (only the chain
    // producing src, not the whole pipeline).
    return issue(
        {src}, {},
        [=, this](PimStatsDelta *delta) {
            PIM_TRACE_SCOPE_ARG("copyD2H", "exec", payload);
            PIM_METRIC_COUNT("copy.bytes_d2h", payload);
            if (kernel) {
                pool_.parallelForChunks(
                    0, count, [=](size_t lo, size_t hi) {
                        kernel(src_raw, bytes, lo, hi);
                    });
            }
            commitCopy(delta, PimCopyEnum::PIM_COPY_D2H, payload,
                       model_->costCopy(PimCopyEnum::PIM_COPY_D2H,
                                        payload));
        },
        /*blocking=*/true);
}

PimStatus
PimDevice::copyDeviceToDevice(PimObjId src, PimObjId dest)
{
    flushFusion();
    PimDataObject *s = resources_.get(src);
    PimDataObject *d = resources_.get(dest);
    if (!checkCompatible(s, nullptr, d, "pimCopyDeviceToDevice"))
        return PimStatus::PIM_ERROR;

    const uint64_t *ps = s->raw().data();
    uint64_t *pd = d->raw().data();
    const size_t n = s->raw().size();
    const uint64_t payload = modeledBytes(s->payloadBytes());

    return issue({src}, {dest}, [=, this](PimStatsDelta *delta) {
        PIM_TRACE_SCOPE_ARG("copyD2D", "exec", payload);
        PIM_METRIC_COUNT("copy.bytes_d2d", payload);
        std::copy(ps, ps + n, pd);
        commitCopy(delta, PimCopyEnum::PIM_COPY_D2D, payload,
                   model_->costCopy(PimCopyEnum::PIM_COPY_D2D,
                                    payload));
    });
}

PimStatus
PimDevice::executeElementShift(PimCmdEnum cmd, PimObjId obj_id)
{
    flushFusion(); // inter-element movement is not fusable
    PimDataObject *obj = resources_.get(obj_id);
    if (!obj) {
        logError("pimShift/RotateElements: unknown object id");
        return PimStatus::PIM_ERROR;
    }
    if (obj->raw().empty())
        return PimStatus::PIM_OK;
    switch (cmd) {
      case PimCmdEnum::kShiftElementsRight:
      case PimCmdEnum::kShiftElementsLeft:
      case PimCmdEnum::kRotateElementsRight:
      case PimCmdEnum::kRotateElementsLeft:
        break;
      default:
        logError("pimShift/RotateElements: unsupported command");
        return PimStatus::PIM_ERROR;
    }

    const uint64_t payload = modeledBytes(obj->payloadBytes());
    const uint64_t boundary_bytes =
        obj->numCoresUsed() * ((obj->bitsPerElement() + 7) / 8);
    const CmdKeyInfo key = keyFor(cmd, *obj);

    // In-place update: the object is both read and written.
    return issue({obj_id}, {obj_id}, [=, this](PimStatsDelta *delta) {
        PIM_TRACE_SCOPE_ARG(key.trace_name, "exec", payload);
        auto &raw = obj->raw();
        const size_t n = raw.size();
        // Whole-object data movement: memmove/rotate instead of an
        // element-at-a-time loop (same result, streaming speed).
        switch (cmd) {
          case PimCmdEnum::kShiftElementsRight:
            std::memmove(raw.data() + 1, raw.data(),
                         (n - 1) * sizeof(uint64_t));
            raw[0] = 0;
            break;
          case PimCmdEnum::kShiftElementsLeft:
            std::memmove(raw.data(), raw.data() + 1,
                         (n - 1) * sizeof(uint64_t));
            raw[n - 1] = 0;
            break;
          case PimCmdEnum::kRotateElementsRight:
            std::rotate(raw.begin(), raw.end() - 1, raw.end());
            break;
          default:
            std::rotate(raw.begin(), raw.begin() + 1, raw.end());
            break;
        }

        // Cost: inter-element movement rewrites the whole object once
        // in place (read + write of every row) and fixes one boundary
        // element per region through the host interface.
        PimOpCost cost =
            model_->costCopy(PimCopyEnum::PIM_COPY_D2D, payload);
        cost += model_->costCopy(PimCopyEnum::PIM_COPY_D2H,
                                 boundary_bytes);
        cost += model_->costCopy(PimCopyEnum::PIM_COPY_H2D,
                                 boundary_bytes);
        commitCmd(delta, key.id, cost);
    });
}

void
PimDevice::addHostWork(uint64_t bytes, uint64_t ops)
{
    flushFusion(); // host seconds accumulate in issue order
    // Single-core host phase on the Table II CPU: the greater of the
    // streaming time at the per-core share of peak bandwidth and the
    // scalar op time at the core clock.
    const HostParams host;
    const double b =
        static_cast<double>(bytes) * modeling_scale_;
    const double o = static_cast<double>(ops) * modeling_scale_;
    const double per_core_bw =
        host.cpu_mem_bw_gbps * 1e9 / host.cpu_cores;
    const double seconds = std::max(
        b / per_core_bw, o / (host.cpu_freq_ghz * 1e9));
    // No object hazards, but the seconds must still join host_sec_ in
    // issue order for bit-identical accumulation.
    issue({}, {}, [this, seconds](PimStatsDelta *delta) {
        if (delta)
            delta->host_raw_sec += seconds;
        else
            stats_.addHostTimeRaw(seconds);
    });
}

void
PimDevice::startHostTimer()
{
    host_timer_start_ = std::chrono::high_resolution_clock::now();
    host_timing_ = true;
}

void
PimDevice::stopHostTimer()
{
    if (!host_timing_)
        return;
    host_timing_ = false;
    const double seconds =
        std::chrono::duration<double>(
            std::chrono::high_resolution_clock::now() -
            host_timer_start_)
            .count();
    addHostTime(seconds);
}

void
PimDevice::addHostTime(double seconds)
{
    flushFusion();
    issue({}, {}, [this, seconds](PimStatsDelta *delta) {
        if (delta)
            delta->host_measured_sec += seconds;
        else
            stats_.addHostTime(seconds);
    });
}

uint64_t
PimDevice::modeledBytes(uint64_t bytes) const
{
    if (modeling_scale_ <= 1.0)
        return bytes;
    return static_cast<uint64_t>(static_cast<double>(bytes) *
                                 modeling_scale_);
}

void
PimDevice::setModelingScale(double scale)
{
    // Profiles are captured at issue, so a scale change must not catch
    // commands mid-flight.
    sync();
    modeling_scale_ = scale >= 1.0 ? scale : 1.0;
    stats_.setHostScale(modeling_scale_);
}

PimOpProfile
PimDevice::makeProfile(PimCmdEnum cmd, const PimDataObject &obj,
                       uint64_t scalar, unsigned aux) const
{
    PimOpProfile profile;
    profile.cmd = cmd;
    profile.data_type = obj.dataType();
    profile.bits = obj.bitsPerElement();
    profile.num_elements = obj.numElements();
    profile.max_elems_per_core = obj.maxElementsPerRegion();
    profile.cores_used = obj.numCoresUsed();
    profile.scalar = scalar;
    profile.aux = aux;
    if (modeling_scale_ > 1.0) {
        // Paper-size what-if: cost the op as if the object held
        // scale-times more elements, balanced across all cores.
        const auto scaled = static_cast<uint64_t>(
            static_cast<double>(obj.numElements()) * modeling_scale_);
        const uint64_t cores = config_.numCores();
        profile.num_elements = scaled;
        profile.max_elems_per_core = (scaled + cores - 1) / cores;
        profile.cores_used = std::min<uint64_t>(cores, scaled);
    }
    return profile;
}

PimDevice::CmdKeyInfo
PimDevice::keyFor(PimCmdEnum cmd, const PimDataObject &obj)
{
    // The canonical "cmd.dtype.layout" key is built (and interned)
    // only the first time a combination is seen; afterwards the lookup
    // is a cache-array read. Called from the issuing thread only, so
    // key ids are assigned in issue order regardless of execution
    // order (keeps the stats report identical across exec modes).
    const size_t c = static_cast<size_t>(cmd);
    const size_t t = static_cast<size_t>(obj.dataType());
    const size_t l = obj.isVLayout() ? 1 : 0;
    KeyCacheEntry &entry = stats_key_cache_[c][t][l];
    if (entry.id < 0) {
        const std::string key = pimCmdName(cmd) + "." +
            pimDataTypeName(obj.dataType()) +
            (obj.isVLayout() ? ".v" : ".h");
        entry.id = static_cast<int32_t>(stats_.internCmdKey(key, cmd));
        // Interned in the tracer too: execution spans need a name
        // that outlives this call on any thread.
        entry.name = PimTracer::instance().intern(key);
    }
    return {static_cast<PimStatsMgr::CmdKeyId>(entry.id), entry.name};
}

bool
PimDevice::checkCompatible(const PimDataObject *a, const PimDataObject *b,
                           const PimDataObject *dest,
                           const char *what) const
{
    if (!a || !dest) {
        logError(strCat(what, ": unknown object id"));
        return false;
    }
    if (b && b->numElements() != a->numElements()) {
        logError(strCat(what, ": operand size mismatch"));
        return false;
    }
    if (dest->numElements() != a->numElements()) {
        logError(strCat(what, ": destination size mismatch"));
        return false;
    }
    return true;
}

PimStatus
PimDevice::executeBinary(PimCmdEnum cmd, PimObjId a, PimObjId b,
                         PimObjId dest)
{
    PimDataObject *oa = resources_.get(a);
    PimDataObject *ob = resources_.get(b);
    PimDataObject *od = resources_.get(dest);
    if (!ob) {
        logError("executeBinary: unknown object id");
        return PimStatus::PIM_ERROR;
    }
    if (!checkCompatible(oa, ob, od, "executeBinary"))
        return PimStatus::PIM_ERROR;

    AlpuOp op;
    const bool is_ne = (cmd == PimCmdEnum::kNE);
    if (is_ne) {
        op = AlpuOp::kEQ;
    } else if (!cmdToAlpuOp(cmd, op)) {
        logError("executeBinary: unsupported command");
        return PimStatus::PIM_ERROR;
    }

    const unsigned bits = oa->bitsPerElement();
    const bool sgn = oa->isSigned();
    const uint64_t *pa = oa->raw().data();
    const uint64_t *pb = ob->raw().data();
    uint64_t *pd = od->raw().data();
    const uint64_t dmask = od->elementMask();

    const BinaryChunkFn kernel = is_ne
        ? binaryChunkFor<true>(op, sgn)
        : binaryChunkFor<false>(op, sgn);
    const size_t n = oa->raw().size();
    const PimOpProfile profile = makeProfile(cmd, *oa, 0, 0);
    const CmdKeyInfo key = keyFor(cmd, *oa);

    if (fusionCapturing()) {
        PimFusedOp fop;
        fop.cmd = cmd;
        fop.op = op;
        fop.op_exact = !is_ne; // NE: op says kEQ, kernel negates
        fop.a = a;
        fop.b = b;
        fop.dest = dest;
        fop.pa = pa;
        fop.pb = pb;
        fop.pd = pd;
        fop.kern2 = kernel;
        fop.sgn = sgn;
        fop.bits = bits;
        fop.dmask = dmask;
        fop.n = n;
        fop.profile = profile;
        fop.key_id = key.id;
        fop.trace_name = key.trace_name;
        recordFusion(fop);
        return PimStatus::PIM_OK;
    }

    return issue({a, b}, {dest}, [=, this](PimStatsDelta *delta) {
        PIM_TRACE_SCOPE_ARG(key.trace_name, "exec", n);
        pool_.parallelForChunks(0, n, [=](size_t lo, size_t hi) {
            kernel(pa, pb, pd, lo, hi, bits, dmask);
        });
        commitCmd(delta, key.id, model_->costOp(profile));
    });
}

PimStatus
PimDevice::executeUnary(PimCmdEnum cmd, PimObjId a, PimObjId dest)
{
    PimDataObject *oa = resources_.get(a);
    PimDataObject *od = resources_.get(dest);
    if (!checkCompatible(oa, nullptr, od, "executeUnary"))
        return PimStatus::PIM_ERROR;

    AlpuOp op;
    if (!cmdToAlpuOp(cmd, op)) {
        logError("executeUnary: unsupported command");
        return PimStatus::PIM_ERROR;
    }

    const unsigned bits = oa->bitsPerElement();
    const bool sgn = oa->isSigned();
    const uint64_t *pa = oa->raw().data();
    uint64_t *pd = od->raw().data();
    const uint64_t dmask = od->elementMask();

    const ScalarChunkFn kernel = scalarChunkFor(op, sgn);
    const size_t n = oa->raw().size();
    const PimOpProfile profile = makeProfile(cmd, *oa, 0, 0);
    const CmdKeyInfo key = keyFor(cmd, *oa);

    if (fusionCapturing()) {
        PimFusedOp fop;
        fop.cmd = cmd;
        fop.op = op;
        fop.a = a;
        fop.dest = dest;
        fop.pa = pa;
        fop.pd = pd;
        fop.kern1 = kernel;
        fop.sgn = sgn;
        fop.scalar = 0;
        fop.bits = bits;
        fop.dmask = dmask;
        fop.n = n;
        fop.profile = profile;
        fop.key_id = key.id;
        fop.trace_name = key.trace_name;
        recordFusion(fop);
        return PimStatus::PIM_OK;
    }

    return issue({a}, {dest}, [=, this](PimStatsDelta *delta) {
        PIM_TRACE_SCOPE_ARG(key.trace_name, "exec", n);
        pool_.parallelForChunks(0, n, [=](size_t lo, size_t hi) {
            kernel(pa, 0, pd, lo, hi, bits, dmask);
        });
        commitCmd(delta, key.id, model_->costOp(profile));
    });
}

PimStatus
PimDevice::executeScalar(PimCmdEnum cmd, PimObjId a, PimObjId dest,
                         uint64_t scalar)
{
    PimDataObject *oa = resources_.get(a);
    PimDataObject *od = resources_.get(dest);
    if (!checkCompatible(oa, nullptr, od, "executeScalar"))
        return PimStatus::PIM_ERROR;

    AlpuOp op;
    if (!cmdToAlpuOp(cmd, op)) {
        logError("executeScalar: unsupported command");
        return PimStatus::PIM_ERROR;
    }

    const unsigned bits = oa->bitsPerElement();
    const bool sgn = oa->isSigned();
    const uint64_t s = scalar & oa->elementMask();
    const uint64_t *pa = oa->raw().data();
    uint64_t *pd = od->raw().data();
    const uint64_t dmask = od->elementMask();

    const ScalarChunkFn kernel = scalarChunkFor(op, sgn);
    const size_t n = oa->raw().size();
    const PimOpProfile profile = makeProfile(cmd, *oa, s, 0);
    const CmdKeyInfo key = keyFor(cmd, *oa);

    if (fusionCapturing()) {
        PimFusedOp fop;
        fop.cmd = cmd;
        fop.op = op;
        fop.a = a;
        fop.dest = dest;
        fop.pa = pa;
        fop.pd = pd;
        fop.kern1 = kernel;
        fop.sgn = sgn;
        fop.scalar = s;
        fop.bits = bits;
        fop.dmask = dmask;
        fop.n = n;
        fop.profile = profile;
        fop.key_id = key.id;
        fop.trace_name = key.trace_name;
        recordFusion(fop);
        return PimStatus::PIM_OK;
    }

    return issue({a}, {dest}, [=, this](PimStatsDelta *delta) {
        PIM_TRACE_SCOPE_ARG(key.trace_name, "exec", n);
        pool_.parallelForChunks(0, n, [=](size_t lo, size_t hi) {
            kernel(pa, s, pd, lo, hi, bits, dmask);
        });
        commitCmd(delta, key.id, model_->costOp(profile));
    });
}

PimStatus
PimDevice::executeScaledAdd(PimObjId a, PimObjId b, PimObjId dest,
                            uint64_t scalar)
{
    PimDataObject *oa = resources_.get(a);
    PimDataObject *ob = resources_.get(b);
    PimDataObject *od = resources_.get(dest);
    if (!ob) {
        logError("pimScaledAdd: unknown object id");
        return PimStatus::PIM_ERROR;
    }
    if (!checkCompatible(oa, ob, od, "pimScaledAdd"))
        return PimStatus::PIM_ERROR;

    const unsigned bits = oa->bitsPerElement();
    const bool sgn = oa->isSigned();
    const uint64_t s = scalar & oa->elementMask();
    const uint64_t *pa = oa->raw().data();
    const uint64_t *pb = ob->raw().data();
    uint64_t *pd = od->raw().data();
    const uint64_t dmask = od->elementMask();

    const auto kernel =
        sgn ? &scaledAddChunk<true> : &scaledAddChunk<false>;
    const size_t n = oa->raw().size();
    const PimOpProfile profile =
        makeProfile(PimCmdEnum::kScaledAdd, *oa, s, 0);
    const CmdKeyInfo key = keyFor(PimCmdEnum::kScaledAdd, *oa);

    if (fusionCapturing()) {
        PimFusedOp fop;
        fop.cmd = PimCmdEnum::kScaledAdd;
        fop.a = a;
        fop.b = b;
        fop.dest = dest;
        fop.pa = pa;
        fop.pb = pb;
        fop.pd = pd;
        fop.kern_sa = kernel;
        fop.sgn = sgn;
        fop.scalar = s;
        fop.bits = bits;
        fop.dmask = dmask;
        fop.n = n;
        fop.profile = profile;
        fop.key_id = key.id;
        fop.trace_name = key.trace_name;
        recordFusion(fop);
        return PimStatus::PIM_OK;
    }

    return issue({a, b}, {dest}, [=, this](PimStatsDelta *delta) {
        PIM_TRACE_SCOPE_ARG(key.trace_name, "exec", n);
        pool_.parallelForChunks(0, n, [=](size_t lo, size_t hi) {
            kernel(pa, pb, s, pd, lo, hi, bits, dmask);
        });
        commitCmd(delta, key.id, model_->costOp(profile));
    });
}

PimStatus
PimDevice::executeShift(PimCmdEnum cmd, PimObjId a, PimObjId dest,
                        unsigned amount)
{
    PimDataObject *oa = resources_.get(a);
    PimDataObject *od = resources_.get(dest);
    if (!checkCompatible(oa, nullptr, od, "executeShift"))
        return PimStatus::PIM_ERROR;

    const AlpuOp op = (cmd == PimCmdEnum::kShiftBitsLeft)
        ? AlpuOp::kShiftL : AlpuOp::kShiftR;
    const unsigned bits = oa->bitsPerElement();
    const bool sgn = oa->isSigned();
    const uint64_t *pa = oa->raw().data();
    uint64_t *pd = od->raw().data();
    const uint64_t dmask = od->elementMask();

    const ScalarChunkFn kernel = scalarChunkFor(op, sgn);
    const size_t n = oa->raw().size();
    const PimOpProfile profile = makeProfile(cmd, *oa, 0, amount);
    const CmdKeyInfo key = keyFor(cmd, *oa);

    if (fusionCapturing()) {
        PimFusedOp fop;
        fop.cmd = cmd;
        fop.op = op;
        fop.a = a;
        fop.dest = dest;
        fop.pa = pa;
        fop.pd = pd;
        fop.kern1 = kernel;
        fop.sgn = sgn;
        fop.scalar = amount;
        fop.bits = bits;
        fop.dmask = dmask;
        fop.n = n;
        fop.profile = profile;
        fop.key_id = key.id;
        fop.trace_name = key.trace_name;
        recordFusion(fop);
        return PimStatus::PIM_OK;
    }

    return issue({a}, {dest}, [=, this](PimStatsDelta *delta) {
        PIM_TRACE_SCOPE_ARG(key.trace_name, "exec", n);
        pool_.parallelForChunks(0, n, [=](size_t lo, size_t hi) {
            kernel(pa, amount, pd, lo, hi, bits, dmask);
        });
        commitCmd(delta, key.id, model_->costOp(profile));
    });
}

PimStatus
PimDevice::executeRedSum(PimObjId a, uint64_t idx_begin, uint64_t idx_end,
                         int64_t *result)
{
    PimDataObject *oa = resources_.get(a);
    if (!oa || !result) {
        logError("pimRedSum: bad arguments");
        return PimStatus::PIM_ERROR;
    }
    if (idx_end == 0)
        idx_end = oa->numElements();
    if (idx_begin >= idx_end || idx_end > oa->numElements()) {
        logError("pimRedSum: bad range");
        return PimStatus::PIM_ERROR;
    }

    const unsigned bits = oa->bitsPerElement();
    const bool sgn = oa->isSigned() && bits < 64;
    const uint64_t *pa = oa->raw().data();
    const PimOpProfile profile =
        makeProfile(PimCmdEnum::kRedSum, *oa, 0, 0);
    const CmdKeyInfo key = keyFor(PimCmdEnum::kRedSum, *oa);

    // A full-object reduction no longer breaks the fusion window: it
    // captures as a chain *terminator*, so mul+redSum lowers to one
    // compute+accumulate sweep with no materialized product. Outside
    // an explicit region the window flushes immediately after the
    // capture, preserving the blocking contract (*result is ready on
    // return); inside pimBeginFusion/pimEndFusion the reduction is
    // deferred and *result is guaranteed at the next flush (see
    // docs/API.md).
    if (fusionCapturing() && idx_begin == 0 &&
        idx_end == oa->numElements()) {
        PimFusedOp fop;
        fop.cmd = PimCmdEnum::kRedSum;
        fop.a = a;
        fop.pa = pa;
        fop.sgn = sgn;
        fop.bits = bits;
        fop.n = oa->raw().size();
        fop.is_reduce = true;
        fop.red_result = result;
        fop.profile = profile;
        fop.key_id = key.id;
        fop.trace_name = key.trace_name;
        recordFusion(fop);
        if (fusion_region_depth_ == 0)
            flushFusion();
        return PimStatus::PIM_OK;
    }
    // Ranged reductions keep the flush-and-execute path: the planner
    // only models whole-object dataflow.
    flushFusion();
    const double fraction =
        static_cast<double>(idx_end - idx_begin) /
        static_cast<double>(oa->numElements());

    // Blocking issue: the scalar result goes back to the host.
    return issue(
        {a}, {},
        [=, this](PimStatsDelta *delta) {
            PIM_TRACE_SCOPE_ARG(key.trace_name, "exec",
                                idx_end - idx_begin);
            // Chunked reduction: per-chunk partial sums folded into
            // one atomic accumulator (wrapping int64 addition is
            // associative, so chunk order cannot change the result).
            // Sum semantics match PimDataObject::getSigned.
            std::atomic<int64_t> total{0};
            pool_.parallelForChunks(
                idx_begin, idx_end, [&](size_t lo, size_t hi) {
                    int64_t part = 0;
                    if (sgn) {
                        for (size_t i = lo; i < hi; ++i)
                            part += alpuSignExtend(pa[i], bits);
                    } else {
                        for (size_t i = lo; i < hi; ++i)
                            part += static_cast<int64_t>(pa[i]);
                    }
                    total.fetch_add(part,
                                    std::memory_order_relaxed);
                });
            *result = total.load(std::memory_order_relaxed);

            // Cost the full-object reduction (a ranged sum still
            // touches all rows that hold the range; approximate with
            // the range fraction).
            PimOpCost cost = model_->costOp(profile);
            cost.runtime_sec *= fraction;
            cost.energy_j *= fraction;
            commitCmd(delta, key.id, cost);
        },
        /*blocking=*/true);
}

PimStatus
PimDevice::executeBroadcast(PimObjId dest, uint64_t value)
{
    PimDataObject *od = resources_.get(dest);
    if (!od) {
        logError("pimBroadcast: unknown object id");
        return PimStatus::PIM_ERROR;
    }
    const uint64_t v = value & od->elementMask();
    uint64_t *pd = od->raw().data();
    const size_t n = od->raw().size();
    const PimOpProfile profile =
        makeProfile(PimCmdEnum::kBroadcast, *od, v, 0);
    const CmdKeyInfo key = keyFor(PimCmdEnum::kBroadcast, *od);

    // Broadcast captures as a fill: it can open a chain, and an
    // elided fill consumed on the right-hand side of a binary op
    // folds into that op as a scalar immediate (fusion.scalar_folds)
    // — no chain break, no materialized constant vector.
    if (fusionCapturing()) {
        PimFusedOp fop;
        fop.cmd = PimCmdEnum::kBroadcast;
        fop.dest = dest;
        fop.pd = pd;
        fop.sgn = od->isSigned();
        fop.scalar = v;
        fop.bits = od->bitsPerElement();
        fop.dmask = od->elementMask();
        fop.n = n;
        fop.is_fill = true;
        fop.profile = profile;
        fop.key_id = key.id;
        fop.trace_name = key.trace_name;
        recordFusion(fop);
        return PimStatus::PIM_OK;
    }

    return issue({}, {dest}, [=, this](PimStatsDelta *delta) {
        PIM_TRACE_SCOPE_ARG(key.trace_name, "exec", n);
        pool_.parallelForChunks(0, n, [=](size_t lo, size_t hi) {
            std::fill(pd + lo, pd + hi, v);
        });
        commitCmd(delta, key.id, model_->costOp(profile));
    });
}

// ---------------------------------------------------------------------------
// Elementwise command fusion (core/pim_fusion.h).
// ---------------------------------------------------------------------------

namespace {

/** Interned execution-span name for a fused chain of @p len ops
 *  (loads ride along uncapped, so a chain can span the window). */
const char *
fusedTraceName(size_t len)
{
    static const char *cache[kMaxFusionWindowOps + 1] = {};
    if (len > kMaxFusionWindowOps)
        len = kMaxFusionWindowOps;
    if (!cache[len])
        cache[len] =
            PimTracer::instance().intern(strCat("fused.x", len));
    return cache[len];
}

} // namespace

void
PimDevice::recordFusion(const PimFusedOp &op)
{
    if (fusion_window_.full())
        flushFusion();
    fusion_window_.record(op);
}

void
PimDevice::flushFusion()
{
    if (fusion_window_.empty()) {
        // Even an empty flush is a write barrier: whatever runs next
        // (copies, broadcasts, non-captured elementwise ops) may write
        // objects allocated during capture, so they are no longer
        // provably untouched and must stop being elision candidates.
        // Clearing here keeps noteAlloc's born-set scoped to the
        // window that actually executes.
        fusion_window_.clear();
        return;
    }
    const std::vector<PimFusedOp> &ops = fusion_window_.ops();
    // Per-id write bookkeeping for the deferred frees: an id may now
    // collect both elided and materialized writes in one window (WAW
    // elision), and only an id whose *every* write was elided may
    // return to the allocator pristine — one materialized write means
    // the storage was touched.
    std::unordered_set<PimObjId> written_ids;
    std::unordered_set<PimObjId> materialized_ids;
    if (!ops.empty()) {
        const std::vector<PimFusionChain> chains =
            fusion_window_.plan();
        uint64_t fused_chains = 0;
        uint64_t fused_ops = 0;
        uint64_t reduction_chains = 0;
        uint64_t scalar_folds = 0;
        uint64_t host_loads = 0;
        uint64_t copy_bytes_fused = 0;
        uint64_t copy_elisions = 0;
        for (const PimFusionChain &chain : chains) {
            if (chain.size() == 1) {
                const PimFusedOp &op = ops[chain.front().op];
                if (op.dest >= 0) {
                    written_ids.insert(op.dest);
                    materialized_ids.insert(op.dest);
                }
                runFusedOp(op);
                continue;
            }
            ++fused_chains;
            fused_ops += chain.size();
            if (ops[chain.back().op].is_reduce)
                ++reduction_chains;
            for (const PimFusionStep &st : chain) {
                const PimFusedOp &op = ops[st.op];
                if (op.dest >= 0) {
                    written_ids.insert(op.dest);
                    if (!st.elide_store)
                        materialized_ids.insert(op.dest);
                }
                if (op.is_load) {
                    ++host_loads;
                    copy_bytes_fused += op.copy_payload;
                    if (st.elide_store)
                        ++copy_elisions;
                }
            }
            scalar_folds += executeFusedChain(ops, chain);
        }
        if (fused_chains > 0) {
            PIM_METRIC_COUNT("fusion.chains", fused_chains);
            PIM_METRIC_COUNT("fusion.ops_fused", fused_ops);
        }
        if (reduction_chains > 0)
            PIM_METRIC_COUNT("fusion.reduction_chains",
                             reduction_chains);
        if (scalar_folds > 0)
            PIM_METRIC_COUNT("fusion.scalar_folds", scalar_folds);
        if (host_loads > 0) {
            PIM_METRIC_COUNT("fusion.host_loads", host_loads);
            PIM_METRIC_COUNT("fusion.copy_bytes_fused",
                             copy_bytes_fused);
        }
        if (copy_elisions > 0)
            PIM_METRIC_COUNT("fusion.copy_elisions", copy_elisions);
    }
    // Deferred frees: a temporary whose every write was elided never
    // materialized (and never entered the pipeline's hazard sets), so
    // its storage goes back to the allocator pristine. Anything with
    // a materialized write frees normally.
    uint64_t temps_elided = 0;
    for (PimObjId id : fusion_window_.deferredFrees()) {
        if (written_ids.count(id) > 0 &&
            materialized_ids.count(id) == 0) {
            resources_.freeElided(id);
            ++temps_elided;
        } else {
            if (pipelineActive())
                pipeline_->waitObject(id);
            resources_.free(id);
        }
    }
    if (temps_elided > 0)
        PIM_METRIC_COUNT("fusion.temps_elided", temps_elided);
    fusion_window_.clear();
}

void
PimDevice::runFusedOp(const PimFusedOp &op)
{
    if (op.is_load) {
        // Singleton captured copy: the unfused H2D body, fed from the
        // snapshot taken at capture (the lambda's op copy keeps the
        // snapshot alive until the pipeline runs it).
        issue({}, {op.dest}, [op, this](PimStatsDelta *delta) {
            PIM_TRACE_SCOPE_ARG("copyH2D", "exec", op.copy_payload);
            PIM_METRIC_COUNT("copy.bytes_h2d", op.copy_payload);
            const uint8_t *bytes = op.host.get();
            pool_.parallelForChunks(
                0, op.n, [&op, bytes](size_t lo, size_t hi) {
                    op.load_kern(bytes, op.pd, lo, hi, op.dmask);
                });
            commitCopy(delta, PimCopyEnum::PIM_COPY_H2D,
                       op.copy_payload,
                       model_->costCopy(PimCopyEnum::PIM_COPY_H2D,
                                        op.copy_payload));
        });
        return;
    }
    if (op.is_reduce) {
        // Singleton reduction: the chain planner found no producer to
        // fuse with, so this is the unfused blocking path verbatim
        // (full-object sums only reach the window).
        issue(
            {op.a}, {},
            [op, this](PimStatsDelta *delta) {
                PIM_TRACE_SCOPE_ARG(op.trace_name, "exec", op.n);
                std::atomic<int64_t> total{0};
                pool_.parallelForChunks(
                    0, op.n, [&](size_t lo, size_t hi) {
                        int64_t part = 0;
                        if (op.sgn) {
                            for (size_t i = lo; i < hi; ++i)
                                part +=
                                    alpuSignExtend(op.pa[i], op.bits);
                        } else {
                            for (size_t i = lo; i < hi; ++i)
                                part += static_cast<int64_t>(op.pa[i]);
                        }
                        total.fetch_add(part,
                                        std::memory_order_relaxed);
                    });
                *op.red_result =
                    total.load(std::memory_order_relaxed);
                commitCmd(delta, op.key_id,
                          model_->costOp(op.profile));
            },
            /*blocking=*/true);
        return;
    }
    if (op.is_fill) {
        issue({}, {op.dest}, [op, this](PimStatsDelta *delta) {
            PIM_TRACE_SCOPE_ARG(op.trace_name, "exec", op.n);
            pool_.parallelForChunks(
                0, op.n, [&op](size_t lo, size_t hi) {
                    std::fill(op.pd + lo, op.pd + hi, op.scalar);
                });
            commitCmd(delta, op.key_id, model_->costOp(op.profile));
        });
        return;
    }
    std::vector<PimObjId> reads{op.a};
    if (op.b >= 0)
        reads.push_back(op.b);
    issue(reads, {op.dest}, [op, this](PimStatsDelta *delta) {
        PIM_TRACE_SCOPE_ARG(op.trace_name, "exec", op.n);
        pool_.parallelForChunks(0, op.n, [&op](size_t lo, size_t hi) {
            if (op.kern2)
                op.kern2(op.pa, op.pb, op.pd, lo, hi, op.bits,
                         op.dmask);
            else if (op.kern_sa)
                op.kern_sa(op.pa, op.pb, op.scalar, op.pd, lo, hi,
                           op.bits, op.dmask);
            else
                op.kern1(op.pa, op.scalar, op.pd, lo, hi, op.bits,
                         op.dmask);
        });
        commitCmd(delta, op.key_id, model_->costOp(op.profile));
    });
}

size_t
PimDevice::executeFusedChain(const std::vector<PimFusedOp> &ops,
                             const PimFusionChain &chain)
{
    PimFusedTape tape = pimBuildFusedTape(ops, chain);

    // Hazard sets, resolved per step in chain order. A dest enters the
    // write set only when its store materializes. An operand enters
    // the read set only when the step actually reads the object's
    // storage — no earlier in-chain writer. Resolved against an
    // elided producer, the step consumes the flowing tile or the host
    // snapshot; against a materialized one, memory this same command
    // wrote earlier in the tile pass. Neither needs an external
    // hazard. (An id may mix elided and materialized writes under WAW
    // elision — per-step resolution keeps the final materialized
    // write in the set where a whole-id exclusion would drop it.)
    std::unordered_set<PimObjId> written_in_chain;
    std::vector<PimObjId> reads;
    std::vector<PimObjId> writes;

    // Per-member stats commits in issue order from issue-time
    // profiles — exactly what the unfused commands would commit.
    // Captured copies commit their modeled transfer instead of an op
    // cost, interleaved at their window position.
    struct ChainCommit
    {
        bool is_copy = false;
        PimStatsMgr::CmdKeyId id = 0;
        PimOpProfile profile;
        uint64_t bytes = 0; ///< modeled copy payload (is_copy)
    };
    std::vector<ChainCommit> commits;
    commits.reserve(chain.size());
    // Keeps every member copy's snapshot alive until the chain runs
    // (the tape holds raw pointers into them).
    std::vector<std::shared_ptr<const uint8_t[]>> snapshots;

    for (const PimFusionStep &st : chain) {
        const PimFusedOp &op = ops[st.op];
        if (op.is_load) {
            snapshots.push_back(op.host);
            ChainCommit c;
            c.is_copy = true;
            c.bytes = op.copy_payload;
            commits.push_back(c);
        } else {
            ChainCommit c;
            c.id = op.key_id;
            c.profile = op.profile;
            commits.push_back(c);
        }
        if (!op.is_load && !op.is_fill) {
            if (op.a >= 0 && written_in_chain.count(op.a) == 0)
                reads.push_back(op.a);
            if (op.b >= 0 && written_in_chain.count(op.b) == 0)
                reads.push_back(op.b);
        }
        if (op.dest >= 0) {
            if (!st.elide_store)
                writes.push_back(op.dest);
            written_in_chain.insert(op.dest);
        }
    }
    const auto dedupe = [](std::vector<PimObjId> &v) {
        std::sort(v.begin(), v.end());
        v.erase(std::unique(v.begin(), v.end()), v.end());
    };
    dedupe(reads);
    dedupe(writes);

    // A reduction-terminated chain blocks like the unfused reduction:
    // the scalar result goes back to the host. Per-chunk tape
    // partials tree-combine through one atomic accumulator (wrapping
    // addition is associative, so chunk order cannot change the
    // result).
    const bool has_reduce = ops[chain.back().op].is_reduce;
    int64_t *red_result =
        has_reduce ? ops[chain.back().op].red_result : nullptr;

    const char *trace_name = fusedTraceName(chain.size());
    const size_t n = tape.n;
    const size_t folded = tape.folded_fills;
    issue(reads, writes,
          [=, this, tape = std::move(tape), commits = std::move(commits),
           snapshots = std::move(snapshots)](PimStatsDelta *delta) {
              (void)snapshots; // keeps host snapshots alive for the tape
              PIM_TRACE_SCOPE_ARG(trace_name, "exec", n);
              std::atomic<uint64_t> total{0};
              pool_.parallelForChunks(
                  0, n, [&tape, &total](size_t lo, size_t hi) {
                      const uint64_t part = tape.run(lo, hi);
                      if (part)
                          total.fetch_add(part,
                                          std::memory_order_relaxed);
                  });
              if (red_result)
                  *red_result = static_cast<int64_t>(
                      total.load(std::memory_order_relaxed));
              for (const ChainCommit &c : commits) {
                  if (c.is_copy) {
                      PIM_METRIC_COUNT("copy.bytes_h2d", c.bytes);
                      commitCopy(delta, PimCopyEnum::PIM_COPY_H2D,
                                 c.bytes,
                                 model_->costCopy(
                                     PimCopyEnum::PIM_COPY_H2D, c.bytes));
                  } else {
                      commitCmd(delta, c.id, model_->costOp(c.profile));
                  }
              }
          },
          /*blocking=*/has_reduce);
    return folded;
}

} // namespace pimeval
