/**
 * @file
 * Thread-local last-error reporting for the PIM API (API v2).
 *
 * Every API entry point that fails emits a "PIM-Error" log line; the
 * logger records that message as the calling thread's last error, so
 * after any failing call pimGetLastError()/pimGetLastErrorMessage()
 * return the status and the human-readable detail — even when error
 * logging is silenced by the verbosity threshold. The state is
 * errno-style sticky: a failing call overwrites it, successful calls
 * leave it untouched, and pimClearLastError() resets it. Being
 * thread-local, concurrent host threads driving different contexts
 * each see their own errors.
 */

#ifndef PIMEVAL_CORE_PIM_ERROR_H_
#define PIMEVAL_CORE_PIM_ERROR_H_

#include <string>

#include "core/pim_types.h"

/**
 * Status of the calling thread's most recent failing PIM API call
 * (PIM_OK when no call has failed since start / the last clear).
 */
PimStatus pimGetLastError();

/**
 * Detail string for the calling thread's most recent failing call,
 * e.g. "pimAdd: no active PIM device". Empty when no call has failed.
 * The pointer stays valid until the next failing call (or
 * pimClearLastError) on this thread.
 */
const char *pimGetLastErrorMessage();

/** Reset the calling thread's error state to PIM_OK / "". */
void pimClearLastError();

namespace pimeval {

/**
 * Log @p detail as a "PIM-Error" (recording it as the thread's last
 * error) and return PIM_ERROR, so failure paths read
 * `return fail("pimAdd: no active device");`.
 */
PimStatus fail(const std::string &detail);

} // namespace pimeval

#endif // PIMEVAL_CORE_PIM_ERROR_H_
