/**
 * @file
 * AreaModel implementation.
 */

#include "core/area_model.h"

#include <sstream>

#include "bitserial/analog_ops.h"
#include "util/string_utils.h"

namespace pimeval {

AreaModel::AreaModel(const PimDeviceConfig &config,
                     const AreaParams &params)
    : config_(config), params_(params)
{
}

double
AreaModel::peRowEquivalentsPerSubarray() const
{
    switch (config_.device) {
      case PimDeviceEnum::PIM_DEVICE_BITSIMD_V_AP:
        return params_.bitserial_pe_rows + params_.bitserial_ctrl_rows;
      case PimDeviceEnum::PIM_DEVICE_FULCRUM:
        // Three walkers plus the ALPU, shared between 2 subarrays.
        return (3.0 * params_.walker_row_equiv +
                params_.fulcrum_alpu_rows) / 2.0;
      case PimDeviceEnum::PIM_DEVICE_BANK_LEVEL:
        // One PE per bank, amortized over its subarrays.
        return (3.0 * params_.walker_row_equiv +
                params_.bank_alpu_rows) /
            static_cast<double>(config_.num_subarrays_per_bank);
      case PimDeviceEnum::PIM_DEVICE_SIMDRAM: {
        // Reserved compute rows at cell pitch, DCC rows at double
        // pitch, plus the TRA decoder widening.
        const double plain_rows =
            static_cast<double>(AnalogRowGroup::kNumRows) - 2.0;
        return plain_rows + 2.0 * params_.dcc_row_equiv +
            params_.analog_decoder_rows;
      }
      case PimDeviceEnum::PIM_DEVICE_NONE:
        break;
    }
    return 0.0;
}

double
AreaModel::overheadFraction() const
{
    return peRowEquivalentsPerSubarray() /
        static_cast<double>(config_.num_rows_per_subarray);
}

std::string
AreaModel::summary() const
{
    std::ostringstream oss;
    oss << pimDeviceName(config_.device) << ": "
        << formatFixed(peRowEquivalentsPerSubarray(), 1)
        << " row-equivalents/subarray = "
        << formatFixed(overheadPercent(), 2) << "% array overhead";
    return oss.str();
}

} // namespace pimeval
