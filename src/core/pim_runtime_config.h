/**
 * @file
 * Consolidated runtime configuration: one resolver for every
 * PIMEVAL_* environment knob.
 *
 * Historically each subsystem parsed its own environment variable at
 * its own time (trace capacity in the tracer, fusion in the device
 * constructor, the memory backend in the DRAM layer, ...), which made
 * the effective configuration impossible to see in one place and the
 * precedence rules implicit. All of those knobs now resolve through
 * this header with one explicit precedence:
 *
 *     programmatic config (pimSetRuntimeConfig) > environment > default
 *
 * Subsystems keep their resolution *timing* (the fusion default is
 * still read at device creation, the trace capacity at trace begin),
 * but the *parsing* and precedence live here, and
 * pimDumpRuntimeConfig() reports every knob's resolved value plus
 * where it came from.
 *
 * Knobs covered (see docs/API.md for the table):
 *   PIMEVAL_TRACE              trace export path, armed at device create
 *   PIMEVAL_TRACE_CAPACITY     per-thread trace ring capacity (events)
 *   PIMEVAL_PROFILE            profile export path, armed at device create
 *   PIMEVAL_PROFILE_SAMPLE_MS  profiler sampler period (0 disables)
 *   PIMEVAL_FUSION             device-wide fusion default
 *   PIMEVAL_MEM_BACKEND        memory-timing backend (cycle|analytical|lut)
 *   PIMEVAL_PIPELINE_INLINE    async-pipeline inline-when-idle override
 *
 * PimDeviceConfig::mem_backend stays the highest-priority selector
 * for the memory backend (an explicit per-device struct field beats
 * every process-wide knob); this resolver supplies the layer below it.
 */

#ifndef PIMEVAL_CORE_PIM_RUNTIME_CONFIG_H_
#define PIMEVAL_CORE_PIM_RUNTIME_CONFIG_H_

#include <cstdint>
#include <optional>
#include <ostream>
#include <string>

#include "core/pim_types.h"

namespace pimeval {

/**
 * Programmatic overrides for the runtime knobs. An unset optional
 * defers to the environment variable, then to the built-in default;
 * a set optional wins over both. Apply with pimSetRuntimeConfig.
 */
struct PimRuntimeConfig
{
    /** Trace export path armed at device creation ("" = no trace). */
    std::optional<std::string> trace_path;
    /** Per-thread trace ring capacity in events. */
    std::optional<uint64_t> trace_capacity;
    /** Profile export path armed at device creation ("" = none). */
    std::optional<std::string> profile_path;
    /** Profiler background-sampler period in ms (0 = no sampler). */
    std::optional<double> profile_sample_ms;
    /** Device-wide elementwise-fusion default at device creation. */
    std::optional<bool> fusion;
    /** Memory-timing backend (below PimDeviceConfig::mem_backend). */
    std::optional<PimMemBackend> mem_backend;
    /** Async-pipeline inline-when-idle (unset = hardware heuristic). */
    std::optional<bool> pipeline_inline;
};

/** Where a resolved knob value came from. */
enum class PimKnobSource {
    kDefault, ///< built-in default
    kEnv,     ///< PIMEVAL_* environment variable
    kConfig,  ///< pimSetRuntimeConfig override
};

/** One resolved knob: the effective value plus its provenance. */
template <typename T> struct PimResolvedKnob
{
    T value{};
    PimKnobSource source = PimKnobSource::kDefault;
};

/**
 * The fully resolved runtime configuration. Environment variables are
 * read when resolve() is called (the single getenv point), so tests
 * that set and restore PIMEVAL_* see their changes on the next
 * resolve — matching the historical per-subsystem read timing.
 */
struct PimResolvedRuntimeConfig
{
    PimResolvedKnob<std::string> trace_path;
    PimResolvedKnob<uint64_t> trace_capacity;
    PimResolvedKnob<std::string> profile_path;
    PimResolvedKnob<double> profile_sample_ms;
    PimResolvedKnob<bool> fusion;
    /** DEFAULT when neither config nor env selects one (the caller
     *  then applies its own fallback, e.g. use_dram_timing > LUT). */
    PimResolvedKnob<PimMemBackend> mem_backend;
    /** -1 = no override (hardware-concurrency heuristic applies). */
    PimResolvedKnob<int> pipeline_inline;
};

/** The single parse point: overrides > environment > defaults. */
PimResolvedRuntimeConfig pimResolveRuntimeConfig();

} // namespace pimeval

/**
 * Install process-wide programmatic overrides (replacing any previous
 * ones; pass a default-constructed struct to clear). Thread-safe.
 * Takes effect at each knob's natural resolution time — e.g. the
 * fusion default applies to devices created afterwards.
 */
PimStatus pimSetRuntimeConfig(const pimeval::PimRuntimeConfig &config);

/** The currently installed programmatic overrides. */
pimeval::PimRuntimeConfig pimGetRuntimeConfig();

/**
 * Write the resolved runtime configuration as a JSON object to
 * @p os: every knob with its effective value, its provenance
 * ("config" | "env" | "default"), and the environment variable it
 * listens to.
 */
PimStatus pimDumpRuntimeConfig(std::ostream &os);

#endif // PIMEVAL_CORE_PIM_RUNTIME_CONFIG_H_
