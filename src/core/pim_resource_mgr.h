/**
 * @file
 * PIM resource manager: object allocation, placement, and tracking
 * (paper Section V-A).
 *
 * Objects are spread across all PIM cores to maximize parallelism.
 * Rows within each core are managed with a first-fit interval
 * allocator so that objects can be freed and reallocated throughout a
 * benchmark (e.g., per-iteration temporaries in K-means).
 *
 * pimAllocAssociated() clones the element distribution of a reference
 * object so corresponding elements of both objects land in the same
 * core — the precondition for element-wise SIMD commands.
 */

#ifndef PIMEVAL_CORE_PIM_RESOURCE_MGR_H_
#define PIMEVAL_CORE_PIM_RESOURCE_MGR_H_

#include <map>
#include <memory>
#include <tuple>
#include <vector>

#include "core/pim_data_object.h"
#include "core/pim_params.h"

namespace pimeval {

/**
 * First-fit row interval allocator for one PIM core.
 */
class RowAllocator
{
  public:
    explicit RowAllocator(uint64_t num_rows);

    /**
     * Allocate @p count contiguous rows.
     * @return row offset, or UINT64_MAX when full.
     */
    uint64_t allocate(uint64_t count);

    /** Return rows to the free pool (merges adjacent intervals). */
    void release(uint64_t offset, uint64_t count);

    /** Rows currently free. */
    uint64_t freeRows() const;

    /** Largest single free extent. */
    uint64_t largestFreeExtent() const;

  private:
    uint64_t num_rows_;
    std::map<uint64_t, uint64_t> free_; ///< offset -> length
};

/**
 * Device-wide resource manager.
 */
class PimResourceMgr
{
  public:
    explicit PimResourceMgr(const PimDeviceConfig &config);

    /**
     * Allocate an object spread across cores.
     * @param v_layout vertical (bit-serial) or horizontal placement.
     * @param quiet_exhaustion suppress the capacity-exhausted error
     *        log — for callers that can reclaim capacity (e.g. flush
     *        fusion-deferred frees) and retry.
     * @return nullptr on failure (capacity exhausted).
     */
    PimDataObject *alloc(uint64_t num_elements, PimDataType data_type,
                         bool v_layout,
                         bool quiet_exhaustion = false);

    /**
     * Allocate with the same element distribution as @p ref.
     */
    PimDataObject *allocAssociated(const PimDataObject &ref,
                                   PimDataType data_type,
                                   bool quiet_exhaustion = false);

    /** Free an object; @return false for unknown ids. */
    bool free(PimObjId id);

    /**
     * Free a fusion-elided dead temporary: the object was allocated,
     * nominally written, and freed without its storage ever being
     * touched, so it is still in the fresh-allocation all-zero state.
     * Marks it pristine before parking it, letting the next same-shape
     * recycle() skip the zero-fill.
     */
    bool freeElided(PimObjId id);

    /** Look up an object (nullptr if unknown). */
    PimDataObject *get(PimObjId id);
    const PimDataObject *get(PimObjId id) const;

    /**
     * Live object count. Free-list entries are not live objects —
     * counting them would make alloc/free churn inflate every
     * numObjects()-based report.
     */
    size_t numObjects() const { return objects_.size(); }

    /**
     * Fraction of device rows currently allocated, for reporting.
     * Rows parked in the free-list are reported free: the cache is an
     * implementation detail and is flushed whenever placement needs
     * the capacity back.
     */
    double utilization() const;

    /** Release every cached free-list object (rows return to the
     *  allocators). */
    void flushFreeList();

  private:
    /** Rows one region needs for @p elems elements of @p bits. */
    uint64_t rowsForRegion(uint64_t elems, unsigned bits,
                           bool v_layout) const;

    /** Build a balanced element distribution across cores. */
    std::vector<uint64_t> balancedSplit(uint64_t num_elements) const;

    /** Place regions for the given per-core element counts. */
    bool placeRegions(PimDataObject &obj,
                      const std::vector<std::pair<uint64_t, uint64_t>>
                          &core_elem_counts);

    /** Free-list bucket key: objects of one storage shape. */
    using FreeKey = std::tuple<uint64_t, unsigned, bool>;

    static FreeKey freeKeyFor(const PimDataObject &obj)
    {
        return {obj.numElements(), obj.bitsPerElement(),
                obj.isVLayout()};
    }

    /**
     * Pop a cached object of the given shape, recycle its identity,
     * and re-register it as live. @p ref, when given, restricts the
     * match to objects whose region distribution mirrors the
     * reference (the pimAllocAssociated contract). Returns nullptr on
     * miss.
     */
    PimDataObject *takeFromFreeList(uint64_t num_elements,
                                    unsigned bits, bool v_layout,
                                    PimDataType data_type,
                                    const PimDataObject *ref);

    /** Release one cached object's rows back to the allocators. */
    void releaseRows(const PimDataObject &obj);

    PimDeviceConfig config_;
    PimObjId next_id_ = 0;
    /** Rotating start core for small-object spreading. */
    uint64_t next_core_ = 0;
    std::map<PimObjId, std::unique_ptr<PimDataObject>> objects_;
    std::vector<RowAllocator> row_allocators_; ///< one per core
    /**
     * Freed objects kept whole (storage + row placement) for
     * same-shape reallocation — PIMbench apps alloc/free identical
     * temporaries every iteration. Capped; never counted as live.
     */
    std::map<FreeKey, std::vector<std::unique_ptr<PimDataObject>>>
        free_list_;
    size_t free_list_count_ = 0;
    static constexpr size_t kMaxFreeListObjects = 16;
};

} // namespace pimeval

#endif // PIMEVAL_CORE_PIM_RESOURCE_MGR_H_
