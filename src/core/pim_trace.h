/**
 * @file
 * Low-overhead event tracer for the simulator itself (host-side
 * observability, not PIM modeling): scoped spans and instant events
 * recorded into per-thread ring buffers and exported as Chrome
 * trace-event JSON (loadable in Perfetto / chrome://tracing) or
 * compact CSV.
 *
 * Dual clocks: every event carries the host wall clock (nanoseconds
 * since trace begin). Events emitted at statistics-commit time
 * additionally carry the modeled PIM clock (accumulated modeled
 * kernel+copy seconds), so the export contains two aligned timelines —
 * one process of host threads and one process of modeled PIM time.
 * All cores of a command run in lockstep, so the modeled timeline is
 * one device-aggregate track (per-core tracks would be N identical
 * copies); each modeled span records the cores it occupied in its
 * args.
 *
 * Concurrency model: each thread owns one ring buffer and appends to
 * it without locks. A reader/writer gate (shared lock per recorded
 * event, exclusive at begin/end/export) quiesces writers so that
 * control operations and exports are race-free — including under
 * ThreadSanitizer. The runtime-disabled fast path is one relaxed
 * atomic load and branch per hook; with -DPIMEVAL_TRACING=OFF the
 * hooks compile away entirely (see the macros at the bottom).
 */

#ifndef PIMEVAL_CORE_PIM_TRACE_H_
#define PIMEVAL_CORE_PIM_TRACE_H_

#include <atomic>
#include <chrono>
#include <cstdint>
#include <memory>
#include <mutex>
#include <shared_mutex>
#include <string>
#include <unordered_set>
#include <vector>

#ifndef PIMEVAL_TRACING_ENABLED
#define PIMEVAL_TRACING_ENABLED 1
#endif

namespace pimeval {

enum class TraceEventType : uint8_t {
    kSpan = 0,    ///< complete event with a duration (Chrome "X")
    kInstant,     ///< point event (Chrome "i")
    kCounter,     ///< sampled value (Chrome "C")
    kModeledSpan, ///< span on the modeled-PIM-time track
};

/**
 * One recorded event. Names and categories must be string literals or
 * strings interned through PimTracer::intern (the tracer stores the
 * pointer, not a copy).
 */
struct TraceEvent
{
    const char *name = nullptr;
    const char *category = nullptr;
    uint64_t ts_ns = 0;  ///< host clock, ns since trace begin
    uint64_t dur_ns = 0; ///< span duration (spans only)
    /** Modeled PIM clock at the event (seconds); < 0 when the event
     *  has no modeled-time meaning. */
    double modeled_sec = -1.0;
    /** Modeled duration (modeled spans) or counter value. */
    double modeled_dur_sec = 0.0;
    uint64_t arg = 0; ///< generic payload (bytes, seq, elements, ...)
    /** Owning PIM context of a modeled span (context ids start at 1;
     *  the default context is 1, so its modeled track keeps the
     *  legacy pid 2 = 1 + ctx in the export). */
    uint32_t ctx = 1;
    TraceEventType type = TraceEventType::kInstant;
};

/**
 * Process-wide tracer. All methods are thread-safe. Inactive by
 * default; activate with begin() (or the PIMEVAL_TRACE environment
 * variable, honored at device creation) and export with end() or
 * dump().
 */
class PimTracer
{
  public:
    static PimTracer &instance();

    /** Hook fast path: one relaxed load, safe before instance(). */
    static bool enabled()
    {
        return enabled_flag_.load(std::memory_order_relaxed);
    }

    /**
     * Start (or restart) tracing: clears all buffers, re-arms the
     * epoch, and remembers @p path as the default export target.
     * Ring capacity is kDefaultCapacity events per thread, or
     * PIMEVAL_TRACE_CAPACITY when that env var holds a number.
     */
    void begin(const std::string &path);

    /**
     * Stop tracing and export to @p path (empty = the begin() path).
     * Buffers are retained until the next begin(), so dump() can still
     * re-export. @return false when the file cannot be written.
     */
    bool end(const std::string &path = "");

    /** Export a snapshot without stopping. Path extension selects the
     *  format: ".csv" writes compact CSV, everything else Chrome
     *  trace-event JSON. */
    bool dump(const std::string &path) const;

    bool active() const { return enabled(); }
    const std::string &outputPath() const { return path_; }

    /** Host clock in ns since the trace epoch. */
    uint64_t nowNs() const
    {
        return static_cast<uint64_t>(
            std::chrono::duration_cast<std::chrono::nanoseconds>(
                std::chrono::steady_clock::now() - epoch_)
                .count());
    }

    /** Record a completed span [start_ns, end_ns) on this thread. */
    void recordSpan(const char *name, const char *category,
                    uint64_t start_ns, uint64_t end_ns,
                    uint64_t arg = 0);

    /** Record an instant event on this thread. */
    void recordInstant(const char *name, const char *category,
                       uint64_t arg = 0);

    /** Record a counter sample (Chrome "C" track). */
    void recordCounter(const char *name, double value);

    /**
     * Record a span on the modeled-PIM-time track: the command named
     * @p name occupied modeled time [modeled_start_sec,
     * modeled_start_sec + modeled_dur_sec). @p arg carries the cores
     * used. Also timestamps the host clock, giving the dual-clock
     * correspondence. @p ctx is the owning context id (each context
     * exports its own modeled-time process, pid = 1 + ctx).
     */
    void recordModeledSpan(const char *name,
                           double modeled_start_sec,
                           double modeled_dur_sec, uint64_t arg = 0,
                           uint32_t ctx = 1);

    /**
     * Register a PIM context for export labeling: the context's
     * modeled-time track (pid = 1 + @p id) is named after @p label in
     * the Chrome trace metadata. Idempotent; callable whether or not
     * tracing is active. Context 1 (the process default) keeps the
     * legacy "modeled PIM device" name when its label is empty.
     */
    void registerContext(uint32_t id, const std::string &label);

    /**
     * Name the calling thread's track in the export (e.g.
     * "pipeline-worker-0"). Cheap; callable whether or not tracing is
     * active.
     */
    void setThreadName(const std::string &name);

    /**
     * Intern a dynamic string, returning a pointer that stays valid
     * for the process lifetime (event names must outlive the trace).
     */
    const char *intern(const std::string &s);

    /** All currently buffered events (oldest first per thread), for
     *  tests and exporters. Quiesces writers while copying. */
    std::vector<TraceEvent> snapshotEvents() const;

    /** Events lost to ring overwrite since begin(). */
    uint64_t droppedEvents() const;

    /** Default per-thread ring capacity (events). */
    static constexpr size_t kDefaultCapacity = size_t{1} << 15;

  private:
    PimTracer() = default;

    /** One thread's ring. Written lock-free by its owner under the
     *  shared gate; read only under the exclusive gate. */
    struct ThreadBuffer
    {
        std::vector<TraceEvent> ring;
        /** Total events ever written this session; slot = n % size. */
        std::atomic<uint64_t> count{0};
        std::string name;
        uint32_t tid = 0;
    };

    ThreadBuffer &localBuffer();
    void record(const TraceEvent &event);
    bool exportJson(const std::string &path) const;
    bool exportCsv(const std::string &path) const;

    static std::atomic<bool> enabled_flag_;

    /** Writers hold shared; begin/end/export/snapshot hold
     *  exclusive. */
    mutable std::shared_mutex gate_;
    mutable std::mutex registry_mutex_;
    std::vector<std::shared_ptr<ThreadBuffer>> buffers_;
    /** Context id -> label for export metadata (registerContext). */
    std::vector<std::pair<uint32_t, std::string>> contexts_;
    std::string path_;
    std::chrono::steady_clock::time_point epoch_ =
        std::chrono::steady_clock::now();
    size_t capacity_ = kDefaultCapacity;

    std::mutex intern_mutex_;
    std::unordered_set<std::string> interned_;
};

/**
 * RAII span: stamps the start on construction (when tracing is
 * enabled) and records the completed span on destruction. Use through
 * PIM_TRACE_SCOPE so the whole object disappears under
 * -DPIMEVAL_TRACING=OFF.
 */
class PimTraceScope
{
  public:
    PimTraceScope(const char *name, const char *category,
                  uint64_t arg = 0)
    {
        if (PimTracer::enabled()) {
            name_ = name;
            category_ = category;
            arg_ = arg;
            start_ns_ = PimTracer::instance().nowNs() + 1;
        }
    }

    ~PimTraceScope()
    {
        if (start_ns_ != 0) {
            PimTracer &tracer = PimTracer::instance();
            tracer.recordSpan(name_, category_, start_ns_ - 1,
                              tracer.nowNs(), arg_);
        }
    }

    PimTraceScope(const PimTraceScope &) = delete;
    PimTraceScope &operator=(const PimTraceScope &) = delete;

  private:
    const char *name_ = nullptr;
    const char *category_ = nullptr;
    uint64_t arg_ = 0;
    /** 0 = disabled at construction (nowNs()+1 keeps 0 reserved). */
    uint64_t start_ns_ = 0;
};

/**
 * RAII export guard for a whole trace session. A trace armed through
 * the PIMEVAL_TRACE environment variable is normally exported by
 * pimDeleteDevice(); a program that errors out early and returns
 * before tearing the device down would leave the trace armed but
 * never written. Construct one of these at the top of main (pass the
 * intended output path, typically the PIMEVAL_TRACE value): if no
 * trace is active yet it begins one, and whichever way the scope
 * exits — early-error returns included — the destructor exports any
 * still-active trace instead of dropping it.
 *
 * The guard stands down automatically when something else (e.g.
 * pimDeleteDevice or an explicit pimTraceEnd) already exported the
 * trace: the destructor only acts while tracing is still enabled.
 * With an empty path, or under -DPIMEVAL_TRACING=OFF, it is a no-op.
 */
class PimScopedTraceExport
{
  public:
    explicit PimScopedTraceExport(const std::string &path)
    {
#if PIMEVAL_TRACING_ENABLED
        if (path.empty())
            return;
        path_ = path;
        if (!PimTracer::enabled())
            PimTracer::instance().begin(path_);
#else
        (void)path;
#endif
    }

    ~PimScopedTraceExport()
    {
#if PIMEVAL_TRACING_ENABLED
        if (!path_.empty() && PimTracer::enabled())
            PimTracer::instance().end(path_);
#endif
    }

    PimScopedTraceExport(const PimScopedTraceExport &) = delete;
    PimScopedTraceExport &operator=(const PimScopedTraceExport &) =
        delete;

  private:
    std::string path_;
};

/**
 * Minimal JSON validation of an exported Chrome trace file: the whole
 * file must parse as JSON and contain a "traceEvents" array whose
 * entries carry the required ph/name/pid/tid/ts fields. Used by
 * test_trace and the trace_smoke ctest.
 * @param num_events out: number of trace events (may be null).
 * @param error      out: first problem found (may be null).
 */
bool pimValidateChromeTraceFile(const std::string &path,
                                size_t *num_events, std::string *error);

} // namespace pimeval

// ---------------------------------------------------------------------------
// Hook macros. With PIMEVAL_TRACING=OFF (CMake option) every hook
// compiles to an empty statement; with tracing compiled in but not
// begun, each hook costs one relaxed atomic load and branch.
// ---------------------------------------------------------------------------

#if PIMEVAL_TRACING_ENABLED

#define PIM_TRACE_CONCAT_INNER_(a, b) a##b
#define PIM_TRACE_CONCAT_(a, b) PIM_TRACE_CONCAT_INNER_(a, b)

/** Scoped span covering the rest of the enclosing block. */
#define PIM_TRACE_SCOPE(name, category)                                \
    ::pimeval::PimTraceScope PIM_TRACE_CONCAT_(pim_trace_scope_,       \
                                               __LINE__)((name),       \
                                                         (category))

/** Scoped span with a numeric payload (bytes, elements, seq...). */
#define PIM_TRACE_SCOPE_ARG(name, category, arg)                       \
    ::pimeval::PimTraceScope PIM_TRACE_CONCAT_(pim_trace_scope_,       \
                                               __LINE__)(              \
        (name), (category), static_cast<uint64_t>(arg))

/** Instant event. */
#define PIM_TRACE_INSTANT(name, category, arg)                         \
    do {                                                               \
        if (::pimeval::PimTracer::enabled())                           \
            ::pimeval::PimTracer::instance().recordInstant(            \
                (name), (category), static_cast<uint64_t>(arg));       \
    } while (0)

/** Counter sample (renders as a counter track in Perfetto). */
#define PIM_TRACE_COUNTER(name, value)                                 \
    do {                                                               \
        if (::pimeval::PimTracer::enabled())                           \
            ::pimeval::PimTracer::instance().recordCounter(            \
                (name), static_cast<double>(value));                   \
    } while (0)

#else // !PIMEVAL_TRACING_ENABLED

#define PIM_TRACE_SCOPE(name, category)                                \
    do {                                                               \
    } while (0)
#define PIM_TRACE_SCOPE_ARG(name, category, arg)                       \
    do {                                                               \
    } while (0)
#define PIM_TRACE_INSTANT(name, category, arg)                         \
    do {                                                               \
    } while (0)
#define PIM_TRACE_COUNTER(name, value)                                 \
    do {                                                               \
    } while (0)

#endif // PIMEVAL_TRACING_ENABLED

#endif // PIMEVAL_CORE_PIM_TRACE_H_
