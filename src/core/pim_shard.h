/**
 * @file
 * Sharded execution layer: split one oversized workload across K
 * same-architecture contexts (API v2).
 *
 * A PimShardGroup owns K freshly created contexts of one device
 * configuration and presents a single-device-like surface over them:
 * a sharded allocation is K per-context slices, a command broadcast
 * runs on every shard, copies partition (block) or interleave
 * (round-robin) the host buffer across the slices, and reductions
 * gather per-shard partial sums combined in a binary tree. With the
 * shards in PIM_EXEC_ASYNC mode the K per-context pipelines overlap,
 * so a broadcast returns after K enqueues and the host only waits at
 * gather points.
 *
 * Partitioning:
 *  - kBlock: shard s holds the contiguous element range
 *    [offset_s, offset_s + count_s); copies are direct pointer
 *    arithmetic into the host buffer.
 *  - kRoundRobin: element i lives on shard i % K (slot i / K); copies
 *    gather/scatter through per-shard staging buffers on the host.
 * Both produce bit-identical functional results; they differ in how
 * copy traffic maps to shards for non-uniform access patterns.
 *
 * Statistics: each shard's context keeps its own exact PimStatsMgr;
 * aggregatedStats() sums the K snapshots into one fleet-level
 * PimRunStats (wall-clock-style fields add, as K devices would).
 */

#ifndef PIMEVAL_CORE_PIM_SHARD_H_
#define PIMEVAL_CORE_PIM_SHARD_H_

#include <cstdint>
#include <memory>
#include <string>
#include <unordered_map>
#include <vector>

#include "core/pim_context.h"
#include "core/pim_params.h"
#include "core/pim_stats.h"
#include "core/pim_types.h"

namespace pimeval {

/** How sharded allocations map elements to shards. */
enum class PimShardPartition {
    kBlock = 0,   ///< contiguous ranges
    kRoundRobin,  ///< element i -> shard i % K
};

class PimShardGroup
{
  public:
    /**
     * Create a group of @p num_shards contexts simulating @p config.
     * Contexts are labeled "<label_prefix>.s<index>". @return nullptr
     * on failure (pimGetLastError has the detail).
     */
    static std::unique_ptr<PimShardGroup>
    create(const PimDeviceConfig &config, size_t num_shards,
           PimShardPartition partition,
           const std::string &label_prefix = "shard");

    /** Destroys the K contexts (draining their pipelines). */
    ~PimShardGroup();

    PimShardGroup(const PimShardGroup &) = delete;
    PimShardGroup &operator=(const PimShardGroup &) = delete;

    size_t numShards() const { return shards_.size(); }
    PimShardPartition partition() const { return partition_; }
    /** Shard @p i's context (for per-shard stats or tracing). */
    PimContext shard(size_t i) const { return shards_[i]; }

    /** Broadcast an execution-mode switch to every shard. Async mode
     *  is what makes the K pipelines overlap. */
    PimStatus setExecMode(PimExecEnum mode);

    /** Drain every shard's pipeline. */
    void sync();

    // --- Sharded allocations ---

    /**
     * Allocate @p num_elements of @p data_type split across the
     * shards under the group's partitioning. @return a group-local
     * handle (valid only with this group's methods), or -1.
     */
    PimObjId alloc(PimAllocEnum alloc_type, uint64_t num_elements,
                   PimDataType data_type);

    /** Allocate shard-by-shard associated with @p ref's slices. */
    PimObjId allocAssociated(PimObjId ref, PimDataType data_type);

    PimStatus free(PimObjId obj);

    /** Total element count of a sharded allocation (0 if unknown). */
    uint64_t numElements(PimObjId obj) const;

    // --- Data movement (whole-object) ---

    PimStatus copyHostToDevice(const void *src, PimObjId dest);
    PimStatus copyDeviceToHost(PimObjId src, void *dest);

    // --- Command broadcast (runs on every shard) ---

    PimStatus executeBinary(PimCmdEnum cmd, PimObjId a, PimObjId b,
                            PimObjId dest);
    PimStatus executeUnary(PimCmdEnum cmd, PimObjId a, PimObjId dest);
    PimStatus executeScalar(PimCmdEnum cmd, PimObjId a, PimObjId dest,
                            uint64_t scalar);
    PimStatus executeScaledAdd(PimObjId a, PimObjId b, PimObjId dest,
                               uint64_t scalar);
    PimStatus executeBroadcast(PimObjId dest, uint64_t value);

    /**
     * Sharded reduction: per-shard pimRedSum partials gathered and
     * combined pairwise in a binary tree (int64 wrap-around addition
     * is associative, so the tree matches the sequential sum bit for
     * bit).
     */
    PimStatus executeRedSum(PimObjId a, int64_t *result);

    // --- Fleet statistics ---

    /** Sum of the K per-shard statistics snapshots (drains first). */
    PimRunStats aggregatedStats();

    /** Reset every shard's statistics. */
    void resetStats();

  private:
    /** One shard's piece of a sharded allocation. */
    struct Slice
    {
        PimObjId obj = -1;
        uint64_t count = 0;
    };

    /** A sharded allocation: K slices plus layout metadata. */
    struct ShardedObj
    {
        PimDataType dtype = PimDataType::PIM_INT32;
        uint64_t total = 0;
        std::vector<Slice> slices;
    };

    PimShardGroup(std::vector<PimContext> shards,
                  PimShardPartition partition);

    /** Slice sizes for @p total elements (both partitionings give
     *  shard s: total/K plus one of the first total%K remainders). */
    std::vector<uint64_t> sliceCounts(uint64_t total) const;

    const ShardedObj *find(PimObjId obj, const char *what) const;

    /** Free every slice of @p so (best effort, for error unwinding
     *  and free()). */
    void freeSlices(const ShardedObj &so);

    std::vector<PimContext> shards_;
    PimShardPartition partition_;
    std::unordered_map<PimObjId, ShardedObj> objs_;
    PimObjId next_id_ = 1;
};

} // namespace pimeval

#endif // PIMEVAL_CORE_PIM_SHARD_H_
