/**
 * @file
 * Metrics registry implementation.
 */

#include "core/pim_metrics.h"

#include <algorithm>
#include <cmath>
#include <cstring>
#include <iomanip>
#include <sstream>

namespace pimeval {

namespace detail {
thread_local int tls_metric_domain = -1;
} // namespace detail

namespace {

// Local formatting helpers: pim_observe sits below pim_util in the
// link order, so it cannot use util/string_utils.

std::string
padRight(const std::string &s, size_t width)
{
    return s.size() >= width ? s : s + std::string(width - s.size(), ' ');
}

std::string
padLeft(const std::string &s, size_t width)
{
    return s.size() >= width ? s : std::string(width - s.size(), ' ') + s;
}

std::string
formatFixed(double v, int precision)
{
    std::ostringstream oss;
    oss << std::fixed << std::setprecision(precision) << v;
    return oss.str();
}

uint64_t
packDouble(double v)
{
    uint64_t b;
    std::memcpy(&b, &v, sizeof(b));
    return b;
}

double
unpackDouble(uint64_t b)
{
    double v;
    std::memcpy(&v, &b, sizeof(v));
    return v;
}

} // namespace

// ---------------------------------------------------------------------------
// MetricHistogram
// ---------------------------------------------------------------------------

int
MetricHistogram::bucketIndex(double v)
{
    // Non-positive values (and NaN) fall into the underflow bin.
    if (!(v > 0.0))
        return 0;
    int exp;
    const double frac = std::frexp(v, &exp); // v = frac * 2^exp
    const int octave = (exp - 1) - kMinExp;  // floor(log2 v) - kMinExp
    if (octave < 0)
        return 0;
    if (octave >= kNumOctaves)
        return kNumBuckets - 1;
    // frac in [0.5, 1): map linearly onto the octave's sub-buckets.
    int sub = static_cast<int>((frac * 2.0 - 1.0) * kSubBuckets);
    sub = std::clamp(sub, 0, kSubBuckets - 1);
    return 1 + octave * kSubBuckets + sub;
}

double
MetricHistogram::bucketMid(int idx)
{
    if (idx <= 0)
        return 0.0;
    if (idx >= kNumBuckets - 1)
        return std::ldexp(1.0, kMaxExp);
    const int body = idx - 1;
    const int octave = body / kSubBuckets;
    const int sub = body % kSubBuckets;
    const double base = std::ldexp(1.0, kMinExp + octave);
    const double lo =
        base * (1.0 + static_cast<double>(sub) / kSubBuckets);
    const double width = base / kSubBuckets;
    return lo + width * 0.5;
}

void
MetricHistogram::Bins::record(double v)
{
    count.fetch_add(1, std::memory_order_relaxed);
    buckets[bucketIndex(v)].fetch_add(1, std::memory_order_relaxed);
    // CAS-accumulate the double sum.
    uint64_t cur = sum_bits.load(std::memory_order_relaxed);
    while (!sum_bits.compare_exchange_weak(
        cur, packDouble(unpackDouble(cur) + v),
        std::memory_order_relaxed))
        ;
    // Min/max start at +/-inf, so first samples need no special case.
    uint64_t min_cur = min_bits.load(std::memory_order_relaxed);
    while (v < unpackDouble(min_cur) &&
           !min_bits.compare_exchange_weak(min_cur, packDouble(v),
                                           std::memory_order_relaxed))
        ;
    uint64_t max_cur = max_bits.load(std::memory_order_relaxed);
    while (v > unpackDouble(max_cur) &&
           !max_bits.compare_exchange_weak(max_cur, packDouble(v),
                                           std::memory_order_relaxed))
        ;
}

void
MetricHistogram::Bins::reset()
{
    count.store(0, std::memory_order_relaxed);
    sum_bits.store(0, std::memory_order_relaxed);
    min_bits.store(kPosInfBits, std::memory_order_relaxed);
    max_bits.store(kNegInfBits, std::memory_order_relaxed);
    for (auto &b : buckets)
        b.store(0, std::memory_order_relaxed);
}

double
MetricHistogram::Bins::percentile(double q) const
{
    // Derive the rank denominator from the bins themselves (not the
    // separately-stored count), so a query racing a reset or a
    // mid-flight record stays self-consistent.
    uint64_t cum[kNumBuckets];
    uint64_t total = 0;
    for (int i = 0; i < kNumBuckets; ++i) {
        total += buckets[i].load(std::memory_order_relaxed);
        cum[i] = total;
    }
    if (total == 0)
        return 0.0;
    q = std::clamp(q, 0.0, 1.0);
    const uint64_t target = std::max<uint64_t>(
        1, static_cast<uint64_t>(std::ceil(q * total)));
    int idx = 0;
    while (idx < kNumBuckets - 1 && cum[idx] < target)
        ++idx;
    double v = bucketMid(idx);
    // Clamp to the observed range: exact at the extremes, and the
    // underflow/overflow bins report the true min/max instead of 0 /
    // 2^kMaxExp.
    const double lo = unpackDouble(min_bits.load(std::memory_order_relaxed));
    const double hi = unpackDouble(max_bits.load(std::memory_order_relaxed));
    if (std::isfinite(lo) && std::isfinite(hi) && lo <= hi)
        v = std::clamp(v, lo, hi);
    return v;
}

MetricHistogram::~MetricHistogram()
{
    for (auto &slot : domains_)
        delete slot.load(std::memory_order_relaxed);
}

MetricHistogram::Bins *
MetricHistogram::domainBins(int slot)
{
    Bins *b = domains_[slot].load(std::memory_order_acquire);
    if (b)
        return b;
    Bins *fresh = new Bins();
    if (domains_[slot].compare_exchange_strong(
            b, fresh, std::memory_order_acq_rel))
        return fresh;
    delete fresh; // another thread won the race
    return b;
}

const MetricHistogram::Bins *
MetricHistogram::domainBinsIfAny(int slot) const
{
    if (slot < 0 || slot >= kPimMetricMaxDomains)
        return nullptr;
    return domains_[slot].load(std::memory_order_acquire);
}

void
MetricHistogram::record(double v)
{
    agg_.record(v);
    const int d = detail::tls_metric_domain;
    if (d >= 0)
        domainBins(d)->record(v);
}

double
MetricHistogram::sum() const
{
    return unpackDouble(agg_.sum_bits.load(std::memory_order_relaxed));
}

double
MetricHistogram::min() const
{
    if (count() == 0)
        return 0.0;
    return unpackDouble(agg_.min_bits.load(std::memory_order_relaxed));
}

double
MetricHistogram::max() const
{
    if (count() == 0)
        return 0.0;
    return unpackDouble(agg_.max_bits.load(std::memory_order_relaxed));
}

double
MetricHistogram::percentile(double q) const
{
    return agg_.percentile(q);
}

uint64_t
MetricHistogram::countInDomain(int slot) const
{
    const Bins *b = domainBinsIfAny(slot);
    return b ? b->count.load(std::memory_order_relaxed) : 0;
}

double
MetricHistogram::sumInDomain(int slot) const
{
    const Bins *b = domainBinsIfAny(slot);
    return b ? unpackDouble(b->sum_bits.load(std::memory_order_relaxed))
             : 0.0;
}

double
MetricHistogram::minInDomain(int slot) const
{
    const Bins *b = domainBinsIfAny(slot);
    if (!b || b->count.load(std::memory_order_relaxed) == 0)
        return 0.0;
    return unpackDouble(b->min_bits.load(std::memory_order_relaxed));
}

double
MetricHistogram::maxInDomain(int slot) const
{
    const Bins *b = domainBinsIfAny(slot);
    if (!b || b->count.load(std::memory_order_relaxed) == 0)
        return 0.0;
    return unpackDouble(b->max_bits.load(std::memory_order_relaxed));
}

double
MetricHistogram::meanInDomain(int slot) const
{
    const uint64_t n = countInDomain(slot);
    return n ? sumInDomain(slot) / static_cast<double>(n) : 0.0;
}

double
MetricHistogram::percentileInDomain(int slot, double q) const
{
    const Bins *b = domainBinsIfAny(slot);
    return b ? b->percentile(q) : 0.0;
}

void
MetricHistogram::reset()
{
    agg_.reset();
    for (auto &slot : domains_) {
        if (Bins *b = slot.load(std::memory_order_acquire))
            b->reset();
    }
}

void
MetricHistogram::resetDomain(int slot)
{
    if (slot < 0 || slot >= kPimMetricMaxDomains)
        return;
    if (Bins *b = domains_[slot].load(std::memory_order_acquire))
        b->reset();
}

// ---------------------------------------------------------------------------
// PimMetrics
// ---------------------------------------------------------------------------

PimMetrics &
PimMetrics::instance()
{
    // Leaked singleton: magic-static handles cached at instrumentation
    // sites may be touched during static destruction.
    static PimMetrics *metrics = new PimMetrics();
    return *metrics;
}

MetricCounter &
PimMetrics::counter(const std::string &name)
{
    std::lock_guard<std::mutex> lock(mutex_);
    auto &slot = counters_[name];
    if (!slot)
        slot = std::make_unique<MetricCounter>(name);
    return *slot;
}

MetricGauge &
PimMetrics::gauge(const std::string &name)
{
    std::lock_guard<std::mutex> lock(mutex_);
    auto &slot = gauges_[name];
    if (!slot)
        slot = std::make_unique<MetricGauge>(name);
    return *slot;
}

MetricHistogram &
PimMetrics::histogram(const std::string &name)
{
    std::lock_guard<std::mutex> lock(mutex_);
    auto &slot = histograms_[name];
    if (!slot)
        slot = std::make_unique<MetricHistogram>(name);
    return *slot;
}

bool
PimMetrics::get(const std::string &name, double *value) const
{
    std::lock_guard<std::mutex> lock(mutex_);
    if (const auto it = counters_.find(name); it != counters_.end()) {
        if (value)
            *value = static_cast<double>(it->second->value());
        return true;
    }
    if (const auto it = gauges_.find(name); it != gauges_.end()) {
        if (value)
            *value = it->second->value();
        return true;
    }
    if (const auto it = histograms_.find(name);
        it != histograms_.end()) {
        if (value)
            *value = it->second->mean();
        return true;
    }
    return false;
}

namespace {

PimMetricValue
histogramValue(const MetricHistogram &h)
{
    PimMetricValue v;
    v.kind = PimMetricValue::Kind::kHistogram;
    v.count = h.count();
    v.sum = h.sum();
    v.min = h.min();
    v.max = h.max();
    v.value = h.mean();
    v.p50 = h.percentile(0.50);
    v.p90 = h.percentile(0.90);
    v.p99 = h.percentile(0.99);
    v.p999 = h.percentile(0.999);
    return v;
}

PimMetricValue
histogramDomainValue(const MetricHistogram &h, int slot)
{
    PimMetricValue v;
    v.kind = PimMetricValue::Kind::kHistogram;
    v.count = h.countInDomain(slot);
    v.sum = h.sumInDomain(slot);
    v.min = h.minInDomain(slot);
    v.max = h.maxInDomain(slot);
    v.value = h.meanInDomain(slot);
    v.p50 = h.percentileInDomain(slot, 0.50);
    v.p90 = h.percentileInDomain(slot, 0.90);
    v.p99 = h.percentileInDomain(slot, 0.99);
    v.p999 = h.percentileInDomain(slot, 0.999);
    return v;
}

} // namespace

std::map<std::string, PimMetricValue>
PimMetrics::snapshotAll() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    std::map<std::string, PimMetricValue> out;
    for (const auto &[name, c] : counters_) {
        PimMetricValue v;
        v.kind = PimMetricValue::Kind::kCounter;
        v.count = c->value();
        v.value = static_cast<double>(c->value());
        out.emplace(name, v);
    }
    for (const auto &[name, g] : gauges_) {
        PimMetricValue v;
        v.kind = PimMetricValue::Kind::kGauge;
        v.value = g->value();
        out.emplace(name, v);
    }
    for (const auto &[name, h] : histograms_)
        out.emplace(name, histogramValue(*h));
    return out;
}

void
PimMetrics::resetLocked()
{
    for (auto &[name, c] : counters_)
        c->reset();
    for (auto &[name, g] : gauges_)
        g->reset();
    for (auto &[name, h] : histograms_)
        h->reset();
}

void
PimMetrics::reset()
{
    std::lock_guard<std::mutex> lock(mutex_);
    resetLocked();
}

int
PimMetrics::acquireDomain(uint64_t ctx_id)
{
    std::lock_guard<std::mutex> lock(mutex_);
    if (const auto it = domain_of_ctx_.find(ctx_id);
        it != domain_of_ctx_.end())
        return it->second;
    for (int slot = 0; slot < kPimMetricMaxDomains; ++slot) {
        const uint64_t bit = uint64_t{1} << slot;
        if (domain_slots_used_ & bit)
            continue;
        domain_slots_used_ |= bit;
        domain_of_ctx_[ctx_id] = slot;
        return slot;
    }
    return -1; // all slots live; context aggregates only
}

void
PimMetrics::releaseDomain(uint64_t ctx_id)
{
    std::lock_guard<std::mutex> lock(mutex_);
    const auto it = domain_of_ctx_.find(ctx_id);
    if (it == domain_of_ctx_.end())
        return;
    const int slot = it->second;
    domain_of_ctx_.erase(it);
    domain_slots_used_ &= ~(uint64_t{1} << slot);
    // Scrub the slot so the next context reusing it starts clean.
    for (auto &[name, c] : counters_)
        c->resetDomain(slot);
    for (auto &[name, g] : gauges_)
        g->resetDomain(slot);
    for (auto &[name, h] : histograms_)
        h->resetDomain(slot);
}

int
PimMetrics::domainSlot(uint64_t ctx_id) const
{
    std::lock_guard<std::mutex> lock(mutex_);
    const auto it = domain_of_ctx_.find(ctx_id);
    return it == domain_of_ctx_.end() ? -1 : it->second;
}

std::map<std::string, PimMetricValue>
PimMetrics::snapshotDomain(uint64_t ctx_id) const
{
    std::lock_guard<std::mutex> lock(mutex_);
    std::map<std::string, PimMetricValue> out;
    const auto it = domain_of_ctx_.find(ctx_id);
    if (it == domain_of_ctx_.end())
        return out;
    const int slot = it->second;
    for (const auto &[name, c] : counters_) {
        PimMetricValue v;
        v.kind = PimMetricValue::Kind::kCounter;
        v.count = c->valueInDomain(slot);
        v.value = static_cast<double>(v.count);
        out.emplace(name, v);
    }
    for (const auto &[name, g] : gauges_) {
        PimMetricValue v;
        v.kind = PimMetricValue::Kind::kGauge;
        v.value = g->valueInDomain(slot);
        out.emplace(name, v);
    }
    for (const auto &[name, h] : histograms_)
        out.emplace(name, histogramDomainValue(*h, slot));
    return out;
}

void
PimMetrics::printReport(std::ostream &os) const
{
    const auto all = snapshotAll();
    os << "----------------------------------------\n";
    os << "Simulator Metrics:\n";
    os << "  " << padRight("METRIC", 36) << padLeft("VALUE", 16)
       << "\n";
    for (const auto &[name, v] : all) {
        switch (v.kind) {
          case PimMetricValue::Kind::kCounter:
            if (v.count == 0)
                continue;
            os << "  " << padRight(name, 36)
               << padLeft(std::to_string(v.count), 16) << "\n";
            break;
          case PimMetricValue::Kind::kGauge:
            if (v.value == 0.0)
                continue;
            os << "  " << padRight(name, 36)
               << padLeft(formatFixed(v.value, 3), 16) << "\n";
            break;
          case PimMetricValue::Kind::kHistogram:
            if (v.count == 0)
                continue;
            os << "  " << padRight(name, 36)
               << padLeft("mean " + formatFixed(v.value, 3) +
                              " p50 " + formatFixed(v.p50, 3) +
                              " p99 " + formatFixed(v.p99, 3) +
                              " n " + std::to_string(v.count),
                          16)
               << "\n";
            break;
        }
    }
    os << "----------------------------------------\n";
}

void
PimMetrics::dumpJson(std::ostream &os) const
{
    const auto all = snapshotAll();
    os << "{";
    bool first = true;
    auto sep = [&]() {
        if (!first)
            os << ",";
        first = false;
        os << "\n  ";
    };
    const auto flags = os.flags();
    os << std::setprecision(17);
    for (const auto &[name, v] : all) {
        sep();
        os << "\"" << name << "\": ";
        switch (v.kind) {
          case PimMetricValue::Kind::kCounter:
            os << v.count;
            break;
          case PimMetricValue::Kind::kGauge:
            os << v.value;
            break;
          case PimMetricValue::Kind::kHistogram:
            os << "{\"count\": " << v.count << ", \"sum\": " << v.sum
               << ", \"mean\": " << v.value << ", \"min\": " << v.min
               << ", \"max\": " << v.max << ", \"p50\": " << v.p50
               << ", \"p90\": " << v.p90 << ", \"p99\": " << v.p99
               << ", \"p999\": " << v.p999 << "}";
            break;
        }
    }
    os << "\n}\n";
    os.flags(flags);
}

} // namespace pimeval
