/**
 * @file
 * Metrics registry implementation.
 */

#include "core/pim_metrics.h"

#include <algorithm>
#include <cstring>
#include <iomanip>
#include <sstream>

namespace pimeval {

namespace {

// Local formatting helpers: pim_observe sits below pim_util in the
// link order, so it cannot use util/string_utils.

std::string
padRight(const std::string &s, size_t width)
{
    return s.size() >= width ? s : s + std::string(width - s.size(), ' ');
}

std::string
padLeft(const std::string &s, size_t width)
{
    return s.size() >= width ? s : std::string(width - s.size(), ' ') + s;
}

std::string
formatFixed(double v, int precision)
{
    std::ostringstream oss;
    oss << std::fixed << std::setprecision(precision) << v;
    return oss.str();
}

uint64_t
packDouble(double v)
{
    uint64_t b;
    std::memcpy(&b, &v, sizeof(b));
    return b;
}

double
unpackDouble(uint64_t b)
{
    double v;
    std::memcpy(&v, &b, sizeof(v));
    return v;
}

} // namespace

void
MetricHistogram::record(double v)
{
    count_.fetch_add(1, std::memory_order_relaxed);
    // CAS-accumulate the double sum.
    uint64_t cur = sum_bits_.load(std::memory_order_relaxed);
    while (!sum_bits_.compare_exchange_weak(
        cur, packDouble(unpackDouble(cur) + v),
        std::memory_order_relaxed))
        ;
    // Min/max start at +/-inf, so first samples need no special case.
    uint64_t min_cur = min_bits_.load(std::memory_order_relaxed);
    while (v < unpackDouble(min_cur) &&
           !min_bits_.compare_exchange_weak(min_cur, packDouble(v),
                                            std::memory_order_relaxed))
        ;
    uint64_t max_cur = max_bits_.load(std::memory_order_relaxed);
    while (v > unpackDouble(max_cur) &&
           !max_bits_.compare_exchange_weak(max_cur, packDouble(v),
                                            std::memory_order_relaxed))
        ;
}

double
MetricHistogram::sum() const
{
    return unpackDouble(sum_bits_.load(std::memory_order_relaxed));
}

double
MetricHistogram::min() const
{
    if (count() == 0)
        return 0.0;
    return unpackDouble(min_bits_.load(std::memory_order_relaxed));
}

double
MetricHistogram::max() const
{
    if (count() == 0)
        return 0.0;
    return unpackDouble(max_bits_.load(std::memory_order_relaxed));
}

void
MetricHistogram::reset()
{
    count_.store(0, std::memory_order_relaxed);
    sum_bits_.store(0, std::memory_order_relaxed);
    min_bits_.store(kPosInfBits, std::memory_order_relaxed);
    max_bits_.store(kNegInfBits, std::memory_order_relaxed);
}

PimMetrics &
PimMetrics::instance()
{
    // Leaked singleton: magic-static handles cached at instrumentation
    // sites may be touched during static destruction.
    static PimMetrics *metrics = new PimMetrics();
    return *metrics;
}

MetricCounter &
PimMetrics::counter(const std::string &name)
{
    std::lock_guard<std::mutex> lock(mutex_);
    auto &slot = counters_[name];
    if (!slot)
        slot = std::make_unique<MetricCounter>(name);
    return *slot;
}

MetricGauge &
PimMetrics::gauge(const std::string &name)
{
    std::lock_guard<std::mutex> lock(mutex_);
    auto &slot = gauges_[name];
    if (!slot)
        slot = std::make_unique<MetricGauge>(name);
    return *slot;
}

MetricHistogram &
PimMetrics::histogram(const std::string &name)
{
    std::lock_guard<std::mutex> lock(mutex_);
    auto &slot = histograms_[name];
    if (!slot)
        slot = std::make_unique<MetricHistogram>(name);
    return *slot;
}

bool
PimMetrics::get(const std::string &name, double *value) const
{
    std::lock_guard<std::mutex> lock(mutex_);
    if (const auto it = counters_.find(name); it != counters_.end()) {
        if (value)
            *value = static_cast<double>(it->second->value());
        return true;
    }
    if (const auto it = gauges_.find(name); it != gauges_.end()) {
        if (value)
            *value = it->second->value();
        return true;
    }
    if (const auto it = histograms_.find(name);
        it != histograms_.end()) {
        if (value)
            *value = it->second->mean();
        return true;
    }
    return false;
}

std::map<std::string, PimMetricValue>
PimMetrics::snapshotAll() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    std::map<std::string, PimMetricValue> out;
    for (const auto &[name, c] : counters_) {
        PimMetricValue v;
        v.kind = PimMetricValue::Kind::kCounter;
        v.count = c->value();
        v.value = static_cast<double>(c->value());
        out.emplace(name, v);
    }
    for (const auto &[name, g] : gauges_) {
        PimMetricValue v;
        v.kind = PimMetricValue::Kind::kGauge;
        v.value = g->value();
        out.emplace(name, v);
    }
    for (const auto &[name, h] : histograms_) {
        PimMetricValue v;
        v.kind = PimMetricValue::Kind::kHistogram;
        v.count = h->count();
        v.sum = h->sum();
        v.min = h->min();
        v.max = h->max();
        v.value = h->mean();
        out.emplace(name, v);
    }
    return out;
}

void
PimMetrics::reset()
{
    std::lock_guard<std::mutex> lock(mutex_);
    for (auto &[name, c] : counters_)
        c->reset();
    for (auto &[name, g] : gauges_)
        g->reset();
    for (auto &[name, h] : histograms_)
        h->reset();
}

void
PimMetrics::printReport(std::ostream &os) const
{
    const auto all = snapshotAll();
    os << "----------------------------------------\n";
    os << "Simulator Metrics:\n";
    os << "  " << padRight("METRIC", 36) << padLeft("VALUE", 16)
       << "\n";
    for (const auto &[name, v] : all) {
        switch (v.kind) {
          case PimMetricValue::Kind::kCounter:
            if (v.count == 0)
                continue;
            os << "  " << padRight(name, 36)
               << padLeft(std::to_string(v.count), 16) << "\n";
            break;
          case PimMetricValue::Kind::kGauge:
            if (v.value == 0.0)
                continue;
            os << "  " << padRight(name, 36)
               << padLeft(formatFixed(v.value, 3), 16) << "\n";
            break;
          case PimMetricValue::Kind::kHistogram:
            if (v.count == 0)
                continue;
            os << "  " << padRight(name, 36)
               << padLeft("mean " + formatFixed(v.value, 3) + " n " +
                              std::to_string(v.count),
                          16)
               << "\n";
            break;
        }
    }
    os << "----------------------------------------\n";
}

void
PimMetrics::dumpJson(std::ostream &os) const
{
    const auto all = snapshotAll();
    os << "{";
    bool first = true;
    auto sep = [&]() {
        if (!first)
            os << ",";
        first = false;
        os << "\n  ";
    };
    const auto flags = os.flags();
    os << std::setprecision(17);
    for (const auto &[name, v] : all) {
        sep();
        os << "\"" << name << "\": ";
        switch (v.kind) {
          case PimMetricValue::Kind::kCounter:
            os << v.count;
            break;
          case PimMetricValue::Kind::kGauge:
            os << v.value;
            break;
          case PimMetricValue::Kind::kHistogram:
            os << "{\"count\": " << v.count << ", \"sum\": " << v.sum
               << ", \"mean\": " << v.value << ", \"min\": " << v.min
               << ", \"max\": " << v.max << "}";
            break;
        }
    }
    os << "\n}\n";
    os.flags(flags);
}

} // namespace pimeval
