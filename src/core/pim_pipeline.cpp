/**
 * @file
 * Pipeline implementation: hazard tracking, out-of-order dispatch,
 * in-order commit.
 */

#include "core/pim_pipeline.h"

#include <algorithm>
#include <chrono>
#include <cstdlib>

#include "core/pim_metrics.h"
#include "core/pim_runtime_config.h"
#include "core/pim_trace.h"

namespace pimeval {

void
PimStatsDelta::applyTo(PimStatsMgr &stats) const
{
    for (const auto &rec : cmds)
        stats.recordCmd(rec.id, rec.cost);
    for (const auto &rec : copies)
        stats.recordCopy(rec.direction, rec.bytes, rec.cost);
    if (host_raw_sec != 0.0)
        stats.addHostTimeRaw(host_raw_sec);
    if (host_measured_sec != 0.0)
        stats.addHostTime(host_measured_sec);
}

uint64_t
PimPipeline::monoNs()
{
    return static_cast<uint64_t>(
        std::chrono::duration_cast<std::chrono::nanoseconds>(
            std::chrono::steady_clock::now().time_since_epoch())
            .count());
}

PimPipeline::PimPipeline(PimStatsMgr &stats, size_t num_workers,
                         const std::string &name_prefix,
                         int metric_domain)
    : stats_(stats), metric_domain_(metric_domain)
{
    if (num_workers == 0) {
        const size_t hw = std::thread::hardware_concurrency();
        // At least two so out-of-order dispatch is real even on a
        // single-core host; more never helps beyond a few concurrent
        // chains because intra-command kernels use the shared pool.
        num_workers = std::clamp<size_t>(hw, 2, 6);
    }
    // On a single-core host a worker thread cannot overlap with the
    // issuer — handing a hazard-free command to a worker only buys a
    // context-switch round trip per command. Execute such commands
    // inline at enqueue instead (see enqueue()). Overridable for
    // tests via PIMEVAL_PIPELINE_INLINE=0/1 (or the runtime config).
    const int inline_knob =
        pimResolveRuntimeConfig().pipeline_inline.value;
    inline_when_idle_ = inline_knob >= 0
        ? inline_knob != 0
        : std::thread::hardware_concurrency() <= 1;
    const std::string prefix =
        name_prefix.empty() ? "pipeline-worker-" : name_prefix;
    workers_.reserve(num_workers);
    for (size_t i = 0; i < num_workers; ++i) {
        workers_.emplace_back([this, i, prefix] {
            PimTracer::instance().setThreadName(
                prefix + std::to_string(i));
            PimMetrics::setThreadDomain(metric_domain_);
            workerLoop();
        });
    }
}

PimPipeline::~PimPipeline()
{
    sync();
    {
        std::lock_guard<std::mutex> lock(mutex_);
        stopping_ = true;
    }
    ready_cv_.notify_all();
    for (auto &worker : workers_)
        worker.join();
}

PimPipeline::Command *
PimPipeline::command(uint64_t seq)
{
    if (seq < base_seq_ || seq >= base_seq_ + commands_.size())
        return nullptr;
    return commands_[seq - base_seq_].get();
}

void
PimPipeline::addDep(std::vector<uint64_t> &deps, uint64_t dep) const
{
    if (dep == ObjAccess::kNone || dep < base_seq_)
        return;
    if (std::find(deps.begin(), deps.end(), dep) == deps.end())
        deps.push_back(dep);
}

void
PimPipeline::markReady(uint64_t seq)
{
    if (Command *cmd = command(seq)) {
        cmd->ready_ns = monoNs();
        if (cmd->stalled && cmd->ready_ns > cmd->enqueue_ns)
            PIM_METRIC_RECORD("pipeline.hazard_stall_ns",
                              cmd->ready_ns - cmd->enqueue_ns);
    }
    ready_.push_back(seq);
    ready_cv_.notify_one();
}

void
PimPipeline::commitFrontier()
{
    uint64_t committed = 0;
    while (!commands_.empty() && commands_.front()->executed) {
        commands_.front()->delta.applyTo(stats_);
        commands_.pop_front();
        ++base_seq_;
        ++committed;
    }
    if (committed) {
        PIM_METRIC_COUNT("pipeline.committed", committed);
        PIM_TRACE_INSTANT("pipeline.commit", "pipeline", base_seq_);
    }
}

uint64_t
PimPipeline::enqueue(const std::vector<PimObjId> &reads,
                     const std::vector<PimObjId> &writes, CommandFn fn)
{
    std::unique_lock<std::mutex> lock(mutex_);
    if (next_seq_ - base_seq_ >= kMaxInFlight) {
        PIM_METRIC_COUNT("pipeline.backpressure", 1);
        while (next_seq_ - base_seq_ >= kMaxInFlight) {
            if (helpExecuteOne(lock))
                continue;
            done_cv_.wait(lock, [&] {
                return next_seq_ - base_seq_ < kMaxInFlight ||
                    !ready_.empty();
            });
        }
    }

    const uint64_t seq = next_seq_++;
    auto cmd = std::make_unique<Command>();
    cmd->fn = std::move(fn);
    cmd->enqueue_ns = monoNs();

    // Hazard collection. In-place updates list the object in both
    // sets; the write rules subsume the read rules for those.
    // Dependency edges are classified by the rule that first finds
    // them (addDep deduplicates, so an edge counts once).
    std::vector<uint64_t> deps;
    size_t raw_edges = 0, waw_edges = 0, war_edges = 0;
    for (const PimObjId obj : reads) {
        const auto it = objects_.find(obj);
        if (it != objects_.end()) {
            const size_t before = deps.size();
            addDep(deps, it->second.last_writer); // RAW
            raw_edges += deps.size() - before;
        }
    }
    for (const PimObjId obj : writes) {
        const auto it = objects_.find(obj);
        if (it == objects_.end())
            continue;
        size_t before = deps.size();
        addDep(deps, it->second.last_writer); // WAW
        waw_edges += deps.size() - before;
        before = deps.size();
        for (const uint64_t reader : it->second.readers)
            addDep(deps, reader); // WAR
        war_edges += deps.size() - before;
    }
    if (raw_edges)
        PIM_METRIC_COUNT("pipeline.hazard.raw", raw_edges);
    if (waw_edges)
        PIM_METRIC_COUNT("pipeline.hazard.waw", waw_edges);
    if (war_edges)
        PIM_METRIC_COUNT("pipeline.hazard.war", war_edges);

    // Update tracking. Writes clear the reader list; a pure read
    // appends to it.
    for (const PimObjId obj : writes) {
        ObjAccess &access = objects_[obj];
        access.last_writer = seq;
        access.readers.clear();
    }
    for (const PimObjId obj : reads) {
        if (std::find(writes.begin(), writes.end(), obj) !=
            writes.end())
            continue;
        auto &readers = objects_[obj].readers;
        // A long read-only run (e.g. repeated reductions) would grow
        // the list without bound; drop executed readers occasionally.
        if (readers.size() >= 32) {
            readers.erase(
                std::remove_if(readers.begin(), readers.end(),
                               [this](uint64_t s) {
                                   const Command *c = command(s);
                                   return c == nullptr || c->executed;
                               }),
                readers.end());
        }
        readers.push_back(seq);
    }

    // Register with unexecuted dependencies.
    uint32_t unmet = 0;
    for (const uint64_t dep : deps) {
        Command *dep_cmd = command(dep);
        if (dep_cmd && !dep_cmd->executed) {
            dep_cmd->dependents.push_back(seq);
            ++unmet;
        }
    }
    cmd->unmet_deps = unmet;
    cmd->stalled = unmet != 0;
    if (unmet)
        PIM_METRIC_COUNT("pipeline.issued_stalled", 1);
    commands_.push_back(std::move(cmd));
    PIM_METRIC_COUNT("pipeline.issued", 1);
    PIM_METRIC_RECORD("pipeline.depth", next_seq_ - base_seq_);
    PIM_TRACE_INSTANT("pipeline.issue", "pipeline", seq);
    PIM_TRACE_COUNTER("pipeline.in_flight", next_seq_ - base_seq_);
    // Single-core fast path: a hazard-free command with nothing else
    // in flight IS the commit frontier — executing it here preserves
    // in-order commit exactly and skips the worker wake/sleep round
    // trip that dominates small-command dispatch on one core.
    if (unmet == 0 && inline_when_idle_ &&
        next_seq_ - base_seq_ == 1) {
        PIM_METRIC_COUNT("pipeline.inline_exec", 1);
        executeOne(seq, lock);
        return seq;
    }
    if (unmet == 0)
        markReady(seq);
    return seq;
}

void
PimPipeline::waitSeq(uint64_t seq)
{
    std::unique_lock<std::mutex> lock(mutex_);
    for (;;) {
        const Command *cmd = command(seq);
        if (cmd == nullptr || cmd->executed)
            return;
        if (helpExecuteOne(lock))
            continue;
        done_cv_.wait(lock, [&] {
            const Command *c = command(seq);
            return c == nullptr || c->executed || !ready_.empty();
        });
    }
}

void
PimPipeline::waitObject(PimObjId obj)
{
    std::unique_lock<std::mutex> lock(mutex_);
    const auto it = objects_.find(obj);
    if (it == objects_.end())
        return;
    // The last writer's WAR dependencies cover all readers before it;
    // only the current readers and the last writer itself can still
    // be in flight.
    std::vector<uint64_t> targets = it->second.readers;
    if (it->second.last_writer != ObjAccess::kNone)
        targets.push_back(it->second.last_writer);
    const auto pending = [&] {
        for (const uint64_t seq : targets) {
            const Command *cmd = command(seq);
            if (cmd && !cmd->executed)
                return true;
        }
        return false;
    };
    while (pending()) {
        if (helpExecuteOne(lock))
            continue;
        done_cv_.wait(
            lock, [&] { return !pending() || !ready_.empty(); });
    }
    objects_.erase(obj);
}

void
PimPipeline::sync()
{
    std::unique_lock<std::mutex> lock(mutex_);
    if (base_seq_ == next_seq_)
        return;
    const uint64_t drain_start_ns = monoNs();
    while (base_seq_ != next_seq_) {
        if (helpExecuteOne(lock))
            continue;
        done_cv_.wait(lock, [&] {
            return base_seq_ == next_seq_ || !ready_.empty();
        });
    }
    PIM_METRIC_RECORD("pipeline.sync_drain_ns",
                      monoNs() - drain_start_ns);
}

void
PimPipeline::drainAndRun(const std::function<void()> &fn)
{
    std::unique_lock<std::mutex> lock(mutex_);
    const bool had_pending = base_seq_ != next_seq_;
    const uint64_t drain_start_ns = had_pending ? monoNs() : 0;
    while (base_seq_ != next_seq_) {
        if (helpExecuteOne(lock))
            continue;
        done_cv_.wait(lock, [&] {
            return base_seq_ == next_seq_ || !ready_.empty();
        });
    }
    if (had_pending)
        PIM_METRIC_RECORD("pipeline.sync_drain_ns",
                          monoNs() - drain_start_ns);
    // Still holding the mutex: enqueue and commitFrontier are
    // excluded, so fn observes (and may clear) a fully quiesced
    // statistics state.
    fn();
}

bool
PimPipeline::idle() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return base_seq_ == next_seq_;
}

bool
PimPipeline::beginInline()
{
    if (!inline_when_idle_)
        return false;
    {
        std::lock_guard<std::mutex> lock(mutex_);
        if (base_seq_ != next_seq_)
            return false;
        // Reserve the sequence number so concurrent observers
        // (idle(), another context's monitoring) see the command in
        // flight. commands_ stays empty: command() reports the seq
        // as retired, which is what waitSeq/waitObject need.
        ++next_seq_;
    }
    PIM_METRIC_COUNT("pipeline.issued", 1);
    PIM_METRIC_COUNT("pipeline.inline_exec", 1);
    PIM_METRIC_RECORD("pipeline.depth", 1);
    return true;
}

void
PimPipeline::endInline()
{
    {
        std::lock_guard<std::mutex> lock(mutex_);
        ++base_seq_;
    }
    PIM_METRIC_COUNT("pipeline.executed", 1);
    PIM_METRIC_COUNT("pipeline.committed", 1);
    done_cv_.notify_all();
}

void
PimPipeline::executeOne(uint64_t seq,
                        std::unique_lock<std::mutex> &lock)
{
    Command *cmd = command(seq);
    lock.unlock();

    {
        PIM_TRACE_SCOPE_ARG("pipeline.execute", "pipeline", seq);
        const uint64_t exec_start_ns = monoNs();
        // ready_ns is 0 for inline-bypass commands (never queued).
        if (cmd->ready_ns && exec_start_ns > cmd->ready_ns)
            PIM_METRIC_RECORD("pipeline.queue_wait_ns",
                              exec_start_ns - cmd->ready_ns);
        cmd->fn(cmd->delta);
        const uint64_t exec_ns = monoNs() - exec_start_ns;
        PIM_METRIC_COUNT("pipeline.exec_ns", exec_ns);
        PIM_METRIC_RECORD("pipeline.cmd_exec_ns", exec_ns);
        PIM_METRIC_COUNT("pipeline.executed", 1);
    }
    // Release the closure eagerly: H2D snapshots live in the
    // bound arguments, and commit may lag behind execution.
    cmd->fn = nullptr;

    lock.lock();
    cmd->executed = true;
    for (const uint64_t dependent : cmd->dependents) {
        Command *dep_cmd = command(dependent);
        if (dep_cmd && --dep_cmd->unmet_deps == 0)
            markReady(dependent);
    }
    commitFrontier();
    done_cv_.notify_all();
}

bool
PimPipeline::helpExecuteOne(std::unique_lock<std::mutex> &lock)
{
    if (ready_.empty())
        return false;
    const uint64_t seq = ready_.front();
    ready_.pop_front();
    executeOne(seq, lock);
    PIM_METRIC_COUNT("pipeline.issuer_executed", 1);
    return true;
}

void
PimPipeline::workerLoop()
{
    std::unique_lock<std::mutex> lock(mutex_);
    for (;;) {
        ready_cv_.wait(lock,
                       [&] { return stopping_ || !ready_.empty(); });
        if (stopping_)
            return;
        const uint64_t seq = ready_.front();
        ready_.pop_front();
        executeOne(seq, lock);
    }
}

} // namespace pimeval
