/**
 * @file
 * Device configuration and DRAM parameters (paper Table II defaults).
 *
 * All timing, current, and geometry parameters used by the performance
 * and energy models live here, with the Table II / DDR4 datasheet
 * values as defaults. Every parameter can be overridden to support the
 * paper's sensitivity analyses (Figs. 6, 12, 13) and the ablation
 * benches.
 */

#ifndef PIMEVAL_CORE_PIM_PARAMS_H_
#define PIMEVAL_CORE_PIM_PARAMS_H_

#include <cstdint>
#include <string>

#include "core/pim_types.h"

namespace pimeval {

/**
 * DDR4 timing and current parameters used by the performance and
 * energy models. Defaults follow the paper's reported numbers plus a
 * representative DDR4-3200 x8 datasheet (Micron power model TN-40-07
 * inputs).
 */
struct PimDramParams
{
    // --- Timing (nanoseconds) ---
    /** Full row read into the local row buffer (paper: 28.5 ns). */
    double row_read_ns = 28.5;
    /** Full row write back from the row buffer (paper: 43.5 ns). */
    double row_write_ns = 43.5;
    /** Column-to-column delay, also the GDL beat time (paper: 3 ns). */
    double tccd_ns = 3.0;
    /** Row active time. */
    double tras_ns = 32.0;
    /** Row precharge time. */
    double trp_ns = 13.75;
    /** Latency of one row-wide bit-serial logic micro-op. */
    double logic_op_ns = 1.0;
    /** LISA row-buffer-movement latency per row (Chang et al.):
     *  links between adjacent subarrays copy a row without a full
     *  read+write round trip. */
    double lisa_row_copy_ns = 18.0;

    // --- Bandwidth ---
    /** Rank interface bandwidth in GB/s (paper: 25.6 GB/s). */
    double rank_bw_gbps = 25.6;

    // --- Currents/voltage for the Micron power model (per x8 chip) ---
    double vdd = 1.2;
    double idd0_ma = 55.0;   ///< one-bank ACT-PRE current
    double idd2n_ma = 34.0;  ///< precharge standby
    double idd3n_ma = 44.0;  ///< active standby
    double idd4r_ma = 150.0; ///< burst read
    double idd4w_ma = 145.0; ///< burst write

    // --- Modeled PE energies (documented substitution; see DESIGN.md) ---
    /** Energy of one row-wide bit-serial logic micro-op, per bit (J). */
    double bitserial_logic_j_per_bit = 10e-15;
    /** Energy of one 32-bit Fulcrum ALU operation (J). */
    double fulcrum_alu_op_j = 10e-12;
    /** Energy of one 128-bit bank-level ALPU operation (J). */
    double bank_alu_op_j = 30e-12;
    /** GDL transfer energy per bit (J), scaled from LISA. */
    double gdl_j_per_bit = 0.5e-12;

    /**
     * Energy of one ACT+PRE pair per chip, joules. Micron TN-40-07
     * Eq. (2): AP = VDD*(IDD0*(tRAS+tRP) - (IDD3N*tRAS + IDD2N*tRP)).
     * Currents in mA and times in ns give 1e-12 A*s.
     */
    double actPreEnergy() const
    {
        const double charge = idd0_ma * (tras_ns + trp_ns) -
            (idd3n_ma * tras_ns + idd2n_ma * trp_ns);
        return vdd * charge * 1e-12;
    }

    /** Read burst power per chip, Micron Eq. (1), watts. */
    double readPower() const
    {
        return vdd * (idd4r_ma - idd3n_ma) * 1e-3;
    }

    /** Write burst power per chip, watts. */
    double writePower() const
    {
        return vdd * (idd4w_ma - idd3n_ma) * 1e-3;
    }

    /** Background power delta (active vs precharged standby), watts. */
    double backgroundPowerDelta() const
    {
        return vdd * (idd3n_ma - idd2n_ma) * 1e-3;
    }
};

/**
 * Geometry and clocking of a simulated PIM device.
 *
 * Defaults correspond to the paper's evaluated configuration: 32 GB
 * DDR4, 32 ranks, 128 banks/rank (8 chips x 16 banks), 32 subarrays
 * per bank, 1024 x 8192 subarrays.
 */
struct PimDeviceConfig
{
    PimDeviceEnum device = PimDeviceEnum::PIM_DEVICE_BITSIMD_V_AP;

    uint64_t num_ranks = 32;
    uint64_t num_banks_per_rank = 128;
    uint64_t num_subarrays_per_bank = 32;
    uint64_t num_rows_per_subarray = 1024;
    uint64_t num_cols_per_row = 8192;

    /** Fulcrum / bank-level ALPU clock (paper: 167 MHz). */
    double alu_freq_mhz = 167.0;
    /** Fulcrum ALU width in bits (paper models 32-bit ALPUs). */
    unsigned fulcrum_alu_bits = 32;
    /** Bank-level processing-unit width in bits (paper: 128). */
    unsigned bank_alu_bits = 128;
    /** GDL width in bits (paper assumes 128 to be generous). */
    unsigned gdl_bits = 128;
    /** SWAR popcount cycles on the Fulcrum ALU (paper: 12). */
    unsigned fulcrum_popcount_cycles = 12;

    /**
     * Cycle-level transfer timing ("DRAMsim3-lite"): when true,
     * host<->device copies are timed on the command-level channel
     * model with ranks sharing num_channels channels, instead of the
     * paper's rank-independent flat-bandwidth model (its stated
     * DRAMsim3-integration future work).
     */
    bool use_dram_timing = false;
    /** Independent channels for the cycle/LUT timing backends (0 =
     *  one channel per rank, i.e., the paper's simplification). */
    uint64_t num_channels = 0;

    /**
     * Memory-timing backend for host<->device transfer costing
     * (src/dram/mem_timing_backend.h). DEFAULT resolves at device
     * creation: explicit value > PIMEVAL_MEM_BACKEND env >
     * use_dram_timing (legacy alias for CYCLE) > LUT. The LUT fast
     * path — calibrated from the cycle backend, O(1) per costCopy —
     * is the simulator-wide default; ANALYTICAL restores the paper's
     * flat bytes/bandwidth model exactly.
     */
    PimMemBackend mem_backend = PimMemBackend::PIM_MEM_BACKEND_DEFAULT;

    /** Address-interleave order of the cycle-level transfer model
     *  (and the LUT calibrated from it). */
    PimAddrMap addr_map = PimAddrMap::PIM_ADDR_MAP_BANK_FIRST;

    /**
     * LISA inter-subarray links (Chang et al.): Fulcrum assumes
     * adjacent subarrays can exchange rows this way, a feature the
     * paper's benchmarks leave unused ("that is left for future
     * work"). When enabled, device-to-device copies on the
     * subarray-level targets move rows at lisa_row_copy_ns instead
     * of a full read + write.
     */
    bool use_lisa = false;

    PimDramParams dram;

    /** Total subarrays across the device. */
    uint64_t totalSubarrays() const
    {
        return num_ranks * num_banks_per_rank * num_subarrays_per_bank;
    }

    /** Number of PIM cores for the selected device type. */
    uint64_t numCores() const;

    /** Rows available within one PIM core. */
    uint64_t rowsPerCore() const;

    /** Columns (row-buffer bits) within one PIM core. */
    uint64_t colsPerCore() const { return num_cols_per_row; }

    /** Aggregate host<->device bandwidth in bytes/second. The paper
     *  treats ranks as independent channels. */
    double hostBandwidthBytesPerSec() const
    {
        return dram.rank_bw_gbps * 1e9 * static_cast<double>(num_ranks);
    }

    /** ALU cycle time in seconds. */
    double aluPeriodSec() const { return 1e-6 / alu_freq_mhz; }

    /** Total device capacity in bytes. */
    uint64_t capacityBytes() const
    {
        return totalSubarrays() * num_rows_per_subarray *
            num_cols_per_row / 8;
    }

    /** Human-readable one-line summary. */
    std::string summary() const;
};

/**
 * Host baseline parameters (paper Table II) used by the analytical
 * CPU/GPU models.
 */
struct HostParams
{
    // AMD EPYC 9124.
    double cpu_cores = 16.0;
    double cpu_freq_ghz = 3.71;
    double cpu_tdp_w = 200.0;
    double cpu_mem_bw_gbps = 460.8;
    /** SIMD lanes for 32-bit ops (AVX-512 on Zen 4). */
    double cpu_simd_lanes = 8.0;
    /** Idle power while waiting for PIM (paper: 10 W). */
    double cpu_idle_w = 10.0;

    // NVIDIA A100.
    double gpu_tdp_w = 300.0;
    double gpu_mem_bw_gbps = 1935.0;
    double gpu_peak_tflops = 19.5;

    // Achievable fractions of the theoretical peaks. The paper's
    // baselines are measured on real software (OpenMP/OpenBLAS,
    // cuBLAS/Thrust), which sustains well below datasheet peaks;
    // the roofline substitutes use STREAM-style efficiency factors
    // so modeled baselines approximate measured ones (DESIGN.md).
    double cpu_bw_efficiency = 0.65;
    double cpu_compute_efficiency = 0.5;
    double gpu_bw_efficiency = 0.75;
    double gpu_compute_efficiency = 0.6;

    /** Peak CPU 32-bit integer op throughput (ops/s). */
    double cpuPeakOpsPerSec() const
    {
        return cpu_cores * cpu_freq_ghz * 1e9 * cpu_simd_lanes;
    }

    /** Peak GPU op throughput (ops/s). */
    double gpuPeakOpsPerSec() const { return gpu_peak_tflops * 1e12; }
};

} // namespace pimeval

#endif // PIMEVAL_CORE_PIM_PARAMS_H_
