/**
 * @file
 * Context-handle API implementation: thin veneer over the PimSim
 * registry.
 */

#include "core/pim_context.h"

#include "core/pim_sim.h"

using pimeval::PimSim;

PimContext
pimCreateContext(PimDeviceEnum device, const char *label)
{
    pimeval::PimDeviceConfig config;
    config.device = device;
    return pimCreateContextFromConfig(config, label);
}

PimContext
pimCreateContextFromConfig(const pimeval::PimDeviceConfig &config,
                           const char *label)
{
    return PimSim::instance().createContext(
        config, label ? std::string(label) : std::string());
}

PimStatus
pimDestroyContext(PimContext ctx)
{
    return PimSim::instance().destroyContext(ctx);
}

PimStatus
pimSetCurrentContext(PimContext ctx)
{
    return PimSim::instance().setCurrentContext(ctx);
}

PimContext
pimGetCurrentContext()
{
    return PimSim::instance().currentContext();
}

uint32_t
pimContextId(PimContext ctx)
{
    return ctx ? ctx->id : 0;
}

const char *
pimContextLabel(PimContext ctx)
{
    return ctx ? ctx->label.c_str() : "";
}

PimDeviceEnum
pimContextDeviceType(PimContext ctx)
{
    return ctx && ctx->device
        ? ctx->device->config().device
        : PimDeviceEnum::PIM_DEVICE_NONE;
}

PimMemBackend
pimContextMemBackend(PimContext ctx)
{
    return ctx && ctx->device && ctx->device->model()
        ? ctx->device->model()->memBackendKind()
        : PimMemBackend::PIM_MEM_BACKEND_DEFAULT;
}

std::map<std::string, pimeval::PimMetricValue>
pimContextMetrics(PimContext ctx)
{
    if (!ctx || !PimSim::instance().validContext(ctx))
        return {};
    return pimeval::PimMetrics::instance().snapshotDomain(ctx->id);
}
