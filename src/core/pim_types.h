/**
 * @file
 * Fundamental types for the PIMeval reproduction: device targets, data
 * types, allocation strategies, status codes, and command identifiers.
 *
 * Names intentionally mirror the public PIMeval API so that programs
 * written against the original library read the same here.
 */

#ifndef PIMEVAL_CORE_PIM_TYPES_H_
#define PIMEVAL_CORE_PIM_TYPES_H_

#include <cstdint>
#include <string>

/** Handle for a PIM data object; -1 indicates failure. */
using PimObjId = int32_t;

/** Status code returned by every PIM API call. */
enum class PimStatus {
    PIM_ERROR = 0,
    PIM_OK = 1,
};

/**
 * Simulation targets: the three digital DRAM PIM architectures modeled
 * in the paper (Section IV).
 */
enum class PimDeviceEnum {
    PIM_DEVICE_NONE = 0,
    /** Subarray-level digital bit-serial PIM with associative
     *  processing support ("DRAM-AP" in the paper). */
    PIM_DEVICE_BITSIMD_V_AP,
    /** Subarray-level bit-parallel PIM (Fulcrum adapted to DDR). */
    PIM_DEVICE_FULCRUM,
    /** Bank-level PIM: Fulcrum-style ALPU behind the GDL. */
    PIM_DEVICE_BANK_LEVEL,
    /** Analog bit-serial PIM (Ambit/SIMDRAM-style TRA majority
     *  logic) — the analog-technique extension the paper lists as
     *  in-progress PIMeval work. */
    PIM_DEVICE_SIMDRAM,
};

/** Element data types supported by the simulator. */
enum class PimDataType {
    PIM_BOOL = 0,
    PIM_INT8,
    PIM_INT16,
    PIM_INT32,
    PIM_INT64,
    PIM_UINT8,
    PIM_UINT16,
    PIM_UINT32,
    PIM_UINT64,
};

/** Data layout / allocation strategies. */
enum class PimAllocEnum {
    /** Pick the native layout of the current device: vertical for
     *  bit-serial, horizontal for bit-parallel. */
    PIM_ALLOC_AUTO = 0,
    /** Vertical: element bits laid out down the bitlines. */
    PIM_ALLOC_V,
    /** Horizontal: element bits contiguous within a row. */
    PIM_ALLOC_H,
};

/** Direction of a host<->device or device<->device copy. */
enum class PimCopyEnum {
    PIM_COPY_H2D = 0,
    PIM_COPY_D2H,
    PIM_COPY_D2D,
};

/**
 * Memory-timing backend costing host<->device transfers
 * (PimDeviceConfig::mem_backend, PIMEVAL_MEM_BACKEND).
 *
 * DEFAULT resolves at device creation: an explicit config value wins,
 * then the PIMEVAL_MEM_BACKEND environment variable
 * (cycle|analytical|lut), then the legacy use_dram_timing flag (a
 * compatibility alias for CYCLE), and finally LUT — the calibrated
 * fast path is the simulator-wide default.
 */
enum class PimMemBackend {
    PIM_MEM_BACKEND_DEFAULT = 0,
    /** Cycle-stepped channel model ("DRAMsim3-lite"): per-bank state
     *  machines, row-buffer policy, shared bus, rank-switch bubbles.
     *  Exact but pays a full channel drain per uncached shape. */
    PIM_MEM_BACKEND_CYCLE,
    /** The paper's flat bytes/bandwidth model (Section V-C),
     *  preserved for reproduction parity. */
    PIM_MEM_BACKEND_ANALYTICAL,
    /** Lookup table calibrated from the cycle backend once per
     *  (timing, topology, mapping) tuple; O(1) lock-free reads,
     *  within a few percent of CYCLE. */
    PIM_MEM_BACKEND_LUT,
};

/**
 * DRAM address-interleave order used by the cycle-level transfer
 * model (and the LUT calibrated from it) when laying a sequential
 * byte stream out as column accesses.
 */
enum class PimAddrMap {
    /** Consecutive 64B blocks rotate across banks; rank switches at
     *  row-group granularity (default; maximizes bank-level
     *  parallelism, amortizes rank-switch bubbles). */
    PIM_ADDR_MAP_BANK_FIRST = 0,
    /** Consecutive blocks rotate across ranks first: exposes the
     *  rank-to-rank data-bus switch penalty on every access. */
    PIM_ADDR_MAP_RANK_FIRST,
    /** Fill a whole row in one bank before advancing: maximal row
     *  hits, but same-bank column timing bounds the stream. */
    PIM_ADDR_MAP_ROW_FIRST,
};

/**
 * Execution mode of the active device (pimSetExecMode).
 *
 * In PIM_EXEC_SYNC every API call runs functional execution and
 * perf/energy modeling before returning (the classic PIMeval shape).
 * In PIM_EXEC_ASYNC non-blocking calls enqueue a command carrying
 * read/write sets of object ids into the device pipeline; a scheduler
 * dispatches commands whose RAW/WAR/WAW dependencies have executed, so
 * independent chains overlap. Statistics are committed strictly in
 * issue order, making final stats bit-identical to sync mode.
 * Blocking points (pimCopyDeviceToHost, pimRedSum, pimFree, stats
 * queries, pimSync) drain only the dependency cone they need.
 */
enum class PimExecEnum {
    PIM_EXEC_SYNC = 0,
    PIM_EXEC_ASYNC,
};

/**
 * Command identifiers for all modeled PIM operations.
 *
 * These drive functional execution, performance costing, energy
 * costing, and the per-command statistics (paper Listing 3 and the
 * Fig. 8 operation-mix analysis).
 */
enum class PimCmdEnum {
    kNone = 0,
    // Two-operand element-wise arithmetic.
    kAdd,
    kSub,
    kMul,
    kDiv,
    kMin,
    kMax,
    // One-operand arithmetic.
    kAbs,
    // Two-operand element-wise logical.
    kAnd,
    kOr,
    kXor,
    kXnor,
    kNot,
    // Comparisons (result element = 0/1).
    kGT,
    kLT,
    kEQ,
    kNE,
    // Scalar-operand variants (scalar broadcast from the controller).
    kAddScalar,
    kSubScalar,
    kMulScalar,
    kDivScalar,
    kMinScalar,
    kMaxScalar,
    kAndScalar,
    kOrScalar,
    kXorScalar,
    kGTScalar,
    kLTScalar,
    kEQScalar,
    // Fused multiply-add with a scalar (AXPY inner op).
    kScaledAdd,
    // Bit shifts by a constant amount.
    kShiftBitsLeft,
    kShiftBitsRight,
    // Element shifts/rotations by one position across the vector.
    kShiftElementsLeft,
    kShiftElementsRight,
    kRotateElementsLeft,
    kRotateElementsRight,
    // Per-element population count.
    kPopCount,
    // Reduction sum (whole object or range).
    kRedSum,
    // Broadcast a scalar to all elements.
    kBroadcast,
    // Data movement (tracked separately in stats, but costed as cmds).
    kCopyH2D,
    kCopyD2H,
    kCopyD2D,
};

/** Bits per element of a data type. */
unsigned pimBitsOfDataType(PimDataType data_type);

/** Whether the data type is signed. */
bool pimIsSigned(PimDataType data_type);

/** Short lowercase name, e.g., "int32". */
std::string pimDataTypeName(PimDataType data_type);

/** Device name string, e.g., "PIM_DEVICE_FULCRUM". */
std::string pimDeviceName(PimDeviceEnum device);

/** Execution mode name, e.g., "PIM_EXEC_ASYNC". */
std::string pimExecModeName(PimExecEnum mode);

/** Backend name as used by PIMEVAL_MEM_BACKEND: "cycle",
 *  "analytical", "lut" ("default" for the unresolved sentinel). */
std::string pimMemBackendName(PimMemBackend backend);

/** Address-map name: "bank_first", "rank_first", "row_first". */
std::string pimAddrMapName(PimAddrMap map);

/** Command mnemonic, e.g., "add", "redsum". */
std::string pimCmdName(PimCmdEnum cmd);

/** True for commands taking two vector operands. */
bool pimCmdIsTwoOperand(PimCmdEnum cmd);

/** True for commands taking a host scalar operand. */
bool pimCmdHasScalar(PimCmdEnum cmd);

#endif // PIMEVAL_CORE_PIM_TYPES_H_
