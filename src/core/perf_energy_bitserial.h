/**
 * @file
 * Performance/energy model of the subarray-level digital bit-serial
 * PIM architecture (DRAM-AP).
 *
 * Costing derives directly from the generated microprograms:
 *   runtime = chunks x (reads*tR + writes*tW + logic*tL)
 * where a chunk is one group of row-buffer-wide elements (8192
 * elements per chunk in the default geometry) and chunks is the
 * number of such groups the busiest core must process. All cores
 * execute the broadcast microprogram in lockstep, so the busiest
 * core sets the latency while every active core contributes energy.
 */

#ifndef PIMEVAL_CORE_PERF_ENERGY_BITSERIAL_H_
#define PIMEVAL_CORE_PERF_ENERGY_BITSERIAL_H_

#include <shared_mutex>
#include <tuple>
#include <unordered_map>

#include "core/perf_energy_model.h"

namespace pimeval {

/**
 * Micro-op counts of one microprogram execution.
 */
struct MicroOpCounts
{
    uint64_t reads = 0;
    uint64_t writes = 0;
    uint64_t logic = 0;

    MicroOpCounts &operator+=(const MicroOpCounts &o)
    {
        reads += o.reads;
        writes += o.writes;
        logic += o.logic;
        return *this;
    }
};

class PerfEnergyBitSerial : public PerfEnergyModel
{
  public:
    explicit PerfEnergyBitSerial(const PimDeviceConfig &config);

    PimOpCost costOp(const PimOpProfile &profile) const override;

    /**
     * Micro-op counts for one chunk of the given command — exposed
     * for tests that check the model against the actual VM-executed
     * microprograms.
     */
    MicroOpCounts countsForCmd(PimCmdEnum cmd, unsigned bits,
                               uint64_t scalar, unsigned aux) const;

  private:
    /** Uncached microprogram generation backing countsForCmd. */
    MicroOpCounts generateCounts(PimCmdEnum cmd, unsigned bits,
                                 uint64_t scalar, unsigned aux) const;

    using CountsKey = std::tuple<PimCmdEnum, unsigned, uint64_t,
                                 unsigned>;
    struct CountsKeyHash
    {
        size_t operator()(const CountsKey &k) const
        {
            uint64_t h = static_cast<uint64_t>(std::get<0>(k));
            h = h * 0x9e3779b97f4a7c15ull + std::get<1>(k);
            h = h * 0x9e3779b97f4a7c15ull + std::get<2>(k);
            h = h * 0x9e3779b97f4a7c15ull + std::get<3>(k);
            return static_cast<size_t>(h ^ (h >> 32));
        }
    };
    /** Reader/writer lock: costOp runs concurrently on the pipeline's
     *  workers and the cache is hit on virtually every call. */
    mutable std::shared_mutex cache_mutex_;
    mutable std::unordered_map<CountsKey, MicroOpCounts, CountsKeyHash>
        counts_cache_;
    /** Latency of one chunk given micro-op counts. */
    double chunkLatency(const MicroOpCounts &counts) const;

    /** Energy of one chunk in one core. */
    double chunkEnergy(const MicroOpCounts &counts) const;

    /** Latency of the row-wide popcount reduction tree. */
    double popcountTreeLatency() const;
};

} // namespace pimeval

#endif // PIMEVAL_CORE_PERF_ENERGY_BITSERIAL_H_
