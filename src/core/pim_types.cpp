/**
 * @file
 * Name tables and helpers for PIM fundamental types.
 */

#include "core/pim_types.h"

namespace {

struct CmdInfo
{
    PimCmdEnum cmd;
    const char *name;
    bool two_operand;
    bool has_scalar;
};

const CmdInfo kCmdTable[] = {
    {PimCmdEnum::kNone, "none", false, false},
    {PimCmdEnum::kAdd, "add", true, false},
    {PimCmdEnum::kSub, "sub", true, false},
    {PimCmdEnum::kMul, "mul", true, false},
    {PimCmdEnum::kDiv, "div", true, false},
    {PimCmdEnum::kMin, "min", true, false},
    {PimCmdEnum::kMax, "max", true, false},
    {PimCmdEnum::kAbs, "abs", false, false},
    {PimCmdEnum::kAnd, "and", true, false},
    {PimCmdEnum::kOr, "or", true, false},
    {PimCmdEnum::kXor, "xor", true, false},
    {PimCmdEnum::kXnor, "xnor", true, false},
    {PimCmdEnum::kNot, "not", false, false},
    {PimCmdEnum::kGT, "gt", true, false},
    {PimCmdEnum::kLT, "lt", true, false},
    {PimCmdEnum::kEQ, "eq", true, false},
    {PimCmdEnum::kNE, "ne", true, false},
    {PimCmdEnum::kAddScalar, "add_scalar", false, true},
    {PimCmdEnum::kSubScalar, "sub_scalar", false, true},
    {PimCmdEnum::kMulScalar, "mul_scalar", false, true},
    {PimCmdEnum::kDivScalar, "div_scalar", false, true},
    {PimCmdEnum::kMinScalar, "min_scalar", false, true},
    {PimCmdEnum::kMaxScalar, "max_scalar", false, true},
    {PimCmdEnum::kAndScalar, "and_scalar", false, true},
    {PimCmdEnum::kOrScalar, "or_scalar", false, true},
    {PimCmdEnum::kXorScalar, "xor_scalar", false, true},
    {PimCmdEnum::kGTScalar, "gt_scalar", false, true},
    {PimCmdEnum::kLTScalar, "lt_scalar", false, true},
    {PimCmdEnum::kEQScalar, "eq_scalar", false, true},
    {PimCmdEnum::kScaledAdd, "scaled_add", true, true},
    {PimCmdEnum::kShiftBitsLeft, "shift_bits_l", false, true},
    {PimCmdEnum::kShiftBitsRight, "shift_bits_r", false, true},
    {PimCmdEnum::kShiftElementsLeft, "shift_elem_l", false, false},
    {PimCmdEnum::kShiftElementsRight, "shift_elem_r", false, false},
    {PimCmdEnum::kRotateElementsLeft, "rotate_elem_l", false, false},
    {PimCmdEnum::kRotateElementsRight, "rotate_elem_r", false, false},
    {PimCmdEnum::kPopCount, "popcount", false, false},
    {PimCmdEnum::kRedSum, "redsum", false, false},
    {PimCmdEnum::kBroadcast, "broadcast", false, true},
    {PimCmdEnum::kCopyH2D, "copy_h2d", false, false},
    {PimCmdEnum::kCopyD2H, "copy_d2h", false, false},
    {PimCmdEnum::kCopyD2D, "copy_d2d", false, false},
};

const CmdInfo &
cmdInfo(PimCmdEnum cmd)
{
    for (const auto &info : kCmdTable) {
        if (info.cmd == cmd)
            return info;
    }
    return kCmdTable[0];
}

} // namespace

unsigned
pimBitsOfDataType(PimDataType data_type)
{
    switch (data_type) {
      case PimDataType::PIM_BOOL:
        return 1;
      case PimDataType::PIM_INT8:
      case PimDataType::PIM_UINT8:
        return 8;
      case PimDataType::PIM_INT16:
      case PimDataType::PIM_UINT16:
        return 16;
      case PimDataType::PIM_INT32:
      case PimDataType::PIM_UINT32:
        return 32;
      case PimDataType::PIM_INT64:
      case PimDataType::PIM_UINT64:
        return 64;
    }
    return 0;
}

bool
pimIsSigned(PimDataType data_type)
{
    switch (data_type) {
      case PimDataType::PIM_INT8:
      case PimDataType::PIM_INT16:
      case PimDataType::PIM_INT32:
      case PimDataType::PIM_INT64:
        return true;
      default:
        return false;
    }
}

std::string
pimDataTypeName(PimDataType data_type)
{
    switch (data_type) {
      case PimDataType::PIM_BOOL:
        return "bool";
      case PimDataType::PIM_INT8:
        return "int8";
      case PimDataType::PIM_INT16:
        return "int16";
      case PimDataType::PIM_INT32:
        return "int32";
      case PimDataType::PIM_INT64:
        return "int64";
      case PimDataType::PIM_UINT8:
        return "uint8";
      case PimDataType::PIM_UINT16:
        return "uint16";
      case PimDataType::PIM_UINT32:
        return "uint32";
      case PimDataType::PIM_UINT64:
        return "uint64";
    }
    return "unknown";
}

std::string
pimDeviceName(PimDeviceEnum device)
{
    switch (device) {
      case PimDeviceEnum::PIM_DEVICE_NONE:
        return "PIM_DEVICE_NONE";
      case PimDeviceEnum::PIM_DEVICE_BITSIMD_V_AP:
        return "PIM_DEVICE_BITSIMD_V_AP";
      case PimDeviceEnum::PIM_DEVICE_FULCRUM:
        return "PIM_DEVICE_FULCRUM";
      case PimDeviceEnum::PIM_DEVICE_BANK_LEVEL:
        return "PIM_DEVICE_BANK_LEVEL";
      case PimDeviceEnum::PIM_DEVICE_SIMDRAM:
        return "PIM_DEVICE_SIMDRAM";
    }
    return "unknown";
}

std::string
pimExecModeName(PimExecEnum mode)
{
    switch (mode) {
      case PimExecEnum::PIM_EXEC_SYNC:
        return "PIM_EXEC_SYNC";
      case PimExecEnum::PIM_EXEC_ASYNC:
        return "PIM_EXEC_ASYNC";
    }
    return "unknown";
}

std::string
pimMemBackendName(PimMemBackend backend)
{
    switch (backend) {
      case PimMemBackend::PIM_MEM_BACKEND_DEFAULT:
        return "default";
      case PimMemBackend::PIM_MEM_BACKEND_CYCLE:
        return "cycle";
      case PimMemBackend::PIM_MEM_BACKEND_ANALYTICAL:
        return "analytical";
      case PimMemBackend::PIM_MEM_BACKEND_LUT:
        return "lut";
    }
    return "unknown";
}

std::string
pimAddrMapName(PimAddrMap map)
{
    switch (map) {
      case PimAddrMap::PIM_ADDR_MAP_BANK_FIRST:
        return "bank_first";
      case PimAddrMap::PIM_ADDR_MAP_RANK_FIRST:
        return "rank_first";
      case PimAddrMap::PIM_ADDR_MAP_ROW_FIRST:
        return "row_first";
    }
    return "unknown";
}

std::string
pimCmdName(PimCmdEnum cmd)
{
    return cmdInfo(cmd).name;
}

bool
pimCmdIsTwoOperand(PimCmdEnum cmd)
{
    return cmdInfo(cmd).two_operand;
}

bool
pimCmdHasScalar(PimCmdEnum cmd)
{
    return cmdInfo(cmd).has_scalar;
}
