/**
 * @file
 * Parameter derivations: Micron power model equations and device
 * geometry helpers.
 */

#include "core/pim_params.h"

#include <sstream>

namespace pimeval {

uint64_t
PimDeviceConfig::numCores() const
{
    switch (device) {
      case PimDeviceEnum::PIM_DEVICE_BITSIMD_V_AP:
      case PimDeviceEnum::PIM_DEVICE_SIMDRAM:
        // One core per subarray.
        return totalSubarrays();
      case PimDeviceEnum::PIM_DEVICE_FULCRUM:
        // One ALPU shared between every two consecutive subarrays.
        return totalSubarrays() / 2;
      case PimDeviceEnum::PIM_DEVICE_BANK_LEVEL:
        // One processing element per bank.
        return num_ranks * num_banks_per_rank;
      case PimDeviceEnum::PIM_DEVICE_NONE:
        break;
    }
    return 0;
}

uint64_t
PimDeviceConfig::rowsPerCore() const
{
    switch (device) {
      case PimDeviceEnum::PIM_DEVICE_BITSIMD_V_AP:
      case PimDeviceEnum::PIM_DEVICE_SIMDRAM:
        return num_rows_per_subarray;
      case PimDeviceEnum::PIM_DEVICE_FULCRUM:
        return num_rows_per_subarray * 2;
      case PimDeviceEnum::PIM_DEVICE_BANK_LEVEL:
        return num_rows_per_subarray * num_subarrays_per_bank;
      case PimDeviceEnum::PIM_DEVICE_NONE:
        break;
    }
    return 0;
}

std::string
PimDeviceConfig::summary() const
{
    std::ostringstream oss;
    oss << "Config: #ranks = " << num_ranks
        << ", #bankPerRank = " << num_banks_per_rank
        << ", #subarrayPerBank = " << num_subarrays_per_bank
        << ", #rowsPerSubarray = " << num_rows_per_subarray
        << ", #colsPerRow = " << num_cols_per_row;
    return oss.str();
}

} // namespace pimeval
