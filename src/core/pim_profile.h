/**
 * @file
 * Phase-scoped profiler built on the tracer/metrics layer: a
 * user-facing answer to "where does this workload's time go?".
 *
 * Programs (or the standard app phases in src/apps) mark phases with
 * pimProfileBegin("compute") / pimProfileEnd() or the RAII
 * PimProfileScope. Phases nest per thread into a process-wide phase
 * tree; each completed phase folds in
 *   - host wall time (log-bucketed histogram -> p50/p90/p99/p99.9),
 *   - the modeled-time delta from the device's PimStatsMgr
 *     (kernel / copy / host seconds and transfer byte counts), and
 *   - the metric-registry counter deltas that occurred inside it.
 *
 * A background sampler thread (period PIMEVAL_PROFILE_SAMPLE_MS,
 * default 25 ms, 0 disables) snapshots the metrics registry into an
 * in-memory time series. pimDumpProfile(path) exports everything —
 * the phase tree with per-phase bottleneck attribution
 * (compute / DRAM-transfer / host-overhead split of modeled time),
 * the final metric snapshot with percentiles, per-context metric
 * domains, and the time series — as PROFILE.json plus a
 * self-contained single-file HTML report next to it.
 *
 * Enabling: programmatic (pimProfileStart) or the PIMEVAL_PROFILE
 * environment variable, which arms the profiler at pimCreateDevice
 * and dumps at pimDeleteDevice, mirroring PIMEVAL_TRACE. Disabled,
 * every phase hook is one relaxed atomic load and branch; under
 * -DPIMEVAL_TRACING=OFF the whole layer compiles away (the public
 * functions become empty inline stubs and pim_profile.cpp is not
 * built, leaving zero profile symbols in the binaries).
 *
 * Async caveat: modeled time is attributed to the phase in which it
 * *commits*. Blocking calls (D2H copies, reductions, pimSync) inside
 * a phase pull its commits in; a phase that only issues async
 * commands donates their modeled time to whichever later phase
 * drains them.
 */

#ifndef PIMEVAL_CORE_PIM_PROFILE_H_
#define PIMEVAL_CORE_PIM_PROFILE_H_

#include <atomic>
#include <chrono>
#include <condition_variable>
#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <vector>

#include "core/pim_trace.h" // PIMEVAL_TRACING_ENABLED
#include "core/pim_types.h"

namespace pimeval {

/** One aggregated node of the phase tree (snapshot form). */
struct PimProfilePhase
{
    std::string name;
    int parent = -1; ///< index into the snapshot vector; -1 = root
    int depth = 0;
    uint32_t ctx = 0; ///< owning context id at first entry (0 = none)
    uint64_t count = 0; ///< completed begin/end pairs

    /** Host wall time across all entries. */
    uint64_t host_ns_total = 0;
    double host_ns_min = 0.0;
    double host_ns_max = 0.0;
    double host_ns_p50 = 0.0;
    double host_ns_p90 = 0.0;
    double host_ns_p99 = 0.0;
    double host_ns_p999 = 0.0;

    /** Modeled-time deltas committed inside the phase. */
    double kernel_sec = 0.0; ///< compute
    double copy_sec = 0.0;   ///< DRAM transfer
    double host_sec = 0.0;   ///< host overhead
    uint64_t bytes_h2d = 0;
    uint64_t bytes_d2h = 0;
    uint64_t bytes_d2d = 0;

    /** Non-zero metric-registry counter deltas inside the phase. */
    std::map<std::string, double> metric_deltas;

    double modeledSec() const
    {
        return kernel_sec + copy_sec + host_sec;
    }
};

/** One background-sampler snapshot of the metrics registry. */
struct PimProfileSample
{
    uint64_t t_ns = 0; ///< since profile start
    std::map<std::string, double> values;
};

/** Everything the profiler knows, for programmatic consumers
 *  (benches embed this in their JSON). */
struct PimProfileSnapshot
{
    bool active = false;
    uint64_t elapsed_ns = 0;
    double sample_period_ms = 0.0;
    std::vector<PimProfilePhase> phases;
    std::vector<PimProfileSample> samples;
};

#if PIMEVAL_TRACING_ENABLED

/**
 * Process-wide profiler singleton. All methods are thread-safe;
 * beginPhase/endPhase additionally keep a per-thread open-phase
 * stack, so concurrent threads build disjoint (or shared, when names
 * and nesting coincide) subtrees of one aggregated phase tree.
 */
class PimProfiler
{
  public:
    static PimProfiler &instance();
    ~PimProfiler(); // Node is incomplete here

    /** Hook fast path: one relaxed load, safe before instance(). */
    static bool enabled()
    {
        return enabled_flag_.load(std::memory_order_relaxed);
    }

    /**
     * Start (or restart) profiling: clears the phase tree and time
     * series, re-arms the epoch, remembers @p path as the default
     * export target, and launches the sampler thread (period
     * PIMEVAL_PROFILE_SAMPLE_MS ms, default 25, 0 disables).
     */
    void start(const std::string &path);

    /** Stop profiling and export to @p path (empty = the start()
     *  path). The tree is retained until the next start(), so dump()
     *  can still re-export. @return false when the file cannot be
     *  written (or nothing was started and no path is known). */
    bool stop(const std::string &path = "");

    /** Export PROFILE.json plus the sibling HTML report without
     *  stopping. */
    bool dump(const std::string &path) const;

    /** Open a phase on the calling thread (no-op while disabled). */
    void beginPhase(const char *name);

    /** Close the calling thread's innermost open phase. Safe (and a
     *  no-op) when nothing is open. */
    void endPhase();

    /** Depth of the calling thread's open-phase stack. */
    int openDepth() const;

    bool active() const { return enabled(); }
    const std::string &outputPath() const { return path_; }

    /** Aggregated tree + time series (parents precede children). */
    PimProfileSnapshot snapshot() const;

    /** Drop all phases and samples (profiling state stays on). */
    void reset();

  private:
    PimProfiler() = default;

    struct Node;
    struct OpenPhase;

    /** Find-or-create the child @p name under @p parent; returns its
     *  index. Requires mutex_. */
    int nodeIndex(int parent, const char *name);

    void samplerLoop();
    void startSampler();
    void stopSampler();

    uint64_t nowNs() const;

    static std::atomic<bool> enabled_flag_;

    mutable std::mutex mutex_;
    std::vector<std::unique_ptr<Node>> nodes_;
    std::map<std::pair<int, std::string>, int> index_;
    std::vector<PimProfileSample> samples_;
    uint64_t sample_stride_ns_ = 0; ///< grows when samples_ decimates
    std::string path_;
    std::chrono::steady_clock::time_point epoch_ =
        std::chrono::steady_clock::now();
    double sample_period_ms_ = 0.0;

    std::thread sampler_;
    std::mutex sampler_mutex_;
    std::condition_variable sampler_cv_;
    bool sampler_stop_ = false;

    /** Cap before decimation (drop every other, double the stride). */
    static constexpr size_t kMaxSamples = 2048;
};

/**
 * RAII phase: begins on construction, ends on destruction. Use
 * through PIM_PROFILE_SCOPE so the object disappears under
 * -DPIMEVAL_TRACING=OFF. Only pairs with the profiler state at
 * construction: a profiler started mid-scope is ignored, one stopped
 * mid-scope still pops the (now frozen) phase harmlessly.
 */
class PimProfileScope
{
  public:
    explicit PimProfileScope(const char *name)
    {
        if (PimProfiler::enabled()) {
            PimProfiler::instance().beginPhase(name);
            began_ = true;
        }
    }

    ~PimProfileScope()
    {
        if (began_)
            PimProfiler::instance().endPhase();
    }

    PimProfileScope(const PimProfileScope &) = delete;
    PimProfileScope &operator=(const PimProfileScope &) = delete;

  private:
    bool began_ = false;
};

#define PIM_PROFILE_CONCAT_INNER_(a, b) a##b
#define PIM_PROFILE_CONCAT_(a, b) PIM_PROFILE_CONCAT_INNER_(a, b)

/** Scoped profile phase covering the rest of the enclosing block. */
#define PIM_PROFILE_SCOPE(name)                                        \
    ::pimeval::PimProfileScope PIM_PROFILE_CONCAT_(                    \
        pim_profile_scope_, __LINE__)(name)

#else // !PIMEVAL_TRACING_ENABLED

#define PIM_PROFILE_SCOPE(name)                                        \
    do {                                                               \
    } while (0)

#endif // PIMEVAL_TRACING_ENABLED

} // namespace pimeval

// --- Public phase / profile API (docs/OBSERVABILITY.md) ---
// Global namespace like the rest of the pim* C-style API.

#if PIMEVAL_TRACING_ENABLED

/** Start profiling; PROFILE.json is written to @p path by
 *  pimProfileStop / pimDumpProfile, with the HTML report beside it. */
PimStatus pimProfileStart(const char *path);

/** Stop profiling and export (@p path overrides the start path). */
PimStatus pimProfileStop(const char *path = nullptr);

/** Whether the profiler is currently recording. */
bool pimProfileActive();

/** Open a named phase on the calling thread (phases nest). */
PimStatus pimProfileBegin(const char *name);

/** Close the calling thread's innermost open phase. */
PimStatus pimProfileEnd();

/** Export PROFILE.json + HTML to @p path without stopping. */
PimStatus pimDumpProfile(const char *path);

/** Programmatic snapshot of the phase tree and time series. */
pimeval::PimProfileSnapshot pimProfileSnapshot();

/** Drop all recorded phases and samples. */
PimStatus pimResetProfile();

/**
 * Validate an exported PROFILE.json: parses the file and checks the
 * schema (version, phases with host_ns percentiles, modeled split,
 * and attribution). @p error receives the first problem (may be
 * null).
 */
bool pimValidateProfileFile(const std::string &path,
                            std::string *error);

#else // !PIMEVAL_TRACING_ENABLED

// Empty inline stubs: callers need no guards, binaries get no
// profile symbols (pim_profile.cpp is not built in this
// configuration).

inline PimStatus pimProfileStart(const char *) { return PimStatus::PIM_OK; }
inline PimStatus pimProfileStop(const char * = nullptr)
{
    return PimStatus::PIM_OK;
}
inline bool pimProfileActive() { return false; }
inline PimStatus pimProfileBegin(const char *) { return PimStatus::PIM_OK; }
inline PimStatus pimProfileEnd() { return PimStatus::PIM_OK; }
inline PimStatus pimDumpProfile(const char *) { return PimStatus::PIM_OK; }
inline pimeval::PimProfileSnapshot pimProfileSnapshot() { return {}; }
inline PimStatus pimResetProfile() { return PimStatus::PIM_OK; }
inline bool pimValidateProfileFile(const std::string &, std::string *)
{
    return false;
}

#endif // PIMEVAL_TRACING_ENABLED

#endif // PIMEVAL_CORE_PIM_PROFILE_H_
