/**
 * @file
 * Base model implementation: transfer costing and factory.
 */

#include "core/perf_energy_model.h"

#include <algorithm>

#include "core/perf_energy_analog.h"
#include "core/perf_energy_bitserial.h"
#include "core/perf_energy_fulcrum.h"
#include "core/pim_metrics.h"

namespace pimeval {

PerfEnergyModel::PerfEnergyModel(const PimDeviceConfig &config)
    : config_(config), power_(config)
{
    MemTopology topology;
    const uint64_t channels = config_.num_channels
        ? config_.num_channels
        : config_.num_ranks; // paper's rank-per-channel view
    topology.num_channels =
        static_cast<uint32_t>(std::max<uint64_t>(1, channels));
    topology.ranks_per_channel = static_cast<uint32_t>(
        std::max<uint64_t>(1, (config_.num_ranks + channels - 1) /
                                  channels));
    // Physical banks visible on the channel: one chip rank's worth
    // (16 banks of an x8 part).
    topology.banks_per_rank = 16u;
    topology.row_bytes =
        static_cast<uint32_t>(config_.num_cols_per_row / 8);
    topology.addr_map = config_.addr_map;
    topology.flat_bw_bytes_per_sec = config_.hostBandwidthBytesPerSec();
    const PimMemBackend kind = MemTimingBackend::resolve(
        config_.mem_backend, config_.use_dram_timing);
    mem_backend_ = MemTimingBackend::create(kind, topology);
    switch (kind) {
      case PimMemBackend::PIM_MEM_BACKEND_CYCLE:
        PIM_METRIC_COUNT("dram.backend.cycle", 1);
        break;
      case PimMemBackend::PIM_MEM_BACKEND_ANALYTICAL:
        PIM_METRIC_COUNT("dram.backend.analytical", 1);
        break;
      default:
        PIM_METRIC_COUNT("dram.backend.lut", 1);
        break;
    }
}

PimOpCost
PerfEnergyModel::costCopy(PimCopyEnum direction, uint64_t bytes) const
{
    PimOpCost cost;
    switch (direction) {
      case PimCopyEnum::PIM_COPY_H2D:
      case PimCopyEnum::PIM_COPY_D2H: {
        const TransferResult result = mem_backend_->transfer(
            bytes, direction == PimCopyEnum::PIM_COPY_H2D);
        cost.runtime_sec = result.seconds;
        cost.energy_j = power_.dataTransferEnergy(
            bytes, cost.runtime_sec,
            direction == PimCopyEnum::PIM_COPY_D2H);
        break;
      }
      case PimCopyEnum::PIM_COPY_D2D: {
        // Row-granular copies inside the cores: one read + one write
        // per row, all cores in parallel. With LISA enabled on the
        // subarray-level targets, linked row buffers move rows
        // directly (Chang et al.; the Fulcrum feature the paper
        // defers).
        const bool subarray_level =
            config_.device == PimDeviceEnum::PIM_DEVICE_BITSIMD_V_AP ||
            config_.device == PimDeviceEnum::PIM_DEVICE_FULCRUM ||
            config_.device == PimDeviceEnum::PIM_DEVICE_SIMDRAM;
        const bool lisa = config_.use_lisa && subarray_level;
        const uint64_t row_bytes = config_.colsPerCore() / 8;
        const uint64_t rows =
            (bytes / config_.numCores() + row_bytes - 1) /
            std::max<uint64_t>(1, row_bytes);
        const double per_row_ns = lisa
            ? config_.dram.lisa_row_copy_ns
            : config_.dram.row_read_ns + config_.dram.row_write_ns;
        cost.runtime_sec =
            static_cast<double>(std::max<uint64_t>(1, rows)) *
            per_row_ns * 1e-9;
        const uint64_t total_rows =
            (bytes + row_bytes - 1) / std::max<uint64_t>(1, row_bytes);
        // A LISA hop still activates both source and destination
        // rows, but skips the full sense/restore round trip.
        cost.energy_j = static_cast<double>(total_rows) *
            (lisa ? 1.2 : 2.0) * power_.rowActPreEnergy();
        break;
      }
    }
    return cost;
}

std::unique_ptr<PerfEnergyModel>
PerfEnergyModel::create(const PimDeviceConfig &config)
{
    switch (config.device) {
      case PimDeviceEnum::PIM_DEVICE_BITSIMD_V_AP:
        return std::make_unique<PerfEnergyBitSerial>(config);
      case PimDeviceEnum::PIM_DEVICE_FULCRUM:
        return std::make_unique<PerfEnergyFulcrum>(config);
      case PimDeviceEnum::PIM_DEVICE_BANK_LEVEL:
        return std::make_unique<PerfEnergyBankLevel>(config);
      case PimDeviceEnum::PIM_DEVICE_SIMDRAM:
        return std::make_unique<PerfEnergyAnalog>(config);
      case PimDeviceEnum::PIM_DEVICE_NONE:
        break;
    }
    return nullptr;
}

} // namespace pimeval
