/**
 * @file
 * PimDataObject implementation.
 */

#include "core/pim_data_object.h"

#include <algorithm>

namespace pimeval {

PimDataObject::PimDataObject(PimObjId id, uint64_t num_elements,
                             PimDataType data_type, bool v_layout)
    : id_(id), num_elements_(num_elements), data_type_(data_type),
      bits_per_element_(pimBitsOfDataType(data_type)),
      v_layout_(v_layout),
      mask_(bits_per_element_ >= 64 ? ~0ull
                                    : ((1ull << bits_per_element_) - 1)),
      data_(num_elements, 0)
{
}

uint64_t
PimDataObject::maxElementsPerRegion() const
{
    uint64_t max_elems = 0;
    for (const auto &region : regions_)
        max_elems = std::max(max_elems, region.num_elements);
    return max_elems;
}

int64_t
PimDataObject::getSigned(uint64_t index) const
{
    const uint64_t v = data_[index];
    if (!isSigned() || bits_per_element_ >= 64)
        return static_cast<int64_t>(v);
    const uint64_t sign = 1ull << (bits_per_element_ - 1);
    return static_cast<int64_t>((v ^ sign) - sign);
}

} // namespace pimeval
