/**
 * @file
 * Statistics manager implementation.
 */

#include "core/pim_stats.h"

#include <algorithm>
#include <cstring>
#include <iomanip>
#include <vector>

#include "core/pim_trace.h"
#include "util/string_utils.h"

namespace pimeval {

double
PimStatsMgr::hostCalibration()
{
    // Compare this machine's single-core streaming throughput with
    // the modeled EPYC 9124's per-core share of its 460.8 GB/s
    // (~28.8 GB/s/core). Host phases measured here are stream-shaped
    // (gathers, scatters, plane extraction), so the ratio transfers.
    static const double factor = [] {
        constexpr size_t kBytes = 32ull << 20;
        std::vector<uint8_t> src(kBytes, 1), dst(kBytes);
        const auto t0 = std::chrono::high_resolution_clock::now();
        int rounds = 0;
        double elapsed = 0.0;
        do {
            std::memcpy(dst.data(), src.data(), kBytes);
            // Touch to defeat dead-store elimination.
            src[0] = dst[kBytes / 2];
            ++rounds;
            elapsed = std::chrono::duration<double>(
                          std::chrono::high_resolution_clock::now() -
                          t0)
                          .count();
        } while (elapsed < 0.05);
        const double gbps = 2.0 * kBytes * rounds / elapsed / 1e9;
        constexpr double kEpycPerCoreGbps = 28.8;
        return std::clamp(kEpycPerCoreGbps / gbps, 1.0, 50.0);
    }();
    return factor;
}

PimRunStats &
PimRunStats::operator+=(const PimRunStats &o)
{
    kernel_sec += o.kernel_sec;
    kernel_j += o.kernel_j;
    copy_sec += o.copy_sec;
    copy_j += o.copy_j;
    host_sec += o.host_sec;
    bytes_h2d += o.bytes_h2d;
    bytes_d2h += o.bytes_d2h;
    bytes_d2d += o.bytes_d2d;
    return *this;
}

PimStatsMgr::CmdKeyId
PimStatsMgr::internCmdKey(const std::string &key, PimCmdEnum cmd)
{
    std::lock_guard<std::mutex> lock(mutex_);
    const auto it = cmd_key_ids_.find(key);
    if (it != cmd_key_ids_.end())
        return it->second;
    const CmdKeyId id = static_cast<CmdKeyId>(cmd_slots_.size());
    cmd_slots_.push_back(CmdSlot{key, cmd, PimCmdStat{}});
    cmd_key_ids_.emplace(key, id);
    return id;
}

void
PimStatsMgr::recordCmd(CmdKeyId id, const PimOpCost &cost)
{
    std::lock_guard<std::mutex> lock(mutex_);
    auto &stat = cmd_slots_[id].stat;
    ++stat.count;
    stat.runtime_sec += cost.runtime_sec;
    stat.energy_j += cost.energy_j;
#if PIMEVAL_TRACING_ENABLED
    // Modeled PIM clock: commands commit in issue order, so the
    // accumulated kernel+copy time before this command is its modeled
    // start — the second timeline of the dual-clock trace.
    if (PimTracer::enabled()) {
        auto &slot = cmd_slots_[id];
        if (!slot.trace_name)
            slot.trace_name = PimTracer::instance().intern(slot.key);
        PimTracer::instance().recordModeledSpan(
            slot.trace_name, kernel_sec_ + copy_sec_,
            cost.runtime_sec, stat.count, trace_ctx_);
    }
#endif
    kernel_sec_ += cost.runtime_sec;
    kernel_j_ += cost.energy_j;
}

void
PimStatsMgr::recordCmd(const std::string &key, PimCmdEnum cmd,
                       const PimOpCost &cost)
{
    recordCmd(internCmdKey(key, cmd), cost);
}

void
PimStatsMgr::recordCopy(PimCopyEnum direction, uint64_t bytes,
                        const PimOpCost &cost)
{
    std::lock_guard<std::mutex> lock(mutex_);
    const char *trace_name = nullptr;
    switch (direction) {
      case PimCopyEnum::PIM_COPY_H2D:
        bytes_h2d_ += bytes;
        trace_name = "copy.h2d";
        break;
      case PimCopyEnum::PIM_COPY_D2H:
        bytes_d2h_ += bytes;
        trace_name = "copy.d2h";
        break;
      case PimCopyEnum::PIM_COPY_D2D:
        bytes_d2d_ += bytes;
        trace_name = "copy.d2d";
        break;
    }
#if PIMEVAL_TRACING_ENABLED
    if (PimTracer::enabled() && trace_name) {
        PimTracer::instance().recordModeledSpan(
            trace_name, kernel_sec_ + copy_sec_, cost.runtime_sec,
            bytes, trace_ctx_);
    }
#else
    (void)trace_name;
#endif
    copy_sec_ += cost.runtime_sec;
    copy_j_ += cost.energy_j;
}

void
PimStatsMgr::startHostTimer()
{
    std::lock_guard<std::mutex> lock(mutex_);
    host_start_ = std::chrono::high_resolution_clock::now();
    host_timing_ = true;
}

void
PimStatsMgr::stopHostTimer()
{
    std::lock_guard<std::mutex> lock(mutex_);
    if (!host_timing_)
        return;
    const auto now = std::chrono::high_resolution_clock::now();
    const double elapsed =
        std::chrono::duration<double>(now - host_start_).count();
    host_timing_ = false;
    if (host_scale_ > 1.0)
        host_sec_ += elapsed * host_scale_ / hostCalibration();
    else
        host_sec_ += elapsed;
}

PimRunStats
PimStatsMgr::snapshot() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    PimRunStats s;
    s.kernel_sec = kernel_sec_;
    s.kernel_j = kernel_j_;
    s.copy_sec = copy_sec_;
    s.copy_j = copy_j_;
    s.host_sec = host_sec_;
    s.bytes_h2d = bytes_h2d_;
    s.bytes_d2h = bytes_d2h_;
    s.bytes_d2d = bytes_d2d_;
    return s;
}

std::map<std::string, uint64_t>
PimStatsMgr::opMix() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    std::map<std::string, uint64_t> mix;
    for (const auto &slot : cmd_slots_) {
        if (slot.stat.count > 0)
            mix[pimCmdName(slot.cmd)] += slot.stat.count;
    }
    return mix;
}

std::map<std::string, PimCmdStat>
PimStatsMgr::cmdStats() const
{
    std::lock_guard<std::mutex> lock(mutex_);
    return cmdStatsLocked();
}

std::map<std::string, PimCmdStat>
PimStatsMgr::cmdStatsLocked() const
{
    std::map<std::string, PimCmdStat> table;
    for (const auto &slot : cmd_slots_) {
        if (slot.stat.count == 0)
            continue;
        auto &stat = table[slot.key];
        stat.count += slot.stat.count;
        stat.runtime_sec += slot.stat.runtime_sec;
        stat.energy_j += slot.stat.energy_j;
    }
    return table;
}

void
PimStatsMgr::reset()
{
    std::lock_guard<std::mutex> lock(mutex_);
    // Interned key ids survive reset; only the accumulators clear.
    for (auto &slot : cmd_slots_)
        slot.stat = PimCmdStat{};
    kernel_sec_ = 0.0;
    kernel_j_ = 0.0;
    copy_sec_ = 0.0;
    copy_j_ = 0.0;
    host_sec_ = 0.0;
    bytes_h2d_ = 0;
    bytes_d2h_ = 0;
    bytes_d2d_ = 0;
    host_timing_ = false;
}

void
PimStatsMgr::printReport(std::ostream &os) const
{
    std::lock_guard<std::mutex> lock(mutex_);
    os << "----------------------------------------\n";
    os << "Data Copy Stats:\n";
    os << "  Host to Device   : " << bytes_h2d_ << " bytes\n";
    os << "  Device to Host   : " << bytes_d2h_ << " bytes\n";
    os << "  Device to Device : " << bytes_d2d_ << " bytes\n";
    os << "  TOTAL ---------- : "
       << (bytes_h2d_ + bytes_d2h_ + bytes_d2d_) << " bytes  "
       << formatFixed(copy_sec_ * 1e3, 6) << " ms Runtime  "
       << formatFixed(copy_j_ * 1e3, 6) << " mJ Energy\n\n";

    os << "PIM Command Stats:\n";
    os << "  " << padRight("PIM-CMD", 24)
       << padLeft("CNT", 10)
       << padLeft("EstimatedRuntime(ms)", 24)
       << padLeft("EstimatedEnergy(mJ)", 24) << "\n";
    uint64_t total_cnt = 0;
    for (const auto &[key, stat] : cmdStatsLocked()) {
        os << "  " << padRight(key, 24)
           << padLeft(std::to_string(stat.count), 10)
           << padLeft(formatFixed(stat.runtime_sec * 1e3, 6), 24)
           << padLeft(formatFixed(stat.energy_j * 1e3, 6), 24) << "\n";
        total_cnt += stat.count;
    }
    os << "  " << padRight("TOTAL ----------", 24)
       << padLeft(std::to_string(total_cnt), 10)
       << padLeft(formatFixed(kernel_sec_ * 1e3, 6), 24)
       << padLeft(formatFixed(kernel_j_ * 1e3, 6), 24) << "\n";
    if (host_sec_ > 0.0) {
        os << "  Host elapsed time : "
           << formatFixed(host_sec_ * 1e3, 6) << " ms\n";
    }
    os << "----------------------------------------\n";
}

void
PimStatsMgr::dumpJson(std::ostream &os) const
{
    std::lock_guard<std::mutex> lock(mutex_);
    const auto flags = os.flags();
    os << std::setprecision(17);
    os << "{\n";
    os << "  \"totals\": {\n";
    os << "    \"kernel_sec\": " << kernel_sec_ << ",\n";
    os << "    \"kernel_j\": " << kernel_j_ << ",\n";
    os << "    \"copy_sec\": " << copy_sec_ << ",\n";
    os << "    \"copy_j\": " << copy_j_ << ",\n";
    os << "    \"host_sec\": " << host_sec_ << "\n";
    os << "  },\n";
    os << "  \"copy_bytes\": {\n";
    os << "    \"h2d\": " << bytes_h2d_ << ",\n";
    os << "    \"d2h\": " << bytes_d2h_ << ",\n";
    os << "    \"d2d\": " << bytes_d2d_ << "\n";
    os << "  },\n";
    os << "  \"commands\": {";
    bool first = true;
    for (const auto &[key, stat] : cmdStatsLocked()) {
        os << (first ? "\n" : ",\n");
        first = false;
        os << "    \"" << key << "\": {\"count\": " << stat.count
           << ", \"runtime_sec\": " << stat.runtime_sec
           << ", \"energy_j\": " << stat.energy_j << "}";
    }
    os << "\n  }\n";
    os << "}\n";
    os.flags(flags);
}

} // namespace pimeval
