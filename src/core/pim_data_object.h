/**
 * @file
 * PIM data objects and their placement across PIM cores.
 *
 * A PIM data object is a 1-D vector of fixed-width elements spanning
 * one or more 2-D memory regions across PIM cores (paper Section V-A).
 * Depending on the architecture, elements are laid out vertically
 * (bit i of an element in row base+i — bit-serial) or horizontally
 * (element bits contiguous in a row — Fulcrum / bank-level).
 *
 * Functional simulation stores each element canonically as the low
 * @c bits_per_element bits of a uint64_t; the layout affects only
 * placement metadata and the performance/energy models.
 */

#ifndef PIMEVAL_CORE_PIM_DATA_OBJECT_H_
#define PIMEVAL_CORE_PIM_DATA_OBJECT_H_

#include <algorithm>
#include <cstdint>
#include <vector>

#include "core/pim_types.h"

namespace pimeval {

/**
 * One contiguous allocation inside a single PIM core.
 */
struct PimRegion
{
    uint64_t core_id = 0;
    uint64_t row_offset = 0;    ///< first row of the region
    uint64_t num_rows = 0;      ///< rows occupied
    uint64_t elem_offset = 0;   ///< first element index held here
    uint64_t num_elements = 0;  ///< elements held in this region
};

/**
 * A PIM data object: elements, layout, and placement.
 */
class PimDataObject
{
  public:
    PimDataObject(PimObjId id, uint64_t num_elements,
                  PimDataType data_type, bool v_layout);

    PimObjId id() const { return id_; }
    uint64_t numElements() const { return num_elements_; }
    PimDataType dataType() const { return data_type_; }
    unsigned bitsPerElement() const { return bits_per_element_; }
    bool isVLayout() const { return v_layout_; }
    bool isSigned() const { return pimIsSigned(data_type_); }

    std::vector<PimRegion> &regions() { return regions_; }
    const std::vector<PimRegion> &regions() const { return regions_; }

    /** Largest element count any single core must process. */
    uint64_t maxElementsPerRegion() const;

    /** Number of distinct cores holding part of this object. */
    uint64_t numCoresUsed() const { return regions_.size(); }

    /** Canonical raw storage: low bits_per_element bits valid. */
    std::vector<uint64_t> &raw() { return data_; }
    const std::vector<uint64_t> &raw() const { return data_; }

    /** Element access with truncation to the element width. */
    uint64_t getRaw(uint64_t index) const { return data_[index]; }
    void setRaw(uint64_t index, uint64_t value)
    {
        data_[index] = value & mask_;
    }

    /** Signed interpretation (sign extended). */
    int64_t getSigned(uint64_t index) const;

    /** Element mask for this width. */
    uint64_t elementMask() const { return mask_; }

    /** Total bytes of payload (bits x elements, rounded to bytes). */
    uint64_t payloadBytes() const
    {
        return (num_elements_ * bits_per_element_ + 7) / 8;
    }

    /**
     * Reset identity for allocator free-list reuse: shape, layout, and
     * row placement stay; the object gets a fresh id, the (same-width)
     * element type, and data cleared to the fresh-allocation state.
     * Pristine objects (fusion-elided dead temporaries whose stores
     * never happened) are already all-zero, so the fill is skipped.
     */
    void recycle(PimObjId id, PimDataType data_type)
    {
        id_ = id;
        data_type_ = data_type;
        if (!pristine_)
            std::fill(data_.begin(), data_.end(), 0);
        pristine_ = false;
    }

    /** Storage is known all-zero (never written since the last
     *  zeroing); recycle() may skip its fill. */
    bool isPristine() const { return pristine_; }
    void markPristine() { pristine_ = true; }

  private:
    PimObjId id_;
    uint64_t num_elements_;
    PimDataType data_type_;
    unsigned bits_per_element_;
    bool v_layout_;
    uint64_t mask_;
    bool pristine_ = false;
    std::vector<PimRegion> regions_;
    std::vector<uint64_t> data_;
};

} // namespace pimeval

#endif // PIMEVAL_CORE_PIM_DATA_OBJECT_H_
