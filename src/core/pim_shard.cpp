/**
 * @file
 * Sharded execution implementation.
 *
 * Every operation talks to the shard devices directly (no
 * thread-local current-context churn): the group holds the K context
 * handles and dispatches to ctx->device. All methods are
 * single-threaded from the caller's perspective — concurrency comes
 * from the shards' own async pipelines.
 */

#include "core/pim_shard.h"

#include <cstring>

#include "core/pim_error.h"
#include "core/pim_metrics.h"
#include "core/pim_sim.h"
#include "util/logging.h"

namespace pimeval {

namespace {

/** Host-buffer bytes per element of a data type. */
uint64_t
hostElemBytes(PimDataType dtype)
{
    return (pimBitsOfDataType(dtype) + 7) / 8;
}

/** Per-shard failure: records @p what and the shard index as the
 *  thread's last error, preserving the device layer's own detail. */
PimStatus
failShard(const char *what, size_t shard)
{
    return fail(strCat(what, ": shard ", shard, " failed (",
                       pimGetLastErrorMessage(), ")"));
}

} // namespace

std::unique_ptr<PimShardGroup>
PimShardGroup::create(const PimDeviceConfig &config, size_t num_shards,
                      PimShardPartition partition,
                      const std::string &label_prefix)
{
    if (num_shards == 0) {
        fail("PimShardGroup: at least one shard required");
        return nullptr;
    }
    std::vector<PimContext> shards;
    shards.reserve(num_shards);
    for (size_t s = 0; s < num_shards; ++s) {
        PimContext ctx = pimCreateContextFromConfig(
            config,
            strCat(label_prefix, ".s", s).c_str());
        if (!ctx) {
            for (PimContext done : shards)
                pimDestroyContext(done);
            return nullptr;
        }
        shards.push_back(ctx);
    }
    PIM_METRIC_COUNT("shard.groups_created", 1);
    PIM_METRIC_COUNT("shard.contexts_created", num_shards);
    return std::unique_ptr<PimShardGroup>(
        new PimShardGroup(std::move(shards), partition));
}

PimShardGroup::PimShardGroup(std::vector<PimContext> shards,
                             PimShardPartition partition)
    : shards_(std::move(shards)), partition_(partition)
{
}

PimShardGroup::~PimShardGroup()
{
    for (PimContext ctx : shards_)
        pimDestroyContext(ctx);
}

PimStatus
PimShardGroup::setExecMode(PimExecEnum mode)
{
    for (PimContext ctx : shards_)
        ctx->device->setExecMode(mode);
    return PimStatus::PIM_OK;
}

void
PimShardGroup::sync()
{
    for (PimContext ctx : shards_)
        ctx->device->sync();
}

std::vector<uint64_t>
PimShardGroup::sliceCounts(uint64_t total) const
{
    const uint64_t k = shards_.size();
    std::vector<uint64_t> counts(k);
    for (uint64_t s = 0; s < k; ++s)
        counts[s] = total / k + (s < total % k ? 1 : 0);
    return counts;
}

const PimShardGroup::ShardedObj *
PimShardGroup::find(PimObjId obj, const char *what) const
{
    const auto it = objs_.find(obj);
    if (it == objs_.end()) {
        fail(strCat(what, ": unknown sharded object id ", obj));
        return nullptr;
    }
    return &it->second;
}

void
PimShardGroup::freeSlices(const ShardedObj &so)
{
    for (size_t s = 0; s < so.slices.size(); ++s)
        if (so.slices[s].obj >= 0)
            shards_[s]->device->free(so.slices[s].obj);
}

PimObjId
PimShardGroup::alloc(PimAllocEnum alloc_type, uint64_t num_elements,
                     PimDataType data_type)
{
    if (num_elements == 0) {
        fail("PimShardGroup::alloc: zero-element allocation");
        return -1;
    }
    ShardedObj so;
    so.dtype = data_type;
    so.total = num_elements;
    const std::vector<uint64_t> counts = sliceCounts(num_elements);
    so.slices.resize(shards_.size());
    for (size_t s = 0; s < shards_.size(); ++s) {
        so.slices[s].count = counts[s];
        if (counts[s] == 0)
            continue;
        so.slices[s].obj = shards_[s]->device->alloc(
            alloc_type, counts[s], data_type);
        if (so.slices[s].obj < 0) {
            freeSlices(so);
            fail(strCat("PimShardGroup::alloc: shard ", s,
                        " allocation failed"));
            return -1;
        }
    }
    const PimObjId id = next_id_++;
    objs_.emplace(id, std::move(so));
    PIM_METRIC_COUNT("shard.allocs", 1);
    return id;
}

PimObjId
PimShardGroup::allocAssociated(PimObjId ref, PimDataType data_type)
{
    const ShardedObj *r = find(ref, "PimShardGroup::allocAssociated");
    if (!r)
        return -1;
    ShardedObj so;
    so.dtype = data_type;
    so.total = r->total;
    so.slices.resize(shards_.size());
    for (size_t s = 0; s < shards_.size(); ++s) {
        so.slices[s].count = r->slices[s].count;
        if (so.slices[s].count == 0)
            continue;
        so.slices[s].obj = shards_[s]->device->allocAssociated(
            r->slices[s].obj, data_type);
        if (so.slices[s].obj < 0) {
            freeSlices(so);
            fail(strCat("PimShardGroup::allocAssociated: shard ", s,
                        " allocation failed"));
            return -1;
        }
    }
    const PimObjId id = next_id_++;
    objs_.emplace(id, std::move(so));
    PIM_METRIC_COUNT("shard.allocs", 1);
    return id;
}

PimStatus
PimShardGroup::free(PimObjId obj)
{
    const auto it = objs_.find(obj);
    if (it == objs_.end())
        return fail(strCat("PimShardGroup::free: unknown sharded "
                           "object id ", obj));
    freeSlices(it->second);
    objs_.erase(it);
    return PimStatus::PIM_OK;
}

uint64_t
PimShardGroup::numElements(PimObjId obj) const
{
    const auto it = objs_.find(obj);
    return it == objs_.end() ? 0 : it->second.total;
}

PimStatus
PimShardGroup::copyHostToDevice(const void *src, PimObjId dest)
{
    const ShardedObj *so = find(dest, "PimShardGroup::copyH2D");
    if (!so)
        return PimStatus::PIM_ERROR;
    if (!src)
        return fail("PimShardGroup::copyH2D: null host source");
    const uint64_t eb = hostElemBytes(so->dtype);
    const auto *bytes = static_cast<const uint8_t *>(src);
    const uint64_t k = shards_.size();

    if (partition_ == PimShardPartition::kBlock) {
        uint64_t offset = 0;
        for (size_t s = 0; s < k; ++s) {
            const Slice &sl = so->slices[s];
            if (sl.count == 0)
                continue;
            if (shards_[s]->device->copyHostToDevice(
                    bytes + offset * eb, sl.obj, 0, sl.count) !=
                PimStatus::PIM_OK)
                return failShard("PimShardGroup::copyH2D", s);
            offset += sl.count;
        }
        return PimStatus::PIM_OK;
    }

    // Round-robin: element i -> shard i % K, slot i / K. Gather into
    // per-shard staging buffers (the device snapshots H2D sources, so
    // the staging buffer may die right after the call).
    std::vector<uint8_t> staging;
    for (size_t s = 0; s < k; ++s) {
        const Slice &sl = so->slices[s];
        if (sl.count == 0)
            continue;
        staging.resize(sl.count * eb);
        for (uint64_t j = 0; j < sl.count; ++j)
            std::memcpy(staging.data() + j * eb,
                        bytes + (j * k + s) * eb, eb);
        if (shards_[s]->device->copyHostToDevice(
                staging.data(), sl.obj, 0, sl.count) !=
            PimStatus::PIM_OK)
            return failShard("PimShardGroup::copyH2D", s);
    }
    return PimStatus::PIM_OK;
}

PimStatus
PimShardGroup::copyDeviceToHost(PimObjId src, void *dest)
{
    const ShardedObj *so = find(src, "PimShardGroup::copyD2H");
    if (!so)
        return PimStatus::PIM_ERROR;
    if (!dest)
        return fail("PimShardGroup::copyD2H: null host destination");
    const uint64_t eb = hostElemBytes(so->dtype);
    auto *bytes = static_cast<uint8_t *>(dest);
    const uint64_t k = shards_.size();

    if (partition_ == PimShardPartition::kBlock) {
        uint64_t offset = 0;
        for (size_t s = 0; s < k; ++s) {
            const Slice &sl = so->slices[s];
            if (sl.count == 0)
                continue;
            if (shards_[s]->device->copyDeviceToHost(
                    sl.obj, bytes + offset * eb, 0, sl.count) !=
                PimStatus::PIM_OK)
                return failShard("PimShardGroup::copyD2H", s);
            offset += sl.count;
        }
        return PimStatus::PIM_OK;
    }

    std::vector<uint8_t> staging;
    for (size_t s = 0; s < k; ++s) {
        const Slice &sl = so->slices[s];
        if (sl.count == 0)
            continue;
        staging.resize(sl.count * eb);
        if (shards_[s]->device->copyDeviceToHost(
                sl.obj, staging.data(), 0, sl.count) !=
            PimStatus::PIM_OK)
            return failShard("PimShardGroup::copyD2H", s);
        for (uint64_t j = 0; j < sl.count; ++j)
            std::memcpy(bytes + (j * k + s) * eb,
                        staging.data() + j * eb, eb);
    }
    return PimStatus::PIM_OK;
}

PimStatus
PimShardGroup::executeBinary(PimCmdEnum cmd, PimObjId a, PimObjId b,
                             PimObjId dest)
{
    const ShardedObj *oa = find(a, "PimShardGroup::executeBinary");
    const ShardedObj *ob = find(b, "PimShardGroup::executeBinary");
    const ShardedObj *od = find(dest, "PimShardGroup::executeBinary");
    if (!oa || !ob || !od)
        return PimStatus::PIM_ERROR;
    PIM_METRIC_COUNT("shard.broadcast_cmds", 1);
    for (size_t s = 0; s < shards_.size(); ++s) {
        if (oa->slices[s].count == 0)
            continue;
        if (shards_[s]->device->executeBinary(
                cmd, oa->slices[s].obj, ob->slices[s].obj,
                od->slices[s].obj) != PimStatus::PIM_OK)
            return failShard("PimShardGroup::executeBinary", s);
    }
    return PimStatus::PIM_OK;
}

PimStatus
PimShardGroup::executeUnary(PimCmdEnum cmd, PimObjId a, PimObjId dest)
{
    const ShardedObj *oa = find(a, "PimShardGroup::executeUnary");
    const ShardedObj *od = find(dest, "PimShardGroup::executeUnary");
    if (!oa || !od)
        return PimStatus::PIM_ERROR;
    PIM_METRIC_COUNT("shard.broadcast_cmds", 1);
    for (size_t s = 0; s < shards_.size(); ++s) {
        if (oa->slices[s].count == 0)
            continue;
        if (shards_[s]->device->executeUnary(
                cmd, oa->slices[s].obj, od->slices[s].obj) !=
            PimStatus::PIM_OK)
            return failShard("PimShardGroup::executeUnary", s);
    }
    return PimStatus::PIM_OK;
}

PimStatus
PimShardGroup::executeScalar(PimCmdEnum cmd, PimObjId a, PimObjId dest,
                             uint64_t scalar)
{
    const ShardedObj *oa = find(a, "PimShardGroup::executeScalar");
    const ShardedObj *od = find(dest, "PimShardGroup::executeScalar");
    if (!oa || !od)
        return PimStatus::PIM_ERROR;
    PIM_METRIC_COUNT("shard.broadcast_cmds", 1);
    for (size_t s = 0; s < shards_.size(); ++s) {
        if (oa->slices[s].count == 0)
            continue;
        if (shards_[s]->device->executeScalar(
                cmd, oa->slices[s].obj, od->slices[s].obj, scalar) !=
            PimStatus::PIM_OK)
            return failShard("PimShardGroup::executeScalar", s);
    }
    return PimStatus::PIM_OK;
}

PimStatus
PimShardGroup::executeScaledAdd(PimObjId a, PimObjId b, PimObjId dest,
                                uint64_t scalar)
{
    const ShardedObj *oa = find(a, "PimShardGroup::executeScaledAdd");
    const ShardedObj *ob = find(b, "PimShardGroup::executeScaledAdd");
    const ShardedObj *od =
        find(dest, "PimShardGroup::executeScaledAdd");
    if (!oa || !ob || !od)
        return PimStatus::PIM_ERROR;
    PIM_METRIC_COUNT("shard.broadcast_cmds", 1);
    for (size_t s = 0; s < shards_.size(); ++s) {
        if (oa->slices[s].count == 0)
            continue;
        if (shards_[s]->device->executeScaledAdd(
                oa->slices[s].obj, ob->slices[s].obj,
                od->slices[s].obj, scalar) != PimStatus::PIM_OK)
            return failShard("PimShardGroup::executeScaledAdd", s);
    }
    return PimStatus::PIM_OK;
}

PimStatus
PimShardGroup::executeBroadcast(PimObjId dest, uint64_t value)
{
    const ShardedObj *od = find(dest, "PimShardGroup::broadcast");
    if (!od)
        return PimStatus::PIM_ERROR;
    PIM_METRIC_COUNT("shard.broadcast_cmds", 1);
    for (size_t s = 0; s < shards_.size(); ++s) {
        if (od->slices[s].count == 0)
            continue;
        if (shards_[s]->device->executeBroadcast(
                od->slices[s].obj, value) != PimStatus::PIM_OK)
            return failShard("PimShardGroup::executeBroadcast", s);
    }
    return PimStatus::PIM_OK;
}

PimStatus
PimShardGroup::executeRedSum(PimObjId a, int64_t *result)
{
    const ShardedObj *oa = find(a, "PimShardGroup::executeRedSum");
    if (!oa)
        return PimStatus::PIM_ERROR;
    if (!result)
        return fail("PimShardGroup::executeRedSum: null result "
                    "pointer");
    // Gather per-shard partials; each per-device reduction blocks on
    // its own dependency cone only, so prior async broadcasts keep
    // overlapping until their shard's turn.
    std::vector<int64_t> partials;
    partials.reserve(shards_.size());
    for (size_t s = 0; s < shards_.size(); ++s) {
        if (oa->slices[s].count == 0)
            continue;
        int64_t partial = 0;
        if (shards_[s]->device->executeRedSum(
                oa->slices[s].obj, 0, 0, &partial) !=
            PimStatus::PIM_OK)
            return failShard("PimShardGroup::executeRedSum", s);
        partials.push_back(partial);
    }
    // Tree combine. Two's-complement addition is associative, so the
    // tree is bit-identical to the left-to-right sum an unsharded
    // reduction would produce.
    while (partials.size() > 1) {
        std::vector<int64_t> next;
        next.reserve((partials.size() + 1) / 2);
        for (size_t i = 0; i + 1 < partials.size(); i += 2) {
            next.push_back(static_cast<int64_t>(
                static_cast<uint64_t>(partials[i]) +
                static_cast<uint64_t>(partials[i + 1])));
            PIM_METRIC_COUNT("shard.redsum_combines", 1);
        }
        if (partials.size() % 2)
            next.push_back(partials.back());
        partials.swap(next);
    }
    *result = partials.empty() ? 0 : partials.front();
    return PimStatus::PIM_OK;
}

PimRunStats
PimShardGroup::aggregatedStats()
{
    sync();
    PimRunStats total;
    for (PimContext ctx : shards_)
        total += ctx->device->stats().snapshot();
    return total;
}

void
PimShardGroup::resetStats()
{
    for (PimContext ctx : shards_)
        ctx->device->resetStats();
}

} // namespace pimeval
