/**
 * @file
 * Analog bit-serial model implementation.
 */

#include "core/perf_energy_analog.h"

#include <algorithm>
#include <mutex>
#include <shared_mutex>

#include "bitserial/analog_microprograms.h"
#include "core/pim_metrics.h"

namespace pimeval {

namespace {

AnalogOpCounts
profileOf(const AnalogProgram &prog)
{
    AnalogOpCounts counts;
    for (const auto &op : prog.ops) {
        switch (op.kind) {
          case AnalogOpKind::kAap:
            counts.aaps += 1;
            break;
          case AnalogOpKind::kAapNot:
            counts.aaps += 2; // in via DCC, complement out
            break;
          case AnalogOpKind::kTra:
            counts.tras += 1;
            break;
        }
    }
    return counts;
}

} // namespace

PerfEnergyAnalog::PerfEnergyAnalog(const PimDeviceConfig &config)
    : PerfEnergyModel(config)
{
}

double
PerfEnergyAnalog::aapTime() const
{
    // Two back-to-back activations sharing one precharge window.
    return 2.0 * (config_.dram.tras_ns + config_.dram.trp_ns) * 1e-9;
}

double
PerfEnergyAnalog::traTime() const
{
    // One extended activation (simultaneous three-row charge share).
    return (config_.dram.tras_ns + config_.dram.trp_ns) * 1e-9;
}

AnalogOpCounts
PerfEnergyAnalog::countsForCmd(PimCmdEnum cmd, unsigned bits,
                               uint64_t scalar, unsigned aux) const
{
    const uint64_t key_scalar = pimCmdHasScalar(cmd) ? scalar : 0;
    const CountsKey key{cmd, bits, key_scalar, aux};
    {
        std::shared_lock<std::shared_mutex> lock(cache_mutex_);
        auto it = counts_cache_.find(key);
        if (it != counts_cache_.end()) {
            PIM_METRIC_COUNT("cache.analog_counts.hit", 1);
            return it->second;
        }
    }
    PIM_METRIC_COUNT("cache.analog_counts.miss", 1);
    const AnalogOpCounts counts =
        generateCounts(cmd, bits, scalar, aux);
    std::unique_lock<std::shared_mutex> lock(cache_mutex_);
    counts_cache_.emplace(key, counts);
    return counts;
}

AnalogOpCounts
PerfEnergyAnalog::generateCounts(PimCmdEnum cmd, unsigned bits,
                                 uint64_t scalar, unsigned aux) const
{
    using M = AnalogMicroPrograms;
    const uint32_t base = AnalogRowGroup::kNumRows;
    const uint32_t a = base;
    const uint32_t b = base + bits;
    const uint32_t d = base + 2 * bits;

    AnalogProgram prog;
    switch (cmd) {
      case PimCmdEnum::kAdd:
        prog = M::add(a, b, d, bits);
        break;
      case PimCmdEnum::kSub:
        prog = M::sub(a, b, d, bits);
        break;
      case PimCmdEnum::kMul:
        prog = M::mul(a, b, d, bits);
        break;
      case PimCmdEnum::kDiv:
      case PimCmdEnum::kDivScalar: {
        // Restoring division synthesized from the analog primitives:
        // n iterations of shift + compare + conditional subtract.
        const auto cmp = M::lessThan(a, b, d, bits, false);
        const auto s = M::sub(a, b, d, bits);
        const auto c = M::copy(a, d, bits + 1);
        AnalogOpCounts counts;
        const auto pc = profileOf(cmp);
        const auto ps = profileOf(s);
        const auto pcp = profileOf(c);
        counts.aaps = bits * (pc.aaps + ps.aaps + pcp.aaps);
        counts.tras = bits * (pc.tras + ps.tras + pcp.tras);
        return counts;
      }
      case PimCmdEnum::kMin:
      case PimCmdEnum::kMax: {
        // Compare, then per-bit select (c&a | ~c&b = 3 MAJ + NOT).
        prog = M::lessThan(a, b, d, bits, true);
        for (unsigned i = 0; i < bits; ++i) {
            prog.append(M::andOp(a + i, d, d, 1));
            prog.append(M::andOp(b + i, d, d, 1));
            prog.append(M::orOp(d, d, d, 1));
        }
        break;
      }
      case PimCmdEnum::kAbs: {
        // NOT + increment (full-adder pass with zero) + select.
        prog = M::notOp(a, d, bits);
        prog.append(M::add(d, d, d, bits));
        break;
      }
      case PimCmdEnum::kAnd:
        prog = M::andOp(a, b, d, bits);
        break;
      case PimCmdEnum::kOr:
        prog = M::orOp(a, b, d, bits);
        break;
      case PimCmdEnum::kXor:
        prog = M::xorOp(a, b, d, bits);
        break;
      case PimCmdEnum::kXnor:
        prog = M::xnorOp(a, b, d, bits);
        break;
      case PimCmdEnum::kNot:
        prog = M::notOp(a, d, bits);
        break;
      case PimCmdEnum::kGT:
      case PimCmdEnum::kLT:
        prog = M::lessThan(a, b, d, bits, true);
        break;
      case PimCmdEnum::kEQ:
      case PimCmdEnum::kNE:
        prog = M::equal(a, b, d, bits);
        break;
      // Scalar variants: the scalar is broadcast into constant rows
      // first, then the vector program runs.
      case PimCmdEnum::kAddScalar:
        prog = M::broadcast(b, bits, scalar);
        prog.append(M::add(a, b, d, bits));
        break;
      case PimCmdEnum::kSubScalar:
        prog = M::broadcast(b, bits, scalar);
        prog.append(M::sub(a, b, d, bits));
        break;
      case PimCmdEnum::kMulScalar:
        prog = M::broadcast(b, bits, scalar);
        prog.append(M::mul(a, b, d, bits));
        break;
      case PimCmdEnum::kMinScalar:
      case PimCmdEnum::kMaxScalar:
        prog = M::broadcast(b, bits, scalar);
        prog.append(M::lessThan(a, b, d, bits, true));
        prog.append(M::copy(a, d, bits));
        break;
      case PimCmdEnum::kAndScalar:
        prog = M::broadcast(b, bits, scalar);
        prog.append(M::andOp(a, b, d, bits));
        break;
      case PimCmdEnum::kOrScalar:
        prog = M::broadcast(b, bits, scalar);
        prog.append(M::orOp(a, b, d, bits));
        break;
      case PimCmdEnum::kXorScalar:
        prog = M::broadcast(b, bits, scalar);
        prog.append(M::xorOp(a, b, d, bits));
        break;
      case PimCmdEnum::kGTScalar:
      case PimCmdEnum::kLTScalar:
        prog = M::broadcast(b, bits, scalar);
        prog.append(M::lessThan(a, b, d, bits, true));
        break;
      case PimCmdEnum::kEQScalar:
        prog = M::broadcast(b, bits, scalar);
        prog.append(M::equal(a, b, d, bits));
        break;
      case PimCmdEnum::kScaledAdd:
        prog = M::broadcast(d, bits, scalar);
        prog.append(M::mul(a, d, d + bits, bits));
        prog.append(M::add(d + bits, b, d, bits));
        break;
      case PimCmdEnum::kShiftBitsLeft:
        prog = M::shiftLeft(a, d, bits, aux);
        break;
      case PimCmdEnum::kShiftBitsRight:
        prog = M::shiftRight(a, d, bits, aux, true);
        break;
      case PimCmdEnum::kPopCount: {
        // Ripple accumulation like the digital design but built from
        // full adders: n x ceil(log2(n+1)) FA steps.
        unsigned w = 1;
        while ((1u << w) <= bits)
            ++w;
        const auto fa = M::add(a, b, d, 1);
        const auto pfa = profileOf(fa);
        AnalogOpCounts counts;
        counts.aaps = bits * w * pfa.aaps;
        counts.tras = bits * w * pfa.tras;
        return counts;
      }
      case PimCmdEnum::kBroadcast:
        prog = M::broadcast(d, bits, scalar);
        break;
      case PimCmdEnum::kCopyD2D:
        prog = M::copy(a, d, bits);
        break;
      default:
        break;
    }
    return profileOf(prog);
}

PimOpCost
PerfEnergyAnalog::costOp(const PimOpProfile &profile) const
{
    // Reductions drain to the host: modeled as a D2H transfer of the
    // object plus a host-side accumulation.
    if (profile.cmd == PimCmdEnum::kRedSum) {
        const uint64_t bytes =
            profile.num_elements * ((profile.bits + 7) / 8);
        PimOpCost cost = costCopy(PimCopyEnum::PIM_COPY_D2H, bytes);
        const HostParams host;
        cost.runtime_sec += static_cast<double>(profile.num_elements) /
            (host.cpu_freq_ghz * 1e9);
        cost.energy_j +=
            background(cost.runtime_sec, profile.cores_used);
        return cost;
    }

    const AnalogOpCounts counts = countsForCmd(
        profile.cmd, profile.bits, profile.scalar, profile.aux);

    const uint64_t cols = config_.colsPerCore();
    const uint64_t chunks =
        (profile.max_elems_per_core + cols - 1) / cols;

    const double chunk_sec =
        static_cast<double>(counts.aaps) * aapTime() +
        static_cast<double>(counts.tras) * traTime();

    PimOpCost cost;
    cost.runtime_sec = chunk_sec * static_cast<double>(chunks);

    // Energy: an AAP is two activations; a TRA is one simultaneous
    // three-row activation (~2x one activation's charge).
    const double e_chunk =
        static_cast<double>(counts.aaps) * 2.0 *
            power_.rowActPreEnergy() +
        static_cast<double>(counts.tras) * 2.0 *
            power_.rowActPreEnergy();
    const uint64_t total_chunks =
        std::max<uint64_t>(1, (profile.num_elements + cols - 1) / cols);
    cost.energy_j = e_chunk * static_cast<double>(total_chunks);
    cost.energy_j += background(cost.runtime_sec, profile.cores_used);
    return cost;
}

} // namespace pimeval
