/**
 * @file
 * Fusion pass implementation: chain planning, tape lowering, and the
 * tile interpreter.
 */

#include "core/pim_fusion.h"

#include <algorithm>

namespace pimeval {

namespace {

/** Tile size of the tape interpreter: 8 KiB of uint64_t lanes — the
 *  whole working set of a tape step stays L1-resident, so a chain of
 *  kernel sweeps over one tile costs close to a single fused loop. */
constexpr size_t kFusionTileWords = 1024;

} // namespace

std::vector<PimFusionChain>
pimPlanFusionChains(const std::vector<PimFusionOpView> &ops,
                    const std::unordered_set<PimObjId> &born,
                    const std::unordered_set<PimObjId> &freed)
{
    std::vector<PimFusionChain> chains;
    const size_t n = ops.size();
    size_t i = 0;
    while (i < n) {
        PimFusionChain chain{{i, false}};
        size_t tail = i;
        while (chain.size() < kMaxFusionChainLen && tail + 1 < n) {
            // A reduction terminates its chain, and an op with no dest
            // (dest == -1) can never be read: both guards matter, or a
            // reduce/fill's -1 operands would spuriously "link".
            if (ops[tail].is_reduce)
                break;
            const PimObjId d = ops[tail].dest;
            if (d < 0)
                break;
            const PimFusionOpView &next = ops[tail + 1];
            if (next.a != d && next.b != d)
                break;
            ++tail;
            chain.push_back({tail, false});
        }

        // Dead-temporary elision for non-final steps: born in the
        // window, freed in the window, written only here, and read
        // only by the immediate successor.
        for (size_t k = 0; k + 1 < chain.size(); ++k) {
            const size_t op_idx = chain[k].op;
            const PimObjId d = ops[op_idx].dest;
            if (born.find(d) == born.end() ||
                freed.find(d) == freed.end())
                continue;
            const size_t successor = chain[k + 1].op;
            bool elide = true;
            for (size_t j = 0; j < n && elide; ++j) {
                if (j != op_idx && ops[j].dest == d)
                    elide = false; // another writer
                if (j != successor &&
                    (ops[j].a == d || ops[j].b == d))
                    elide = false; // read outside the chain link
            }
            chain[k].elide_store = elide;
        }
        chains.push_back(std::move(chain));
        i = tail + 1;
    }
    return chains;
}

bool
PimFusionWindow::noteFree(PimObjId id)
{
    if (freed_.find(id) != freed_.end())
        return false; // double free: resolved by the flush + caller
    const bool written = std::any_of(
        ops_.begin(), ops_.end(),
        [id](const PimFusedOp &op) { return op.dest == id; });
    if (!written)
        return false;
    freed_.insert(id);
    deferred_frees_.push_back(id);
    return true;
}

bool
PimFusionWindow::touches(PimObjId id) const
{
    return std::any_of(ops_.begin(), ops_.end(),
                       [id](const PimFusedOp &op) {
                           return op.a == id || op.b == id ||
                               op.dest == id;
                       });
}

std::vector<PimFusionChain>
PimFusionWindow::plan() const
{
    std::vector<PimFusionOpView> views;
    views.reserve(ops_.size());
    for (const PimFusedOp &op : ops_)
        views.push_back(
            {op.a, op.b, op.dest, op.is_reduce, op.is_fill});
    return pimPlanFusionChains(views, born_, freed_);
}

void
PimFusionWindow::clear()
{
    ops_.clear();
    born_.clear();
    freed_.clear();
    deferred_frees_.clear();
}

PimFusedTape
pimBuildFusedTape(const std::vector<PimFusedOp> &ops,
                  const PimFusionChain &chain)
{
    PimFusedTape tape;
    tape.steps.reserve(chain.size());
    tape.n = ops[chain.front().op].n;

    PimObjId prev_dest = -1;
    for (size_t k = 0; k < chain.size(); ++k) {
        const PimFusedOp &op = ops[chain[k].op];
        if (op.is_reduce) {
            // Reduction terminator: no elementwise step — the tape
            // accumulates the flowing value. The planner guarantees
            // the reduce is the last chain member.
            tape.has_reduce = true;
            tape.red_sgn = op.sgn;
            tape.red_bits = op.bits;
            break;
        }
        PimFusedTapeStep st;
        st.kern2 = op.kern2;
        st.kern1 = op.kern1;
        st.kern_sa = op.kern_sa;
        st.a = op.pa;
        st.b = op.pb;
        // The chain value flows into whichever operand named the
        // previous dest (possibly both, e.g. pimMul(t, t, d)).
        if (k > 0) {
            st.a_is_prev = (op.a == prev_dest);
            st.b_is_prev = (op.b == prev_dest);
        }
        st.scalar = op.scalar;
        st.bits = op.bits;
        st.mask = op.dmask;
        st.store = chain[k].elide_store ? nullptr : op.pd;
        st.is_fill = op.is_fill;
        st.op = op.op;
        st.op_exact = op.op_exact;
        st.sgn = op.sgn;
        tape.steps.push_back(st);
        prev_dest = op.dest;
    }

    // Scalar folding: an elided broadcast fill whose consumer is a
    // plain binary op with the fill on the right-hand side collapses
    // into the consumer as a scalar immediate — scalarChunk computes
    // op(a[i], s) & mask, bit-identical to binaryChunk with b[i] == s
    // for every i (op_exact excludes the negated-kernel kNE capture).
    if (tape.steps.size() >= 2 && tape.steps[0].is_fill &&
        tape.steps[0].store == nullptr) {
        const PimFusedTapeStep &c = tape.steps[1];
        if (c.kern2 && c.op_exact && c.b_is_prev && !c.a_is_prev) {
            PimFusedTapeStep folded = c;
            folded.kern2 = nullptr;
            folded.kern1 = scalarChunkFor(c.op, c.sgn);
            folded.scalar = tape.steps[0].scalar;
            folded.b = nullptr;
            folded.b_is_prev = false;
            tape.steps.erase(tape.steps.begin());
            tape.steps[0] = folded;
            ++tape.folded_fills;
        }
    }

    // Register fast paths: 2-/3-step elementwise tapes and 1-/2-step
    // tapes terminated by a reduction. Only when every intermediate is
    // elided (nothing to store mid-chain), every step is a plain
    // binary/scalar op with one flowing operand, and the signedness is
    // uniform (a compile-time parameter of the fused kernels). A
    // reduction-terminated tape may keep its final store (the Store
    // kernel variant); the reduction width/signedness must match the
    // final step's, which type compatibility already guarantees.
    const size_t len = tape.steps.size();
    if (tape.has_reduce) {
        if (len != 1 && len != 2)
            return tape;
    } else if (len != 2 && len != 3) {
        return tape;
    }
    const bool sgn = tape.steps[0].sgn;
    AlpuOp step_op[3] = {AlpuOp::kAdd, AlpuOp::kAdd, AlpuOp::kAdd};
    for (size_t k = 0; k < len; ++k) {
        const PimFusedTapeStep &st = tape.steps[k];
        if (st.kern_sa || st.is_fill || !st.op_exact || st.sgn != sgn)
            return tape;
        if (k + 1 < len && st.store != nullptr)
            return tape; // materialized intermediate: tile path
        if (k > 0 && st.a_is_prev && st.b_is_prev)
            return tape; // both operands flow: needs the register file
        if (k > 0 && !st.a_is_prev && !st.b_is_prev)
            return tape; // unreachable by construction, but be safe
        step_op[k] = st.op;
    }
    const PimFusedTapeStep &last = tape.steps[len - 1];
    if (tape.has_reduce &&
        (tape.red_sgn != sgn || tape.red_bits != last.bits))
        return tape;

    Fused3Args args;
    args.a = tape.steps[0].a;
    args.d = last.store;
    for (size_t k = 0; k < len; ++k) {
        const PimFusedTapeStep &st = tape.steps[k];
        args.bits[k] = st.bits;
        args.m[k] = st.mask;
        if (k == 0) {
            // Step 0's second operand: vector b or the scalar.
            args.o[0] = st.kern2 ? st.b : nullptr;
            args.s[0] = st.scalar;
        } else if (st.kern2) {
            // One operand flows, the other is the named vector.
            args.prev_rhs[k] = st.b_is_prev;
            args.o[k] = st.b_is_prev ? st.a : st.b;
        } else {
            // Scalar/unary step consuming the flow through a.
            args.o[k] = nullptr;
            args.s[k] = st.scalar;
        }
    }

    if (tape.has_reduce) {
        const bool store = last.store != nullptr;
        if (len == 1) {
            tape.fast_r1 = fusedRedChunk1For(
                step_op[0], sgn, /*v0=*/args.o[0] != nullptr, store);
        } else {
            tape.fast_r2 =
                fusedRedChunk2For(step_op[0], step_op[1], sgn, store);
        }
    } else if (len == 2) {
        tape.fast2 = fusedChunk2For(
            step_op[0], step_op[1], sgn,
            /*v0=*/args.o[0] != nullptr,
            /*v1=*/args.o[1] != nullptr, args.prev_rhs[1]);
    } else {
        // The 3-op kernel resolves operand shape per loop-invariant
        // flag, so any mix of vector/scalar steps shares one
        // instantiation per (op, op, op, signed) combination.
        tape.fast3 =
            fusedChunk3For(step_op[0], step_op[1], step_op[2], sgn);
    }
    if (tape.fast2 || tape.fast3 || tape.fast_r1 || tape.fast_r2) {
        tape.fast_args = args;
        tape.fast_dest = args.d;
    }
    return tape;
}

uint64_t
PimFusedTape::run(size_t lo, size_t hi) const
{
    if (fast2) {
        fast2(fast_args.a, fast_args.o[0], fast_args.s[0],
              fast_args.o[1], fast_args.s[1], fast_dest, lo, hi,
              fast_args.bits[0], fast_args.m[0], fast_args.bits[1],
              fast_args.m[1]);
        return 0;
    }
    if (fast3) {
        fast3(fast_args, lo, hi);
        return 0;
    }
    if (fast_r1)
        return fast_r1(fast_args.a, fast_args.o[0], fast_args.s[0],
                       fast_dest, lo, hi, fast_args.bits[0],
                       fast_args.m[0]);
    if (fast_r2)
        return fast_r2(fast_args, lo, hi);

    // Tile interpreter: evaluate the whole tape over one L1-resident
    // tile before moving on, so intermediates live in cache (or in
    // the stack tile when elided) instead of streaming through memory
    // once per command. A reduction terminator accumulates the tile's
    // flowing value while it is still cache-hot.
    uint64_t part = 0;
    alignas(64) uint64_t tile[kFusionTileWords];
    for (size_t base = lo; base < hi; base += kFusionTileWords) {
        const size_t cnt = std::min(kFusionTileWords, hi - base);
        const uint64_t *prev = nullptr;
        for (const PimFusedTapeStep &st : steps) {
            uint64_t *out = st.store ? st.store + base : tile;
            if (st.is_fill) {
                std::fill(out, out + cnt, st.scalar);
                prev = out;
                continue;
            }
            const uint64_t *a = st.a_is_prev ? prev : st.a + base;
            if (st.kern2) {
                const uint64_t *b = st.b_is_prev ? prev : st.b + base;
                st.kern2(a, b, out, 0, cnt, st.bits, st.mask);
            } else if (st.kern_sa) {
                const uint64_t *b = st.b_is_prev ? prev : st.b + base;
                st.kern_sa(a, b, st.scalar, out, 0, cnt, st.bits,
                           st.mask);
            } else {
                st.kern1(a, st.scalar, out, 0, cnt, st.bits, st.mask);
            }
            prev = out;
        }
        if (has_reduce) {
            if (red_sgn) {
                for (size_t i = 0; i < cnt; ++i)
                    part += static_cast<uint64_t>(
                        alpuSignExtend(prev[i], red_bits));
            } else {
                for (size_t i = 0; i < cnt; ++i)
                    part += prev[i];
            }
        }
    }
    return part;
}

} // namespace pimeval
