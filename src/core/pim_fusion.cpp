/**
 * @file
 * Fusion pass implementation: chain planning, tape lowering, and the
 * tile interpreter.
 */

#include "core/pim_fusion.h"

#include <algorithm>
#include <unordered_map>

#if defined(__AVX2__)
#include <immintrin.h>
#endif

namespace pimeval {

namespace {

/** Tile size of the tape interpreter: 8 KiB of uint64_t lanes — the
 *  whole working set of a tape step stays L1-resident, so a chain of
 *  kernel sweeps over one tile costs close to a single fused loop. */
constexpr size_t kFusionTileWords = 1024;

/**
 * Inline host-source scaledAdd: out[i] = (lane(i) * s + b[i]) with
 * the step's width/mask semantics. Composes the conversion kernel's
 * lane load (memcpy of Bytes, then & load_mask — see
 * pimHostToDeviceChunk) with scaledAddChunk's arithmetic in a single
 * loop, so the dominant GEMV/GEMM tape shape skips the scratch-tile
 * round trip. Bit-identical to the two-stage path by construction.
 */
template <unsigned Bytes, bool Signed>
void
hostScaledAddChunk(const uint8_t *ha, const uint64_t *b, uint64_t s,
                   uint64_t *d, size_t cnt, unsigned bits,
                   uint64_t mask, uint64_t load_mask)
{
    for (size_t i = 0; i < cnt; ++i) {
        uint64_t a = 0;
        std::memcpy(&a, ha + i * Bytes, Bytes);
        a &= load_mask;
        const uint64_t prod =
            alpuComputeT<AlpuOp::kMul>(a, s, bits, Signed);
        d[i] = alpuComputeT<AlpuOp::kAdd>(prod, b[i], bits, Signed) &
            mask;
    }
}

/**
 * Width-specialized variant for the common full-width case: the
 * element width equals the host stride and both masks are the full
 * width-bits mask. With the width a compile-time constant the
 * compiler sees every lane fits the element width (the 4-byte load
 * zero-extends, the scalar is pre-truncated), so the multiply
 * vectorizes (32x32->64 lanes) where the runtime-width loop stays
 * scalar. Bit-identical to hostScaledAddChunk under the dispatch
 * preconditions: trunc-to-bits and &mask coincide when mask is the
 * full width mask.
 */
template <unsigned Bytes>
void
hostScaledAddChunkW(const uint8_t *ha, const uint64_t *b, uint64_t s,
                    uint64_t *d, size_t cnt, unsigned /*bits*/,
                    uint64_t /*mask*/, uint64_t /*load_mask*/)
{
    constexpr uint64_t kM =
        Bytes == 8 ? ~0ull : ((1ull << (Bytes * 8)) - 1);
    const uint64_t su = s & kM;
    for (size_t i = 0; i < cnt; ++i) {
        uint64_t a = 0;
        std::memcpy(&a, ha + i * Bytes, Bytes);
        const uint64_t prod = (a * su) & kM;
        d[i] = (prod + (b[i] & kM)) & kM;
    }
}

#if defined(__AVX2__)
/**
 * Hand-vectorized 32-bit full-width kernel. The autovectorizer's cost
 * model rejects this shape (32-bit host lanes against 64-bit device
 * lanes needs truncate/widen shuffles), leaving a 4-instruction
 * scalar loop whose throughput swings with code placement from build
 * to build. Eight lanes per iteration: everything is mod 2^32, so
 * truncate b to dwords, vpmulld + vpaddd, zero-extend back to qwords.
 * Bit-identical to hostScaledAddChunkW<4>.
 */
void
hostScaledAddChunk4Avx2(const uint8_t *ha, const uint64_t *b,
                        uint64_t s, uint64_t *d, size_t cnt,
                        unsigned /*bits*/, uint64_t /*mask*/,
                        uint64_t /*load_mask*/)
{
    const uint32_t su = static_cast<uint32_t>(s);
    const __m256i vs = _mm256_set1_epi32(static_cast<int>(su));
    size_t i = 0;
    for (; i + 8 <= cnt; i += 8) {
        const __m256i a = _mm256_loadu_si256(
            reinterpret_cast<const __m256i *>(ha + i * 4));
        const __m256i blo = _mm256_loadu_si256(
            reinterpret_cast<const __m256i *>(b + i));
        const __m256i bhi = _mm256_loadu_si256(
            reinterpret_cast<const __m256i *>(b + i + 4));
        // Low dwords of 8 qwords: pick even dwords of both halves,
        // then fix the 128-bit lane interleave shuffle_ps leaves.
        const __m256 packed = _mm256_shuffle_ps(
            _mm256_castsi256_ps(blo), _mm256_castsi256_ps(bhi),
            _MM_SHUFFLE(2, 0, 2, 0));
        const __m256i b32 = _mm256_permute4x64_epi64(
            _mm256_castps_si256(packed), _MM_SHUFFLE(3, 1, 2, 0));
        const __m256i r32 = _mm256_add_epi32(
            _mm256_mullo_epi32(a, vs), b32);
        _mm256_storeu_si256(
            reinterpret_cast<__m256i *>(d + i),
            _mm256_cvtepu32_epi64(_mm256_castsi256_si128(r32)));
        _mm256_storeu_si256(
            reinterpret_cast<__m256i *>(d + i + 4),
            _mm256_cvtepu32_epi64(
                _mm256_extracti128_si256(r32, 1)));
    }
    for (; i < cnt; ++i) {
        uint32_t a;
        std::memcpy(&a, ha + i * 4, 4);
        d[i] = static_cast<uint32_t>(
            a * su + static_cast<uint32_t>(b[i]));
    }
}
#endif // __AVX2__

using HostScaledAddFn = void (*)(const uint8_t *, const uint64_t *,
                                 uint64_t, uint64_t *, size_t,
                                 unsigned, uint64_t, uint64_t);

HostScaledAddFn
hostScaledAddFor(unsigned stride_bytes, bool sgn, unsigned bits,
                 uint64_t mask, uint64_t load_mask)
{
    // scaledAdd is mul+add: neither depends on signedness, so the
    // width-specialized kernel covers signed and unsigned alike when
    // the widths line up and the masks are full-width.
    const uint64_t full =
        bits == 64 ? ~0ull : ((1ull << bits) - 1);
    if (bits == stride_bytes * 8 && mask == full &&
        load_mask == full) {
        switch (stride_bytes) {
          case 1:
            return &hostScaledAddChunkW<1>;
          case 2:
            return &hostScaledAddChunkW<2>;
          case 4:
#if defined(__AVX2__)
            return &hostScaledAddChunk4Avx2;
#else
            return &hostScaledAddChunkW<4>;
#endif
          case 8:
            return &hostScaledAddChunkW<8>;
          default:
            break;
        }
    }
    switch (stride_bytes) {
      case 1:
        return sgn ? &hostScaledAddChunk<1, true>
                   : &hostScaledAddChunk<1, false>;
      case 2:
        return sgn ? &hostScaledAddChunk<2, true>
                   : &hostScaledAddChunk<2, false>;
      case 4:
        return sgn ? &hostScaledAddChunk<4, true>
                   : &hostScaledAddChunk<4, false>;
      case 8:
        return sgn ? &hostScaledAddChunk<8, true>
                   : &hostScaledAddChunk<8, false>;
      default:
        return nullptr;
    }
}

} // namespace

std::shared_ptr<uint8_t[]>
PimSnapshotPool::acquire(size_t bytes)
{
    std::unique_ptr<uint8_t[]> mem;
    size_t cap = bytes;
    {
        std::lock_guard<std::mutex> lk(mu_);
        size_t best = free_.size();
        for (size_t i = 0; i < free_.size(); ++i) {
            if (free_[i].cap < bytes)
                continue;
            if (best == free_.size() ||
                free_[i].cap < free_[best].cap)
                best = i;
        }
        if (best < free_.size()) {
            cap = free_[best].cap;
            mem = std::move(free_[best].mem);
            free_[best] = std::move(free_.back());
            free_.pop_back();
        }
    }
    if (!mem)
        mem.reset(new uint8_t[bytes]);
    uint8_t *raw = mem.release();
    auto self = shared_from_this();
    return std::shared_ptr<uint8_t[]>(
        raw, [self = std::move(self), cap](uint8_t *p) {
            self->release(p, cap);
        });
}

void
PimSnapshotPool::release(uint8_t *p, size_t cap)
{
    std::unique_ptr<uint8_t[]> mem(p);
    std::lock_guard<std::mutex> lk(mu_);
    if (free_.size() < kMaxRetained)
        free_.push_back({cap, std::move(mem)});
    // Over the cap: mem's destructor frees the block.
}

std::vector<PimFusionChain>
pimPlanFusionChains(const std::vector<PimFusionOpView> &ops,
                    const std::unordered_set<PimObjId> &born,
                    const std::unordered_set<PimObjId> &freed)
{
    std::vector<PimFusionChain> chains;
    const size_t n = ops.size();
    size_t i = 0;
    while (i < n) {
        PimFusionChain chain{{i, false}};
        size_t tail = i;
        // Chain dataflow state: the flowing value (the last
        // compute/fill member's dest) plus the dests of absorbed
        // loads. A load overwriting the flow's object invalidates the
        // flow id — the id now names the loaded data, which only
        // operand resolution (not the flowing tile) can supply.
        PimObjId flow = -1;
        size_t compute_len = 0;
        std::unordered_set<PimObjId> load_dests;
        const auto note = [&](size_t idx) {
            const PimFusionOpView &o = ops[idx];
            if (o.is_load) {
                load_dests.insert(o.dest);
                if (o.dest == flow)
                    flow = -1;
            } else if (!o.is_reduce) {
                flow = o.dest;
                ++compute_len;
            }
        };
        note(i);
        while (tail + 1 < n && !ops[tail].is_reduce) {
            const PimFusionOpView &next = ops[tail + 1];
            bool join;
            if (next.is_load) {
                // Loads ride along unconditionally: the tape runs
                // them in window position, keeping stats commits in
                // issue order; they never touch the compute flow.
                join = true;
            } else if (next.is_fill) {
                join = false; // fills read nothing: only open chains
            } else if (compute_len >= kMaxFusionChainLen) {
                join = false;
            } else if (next.is_reduce) {
                // The reduce terminator has no operand slot in the
                // tape — it accumulates the flowing value, so it may
                // only join by reading the (unshadowed) flow.
                join = flow >= 0 && next.a == flow;
            } else {
                join = (flow >= 0 &&
                        (next.a == flow || next.b == flow)) ||
                    (next.a >= 0 && load_dests.count(next.a) > 0) ||
                    (next.b >= 0 && load_dests.count(next.b) > 0);
            }
            if (!join)
                break;
            ++tail;
            chain.push_back({tail, false});
            note(tail);
        }

        // Order-aware store elision (see pim_fusion.h). Only multi-op
        // chains elide: singleton chains execute through the unfused
        // command path, which always stores.
        if (chain.size() > 1) {
            for (size_t k = 0; k < chain.size(); ++k) {
                const size_t w = chain[k].op;
                const PimFusionOpView &o = ops[w];
                if (o.is_reduce || o.dest < 0)
                    continue;
                // The next window command overwriting dest (if any).
                size_t p = n;
                for (size_t j = w + 1; j < n; ++j) {
                    if (ops[j].dest == o.dest) {
                        p = j;
                        break;
                    }
                }
                if (p == n && (born.find(o.dest) == born.end() ||
                               freed.find(o.dest) == freed.end()))
                    continue; // value live past the window
                // Readers in (w, p] — p included because a command
                // reads its operands before storing.
                const size_t limit = (p == n) ? n : p + 1;
                bool elide = true;
                if (o.is_load) {
                    // Every reader must be a later member of this
                    // chain (chains are contiguous, so readers up to
                    // the chain tail qualify automatically; any
                    // reader beyond it forces materialization).
                    const size_t chain_tail = chain.back().op;
                    for (size_t j = w + 1; j < limit && elide; ++j) {
                        if (ops[j].a != o.dest && ops[j].b != o.dest)
                            continue;
                        if (j > chain_tail)
                            elide = false;
                    }
                } else {
                    // Compute/fill: the only permitted reader is the
                    // chain's next compute member, which consumes the
                    // value as the flowing tile. The final compute
                    // store of a chain always materializes.
                    size_t succ = n;
                    for (size_t k2 = k + 1; k2 < chain.size(); ++k2) {
                        if (!ops[chain[k2].op].is_load) {
                            succ = chain[k2].op;
                            break;
                        }
                    }
                    if (succ == n)
                        continue;
                    for (size_t j = w + 1; j < limit && elide; ++j) {
                        if ((ops[j].a == o.dest || ops[j].b == o.dest) &&
                            j != succ)
                            elide = false;
                    }
                }
                chain[k].elide_store = elide;
            }
        }
        chains.push_back(std::move(chain));
        i = tail + 1;
    }
    return chains;
}

bool
PimFusionWindow::noteFree(PimObjId id)
{
    if (freed_.find(id) != freed_.end())
        return false; // double free: resolved by the flush + caller
    const bool written = std::any_of(
        ops_.begin(), ops_.end(),
        [id](const PimFusedOp &op) { return op.dest == id; });
    if (!written)
        return false;
    freed_.insert(id);
    deferred_frees_.push_back(id);
    return true;
}

bool
PimFusionWindow::touches(PimObjId id) const
{
    return std::any_of(ops_.begin(), ops_.end(),
                       [id](const PimFusedOp &op) {
                           return op.a == id || op.b == id ||
                               op.dest == id;
                       });
}

std::vector<PimFusionChain>
PimFusionWindow::plan() const
{
    std::vector<PimFusionOpView> views;
    views.reserve(ops_.size());
    for (const PimFusedOp &op : ops_)
        views.push_back({op.a, op.b, op.dest, op.is_reduce,
                         op.is_fill, op.is_load});
    return pimPlanFusionChains(views, born_, freed_);
}

void
PimFusionWindow::clear()
{
    ops_.clear();
    born_.clear();
    freed_.clear();
    deferred_frees_.clear();
}

PimFusedTape
pimBuildFusedTape(const std::vector<PimFusedOp> &ops,
                  const PimFusionChain &chain)
{
    PimFusedTape tape;
    tape.steps.reserve(chain.size());
    tape.n = ops[chain.front().op].n;

    // Latest in-chain writer per object id: consumers resolve their
    // operands against it. An elided compute/fill flows through the
    // tile (the elision rule guarantees its consumer is the very next
    // compute step); an elided load supplies the host snapshot; a
    // materialized writer supplies plain memory (already stored
    // earlier in the same tile pass).
    struct Writer
    {
        size_t op = 0; ///< window index into @p ops
        bool elided = false;
        bool is_load = false;
    };
    std::unordered_map<PimObjId, Writer> writers;

    const auto resolve =
        [&](PimObjId id, const uint64_t *mem, const uint64_t *&slot,
            bool &is_prev, const uint8_t *&host,
            PimHostToDeviceChunkFn &load_kern, unsigned &stride,
            uint64_t &load_mask) {
            slot = mem;
            const auto it = writers.find(id);
            if (it == writers.end() || !it->second.elided)
                return;
            const PimFusedOp &w = ops[it->second.op];
            if (it->second.is_load) {
                slot = nullptr;
                host = w.host.get();
                load_kern = w.load_kern;
                stride = w.host_stride;
                load_mask = w.dmask;
            } else {
                slot = nullptr;
                is_prev = true;
            }
        };

    for (size_t k = 0; k < chain.size(); ++k) {
        const PimFusedOp &op = ops[chain[k].op];
        if (op.is_reduce) {
            // Reduction terminator: no elementwise step — the tape
            // accumulates the flowing value. The planner guarantees
            // the reduce is the last chain member and reads the flow.
            tape.has_reduce = true;
            tape.red_sgn = op.sgn;
            tape.red_bits = op.bits;
            break;
        }
        if (op.is_load) {
            if (chain[k].elide_store) {
                // Never materialized: consumers read tile slices
                // straight from the snapshot.
                writers[op.dest] = {chain[k].op, true, true};
                continue;
            }
            PimFusedTapeStep st;
            st.is_load = true;
            st.host_a = op.host.get();
            st.load_a = op.load_kern;
            st.host_stride_a = op.host_stride;
            st.bits = op.bits;
            st.mask = op.dmask;
            st.store = op.pd;
            tape.steps.push_back(st);
            writers[op.dest] = {chain[k].op, false, true};
            continue;
        }
        PimFusedTapeStep st;
        st.kern2 = op.kern2;
        st.kern1 = op.kern1;
        st.kern_sa = op.kern_sa;
        if (!op.is_fill) {
            resolve(op.a, op.pa, st.a, st.a_is_prev, st.host_a,
                    st.load_a, st.host_stride_a, st.load_mask_a);
            if (op.b >= 0)
                resolve(op.b, op.pb, st.b, st.b_is_prev, st.host_b,
                        st.load_b, st.host_stride_b, st.load_mask_b);
        }
        if (st.kern_sa && st.host_a && !st.host_b)
            st.kern_hsa =
                hostScaledAddFor(st.host_stride_a, op.sgn, op.bits,
                                 op.dmask, st.load_mask_a);
        st.scalar = op.scalar;
        st.bits = op.bits;
        st.mask = op.dmask;
        st.store = chain[k].elide_store ? nullptr : op.pd;
        st.is_fill = op.is_fill;
        st.op = op.op;
        st.op_exact = op.op_exact;
        st.sgn = op.sgn;
        tape.steps.push_back(st);
        writers[op.dest] = {chain[k].op, chain[k].elide_store, false};
    }

    // Scalar folding: an elided broadcast fill whose consumer is a
    // plain binary op with the fill on the right-hand side collapses
    // into the consumer as a scalar immediate — scalarChunk computes
    // op(a[i], s) & mask, bit-identical to binaryChunk with b[i] == s
    // for every i (op_exact excludes the negated-kernel kNE capture).
    if (tape.steps.size() >= 2 && tape.steps[0].is_fill &&
        tape.steps[0].store == nullptr) {
        const PimFusedTapeStep &c = tape.steps[1];
        if (c.kern2 && c.op_exact && c.b_is_prev && !c.a_is_prev) {
            PimFusedTapeStep folded = c;
            folded.kern2 = nullptr;
            folded.kern1 = scalarChunkFor(c.op, c.sgn);
            folded.scalar = tape.steps[0].scalar;
            folded.b = nullptr;
            folded.b_is_prev = false;
            tape.steps.erase(tape.steps.begin());
            tape.steps[0] = folded;
            ++tape.folded_fills;
        }
    }

    // Register fast paths: 2-/3-step elementwise tapes and 1-/2-step
    // tapes terminated by a reduction. Only when every intermediate is
    // elided (nothing to store mid-chain), every step is a plain
    // binary/scalar op with one flowing operand, and the signedness is
    // uniform (a compile-time parameter of the fused kernels). A
    // reduction-terminated tape may keep its final store (the Store
    // kernel variant); the reduction width/signedness must match the
    // final step's, which type compatibility already guarantees.
    const size_t len = tape.steps.size();
    if (tape.has_reduce) {
        if (len != 1 && len != 2)
            return tape;
    } else if (len != 2 && len != 3) {
        return tape;
    }
    const bool sgn = tape.steps[0].sgn;
    AlpuOp step_op[3] = {AlpuOp::kAdd, AlpuOp::kAdd, AlpuOp::kAdd};
    for (size_t k = 0; k < len; ++k) {
        const PimFusedTapeStep &st = tape.steps[k];
        if (st.kern_sa || st.is_fill || !st.op_exact || st.sgn != sgn)
            return tape;
        if (st.is_load || st.host_a || st.host_b)
            return tape; // host-source steps: tile path only
        if (k + 1 < len && st.store != nullptr)
            return tape; // materialized intermediate: tile path
        if (k > 0 && st.a_is_prev && st.b_is_prev)
            return tape; // both operands flow: needs the register file
        if (k > 0 && !st.a_is_prev && !st.b_is_prev)
            return tape; // unreachable by construction, but be safe
        step_op[k] = st.op;
    }
    const PimFusedTapeStep &last = tape.steps[len - 1];
    if (tape.has_reduce &&
        (tape.red_sgn != sgn || tape.red_bits != last.bits))
        return tape;

    Fused3Args args;
    args.a = tape.steps[0].a;
    args.d = last.store;
    for (size_t k = 0; k < len; ++k) {
        const PimFusedTapeStep &st = tape.steps[k];
        args.bits[k] = st.bits;
        args.m[k] = st.mask;
        if (k == 0) {
            // Step 0's second operand: vector b or the scalar.
            args.o[0] = st.kern2 ? st.b : nullptr;
            args.s[0] = st.scalar;
        } else if (st.kern2) {
            // One operand flows, the other is the named vector.
            args.prev_rhs[k] = st.b_is_prev;
            args.o[k] = st.b_is_prev ? st.a : st.b;
        } else {
            // Scalar/unary step consuming the flow through a.
            args.o[k] = nullptr;
            args.s[k] = st.scalar;
        }
    }

    if (tape.has_reduce) {
        const bool store = last.store != nullptr;
        if (len == 1) {
            tape.fast_r1 = fusedRedChunk1For(
                step_op[0], sgn, /*v0=*/args.o[0] != nullptr, store);
        } else {
            tape.fast_r2 =
                fusedRedChunk2For(step_op[0], step_op[1], sgn, store);
        }
    } else if (len == 2) {
        tape.fast2 = fusedChunk2For(
            step_op[0], step_op[1], sgn,
            /*v0=*/args.o[0] != nullptr,
            /*v1=*/args.o[1] != nullptr, args.prev_rhs[1]);
    } else {
        // The 3-op kernel resolves operand shape per loop-invariant
        // flag, so any mix of vector/scalar steps shares one
        // instantiation per (op, op, op, signed) combination.
        tape.fast3 =
            fusedChunk3For(step_op[0], step_op[1], step_op[2], sgn);
    }
    if (tape.fast2 || tape.fast3 || tape.fast_r1 || tape.fast_r2) {
        tape.fast_args = args;
        tape.fast_dest = args.d;
    }
    return tape;
}

uint64_t
PimFusedTape::run(size_t lo, size_t hi) const
{
    if (fast2) {
        fast2(fast_args.a, fast_args.o[0], fast_args.s[0],
              fast_args.o[1], fast_args.s[1], fast_dest, lo, hi,
              fast_args.bits[0], fast_args.m[0], fast_args.bits[1],
              fast_args.m[1]);
        return 0;
    }
    if (fast3) {
        fast3(fast_args, lo, hi);
        return 0;
    }
    if (fast_r1)
        return fast_r1(fast_args.a, fast_args.o[0], fast_args.s[0],
                       fast_dest, lo, hi, fast_args.bits[0],
                       fast_args.m[0]);
    if (fast_r2)
        return fast_r2(fast_args, lo, hi);

    // Tile interpreter: evaluate the whole tape over one L1-resident
    // tile before moving on, so intermediates live in cache (or in
    // the stack tile when elided) instead of streaming through memory
    // once per command. A reduction terminator accumulates the tile's
    // flowing value while it is still cache-hot.
    uint64_t part = 0;
    alignas(64) uint64_t tile[kFusionTileWords];
    alignas(64) uint64_t load_a[kFusionTileWords];
    alignas(64) uint64_t load_b[kFusionTileWords];
    for (size_t base = lo; base < hi; base += kFusionTileWords) {
        const size_t cnt = std::min(kFusionTileWords, hi - base);
        const uint64_t *prev = nullptr;
        for (const PimFusedTapeStep &st : steps) {
            if (st.is_load) {
                // Standalone materialized load: convert the host tile
                // slice into device storage. Does not touch the flow.
                st.load_a(st.host_a + base * st.host_stride_a,
                          st.store + base, 0, cnt, st.mask);
                continue;
            }
            uint64_t *out = st.store ? st.store + base : tile;
            if (st.is_fill) {
                std::fill(out, out + cnt, st.scalar);
                prev = out;
                continue;
            }
            if (st.kern_hsa) {
                // Host-source scaledAdd: convert-and-compute in one
                // pass, no scratch tile.
                const uint64_t *b =
                    st.b_is_prev ? prev : st.b + base;
                st.kern_hsa(st.host_a + base * st.host_stride_a, b,
                            st.scalar, out, cnt, st.bits, st.mask,
                            st.load_mask_a);
                prev = out;
                continue;
            }
            const uint64_t *a;
            if (st.host_a) {
                // Host-source operand: the producing copy was elided,
                // so the tile slice converts straight from the
                // snapshot into a scratch tile.
                st.load_a(st.host_a + base * st.host_stride_a, load_a,
                          0, cnt, st.load_mask_a);
                a = load_a;
            } else {
                a = st.a_is_prev ? prev : st.a + base;
            }
            if (st.kern2 || st.kern_sa) {
                const uint64_t *b;
                if (st.host_b) {
                    st.load_b(st.host_b + base * st.host_stride_b,
                              load_b, 0, cnt, st.load_mask_b);
                    b = load_b;
                } else {
                    b = st.b_is_prev ? prev : st.b + base;
                }
                if (st.kern2)
                    st.kern2(a, b, out, 0, cnt, st.bits, st.mask);
                else
                    st.kern_sa(a, b, st.scalar, out, 0, cnt, st.bits,
                               st.mask);
            } else {
                st.kern1(a, st.scalar, out, 0, cnt, st.bits, st.mask);
            }
            prev = out;
        }
        if (has_reduce) {
            if (red_sgn) {
                for (size_t i = 0; i < cnt; ++i)
                    part += static_cast<uint64_t>(
                        alpuSignExtend(prev[i], red_bits));
            } else {
                for (size_t i = 0; i < cnt; ++i)
                    part += prev[i];
            }
        }
    }
    return part;
}

} // namespace pimeval
