/**
 * @file
 * Simulator singleton holding the active PIM device.
 *
 * The public C-style PIM API (pim_api.h) dispatches through this
 * object, mirroring the original PIMeval library structure where one
 * simulated device is active per process.
 */

#ifndef PIMEVAL_CORE_PIM_SIM_H_
#define PIMEVAL_CORE_PIM_SIM_H_

#include <memory>
#include <string>

#include "core/pim_device.h"

namespace pimeval {

class PimSim
{
  public:
    /** Process-wide instance. */
    static PimSim &instance();

    PimSim(const PimSim &) = delete;
    PimSim &operator=(const PimSim &) = delete;

    /** Create the active device; fails if one already exists. */
    PimStatus createDevice(const PimDeviceConfig &config);

    /** Destroy the active device. */
    PimStatus deleteDevice();

    /** Active device, or nullptr. */
    PimDevice *device() { return device_.get(); }

    bool hasDevice() const { return device_ != nullptr; }

  private:
    PimSim() = default;

    std::unique_ptr<PimDevice> device_;

    /** Export path when tracing was armed via PIMEVAL_TRACE. */
    std::string env_trace_path_;
};

} // namespace pimeval

#endif // PIMEVAL_CORE_PIM_SIM_H_
