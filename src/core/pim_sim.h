/**
 * @file
 * Simulator context registry holding every active PIM device.
 *
 * Historically one simulated device was active per process behind a
 * singleton; the registry generalizes that to N independent contexts
 * (pimCreateContext in core/pim_context.h), each owning its own
 * PimDevice — resource manager, command pipeline, fusion window, and
 * statistics included — so contexts execute concurrently on host
 * threads with zero shared mutable state between them.
 *
 * The original global C API keeps working unchanged: it resolves the
 * calling thread's *current* context (a thread-local set by
 * pimSetCurrentContext), falling back to the *process-default*
 * context, which is exactly the device pimCreateDevice creates. A
 * program that never touches the context API behaves as before; a
 * program that pins a different context per host thread runs the same
 * global calls against per-thread devices concurrently.
 */

#ifndef PIMEVAL_CORE_PIM_SIM_H_
#define PIMEVAL_CORE_PIM_SIM_H_

#include <atomic>
#include <cstdint>
#include <memory>
#include <mutex>
#include <string>
#include <utility>
#include <vector>

#include "core/pim_device.h"

namespace pimeval {

/**
 * One registered context: an id (stable, never reused within a
 * process), a label for trace/report naming, and the owned device.
 * The public opaque handle PimContext points at one of these.
 */
struct PimContextRec
{
    uint32_t id = 0;
    std::string label;
    std::unique_ptr<PimDevice> device;
    /** True for the context pimCreateDevice manages. */
    bool is_default = false;
};

class PimSim
{
  public:
    /** Process-wide instance. */
    static PimSim &instance();

    PimSim(const PimSim &) = delete;
    PimSim &operator=(const PimSim &) = delete;

    // --- Legacy global-API path (process-default context) ---

    /** Create the process-default device; fails if one already
     *  exists. Honors PIMEVAL_TRACE (trace armed for the device's
     *  lifetime, exported at deleteDevice). */
    PimStatus createDevice(const PimDeviceConfig &config);

    /** Destroy the process-default device. */
    PimStatus deleteDevice();

    /**
     * Device of the calling thread's current context: the context set
     * by setCurrentContext on this thread, else the process default.
     * nullptr when neither exists. This is the single dispatch point
     * of the global C API.
     */
    PimDevice *device();

    bool hasDevice() { return device() != nullptr; }

    // --- Context registry (API v2) ---

    /**
     * Register a new independent context. @return the record, or
     * nullptr on failure (device type NONE). Thread-safe.
     */
    PimContextRec *createContext(const PimDeviceConfig &config,
                                 const std::string &label);

    /**
     * Destroy a context. Fails on unknown/already-destroyed handles.
     * The caller must ensure no other thread is executing in the
     * context. A destroyed context that is some thread's current
     * context simply stops resolving (falls back to the default).
     */
    PimStatus destroyContext(PimContextRec *ctx);

    /** Whether @p ctx is a live registered context. */
    bool validContext(const PimContextRec *ctx);

    /** The process-default context record (nullptr when none). */
    PimContextRec *defaultContext()
    {
        return default_ctx_.load(std::memory_order_acquire);
    }

    /**
     * Pin @p ctx as the calling thread's current context (nullptr
     * unpins, restoring default-context resolution). Validated;
     * returns PIM_ERROR for dead handles.
     */
    PimStatus setCurrentContext(PimContextRec *ctx);

    /** The calling thread's pinned context (nullptr when unpinned or
     *  the pinned context has been destroyed). */
    PimContextRec *currentContext();

    /** Live context count (for tests and reports). */
    size_t numContexts();

    /** (id, label) of every live context, for reports (the profiler
     *  exports each context's metric domain under these). */
    std::vector<std::pair<uint32_t, std::string>> listContexts();

  private:
    PimSim() = default;

    /** Register under the lock; assigns the next context id. */
    PimContextRec *registerContext(const PimDeviceConfig &config,
                                   const std::string &label,
                                   bool is_default);

    std::mutex mutex_;
    /** Live contexts; erase on destroy. */
    std::vector<std::unique_ptr<PimContextRec>> contexts_;
    /** Ids start at 1: the first (default) context keeps the legacy
     *  modeled-trace pid 2 = 1 + id. Never reused. */
    uint32_t next_ctx_id_ = 1;

    /** Hot-path default-context pointer (global API fallback). */
    std::atomic<PimContextRec *> default_ctx_{nullptr};

    /** Export path when tracing was armed via PIMEVAL_TRACE. */
    std::string env_trace_path_;

    /** Export path when profiling was armed via PIMEVAL_PROFILE. */
    std::string env_profile_path_;
};

} // namespace pimeval

#endif // PIMEVAL_CORE_PIM_SIM_H_
