/**
 * @file
 * Asynchronous PIM command pipeline: dependency-tracked out-of-order
 * execution of enqueued API calls with strictly in-order statistics
 * commit.
 *
 * Every non-blocking API call in PIM_EXEC_ASYNC mode becomes a
 * PimPipeline command carrying the read and write sets of the object
 * ids it touches. The scheduler dispatches a command as soon as all of
 * its hazards are resolved:
 *   - RAW: the command reads an object whose last writer has not
 *     executed yet;
 *   - WAR: the command writes an object some earlier unexecuted
 *     command still reads;
 *   - WAW: the command writes an object whose last writer has not
 *     executed yet.
 * Independent chains therefore execute concurrently on the pipeline's
 * worker threads while each command's chunked kernels continue to use
 * the device's shared ThreadPool for intra-command parallelism.
 *
 * Functional results are identical to synchronous execution because
 * commands run in data-dependency order and every kernel is
 * order-insensitive within a command. Modeled statistics are
 * bit-identical because each command captures its perf/energy costs
 * into a private PimStatsDelta at execution time and the pipeline
 * applies the deltas to the PimStatsMgr strictly in issue order
 * (floating-point accumulation order is preserved exactly).
 *
 * Blocking points drain only the dependency cone they need:
 * waitSeq()/waitObject() wait for execution (not commit) of the
 * transitive dependencies of one command or object, while sync()
 * drains and commits everything. A blocked issuer does not sleep
 * while ready commands exist: it executes them itself
 * (helpExecuteOne), so on hosts with few cores a serialized
 * dependency chain runs inline on the issuing thread — async
 * dispatch stays at parity with synchronous execution instead of
 * paying a worker wake/sleep round trip per command.
 */

#ifndef PIMEVAL_CORE_PIM_PIPELINE_H_
#define PIMEVAL_CORE_PIM_PIPELINE_H_

#include <condition_variable>
#include <cstdint>
#include <deque>
#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <thread>
#include <unordered_map>
#include <vector>

#include "core/perf_energy_model.h"
#include "core/pim_stats.h"
#include "core/pim_types.h"

namespace pimeval {

/**
 * Statistics side effects of one command, captured at execution time
 * and applied to the PimStatsMgr at in-order commit time.
 */
struct PimStatsDelta
{
    struct CmdRec
    {
        PimStatsMgr::CmdKeyId id;
        PimOpCost cost;
    };
    struct CopyRec
    {
        PimCopyEnum direction;
        uint64_t bytes;
        PimOpCost cost;
    };

    std::vector<CmdRec> cmds;
    std::vector<CopyRec> copies;
    /** Pre-modeled host seconds (no scaling at commit). */
    double host_raw_sec = 0.0;
    /** Measured host seconds (host scale applied at commit). */
    double host_measured_sec = 0.0;

    void applyTo(PimStatsMgr &stats) const;
};

/**
 * The device-level asynchronous command pipeline.
 *
 * Thread model: enqueue/wait/sync are called from the single issuing
 * (application) thread; command bodies run on the pipeline's worker
 * threads, or on the issuing thread itself while it is blocked in a
 * wait (work-helping). A command body receives the command's PimStatsDelta and
 * must record all statistics there instead of touching the
 * PimStatsMgr directly.
 */
class PimPipeline
{
  public:
    using CommandFn = std::function<void(PimStatsDelta &)>;

    /**
     * @param stats       sink for in-order commits.
     * @param num_workers worker thread count; 0 picks a default based
     *                    on hardware concurrency (minimum 2 so the
     *                    machinery is exercised even on one core).
     * @param name_prefix trace track name prefix for the worker
     *                    threads (empty = "pipeline-worker-"); each
     *                    context's pipeline labels its workers so
     *                    concurrent contexts stay distinguishable in
     *                    the Chrome trace.
     * @param metric_domain per-context metric-domain slot the worker
     *                    threads bind to (-1 = aggregate only), so
     *                    metrics recorded from command bodies land in
     *                    the owning context's domain.
     */
    explicit PimPipeline(PimStatsMgr &stats, size_t num_workers = 0,
                         const std::string &name_prefix = "",
                         int metric_domain = -1);
    ~PimPipeline();

    PimPipeline(const PimPipeline &) = delete;
    PimPipeline &operator=(const PimPipeline &) = delete;

    /**
     * Enqueue one command.
     * @param reads  object ids the command reads.
     * @param writes object ids the command writes (in-place updates
     *               appear in both sets).
     * @param fn     execution body (functional kernel + cost capture).
     * @return the command's sequence number (issue order, 0-based).
     */
    uint64_t enqueue(const std::vector<PimObjId> &reads,
                     const std::vector<PimObjId> &writes, CommandFn fn);

    /** Wait until command @p seq has executed (its cone drains). */
    void waitSeq(uint64_t seq);

    /**
     * Wait until every enqueued command touching @p obj has executed,
     * then forget the object's hazard tracking state (pimFree).
     */
    void waitObject(PimObjId obj);

    /** Drain everything: all commands executed and committed. */
    void sync();

    /**
     * Drain everything, then run @p fn while still holding the
     * pipeline mutex, so nothing can issue or commit in between.
     * Used by pimResetStats: a plain sync-then-reset leaves a window
     * where commands issued by another thread commit between the
     * drain and the reset. @p fn must not call back into the
     * pipeline.
     */
    void drainAndRun(const std::function<void()> &fn);

    /** Commands issued so far (committed or not). */
    uint64_t issued() const { return next_seq_; }

    /** True when no command is pending execution or commit. */
    bool idle() const;

    /**
     * Single-core issue bypass. When the pipeline is idle on an
     * inline-when-idle host, an incoming command can have no hazards
     * and would execute inline at enqueue anyway — but still pay for
     * a Command allocation, a type-erased closure, hazard-map
     * updates, and a stats delta. beginInline() detects that case
     * and reserves the command's sequence number; the caller then
     * runs the body directly in sync style (recording statistics
     * straight into the stats manager — identical commit order, the
     * pipeline is empty) and finishes with endInline(). Because the
     * body runs before the issuing call returns, callers may also
     * skip issue-time defensive copies (the H2D host-buffer
     * snapshot). Returns false when the bypass does not apply; the
     * caller must then enqueue normally. Issuing-thread only.
     */
    bool beginInline();

    /** Close a beginInline() bypass: retire the reserved command. */
    void endInline();

  private:
    struct Command
    {
        CommandFn fn;
        PimStatsDelta delta;
        /** Sequence numbers of commands waiting on this one. */
        std::vector<uint64_t> dependents;
        uint32_t unmet_deps = 0;
        bool executed = false;
        /** Latency stamps feeding the pipeline.* histograms. */
        uint64_t enqueue_ns = 0;
        uint64_t ready_ns = 0; ///< 0 while hazards are unresolved
        bool stalled = false;  ///< issued with unmet dependencies
    };

    /** Hazard state of one object id. */
    struct ObjAccess
    {
        static constexpr uint64_t kNone = UINT64_MAX;
        uint64_t last_writer = kNone;
        /** Readers issued since the last write. */
        std::vector<uint64_t> readers;
    };

    /** Command lookup; nullptr when already retired. */
    Command *command(uint64_t seq);

    /** Collect @p dep as an unmet dependency of the command being
     *  built (deduplicated); requires the pipeline mutex. */
    void addDep(std::vector<uint64_t> &deps, uint64_t dep) const;

    /** Mark ready and wake a worker; requires the pipeline mutex. */
    void markReady(uint64_t seq);

    /**
     * Issuer work-helping: pop one ready command and execute it on
     * the calling thread (the mutex is dropped around the body and
     * re-held on return). Returns false when the ready queue is
     * empty. Called from the blocking paths (waitSeq, waitObject,
     * sync, drainAndRun, enqueue backpressure) so a blocked issuer
     * drains its own dependency cone instead of sleeping — on a
     * single-core host this removes the worker wake/sleep ping-pong
     * that made async dispatch slower than synchronous execution.
     */
    bool helpExecuteOne(std::unique_lock<std::mutex> &lock);

    /** Execute command @p seq: drop the lock around the body, then
     *  re-acquire it to mark executed, wake dependents, and commit
     *  the executed frontier. Shared by workerLoop and
     *  helpExecuteOne. */
    void executeOne(uint64_t seq, std::unique_lock<std::mutex> &lock);

    /** Commit the executed prefix in issue order; requires the
     *  pipeline mutex. */
    void commitFrontier();

    void workerLoop();

    /** Monotonic nanoseconds for the latency stamps. */
    static uint64_t monoNs();

    PimStatsMgr &stats_;
    int metric_domain_ = -1;

    mutable std::mutex mutex_;
    std::condition_variable ready_cv_; ///< workers: ready queue
    std::condition_variable done_cv_;  ///< issuer: executions/commits

    /** Commands window: seq -> commands_[seq - base_seq_]. */
    std::deque<std::unique_ptr<Command>> commands_;
    uint64_t base_seq_ = 0; ///< seq of commands_.front()
    uint64_t next_seq_ = 0; ///< next sequence number to issue
    std::deque<uint64_t> ready_;
    std::unordered_map<PimObjId, ObjAccess> objects_;

    std::vector<std::thread> workers_;
    bool stopping_ = false;

    /** Execute hazard-free commands inline at enqueue when nothing
     *  else is in flight (single-core hosts; see ctor). */
    bool inline_when_idle_ = false;

    /** Backpressure: cap issued-but-unretired commands. */
    static constexpr size_t kMaxInFlight = 4096;
};

} // namespace pimeval

#endif // PIMEVAL_CORE_PIM_PIPELINE_H_
