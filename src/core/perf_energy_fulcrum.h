/**
 * @file
 * Performance/energy models for the bit-parallel architectures:
 * subarray-level Fulcrum and bank-level PIM.
 *
 * Fulcrum (paper Section IV / V-C): per processed row, operand rows
 * are read into walkers, elements stream through the scalar ALU one
 * per cycle (12-cycle SWAR popcount), and the result row is written
 * back. Bank-level adds GDL serialization for every row crossing the
 * bank interface and processes elements SIMD-fashion in a wider ALU
 * with single-cycle popcount.
 */

#ifndef PIMEVAL_CORE_PERF_ENERGY_FULCRUM_H_
#define PIMEVAL_CORE_PERF_ENERGY_FULCRUM_H_

#include "core/perf_energy_model.h"

namespace pimeval {

/**
 * Operation shape shared by the two bit-parallel models.
 */
struct BitParallelOpShape
{
    unsigned input_rows = 2;  ///< operand rows read per result row
    unsigned output_rows = 1; ///< result rows written
    unsigned cycles_per_elem = 1;
    bool reduction = false;   ///< no result row, accumulate only
};

class PerfEnergyFulcrum : public PerfEnergyModel
{
  public:
    explicit PerfEnergyFulcrum(const PimDeviceConfig &config);

    PimOpCost costOp(const PimOpProfile &profile) const override;

    /** Shape lookup (exposed for the model-validation tests). */
    BitParallelOpShape shapeForCmd(PimCmdEnum cmd,
                                   bool native_popcount) const;
};

class PerfEnergyBankLevel : public PerfEnergyModel
{
  public:
    explicit PerfEnergyBankLevel(const PimDeviceConfig &config);

    PimOpCost costOp(const PimOpProfile &profile) const override;

    /** GDL time to move one full row one way, seconds. */
    double gdlRowTime() const;
};

} // namespace pimeval

#endif // PIMEVAL_CORE_PERF_ENERGY_FULCRUM_H_
