/**
 * @file
 * Public PIM API implementation: thin dispatch onto the active device.
 */

#include "core/pim_api.h"

#include <fstream>

#include "core/pim_error.h"
#include "core/pim_sim.h"
#include "core/pim_trace.h"
#include "util/logging.h"

using pimeval::PimSim;
using pimeval::PimDevice;
using pimeval::PimTracer;

namespace {

/** Active device or nullptr with an error log. */
PimDevice *
activeDevice(const char *what)
{
    PimDevice *dev = PimSim::instance().device();
    if (!dev)
        pimeval::logError(std::string(what) + ": no active PIM device");
    return dev;
}

} // namespace

PimStatus
pimCreateDevice(PimDeviceEnum device, uint64_t num_ranks,
                uint64_t num_banks_per_rank,
                uint64_t num_subarrays_per_bank,
                uint64_t num_rows_per_subarray, uint64_t num_cols_per_row)
{
    pimeval::PimDeviceConfig config;
    config.device = device;
    if (num_ranks)
        config.num_ranks = num_ranks;
    if (num_banks_per_rank)
        config.num_banks_per_rank = num_banks_per_rank;
    if (num_subarrays_per_bank)
        config.num_subarrays_per_bank = num_subarrays_per_bank;
    if (num_rows_per_subarray)
        config.num_rows_per_subarray = num_rows_per_subarray;
    if (num_cols_per_row)
        config.num_cols_per_row = num_cols_per_row;
    return PimSim::instance().createDevice(config);
}

PimStatus
pimCreateDeviceFromConfig(const pimeval::PimDeviceConfig &config)
{
    return PimSim::instance().createDevice(config);
}

PimStatus
pimDeleteDevice()
{
    return PimSim::instance().deleteDevice();
}

bool
pimIsDeviceActive()
{
    return PimSim::instance().hasDevice();
}

const pimeval::PimDeviceConfig &
pimGetDeviceConfig()
{
    return PimSim::instance().device()->config();
}

PimMemBackend
pimGetMemBackend()
{
    PimDevice *dev = PimSim::instance().device();
    return dev && dev->model()
        ? dev->model()->memBackendKind()
        : PimMemBackend::PIM_MEM_BACKEND_DEFAULT;
}

PimStatus
pimSetExecMode(PimExecEnum mode)
{
    PimDevice *dev = activeDevice("pimSetExecMode");
    if (!dev)
        return PimStatus::PIM_ERROR;
    dev->setExecMode(mode);
    return PimStatus::PIM_OK;
}

PimExecEnum
pimGetExecMode()
{
    PimDevice *dev = PimSim::instance().device();
    return dev ? dev->execMode() : PimExecEnum::PIM_EXEC_SYNC;
}

PimStatus
pimSync()
{
    PIM_TRACE_SCOPE("pimSync", "api");
    PimDevice *dev = activeDevice("pimSync");
    if (!dev)
        return PimStatus::PIM_ERROR;
    dev->sync();
    return PimStatus::PIM_OK;
}

PimStatus
pimSetFusionEnabled(bool enabled)
{
    PimDevice *dev = activeDevice("pimSetFusionEnabled");
    if (!dev)
        return PimStatus::PIM_ERROR;
    dev->setFusionEnabled(enabled);
    return PimStatus::PIM_OK;
}

bool
pimGetFusionEnabled()
{
    PimDevice *dev = PimSim::instance().device();
    return dev ? dev->fusionEnabled() : false;
}

PimStatus
pimBeginFusion()
{
    PIM_TRACE_INSTANT("pimBeginFusion", "api", 0);
    PimDevice *dev = activeDevice("pimBeginFusion");
    if (!dev)
        return PimStatus::PIM_ERROR;
    dev->beginFusion();
    return PimStatus::PIM_OK;
}

PimStatus
pimEndFusion()
{
    PIM_TRACE_INSTANT("pimEndFusion", "api", 0);
    PimDevice *dev = activeDevice("pimEndFusion");
    if (!dev)
        return PimStatus::PIM_ERROR;
    return dev->endFusion() ? PimStatus::PIM_OK
                            : PimStatus::PIM_ERROR;
}

PimObjId
pimAlloc(PimAllocEnum alloc_type, uint64_t num_elements,
         unsigned bits_per_element, PimDataType data_type)
{
    PIM_TRACE_INSTANT("pimAlloc", "api", num_elements);
    PimDevice *dev = activeDevice("pimAlloc");
    if (!dev)
        return -1;
    if (bits_per_element != pimBitsOfDataType(data_type)) {
        pimeval::logError("pimAlloc: bitsPerElement does not match type");
        return -1;
    }
    return dev->alloc(alloc_type, num_elements, data_type);
}

PimObjId
pimAllocAssociated(unsigned bits_per_element, PimObjId ref,
                   PimDataType data_type)
{
    PimDevice *dev = activeDevice("pimAllocAssociated");
    if (!dev)
        return -1;
    if (bits_per_element != pimBitsOfDataType(data_type)) {
        pimeval::logError(
            "pimAllocAssociated: bitsPerElement does not match type");
        return -1;
    }
    return dev->allocAssociated(ref, data_type);
}

PimStatus
pimFree(PimObjId obj)
{
    PIM_TRACE_INSTANT("pimFree", "api", obj);
    PimDevice *dev = activeDevice("pimFree");
    if (!dev)
        return PimStatus::PIM_ERROR;
    if (!dev->free(obj))
        return pimeval::fail(
            pimeval::strCat("pimFree: unknown object id ", obj));
    return PimStatus::PIM_OK;
}

PimStatus
pimCopyHostToDevice(const void *src, PimObjId dest, uint64_t idx_begin,
                    uint64_t idx_end)
{
    PIM_TRACE_INSTANT("pimCopyHostToDevice", "api", dest);
    PimDevice *dev = activeDevice("pimCopyHostToDevice");
    if (!dev)
        return PimStatus::PIM_ERROR;
    return dev->copyHostToDevice(src, dest, idx_begin, idx_end);
}

PimStatus
pimCopyDeviceToHost(PimObjId src, void *dest, uint64_t idx_begin,
                    uint64_t idx_end)
{
    PIM_TRACE_INSTANT("pimCopyDeviceToHost", "api", src);
    PimDevice *dev = activeDevice("pimCopyDeviceToHost");
    if (!dev)
        return PimStatus::PIM_ERROR;
    return dev->copyDeviceToHost(src, dest, idx_begin, idx_end);
}

PimStatus
pimCopyDeviceToDevice(PimObjId src, PimObjId dest)
{
    PIM_TRACE_INSTANT("pimCopyDeviceToDevice", "api", dest);
    PimDevice *dev = activeDevice("pimCopyDeviceToDevice");
    if (!dev)
        return PimStatus::PIM_ERROR;
    return dev->copyDeviceToDevice(src, dest);
}

// --- Binary ops -------------------------------------------------------------

namespace {

PimStatus
binary(PimCmdEnum cmd, PimObjId a, PimObjId b, PimObjId dest,
       const char *what)
{
    PIM_TRACE_INSTANT(what, "api", dest);
    PimDevice *dev = activeDevice(what);
    if (!dev)
        return PimStatus::PIM_ERROR;
    return dev->executeBinary(cmd, a, b, dest);
}

PimStatus
unary(PimCmdEnum cmd, PimObjId a, PimObjId dest, const char *what)
{
    PIM_TRACE_INSTANT(what, "api", dest);
    PimDevice *dev = activeDevice(what);
    if (!dev)
        return PimStatus::PIM_ERROR;
    return dev->executeUnary(cmd, a, dest);
}

PimStatus
scalarOp(PimCmdEnum cmd, PimObjId a, PimObjId dest, uint64_t scalar,
         const char *what)
{
    PIM_TRACE_INSTANT(what, "api", dest);
    PimDevice *dev = activeDevice(what);
    if (!dev)
        return PimStatus::PIM_ERROR;
    return dev->executeScalar(cmd, a, dest, scalar);
}

} // namespace

PimStatus
pimAdd(PimObjId a, PimObjId b, PimObjId dest)
{
    return binary(PimCmdEnum::kAdd, a, b, dest, "pimAdd");
}

PimStatus
pimSub(PimObjId a, PimObjId b, PimObjId dest)
{
    return binary(PimCmdEnum::kSub, a, b, dest, "pimSub");
}

PimStatus
pimMul(PimObjId a, PimObjId b, PimObjId dest)
{
    return binary(PimCmdEnum::kMul, a, b, dest, "pimMul");
}

PimStatus
pimDiv(PimObjId a, PimObjId b, PimObjId dest)
{
    return binary(PimCmdEnum::kDiv, a, b, dest, "pimDiv");
}

PimStatus
pimMin(PimObjId a, PimObjId b, PimObjId dest)
{
    return binary(PimCmdEnum::kMin, a, b, dest, "pimMin");
}

PimStatus
pimMax(PimObjId a, PimObjId b, PimObjId dest)
{
    return binary(PimCmdEnum::kMax, a, b, dest, "pimMax");
}

PimStatus
pimAnd(PimObjId a, PimObjId b, PimObjId dest)
{
    return binary(PimCmdEnum::kAnd, a, b, dest, "pimAnd");
}

PimStatus
pimOr(PimObjId a, PimObjId b, PimObjId dest)
{
    return binary(PimCmdEnum::kOr, a, b, dest, "pimOr");
}

PimStatus
pimXor(PimObjId a, PimObjId b, PimObjId dest)
{
    return binary(PimCmdEnum::kXor, a, b, dest, "pimXor");
}

PimStatus
pimXnor(PimObjId a, PimObjId b, PimObjId dest)
{
    return binary(PimCmdEnum::kXnor, a, b, dest, "pimXnor");
}

PimStatus
pimGT(PimObjId a, PimObjId b, PimObjId dest)
{
    return binary(PimCmdEnum::kGT, a, b, dest, "pimGT");
}

PimStatus
pimLT(PimObjId a, PimObjId b, PimObjId dest)
{
    return binary(PimCmdEnum::kLT, a, b, dest, "pimLT");
}

PimStatus
pimEQ(PimObjId a, PimObjId b, PimObjId dest)
{
    return binary(PimCmdEnum::kEQ, a, b, dest, "pimEQ");
}

PimStatus
pimNE(PimObjId a, PimObjId b, PimObjId dest)
{
    return binary(PimCmdEnum::kNE, a, b, dest, "pimNE");
}

// --- Unary ops --------------------------------------------------------------

PimStatus
pimAbs(PimObjId a, PimObjId dest)
{
    return unary(PimCmdEnum::kAbs, a, dest, "pimAbs");
}

PimStatus
pimNot(PimObjId a, PimObjId dest)
{
    return unary(PimCmdEnum::kNot, a, dest, "pimNot");
}

PimStatus
pimPopCount(PimObjId a, PimObjId dest)
{
    return unary(PimCmdEnum::kPopCount, a, dest, "pimPopCount");
}

// --- Scalar ops -------------------------------------------------------------

namespace {

/** Stable trace/error label per scalar command — identical to the
 *  labels the twelve per-op entry points used to emit. */
const char *
scalarOpName(PimCmdEnum cmd)
{
    switch (cmd) {
      case PimCmdEnum::kAddScalar: return "pimAddScalar";
      case PimCmdEnum::kSubScalar: return "pimSubScalar";
      case PimCmdEnum::kMulScalar: return "pimMulScalar";
      case PimCmdEnum::kDivScalar: return "pimDivScalar";
      case PimCmdEnum::kMinScalar: return "pimMinScalar";
      case PimCmdEnum::kMaxScalar: return "pimMaxScalar";
      case PimCmdEnum::kAndScalar: return "pimAndScalar";
      case PimCmdEnum::kOrScalar:  return "pimOrScalar";
      case PimCmdEnum::kXorScalar: return "pimXorScalar";
      case PimCmdEnum::kGTScalar:  return "pimGTScalar";
      case PimCmdEnum::kLTScalar:  return "pimLTScalar";
      case PimCmdEnum::kEQScalar:  return "pimEQScalar";
      default:                     return "pimOpScalar";
    }
}

} // namespace

PimStatus
pimOpScalar(PimCmdEnum op, PimObjId a, PimObjId dest, uint64_t scalar)
{
    // Only the contiguous *Scalar block is legal here; kScaledAdd has
    // its own three-operand entry point.
    if (op < PimCmdEnum::kAddScalar || op > PimCmdEnum::kEQScalar)
        return pimeval::fail(
            pimeval::strCat("pimOpScalar: '", pimCmdName(op),
                            "' is not a scalar-operand command"));
    return scalarOp(op, a, dest, scalar, scalarOpName(op));
}

PimStatus
pimScaledAdd(PimObjId a, PimObjId b, PimObjId dest, uint64_t scalar)
{
    PIM_TRACE_INSTANT("pimScaledAdd", "api", dest);
    PimDevice *dev = activeDevice("pimScaledAdd");
    if (!dev)
        return PimStatus::PIM_ERROR;
    return dev->executeScaledAdd(a, b, dest, scalar);
}

PimStatus
pimShiftBitsLeft(PimObjId a, PimObjId dest, unsigned amount)
{
    PimDevice *dev = activeDevice("pimShiftBitsLeft");
    if (!dev)
        return PimStatus::PIM_ERROR;
    return dev->executeShift(PimCmdEnum::kShiftBitsLeft, a, dest, amount);
}

PimStatus
pimShiftBitsRight(PimObjId a, PimObjId dest, unsigned amount)
{
    PimDevice *dev = activeDevice("pimShiftBitsRight");
    if (!dev)
        return PimStatus::PIM_ERROR;
    return dev->executeShift(PimCmdEnum::kShiftBitsRight, a, dest, amount);
}

PimStatus
pimShiftElementsLeft(PimObjId obj)
{
    PimDevice *dev = activeDevice("pimShiftElementsLeft");
    if (!dev)
        return PimStatus::PIM_ERROR;
    return dev->executeElementShift(PimCmdEnum::kShiftElementsLeft,
                                    obj);
}

PimStatus
pimShiftElementsRight(PimObjId obj)
{
    PimDevice *dev = activeDevice("pimShiftElementsRight");
    if (!dev)
        return PimStatus::PIM_ERROR;
    return dev->executeElementShift(PimCmdEnum::kShiftElementsRight,
                                    obj);
}

PimStatus
pimRotateElementsLeft(PimObjId obj)
{
    PimDevice *dev = activeDevice("pimRotateElementsLeft");
    if (!dev)
        return PimStatus::PIM_ERROR;
    return dev->executeElementShift(PimCmdEnum::kRotateElementsLeft,
                                    obj);
}

PimStatus
pimRotateElementsRight(PimObjId obj)
{
    PimDevice *dev = activeDevice("pimRotateElementsRight");
    if (!dev)
        return PimStatus::PIM_ERROR;
    return dev->executeElementShift(PimCmdEnum::kRotateElementsRight,
                                    obj);
}

// --- Reductions -------------------------------------------------------------

PimStatus
pimRedSum(PimObjId a, int64_t *result)
{
    PIM_TRACE_INSTANT("pimRedSum", "api", a);
    PimDevice *dev = activeDevice("pimRedSum");
    if (!dev)
        return PimStatus::PIM_ERROR;
    return dev->executeRedSum(a, 0, 0, result);
}

PimStatus
pimRedSumRanged(PimObjId a, uint64_t idx_begin, uint64_t idx_end,
                int64_t *result)
{
    PimDevice *dev = activeDevice("pimRedSumRanged");
    if (!dev)
        return PimStatus::PIM_ERROR;
    return dev->executeRedSum(a, idx_begin, idx_end, result);
}

PimStatus
pimBroadcastInt(PimObjId dest, uint64_t value)
{
    PIM_TRACE_INSTANT("pimBroadcastInt", "api", dest);
    PimDevice *dev = activeDevice("pimBroadcastInt");
    if (!dev)
        return PimStatus::PIM_ERROR;
    return dev->executeBroadcast(dest, value);
}

// --- Statistics -------------------------------------------------------------

PimStatus
pimShowStats(std::ostream &os)
{
    PimDevice *dev = activeDevice("pimShowStats");
    if (!dev)
        return PimStatus::PIM_ERROR;
    dev->sync(); // stats queries observe everything issued so far
    dev->stats().printReport(os);
    return PimStatus::PIM_OK;
}

PimStatus
pimDumpStats(const char *path)
{
    PimDevice *dev = activeDevice("pimDumpStats");
    if (!dev)
        return PimStatus::PIM_ERROR;
    if (!path || !*path) {
        pimeval::logError("pimDumpStats: empty path");
        return PimStatus::PIM_ERROR;
    }
    dev->sync();
    std::ofstream os(path);
    if (!os) {
        pimeval::logError(std::string("pimDumpStats: cannot open '") +
                          path + "'");
        return PimStatus::PIM_ERROR;
    }
    dev->stats().dumpJson(os);
    if (!os)
        return pimeval::fail(
            std::string("pimDumpStats: write failed for '") + path +
            "'");
    return PimStatus::PIM_OK;
}

PimStatus
pimResetStats()
{
    PimDevice *dev = activeDevice("pimResetStats");
    if (!dev)
        return PimStatus::PIM_ERROR;
    // Drain and clear atomically: a plain sync-then-reset leaves a
    // window where commands issued by another thread commit between
    // the drain and the clear, losing or double-counting their stats.
    dev->resetStats();
    return PimStatus::PIM_OK;
}

pimeval::PimRunStats
pimGetStats()
{
    PimDevice *dev = activeDevice("pimGetStats");
    if (!dev)
        return {};
    dev->sync();
    return dev->stats().snapshot();
}

std::map<std::string, uint64_t>
pimGetOpMix()
{
    PimDevice *dev = activeDevice("pimGetOpMix");
    if (!dev)
        return {};
    dev->sync();
    return dev->stats().opMix();
}

PimStatus
pimStartHostTimer()
{
    PimDevice *dev = activeDevice("pimStartHostTimer");
    if (!dev)
        return PimStatus::PIM_ERROR;
    dev->startHostTimer();
    return PimStatus::PIM_OK;
}

PimStatus
pimStopHostTimer()
{
    PimDevice *dev = activeDevice("pimStopHostTimer");
    if (!dev)
        return PimStatus::PIM_ERROR;
    dev->stopHostTimer();
    return PimStatus::PIM_OK;
}

PimStatus
pimAddHostTime(double seconds)
{
    PimDevice *dev = activeDevice("pimAddHostTime");
    if (!dev)
        return PimStatus::PIM_ERROR;
    dev->addHostTime(seconds);
    return PimStatus::PIM_OK;
}

PimStatus
pimAddHostWork(uint64_t bytes, uint64_t ops)
{
    PimDevice *dev = activeDevice("pimAddHostWork");
    if (!dev)
        return PimStatus::PIM_ERROR;
    dev->addHostWork(bytes, ops);
    return PimStatus::PIM_OK;
}

PimStatus
pimSetModelingScale(double scale)
{
    PimDevice *dev = activeDevice("pimSetModelingScale");
    if (!dev)
        return PimStatus::PIM_ERROR;
    dev->setModelingScale(scale);
    return PimStatus::PIM_OK;
}

double
pimGetModelingScale()
{
    PimDevice *dev = PimSim::instance().device();
    return dev ? dev->modelingScale() : 1.0;
}

// --- Observability ----------------------------------------------------------

PimStatus
pimTraceBegin(const char *path)
{
    if (!path || !*path) {
        pimeval::logError("pimTraceBegin: empty path");
        return PimStatus::PIM_ERROR;
    }
    // Quiesce the device so the trace starts at a command boundary.
    if (PimDevice *dev = PimSim::instance().device())
        dev->sync();
    PimTracer::instance().begin(path);
    return PimStatus::PIM_OK;
}

PimStatus
pimTraceEnd(const char *path)
{
    if (PimDevice *dev = PimSim::instance().device())
        dev->sync(); // in-flight spans land in the trace
    const bool ok =
        PimTracer::instance().end(path ? std::string(path) : "");
    if (!ok)
        return pimeval::fail(
            "pimTraceEnd: no active trace or export failed");
    return PimStatus::PIM_OK;
}

PimStatus
pimTraceDump(const char *path)
{
    if (!path || !*path) {
        pimeval::logError("pimTraceDump: empty path");
        return PimStatus::PIM_ERROR;
    }
    if (PimDevice *dev = PimSim::instance().device())
        dev->sync();
    if (!PimTracer::instance().dump(path))
        return pimeval::fail(
            "pimTraceDump: no active trace or export failed");
    return PimStatus::PIM_OK;
}

bool
pimTraceActive()
{
    return PimTracer::enabled();
}

bool
pimGetMetric(const char *name, double *value)
{
    if (!name)
        return false;
    return pimeval::PimMetrics::instance().get(name, value);
}

std::map<std::string, pimeval::PimMetricValue>
pimGetAllMetrics()
{
    return pimeval::PimMetrics::instance().snapshotAll();
}

PimStatus
pimDumpMetrics(std::ostream &os)
{
    pimeval::PimMetrics::instance().dumpJson(os);
    if (!os)
        return pimeval::fail("pimDumpMetrics: write failed");
    return PimStatus::PIM_OK;
}

PimStatus
pimResetMetrics()
{
    pimeval::PimMetrics::instance().reset();
    return PimStatus::PIM_OK;
}
