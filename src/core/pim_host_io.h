/**
 * @file
 * Host<->device element conversion kernels, shared by the unfused copy
 * paths (PimDevice::copyHostToDevice / copyDeviceToHost), the fusion
 * tape's host-source operands (core/pim_fusion.h), and the bit-serial
 * fused chain's host inputs (bitserial/bitserial_fused.h).
 */

#ifndef PIMEVAL_CORE_PIM_HOST_IO_H_
#define PIMEVAL_CORE_PIM_HOST_IO_H_

#include <cstddef>
#include <cstdint>
#include <cstring>

namespace pimeval {

/**
 * Host->device element conversion with the element width hoisted out
 * of the loop: one memcpy of Bytes per element, no per-element width
 * switch. Bool/int8 share the 1-byte kernel (host side stores one
 * byte per element for both).
 */
template <unsigned Bytes>
void
pimHostToDeviceChunk(const uint8_t *src, uint64_t *dst, size_t lo,
                     size_t hi, uint64_t mask)
{
    for (size_t i = lo; i < hi; ++i) {
        uint64_t v = 0;
        std::memcpy(&v, src + i * Bytes, Bytes);
        dst[i] = v & mask;
    }
}

template <unsigned Bytes>
void
pimDeviceToHostChunk(const uint64_t *src, uint8_t *dst, size_t lo,
                     size_t hi)
{
    for (size_t i = lo; i < hi; ++i)
        std::memcpy(dst + i * Bytes, &src[i], Bytes);
}

using PimHostToDeviceChunkFn = void (*)(const uint8_t *, uint64_t *,
                                        size_t, size_t, uint64_t);
using PimDeviceToHostChunkFn = void (*)(const uint64_t *, uint8_t *,
                                        size_t, size_t);

/** Conversion kernel for an element width in bits (nullptr for widths
 *  with no packed host layout). */
inline PimHostToDeviceChunkFn
pimHostToDeviceChunkForBits(unsigned bits)
{
    switch (bits) {
      case 1:
      case 8:
        return &pimHostToDeviceChunk<1>;
      case 16:
        return &pimHostToDeviceChunk<2>;
      case 32:
        return &pimHostToDeviceChunk<4>;
      case 64:
        return &pimHostToDeviceChunk<8>;
      default:
        return nullptr;
    }
}

inline PimDeviceToHostChunkFn
pimDeviceToHostChunkForBits(unsigned bits)
{
    switch (bits) {
      case 1:
      case 8:
        return &pimDeviceToHostChunk<1>;
      case 16:
        return &pimDeviceToHostChunk<2>;
      case 32:
        return &pimDeviceToHostChunk<4>;
      case 64:
        return &pimDeviceToHostChunk<8>;
      default:
        return nullptr;
    }
}

/** Host bytes per element for a device element width. */
inline unsigned
pimHostStrideForBits(unsigned bits)
{
    return (bits + 7) / 8;
}

} // namespace pimeval

#endif // PIMEVAL_CORE_PIM_HOST_IO_H_
