/**
 * @file
 * Last-error API: thin veneer over the logger's thread-local state.
 */

#include "core/pim_error.h"

#include "util/logging.h"

namespace pimeval {

PimStatus
fail(const std::string &detail)
{
    logError(detail);
    return PimStatus::PIM_ERROR;
}

} // namespace pimeval

PimStatus
pimGetLastError()
{
    return pimeval::hasLastError() ? PimStatus::PIM_ERROR
                                   : PimStatus::PIM_OK;
}

const char *
pimGetLastErrorMessage()
{
    return pimeval::lastErrorMessage();
}

void
pimClearLastError()
{
    pimeval::clearLastError();
}
