/**
 * @file
 * Minimal header-only JSON reader shared by the exporters'
 * validation paths (pimValidateChromeTraceFile in pim_trace.cpp,
 * pimValidateProfileFile in pim_profile.cpp) and by tests that parse
 * the files the simulator writes. Not a general-purpose library: it
 * parses exactly the JSON this codebase emits — objects, arrays,
 * strings (escapes kept raw for \u), numbers, bools, null — into a
 * small DOM.
 */

#ifndef PIMEVAL_CORE_PIM_JSON_H_
#define PIMEVAL_CORE_PIM_JSON_H_

#include <cctype>
#include <string>
#include <utility>
#include <vector>

namespace pimeval {

/** Tiny JSON DOM (objects keep insertion order). */
struct JsonValue
{
    enum class Kind {
        kNull,
        kBool,
        kNumber,
        kString,
        kArray,
        kObject
    };
    Kind kind = Kind::kNull;
    double number = 0.0;
    bool boolean = false;
    std::string str;
    std::vector<JsonValue> array;
    std::vector<std::pair<std::string, JsonValue>> object;

    const JsonValue *find(const std::string &key) const
    {
        for (const auto &[k, v] : object)
            if (k == key)
                return &v;
        return nullptr;
    }
};

class JsonParser
{
  public:
    JsonParser(const std::string &text, std::string *error)
        : text_(text), error_(error)
    {
    }

    bool parse(JsonValue *out)
    {
        skipWs();
        if (!parseValue(out))
            return false;
        skipWs();
        if (pos_ != text_.size())
            return fail("trailing characters after JSON value");
        return true;
    }

  private:
    bool fail(const std::string &msg)
    {
        if (error_ && error_->empty())
            *error_ = msg + " (offset " + std::to_string(pos_) + ")";
        return false;
    }

    void skipWs()
    {
        while (pos_ < text_.size() &&
               std::isspace(static_cast<unsigned char>(text_[pos_])))
            ++pos_;
    }

    bool parseValue(JsonValue *out)
    {
        if (pos_ >= text_.size())
            return fail("unexpected end of input");
        const char c = text_[pos_];
        if (c == '{')
            return parseObject(out);
        if (c == '[')
            return parseArray(out);
        if (c == '"') {
            out->kind = JsonValue::Kind::kString;
            return parseString(&out->str);
        }
        if (c == 't' || c == 'f') {
            const char *word = c == 't' ? "true" : "false";
            const size_t len = c == 't' ? 4 : 5;
            if (text_.compare(pos_, len, word) != 0)
                return fail("bad literal");
            out->kind = JsonValue::Kind::kBool;
            out->boolean = c == 't';
            pos_ += len;
            return true;
        }
        if (c == 'n') {
            if (text_.compare(pos_, 4, "null") != 0)
                return fail("bad literal");
            out->kind = JsonValue::Kind::kNull;
            pos_ += 4;
            return true;
        }
        return parseNumber(out);
    }

    bool parseString(std::string *out)
    {
        ++pos_; // opening quote
        out->clear();
        while (pos_ < text_.size()) {
            const char c = text_[pos_++];
            if (c == '"')
                return true;
            if (c == '\\') {
                if (pos_ >= text_.size())
                    return fail("bad escape");
                const char esc = text_[pos_++];
                switch (esc) {
                  case '"': *out += '"'; break;
                  case '\\': *out += '\\'; break;
                  case '/': *out += '/'; break;
                  case 'n': *out += '\n'; break;
                  case 't': *out += '\t'; break;
                  case 'r': *out += '\r'; break;
                  case 'b': *out += '\b'; break;
                  case 'f': *out += '\f'; break;
                  case 'u':
                    if (pos_ + 4 > text_.size())
                        return fail("bad \\u escape");
                    // Validation only: keep the raw escape text.
                    *out += "\\u" + text_.substr(pos_, 4);
                    pos_ += 4;
                    break;
                  default:
                    return fail("bad escape");
                }
            } else {
                *out += c;
            }
        }
        return fail("unterminated string");
    }

    bool parseNumber(JsonValue *out)
    {
        const size_t start = pos_;
        while (pos_ < text_.size() &&
               (std::isdigit(
                    static_cast<unsigned char>(text_[pos_])) ||
                text_[pos_] == '-' || text_[pos_] == '+' ||
                text_[pos_] == '.' || text_[pos_] == 'e' ||
                text_[pos_] == 'E'))
            ++pos_;
        if (pos_ == start)
            return fail("expected a JSON value");
        try {
            out->number = std::stod(text_.substr(start, pos_ - start));
        } catch (...) {
            return fail("bad number");
        }
        out->kind = JsonValue::Kind::kNumber;
        return true;
    }

    bool parseArray(JsonValue *out)
    {
        out->kind = JsonValue::Kind::kArray;
        ++pos_; // '['
        skipWs();
        if (pos_ < text_.size() && text_[pos_] == ']') {
            ++pos_;
            return true;
        }
        while (true) {
            JsonValue elem;
            skipWs();
            if (!parseValue(&elem))
                return false;
            out->array.push_back(std::move(elem));
            skipWs();
            if (pos_ >= text_.size())
                return fail("unterminated array");
            if (text_[pos_] == ',') {
                ++pos_;
                continue;
            }
            if (text_[pos_] == ']') {
                ++pos_;
                return true;
            }
            return fail("expected ',' or ']'");
        }
    }

    bool parseObject(JsonValue *out)
    {
        out->kind = JsonValue::Kind::kObject;
        ++pos_; // '{'
        skipWs();
        if (pos_ < text_.size() && text_[pos_] == '}') {
            ++pos_;
            return true;
        }
        while (true) {
            skipWs();
            if (pos_ >= text_.size() || text_[pos_] != '"')
                return fail("expected object key");
            std::string key;
            if (!parseString(&key))
                return false;
            skipWs();
            if (pos_ >= text_.size() || text_[pos_] != ':')
                return fail("expected ':'");
            ++pos_;
            skipWs();
            JsonValue value;
            if (!parseValue(&value))
                return false;
            out->object.emplace_back(std::move(key),
                                     std::move(value));
            skipWs();
            if (pos_ >= text_.size())
                return fail("unterminated object");
            if (text_[pos_] == ',') {
                ++pos_;
                continue;
            }
            if (text_[pos_] == '}') {
                ++pos_;
                return true;
            }
            return fail("expected ',' or '}'");
        }
    }

    const std::string &text_;
    std::string *error_;
    size_t pos_ = 0;
};

} // namespace pimeval

#endif // PIMEVAL_CORE_PIM_JSON_H_
