/**
 * @file
 * Statistics manager: per-command counts, modeled runtime/energy,
 * data-copy accounting, and host-phase timing.
 *
 * The report format follows the paper's Listing 3 (example vector-add
 * output), and the per-command operation mix feeds the Fig. 8
 * analysis.
 */

#ifndef PIMEVAL_CORE_PIM_STATS_H_
#define PIMEVAL_CORE_PIM_STATS_H_

#include <chrono>
#include <cstdint>
#include <map>
#include <mutex>
#include <ostream>
#include <string>
#include <vector>

#include "core/perf_energy_model.h"
#include "core/pim_types.h"

namespace pimeval {

/**
 * Aggregated per-command statistics.
 */
struct PimCmdStat
{
    uint64_t count = 0;
    double runtime_sec = 0.0;
    double energy_j = 0.0;
};

/**
 * Aggregate snapshot of a run, used by apps and benches.
 */
struct PimRunStats
{
    double kernel_sec = 0.0; ///< modeled PIM kernel time
    double kernel_j = 0.0;   ///< modeled PIM kernel energy
    double copy_sec = 0.0;   ///< modeled host<->device transfer time
    double copy_j = 0.0;     ///< modeled transfer energy
    double host_sec = 0.0;   ///< measured host-phase time
    uint64_t bytes_h2d = 0;
    uint64_t bytes_d2h = 0;
    uint64_t bytes_d2d = 0;

    double totalSec() const { return kernel_sec + copy_sec + host_sec; }

    PimRunStats &operator+=(const PimRunStats &o);
};

/**
 * Per-device statistics manager.
 *
 * Command recording is designed to stay off the simulation hot path:
 * callers intern a (key, command) pair once and then record through a
 * small integer id — no string construction or map lookup per
 * command. The string-keyed views (cmdStats, opMix, printReport) are
 * materialized on demand.
 *
 * Thread safety: all members are guarded by an internal mutex (one
 * uncontended lock per recorded command, not per element). The async
 * command pipeline interns keys on the issuing thread while its
 * commit worker applies recorded costs, so the manager must be safe
 * for concurrent mutation.
 */
class PimStatsMgr
{
  public:
    /** Stable handle for an interned (report key, command) pair. */
    using CmdKeyId = uint32_t;

    /**
     * Intern a stats key (e.g. "add.int32.v"). Returns a dense id
     * that stays valid for the manager's lifetime, across reset().
     * Interning the same key again returns the same id.
     */
    CmdKeyId internCmdKey(const std::string &key, PimCmdEnum cmd);

    /** Record one PIM command through its interned id (hot path). */
    void recordCmd(CmdKeyId id, const PimOpCost &cost);

    /** Record one PIM command, keyed e.g. "add.int32.v" (interns on
     *  every call; convenience for tests and cold paths). */
    void recordCmd(const std::string &key, PimCmdEnum cmd,
                   const PimOpCost &cost);

    /** Record a data transfer. */
    void recordCopy(PimCopyEnum direction, uint64_t bytes,
                    const PimOpCost &cost);

    /** Host-phase timing (RAII-free explicit start/stop). */
    void startHostTimer();
    void stopHostTimer();
    /** Add pre-modeled host seconds (no scaling applied). */
    void addHostTimeRaw(double seconds)
    {
        std::lock_guard<std::mutex> lock(mutex_);
        host_sec_ += seconds;
    }

    /** Directly add externally measured host seconds. */
    void addHostTime(double seconds)
    {
        std::lock_guard<std::mutex> lock(mutex_);
        if (host_scale_ > 1.0)
            host_sec_ += seconds * host_scale_ / hostCalibration();
        else
            host_sec_ += seconds;
    }

    /**
     * Scale factor applied to measured host phases (paper-size
     * what-if; host work in these benchmarks is linear in input
     * size).
     */
    void setHostScale(double scale)
    {
        std::lock_guard<std::mutex> lock(mutex_);
        host_scale_ = scale >= 1.0 ? scale : 1.0;
    }

    /**
     * Ratio of this machine's single-core streaming rate to the
     * modeled EPYC baseline's. Measured lazily once; applied to host
     * phases only in paper-size mode so that measured host kernels
     * approximate the paper's testbed (DESIGN.md substitutions).
     */
    static double hostCalibration();

    /** Aggregates. */
    PimRunStats snapshot() const;

    /** Operation mix: counts keyed by base mnemonic (Fig. 8). */
    std::map<std::string, uint64_t> opMix() const;

    /** Per-command table, omitting never-recorded keys (for
     *  tests/benches; built on demand from the interned slots). */
    std::map<std::string, PimCmdStat> cmdStats() const;

    /**
     * Owning context id for trace attribution: modeled spans emitted
     * at commit time land on this context's modeled-time track
     * (pid = 1 + id in the Chrome export). Set once at device
     * creation, before any command records.
     */
    void setTraceContext(uint32_t ctx) { trace_ctx_ = ctx ? ctx : 1; }
    uint32_t traceContext() const { return trace_ctx_; }

    /** Reset everything. */
    void reset();

    /** Print a Listing-3 style report. */
    void printReport(std::ostream &os) const;

    /** Write the aggregate totals, copy byte counts, and per-command
     *  table as a JSON object (the pimDumpStats payload). */
    void dumpJson(std::ostream &os) const;

  private:
    /** One interned stats key; ids index cmd_slots_. */
    struct CmdSlot
    {
        std::string key;
        PimCmdEnum cmd = PimCmdEnum::kNone;
        PimCmdStat stat;
        /** Tracer-interned copy of key: stable across cmd_slots_
         *  reallocation, resolved lazily on first traced commit. */
        const char *trace_name = nullptr;
    };

    /** cmdStats() body for callers already holding the mutex. */
    std::map<std::string, PimCmdStat> cmdStatsLocked() const;

    mutable std::mutex mutex_;
    std::vector<CmdSlot> cmd_slots_;
    std::map<std::string, CmdKeyId> cmd_key_ids_;
    double kernel_sec_ = 0.0;
    double kernel_j_ = 0.0;
    double copy_sec_ = 0.0;
    double copy_j_ = 0.0;
    double host_sec_ = 0.0;
    double host_scale_ = 1.0;
    uint64_t bytes_h2d_ = 0;
    uint64_t bytes_d2h_ = 0;
    uint64_t bytes_d2d_ = 0;
    std::chrono::high_resolution_clock::time_point host_start_;
    bool host_timing_ = false;
    /** Context id stamped on modeled trace spans (default ctx = 1). */
    uint32_t trace_ctx_ = 1;
};

} // namespace pimeval

#endif // PIMEVAL_CORE_PIM_STATS_H_
