/**
 * @file
 * DDR timing parameters and command set for the cycle-level channel
 * model ("DRAMsim3-lite").
 *
 * The paper models data movement as bytes / aggregate rank bandwidth
 * and explicitly flags the simplification: "all ranks are treated as
 * independent channels, which amplifies data transfer bandwidth";
 * DRAMsim3 integration is left as future work (Section V-C). This
 * module provides that future work in miniature: a command-level
 * timing model with bank state machines, row-buffer policy, and a
 * shared data bus, so transfers can be costed with ranks sharing
 * channels.
 *
 * Defaults correspond to DDR4-3200 (tCK = 0.625 ns), whose 64-bit
 * channel delivers the paper's 25.6 GB/s.
 */

#ifndef PIMEVAL_DRAM_DRAM_TIMING_H_
#define PIMEVAL_DRAM_DRAM_TIMING_H_

#include <cstdint>

namespace pimeval {

/** DRAM commands issued by the channel scheduler. */
enum class DramCmd : uint8_t {
    kActivate = 0,
    kRead,
    kWrite,
    kPrecharge,
};

/**
 * Timing constraints in memory-clock cycles (DDR4-3200 defaults).
 */
struct DramTiming
{
    double tck_ns = 0.625; ///< clock period

    uint32_t tRCD = 22;  ///< ACT -> RD/WR, same bank
    uint32_t tRP = 22;   ///< PRE -> ACT, same bank
    uint32_t tCL = 22;   ///< RD -> first data
    uint32_t tCWL = 16;  ///< WR -> first data
    uint32_t tRAS = 52;  ///< ACT -> PRE, same bank
    uint32_t tRC = 74;   ///< ACT -> ACT, same bank
    uint32_t tBURST = 4; ///< data-bus beats per column access (BL8)
    uint32_t tCCD = 8;   ///< column-to-column, same bank group
    uint32_t tRRD = 8;   ///< ACT -> ACT, different banks
    uint32_t tFAW = 34;  ///< four-activate window
    uint32_t tRTP = 12;  ///< RD -> PRE
    uint32_t tWR = 24;   ///< end of write data -> PRE
    uint32_t tCS = 4;    ///< rank-to-rank data-bus switch penalty

    /** Bytes moved per column access (x64 channel, BL8). */
    static constexpr uint32_t kBytesPerColumn = 64;

    /** Channel peak bandwidth in bytes/second. */
    double
    peakBandwidth() const
    {
        return kBytesPerColumn /
            (static_cast<double>(tBURST) * tck_ns * 1e-9);
    }

    double
    cyclesToSeconds(uint64_t cycles) const
    {
        return static_cast<double>(cycles) * tck_ns * 1e-9;
    }
};

} // namespace pimeval

#endif // PIMEVAL_DRAM_DRAM_TIMING_H_
