/**
 * @file
 * Cycle-level DRAM channel model: per-bank state machines, an
 * open-page row-buffer policy, activate-window constraints, and a
 * shared data bus with rank switch penalties.
 *
 * The scheduler is FCFS with an open-row policy — enough fidelity to
 * capture row hits vs misses, bank-level parallelism, and channel
 * sharing, which are the effects the paper's flat-bandwidth transfer
 * model misses.
 */

#ifndef PIMEVAL_DRAM_DRAM_CHANNEL_H_
#define PIMEVAL_DRAM_DRAM_CHANNEL_H_

#include <cstdint>
#include <deque>
#include <vector>

#include "dram/dram_timing.h"

namespace pimeval {

/** One access request: a 64-byte column read or write. */
struct DramRequest
{
    uint32_t rank = 0;
    uint32_t bank = 0;
    uint32_t row = 0;
    bool is_write = false;
};

/** Channel statistics. */
struct DramChannelStats
{
    uint64_t num_reads = 0;
    uint64_t num_writes = 0;
    uint64_t row_hits = 0;
    uint64_t row_misses = 0;
    uint64_t activates = 0;
    uint64_t last_completion_cycle = 0;

    double
    rowHitRate() const
    {
        const uint64_t total = row_hits + row_misses;
        return total ? static_cast<double>(row_hits) /
                static_cast<double>(total)
                     : 0.0;
    }
};

/**
 * One DDR channel shared by @p num_ranks ranks of @p num_banks banks.
 */
class DramChannel
{
  public:
    DramChannel(const DramTiming &timing, uint32_t num_ranks,
                uint32_t num_banks);

    /**
     * Process one column access in arrival order.
     * @return the cycle at which its data burst completes.
     */
    uint64_t access(const DramRequest &request);

    /** Process a request stream; @return total cycles to drain. */
    uint64_t drain(const std::vector<DramRequest> &requests);

    const DramChannelStats &stats() const { return stats_; }
    const DramTiming &timing() const { return timing_; }

    /** Reset all bank state and statistics. */
    void reset();

  private:
    struct BankState
    {
        bool row_open = false;
        uint32_t open_row = 0;
        uint64_t ready_for_act = 0; ///< earliest ACT cycle
        uint64_t ready_for_col = 0; ///< earliest RD/WR cycle
        uint64_t ready_for_pre = 0; ///< earliest PRE cycle
    };

    BankState &bank(uint32_t rank, uint32_t bank_idx);

    DramTiming timing_;
    uint32_t num_ranks_;
    uint32_t num_banks_;
    std::vector<BankState> banks_; ///< rank-major
    uint64_t bus_free_ = 0;        ///< data bus availability
    uint32_t last_bus_rank_ = 0;
    bool bus_used_ = false;
    uint64_t last_act_ = 0; ///< for tRRD
    bool any_act_ = false;
    std::deque<uint64_t> act_window_; ///< last ACT cycles (tFAW)
    DramChannelStats stats_;
};

} // namespace pimeval

#endif // PIMEVAL_DRAM_DRAM_CHANNEL_H_
