/**
 * @file
 * Bulk-transfer timing on the cycle-level channel model.
 *
 * Converts a host<->device transfer of N bytes into a stream of
 * 64-byte column accesses laid out per the configured address map
 * (bank/rank/row interleave order) and drains it through DramChannel,
 * yielding an achieved bandwidth that reflects row activations, tFAW,
 * and rank-switch bubbles — effects the flat bytes/bandwidth model
 * (paper Section V-C) cannot capture.
 *
 * This is the engine of the CYCLE memory-timing backend and the
 * calibration source of the LUT backend (mem_timing_backend.h).
 */

#ifndef PIMEVAL_DRAM_TRANSFER_MODEL_H_
#define PIMEVAL_DRAM_TRANSFER_MODEL_H_

#include <cstdint>
#include <shared_mutex>
#include <unordered_map>

#include "core/pim_types.h"
#include "dram/dram_timing.h"

namespace pimeval {

/** Result of timing one bulk transfer. */
struct TransferResult
{
    double seconds = 0.0;
    double achieved_gbps = 0.0;
    double row_hit_rate = 0.0;
    uint64_t total_cycles = 0;
};

/**
 * Cycle-timed bulk transfers.
 */
class TransferModel
{
  public:
    /**
     * @param timing            DDR timing set.
     * @param num_channels      independent channels available.
     * @param ranks_per_channel ranks sharing each channel.
     * @param banks_per_rank    banks per rank.
     * @param row_bytes         bytes per DRAM row (per rank).
     * @param addr_map          column-address interleave order.
     * @param quiet             suppress dram.channel.* metrics (the
     *                          LUT calibration sweep sets this so its
     *                          sampling traffic does not pollute the
     *                          workload's channel statistics).
     */
    TransferModel(const DramTiming &timing, uint32_t num_channels,
                  uint32_t ranks_per_channel, uint32_t banks_per_rank,
                  uint32_t row_bytes,
                  PimAddrMap addr_map =
                      PimAddrMap::PIM_ADDR_MAP_BANK_FIRST,
                  bool quiet = false);

    /**
     * Time a sequential transfer of @p bytes split evenly across the
     * channels. Caches the full per-shape result (time, row-hit rate,
     * cycles) by request count, so repeated same-size transfers cost
     * one simulation and report identical statistics.
     */
    TransferResult transfer(uint64_t bytes, bool is_write) const;

    /** Effective bandwidth of a large streaming transfer (bytes/s). */
    double streamingBandwidth() const;

    const DramTiming &timing() const { return timing_; }
    uint32_t numChannels() const { return num_channels_; }
    uint32_t ranksPerChannel() const { return ranks_per_channel_; }
    uint32_t banksPerRank() const { return banks_per_rank_; }
    uint32_t rowBytes() const { return row_bytes_; }
    PimAddrMap addrMap() const { return addr_map_; }

  private:
    /** Everything one channel drain produces, cached per simulated
     *  shape so cache hits report the same statistics as the original
     *  simulation (not just its seconds). */
    struct ShapeResult
    {
        double sim_seconds = 0.0;
        double row_hit_rate = 0.0;
        uint64_t sim_cycles = 0;
    };

    TransferResult simulateChannel(uint64_t bytes,
                                   bool is_write) const;

    /** Scale one cached/simulated shape out to @p num_columns. */
    TransferResult scaleShape(const ShapeResult &shape,
                              uint64_t num_columns,
                              uint64_t simulated,
                              uint64_t bytes) const;

    /** Keyed by (simulated column count, is_write); the bool lives in
     *  the key's low bit. Guarded: costCopy runs concurrently on the
     *  command pipeline's worker threads. */
    mutable std::shared_mutex cache_mutex_;
    mutable std::unordered_map<uint64_t, ShapeResult> cache_;
    DramTiming timing_;
    uint32_t num_channels_;
    uint32_t ranks_per_channel_;
    uint32_t banks_per_rank_;
    uint32_t row_bytes_;
    PimAddrMap addr_map_;
    bool quiet_;
};

} // namespace pimeval

#endif // PIMEVAL_DRAM_TRANSFER_MODEL_H_
