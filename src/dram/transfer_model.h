/**
 * @file
 * Bulk-transfer timing on the cycle-level channel model.
 *
 * Converts a host<->device transfer of N bytes into a stream of
 * 64-byte column accesses laid out sequentially (row-major, rotating
 * across banks and the ranks sharing each channel) and drains it
 * through DramChannel, yielding an achieved bandwidth that reflects
 * row activations, tFAW, and rank-switch bubbles — effects the flat
 * bytes/bandwidth model (paper Section V-C) cannot capture.
 */

#ifndef PIMEVAL_DRAM_TRANSFER_MODEL_H_
#define PIMEVAL_DRAM_TRANSFER_MODEL_H_

#include <cstdint>
#include <shared_mutex>
#include <unordered_map>

#include "dram/dram_timing.h"

namespace pimeval {

/** Result of timing one bulk transfer. */
struct TransferResult
{
    double seconds = 0.0;
    double achieved_gbps = 0.0;
    double row_hit_rate = 0.0;
    uint64_t total_cycles = 0;
};

/**
 * Cycle-timed bulk transfers.
 */
class TransferModel
{
  public:
    /**
     * @param timing            DDR timing set.
     * @param num_channels      independent channels available.
     * @param ranks_per_channel ranks sharing each channel.
     * @param banks_per_rank    banks per rank.
     * @param row_bytes         bytes per DRAM row (per rank).
     */
    TransferModel(const DramTiming &timing, uint32_t num_channels,
                  uint32_t ranks_per_channel, uint32_t banks_per_rank,
                  uint32_t row_bytes);

    /**
     * Time a sequential transfer of @p bytes split evenly across the
     * channels. Caches by request count, so repeated same-size
     * transfers cost one simulation.
     */
    TransferResult transfer(uint64_t bytes, bool is_write) const;

    /** Effective bandwidth of a large streaming transfer (bytes/s). */
    double streamingBandwidth() const;

  private:
    TransferResult simulateChannel(uint64_t bytes,
                                   bool is_write) const;

    /** Keyed by (simulated column count, is_write); the bool lives in
     *  the key's low bit. Guarded: costCopy runs concurrently on the
     *  command pipeline's worker threads. */
    mutable std::shared_mutex cache_mutex_;
    mutable std::unordered_map<uint64_t, double> cache_;
    DramTiming timing_;
    uint32_t num_channels_;
    uint32_t ranks_per_channel_;
    uint32_t banks_per_rank_;
    uint32_t row_bytes_;
};

} // namespace pimeval

#endif // PIMEVAL_DRAM_TRANSFER_MODEL_H_
