/**
 * @file
 * MemTimingBackend factory, selection resolution, and the CYCLE /
 * ANALYTICAL implementations (the LUT lives in mem_backend_lut.cpp).
 */

#include "dram/mem_timing_backend.h"

#include <cstdlib>
#include <cstring>

#include "core/pim_metrics.h"
#include "core/pim_runtime_config.h"
#include "dram/mem_backend_lut.h"

namespace pimeval {

namespace {

/** The existing DramChannel/TransferModel cycle-stepped model. */
class CycleMemBackend : public MemTimingBackend
{
  public:
    explicit CycleMemBackend(const MemTopology &topology)
        : MemTimingBackend(topology),
          model_(topology.timing, topology.num_channels,
                 topology.ranks_per_channel, topology.banks_per_rank,
                 topology.row_bytes, topology.addr_map)
    {
    }

    PimMemBackend
    kind() const override
    {
        return PimMemBackend::PIM_MEM_BACKEND_CYCLE;
    }

    TransferResult
    transfer(uint64_t bytes, bool is_write) const override
    {
        return model_.transfer(bytes, is_write);
    }

  private:
    TransferModel model_;
};

/** The paper's flat bytes/bandwidth model (Section V-C). */
class AnalyticalMemBackend : public MemTimingBackend
{
  public:
    explicit AnalyticalMemBackend(const MemTopology &topology)
        : MemTimingBackend(topology)
    {
    }

    PimMemBackend
    kind() const override
    {
        return PimMemBackend::PIM_MEM_BACKEND_ANALYTICAL;
    }

    TransferResult
    transfer(uint64_t bytes, bool is_write) const override
    {
        (void)is_write; // symmetric by construction
        TransferResult result;
        const double bw = topology_.flat_bw_bytes_per_sec;
        result.seconds = static_cast<double>(bytes) / bw;
        result.achieved_gbps = result.seconds > 0 ? bw / 1e9 : 0.0;
        result.total_cycles = static_cast<uint64_t>(
            result.seconds / (topology_.timing.tck_ns * 1e-9));
        return result;
    }

    double
    streamingBandwidth() const override
    {
        return topology_.flat_bw_bytes_per_sec;
    }
};

} // namespace

double
MemTimingBackend::streamingBandwidth() const
{
    const TransferResult result =
        transfer(64ull << 20, /*is_write=*/false);
    return result.seconds > 0
        ? static_cast<double>(64ull << 20) / result.seconds
        : 0.0;
}

bool
MemTimingBackend::parseKind(const char *name, PimMemBackend *out)
{
    if (!name || !out)
        return false;
    if (std::strcmp(name, "cycle") == 0) {
        *out = PimMemBackend::PIM_MEM_BACKEND_CYCLE;
        return true;
    }
    if (std::strcmp(name, "analytical") == 0) {
        *out = PimMemBackend::PIM_MEM_BACKEND_ANALYTICAL;
        return true;
    }
    if (std::strcmp(name, "lut") == 0) {
        *out = PimMemBackend::PIM_MEM_BACKEND_LUT;
        return true;
    }
    return false;
}

PimMemBackend
MemTimingBackend::resolve(PimMemBackend configured,
                          bool use_dram_timing)
{
    if (configured != PimMemBackend::PIM_MEM_BACKEND_DEFAULT)
        return configured;
    // Process-wide selection (pimSetRuntimeConfig override, then
    // PIMEVAL_MEM_BACKEND) sits below the explicit per-device field.
    const PimMemBackend from_runtime =
        pimResolveRuntimeConfig().mem_backend.value;
    if (from_runtime != PimMemBackend::PIM_MEM_BACKEND_DEFAULT)
        return from_runtime;
    if (use_dram_timing)
        return PimMemBackend::PIM_MEM_BACKEND_CYCLE;
    return PimMemBackend::PIM_MEM_BACKEND_LUT;
}

std::unique_ptr<MemTimingBackend>
MemTimingBackend::create(PimMemBackend kind,
                         const MemTopology &topology)
{
    switch (kind) {
      case PimMemBackend::PIM_MEM_BACKEND_CYCLE:
        return std::make_unique<CycleMemBackend>(topology);
      case PimMemBackend::PIM_MEM_BACKEND_ANALYTICAL:
        return std::make_unique<AnalyticalMemBackend>(topology);
      case PimMemBackend::PIM_MEM_BACKEND_LUT:
      case PimMemBackend::PIM_MEM_BACKEND_DEFAULT:
        break;
    }
    return makeLutBackend(topology);
}

} // namespace pimeval
