/**
 * @file
 * TransferModel implementation.
 */

#include "dram/transfer_model.h"

#include <algorithm>
#include <mutex>
#include <shared_mutex>
#include <vector>

#include "core/pim_metrics.h"
#include "dram/dram_channel.h"

namespace pimeval {

TransferModel::TransferModel(const DramTiming &timing,
                             uint32_t num_channels,
                             uint32_t ranks_per_channel,
                             uint32_t banks_per_rank,
                             uint32_t row_bytes, PimAddrMap addr_map,
                             bool quiet)
    : timing_(timing), num_channels_(std::max(1u, num_channels)),
      ranks_per_channel_(std::max(1u, ranks_per_channel)),
      banks_per_rank_(std::max(1u, banks_per_rank)),
      row_bytes_(std::max<uint32_t>(DramTiming::kBytesPerColumn,
                                    row_bytes)),
      addr_map_(addr_map), quiet_(quiet)
{
}

TransferResult
TransferModel::scaleShape(const ShapeResult &shape,
                          uint64_t num_columns, uint64_t simulated,
                          uint64_t bytes) const
{
    TransferResult result;
    const double scale = static_cast<double>(num_columns) /
        static_cast<double>(simulated);
    result.seconds = shape.sim_seconds * scale;
    result.total_cycles = static_cast<uint64_t>(
        static_cast<double>(shape.sim_cycles) * scale);
    result.achieved_gbps = result.seconds > 0
        ? static_cast<double>(bytes) / result.seconds / 1e9
        : 0.0;
    result.row_hit_rate = shape.row_hit_rate;
    return result;
}

TransferResult
TransferModel::simulateChannel(uint64_t bytes, bool is_write) const
{
    const uint64_t num_columns =
        (bytes + DramTiming::kBytesPerColumn - 1) /
        DramTiming::kBytesPerColumn;
    if (num_columns == 0)
        return {};

    // Cap the simulated stream and extrapolate: bulk streams reach a
    // steady state well before 64K columns (4 MB).
    constexpr uint64_t kMaxSimulated = 1ull << 16;
    const uint64_t simulated = std::min(num_columns, kMaxSimulated);

    // Memoize per simulated-stream shape: the drain of the same
    // request stream never changes, and callers repeat sizes often.
    // The cache holds the full per-shape result, so hits report the
    // same row-hit rate and cycle count as the original simulation.
    const uint64_t key = (simulated << 1) | (is_write ? 1 : 0);
    {
        std::shared_lock<std::shared_mutex> lock(cache_mutex_);
        const auto hit = cache_.find(key);
        if (hit != cache_.end()) {
            PIM_METRIC_COUNT("cache.transfer.hit", 1);
            return scaleShape(hit->second, num_columns, simulated,
                              bytes);
        }
    }

    PIM_METRIC_COUNT("cache.transfer.miss", 1);
    const uint32_t cols_per_row =
        row_bytes_ / DramTiming::kBytesPerColumn;

    // Lay the sequential stream out per the configured interleave
    // order. BANK_FIRST (default): consecutive 64B blocks rotate
    // across banks (so same-bank tCCD never bounds the stream), while
    // rank switches happen at coarse granularity (rank-switch bubbles
    // are expensive on the shared bus). RANK_FIRST: blocks rotate
    // across ranks fastest, exposing the tCS bubble per access.
    // ROW_FIRST: fill one row in one bank before advancing, maximal
    // row hits but same-bank column timing bounds the stream.
    std::vector<DramRequest> requests;
    requests.reserve(simulated);
    for (uint64_t i = 0; i < simulated; ++i) {
        DramRequest request;
        switch (addr_map_) {
          case PimAddrMap::PIM_ADDR_MAP_BANK_FIRST: {
            request.bank = static_cast<uint32_t>(i % banks_per_rank_);
            const uint64_t within = i / banks_per_rank_;
            const uint64_t row_group = within / cols_per_row;
            request.rank = static_cast<uint32_t>(
                row_group % ranks_per_channel_);
            request.row = static_cast<uint32_t>(row_group /
                                                ranks_per_channel_);
            break;
          }
          case PimAddrMap::PIM_ADDR_MAP_RANK_FIRST: {
            request.rank =
                static_cast<uint32_t>(i % ranks_per_channel_);
            const uint64_t within = i / ranks_per_channel_;
            request.bank =
                static_cast<uint32_t>(within % banks_per_rank_);
            request.row = static_cast<uint32_t>(
                within / banks_per_rank_ / cols_per_row);
            break;
          }
          case PimAddrMap::PIM_ADDR_MAP_ROW_FIRST: {
            const uint64_t block = i / cols_per_row;
            request.bank =
                static_cast<uint32_t>(block % banks_per_rank_);
            const uint64_t beyond = block / banks_per_rank_;
            request.rank =
                static_cast<uint32_t>(beyond % ranks_per_channel_);
            request.row =
                static_cast<uint32_t>(beyond / ranks_per_channel_);
            break;
          }
        }
        request.is_write = is_write;
        requests.push_back(request);
    }

    DramChannel channel(timing_, ranks_per_channel_, banks_per_rank_);
    const uint64_t cycles = channel.drain(requests);

    ShapeResult shape;
    shape.sim_seconds = timing_.cyclesToSeconds(cycles);
    shape.sim_cycles = cycles;
    shape.row_hit_rate = channel.stats().rowHitRate();
    {
        std::unique_lock<std::shared_mutex> lock(cache_mutex_);
        cache_.emplace(key, shape);
    }

    if (!quiet_) {
        const DramChannelStats &stats = channel.stats();
        PIM_METRIC_COUNT("dram.channel.requests",
                         stats.num_reads + stats.num_writes);
        PIM_METRIC_COUNT("dram.channel.row_hits", stats.row_hits);
        PIM_METRIC_COUNT("dram.channel.row_misses", stats.row_misses);
        PIM_METRIC_COUNT("dram.channel.activates", stats.activates);
        PIM_METRIC_GAUGE("dram.channel.row_hit_rate",
                         shape.row_hit_rate);
        // Bus utilization of the simulated drain: achieved fraction
        // of the channel's peak bandwidth.
        if (shape.sim_seconds > 0) {
            const double achieved =
                static_cast<double>(simulated *
                                    DramTiming::kBytesPerColumn) /
                shape.sim_seconds;
            PIM_METRIC_GAUGE("dram.channel.util",
                             achieved / timing_.peakBandwidth());
        }
    }

    return scaleShape(shape, num_columns, simulated, bytes);
}

TransferResult
TransferModel::transfer(uint64_t bytes, bool is_write) const
{
    // Split evenly across independent channels; they operate in
    // parallel, so the slowest shard (they are equal) sets the time.
    const uint64_t per_channel =
        (bytes + num_channels_ - 1) / num_channels_;
    TransferResult result = simulateChannel(per_channel, is_write);
    result.achieved_gbps = result.seconds > 0
        ? static_cast<double>(bytes) / result.seconds / 1e9
        : 0.0;
    return result;
}

double
TransferModel::streamingBandwidth() const
{
    const TransferResult result =
        transfer(64ull << 20, /*is_write=*/false);
    return result.seconds > 0
        ? static_cast<double>(64ull << 20) / result.seconds
        : 0.0;
}

} // namespace pimeval
