/**
 * @file
 * TransferModel implementation.
 */

#include "dram/transfer_model.h"

#include <algorithm>
#include <mutex>
#include <shared_mutex>
#include <vector>

#include "core/pim_metrics.h"
#include "dram/dram_channel.h"

namespace pimeval {

TransferModel::TransferModel(const DramTiming &timing,
                             uint32_t num_channels,
                             uint32_t ranks_per_channel,
                             uint32_t banks_per_rank,
                             uint32_t row_bytes)
    : timing_(timing), num_channels_(std::max(1u, num_channels)),
      ranks_per_channel_(std::max(1u, ranks_per_channel)),
      banks_per_rank_(std::max(1u, banks_per_rank)),
      row_bytes_(std::max<uint32_t>(DramTiming::kBytesPerColumn,
                                    row_bytes))
{
}

TransferResult
TransferModel::simulateChannel(uint64_t bytes, bool is_write) const
{
    const uint64_t num_columns =
        (bytes + DramTiming::kBytesPerColumn - 1) /
        DramTiming::kBytesPerColumn;
    if (num_columns == 0)
        return {};

    // Cap the simulated stream and extrapolate: bulk streams reach a
    // steady state well before 64K columns (4 MB).
    constexpr uint64_t kMaxSimulated = 1ull << 16;
    const uint64_t simulated = std::min(num_columns, kMaxSimulated);

    // Memoize per simulated-stream shape: the drain time of the same
    // request stream never changes, and callers repeat sizes often.
    const uint64_t key = (simulated << 1) | (is_write ? 1 : 0);
    {
        std::shared_lock<std::shared_mutex> lock(cache_mutex_);
        const auto hit = cache_.find(key);
        if (hit != cache_.end()) {
            PIM_METRIC_COUNT("cache.transfer.hit", 1);
            TransferResult result;
            const double scale = static_cast<double>(num_columns) /
                static_cast<double>(simulated);
            result.seconds = hit->second * scale;
            result.achieved_gbps = result.seconds > 0
                ? static_cast<double>(bytes) / result.seconds / 1e9
                : 0.0;
            result.total_cycles = static_cast<uint64_t>(
                result.seconds / (timing_.tck_ns * 1e-9));
            return result;
        }
    }

    PIM_METRIC_COUNT("cache.transfer.miss", 1);
    const uint32_t cols_per_row =
        row_bytes_ / DramTiming::kBytesPerColumn;

    // Realistic address interleaving: consecutive 64B blocks rotate
    // across banks (so same-bank tCCD never bounds the stream),
    // while rank switches happen at coarse granularity (rank-switch
    // bubbles are expensive on the shared bus).
    std::vector<DramRequest> requests;
    requests.reserve(simulated);
    for (uint64_t i = 0; i < simulated; ++i) {
        DramRequest request;
        request.bank = static_cast<uint32_t>(i % banks_per_rank_);
        const uint64_t within = i / banks_per_rank_;
        const uint64_t row_group = within / cols_per_row;
        request.rank = static_cast<uint32_t>(row_group %
                                             ranks_per_channel_);
        request.row =
            static_cast<uint32_t>(row_group / ranks_per_channel_);
        request.is_write = is_write;
        requests.push_back(request);
    }

    DramChannel channel(timing_, ranks_per_channel_, banks_per_rank_);
    const uint64_t cycles = channel.drain(requests);

    TransferResult result;
    const double sim_seconds = timing_.cyclesToSeconds(cycles);
    {
        std::unique_lock<std::shared_mutex> lock(cache_mutex_);
        cache_.emplace(key, sim_seconds);
    }
    const double scale = static_cast<double>(num_columns) /
        static_cast<double>(simulated);
    result.seconds = sim_seconds * scale;
    result.total_cycles =
        static_cast<uint64_t>(static_cast<double>(cycles) * scale);
    result.achieved_gbps = result.seconds > 0
        ? static_cast<double>(bytes) / result.seconds / 1e9
        : 0.0;
    result.row_hit_rate = channel.stats().rowHitRate();
    return result;
}

TransferResult
TransferModel::transfer(uint64_t bytes, bool is_write) const
{
    // Split evenly across independent channels; they operate in
    // parallel, so the slowest shard (they are equal) sets the time.
    const uint64_t per_channel =
        (bytes + num_channels_ - 1) / num_channels_;
    TransferResult result = simulateChannel(per_channel, is_write);
    result.achieved_gbps = result.seconds > 0
        ? static_cast<double>(bytes) / result.seconds / 1e9
        : 0.0;
    return result;
}

double
TransferModel::streamingBandwidth() const
{
    const TransferResult result =
        transfer(64ull << 20, /*is_write=*/false);
    return result.seconds > 0
        ? static_cast<double>(64ull << 20) / result.seconds *
            static_cast<double>(1)
        : 0.0;
}

} // namespace pimeval
