/**
 * @file
 * DramChannel implementation.
 */

#include "dram/dram_channel.h"

#include <algorithm>
#include <cassert>

namespace pimeval {

DramChannel::DramChannel(const DramTiming &timing, uint32_t num_ranks,
                         uint32_t num_banks)
    : timing_(timing), num_ranks_(num_ranks), num_banks_(num_banks),
      banks_(static_cast<size_t>(num_ranks) * num_banks)
{
}

DramChannel::BankState &
DramChannel::bank(uint32_t rank, uint32_t bank_idx)
{
    assert(rank < num_ranks_ && bank_idx < num_banks_);
    return banks_[static_cast<size_t>(rank) * num_banks_ + bank_idx];
}

void
DramChannel::reset()
{
    std::fill(banks_.begin(), banks_.end(), BankState{});
    bus_free_ = 0;
    last_bus_rank_ = 0;
    bus_used_ = false;
    last_act_ = 0;
    any_act_ = false;
    act_window_.clear();
    stats_ = DramChannelStats{};
}

uint64_t
DramChannel::access(const DramRequest &request)
{
    BankState &state = bank(request.rank, request.bank);

    // Open-page policy: precharge + activate on a row miss.
    if (!state.row_open || state.open_row != request.row) {
        uint64_t act_cycle = state.ready_for_act;
        if (state.row_open) {
            // Close the open row first.
            const uint64_t pre_cycle = state.ready_for_pre;
            act_cycle = std::max(act_cycle, pre_cycle + timing_.tRP);
            ++stats_.row_misses;
        } else if (stats_.num_reads + stats_.num_writes > 0) {
            ++stats_.row_misses;
        }

        // Inter-bank ACT spacing (tRRD) and the four-activate window.
        if (any_act_)
            act_cycle = std::max(act_cycle, last_act_ + timing_.tRRD);
        if (act_window_.size() >= 4) {
            act_cycle = std::max(act_cycle,
                                 act_window_.front() + timing_.tFAW);
        }

        state.row_open = true;
        state.open_row = request.row;
        state.ready_for_col = act_cycle + timing_.tRCD;
        state.ready_for_act = act_cycle + timing_.tRC;
        state.ready_for_pre = act_cycle + timing_.tRAS;
        last_act_ = act_cycle;
        any_act_ = true;
        act_window_.push_back(act_cycle);
        if (act_window_.size() > 4)
            act_window_.pop_front();
        ++stats_.activates;
    } else {
        ++stats_.row_hits;
    }

    // Column command: wait for the bank and the shared data bus.
    uint64_t col_cycle = state.ready_for_col;
    const uint32_t latency =
        request.is_write ? timing_.tCWL : timing_.tCL;
    uint64_t data_start = col_cycle + latency;
    uint64_t bus_needed = bus_free_;
    if (bus_used_ && last_bus_rank_ != request.rank)
        bus_needed += timing_.tCS; // rank switch bubble
    data_start = std::max(data_start, bus_needed);
    col_cycle = data_start - latency;

    const uint64_t data_end = data_start + timing_.tBURST;
    bus_free_ = data_end;
    last_bus_rank_ = request.rank;
    bus_used_ = true;

    // Successive columns to the same bank respect tCCD.
    state.ready_for_col =
        std::max<uint64_t>(state.ready_for_col, col_cycle + timing_.tCCD);
    // Reads delay PRE by tRTP; writes by write recovery after data.
    if (request.is_write) {
        state.ready_for_pre = std::max<uint64_t>(
            state.ready_for_pre, data_end + timing_.tWR);
        ++stats_.num_writes;
    } else {
        state.ready_for_pre = std::max<uint64_t>(
            state.ready_for_pre, col_cycle + timing_.tRTP);
        ++stats_.num_reads;
    }

    stats_.last_completion_cycle =
        std::max(stats_.last_completion_cycle, data_end);
    return data_end;
}

uint64_t
DramChannel::drain(const std::vector<DramRequest> &requests)
{
    uint64_t last = 0;
    for (const auto &request : requests)
        last = std::max(last, access(request));
    return last;
}

} // namespace pimeval
