/**
 * @file
 * LUT backend implementation: calibration sweep, process-wide table
 * cache, and the O(1) lock-free lookup path.
 */

#include "dram/mem_backend_lut.h"

#include <atomic>
#include <chrono>
#include <cmath>
#include <cstdio>
#include <map>
#include <mutex>
#include <string>
#include <vector>

#include "core/pim_metrics.h"
#include "dram/transfer_model.h"

namespace pimeval {

namespace {

/** Cycle-model extrapolation cap: streams are simulated up to this
 *  many columns and scaled linearly beyond (transfer_model.cpp). */
constexpr uint64_t kCapColumns = 1ull << 16;

/** One direction's calibrated curve. */
struct DirectionTable
{
    /** seconds for exactly n columns, n in [0, kLutDenseColumns]. */
    std::vector<double> dense_sec;
    std::vector<double> dense_hit;
    /** Log grid over [kLutDenseColumns, kCapColumns]: ln(columns),
     *  ln(seconds), and the row-hit rate at each sample. */
    std::vector<double> ln_n;
    std::vector<double> ln_sec;
    std::vector<double> hit;
    std::vector<uint64_t> sample_n;
};

struct LutTable
{
    DirectionTable dir[2]; ///< [0]=read, [1]=write
    double tck_ns = 0.0;
};

/** Column count of log-grid sample @p j (monotone in j). */
uint64_t
sampleColumns(size_t j)
{
    const double exact = static_cast<double>(kLutDenseColumns) *
        std::exp2(static_cast<double>(j) /
                  static_cast<double>(kLutSamplesPerOctave));
    return static_cast<uint64_t>(std::llround(exact));
}

/** Number of log-grid samples covering [dense, cap] inclusive. */
size_t
numSamples()
{
    size_t j = 0;
    while (sampleColumns(j) < kCapColumns)
        ++j;
    return j + 1;
}

/**
 * Calibration key: every field the per-channel drain depends on. The
 * channel count is deliberately excluded — transfers split bytes
 * across channels and simulate one, so all channel counts share a
 * table. Floats are rendered in hex so distinct timing sets never
 * collide.
 */
std::string
tableKey(const MemTopology &t)
{
    char buf[512];
    std::snprintf(
        buf, sizeof buf,
        "%a|%u.%u.%u.%u.%u.%u.%u.%u.%u.%u.%u.%u.%u|r%u.b%u.w%u.m%d",
        t.timing.tck_ns, t.timing.tRCD, t.timing.tRP, t.timing.tCL,
        t.timing.tCWL, t.timing.tRAS, t.timing.tRC, t.timing.tBURST,
        t.timing.tCCD, t.timing.tRRD, t.timing.tFAW, t.timing.tRTP,
        t.timing.tWR, t.timing.tCS, t.ranks_per_channel,
        t.banks_per_rank, t.row_bytes, static_cast<int>(t.addr_map));
    return buf;
}

/** Run the calibration sweep on a single-channel cycle model. */
std::unique_ptr<const LutTable>
buildTable(const MemTopology &topology)
{
    const auto start = std::chrono::steady_clock::now();
    // One channel: transfer(n * 64) then simulates exactly n columns
    // (scale 1), the same per-channel stream the cycle backend drains
    // for any channel count. Quiet: calibration traffic must not
    // pollute the workload's dram.channel.* statistics.
    TransferModel model(topology.timing, /*num_channels=*/1,
                        topology.ranks_per_channel,
                        topology.banks_per_rank, topology.row_bytes,
                        topology.addr_map, /*quiet=*/true);

    auto table = std::make_unique<LutTable>();
    table->tck_ns = topology.timing.tck_ns;
    const size_t samples = numSamples();
    for (int w = 0; w < 2; ++w) {
        DirectionTable &dir = table->dir[w];
        dir.dense_sec.resize(kLutDenseColumns + 1, 0.0);
        dir.dense_hit.resize(kLutDenseColumns + 1, 0.0);
        for (uint64_t n = 1; n <= kLutDenseColumns; ++n) {
            const TransferResult r = model.transfer(
                n * DramTiming::kBytesPerColumn, w == 1);
            dir.dense_sec[n] = r.seconds;
            dir.dense_hit[n] = r.row_hit_rate;
        }
        dir.ln_n.reserve(samples);
        dir.ln_sec.reserve(samples);
        dir.hit.reserve(samples);
        dir.sample_n.reserve(samples);
        for (size_t j = 0; j < samples; ++j) {
            const uint64_t n = std::min(sampleColumns(j), kCapColumns);
            const TransferResult r = model.transfer(
                n * DramTiming::kBytesPerColumn, w == 1);
            dir.sample_n.push_back(n);
            dir.ln_n.push_back(
                std::log(static_cast<double>(n)));
            dir.ln_sec.push_back(std::log(r.seconds));
            dir.hit.push_back(r.row_hit_rate);
        }
    }
    const double ms = std::chrono::duration<double, std::milli>(
                          std::chrono::steady_clock::now() - start)
                          .count();
    PIM_METRIC_COUNT("dram.lut.calibrations", 1);
    PIM_METRIC_GAUGE("dram.lut.calibration_ms", ms);
    return table;
}

/** Process-wide calibration cache. Entries live for the process
 *  lifetime, so raw pointers handed to backends stay valid. */
const LutTable &
tableFor(const MemTopology &topology)
{
    static std::mutex mutex;
    static std::map<std::string, std::unique_ptr<const LutTable>>
        tables;
    const std::string key = tableKey(topology);
    std::lock_guard<std::mutex> lock(mutex);
    auto it = tables.find(key);
    if (it == tables.end())
        it = tables.emplace(key, buildTable(topology)).first;
    return *it->second;
}

class LutMemBackend : public MemTimingBackend
{
  public:
    explicit LutMemBackend(const MemTopology &topology)
        : MemTimingBackend(topology)
    {
    }

    PimMemBackend
    kind() const override
    {
        return PimMemBackend::PIM_MEM_BACKEND_LUT;
    }

    TransferResult
    transfer(uint64_t bytes, bool is_write) const override
    {
        PIM_METRIC_COUNT("dram.lut.lookups", 1);
        // Mirror the cycle backend's shape math exactly: split across
        // channels, then columns per channel.
        const uint64_t per_channel =
            (bytes + topology_.num_channels - 1) /
            topology_.num_channels;
        const uint64_t n =
            (per_channel + DramTiming::kBytesPerColumn - 1) /
            DramTiming::kBytesPerColumn;
        if (n == 0)
            return {};

        const LutTable &table = acquireTable();
        const DirectionTable &dir = table.dir[is_write ? 1 : 0];

        double seconds = 0.0;
        double hit = 0.0;
        if (n <= kLutDenseColumns) {
            // Dense region: exact (the cycle backend simulated this
            // very column count during calibration).
            seconds = dir.dense_sec[n];
            hit = dir.dense_hit[n];
        } else if (n >= kCapColumns) {
            // Beyond the cap both backends extrapolate linearly from
            // the same 64K-column drain.
            const double cap_sec = dir.ln_sec.empty()
                ? 0.0
                : std::exp(dir.ln_sec.back());
            seconds = cap_sec *
                (static_cast<double>(n) /
                 static_cast<double>(kCapColumns));
            hit = dir.hit.empty() ? 0.0 : dir.hit.back();
        } else {
            // Log region: bracket n and interpolate in log-space.
            const double ln_n = std::log(static_cast<double>(n));
            size_t j = static_cast<size_t>(
                std::log2(static_cast<double>(n) /
                          static_cast<double>(kLutDenseColumns)) *
                kLutSamplesPerOctave);
            if (j >= dir.sample_n.size() - 1)
                j = dir.sample_n.size() - 2;
            // Float rounding can land one sample off; fix up.
            while (j > 0 && dir.sample_n[j] > n)
                --j;
            while (j + 2 < dir.sample_n.size() &&
                   dir.sample_n[j + 1] < n)
                ++j;
            const double t = (ln_n - dir.ln_n[j]) /
                (dir.ln_n[j + 1] - dir.ln_n[j]);
            seconds = std::exp(dir.ln_sec[j] +
                               t * (dir.ln_sec[j + 1] -
                                    dir.ln_sec[j]));
            hit = dir.hit[j];
        }

        TransferResult result;
        result.seconds = seconds;
        result.achieved_gbps = seconds > 0
            ? static_cast<double>(bytes) / seconds / 1e9
            : 0.0;
        result.row_hit_rate = hit;
        result.total_cycles = static_cast<uint64_t>(
            seconds / (table.tck_ns * 1e-9));
        return result;
    }

  private:
    /** Lock-free after the first call; the first call builds or
     *  fetches the process-wide table for this topology tuple. */
    const LutTable &
    acquireTable() const
    {
        const LutTable *table =
            table_.load(std::memory_order_acquire);
        if (!table) {
            table = &tableFor(topology_);
            table_.store(table, std::memory_order_release);
        }
        return *table;
    }

    mutable std::atomic<const LutTable *> table_{nullptr};
};

} // namespace

std::unique_ptr<MemTimingBackend>
makeLutBackend(const MemTopology &topology)
{
    return std::make_unique<LutMemBackend>(topology);
}

} // namespace pimeval
