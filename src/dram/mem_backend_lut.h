/**
 * @file
 * Calibrated lookup-table memory-timing backend (the default).
 *
 * Built once per (timing, topology-per-channel, mapping) tuple by
 * sampling the cycle backend: every per-channel column count up to
 * kDenseColumns is simulated exactly, then log-spaced samples
 * (kSamplesPerOctave per octave) run up to the cycle model's 64K
 * column extrapolation cap. Lookups are O(1) and lock-free after the
 * first: dense sizes are exact, log-region sizes interpolate in
 * log-space, and beyond-cap sizes extrapolate linearly exactly like
 * the cycle backend itself. Tables are cached process-wide, keyed by
 * the calibration tuple, so contexts sharing a configuration share
 * one calibration.
 */

#ifndef PIMEVAL_DRAM_MEM_BACKEND_LUT_H_
#define PIMEVAL_DRAM_MEM_BACKEND_LUT_H_

#include <memory>

#include "dram/mem_timing_backend.h"

namespace pimeval {

/** Largest per-channel column count sampled exactly. */
inline constexpr uint64_t kLutDenseColumns = 256;
/** Log-spaced samples per octave above the dense region. */
inline constexpr unsigned kLutSamplesPerOctave = 8;

/** Build a LUT backend over @p topology (calibration is lazy: the
 *  table is built — or fetched from the process-wide cache — on the
 *  first transfer). */
std::unique_ptr<MemTimingBackend>
makeLutBackend(const MemTopology &topology);

} // namespace pimeval

#endif // PIMEVAL_DRAM_MEM_BACKEND_LUT_H_
