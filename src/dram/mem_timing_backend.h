/**
 * @file
 * Pluggable memory-timing backends for host<->device transfer costing
 * (ROADMAP item 4, in the spirit of downmem's selectable MRAM-transfer
 * models and LP5X-PIM Sim's fidelity tiers).
 *
 * Three implementations sit behind one interface, selectable per
 * context via PimDeviceConfig::mem_backend or the PIMEVAL_MEM_BACKEND
 * environment variable (cycle|analytical|lut):
 *
 *  - CYCLE       the DramChannel/TransferModel cycle-stepped model
 *                with configurable address mapping; exact, but pays a
 *                full channel drain per uncached transfer shape.
 *  - ANALYTICAL  the paper's flat bytes/bandwidth model (Section
 *                V-C), preserved bit-identical for reproduction
 *                parity.
 *  - LUT         a lookup table calibrated once per (timing,
 *                topology, mapping) tuple by sampling the cycle
 *                backend at dense small sizes and log-spaced large
 *                sizes, interpolated in log-space: an O(1) lock-free
 *                read per costCopy, within a few percent of CYCLE
 *                across the suite's transfer-size distribution. The
 *                process-wide default.
 */

#ifndef PIMEVAL_DRAM_MEM_TIMING_BACKEND_H_
#define PIMEVAL_DRAM_MEM_TIMING_BACKEND_H_

#include <cstdint>
#include <memory>

#include "core/pim_types.h"
#include "dram/dram_timing.h"
#include "dram/transfer_model.h"

namespace pimeval {

/** Channel topology and timing shared by all backends. */
struct MemTopology
{
    DramTiming timing;
    uint32_t num_channels = 1;
    uint32_t ranks_per_channel = 1;
    uint32_t banks_per_rank = 16;
    uint32_t row_bytes = 1024;
    PimAddrMap addr_map = PimAddrMap::PIM_ADDR_MAP_BANK_FIRST;
    /** Aggregate flat bandwidth (bytes/s) of the ANALYTICAL model —
     *  the paper's rank-independent view. */
    double flat_bw_bytes_per_sec = 25.6e9;
};

/**
 * Abstract transfer-timing backend. Implementations are immutable
 * after construction and safe for concurrent transfer() calls from
 * the command pipeline's worker threads.
 */
class MemTimingBackend
{
  public:
    virtual ~MemTimingBackend() = default;

    /** Time a host<->device transfer of @p bytes. */
    virtual TransferResult transfer(uint64_t bytes,
                                    bool is_write) const = 0;

    /** Which backend this is (never DEFAULT). */
    virtual PimMemBackend kind() const = 0;

    /** Effective bandwidth of a large streaming read (bytes/s), as
     *  this backend would charge it — the number costCopy implies. */
    virtual double streamingBandwidth() const;

    const MemTopology &topology() const { return topology_; }

    /**
     * Resolve the backend selection for one device: an explicit
     * @p configured value wins, then PIMEVAL_MEM_BACKEND, then the
     * legacy @p use_dram_timing flag (alias for CYCLE), then LUT.
     * Never returns DEFAULT.
     */
    static PimMemBackend resolve(PimMemBackend configured,
                                 bool use_dram_timing);

    /** Parse "cycle" / "analytical" / "lut"; false on mismatch. */
    static bool parseKind(const char *name, PimMemBackend *out);

    /** Build the selected backend (@p kind must not be DEFAULT). */
    static std::unique_ptr<MemTimingBackend>
    create(PimMemBackend kind, const MemTopology &topology);

  protected:
    explicit MemTimingBackend(const MemTopology &topology)
        : topology_(topology)
    {
    }

    MemTopology topology_;
};

} // namespace pimeval

#endif // PIMEVAL_DRAM_MEM_TIMING_BACKEND_H_
