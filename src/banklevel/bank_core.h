/**
 * @file
 * Functional model of the bank-level PIM processing element.
 *
 * The bank-level variant (paper Section IV, option (2) in Fig. 2)
 * places a 128-bit Fulcrum-style ALPU with three walkers at the bank
 * interface. Unlike the subarray-level Fulcrum, every row it touches
 * must cross the narrow global data lines (GDL): a full 8192-bit row
 * takes row_bits / gdl_bits GDL beats each way. Datatypes narrower
 * than the ALPU width are processed SIMD-fashion (e.g., four 32-bit
 * lanes per 128-bit ALU cycle), and popcount is single-cycle.
 *
 * The model wraps FulcrumCore and adds GDL beat accounting.
 */

#ifndef PIMEVAL_BANKLEVEL_BANK_CORE_H_
#define PIMEVAL_BANKLEVEL_BANK_CORE_H_

#include <cstdint>

#include "fulcrum/fulcrum_core.h"

namespace pimeval {

/**
 * Bank-level PE: FulcrumCore behind a GDL.
 */
class BankCore
{
  public:
    /**
     * @param num_rows rows addressable by the bank PE (all subarrays).
     * @param row_bits bits per row.
     * @param alu_bits PE width (128 in the paper).
     * @param gdl_bits GDL width (128 in the paper).
     */
    BankCore(uint32_t num_rows, uint32_t row_bits, unsigned alu_bits,
             unsigned gdl_bits);

    FulcrumCore &core() { return core_; }
    const FulcrumCore &core() const { return core_; }

    unsigned gdlBits() const { return gdl_bits_; }

    /** GDL beats needed to move one full row one way. */
    uint64_t gdlBeatsPerRow() const
    {
        return (core_.rowBits() + gdl_bits_ - 1) / gdl_bits_;
    }

    /** Load a row into a walker: row read + GDL transfer. */
    void loadWalker(unsigned walker, uint32_t row);

    /** Store a walker to a row: GDL transfer + row write. */
    void storeWalker(unsigned walker, uint32_t row);

    /**
     * SIMD element processing: lanes = alu_bits / elem_bits elements
     * retire per ALU cycle.
     */
    void processElements(AlpuOp op, unsigned elem_bits,
                         uint32_t num_elements, bool is_signed,
                         bool use_scalar = false, uint64_t scalar = 0);

    /** Total GDL beats issued (both directions). */
    uint64_t gdlBeats() const { return gdl_beats_; }

    /** SIMD-corrected ALU cycles (FulcrumCore counts per element). */
    uint64_t simdAluCycles() const;

    void resetCounters();

  private:
    FulcrumCore core_;
    unsigned gdl_bits_;
    uint64_t gdl_beats_ = 0;
};

} // namespace pimeval

#endif // PIMEVAL_BANKLEVEL_BANK_CORE_H_
