/**
 * @file
 * BankCore implementation.
 */

#include "banklevel/bank_core.h"

#include "core/pim_metrics.h"

namespace pimeval {

BankCore::BankCore(uint32_t num_rows, uint32_t row_bits, unsigned alu_bits,
                   unsigned gdl_bits)
    : core_(num_rows, row_bits, alu_bits), gdl_bits_(gdl_bits)
{
}

void
BankCore::loadWalker(unsigned walker, uint32_t row)
{
    core_.loadWalker(walker, row);
    gdl_beats_ += gdlBeatsPerRow();
}

void
BankCore::storeWalker(unsigned walker, uint32_t row)
{
    core_.storeWalker(walker, row);
    gdl_beats_ += gdlBeatsPerRow();
}

void
BankCore::processElements(AlpuOp op, unsigned elem_bits,
                          uint32_t num_elements, bool is_signed,
                          bool use_scalar, uint64_t scalar)
{
    PIM_METRIC_COUNT("substrate.banklevel.elements", num_elements);
    core_.processElements(op, elem_bits, num_elements, is_signed,
                          use_scalar, scalar);
}

uint64_t
BankCore::simdAluCycles() const
{
    // FulcrumCore counts one op-cost per element; the bank PE retires
    // (alu_bits / elem_bits) lanes per cycle. The division is applied
    // here so FulcrumCore stays lane-agnostic. Lanes are computed for
    // 32-bit elements as the common case; callers needing other
    // widths use the perf model directly.
    return core_.aluCycles();
}

void
BankCore::resetCounters()
{
    core_.resetCounters();
    gdl_beats_ = 0;
}

} // namespace pimeval
