/**
 * @file
 * Example: PIM design-space exploration — the use case the paper's
 * introduction motivates ("making it easier for the architecture
 * research community to explore the PIM design space").
 *
 * Sweeps a user-chosen benchmark across all four simulated
 * architectures and a grid of device parameters (ranks x subarray
 * width), printing modeled kernel time and energy for each point.
 *
 *   ./design_space [benchmark] (default "K-means")
 */

#include <iostream>
#include <string>

#include "apps/suite.h"
#include "bench/bench_common.h"

using namespace pimbench;

int
main(int argc, char **argv)
{
    const std::string benchmark = argc > 1 ? argv[1] : "K-means";
    quietLogs();

    std::cout << "Design-space sweep for: " << benchmark << "\n"
              << "(paper-size modeling; kernel time / energy per "
                 "configuration)\n";

    pimeval::TableWriter table(
        "Kernel time (ms) across the design space",
        {"Architecture", "ranks=8 cols=4096", "ranks=8 cols=8192",
         "ranks=32 cols=4096", "ranks=32 cols=8192"});
    pimeval::TableWriter energy(
        "Kernel energy (mJ) across the design space",
        {"Architecture", "ranks=8 cols=4096", "ranks=8 cols=8192",
         "ranks=32 cols=4096", "ranks=32 cols=8192"});

    const std::vector<std::pair<PimDeviceEnum, std::string>> targets =
        {
            {PimDeviceEnum::PIM_DEVICE_BITSIMD_V_AP, "Bit-Serial"},
            {PimDeviceEnum::PIM_DEVICE_FULCRUM, "Fulcrum"},
            {PimDeviceEnum::PIM_DEVICE_BANK_LEVEL, "Bank-level"},
            {PimDeviceEnum::PIM_DEVICE_SIMDRAM, "Analog (SIMDRAM)"},
        };

    for (const auto &[device, name] : targets) {
        std::vector<double> times, energies;
        for (const uint64_t ranks : {8ull, 32ull}) {
            for (const uint64_t cols : {4096ull, 8192ull}) {
                pimeval::PimDeviceConfig config;
                config.device = device;
                config.num_ranks = ranks;
                config.num_cols_per_row = cols;
                DeviceSession session(config);
                if (!session.ok())
                    return 1;
                const AppResult result =
                    runBenchmarkByName(benchmark, SuiteScale::kPaper);
                if (!result.verified) {
                    std::cerr << "verification failed on " << name
                              << "\n";
                    return 1;
                }
                times.push_back(result.stats.kernel_sec * 1e3);
                energies.push_back(result.stats.kernel_j * 1e3);
            }
        }
        table.addNumericRow(name, times, 3);
        energy.addNumericRow(name, energies, 3);
    }

    table.print(std::cout);
    energy.print(std::cout);

    std::cout << "\nEvery cell is the same benchmark source executed "
                 "on a different simulated machine — the design-space "
                 "exploration workflow PIMeval exists to enable.\n";
    return 0;
}
