/**
 * @file
 * Example: portability across PIM architectures — the core promise of
 * the PIM API (paper Section V-B). The same K-means program runs on
 * all three simulated targets without modification; the example
 * prints per-target modeled kernel time and energy side by side.
 *
 *   ./compare_architectures [num_points] [k] [iterations]
 */

#include <cstdlib>
#include <iostream>

#include "apps/kmeans.h"
#include "bench/bench_common.h"

int
main(int argc, char **argv)
{
    using namespace pimbench;

    KmeansParams params;
    params.num_points =
        argc > 1 ? std::strtoull(argv[1], nullptr, 10) : (1u << 15);
    params.k = argc > 2 ? static_cast<unsigned>(std::atoi(argv[2])) : 8;
    params.iterations =
        argc > 3 ? static_cast<unsigned>(std::atoi(argv[3])) : 3;

    quietLogs();
    std::cout << "K-means on every PIM target: " << params.num_points
              << " points, k=" << params.k << ", "
              << params.iterations << " iterations\n";

    pimeval::TableWriter table(
        "Same program, three architectures",
        {"Architecture", "Kernel(ms)", "DataMove(ms)", "Host(ms)",
         "Energy(mJ)", "Verified"});

    for (const auto &[device, name] : pimTargets()) {
        DeviceSession session(benchConfig(device, 8));
        if (!session.ok())
            return 1;
        const AppResult result = runKmeans(params);
        table.addRow({
            name,
            pimeval::formatFixed(result.stats.kernel_sec * 1e3, 3),
            pimeval::formatFixed(result.stats.copy_sec * 1e3, 3),
            pimeval::formatFixed(result.stats.host_sec * 1e3, 3),
            pimeval::formatFixed(
                (result.stats.kernel_j + result.stats.copy_j) * 1e3,
                3),
            result.verified ? "yes" : "NO",
        });
    }
    table.print(std::cout);

    std::cout << "\nThe identical source executed on all three "
                 "targets; only the modeled cost changed — the "
                 "portability the PIM API provides.\n";
    return 0;
}
