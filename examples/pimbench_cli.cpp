/**
 * @file
 * Command-line PIMbench runner — the analogue of the original
 * artifact's per-benchmark executables (paper Listing 2/3 workflow).
 *
 *   pimbench_cli --list
 *   pimbench_cli "Vector Addition" --device bitserial --ranks 32
 *   pimbench_cli GEMV --device fulcrum --scale paper
 *
 * Runs one benchmark on one simulated PIM target and prints the
 * Listing-3 style statistics report plus the verification status.
 */

#include <cstdlib>
#include <cstring>
#include <iostream>
#include <string>

#include <cctype>

#include "apps/suite.h"
#include "util/logging.h"
#include "util/string_utils.h"

namespace {

using namespace pimbench;

void
printUsage()
{
    std::cout
        << "usage: pimbench_cli <benchmark> [options]\n"
        << "       pimbench_cli --list\n\n"
        << "options:\n"
        << "  --device bitserial|fulcrum|bank|simdram (default fulcrum)\n"
        << "  --ranks N                          (default 32)\n"
        << "  --scale tiny|small|paper           (default small)\n"
        << "  --quiet                            suppress PIM-Info\n";
}

PimDeviceEnum
parseDevice(const std::string &name)
{
    if (pimeval::iequals(name, "bitserial"))
        return PimDeviceEnum::PIM_DEVICE_BITSIMD_V_AP;
    if (pimeval::iequals(name, "fulcrum"))
        return PimDeviceEnum::PIM_DEVICE_FULCRUM;
    if (pimeval::iequals(name, "bank") ||
        pimeval::iequals(name, "banklevel"))
        return PimDeviceEnum::PIM_DEVICE_BANK_LEVEL;
    if (pimeval::iequals(name, "simdram") ||
        pimeval::iequals(name, "analog"))
        return PimDeviceEnum::PIM_DEVICE_SIMDRAM;
    return PimDeviceEnum::PIM_DEVICE_NONE;
}

/** Case-insensitive benchmark name lookup with partial match. */
std::string
resolveBenchmark(const std::string &query)
{
    for (const auto &name : pimbenchSuiteNames()) {
        if (pimeval::iequals(name, query))
            return name;
    }
    // Prefix / substring convenience (e.g., "gemv", "vgg-13").
    std::string lowered = query;
    for (auto &ch : lowered)
        ch = static_cast<char>(std::tolower(
            static_cast<unsigned char>(ch)));
    for (const auto &name : pimbenchSuiteNames()) {
        std::string ln = name;
        for (auto &ch : ln)
            ch = static_cast<char>(std::tolower(
                static_cast<unsigned char>(ch)));
        if (ln.find(lowered) != std::string::npos)
            return name;
    }
    if (pimeval::iequals(query, "prefix sum"))
        return "Prefix Sum";
    if (pimeval::iequals(query, "string match"))
        return "String Match";
    if (pimeval::iequals(query, "pca"))
        return "PCA";
    if (pimeval::iequals(query, "apriori"))
        return "Apriori";
    return {};
}

} // namespace

int
main(int argc, char **argv)
{
    if (argc < 2) {
        printUsage();
        return 1;
    }

    std::string benchmark;
    std::string device_name = "fulcrum";
    uint64_t ranks = 32;
    std::string scale_name = "small";
    bool quiet = false;

    for (int i = 1; i < argc; ++i) {
        const std::string arg = argv[i];
        if (arg == "--list") {
            for (const auto &name : pimbenchSuiteNames())
                std::cout << name << "\n";
            std::cout << "Prefix Sum\nString Match\nPCA\nApriori\n";
            return 0;
        }
        if (arg == "--help" || arg == "-h") {
            printUsage();
            return 0;
        }
        if (arg == "--device" && i + 1 < argc) {
            device_name = argv[++i];
        } else if (arg == "--ranks" && i + 1 < argc) {
            ranks = std::strtoull(argv[++i], nullptr, 10);
        } else if (arg == "--scale" && i + 1 < argc) {
            scale_name = argv[++i];
        } else if (arg == "--quiet") {
            quiet = true;
        } else if (benchmark.empty()) {
            benchmark = arg;
        } else {
            std::cerr << "unknown argument: " << arg << "\n";
            printUsage();
            return 1;
        }
    }

    const std::string resolved = resolveBenchmark(benchmark);
    if (resolved.empty()) {
        std::cerr << "unknown benchmark '" << benchmark
                  << "' (try --list)\n";
        return 1;
    }
    const PimDeviceEnum device = parseDevice(device_name);
    if (device == PimDeviceEnum::PIM_DEVICE_NONE) {
        std::cerr << "unknown device '" << device_name << "'\n";
        return 1;
    }
    SuiteScale scale = SuiteScale::kSmall;
    if (pimeval::iequals(scale_name, "tiny"))
        scale = SuiteScale::kTiny;
    else if (pimeval::iequals(scale_name, "paper"))
        scale = SuiteScale::kPaper;

    if (quiet)
        pimeval::LogConfig::setThreshold(pimeval::LogLevel::Warning);

    std::cout << "Running " << resolved << " on PIM ("
              << device_name << ", " << ranks << " ranks, "
              << scale_name << " scale)\n\n";
    if (pimCreateDevice(device, ranks) != PimStatus::PIM_OK)
        return 1;

    const AppResult result = runBenchmarkByName(resolved, scale);

    std::cout << "\nBenchmark          : " << result.name << "\n";
    std::cout << "Functional check   : "
              << (result.verified ? "PASSED" : "FAILED") << "\n";
    std::cout << "PIM kernel time    : "
              << pimeval::formatTime(result.stats.kernel_sec) << "\n";
    std::cout << "Data movement time : "
              << pimeval::formatTime(result.stats.copy_sec) << "\n";
    std::cout << "Host time          : "
              << pimeval::formatTime(result.stats.host_sec) << "\n";
    std::cout << "PIM energy         : "
              << pimeval::formatEnergy(result.stats.kernel_j +
                                       result.stats.copy_j)
              << "\n";
    pimShowStats(std::cout);
    pimDeleteDevice();
    return result.verified ? 0 : 1;
}
