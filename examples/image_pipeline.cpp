/**
 * @file
 * Example: an image-processing pipeline on PIM — brightness
 * adjustment followed by 2x box-filter downsampling, the two
 * SIMDRAM-style image kernels of PIMbench chained on one device.
 *
 * Writes before/after BMP files so the result is visually
 * inspectable.
 *
 *   ./image_pipeline [width] [height] [brightness_delta] [outdir]
 */

#include <cstdlib>
#include <iostream>
#include <string>
#include <vector>

#include "core/pim_api.h"
#include "util/bmp_image.h"
#include "util/string_utils.h"

using pimeval::BmpImage;

namespace {

/** Brightness: saturating add on one channel plane (int16 working). */
std::vector<int16_t>
brightenPlane(const std::vector<uint8_t> &plane, int delta)
{
    const uint64_t n = plane.size();
    const PimObjId obj = pimAlloc(PimAllocEnum::PIM_ALLOC_AUTO, n, 16,
                                  PimDataType::PIM_INT16);
    std::vector<int16_t> staging(n);
    for (uint64_t i = 0; i < n; ++i)
        staging[i] = plane[i];
    pimCopyHostToDevice(staging.data(), obj);
    pimAddScalar(obj, obj,
                 static_cast<uint64_t>(static_cast<int64_t>(delta)));
    pimMinScalar(obj, obj, 255);
    pimMaxScalar(obj, obj, 0);
    pimCopyDeviceToHost(obj, staging.data());
    pimFree(obj);
    return staging;
}

/** 2x box downsample of one channel plane. */
std::vector<int16_t>
downsamplePlane(const std::vector<int16_t> &plane, uint32_t w,
                uint32_t h)
{
    const uint32_t ow = w / 2, oh = h / 2;
    const uint64_t out_n = static_cast<uint64_t>(ow) * oh;
    std::vector<std::vector<int16_t>> corners(
        4, std::vector<int16_t>(out_n));
    for (uint32_t y = 0; y < oh; ++y) {
        for (uint32_t x = 0; x < ow; ++x) {
            const uint64_t o = static_cast<uint64_t>(y) * ow + x;
            const uint64_t base =
                static_cast<uint64_t>(2 * y) * w + 2 * x;
            corners[0][o] = plane[base];
            corners[1][o] = plane[base + 1];
            corners[2][o] = plane[base + w];
            corners[3][o] = plane[base + w + 1];
        }
    }
    const PimObjId o0 = pimAlloc(PimAllocEnum::PIM_ALLOC_AUTO, out_n,
                                 16, PimDataType::PIM_INT16);
    const PimObjId o1 =
        pimAllocAssociated(16, o0, PimDataType::PIM_INT16);
    const PimObjId o2 =
        pimAllocAssociated(16, o0, PimDataType::PIM_INT16);
    const PimObjId o3 =
        pimAllocAssociated(16, o0, PimDataType::PIM_INT16);
    pimCopyHostToDevice(corners[0].data(), o0);
    pimCopyHostToDevice(corners[1].data(), o1);
    pimCopyHostToDevice(corners[2].data(), o2);
    pimCopyHostToDevice(corners[3].data(), o3);
    pimAdd(o0, o1, o0);
    pimAdd(o2, o3, o2);
    pimAdd(o0, o2, o0);
    pimShiftBitsRight(o0, o0, 2);
    std::vector<int16_t> out(out_n);
    pimCopyDeviceToHost(o0, out.data());
    pimFree(o0);
    pimFree(o1);
    pimFree(o2);
    pimFree(o3);
    return out;
}

} // namespace

int
main(int argc, char **argv)
{
    const uint32_t width =
        argc > 1 ? static_cast<uint32_t>(std::atoi(argv[1])) : 512;
    const uint32_t height =
        argc > 2 ? static_cast<uint32_t>(std::atoi(argv[2])) : 512;
    const int delta = argc > 3 ? std::atoi(argv[3]) : 60;
    const std::string outdir = argc > 4 ? argv[4] : "/tmp";

    std::cout << "Image pipeline: " << width << "x" << height
              << ", brightness +" << delta << ", 2x downsample\n\n";

    if (pimCreateDevice(PimDeviceEnum::PIM_DEVICE_FULCRUM, 8) !=
        PimStatus::PIM_OK)
        return 1;

    const BmpImage input = BmpImage::synthetic(width, height, 11);
    input.save(outdir + "/pim_input.bmp");

    // Stage 1: brightness on all three channels.
    const auto r1 = brightenPlane(input.red(), delta);
    const auto g1 = brightenPlane(input.green(), delta);
    const auto b1 = brightenPlane(input.blue(), delta);

    BmpImage bright(width, height);
    for (uint64_t i = 0; i < input.numPixels(); ++i) {
        bright.red()[i] = static_cast<uint8_t>(r1[i]);
        bright.green()[i] = static_cast<uint8_t>(g1[i]);
        bright.blue()[i] = static_cast<uint8_t>(b1[i]);
    }
    bright.save(outdir + "/pim_bright.bmp");

    // Stage 2: downsample.
    const auto r2 = downsamplePlane(r1, width, height);
    const auto g2 = downsamplePlane(g1, width, height);
    const auto b2 = downsamplePlane(b1, width, height);

    BmpImage small(width / 2, height / 2);
    for (uint64_t i = 0; i < small.numPixels(); ++i) {
        small.red()[i] = static_cast<uint8_t>(r2[i]);
        small.green()[i] = static_cast<uint8_t>(g2[i]);
        small.blue()[i] = static_cast<uint8_t>(b2[i]);
    }
    small.save(outdir + "/pim_downsampled.bmp");

    std::cout << "Wrote " << outdir << "/pim_input.bmp, "
              << outdir << "/pim_bright.bmp, " << outdir
              << "/pim_downsampled.bmp\n";
    pimShowStats(std::cout);
    pimDeleteDevice();
    return 0;
}
