/**
 * @file
 * Example: database analytics with PIM — the paper's motivating
 * filter-by-key scenario (Section VIII, Database).
 *
 * Scans a column of 32-bit keys for records below a threshold: the
 * predicate evaluation runs in memory (one pimLTScalar over the whole
 * column), the bitmap returns to the host, and the host gathers the
 * matching records. Prints the phase breakdown showing the gather
 * bottleneck the paper highlights.
 *
 *   ./database_filter [num_records] [selectivity_percent]
 */

#include <cstdlib>
#include <iostream>
#include <vector>

#include "core/pim_api.h"
#include "host/host_kernels.h"
#include "util/prng.h"
#include "util/string_utils.h"

int
main(int argc, char **argv)
{
    const uint64_t n =
        argc > 1 ? std::strtoull(argv[1], nullptr, 10) : (1u << 21);
    const double selectivity =
        (argc > 2 ? std::atof(argv[2]) : 1.0) / 100.0;

    std::cout << "Filter-By-Key: " << n << " records, target "
              << selectivity * 100 << "% selectivity\n\n";

    if (pimCreateDevice(PimDeviceEnum::PIM_DEVICE_BITSIMD_V_AP, 8) !=
        PimStatus::PIM_OK)
        return 1;

    pimeval::Prng rng(2024);
    std::vector<uint32_t> column(n);
    for (auto &v : column)
        v = static_cast<uint32_t>(rng.next() & 0x7fffffff);
    const uint32_t key =
        static_cast<uint32_t>(selectivity * 0x7fffffff);

    const PimObjId obj_col = pimAlloc(PimAllocEnum::PIM_ALLOC_AUTO, n,
                                      32, PimDataType::PIM_UINT32);
    const PimObjId obj_mask =
        pimAllocAssociated(32, obj_col, PimDataType::PIM_UINT32);

    pimCopyHostToDevice(column.data(), obj_col);
    pimLTScalar(obj_col, obj_mask, key);

    std::vector<uint32_t> bitmap32(n);
    pimCopyDeviceToHost(obj_mask, bitmap32.data());

    pimStartHostTimer();
    std::vector<uint8_t> bitmap(n);
    for (uint64_t i = 0; i < n; ++i)
        bitmap[i] = static_cast<uint8_t>(bitmap32[i]);
    const std::vector<uint32_t> selected =
        pimeval::gatherByBitmap(column, bitmap);
    pimStopHostTimer();

    pimFree(obj_col);
    pimFree(obj_mask);

    const auto stats = pimGetStats();
    const double total = stats.totalSec();
    std::cout << "Selected " << selected.size() << " of " << n
              << " records ("
              << pimeval::formatFixed(
                     100.0 * static_cast<double>(selected.size()) /
                         static_cast<double>(n),
                     2)
              << "%)\n\n";
    std::cout << "Phase breakdown (PIM side):\n";
    std::cout << "  PIM scan (modeled)  : "
              << pimeval::formatTime(stats.kernel_sec) << "\n";
    std::cout << "  Data movement       : "
              << pimeval::formatTime(stats.copy_sec) << "\n";
    std::cout << "  Host gather (meas.) : "
              << pimeval::formatTime(stats.host_sec) << "  ("
              << pimeval::formatFixed(
                     100.0 * stats.host_sec / total, 1)
              << "% of total -- the bottleneck, as in the paper)\n";

    pimShowStats(std::cout);
    pimDeleteDevice();
    return 0;
}
