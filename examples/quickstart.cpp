/**
 * @file
 * Quickstart: the paper's Listing 1 AXPY program, end to end.
 *
 * Demonstrates the canonical PIM API flow — device creation, object
 * allocation, host->device copies, one fused compute call, copy-back,
 * the Listing-3 style statistics report, and the JSON stats dump
 * (docs/OBSERVABILITY.md). Pass a device name
 * (bitserial | fulcrum | bank) and an optional vector length.
 *
 *   ./quickstart fulcrum 1048576
 *
 * Set PIMEVAL_TRACE=axpy.json to also get a Chrome/Perfetto trace of
 * the run.
 */

#include <cstdlib>
#include <iostream>
#include <string>
#include <vector>

#include "core/pim_api.h"
#include "core/pim_trace.h"
#include "util/string_utils.h"

namespace {

PimDeviceEnum
parseDevice(const std::string &name)
{
    if (pimeval::iequals(name, "bitserial"))
        return PimDeviceEnum::PIM_DEVICE_BITSIMD_V_AP;
    if (pimeval::iequals(name, "fulcrum"))
        return PimDeviceEnum::PIM_DEVICE_FULCRUM;
    if (pimeval::iequals(name, "bank"))
        return PimDeviceEnum::PIM_DEVICE_BANK_LEVEL;
    if (pimeval::iequals(name, "simdram"))
        return PimDeviceEnum::PIM_DEVICE_SIMDRAM;
    return PimDeviceEnum::PIM_DEVICE_NONE;
}

/** AXPY exactly as in paper Listing 1. */
bool
axpy(uint64_t vector_length, const std::vector<int> &x,
     std::vector<int> &y, int a)
{
    const unsigned bits_per_element = sizeof(int) * 8;
    // Allocate device memory.
    const PimObjId obj_x =
        pimAlloc(PimAllocEnum::PIM_ALLOC_AUTO, vector_length,
                 bits_per_element, PimDataType::PIM_INT32);
    const PimObjId obj_y = pimAllocAssociated(
        bits_per_element, obj_x, PimDataType::PIM_INT32);
    if (obj_x == -1 || obj_y == -1)
        return false;
    // Copy inputs, perform operations, copy back results.
    pimCopyHostToDevice(x.data(), obj_x);
    pimCopyHostToDevice(y.data(), obj_y);
    pimScaledAdd(obj_x, obj_y, obj_y,
                 static_cast<uint64_t>(static_cast<int64_t>(a)));
    pimCopyDeviceToHost(obj_y, y.data());
    // Free allocated memory.
    pimFree(obj_x);
    pimFree(obj_y);
    return true;
}

} // namespace

int
main(int argc, char **argv)
{
    const std::string device_name = argc > 1 ? argv[1] : "fulcrum";
    const uint64_t n =
        argc > 2 ? std::strtoull(argv[2], nullptr, 10) : (1u << 20);
    const int a = 5;

    const PimDeviceEnum device = parseDevice(device_name);
    if (device == PimDeviceEnum::PIM_DEVICE_NONE) {
        std::cerr << "usage: quickstart [bitserial|fulcrum|bank|simdram] "
                     "[vector_length]\n";
        return 1;
    }

    std::cout << "Running AXPY on PIM for vector length: " << n
              << "\n\n";

    // Normally pimDeleteDevice() exports the PIMEVAL_TRACE trace; the
    // guard keeps the early-error returns below from leaking an
    // armed, never-exported trace (no-op when the env var is unset).
    const char *trace_env = std::getenv("PIMEVAL_TRACE");
    pimeval::PimScopedTraceExport trace_guard(
        trace_env != nullptr ? trace_env : "");

    if (pimCreateDevice(device, 4) != PimStatus::PIM_OK)
        return 1;

    std::vector<int> x(n), y(n), y_expected(n);
    for (uint64_t i = 0; i < n; ++i) {
        x[i] = static_cast<int>(i % 1000) - 500;
        y[i] = static_cast<int>(i % 77);
        y_expected[i] = a * x[i] + y[i];
    }

    if (!axpy(n, x, y, a)) {
        std::cerr << "AXPY failed\n";
        return 1;
    }

    uint64_t mismatches = 0;
    for (uint64_t i = 0; i < n; ++i)
        mismatches += (y[i] != y_expected[i]);
    std::cout << (mismatches == 0 ? "PASSED" : "FAILED")
              << " functional check (" << mismatches
              << " mismatches)\n";

    pimShowStats(std::cout);
    if (pimDumpStats("quickstart_stats.json") == PimStatus::PIM_OK)
        std::cout << "Stats dumped to quickstart_stats.json\n";
    pimDeleteDevice();
    return mismatches == 0 ? 0 : 1;
}
