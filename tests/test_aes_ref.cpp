/**
 * @file
 * AES-256 reference tests, including the FIPS-197 Appendix C.3 known
 * answer test.
 */

#include <gtest/gtest.h>

#include "util/aes_ref.h"
#include "util/prng.h"

using namespace pimeval;

TEST(Aes256, Fips197AppendixC3KnownAnswer)
{
    // Key: 000102...1f, Plaintext: 00112233445566778899aabbccddeeff.
    std::array<uint8_t, 32> key;
    for (int i = 0; i < 32; ++i)
        key[i] = static_cast<uint8_t>(i);
    uint8_t block[16];
    for (int i = 0; i < 16; ++i)
        block[i] = static_cast<uint8_t>(i * 0x11);

    const Aes256 cipher(key);
    cipher.encryptBlock(block);

    const uint8_t expected[16] = {0x8e, 0xa2, 0xb7, 0xca, 0x51, 0x67,
                                  0x45, 0xbf, 0xea, 0xfc, 0x49, 0x90,
                                  0x4b, 0x49, 0x60, 0x89};
    for (int i = 0; i < 16; ++i)
        EXPECT_EQ(block[i], expected[i]) << "byte " << i;

    cipher.decryptBlock(block);
    for (int i = 0; i < 16; ++i)
        EXPECT_EQ(block[i], static_cast<uint8_t>(i * 0x11));
}

TEST(Aes256, EcbRoundTrip)
{
    Prng rng(99);
    std::array<uint8_t, 32> key;
    for (auto &k : key)
        k = static_cast<uint8_t>(rng.next());
    const Aes256 cipher(key);

    const std::vector<uint8_t> plain = rng.byteVector(16 * 64);
    const std::vector<uint8_t> enc = cipher.encryptEcb(plain);
    EXPECT_NE(enc, plain);
    EXPECT_EQ(cipher.decryptEcb(enc), plain);
}

TEST(Aes256, EcbRejectsUnalignedInput)
{
    std::array<uint8_t, 32> key{};
    const Aes256 cipher(key);
    EXPECT_THROW(cipher.encryptEcb(std::vector<uint8_t>(15)),
                 std::invalid_argument);
    EXPECT_THROW(cipher.decryptEcb(std::vector<uint8_t>(17)),
                 std::invalid_argument);
}

TEST(Aes256, SboxIsABijectionWithCorrectInverse)
{
    std::array<bool, 256> seen{};
    for (int x = 0; x < 256; ++x) {
        const uint8_t s = Aes256::sbox(static_cast<uint8_t>(x));
        EXPECT_FALSE(seen[s]);
        seen[s] = true;
        EXPECT_EQ(Aes256::invSbox(s), x);
    }
    // Spot values from FIPS-197.
    EXPECT_EQ(Aes256::sbox(0x00), 0x63);
    EXPECT_EQ(Aes256::sbox(0x53), 0xed);
    EXPECT_EQ(Aes256::invSbox(0x63), 0x00);
}

TEST(Aes256, GfMulProperties)
{
    // x * 1 = x; distributivity over XOR; known product.
    for (int x = 0; x < 256; ++x) {
        const auto ux = static_cast<uint8_t>(x);
        EXPECT_EQ(Aes256::gfMul(ux, 1), ux);
    }
    EXPECT_EQ(Aes256::gfMul(0x57, 0x83), 0xc1); // FIPS-197 example
    Prng rng(5);
    for (int trial = 0; trial < 200; ++trial) {
        const auto a = static_cast<uint8_t>(rng.next());
        const auto b = static_cast<uint8_t>(rng.next());
        const auto c = static_cast<uint8_t>(rng.next());
        EXPECT_EQ(Aes256::gfMul(a, b ^ c),
                  Aes256::gfMul(a, b) ^ Aes256::gfMul(a, c));
        EXPECT_EQ(Aes256::gfMul(a, b), Aes256::gfMul(b, a));
    }
}
