/**
 * @file
 * Tests of the paper-size modeling scale: analytic re-costing of
 * commands, transfers, and host phases without changing functional
 * results, plus the suite's paper-scale decomposition.
 */

#include <gtest/gtest.h>

#include "apps/suite.h"
#include "core/pim_api.h"
#include "util/logging.h"

using namespace pimeval;

namespace {

class ModelingScaleTest : public ::testing::Test
{
  protected:
    void
    SetUp() override
    {
        LogConfig::setThreshold(LogLevel::Error);
        PimDeviceConfig config;
        config.device = PimDeviceEnum::PIM_DEVICE_FULCRUM;
        config.num_ranks = 4;
        // CostsScaleUp asserts exact linear copy-time scaling, which
        // only the flat analytical backend guarantees.
        config.mem_backend = PimMemBackend::PIM_MEM_BACKEND_ANALYTICAL;
        ASSERT_EQ(pimCreateDeviceFromConfig(config),
                  PimStatus::PIM_OK);
    }

    void
    TearDown() override
    {
        pimDeleteDevice();
    }
};

} // namespace

TEST_F(ModelingScaleTest, DefaultScaleIsOne)
{
    EXPECT_EQ(pimGetModelingScale(), 1.0);
    pimSetModelingScale(0.25); // clamped up
    EXPECT_EQ(pimGetModelingScale(), 1.0);
}

TEST_F(ModelingScaleTest, FunctionalResultsUnchanged)
{
    const uint64_t n = 1000;
    std::vector<int> a(n, 3), b(n, 4), out(n);
    const PimObjId oa = pimAlloc(PimAllocEnum::PIM_ALLOC_AUTO, n, 32,
                                 PimDataType::PIM_INT32);
    const PimObjId ob =
        pimAllocAssociated(32, oa, PimDataType::PIM_INT32);
    pimCopyHostToDevice(a.data(), oa);
    pimCopyHostToDevice(b.data(), ob);

    pimSetModelingScale(1000.0);
    pimAdd(oa, ob, ob);
    pimCopyDeviceToHost(ob, out.data());
    pimSetModelingScale(1.0);

    for (uint64_t i = 0; i < n; ++i)
        ASSERT_EQ(out[i], 7);
    pimFree(oa);
    pimFree(ob);
}

TEST_F(ModelingScaleTest, CostsScaleUp)
{
    const uint64_t n = 1u << 16;
    std::vector<int> a(n, 1);
    const PimObjId oa = pimAlloc(PimAllocEnum::PIM_ALLOC_AUTO, n, 32,
                                 PimDataType::PIM_INT32);
    const PimObjId ob =
        pimAllocAssociated(32, oa, PimDataType::PIM_INT32);

    pimResetStats();
    pimCopyHostToDevice(a.data(), oa);
    pimAdd(oa, ob, ob);
    const PimRunStats unscaled = pimGetStats();

    pimResetStats();
    pimSetModelingScale(64.0);
    pimCopyHostToDevice(a.data(), oa);
    pimAdd(oa, ob, ob);
    const PimRunStats scaled = pimGetStats();
    pimSetModelingScale(1.0);

    // Transfers scale exactly linearly.
    EXPECT_EQ(scaled.bytes_h2d, 64 * unscaled.bytes_h2d);
    EXPECT_NEAR(scaled.copy_sec / unscaled.copy_sec, 64.0, 1e-6);
    // Kernel time grows (more elements per core) but sublinearly at
    // low utilization; it must grow at least somewhat and at most
    // linearly.
    EXPECT_GT(scaled.kernel_sec, unscaled.kernel_sec);
    EXPECT_LE(scaled.kernel_sec, 64.0 * unscaled.kernel_sec * 1.01);

    pimFree(oa);
    pimFree(ob);
}

TEST_F(ModelingScaleTest, HostWorkModeledOnHostParams)
{
    pimResetStats();
    // 28.8 GB at the per-core 28.8 GB/s -> exactly 1 second.
    pimAddHostWork(28800000000ull, 1);
    PimRunStats stats = pimGetStats();
    EXPECT_NEAR(stats.host_sec, 1.0, 1e-6);

    // Ops-bound phase: 3.71e9 ops at 3.71 GHz -> 1 second.
    pimResetStats();
    pimAddHostWork(1, 3710000000ull);
    stats = pimGetStats();
    EXPECT_NEAR(stats.host_sec, 1.0, 1e-6);

    // Modeling scale multiplies host work.
    pimResetStats();
    pimSetModelingScale(10.0);
    pimAddHostWork(1, 3710000000ull);
    pimSetModelingScale(1.0);
    stats = pimGetStats();
    EXPECT_NEAR(stats.host_sec, 10.0, 1e-5);
}

TEST(PaperScaleTable, AllBenchmarksHaveFactors)
{
    for (const auto &name : pimbench::pimbenchSuiteNames()) {
        const pimbench::PaperScale s = pimbench::paperScale(name);
        EXPECT_GE(s.elem_ratio, 1.0) << name;
        EXPECT_GE(s.call_ratio, 1.0) << name;
        EXPECT_GT(s.total(), 1.0) << name;
    }
    // Spot-check a documented decomposition: GEMV.
    const auto gemv = pimbench::paperScale("GEMV");
    EXPECT_NEAR(gemv.call_ratio, 8192.0 / 64.0, 1e-9);
    EXPECT_NEAR(gemv.elem_ratio, 2352160.0 / 2048.0, 1e-9);
}

TEST(PaperScaleRun, StatsScaledConsistently)
{
    LogConfig::setThreshold(LogLevel::Error);
    PimDeviceConfig config;
    config.device = PimDeviceEnum::PIM_DEVICE_FULCRUM;
    config.num_ranks = 4;
    ASSERT_EQ(pimCreateDeviceFromConfig(config), PimStatus::PIM_OK);

    const auto small = pimbench::runBenchmarkByName(
        "Vector Addition", pimbench::SuiteScale::kSmall);
    const auto paper = pimbench::runBenchmarkByName(
        "Vector Addition", pimbench::SuiteScale::kPaper);

    EXPECT_TRUE(small.verified);
    EXPECT_TRUE(paper.verified);
    const double ratio =
        pimbench::paperScale("Vector Addition").total();
    EXPECT_NEAR(static_cast<double>(paper.stats.bytes_h2d) /
                    static_cast<double>(small.stats.bytes_h2d),
                ratio, ratio * 0.01);
    EXPECT_GT(paper.stats.kernel_sec, small.stats.kernel_sec);
    // Modeling scale resets after a paper-scale run.
    EXPECT_EQ(pimGetModelingScale(), 1.0);

    pimDeleteDevice();
}
